(* The `gecko` command-line tool: compile workloads, inspect the pipeline,
   run intermittent executions, stage EMI attacks and regenerate the
   paper's experiments. *)

open Cmdliner
module Compiler = Gecko.Compiler
module M = Gecko.Machine
module W = Gecko.Workloads

let scheme_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "nvp" -> Ok Compiler.Scheme.Nvp
    | "ratchet" -> Ok Compiler.Scheme.Ratchet
    | "gecko" -> Ok Compiler.Scheme.Gecko
    | "gecko-noprune" | "noprune" -> Ok Compiler.Scheme.Gecko_noprune
    | _ -> Error (`Msg "scheme must be nvp | ratchet | gecko | gecko-noprune")
  in
  let print ppf s = Format.pp_print_string ppf (Compiler.Scheme.to_string s) in
  Arg.conv (parse, print)

let workload_arg =
  let doc = "Benchmark application (see `gecko list`) or a .gasm file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let scheme_arg =
  let doc = "Recovery scheme: nvp, ratchet, gecko, gecko-noprune." in
  Arg.(value & opt scheme_conv Compiler.Scheme.Gecko & info [ "s"; "scheme" ] ~doc)

let mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "legacy" -> Ok Compiler.Mode.Legacy
    | "sound" -> Ok Compiler.Mode.Sound
    | "precise" -> Ok Compiler.Mode.Precise
    | "speculative" | "spec" -> Ok Compiler.Mode.Speculative
    | _ -> Error (`Msg "mode must be legacy | sound | precise | speculative")
  in
  let print ppf m = Format.pp_print_string ppf (Compiler.Mode.to_string m) in
  Arg.conv (parse, print)

let mode_arg =
  let doc =
    "Pipeline precision/soundness mode: $(b,sound) (syntactic may-alias \
     domain, the default), $(b,precise) (value-tracking alias domain), \
     $(b,speculative) (optimistic checkpoint-slot reuse with the \
     unprovable window clobbers guarded at runtime via the NVM undo \
     log), or $(b,legacy) (the seed's optimistic, potentially unsound \
     baseline — for overhead measurement only)."
  in
  Arg.(value & opt mode_conv Compiler.Mode.default & info [ "m"; "mode" ] ~doc)

(* Speculative metas carry runtime guards; linking them into the image is
   what arms the undo-log protocol. *)
let link_with_guards p (meta : Compiler.Meta.t) =
  Gecko.Isa.Link.link ~guards:meta.Compiler.Meta.guards p

let find_workload name =
  if Filename.check_suffix name ".gasm" then
    match Gecko.Isa.Asm.parse_file name with
    | Ok p -> p
    | Error e ->
        Printf.eprintf "%s: %s\n" name e;
        exit 1
  else
    try (W.find name).W.build ()
    with Not_found ->
      Printf.eprintf "unknown workload %s; see `gecko list`\n" name;
      exit 1

(* --- list ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "workloads:";
    List.iter
      (fun w -> Printf.printf "  %-14s %s\n" w.W.name w.W.description)
      W.all;
    print_endline "\ndevices:";
    List.iter
      (fun d -> Printf.printf "  %s\n" d.Gecko.Devices.Device.model)
      Gecko.Devices.Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and devices")
    Term.(const run $ const ())

(* --- shared observability helpers ------------------------------------- *)

let write_file path contents =
  match open_out path with
  | oc ->
      output_string oc contents;
      close_out oc
  | exception Sys_error msg ->
      Printf.eprintf "gecko: cannot write %s: %s\n" path msg;
      exit 1

(* File extension picks the trace flavour: .jsonl streams line-delimited
   records, anything else gets the Chrome trace-event array (Perfetto /
   chrome://tracing). *)
let write_trace path tracer =
  let contents =
    if Filename.check_suffix path ".jsonl" then Gecko.Obs.Trace.to_jsonl tracer
    else Gecko.Obs.Trace.to_chrome_string tracer
  in
  write_file path contents;
  Printf.printf "trace: %d events -> %s%s\n"
    (Gecko.Obs.Trace.length tracer)
    path
    (let d = Gecko.Obs.Trace.dropped tracer in
     if d > 0 then Printf.sprintf " (%d oldest dropped)" d else "")

let write_metrics path registry =
  let contents =
    if Filename.check_suffix path ".csv" then Gecko.Obs.Metrics.to_csv registry
    else Gecko.Obs.Json.to_string (Gecko.Obs.Metrics.to_json registry)
  in
  write_file path contents;
  Printf.printf "metrics -> %s\n" path

(* --- compile ---------------------------------------------------------- *)

let compile_cmd =
  let disasm =
    Arg.(value & flag & info [ "d"; "disasm" ] ~doc:"Print the linked image.")
  in
  let asm =
    Arg.(
      value & flag
      & info [ "asm" ]
          ~doc:
            "Print the compiled program as .gasm (shows the inserted \
             checkpoint stores and region boundaries).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print per-pass compiler wall time and IR growth.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the compiler profile as a Chrome trace-event JSON file \
             (.jsonl for line-delimited records).")
  in
  let run name scheme mode disasm asm profile trace_out =
    let registry =
      if profile then Some (Gecko.Obs.Metrics.create ()) else None
    in
    let tracer =
      if trace_out <> None then Some (Gecko.Obs.Trace.create ()) else None
    in
    let p, meta =
      Compiler.Pipeline.compile ~mode ?obs:tracer ?metrics:registry scheme
        (find_workload name)
    in
    Format.printf "%s as %s (%s):@.  %a@.  static checkpoint stores: %d@."
      name
      (Compiler.Scheme.to_string scheme)
      (Compiler.Mode.to_string mode)
      Compiler.Meta.pp_stats meta.Compiler.Meta.stats
      (Compiler.Pipeline.checkpoint_store_count p);
    (match meta.Compiler.Meta.guards with
    | [] -> ()
    | gs -> Printf.printf "  speculation guards: %d\n" (List.length gs));
    (match registry with
    | Some reg ->
        let module Mx = Gecko.Obs.Metrics in
        print_endline "  pass                    wall time     IR instrs";
        List.iter
          (fun pass ->
            let h = Mx.histogram reg ("pipeline." ^ pass ^ ".seconds") in
            let g = Mx.gauge reg ("pipeline." ^ pass ^ ".ir_instrs") in
            if Mx.hist_count h > 0 then
              Printf.printf "  %-20s %8.3f ms  %10.0f\n" pass
                (1e3 *. Mx.hist_sum h) (Mx.gauge_value g))
          [ "copy"; "regions"; "split"; "regions2"; "coloring"; "emit"; "verify" ]
    | None -> ());
    (match (tracer, trace_out) with
    | Some tr, Some path -> write_trace path tr
    | _ -> ());
    if asm then print_string (Gecko.Isa.Asm.to_string p);
    if disasm then
      print_string (Gecko.Isa.Link.disasm (link_with_guards p meta))
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a workload and show pipeline statistics")
    Term.(const run $ workload_arg $ scheme_arg $ mode_arg $ disasm $ asm
          $ profile $ trace_out)

(* --- run -------------------------------------------------------------- *)

let run_cmd =
  let seconds =
    Arg.(value & opt float 1.0 & info [ "t"; "time" ] ~doc:"Simulated seconds.")
  in
  let attack_mhz =
    Arg.(
      value
      & opt (some float) None
      & info [ "attack" ] ~docv:"MHZ" ~doc:"Transmit an EMI tone at this frequency.")
  in
  let outages =
    Arg.(
      value & flag
      & info [ "outages" ] ~doc:"Power through a 1 Hz outage generator instead of a bench supply.")
  in
  let attack_at =
    Arg.(
      value & opt float 0.
      & info [ "attack-at" ] ~docv:"T"
          ~doc:
            "Delay the attack onset to T simulated seconds (with --attack): \
             the run shows normal JIT checkpointing before the attack and \
             detection/recovery after.")
  in
  let events =
    Arg.(
      value
      & opt (some int) None
      & info [ "events" ] ~docv:"N"
          ~doc:"Print the first N power/runtime events of the run.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a full execution trace (checkpoints, rollbacks, \
             detections, power spans, capacitor voltage) and write it as \
             Chrome trace-event JSON — load the file in Perfetto or \
             chrome://tracing.  A .jsonl extension selects line-delimited \
             records instead.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Dump run metrics (counters, gauges, latency histograms) as \
             JSON (.csv for CSV).")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:
            "Render an ASCII timeline of the run: capacitor voltage and \
             application throughput over simulated time.")
  in
  let no_fast =
    Arg.(
      value & flag
      & info [ "no-fast" ]
          ~doc:
            "Disable the pre-decoded block dispatcher and interpret every \
             instruction on the checked path.  Outcomes are identical \
             either way; this exists for debugging and A/B timing.")
  in
  let run name scheme mode seconds attack_mhz attack_at outages events
      trace_out metrics_out timeline no_fast =
    let p, meta = Compiler.Pipeline.compile ~mode scheme (find_workload name) in
    let image = link_with_guards p meta in
    let board =
      if outages then
        {
          (Gecko.Board.attack_rig ()) with
          Gecko.Board.harvester =
            Gecko.Energy.Harvester.square_wave ~period:1.0 ~duty:0.5
              (Gecko.Energy.Harvester.thevenin ~v_source:3.3 ~r_source:150.);
        }
      else Gecko.Board.attack_rig ()
    in
    let schedule =
      match attack_mhz with
      | Some f ->
          let attack =
            Gecko.Emi.Attack.remote ~distance_m:0.1
              (Gecko.Emi.Signal.make ~freq_mhz:f ~power_dbm:20.)
          in
          if attack_at <= 0. then Gecko.Emi.Schedule.always attack
          else
            Gecko.Emi.Schedule.make
              [
                Gecko.Emi.Schedule.window ~t_start:attack_at
                  ~t_end:(seconds +. 1.) attack;
              ]
      | None -> Gecko.Emi.Schedule.empty
    in
    let tracer =
      if trace_out <> None || timeline then Some (Gecko.Obs.Trace.create ())
      else None
    in
    let registry =
      if metrics_out <> None then Some (Gecko.Obs.Metrics.create ()) else None
    in
    let o =
      M.run ~board ~image ~meta
        {
          M.default_options with
          schedule;
          limit = M.Sim_time seconds;
          restart_on_halt = true;
          record_events = events <> None;
          max_sim_time = seconds +. 1.;
          trace = tracer;
          metrics = registry;
          timeline_bucket =
            (if timeline then Some (seconds /. 60.) else None);
          fast = not no_fast;
        }
    in
    (match events with
    | Some n ->
        List.iteri
          (fun i e -> if i < n then Format.printf "%a@." M.pp_event e)
          o.M.events
    | None -> ());
    (match (tracer, trace_out) with
    | Some tr, Some path -> write_trace path tr
    | _ -> ());
    (match (registry, metrics_out) with
    | Some reg, Some path -> write_metrics path reg
    | _ -> ());
    (if timeline then
       match tracer with
       | None -> ()
       | Some tr ->
           let volts =
             List.filter_map
               (fun (e : Gecko.Obs.Trace.entry) ->
                 match e.Gecko.Obs.Trace.ph with
                 | Gecko.Obs.Trace.Counter v
                   when e.Gecko.Obs.Trace.name = "cap_voltage" ->
                     Some (e.Gecko.Obs.Trace.ts, v)
                 | _ -> None)
               (Gecko.Obs.Trace.entries tr)
           in
           if volts <> [] then
             print_string
               (Gecko.Util.Chart.line_plot ~height:10 ~y_min:0.
                  ~title:"capacitor voltage" ~x_label:"time (s)" ~y_label:"V"
                  [ { Gecko.Util.Chart.label = "V(cap)"; points = volts } ]);
           (match o.M.timeline with
           | Some tl ->
               let pts =
                 Array.to_list
                   (Array.mapi
                      (fun i v ->
                        (float_of_int i *. tl.M.bucket, v /. tl.M.bucket))
                      tl.M.app_seconds_per_bucket)
                 |> List.filter (fun (t, _) -> t <= seconds)
               in
               print_string
                 (Gecko.Util.Chart.line_plot ~height:8 ~y_min:0. ~y_max:1.
                    ~title:"application forward progress" ~x_label:"time (s)"
                    ~y_label:"R"
                    [ { Gecko.Util.Chart.label = "app"; points = pts } ])
           | None -> ());
           let tally = Hashtbl.create 16 in
           List.iter
             (fun (e : Gecko.Obs.Trace.entry) ->
               match e.Gecko.Obs.Trace.ph with
               | Gecko.Obs.Trace.Instant ->
                   let n = e.Gecko.Obs.Trace.name in
                   Hashtbl.replace tally n
                     (1 + Option.value ~default:0 (Hashtbl.find_opt tally n))
               | _ -> ())
             (Gecko.Obs.Trace.entries tr);
           let rows =
             Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
             |> List.sort (fun (a, _) (b, _) -> String.compare a b)
           in
           if rows <> [] then begin
             print_endline "events:";
             List.iter
               (fun (k, v) -> Printf.printf "  %-22s %6d\n" k v)
               rows
           end);
    Printf.printf
      "%s as %s for %.2fs:\n  completions %d | reboots %d | JIT checkpoints %d \
       (%d failed) | rollbacks %d\n  recovery blocks run %d | detections %d | \
       re-enables %d | corrupt resumes %d%s\n  forward-progress rate %.2f%% | \
       final mode %s\n"
      name
      (Compiler.Scheme.to_string scheme)
      o.M.sim_time o.M.completions o.M.reboots o.M.jit_checkpoints
      o.M.jit_checkpoint_failures o.M.rollbacks o.M.recovery_block_runs
      o.M.detections o.M.reenables o.M.corruptions
      (if Array.length image.Gecko.Isa.Link.guards > 0 then
         Printf.sprintf " | misspeculations %d" o.M.misspeculations
       else "")
      (100. *. M.forward_progress o)
      (Compiler.Policy.mode_to_string o.M.final_mode)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a workload on the simulated intermittent system")
    Term.(
      const run $ workload_arg $ scheme_arg $ mode_arg $ seconds $ attack_mhz
      $ attack_at $ outages $ events $ trace_out $ metrics_out $ timeline
      $ no_fast)

(* --- fuzz ------------------------------------------------------------- *)

let fuzz_cmd =
  let module FI = Gecko.Faultinject in
  let budget =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Total simulator-run budget: single-failure injection replays \
             plus (a quarter of N) adversarial-schedule evaluations.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let pairs =
    Arg.(
      value & opt int 0
      & info [ "pairs" ] ~docv:"K"
          ~doc:"Additional double-failure (k=2) replays at random site pairs.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Replay pool size.  Defaults to $(b,GECKO_JOBS) or the \
             runtime's recommended domain count; 1 runs fully serial.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the JSON report here (default: stdout).")
  in
  let run name scheme mode budget seed pairs jobs out =
    if budget < 1 then begin
      Printf.eprintf "--budget must be >= 1 (got %d)\n" budget;
      exit 1
    end;
    let jobs =
      match jobs with
      | Some n when n >= 1 -> n
      | Some n ->
          Printf.eprintf "--jobs must be >= 1 (got %d)\n" n;
          exit 1
      | None -> Gecko.Util.Pool.default_jobs ()
    in
    let p, meta = Compiler.Pipeline.compile ~mode scheme (find_workload name) in
    let image = link_with_guards p meta in
    (* Exploration and fuzzing both want natural checkpoint/rollback
       traffic within a short workload, so starve a micro-cap board
       through a weak supply: the capacitor browns out every few hundred
       instructions, which makes every protocol path (backup signal, JIT
       checkpoint ISR, restore/rollback) part of the census. *)
    let explore_board =
      {
        (Gecko.Board.default
           ~harvester:
             (Gecko.Energy.Harvester.thevenin ~v_source:3.3 ~r_source:2000.)
           ())
        with
        Gecko.Board.capacitance = 0.6e-6;
        v_backup = 2.8;
      }
    in
    let fuzz_board = explore_board in
    let explore =
      FI.Explore.explore ~jobs ~budget ~pairs ~seed ~board:explore_board
        ~image ~meta ()
    in
    let fuzz =
      FI.Fuzz.fuzz ~jobs
        ~budget:(max 8 (budget / 4))
        ~seed ~board:fuzz_board ~image ~meta ()
    in
    (* Shrink a handful of counterexamples into replayable repro triples.
       The repro program is the already-compiled one, so shrinking
       re-links without re-running the pipeline. *)
    (* A tight simulated-time cap keeps shrinking fast: candidate
       programs whose deletions destroyed termination would otherwise
       burn the full 30 s safety cap per replay. *)
    (* Shrunk mutants re-link with RECOMPUTED guards: deletions shift
       instruction indices, so the compile-time positions in [meta] go
       stale, and a guard that slid off its store would unsoundly skip
       the undo-log append.  The reused (register, colour) roots come
       from [meta]'s restores — boundary ids are stable under shrink
       deletions; only the code positions are recomputed. *)
    let reguard prog =
      match mode with
      | Compiler.Mode.Speculative ->
          Compiler.Pipeline.speculation_guards prog meta
      | Compiler.Mode.Legacy | Compiler.Mode.Sound | Compiler.Mode.Precise ->
          []
    in
    let shrink_check board =
      FI.Shrink.default_check
        ~compile:(fun prog ->
          (Gecko.Isa.Link.link ~guards:(reguard prog) prog, meta))
        ~board
        ~opts:{ FI.Explore.default_opts with Gecko.Machine.max_sim_time = 1.0 }
        ()
    in
    let cap n xs = List.filteri (fun i _ -> i < n) xs in
    let repros =
      List.map
        (fun (f : FI.Explore.failure) ->
          FI.Shrink.shrink ~check:(shrink_check explore_board)
            {
              FI.Shrink.r_prog = p;
              r_schedule = Gecko.Emi.Schedule.empty;
              r_fires = f.FI.Explore.f_fires;
            })
        (cap 2 explore.FI.Explore.failures)
      @ List.map
          (fun (f : FI.Fuzz.failure) ->
            FI.Shrink.shrink ~check:(shrink_check fuzz_board)
              {
                FI.Shrink.r_prog = p;
                r_schedule = f.FI.Fuzz.f_schedule;
                r_fires = [];
              })
          (cap 1 fuzz.FI.Fuzz.failures)
    in
    let report =
      FI.Report.make ~workload:name
        ~scheme:(Compiler.Scheme.to_string scheme)
        ~seed ~budget ~explore ~fuzz ~repros
    in
    let contents = Gecko.Obs.Json.to_string report in
    (match out with
    | Some path ->
        write_file path contents;
        Printf.printf "report -> %s\n" path
    | None -> print_endline contents);
    let total =
      FI.Report.failures_total ~explore ~fuzz
    in
    Printf.printf
      "%s as %s: %d sites (%d explored + %d pairs), fuzz best score %.0f\n\
       injection failures %d | schedule failures %d | shrunk repros %d\n"
      name
      (Compiler.Scheme.to_string scheme)
      explore.FI.Explore.sites_total explore.FI.Explore.explored
      explore.FI.Explore.explored_pairs fuzz.FI.Fuzz.best_score
      (List.length explore.FI.Explore.failures)
      (List.length fuzz.FI.Fuzz.failures)
      (List.length repros);
    if total > 0 then begin
      List.iter
        (fun r -> print_string (FI.Shrink.to_ocaml r))
        (cap 1 repros);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Exhaustive single-failure injection plus adversarial EMI-schedule \
          fuzzing against the crash-consistency oracle")
    Term.(const run $ workload_arg $ scheme_arg $ mode_arg $ budget $ seed
          $ pairs $ jobs $ out)

(* --- fleet ------------------------------------------------------------ *)

let fleet_cmd =
  let module F = Gecko.Fleet in
  let devices =
    Arg.(
      value & opt int 256
      & info [ "devices" ] ~docv:"N" ~doc:"Fleet size (number of devices).")
  in
  let attackers =
    Arg.(
      value & opt int 1
      & info [ "attackers" ] ~docv:"K"
          ~doc:"Mobile attackers sweeping the deployment (0 = no attack).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"J"
          ~doc:
            "Shard pool size.  Defaults to $(b,GECKO_JOBS) or the runtime's \
             recommended domain count; the merged report is byte-identical \
             at any value.")
  in
  let duration =
    Arg.(
      value & opt float 0.05
      & info [ "duration" ] ~docv:"T" ~doc:"Simulated seconds per device.")
  in
  let area =
    Arg.(
      value & opt float 30.
      & info [ "area" ] ~docv:"M" ~doc:"Side of the square deployment (m).")
  in
  let shard_size =
    Arg.(
      value & opt int 32
      & info [ "shard-size" ] ~docv:"N" ~doc:"Devices per work unit.")
  in
  let workloads =
    Arg.(
      value
      & opt (list string) [ "crc16"; "crc32"; "bitcnt"; "fir" ]
      & info [ "workloads" ] ~docv:"W,.."
          ~doc:"Workload mix, drawn per device from its RNG stream.")
  in
  let schemes =
    Arg.(
      value
      & opt (list scheme_conv)
          [ Compiler.Scheme.Nvp; Compiler.Scheme.Ratchet; Compiler.Scheme.Gecko ]
      & info [ "schemes" ] ~docv:"S,.." ~doc:"Recovery-scheme mix.")
  in
  let power =
    Arg.(
      value & opt float 30.
      & info [ "power" ] ~docv:"DBM" ~doc:"Attacker transmit power.")
  in
  let freq =
    Arg.(
      value & opt float 27.
      & info [ "freq" ] ~docv:"MHZ" ~doc:"Attack tone frequency.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the merged JSON report here.")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Checkpoint completed shards to this gecko.fleet/1 file after \
             every wave (write-then-rename), so a killed campaign resumes \
             without rework.  Defaults to the $(b,--resume) file when \
             resuming.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a gecko.fleet/1 snapshot: completed shards are \
             reused, only the missing ones run, and the merged report is \
             byte-identical to an uninterrupted campaign.")
  in
  let max_shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-shards" ] ~docv:"N"
          ~doc:
            "Stop after N newly-run shards (controlled interruption; \
             combine with $(b,--snapshot) and finish later with \
             $(b,--resume)).")
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Stream live campaign telemetry to FILE as \
             gecko.fleet-telemetry/1 JSONL: a header, one record per \
             completed shard with the cumulative merge, a final record, \
             and one clearly-marked nondeterministic record carrying the \
             wall-clock rates.  Every device carries a flight recorder; \
             the worst $(b,--top-k) devices ride along as outlier records \
             with their flight dumps.  All records except the \
             nondeterministic one are byte-identical at any $(b,--jobs).")
  in
  let top_k =
    Arg.(
      value & opt int 8
      & info [ "top-k" ] ~docv:"K"
          ~doc:
            "Outlier records kept in the telemetry: the K worst devices \
             by badness score, each with the coordinates `gecko replay` \
             needs.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Force the live stderr progress line (default: on when \
             $(b,--telemetry) is set and stderr is a terminal).")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("lockstep", F.Campaign.Lockstep); ("scalar", F.Campaign.Scalar) ])
          F.Campaign.default_engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Shard execution engine: $(b,lockstep) (default) steps batched \
             windows of devices over the shared pre-decoded program; \
             $(b,scalar) runs one device at a time.  Reports, snapshots \
             and telemetry are byte-identical across engines.")
  in
  let run devices attackers seed jobs duration area shard_size workloads
      schemes power freq out snapshot resume max_shards telemetry_out top_k
      progress engine =
    (match jobs with
    | Some n when n >= 1 -> Gecko.Workbench.set_jobs n
    | Some n ->
        Printf.eprintf "--jobs must be >= 1 (got %d)\n" n;
        exit 1
    | None -> ());
    let fail_invalid msg =
      Printf.eprintf "gecko fleet: %s\n" msg;
      exit 1
    in
    let spec =
      try
        F.Spec.make ~devices ~attackers ~seed ~duration ~area_m:area
          ~shard_size ~workload_mix:workloads ~scheme_mix:schemes
          ~power_dbm:power ~freq_mhz:freq ()
      with Invalid_argument msg -> fail_invalid msg
    in
    let resume_state =
      match resume with
      | None -> None
      | Some path -> (
          match F.Campaign.load_snapshot path with
          | state -> Some state
          | exception Sys_error msg -> fail_invalid msg
          | exception Invalid_argument msg -> fail_invalid msg)
    in
    let snapshot_path =
      match (snapshot, resume) with Some p, _ -> Some p | None, r -> r
    in
    if top_k < 0 then fail_invalid "--top-k must be >= 0";
    let telemetry =
      match (telemetry_out, progress) with
      | None, false -> None
      | path, forced ->
          Some
            {
              F.Telemetry.default_config with
              F.Telemetry.tel_path = path;
              tel_top_k = top_k;
              tel_progress =
                forced || (path <> None && Unix.isatty Unix.stderr);
            }
    in
    let hits0, misses0 = Gecko.Workbench.cache_counts () in
    let t0 = Gecko.Util.Clock.now () in
    let r =
      try
        F.Campaign.run ~engine ?snapshot_path ?resume:resume_state ?max_shards
          ?telemetry spec
      with Invalid_argument msg -> fail_invalid msg
    in
    let wall = Gecko.Util.Clock.elapsed t0 in
    let hits1, misses1 = Gecko.Workbench.cache_counts () in
    (match r.F.Campaign.report with
    | Some report ->
        print_string (F.Report.render report);
        (match out with
        | Some path ->
            write_file path
              (Gecko.Obs.Json.to_string (F.Report.to_json report) ^ "\n");
            Printf.printf "report -> %s\n" path
        | None -> ())
    | None ->
        Printf.printf
          "campaign interrupted: %d/%d shards complete%s\n"
          r.F.Campaign.completed_shards r.F.Campaign.total_shards
          (match snapshot_path with
          | Some p -> Printf.sprintf " (resume with --resume %s)" p
          | None -> ""));
    (match r.F.Campaign.telemetry with
    | Some t when t.F.Telemetry.outliers <> [] ->
        Printf.printf "top outliers (badness score; drill down with `gecko \
                       replay`):\n";
        List.iter
          (fun (o : F.Telemetry.outlier) ->
            Printf.printf
              "  device %4d  score %10.1f  %s/%s  corruptions %d | \
               ckpt failures %d | brownouts %d\n"
              o.F.Telemetry.o_device o.F.Telemetry.o_score
              o.F.Telemetry.o_workload o.F.Telemetry.o_scheme
              o.F.Telemetry.o_corruptions o.F.Telemetry.o_ckpt_failures
              o.F.Telemetry.o_brownouts)
          t.F.Telemetry.outliers
    | _ -> ());
    (match telemetry_out with
    | Some p -> Printf.printf "telemetry -> %s\n" p
    | None -> ());
    Printf.printf
      "%d devices in %.2f s wall (%d resumed shards): %.1f devices/s, \
       %.3e sim instr/s | compile cache %d hits / %d misses\n"
      r.F.Campaign.devices_run wall r.F.Campaign.resumed_shards
      (float_of_int r.F.Campaign.devices_run /. Float.max wall 1e-9)
      (float_of_int r.F.Campaign.instructions_run /. Float.max wall 1e-9)
      (hits1 - hits0) (misses1 - misses0)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate a campaign of many intermittent devices under mobile EMI \
          attackers sweeping a shared deployment")
    Term.(
      const run $ devices $ attackers $ seed $ jobs $ duration $ area
      $ shard_size $ workloads $ schemes $ power $ freq $ out $ snapshot
      $ resume $ max_shards $ telemetry_out $ top_k $ progress $ engine)

(* --- replay ------------------------------------------------------------ *)

(* Drill down from a fleet-wide anomaly to a single-device repro: given
   the campaign spec (bare, or embedded in a fleet report, snapshot or
   telemetry stream), re-elaborate one device and re-run it with the
   full forensics kit attached.  When the input is a telemetry stream,
   the replayed outlier record is checked byte-for-byte against the
   recorded one. *)
let replay_cmd =
  let module F = Gecko.Fleet in
  let module Json = Gecko.Obs.Json in
  let campaign =
    Arg.(
      required
      & opt (some string) None
      & info [ "campaign" ] ~docv:"FILE"
          ~doc:
            "The campaign to replay from: a bare fleet spec JSON, a \
             gecko.fleet-report/1 report, a gecko.fleet/1 snapshot, or a \
             gecko.fleet-telemetry/1 JSONL stream.  A stream also supplies \
             the telemetry config and the recorded outlier records to \
             verify against.")
  in
  let device =
    Arg.(
      value
      & opt (some int) None
      & info [ "device" ] ~docv:"ID"
          ~doc:
            "Device id to replay.  Defaults to the top outlier when \
             $(b,--campaign) is a telemetry stream.")
  in
  let flight_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:"Write the replayed flight-recorder dump (gecko.flight/1).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the full execution trace as Chrome trace-event JSON \
             (.jsonl for line-delimited records).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Dump run metrics as JSON (.csv for CSV, .prom for \
                Prometheus text exposition).")
  in
  let events =
    Arg.(
      value
      & opt (some int) None
      & info [ "events" ] ~docv:"N"
          ~doc:"Print the last N flight-recorder events.")
  in
  let run campaign device flight_out trace_out metrics_out events =
    let fail_invalid msg =
      Printf.eprintf "gecko replay: %s\n" msg;
      exit 1
    in
    let contents =
      match In_channel.with_open_bin campaign In_channel.input_all with
      | s -> s
      | exception Sys_error msg -> fail_invalid msg
    in
    (* The campaign file can be a single JSON document (bare spec,
       report, snapshot) or a telemetry JSONL stream; a stream's first
       line is its header. *)
    let spec, config, recorded_final =
      let parse_doc j =
        match Option.bind (Json.member "schema" j) Json.to_string_opt with
        | Some s
          when s = F.Report.schema || s = F.Campaign.snapshot_schema -> (
            match Json.member "spec" j with
            | Some sj -> (F.Spec.of_json sj, None, None)
            | None -> fail_invalid "campaign file has no spec member")
        | Some s when s = F.Telemetry.stream_schema -> (
            match Json.member "spec" j with
            | Some sj ->
                ( F.Spec.of_json sj,
                  Option.map F.Telemetry.config_of_json
                    (Json.member "config" j),
                  None )
            | None -> fail_invalid "telemetry header has no spec member")
        | Some s -> fail_invalid (Printf.sprintf "unknown schema %S" s)
        | None -> (F.Spec.of_json j, None, None)
      in
      match Json.parse contents with
      | Ok j -> ( try parse_doc j with Invalid_argument m -> fail_invalid m)
      | Error _ -> (
          (* JSONL: parse line by line; find the header and the final
             record. *)
          let lines =
            String.split_on_char '\n' contents
            |> List.filter (fun l -> String.trim l <> "")
            |> List.filter_map (fun l ->
                   match Json.parse l with Ok j -> Some j | Error _ -> None)
          in
          match lines with
          | [] -> fail_invalid "campaign file is neither JSON nor JSONL"
          | header :: rest -> (
              try
                let spec, config, _ = parse_doc header in
                let final =
                  List.find_map
                    (fun j ->
                      Option.map F.Telemetry.of_json (Json.member "final" j))
                    rest
                in
                (spec, config, final)
              with Invalid_argument m -> fail_invalid m))
    in
    let device_id =
      match (device, recorded_final) with
      | Some id, _ -> id
      | None, Some t -> (
          match t.F.Telemetry.outliers with
          | o :: _ -> o.F.Telemetry.o_device
          | [] ->
              fail_invalid
                "no outliers in the telemetry stream; give --device")
      | None, None -> fail_invalid "give --device (no telemetry outliers)"
    in
    let rp =
      try F.Campaign.replay ?config ~device_id spec
      with Invalid_argument m -> fail_invalid m
    in
    let d = rp.F.Campaign.rp_device in
    let o = rp.F.Campaign.rp_outcome in
    Printf.printf
      "device %d: %s as %s on %s at (%.1f, %.1f) m, seed %d\n\
      \  completions %d | reboots %d | JIT checkpoints %d (%d failed) | \
       rollbacks %d\n\
      \  brownouts %d | detections %d | corrupt resumes %d | final mode %s\n"
      d.F.Campaign.id d.F.Campaign.workload
      (Compiler.Scheme.to_string d.F.Campaign.scheme)
      (F.Spec.board_slug d.F.Campaign.board)
      d.F.Campaign.x d.F.Campaign.y d.F.Campaign.seed o.M.completions
      o.M.reboots o.M.jit_checkpoints o.M.jit_checkpoint_failures
      o.M.rollbacks o.M.brownouts o.M.detections o.M.corruptions
      (Compiler.Policy.mode_to_string o.M.final_mode);
    let fl = rp.F.Campaign.rp_flight in
    Printf.printf "flight: %d of last %d events recorded (%d older dropped)\n"
      (Gecko.Obs.Flight.length fl)
      (Gecko.Obs.Flight.capacity fl)
      (Gecko.Obs.Flight.dropped fl);
    (match events with
    | Some n ->
        let entries = Gecko.Obs.Flight.entries fl in
        let skip = max 0 (List.length entries - n) in
        List.iteri
          (fun i (e : Gecko.Obs.Flight.entry) ->
            if i >= skip then
              Printf.printf "  %.6f s  %-18s arg %-6d  %.3f V\n"
                e.Gecko.Obs.Flight.e_t e.Gecko.Obs.Flight.e_ev
                e.Gecko.Obs.Flight.e_arg e.Gecko.Obs.Flight.e_v)
          entries
    | None -> ());
    (match flight_out with
    | Some path ->
        write_file path (Gecko.Obs.Flight.to_string fl ^ "\n");
        Printf.printf "flight dump -> %s\n" path
    | None -> ());
    (match trace_out with
    | Some path -> write_trace path rp.F.Campaign.rp_trace
    | None -> ());
    (match metrics_out with
    | Some path ->
        if Filename.check_suffix path ".prom" then begin
          write_file path
            (Gecko.Obs.Metrics.to_prometheus rp.F.Campaign.rp_metrics);
          Printf.printf "metrics -> %s\n" path
        end
        else write_metrics path rp.F.Campaign.rp_metrics
    | None -> ());
    (* Verify the replayed contribution against the campaign's recorded
       outlier record, when we have one. *)
    match recorded_final with
    | None -> ()
    | Some t -> (
        let outlier_json tel id =
          List.find_opt
            (fun (o : F.Telemetry.outlier) -> o.F.Telemetry.o_device = id)
            tel.F.Telemetry.outliers
        in
        match outlier_json t device_id with
        | None ->
            Printf.printf
              "device %d is not among the stream's top-%d outliers; nothing \
               recorded to verify against\n"
              device_id t.F.Telemetry.top_k
        | Some recorded -> (
            match outlier_json rp.F.Campaign.rp_telemetry device_id with
            | None ->
                Printf.eprintf
                  "MISMATCH: replay of device %d produced no outlier record \
                   but the campaign recorded one\n"
                  device_id;
                exit 1
            | Some replayed ->
                let js o =
                  (* Compare through the persisted form: exactly what the
                     stream carried. *)
                  Json.to_string
                    (F.Telemetry.to_json
                       {
                         (F.Telemetry.empty ~top_k:1) with
                         F.Telemetry.outliers = [ o ];
                       })
                in
                if js recorded = js replayed then
                  Printf.printf
                    "replay matches the campaign's recorded outlier record \
                     (score %.1f)\n"
                    recorded.F.Telemetry.o_score
                else begin
                  Printf.eprintf
                    "MISMATCH: replayed outlier record differs from the \
                     campaign's:\n  recorded: %s\n  replayed: %s\n"
                    (js recorded) (js replayed);
                  exit 1
                end))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically re-run one device of a fleet campaign with \
          trace, metrics and flight recorder attached")
    Term.(
      const run $ campaign $ device $ flight_out $ trace_out $ metrics_out
      $ events)

(* --- experiment ------------------------------------------------------- *)

let experiment_cmd =
  let names =
    [ "fig4"; "fig5"; "fig7"; "fig8"; "fig9"; "table1"; "table2"; "fig11";
      "fig12"; "fig13"; "fig14"; "fig15"; "table3"; "ablation";
      "budget-sweep"; "soundness-overhead"; "detection-latency" ]
  in
  let which =
    let doc =
      Printf.sprintf "Artifact to regenerate: %s, or 'all'."
        (String.concat ", " names)
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ARTIFACT" ~doc)
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Use the full sweep grids (slow).")
  in
  let jobs =
    let doc =
      "Size of the experiment pool (independent simulations per sweep \
       point).  Defaults to $(b,GECKO_JOBS) or the runtime's recommended \
       domain count; 1 runs fully serial."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run which full jobs =
    (match jobs with
    | Some n when n >= 1 -> Gecko.Workbench.set_jobs n
    | Some n ->
        Printf.eprintf "--jobs must be >= 1 (got %d)\n" n;
        exit 1
    | None -> ());
    let fidelity =
      if full then Gecko.Experiments.Full else Gecko.Experiments.Quick
    in
    let selected =
      if which = "all" then Gecko.Experiments.artifacts
      else
        List.filter (fun (n, _) -> n = which) Gecko.Experiments.artifacts
    in
    if selected = [] then begin
      Printf.eprintf "unknown artifact %s\n" which;
      exit 1
    end;
    List.iter
      (fun (n, gen) ->
        let a = gen fidelity in
        Printf.printf "=== %s ===\n%s\n" n a.Gecko.Experiments.text;
        flush stdout)
      selected
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a table or figure from the paper's evaluation")
    Term.(const run $ which $ full $ jobs)

let () =
  let info =
    Cmd.info "gecko" ~version:"1.0.0"
      ~doc:
        "EMI attacks on JIT checkpointing and the GECKO defense, on a \
         simulated intermittent system"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; compile_cmd; run_cmd; fuzz_cmd; fleet_cmd; replay_cmd;
            experiment_cmd;
          ]))

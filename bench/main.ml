(* The benchmark harness regenerates every table and figure of the
   paper's evaluation (Section VII plus the attack studies of Section
   IV), then runs Bechamel micro-benchmarks of the core primitives.

   Fidelity: `GECKO_BENCH=full` runs the sweep densities recorded in
   EXPERIMENTS.md; the default quick mode uses coarser grids and shorter
   simulated durations (same code paths).

   Besides the ASCII report on stdout, the harness writes
   BENCH_results.json (override with GECKO_BENCH_OUT): each experiment's
   headline scalars plus the micro-benchmark ns/run estimates. *)

module E = Gecko_harness.Experiments
module Core = Gecko_core
module W = Gecko_workloads.Workload
module Json = Gecko_obs.Json
open Gecko_isa

let fidelity =
  match Sys.getenv_opt "GECKO_BENCH" with
  | Some "full" -> E.Full
  | Some ("quick" | "") | None -> E.Quick
  | Some other ->
      Printf.eprintf
        "gecko-bench: unrecognized GECKO_BENCH=%S (expected \"quick\" or \
         \"full\"); falling back to quick fidelity\n%!"
        other;
      E.Quick

(* Every wall-clock figure that lands in BENCH_results.json comes from
   the process-wide Gecko_util.Clock, pointed here at the OS monotonic
   clock (bechamel's CLOCK_MONOTONIC binding) — NTP steps and
   gettimeofday jumps cannot bend a benchmark number.  Gecko_fleet's
   internal telemetry timing goes through the same source. *)
let () =
  Gecko_util.Clock.set_source (fun () ->
      Int64.to_float (Monotonic_clock.now ()) /. 1e9)

let now () = Gecko_util.Clock.now ()

let banner name =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 74 '=') name
    (String.make 74 '=')

let regenerate () =
  List.map
    (fun (name, gen) ->
      let t0 = now () in
      let a : E.artifact = gen fidelity in
      let wall = now () -. t0 in
      banner name;
      print_string a.E.text;
      Printf.printf "[%s: %.2f s]\n" name wall;
      flush stdout;
      (name, a.E.metrics @ [ ("wall_seconds", wall) ]))
    E.artifacts

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let crc32_prog = lazy ((W.find "crc32").W.build ())

(* Real compile+link cost: calls the pipeline directly, never touching
   the Workbench memo table, so every iteration pays the whole pass
   stack.  Labeled "cold" to distinguish it from the cache-hit variant
   below — earlier revisions of this harness left the distinction
   implicit, which made the numbers easy to misread as cached. *)
let bench_compile scheme =
  Test.make
    ~name:
      (Printf.sprintf "compile crc32 as %s (cold)" (Core.Scheme.to_string scheme))
    (Staged.stage (fun () ->
         let p, _meta = Core.Pipeline.compile scheme (Lazy.force crc32_prog) in
         ignore (Link.link p)))

(* The memoized path every experiment and fleet shard actually takes
   after the first compile of a (program, scheme) pair: a mutex-guarded
   hashtable hit. *)
let bench_compile_cached =
  let prog = Lazy.force crc32_prog in
  ignore (Gecko_harness.Workbench.compiled Core.Scheme.Gecko prog);
  Test.make ~name:"compile crc32 as gecko (workbench cache hit)"
    (Staged.stage (fun () ->
         ignore (Gecko_harness.Workbench.compiled Core.Scheme.Gecko prog)))

let bench_simulate scheme =
  let image, meta =
    let p, meta = Core.Pipeline.compile scheme (Lazy.force crc32_prog) in
    (Link.link p, meta)
  in
  let board = Gecko_machine.Board.default () in
  Test.make
    ~name:(Printf.sprintf "simulate crc32 as %s" (Core.Scheme.to_string scheme))
    (Staged.stage (fun () ->
         ignore
           (Gecko_machine.Machine.run ~board ~image ~meta
              Gecko_machine.Machine.default_options)))

let bench_amplitude =
  let profile =
    Gecko_devices.Catalog.msp430fr5994.Gecko_devices.Device.adc_profile
  in
  let attack =
    Gecko_emi.Attack.remote ~distance_m:1.0
      (Gecko_emi.Signal.make ~freq_mhz:27. ~power_dbm:30.)
  in
  Test.make ~name:"emi induced_amplitude"
    (Staged.stage (fun () ->
         ignore (Gecko_emi.Attack.induced_amplitude ~profile attack)))

let bench_capacitor =
  Test.make ~name:"capacitor drain+charge x100"
    (Staged.stage (fun () ->
         let c =
           Gecko_energy.Capacitor.create ~capacitance:1e-3 ~v_max:3.3
             ~v_init:3.0
         in
         for _ = 1 to 100 do
           ignore (Gecko_energy.Capacitor.drain c 1e-9);
           Gecko_energy.Capacitor.source_current c ~amps:1e-3 ~dt:1e-6
         done))

let micro_benchmarks () =
  banner "Bechamel micro-benchmarks (ns per run)";
  let tests =
    Test.make_grouped ~name:"gecko"
      [
        bench_compile Core.Scheme.Nvp;
        bench_compile Core.Scheme.Ratchet;
        bench_compile Core.Scheme.Gecko;
        bench_compile_cached;
        bench_simulate Core.Scheme.Nvp;
        bench_simulate Core.Scheme.Gecko;
        bench_amplitude;
        bench_capacitor;
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some [ v ] -> v
        | Some _ | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !rows
  in
  List.iter
    (fun (name, ns) ->
      (* Bechamel's OLS fit degenerates to nan when the quota is too
         tight for a stable estimate; don't print a misleading number. *)
      if Float.is_nan ns then Printf.printf "%-40s %14s\n" name "n/a"
      else Printf.printf "%-40s %14.0f ns/run\n" name ns)
    rows;
  rows

(* Single-run interpreter throughput: simulated instructions retired per
   wall-clock second on a long uninterrupted crc32 run.  The GECKO
   number is the headline for interpreter-level optimizations,
   independent of the experiment pool; NVP and Ratchet ride along so a
   dispatch change that helps one scheme's instruction mix but hurts
   another's is visible. *)
let sim_instr_per_sec scheme =
  let image, meta =
    let p, meta = Core.Pipeline.compile scheme (Lazy.force crc32_prog) in
    (Link.link p, meta)
  in
  let board = Gecko_machine.Board.default () in
  let opts =
    {
      Gecko_machine.Machine.default_options with
      limit = Gecko_machine.Machine.Sim_time 2.0;
      restart_on_halt = true;
      max_sim_time = 3.0;
    }
  in
  (* Best of three identical runs: the run is deterministic, so the
     spread is pure host noise (scheduler, thermal throttle) and the
     fastest run is the least-perturbed measurement. *)
  let once () =
    let t0 = now () in
    let o = Gecko_machine.Machine.run ~board ~image ~meta opts in
    let wall = now () -. t0 in
    float_of_int o.Gecko_machine.Machine.instructions /. Float.max wall 1e-9
  in
  let r1 = once () in
  let r2 = once () in
  let r3 = once () in
  Float.max r1 (Float.max r2 r3)

(* Dispatch-layer profile: one-time decode cost, how much of the decoded
   stream the superinstruction fuser covered, and the resulting
   interpreter rate, per workload (all under GECKO, the scheme with the
   busiest instruction stream). *)
let dispatch_bench () =
  let workloads =
    match fidelity with
    | E.Quick -> [ "crc32"; "fir"; "qsort" ]
    | E.Full -> List.map (fun w -> w.W.name) W.all
  in
  let board = Gecko_machine.Board.default () in
  let device = board.Gecko_machine.Board.device in
  let t0 = now () in
  let rows =
    List.map
      (fun name ->
        let image, meta, dec =
          Gecko_harness.Workbench.decoded Core.Scheme.Gecko
            ((W.find name).W.build ())
            ~board
        in
        (* Decode is a one-time pass; average a small batch so the
           figure is stable at microsecond scale. *)
        let reps = 100 in
        let d0 = now () in
        for _ = 1 to reps do
          ignore (Gecko_machine.Decode.decode ~device image)
        done;
        let decode_ns = (now () -. d0) *. 1e9 /. float_of_int reps in
        let opts =
          {
            Gecko_machine.Machine.default_options with
            limit = Gecko_machine.Machine.Sim_time 0.5;
            restart_on_halt = true;
            max_sim_time = 1.0;
            decoded = Some dec;
          }
        in
        let r0 = now () in
        let o = Gecko_machine.Machine.run ~board ~image ~meta opts in
        let wall = now () -. r0 in
        let ips =
          float_of_int o.Gecko_machine.Machine.instructions
          /. Float.max wall 1e-9
        in
        (name, decode_ns, Gecko_machine.Decode.fused_share dec, ips))
      workloads
  in
  let wall = now () -. t0 in
  Printf.printf "%-14s %14s %12s %14s\n" "workload" "decode ns" "fused share"
    "sim instr/s";
  List.iter
    (fun (name, decode_ns, share, ips) ->
      Printf.printf "%-14s %14.0f %11.0f%% %14.3e\n" name decode_ns
        (100. *. share) ips)
    rows;
  List.concat_map
    (fun (name, decode_ns, share, ips) ->
      [
        (name ^ "_decode_ns", decode_ns);
        (name ^ "_fused_share", share);
        (name ^ "_instr_per_sec", ips);
      ])
    rows
  @ [ ("wall_seconds", wall) ]

(* Fleet campaign throughput: devices simulated per wall second (and the
   aggregate simulated-instruction rate) on a fixed-seed campaign over
   the shared Workbench pool, once per engine — "fleet" stays the scalar
   engine (so the artifact's meaning is stable across revisions) and
   "lockstep" is the batched engine's headline.  The two merged reports
   must be byte-identical; a divergence here is a correctness bug in the
   batched engine, so the harness hard-fails rather than publish numbers
   for two engines that disagree. *)
let fleet_bench () =
  (* 256 devices minimum even in quick mode: the lockstep engine batches
     in windows of [Gecko_fleet.Lockstep.default_width] (= 256) devices,
     so anything smaller measures its degenerate partial-window path and
     under-reports the batched engine against scalar. *)
  let devices = match fidelity with E.Quick -> 256 | E.Full -> 512 in
  let spec = Gecko_fleet.Spec.make ~devices ~attackers:2 ~seed:1 () in
  let run_engine engine =
    let t0 = now () in
    (* Flight recorders on for every device (telemetry armed, no stream
       file): the headline throughput includes the observability tax. *)
    let r =
      Gecko_fleet.Campaign.run ~engine
        ~telemetry:Gecko_fleet.Telemetry.default_config spec
    in
    let wall = now () -. t0 in
    let instr = float_of_int r.Gecko_fleet.Campaign.instructions_run in
    let devices_per_sec = float_of_int devices /. Float.max wall 1e-9 in
    let sim_instr_per_sec = instr /. Float.max wall 1e-9 in
    Printf.printf
      "%d devices in %.2f s wall (%s engine): %.1f devices/s, %.3e sim \
       instr/s\n"
      devices wall
      (Gecko_fleet.Campaign.engine_slug engine)
      devices_per_sec sim_instr_per_sec;
    ( r,
      [
        ("devices", float_of_int devices);
        ("devices_per_sec", devices_per_sec);
        ("sim_instr_per_sec", sim_instr_per_sec);
        ("wall_seconds", wall);
      ] )
  in
  let r_scalar, scalar_metrics = run_engine Gecko_fleet.Campaign.Scalar in
  let r_lockstep, lockstep_metrics = run_engine Gecko_fleet.Campaign.Lockstep in
  let report_string r =
    match r.Gecko_fleet.Campaign.report with
    | Some rep -> Json.to_string (Gecko_fleet.Report.to_json rep)
    | None -> ""
  in
  if not (String.equal (report_string r_scalar) (report_string r_lockstep))
  then begin
    Printf.eprintf
      "gecko-bench: FATAL: scalar and lockstep fleet reports differ — the \
       batched engine diverged from the reference semantics\n%!";
    exit 1
  end;
  print_newline ();
  (match r_lockstep.Gecko_fleet.Campaign.report with
  | Some rep -> print_string (Gecko_fleet.Report.render rep)
  | None -> ());
  (scalar_metrics, lockstep_metrics)

let results_json ~experiments ~micro ~instr_per_sec ~wall_total =
  let metric_obj ms =
    Json.Assoc
      (List.map
         (fun (k, v) ->
           (k, if Float.is_nan v then Json.Null else Json.Float v))
         ms)
  in
  Json.Assoc
    [
      ("schema", Json.String "gecko-bench-v1");
      ( "fidelity",
        Json.String (match fidelity with E.Quick -> "quick" | E.Full -> "full")
      );
      ("jobs", Json.Int (Gecko_harness.Workbench.jobs ()));
      ("wall_seconds_total", Json.Float wall_total);
      ("sim_instr_per_sec", Json.Float instr_per_sec);
      ( "experiments",
        Json.Assoc (List.map (fun (n, ms) -> (n, metric_obj ms)) experiments)
      );
      ("microbench_ns", metric_obj micro);
    ]

let () =
  (match Sys.getenv_opt "GECKO_JOBS" with
  | Some s when int_of_string_opt s = None ->
      Printf.eprintf
        "gecko-bench: unrecognized GECKO_JOBS=%S (expected an integer >= 1)\n%!"
        s
  | Some _ | None -> ());
  Printf.printf
    "GECKO benchmark harness — %s fidelity, %d jobs (set GECKO_BENCH=full \
     for the grids recorded in EXPERIMENTS.md; GECKO_JOBS=N sizes the \
     experiment pool)\n"
    (match fidelity with E.Quick -> "quick" | E.Full -> "full")
    (Gecko_harness.Workbench.jobs ());
  let t0 = now () in
  let experiments = regenerate () in
  let micro = micro_benchmarks () in
  banner "Interpreter throughput";
  let per_scheme =
    List.map
      (fun s ->
        (String.lowercase_ascii (Core.Scheme.to_string s), sim_instr_per_sec s))
      [ Core.Scheme.Nvp; Core.Scheme.Ratchet; Core.Scheme.Gecko ]
  in
  List.iter
    (fun (n, v) ->
      Printf.printf "simulated instructions per wall second (%s): %.3e\n" n v)
    per_scheme;
  let instr_per_sec =
    match List.rev per_scheme with (_, v) :: _ -> v | [] -> nan
  in
  banner "Dispatch profile";
  let dispatch_metrics =
    dispatch_bench ()
    @ List.map (fun (n, v) -> ("sim_instr_per_sec_" ^ n, v)) per_scheme
  in
  banner "Fleet campaign throughput";
  let fleet_metrics, lockstep_metrics = fleet_bench () in
  let experiments =
    experiments
    @ [
        ("dispatch", dispatch_metrics);
        ("fleet", fleet_metrics);
        ("lockstep", lockstep_metrics);
      ]
  in
  let wall_total = now () -. t0 in
  Printf.printf "\ntotal wall time: %.2f s\n" wall_total;
  let out =
    match Sys.getenv_opt "GECKO_BENCH_OUT" with
    | Some p -> p
    | None -> "BENCH_results.json"
  in
  let oc = open_out out in
  output_string oc
    (Json.to_string
       (results_json ~experiments ~micro ~instr_per_sec ~wall_total));
  output_char oc '\n';
  close_out oc;
  Printf.printf "results -> %s\n" out

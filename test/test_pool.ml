(* The domain pool under the experiment harness: ordering, exception
   propagation, serial (size-1) equivalence, and a stress run with many
   more tasks than domains. *)

module Pool = Gecko_util.Pool

let with_pool ~jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_preserves_order () =
  with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      let expect = List.map (fun x -> x * x) xs in
      Alcotest.(check (list int))
        "squares in input order" expect
        (Pool.map p (fun x -> x * x) xs))

let test_empty_and_singleton () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map p (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map p (fun x -> x + 1) [ 6 ]))

let test_exception_propagates () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.check_raises "first failure in input order re-raised"
        (Failure "task 3") (fun () ->
          ignore
            (Pool.map p
               (fun i -> if i >= 3 then failwith (Printf.sprintf "task %d" i) else i)
               (List.init 10 Fun.id))))

let test_survives_failure () =
  (* A failed batch must not wedge the pool for subsequent batches. *)
  with_pool ~jobs:3 (fun p ->
      (try ignore (Pool.map p (fun _ -> failwith "boom") [ 1; 2; 3 ])
       with Failure _ -> ());
      Alcotest.(check (list int))
        "pool still works after a failed batch" [ 2; 4; 6 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_serial_matches_list_map () =
  with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "size clamps to 1" 1 (Pool.jobs p);
      let xs = List.init 50 (fun i -> i - 25) in
      let f x = (x * 3) + 1 in
      Alcotest.(check (list int))
        "size-1 pool is List.map" (List.map f xs) (Pool.map p f xs))

let test_stress_many_tasks () =
  with_pool ~jobs:4 (fun p ->
      let n = 500 in
      let xs = List.init n Fun.id in
      (* Several batches back to back on the same pool, each much larger
         than the domain count. *)
      for round = 1 to 3 do
        let expect = List.map (fun x -> (x * round) mod 97) xs in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          expect
          (Pool.map p (fun x -> (x * round) mod 97) xs)
      done)

let test_default_jobs_positive () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* Workbench.pmap rides on the shared pool; with several distinct
   failures in flight, the one re-raised must be the earliest in INPUT
   order, not completion order.  The earliest failing task is also the
   slowest, so any completion-order implementation would raise one of
   the later, faster failures instead. *)
let test_workbench_pmap_first_failure_in_input_order () =
  Gecko_harness.Workbench.set_jobs 3;
  Alcotest.check_raises "earliest input-order failure re-raised"
    (Failure "task 2") (fun () ->
      ignore
        (Gecko_harness.Workbench.pmap
           (fun i ->
             if i = 2 then begin
               let s = ref 0 in
               for k = 1 to 2_000_000 do
                 s := !s + k
               done;
               ignore (Sys.opaque_identity !s);
               failwith "task 2"
             end
             else if i = 5 || i = 7 then failwith (Printf.sprintf "task %d" i)
             else i)
           (List.init 12 Fun.id)))

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "preserves order" `Quick test_preserves_order;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "usable after failure" `Quick test_survives_failure;
          Alcotest.test_case "size 1 = List.map" `Quick test_serial_matches_list_map;
          Alcotest.test_case "stress: many tasks" `Quick test_stress_many_tasks;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "workbench",
        [
          Alcotest.test_case "pmap first failure in input order" `Quick
            test_workbench_pmap_first_failure_in_input_order;
        ] );
    ]

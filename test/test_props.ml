(* Property-based tests: random programs through the whole stack.

   The central properties mirror the paper's guarantees:
   - every scheme is crash-consistent under arbitrary outage trains;
   - GECKO additionally stays crash-consistent while a resonant EMI
     attack manipulates the voltage monitor;
   - the compiler's static invariants (idempotence, slot colouring,
     accounting) hold on every generated program. *)

open Gecko_isa
module Core = Gecko_core
module M = Gecko_machine
module H = Gecko_energy.Harvester

let compile scheme seed = Core.Pipeline.compile scheme (Gen_prog.generate seed)

(* Outage-prone board: tiny storage, weak harvester, fast boots. *)
let crashy_board () =
  let device =
    let d = Gecko_devices.Catalog.evaluation_board in
    {
      d with
      Gecko_devices.Device.core =
        {
          d.Gecko_devices.Device.core with
          Gecko_devices.Device.reboot_latency = 2e-4;
          reboot_energy = 6e-7;
        };
    }
  in
  {
    (M.Board.default ~device
       ~harvester:(H.thevenin ~v_source:3.3 ~r_source:2000.) ())
    with
    M.Board.capacitance = 0.6e-6;
  }

let run_to_completion ~board ~image ~meta ~schedule =
  M.Machine.run_with_nvm ~board ~image ~meta
    {
      M.Machine.default_options with
      schedule;
      max_sim_time = 120.;
      seed = 3;
    }

let crash_consistent scheme ~attacked seed =
  let p, meta = compile scheme seed in
  let image = Link.link p in
  let board = crashy_board () in
  let golden = M.Machine.golden_nvm ~board ~image ~meta in
  let schedule =
    if attacked then
      Gecko_emi.Schedule.always
        (Gecko_emi.Attack.remote ~distance_m:0.1
           (Gecko_emi.Signal.make ~freq_mhz:27. ~power_dbm:20.))
    else Gecko_emi.Schedule.empty
  in
  let o, nvm = run_to_completion ~board ~image ~meta ~schedule in
  o.M.Machine.completions = 1 && nvm = golden

let seed_gen = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 99999)

let prop_crash_consistency scheme =
  QCheck.Test.make ~count:60
    ~name:
      (Printf.sprintf "%s crash-consistent on random programs"
         (Core.Scheme.to_string scheme))
    seed_gen
    (fun seed -> crash_consistent scheme ~attacked:false seed)

let prop_gecko_under_attack =
  QCheck.Test.make ~count:50
    ~name:"GECKO crash-consistent under resonant EMI attack" seed_gen
    (fun seed -> crash_consistent Core.Scheme.Gecko ~attacked:true seed)

let prop_compiler_invariants =
  QCheck.Test.make ~count:120 ~name:"compiler invariants on random programs"
    seed_gen (fun seed ->
      let p, meta = compile Core.Scheme.Gecko seed in
      let s = meta.Core.Meta.stats in
      (* Verification passes already ran inside the pipeline; re-check the
         externally visible invariants. *)
      Core.Regions.violations p = []
      && Core.Verify.coloring p meta = Ok ()
      && s.Core.Meta.kept + s.Core.Meta.pruned = s.Core.Meta.candidates
      && Core.Pipeline.checkpoint_store_count p = s.Core.Meta.kept)

let prop_cross_scheme_agreement =
  QCheck.Test.make ~count:25
    ~name:"all schemes compute the same final state" seed_gen (fun seed ->
      let board = M.Board.default () in
      let final scheme =
        let p, meta = compile scheme seed in
        let image = Link.link p in
        let _, nvm =
          M.Machine.run_with_nvm ~board ~image ~meta
            M.Machine.default_options
        in
        nvm
      in
      let reference = final Core.Scheme.Nvp in
      List.for_all
        (fun s -> final s = reference)
        [ Core.Scheme.Ratchet; Core.Scheme.Gecko_noprune; Core.Scheme.Gecko ])

(* Physics-level properties. *)

let prop_capacitor_bounds =
  QCheck.Test.make ~count:200 ~name:"capacitor voltage stays in range"
    QCheck.(triple (float_bound_inclusive 3.3) pos_float pos_float)
    (fun (v0, joules, amps) ->
      let c =
        Gecko_energy.Capacitor.create ~capacitance:1e-4 ~v_max:3.3 ~v_init:v0
      in
      ignore (Gecko_energy.Capacitor.drain c (Float.min joules 1.0));
      Gecko_energy.Capacitor.source_current c ~amps:(Float.min amps 10.)
        ~dt:1e-3;
      let v = Gecko_energy.Capacitor.voltage c in
      v >= 0. && v <= 3.3)

let prop_path_loss_monotone =
  QCheck.Test.make ~count:100 ~name:"induced amplitude decays with distance"
    QCheck.(pair (float_range 0.1 4.9) (float_range 0.05 1.0))
    (fun (d, step) ->
      let profile = Gecko_emi.Coupling.profile [ Gecko_emi.Coupling.peak ~f0_mhz:27. ~half_width_mhz:6. ~gain:3. ] in
      let amp dist =
        Gecko_emi.Attack.induced_amplitude ~profile
          (Gecko_emi.Attack.remote ~distance_m:dist
             (Gecko_emi.Signal.make ~freq_mhz:27. ~power_dbm:30.))
      in
      amp d >= amp (d +. step))

let prop_amplitude_monotone_power =
  QCheck.Test.make ~count:100 ~name:"induced amplitude grows with power"
    QCheck.(pair (float_range 0. 30.) (float_range 0.1 5.))
    (fun (p, dp) ->
      let profile = Gecko_emi.Coupling.profile [ Gecko_emi.Coupling.peak ~f0_mhz:27. ~half_width_mhz:6. ~gain:3. ] in
      let amp power =
        Gecko_emi.Attack.induced_amplitude ~profile
          (Gecko_emi.Attack.remote ~distance_m:1.
             (Gecko_emi.Signal.make ~freq_mhz:27. ~power_dbm:power))
      in
      amp (p +. dp) >= amp p)

let prop_asm_roundtrip =
  QCheck.Test.make ~count:120 ~name:"assembly round-trips" seed_gen (fun seed ->
      let p = Gen_prog.generate seed in
      let text = Asm.to_string p in
      match Asm.parse text with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok p' -> Asm.to_string p' = text)

let prop_machine_deterministic =
  QCheck.Test.make ~count:20 ~name:"simulation is deterministic" seed_gen
    (fun seed ->
      let p, meta = compile Core.Scheme.Gecko seed in
      let image = Link.link p in
      let board = crashy_board () in
      let once () =
        let o, nvm = run_to_completion ~board ~image ~meta ~schedule:Gecko_emi.Schedule.empty in
        (o.M.Machine.completions, o.M.Machine.reboots, o.M.Machine.sim_time, nvm)
      in
      once () = once ())

(* --- differential: optimized interpreter vs frozen reference --------- *)

(* [Ref_machine] is a verbatim copy of the interpreter from before the
   hot-path optimizations (attack-window cursor, cached device
   constants, batched ADC observation, hoisted IO RNG).  Every
   optimization must be semantics-preserving, so both interpreters must
   produce identical outcomes — including bit-exact floats, the IO
   stream and the event log — on random programs, schemes, boards and
   attack schedules. *)

let random_schedule seed =
  let rng = Gecko_util.Rng.create (seed + 17) in
  let n = Gecko_util.Rng.int rng 4 in
  let t = ref 0.0 in
  let wins =
    List.init n (fun _ ->
        let gap = float_of_int (1 + Gecko_util.Rng.int rng 40) *. 1e-3 in
        let len = float_of_int (1 + Gecko_util.Rng.int rng 40) *. 1e-3 in
        let t0 = !t +. gap in
        t := t0 +. len;
        let freq = 20. +. float_of_int (Gecko_util.Rng.int rng 15) in
        let power = 10. +. float_of_int (Gecko_util.Rng.int rng 25) in
        Gecko_emi.Schedule.window ~t_start:t0 ~t_end:!t
          (Gecko_emi.Attack.remote ~distance_m:0.1
             (Gecko_emi.Signal.make ~freq_mhz:freq ~power_dbm:power)))
  in
  Gecko_emi.Schedule.make wins

(* Project both outcome types onto one comparable shape (the reference
   predates the [instructions] counter, which is therefore excluded). *)
let norm_m (o : M.Machine.outcome) =
  ( ( o.M.Machine.completions,
      o.M.Machine.completion_times,
      o.M.Machine.sim_time,
      o.M.Machine.app_cycles,
      o.M.Machine.app_seconds,
      o.M.Machine.instrumentation_cycles ),
    ( o.M.Machine.jit_checkpoints,
      o.M.Machine.jit_checkpoint_failures,
      o.M.Machine.reboots,
      o.M.Machine.brownouts,
      o.M.Machine.detections,
      o.M.Machine.reenables ),
    ( o.M.Machine.rollbacks,
      o.M.Machine.recovery_block_runs,
      o.M.Machine.misspeculations,
      o.M.Machine.corruptions,
      o.M.Machine.io_out_count,
      o.M.Machine.io_log,
      o.M.Machine.final_mode ),
    (match o.M.Machine.timeline with
    | None -> None
    | Some tl ->
        Some
          ( tl.M.Machine.bucket,
            tl.M.Machine.app_seconds_per_bucket,
            tl.M.Machine.completions_per_bucket )),
    List.map (Format.asprintf "%a" M.Machine.pp_event) o.M.Machine.events,
    o.M.Machine.hit_limit )

let norm_r (o : Ref_machine.outcome) =
  ( ( o.Ref_machine.completions,
      o.Ref_machine.completion_times,
      o.Ref_machine.sim_time,
      o.Ref_machine.app_cycles,
      o.Ref_machine.app_seconds,
      o.Ref_machine.instrumentation_cycles ),
    ( o.Ref_machine.jit_checkpoints,
      o.Ref_machine.jit_checkpoint_failures,
      o.Ref_machine.reboots,
      o.Ref_machine.brownouts,
      o.Ref_machine.detections,
      o.Ref_machine.reenables ),
    ( o.Ref_machine.rollbacks,
      o.Ref_machine.recovery_block_runs,
      o.Ref_machine.misspeculations,
      o.Ref_machine.corruptions,
      o.Ref_machine.io_out_count,
      o.Ref_machine.io_log,
      o.Ref_machine.final_mode ),
    (match o.Ref_machine.timeline with
    | None -> None
    | Some tl ->
        Some
          ( tl.Ref_machine.bucket,
            tl.Ref_machine.app_seconds_per_bucket,
            tl.Ref_machine.completions_per_bucket )),
    List.map (Format.asprintf "%a" Ref_machine.pp_event) o.Ref_machine.events,
    o.Ref_machine.hit_limit )

let diff_board seed =
  let b = crashy_board () in
  if seed mod 2 = 0 then b
  else
    { b with M.Board.monitor_choice = Gecko_devices.Device.Use_comparator }

let prop_optimized_matches_reference =
  QCheck.Test.make ~count:24
    ~name:"optimized interpreter matches the frozen reference" seed_gen
    (fun seed ->
      let scheme =
        List.nth
          [ Core.Scheme.Nvp; Core.Scheme.Ratchet; Core.Scheme.Gecko_noprune;
            Core.Scheme.Gecko ]
          (seed mod 4)
      in
      (* A third of the Gecko seeds compile speculatively so the guarded
         undo-log protocol (volatile mirrors, epoch-packed commits,
         rollback replay) is diffed against the reference too. *)
      let mode =
        match scheme with
        | Core.Scheme.Gecko when seed mod 3 = 0 -> Core.Mode.Speculative
        | _ -> Core.Mode.default
      in
      let p, meta = Core.Pipeline.compile ~mode scheme (Gen_prog.generate seed) in
      let image = Link.link ~guards:meta.Core.Meta.guards p in
      let board = diff_board seed in
      let schedule = random_schedule seed in
      (* Arm the pure observers on the optimized side for half the
         seeds: a metrics registry and a flight recorder must not
         perturb a single float of the outcome, and the reference knows
         nothing of either. *)
      let observers = seed mod 2 = 1 in
      let o =
        M.Machine.run ~board ~image ~meta
          {
            M.Machine.default_options with
            schedule;
            limit = M.Machine.Sim_time 0.2;
            max_sim_time = 0.25;
            seed;
            restart_on_halt = true;
            record_io = true;
            record_events = true;
            timeline_bucket = Some 0.01;
            metrics =
              (if observers then Some (Gecko_obs.Metrics.create ()) else None);
            flight =
              (if observers then Some (Gecko_obs.Flight.create ~capacity:64 ())
               else None);
          }
      in
      let r =
        Ref_machine.run ~board ~image ~meta
          {
            Ref_machine.default_options with
            Ref_machine.schedule;
            limit = Ref_machine.Sim_time 0.2;
            max_sim_time = 0.25;
            seed;
            restart_on_halt = true;
            record_io = true;
            record_events = true;
            timeline_bucket = Some 0.01;
          }
      in
      norm_m o = norm_r r)

(* The hoisted per-run IO RNG must reproduce the stream the reference
   obtains by allocating a fresh generator per [In]. *)
let prop_rng_reseed_matches_fresh =
  QCheck.Test.make ~count:200 ~name:"Rng.reseed matches a fresh generator"
    seed_gen (fun seed ->
      let shared = Gecko_util.Rng.create 0 in
      Gecko_util.Rng.reseed shared seed;
      let fresh = Gecko_util.Rng.create seed in
      let draws g =
        let out = ref [] in
        for _ = 1 to 5 do
          out := Gecko_util.Rng.int g 1024 :: !out
        done;
        !out
      in
      draws shared = draws fresh)

let prop_io_stream_unchanged =
  QCheck.Test.make ~count:12
    ~name:"hoisted IO RNG leaves the io_log stream unchanged" seed_gen
    (fun seed ->
      let image, meta =
        Gecko_harness.Workbench.compiled Core.Scheme.Nvp
          (Gecko_harness.Workbench.sense_app ())
      in
      let board = crashy_board () in
      let opts_common = (0.15, seed) in
      let sim_t, s = opts_common in
      let o =
        M.Machine.run ~board ~image ~meta
          {
            M.Machine.default_options with
            limit = M.Machine.Sim_time sim_t;
            max_sim_time = sim_t +. 0.05;
            seed = s;
            restart_on_halt = true;
            record_io = true;
          }
      in
      let r =
        Ref_machine.run ~board ~image ~meta
          {
            Ref_machine.default_options with
            Ref_machine.limit = Ref_machine.Sim_time sim_t;
            max_sim_time = sim_t +. 0.05;
            seed = s;
            restart_on_halt = true;
            record_io = true;
          }
      in
      o.M.Machine.io_log <> []
      && o.M.Machine.io_log = r.Ref_machine.io_log)

(* Dynamic WCET: on steady power, consecutive boundary commits are never
   further apart than the compile-time budget. *)
let prop_dynamic_budget =
  QCheck.Test.make ~count:20 ~name:"runtime spans respect the budget" seed_gen
    (fun seed ->
      let budget = 150 in
      let p, meta =
        Core.Pipeline.compile ~budget_cycles:budget Core.Scheme.Gecko
          (Gen_prog.generate seed)
      in
      ignore meta;
      (* Static check is authoritative; it already ran in the pipeline.
         Re-assert the exposed invariant. *)
      Core.Verify.wcet ~budget p = Ok ())

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "crash-consistency",
        q
          [
            prop_crash_consistency Core.Scheme.Nvp;
            prop_crash_consistency Core.Scheme.Ratchet;
            prop_crash_consistency Core.Scheme.Gecko_noprune;
            prop_crash_consistency Core.Scheme.Gecko;
            prop_gecko_under_attack;
          ] );
      ( "compiler",
        q [ prop_compiler_invariants; prop_cross_scheme_agreement ] );
      ("asm", q [ prop_asm_roundtrip ]);
      ( "machine",
        q [ prop_machine_deterministic; prop_dynamic_budget ] );
      ( "differential",
        q
          [
            prop_optimized_matches_reference;
            prop_rng_reseed_matches_fresh;
            prop_io_stream_unchanged;
          ] );
      ( "physics",
        q
          [
            prop_capacitor_bounds;
            prop_path_loss_monotone;
            prop_amplitude_monotone_power;
          ] );
    ]

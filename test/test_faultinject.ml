(* Tentpole tests for the fault-injection layer (Gecko_faultinject):
   the exhaustive single-failure explorer over every workload x scheme,
   the pinned vulnerability/defect landscape, the EMI schedule fuzzer,
   the corruptions regression of the paper's headline result, and the
   sabotage acceptance demo (deliberately broken colouring caught and
   shrunk to a tiny replayable reproducer). *)

open Gecko_isa
module Core = Gecko_core
module M = Gecko_machine.Machine
module Board = Gecko_machine.Board
module H = Gecko_energy.Harvester
module Schedule = Gecko_emi.Schedule
module W = Gecko_workloads
module FI = Gecko_faultinject

(* A starved board: the tiny capacitor makes the usable energy above
   [v_backup] small enough that checkpoints trigger mid-run, while the
   2.8 V backup threshold leaves a reserve large enough for the 96-word
   ISR to finish.  This yields censuses rich in checkpoint-word,
   rollback-step and event sites for every scheme. *)
let fi_board () =
  {
    (Board.default ~harvester:(H.thevenin ~v_source:3.3 ~r_source:2000.) ())
    with
    Board.capacitance = 0.6e-6;
    v_backup = 2.8;
  }

let compile ?budget_cycles ?mode scheme w =
  let prog = (W.Workload.find w).W.Workload.build () in
  let p, meta = Core.Pipeline.compile ?budget_cycles ?mode scheme prog in
  (Link.link ~guards:meta.Core.Meta.guards p, meta)

let explore ?(budget = 120) ?pairs ?mode scheme w =
  let image, meta = compile ?mode scheme w in
  FI.Explore.explore ~jobs:2 ~budget ?pairs ~board:(fi_board ()) ~image ~meta ()

(* {1 The explorer sweep: every workload x every scheme}

   Expectations pinned from an exhaustive (budget 400) run of the
   explorer, re-checked here at CI budget:

   - Ratchet's parity double-buffering survives a collapse at every
     explored site of every workload.
   - NVP is crash-INCONSISTENT on qsort and fft: a collapse inside the
     JIT checkpoint window resumes from a half-written snapshot (the
     attack surface of the paper; kept as the positive control that the
     explorer still has teeth).
   - GECKO is crash-consistent on ALL workloads.  The five formerly
     defective ones (basicmath, blink, dhrystone, fft, qsort — may-alias
     WAR hazards through dynamically addressed stores, and blink's torn
     io_log across a rollback) went clean with the sound pipeline
     (hazard-aware region formation + owner-only pinned reuse +
     Verify.slots/io_commit gates + staged io_log commit); they get
     extra k=2 pair exploration below so a regression in the fix shows
     up as a FOUND failure here. *)

let nvp_failing = [ "fft"; "qsort" ]

(* Defective before the sound may-alias pipeline; pinned clean now. *)
let gecko_formerly_failing = [ "basicmath"; "blink"; "dhrystone"; "fft"; "qsort" ]

let expect_failures scheme w =
  match scheme with
  | Core.Scheme.Ratchet -> false
  | Core.Scheme.Nvp -> List.mem w nvp_failing
  | Core.Scheme.Gecko | Core.Scheme.Gecko_noprune -> false

let sweep_one scheme w =
  (* blink's and fft's former GECKO defects sat at single sites the CI
     stride misses; keep the full exhaustive budget there (still cheap)
     so a regression cannot hide between strides. *)
  let budget =
    if scheme = Core.Scheme.Gecko && (w = "blink" || w = "fft") then 400
    else 120
  in
  let r = explore ~budget scheme w in
  let tag = Printf.sprintf "%s/%s" (Core.Scheme.to_string scheme) w in
  Alcotest.(check bool) (tag ^ " baseline passes oracle") true
    r.FI.Explore.baseline_ok;
  Alcotest.(check bool) (tag ^ " sites found") true (r.FI.Explore.sites_total > 0);
  Alcotest.(check bool)
    (Printf.sprintf "%s failures (%d found)" tag
       (List.length r.FI.Explore.failures))
    (expect_failures scheme w)
    (r.FI.Explore.failures <> [])

let test_sweep scheme () = List.iter (sweep_one scheme) W.Workload.names

let test_blink_io_log_intact () =
  (* Inverted from the seed's pinned defect: with the staged io_log
     commit, an exhaustive sweep finds no failure at all on blink — in
     particular no "golden" mismatch (a lost or duplicated io record). *)
  let r = explore ~budget:400 Core.Scheme.Gecko "blink" in
  Alcotest.(check (list Alcotest.string)) "blink/gecko io_log intact" []
    (List.map (fun f -> f.FI.Explore.f_detail) r.FI.Explore.failures)

let test_formerly_failing_pairs () =
  (* Double-failure (k=2) exploration on the five workloads the sound
     pipeline fixed: a rollback interrupted by a second collapse must
     also find only committed state. *)
  List.iter
    (fun w ->
      let r = explore ~budget:120 ~pairs:12 Core.Scheme.Gecko w in
      Alcotest.(check int) (w ^ " k=2 replays") 12 r.FI.Explore.explored_pairs;
      Alcotest.(check (list Alcotest.string))
        (w ^ " no single or pair failures") []
        (List.map (fun f -> f.FI.Explore.f_detail) r.FI.Explore.failures))
    gecko_formerly_failing

let test_mode_sweep mode () =
  (* Acceptance sweep for the precision axis: with hazard verdicts from
     the value-tracking alias domain (Precise), and with optimistic
     checkpoint-slot reuse whose unprovable window clobbers carry
     runtime undo-log guards (Speculative), GECKO must remain
     crash-consistent at every explored single-failure site of every
     workload — and survive k=2 pair exploration on the five formerly
     defective ones, where a rollback (now an undo-log replay followed
     by a register restore) interrupted by a second collapse must also
     find only committed state. *)
  List.iter
    (fun w ->
      let pairs = if List.mem w gecko_formerly_failing then Some 8 else None in
      let r = explore ~budget:120 ?pairs ~mode Core.Scheme.Gecko w in
      let tag = Printf.sprintf "gecko[%s]/%s" (Core.Mode.to_string mode) w in
      Alcotest.(check bool) (tag ^ " baseline passes oracle") true
        r.FI.Explore.baseline_ok;
      Alcotest.(check bool)
        (tag ^ " sites found") true
        (r.FI.Explore.sites_total > 0);
      Alcotest.(check (list Alcotest.string))
        (tag ^ " no single or pair failures") []
        (List.map (fun f -> f.FI.Explore.f_detail) r.FI.Explore.failures))
    W.Workload.names

(* {1 Census determinism and k=2 pairs} *)

let test_census_deterministic () =
  let image, meta = compile Core.Scheme.Gecko "crc16" in
  let census () =
    let sites, _, _ =
      FI.Inject.census ~board:(fi_board ()) ~image ~meta FI.Explore.default_opts
    in
    Array.map
      (fun s ->
        ( s.FI.Inject.s_ordinal,
          FI.Inject.kind_name s.FI.Inject.s_kind,
          s.FI.Inject.s_time ))
      sites
  in
  let a = census () and b = census () in
  Alcotest.(check int) "same census size" (Array.length a) (Array.length b);
  Array.iteri
    (fun i (o, k, t) ->
      let o', k', t' = b.(i) in
      if o <> o' || k <> k' || t <> t' then
        Alcotest.failf "census diverges at site %d: (%d,%s,%g) vs (%d,%s,%g)" i
          o k t o' k' t')
    a

let test_pairs_explored () =
  let r = explore ~budget:40 ~pairs:8 Core.Scheme.Gecko "crc32" in
  Alcotest.(check int) "k=2 replays" 8 r.FI.Explore.explored_pairs;
  Alcotest.(check (list Alcotest.string)) "no pair failures on crc32" []
    (List.map (fun f -> f.FI.Explore.f_detail) r.FI.Explore.failures)

(* {1 Fuzzer} *)

let test_fuzz_deterministic () =
  let image, meta = compile Core.Scheme.Gecko "crc16" in
  let opts = { FI.Explore.default_opts with M.max_sim_time = 2.0 } in
  let go () =
    FI.Fuzz.fuzz ~budget:12 ~seed:5 ~opts ~board:(fi_board ()) ~image ~meta ()
  in
  let a = go () and b = go () in
  Alcotest.(check int) "evals match budget" 12 a.FI.Fuzz.evals;
  Alcotest.(check int) "same evals" a.FI.Fuzz.evals b.FI.Fuzz.evals;
  Alcotest.(check (float 0.)) "same best score" a.FI.Fuzz.best_score
    b.FI.Fuzz.best_score

(* {1 Corruptions regression: the paper's headline numbers}

   An intermittent supply plus a resonant EMI tone aimed at the
   checkpoint windows learned from a recon trace.  NVP boots from
   torn snapshots (corruptions); GECKO detects every induced failure
   and never resumes from one. *)

let attack_board () =
  let harvester =
    H.square_wave ~period:0.08 ~duty:0.2
      (H.thevenin ~v_source:3.3 ~r_source:150.)
  in
  { (Board.attack_rig ()) with Board.harvester }

let corruptions_under_checkpoint_attack scheme =
  let board = attack_board () in
  let attack = FI.Fuzz.resonant_attack board in
  let image, meta = compile scheme "crc16" in
  let base_opts =
    {
      M.default_options with
      M.limit = M.Sim_time 2.0;
      restart_on_halt = true;
      max_sim_time = 3.0;
      seed = 11;
      record_events = true;
    }
  in
  let recon = M.run ~board ~image ~meta base_opts in
  let times = FI.Fuzz.checkpoint_times recon.M.events in
  Alcotest.(check bool) "recon observed checkpoints" true (times <> []);
  let schedule = FI.Fuzz.checkpoint_schedule ~attack ~width:0.03 times in
  M.run ~board ~image ~meta { base_opts with M.schedule }

let test_nvp_corrupts_under_attack () =
  let o = corruptions_under_checkpoint_attack Core.Scheme.Nvp in
  Alcotest.(check bool)
    (Printf.sprintf "NVP corruptions > 0 (got %d)" o.M.corruptions)
    true (o.M.corruptions > 0)

let test_gecko_resists_attack () =
  let o = corruptions_under_checkpoint_attack Core.Scheme.Gecko in
  Alcotest.(check int) "GECKO corruptions" 0 o.M.corruptions;
  Alcotest.(check bool)
    (Printf.sprintf "GECKO detections > 0 (got %d)" o.M.detections)
    true (o.M.detections > 0)

(* {1 Sabotage acceptance: a broken scheme variant is caught and shrunk}

   Collapse every checkpoint-slot colour to 0 (instructions and restore
   metadata): span-adjacent boundaries now share (reg, colour) slots, so
   a collapse between a boundary and its re-execution restores a stale
   register.  The explorer must find it and the shrinker must reduce the
   reproducer to at most 10 instructions of replayable OCaml. *)

let acc_loop () =
  let b = Builder.program "acc" in
  let d = Builder.space b "d" ~words:2 () in
  let acc = Reg.r1 and i = Reg.r2 and t = Reg.r3 in
  Builder.func b "main";
  Builder.block b "entry";
  Builder.li b acc 0;
  Builder.li b i 8;
  Builder.block b "loop" ~loop_bound:8;
  Builder.add b acc acc (Builder.reg i);
  Builder.st b (Builder.at d 0) acc;
  Builder.sub b i i (Builder.imm 1);
  Builder.bin b Instr.Slt t i (Builder.imm 1);
  Builder.br b Instr.Z t "loop" "fin";
  Builder.block b "fin";
  Builder.halt b;
  Builder.finish b

let sabotage_colors p meta =
  let p = Core.Copy.program p in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.Cfg.instrs <-
            List.map
              (function
                | Instr.Ckpt (r, _) -> Instr.Ckpt (r, 0)
                | Instr.LdSlot (d, s, _) -> Instr.LdSlot (d, s, 0)
                | i -> i)
              blk.Cfg.instrs)
        f.Cfg.blocks)
    p.Cfg.funcs;
  let infos = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k (bi : Core.Meta.binfo) ->
      Hashtbl.replace infos k
        {
          bi with
          Core.Meta.restores =
            List.map
              (fun r -> { r with Core.Meta.r_color = 0 })
              bi.Core.Meta.restores;
        })
    meta.Core.Meta.infos;
  (p, { meta with Core.Meta.infos })

let test_sabotaged_coloring_caught_and_shrunk () =
  let board = fi_board () in
  let p, meta =
    Core.Pipeline.compile ~budget_cycles:80 Core.Scheme.Gecko (acc_loop ())
  in
  (* Control: the honestly compiled program survives every site. *)
  let r0 =
    FI.Explore.explore ~jobs:2 ~budget:400 ~board ~image:(Link.link p) ~meta ()
  in
  Alcotest.(check int) "clean variant has no failures" 0
    (List.length r0.FI.Explore.failures);
  let p', meta' = sabotage_colors p meta in
  let r =
    FI.Explore.explore ~jobs:2 ~budget:400 ~board ~image:(Link.link p')
      ~meta:meta' ()
  in
  match r.FI.Explore.failures with
  | [] -> Alcotest.fail "explorer missed the sabotaged colouring"
  | f :: _ ->
      let check =
        FI.Shrink.default_check
          ~compile:(fun q -> (Link.link q, meta'))
          ~board
          ~opts:{ FI.Explore.default_opts with M.max_sim_time = 0.5 }
          ()
      in
      let repro =
        FI.Shrink.shrink ~check
          {
            FI.Shrink.r_prog = p';
            r_schedule = Schedule.empty;
            r_fires = f.FI.Explore.f_fires;
          }
      in
      let n = FI.Shrink.instr_count repro in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk reproducer has <= 10 instructions (got %d)" n)
        true (n <= 10);
      Alcotest.(check bool) "shrunk reproducer still fails" true (check repro);
      let src = FI.Shrink.to_ocaml repro in
      Alcotest.(check bool) "reproducer prints replayable OCaml" true
        (String.length src > 0
        && String.sub src 0 11 = "let program")

let () =
  Alcotest.run "faultinject"
    [
      ( "explorer-sweep",
        [
          Alcotest.test_case "ratchet clean everywhere" `Quick
            (test_sweep Core.Scheme.Ratchet);
          Alcotest.test_case "nvp landscape" `Quick
            (test_sweep Core.Scheme.Nvp);
          Alcotest.test_case "gecko landscape" `Quick
            (test_sweep Core.Scheme.Gecko);
          Alcotest.test_case "blink io_log intact" `Quick
            test_blink_io_log_intact;
          Alcotest.test_case "formerly-defective workloads, k=2 pairs" `Quick
            test_formerly_failing_pairs;
          Alcotest.test_case "gecko landscape, precise mode" `Quick
            (test_mode_sweep Core.Mode.Precise);
          Alcotest.test_case "gecko landscape, speculative mode" `Quick
            (test_mode_sweep Core.Mode.Speculative);
        ] );
      ( "explorer-mechanics",
        [
          Alcotest.test_case "census is deterministic" `Quick
            test_census_deterministic;
          Alcotest.test_case "k=2 pairs explored" `Quick test_pairs_explored;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "deterministic for a seed" `Quick
            test_fuzz_deterministic;
        ] );
      ( "corruptions-regression",
        [
          Alcotest.test_case "nvp corrupts under checkpoint attack" `Quick
            test_nvp_corrupts_under_attack;
          Alcotest.test_case "gecko detects instead of corrupting" `Quick
            test_gecko_resists_attack;
        ] );
      ( "sabotage",
        [
          Alcotest.test_case "broken colouring caught and shrunk" `Quick
            test_sabotaged_coloring_caught_and_shrunk;
        ] );
    ]

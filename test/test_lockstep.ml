(* The lockstep fleet engine's differential harness: per-device
   byte-equality against the scalar engine over random campaign specs,
   interleaved [Step.step_block] turns against a straight [Machine.run],
   jobs and resume invariance of a lockstep campaign, and the
   streaming-memory regression (no per-device materialization).

   The equivalence obligation is the ref_machine discipline one layer
   up: the scalar engine is the executable reference semantics, the
   lockstep engine must be observationally identical — not approximately,
   byte for byte, because campaign reports are folded floats and any
   divergence compounds. *)

module Fleet = Gecko_fleet
module Campaign = Fleet.Campaign
module Shard = Fleet.Shard
module Lockstep = Fleet.Lockstep
module Telemetry = Fleet.Telemetry
module Spec = Fleet.Spec
module Json = Gecko_obs.Json
module Metrics = Gecko_obs.Metrics
module Workbench = Gecko_harness.Workbench
module M = Gecko_machine.Machine
module Scheme = Gecko_core.Scheme

(* --- random campaign specs ------------------------------------------- *)

let workload_pool = [ "crc16"; "crc32"; "bitcnt"; "fir"; "blink" ]
let scheme_pool = [ Scheme.Nvp; Scheme.Ratchet; Scheme.Gecko ]
let board_pool = [ Spec.Attack_rig; Spec.Bench ]

(* Non-empty subset of a small pool, picked by bitmask. *)
let subset_gen pool =
  QCheck.Gen.map
    (fun mask -> List.filteri (fun i _ -> mask land (1 lsl i) <> 0) pool)
    (QCheck.Gen.int_range 1 ((1 lsl List.length pool) - 1))

(* Small but adversarial: every workload/scheme/board mix, attacker
   counts from quiet to crowded (attackers sweep EMI windows over the
   field; the boards' DC supplies give the square-wave-vs-steady power
   contrast), durations long enough to cross checkpoint and reboot
   boundaries. *)
let spec_gen =
  QCheck.Gen.(
    let* devices = int_range 6 16 in
    let* attackers = int_range 0 3 in
    let* seed = int_range 0 9999 in
    let* dur_ms = int_range 4 12 in
    let* workload_mix = subset_gen workload_pool in
    let* scheme_mix = subset_gen scheme_pool in
    let* board_mix = subset_gen board_pool in
    let* power_dbm = map float_of_int (int_range 25 45) in
    return
      (Spec.make ~devices ~attackers ~seed
         ~duration:(float_of_int dur_ms /. 1000.)
         ~shard_size:devices ~workload_mix ~scheme_mix ~board_mix ~power_dbm
         ()))

let spec_arb =
  QCheck.make ~print:(fun s -> Json.to_string (Spec.to_json s)) spec_gen

let tel_config = { Telemetry.default_config with Telemetry.tel_top_k = 2 }

(* One device's observable contribution, rendered to a canonical string:
   aggregate JSON + metrics persist JSON + telemetry record JSON. *)
let result_string (agg, reg, tel) =
  String.concat "\n"
    [
      Json.to_string (Fleet.Agg.to_json agg);
      Json.to_string (Metrics.to_persist reg);
      (match tel with
      | Some t -> Json.to_string (Telemetry.to_json t)
      | None -> "-");
    ]

let scalar_results spec =
  let devices, field = Campaign.elaborate spec in
  Array.map
    (fun d ->
      result_string (Shard.run_device ~telemetry:tel_config ~spec ~field d))
    devices

let lockstep_results spec =
  let devices, field = Campaign.elaborate spec in
  let out = Array.make (Array.length devices) "" in
  Lockstep.iter_devices ~telemetry:tel_config ~spec ~field devices
    ~f:(fun d r -> out.(d.Shard.id) <- result_string r);
  out

let prop_engines_agree_per_device =
  QCheck.Test.make ~count:8 ~name:"lockstep = scalar, per device" spec_arb
    (fun spec ->
      let s = scalar_results spec and l = lockstep_results spec in
      Array.length s = Array.length l
      && Array.for_all2 (fun a b -> String.equal a b) s l)

let prop_engines_agree_per_shard =
  QCheck.Test.make ~count:6 ~name:"lockstep = scalar, whole shard" spec_arb
    (fun spec ->
      let devices, field = Campaign.elaborate spec in
      let shard engine =
        Json.to_string
          (Campaign.shard_to_json
             (Campaign.run_shard ~engine ~telemetry:tel_config ~spec ~field
                ~devices 0))
      in
      String.equal (shard Campaign.Scalar) (shard Campaign.Lockstep))

(* --- step_block turns = Machine.run, under interleaving --------------- *)

(* Drive several devices' [Step.step_block] handles round-robin with a
   deliberately awkward quantum and compare every outcome field against
   a straight [Machine.run] of the same device: the lockstep engine's
   core claim, without the fleet machinery around it. *)
let test_interleaved_step_block_equals_run () =
  let spec =
    Spec.make ~devices:6 ~attackers:2 ~duration:0.01 ~shard_size:6 ~seed:21
      ~power_dbm:40. ()
  in
  let devices, field = Campaign.elaborate spec in
  let handles =
    Array.map
      (fun d ->
        let schedule = Fleet.Field.schedule_at field ~x:d.Shard.x ~y:d.Shard.y in
        let board, image, meta, dec = Shard.device_image d in
        let reg = Metrics.create () in
        (d, M.Step.start ~board ~image ~meta
           (Shard.device_options ~spec ~schedule ~reg ~dec d)))
      devices
  in
  let live = ref (Array.length handles) in
  let finished = Array.make (Array.length handles) false in
  while !live > 0 do
    Array.iteri
      (fun i (_, h) ->
        if not finished.(i) then
          for _ = 1 to 3 do
            if (not finished.(i)) && not (M.Step.step_block h) then begin
              finished.(i) <- true;
              decr live
            end
          done)
      handles
  done;
  Array.iter
    (fun (d, h) ->
      let stepped = M.Step.outcome h in
      let schedule = Fleet.Field.schedule_at field ~x:d.Shard.x ~y:d.Shard.y in
      let board, image, meta, dec = Shard.device_image d in
      let reg = Metrics.create () in
      let direct =
        M.run ~board ~image ~meta
          (Shard.device_options ~spec ~schedule ~reg ~dec d)
      in
      Alcotest.(check bool)
        (Printf.sprintf "device %d: interleaved step_block outcome = run"
           d.Shard.id)
        true
        (stepped = direct))
    handles

(* --- lockstep campaign invariances ------------------------------------ *)

let fleet_512 =
  Spec.make ~devices:512 ~attackers:2 ~duration:0.004 ~shard_size:32 ~seed:13
    ~power_dbm:40. ()

let report_string ?(engine = Campaign.Lockstep) spec =
  match (Campaign.run ~engine spec).Campaign.report with
  | Some r -> Json.to_string (Fleet.Report.to_json r)
  | None -> Alcotest.fail "campaign did not complete"

let test_lockstep_jobs_byte_equality () =
  let saved = Workbench.jobs () in
  Fun.protect
    ~finally:(fun () -> Workbench.set_jobs saved)
    (fun () ->
      Workbench.set_jobs 1;
      let serial = report_string fleet_512 in
      Workbench.set_jobs 4;
      let parallel = report_string fleet_512 in
      Alcotest.(check string)
        "512-device lockstep report, jobs=1 vs jobs=4" serial parallel)

let test_lockstep_resume_equals_uninterrupted () =
  let uninterrupted = report_string fleet_512 in
  let snap = Filename.temp_file "gecko_lockstep" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
    (fun () ->
      let partial =
        Campaign.run ~engine:Campaign.Lockstep ~snapshot_path:snap
          ~max_shards:5 fleet_512
      in
      Alcotest.(check bool)
        "interrupted campaign yields no report" true
        (partial.Campaign.report = None);
      let resume = Campaign.load_snapshot snap in
      let resumed = Campaign.run ~engine:Campaign.Lockstep ~resume fleet_512 in
      Alcotest.(check int)
        "resume takes the snapshotted shards as done" 5
        resumed.Campaign.resumed_shards;
      match resumed.Campaign.report with
      | None -> Alcotest.fail "resumed campaign did not complete"
      | Some r ->
          Alcotest.(check string)
            "resumed lockstep report equals the uninterrupted one"
            uninterrupted
            (Json.to_string (Fleet.Report.to_json r)))

(* --- streaming-memory regression -------------------------------------- *)

(* A 50k-device shard must fold through O(1) live memory per finished
   device: the engine holds one window of handles plus the shard
   accumulator, never a device list.  Sample the live heap every few
   thousand finished devices after the first window completes; the
   later samples must not grow with the device count (a reintroduced
   per-device list at even ~100 words/device would add ~4M live words
   between the reference sample and the end). *)
let test_streaming_memory_bound () =
  let n = 50_000 in
  let spec =
    Spec.make ~devices:n ~attackers:1 ~duration:0.0005 ~shard_size:n ~seed:3 ()
  in
  let devices, field = Campaign.elaborate spec in
  let acc = Shard.acc_create 0 in
  let finished = ref 0 in
  let reference = ref 0 in
  let worst_growth = ref 0 in
  let sample () =
    Gc.full_major ();
    let live = (Gc.quick_stat ()).Gc.live_words in
    if !reference = 0 then reference := live
    else worst_growth := max !worst_growth (live - !reference)
  in
  Lockstep.iter_devices ~spec ~field devices ~f:(fun d r ->
      Shard.acc_add acc d r;
      incr finished;
      if !finished mod 5_000 = 0 then sample ());
  let sr = Shard.acc_finish acc in
  Alcotest.(check int) "every device folded in" n sr.Shard.sr_agg.Fleet.Agg.devices;
  Alcotest.(check bool)
    (Printf.sprintf
       "live heap growth after the first sample stays bounded (worst %d words)"
       !worst_growth)
    true
    (!worst_growth < 2_000_000)

(* --------------------------------------------------------------------- *)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "lockstep"
    [
      ( "differential",
        q [ prop_engines_agree_per_device; prop_engines_agree_per_shard ]
        @ [
            Alcotest.test_case "interleaved step_block = Machine.run" `Quick
              test_interleaved_step_block_equals_run;
          ] );
      ( "campaign",
        [
          Alcotest.test_case "512-device lockstep jobs=1 vs jobs=4" `Slow
            test_lockstep_jobs_byte_equality;
          Alcotest.test_case "512-device lockstep resume = uninterrupted" `Slow
            test_lockstep_resume_equals_uninterrupted;
        ] );
      ( "memory",
        [
          Alcotest.test_case "50k-device shard streams in O(1) memory" `Slow
            test_streaming_memory_bound;
        ] );
    ]

(* Unit tests for the dataflow analyses on hand-built CFGs. *)

open Gecko_isa
module A = Gecko_analysis
module B = Builder

(* A diamond with a loop:
   entry -> hdr -> (then | else) -> join -> hdr ... -> exit *)
let diamond_loop () =
  let b = B.program "dl" in
  let d = B.space b "d" ~words:8 () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r0 0;
  B.li b Reg.r1 5;
  B.block b "hdr" ~loop_bound:5;
  B.bin b Instr.And Reg.r2 Reg.r0 (B.imm 1);
  B.br b Instr.Nz Reg.r2 "then_" "else_";
  B.block b "then_";
  B.st b (B.at d 0) Reg.r0;
  B.jmp b "join";
  B.block b "else_";
  B.st b (B.at d 1) Reg.r1;
  B.block b "join";
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.bin b Instr.Slt Reg.r2 Reg.r0 (B.reg Reg.r1);
  B.br b Instr.Nz Reg.r2 "hdr" "exit_";
  B.block b "exit_";
  B.halt b;
  B.finish b

let graph_of p = A.Fgraph.of_func (Cfg.find_func p "main")

let test_dominators () =
  let g = graph_of (diamond_loop ()) in
  let dom = A.Dom.compute g in
  let id l = A.Fgraph.block_id g l in
  Alcotest.(check bool) "entry dom all" true (A.Dom.dominates dom (id "entry") (id "exit_"));
  Alcotest.(check bool) "hdr dom join" true (A.Dom.dominates dom (id "hdr") (id "join"));
  Alcotest.(check bool) "then not dom join" false
    (A.Dom.dominates dom (id "then_") (id "join"));
  Alcotest.(check int) "idom of join is hdr" (id "hdr") (A.Dom.idom dom (id "join"))

let test_loops () =
  let g = graph_of (diamond_loop ()) in
  let dom = A.Dom.compute g in
  let loops = A.Loops.compute g dom in
  let id l = A.Fgraph.block_id g l in
  Alcotest.(check (list int)) "headers" [ id "hdr" ] (A.Loops.headers loops);
  let l = List.hd (A.Loops.loops loops) in
  Alcotest.(check bool) "join in body" true (List.mem (id "join") l.A.Loops.body);
  Alcotest.(check bool) "exit not in body" false (List.mem (id "exit_") l.A.Loops.body)

let test_liveness () =
  let g = graph_of (diamond_loop ()) in
  let live = A.Live.compute g in
  let id l = A.Fgraph.block_id g l in
  (* r1 (the bound) is live at the loop header, r2 (the scratch) is not. *)
  Alcotest.(check bool) "r1 live at hdr" true
    (Reg.Set.mem Reg.r1 (A.Live.live_in live (id "hdr")));
  Alcotest.(check bool) "r2 dead at hdr" false
    (Reg.Set.mem Reg.r2 (A.Live.live_in live (id "hdr")))

let test_reaching () =
  let g = graph_of (diamond_loop ()) in
  let r = A.Reaching.compute g in
  let id l = A.Fgraph.block_id g l in
  (* At the header, r0 has two reaching defs (entry li, join increment). *)
  let defs = A.Reaching.reaching_at r Reg.r0 { A.Fgraph.blk = id "hdr"; idx = 0 } in
  Alcotest.(check int) "two defs of r0" 2 (List.length defs);
  Alcotest.(check bool) "no unique def" true
    (A.Reaching.unique_at r Reg.r0 { A.Fgraph.blk = id "hdr"; idx = 0 } = None);
  (* r1 has a unique def everywhere. *)
  Alcotest.(check bool) "unique def of r1" true
    (A.Reaching.unique_at r Reg.r1 { A.Fgraph.blk = id "exit_"; idx = 0 } <> None)

let test_alias () =
  let s1 = { Instr.space_name = "a"; space_id = 0; space_words = 8 } in
  let s2 = { Instr.space_name = "b"; space_id = 1; space_words = 8 } in
  let m ?(s = s1) d = { Instr.space = s; disp = d } in
  Alcotest.(check bool) "same const" true
    (A.Alias.may_alias (m (Instr.Dconst 3)) (m (Instr.Dconst 3)));
  Alcotest.(check bool) "diff const" false
    (A.Alias.may_alias (m (Instr.Dconst 3)) (m (Instr.Dconst 4)));
  Alcotest.(check bool) "dyn vs const" true
    (A.Alias.may_alias (m (Instr.Dreg Reg.r0)) (m (Instr.Dconst 4)));
  Alcotest.(check bool) "different spaces" false
    (A.Alias.may_alias (m (Instr.Dconst 3)) (m ~s:s2 (Instr.Dconst 3)))

let test_wcet_spans () =
  (* After region formation every span is finite and positive. *)
  let p = diamond_loop () in
  let next_id = ref 0 in
  ignore (Gecko_core.Regions.form ~next_id p);
  let g = graph_of p in
  let w = A.Wcet.compute g in
  let spans = A.Wcet.boundary_spans w in
  Alcotest.(check bool) "has boundaries" true (List.length spans >= 2);
  List.iter
    (fun (_, _, span) -> Alcotest.(check bool) "positive span" true (span > 0))
    spans

let test_wcet_unbounded () =
  (* Without formation the loop has no boundary: the WCET must refuse. *)
  let p = diamond_loop () in
  let g = graph_of p in
  (match A.Wcet.compute g with
  | exception A.Wcet.Unbounded _ -> ()
  | _ -> Alcotest.fail "expected Unbounded")

let test_clobbers () =
  let b = B.program "calls" in
  B.func b "main";
  B.block b "e";
  B.call b "f" ~ret:"r";
  B.block b "r";
  B.halt b;
  B.func b "f";
  B.block b "fe";
  B.li b Reg.r7 1;
  B.call b "g" ~ret:"fr";
  B.block b "fr";
  B.ret b;
  B.func b "g";
  B.block b "ge";
  B.li b Reg.r8 2;
  B.ret b;
  let p = B.finish b in
  let c = A.Clobbers.compute p in
  let cf = A.Clobbers.of_function c "f" in
  Alcotest.(check bool) "f clobbers r7" true (Reg.Set.mem Reg.r7 cf);
  Alcotest.(check bool) "f clobbers r8 transitively" true (Reg.Set.mem Reg.r8 cf);
  Alcotest.(check bool) "f does not clobber sp" false (Reg.Set.mem Reg.sp cf)

let test_ipliveness () =
  let b = B.program "ipl" in
  let out = B.space b "o" ~words:1 () in
  B.func b "main";
  B.block b "e";
  B.li b Reg.r0 41;
  B.call b "inc" ~ret:"r";
  B.block b "r";
  B.st b (B.at out 0) Reg.r0;
  B.halt b;
  B.func b "inc";
  B.block b "ie";
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.ret b;
  let p = B.finish b in
  let l = A.Ipliveness.compute p in
  let g = A.Ipliveness.graph l ~fname:"inc" in
  ignore g;
  (* r0 is live at the callee entry (used there and by the caller after
     return); r5 is not. *)
  let live = A.Ipliveness.live_at l ~fname:"inc" { A.Fgraph.blk = 0; idx = 0 } in
  Alcotest.(check bool) "r0 live in callee" true (Reg.Set.mem Reg.r0 live);
  Alcotest.(check bool) "r5 dead in callee" false (Reg.Set.mem Reg.r5 live)

(* {1 QCheck properties for the alias / value-tracking layer}

   The precision refactor's three contract points (ISSUE 9): constant
   slots are separated by construction, the value domain never excludes
   a concretely reachable register value, and the non-strict scan kept
   as the Legacy measurement baseline still reproduces the seed's
   optimistic algorithm exactly. *)

module V = A.Vrange

let space_a = { Instr.space_name = "a"; space_id = 0; space_words = 64 }
let space_b = { Instr.space_name = "b"; space_id = 1; space_words = 64 }

let prop_distinct_slots =
  QCheck.Test.make ~count:400
    ~name:"distinct constant-offset slots never alias"
    QCheck.(triple (int_bound 63) (int_bound 63) bool)
    (fun (i, j, same_space) ->
      let m s d = { Instr.space = s; disp = Instr.Dconst d } in
      let verdict =
        A.Alias.may_alias (m space_a i)
          (m (if same_space then space_a else space_b) j)
      in
      (* Same space: alias iff the very same slot.  Distinct spaces are
         distinct allocations, whatever the offsets. *)
      if same_space then verdict = (i = j) else not verdict)

(* Concrete little-interpreter over an uncompiled CFG: walks main's
   blocks with a 16-register file and per-space word arrays, calling
   [on_point ~blk ~idx regs] immediately before each instruction — the
   exact program points {!V.before} abstracts.  Only the instruction
   subset Gen_prog emits is handled. *)
let concrete_trace p (g : A.Fgraph.t) ~on_point =
  let regs = Array.make Reg.count 0 in
  let mem = Hashtbl.create 4 in
  List.iter
    (fun (s : Instr.space) ->
      let a = Array.make s.Instr.space_words 0 in
      (match List.assoc_opt s.Instr.space_id p.Cfg.init_data with
      | Some init -> Array.blit init 0 a 0 (Array.length init)
      | None -> ());
      Hashtbl.replace mem s.Instr.space_id a)
    p.Cfg.spaces;
  let rd r = regs.(Reg.to_int r) in
  let wr r v = regs.(Reg.to_int r) <- v in
  let addr (m : Instr.mref) =
    let off =
      match m.Instr.disp with Instr.Dconst c -> c | Instr.Dreg r -> rd r
    in
    (Hashtbl.find mem m.Instr.space.Instr.space_id, off)
  in
  let steps = ref 0 in
  let rec run blk =
    let body = Array.of_list g.A.Fgraph.blocks.(blk).Cfg.instrs in
    Array.iteri
      (fun idx i ->
        incr steps;
        if !steps > 200_000 then failwith "generated trace too long";
        on_point ~blk ~idx regs;
        match i with
        | Instr.Li (r, v) -> wr r v
        | Instr.Mov (d, s) -> wr d (rd s)
        | Instr.Bin (op, d, s1, s2) ->
            let b =
              match s2 with Instr.Oreg r -> rd r | Instr.Oimm k -> k
            in
            wr d (Instr.eval_binop op (rd s1) b)
        | Instr.Ld (d, m) ->
            let a, off = addr m in
            wr d (if off >= 0 && off < Array.length a then a.(off) else 0)
        | Instr.St (m, s) ->
            let a, off = addr m in
            if off >= 0 && off < Array.length a then a.(off) <- rd s
        | Instr.Out _ | Instr.Nop | Instr.Boundary _ -> ()
        | Instr.In _ | Instr.Ckpt _ | Instr.CkptDyn _ | Instr.LdSlot _ ->
            failwith "unexpected instruction in generated program")
      body;
    match g.A.Fgraph.blocks.(blk).Cfg.term with
    | Instr.Jmp l -> run (A.Fgraph.block_id g l)
    | Instr.Br (c, r, t, e) ->
        run
          (A.Fgraph.block_id g (if Instr.eval_cond c (rd r) then t else e))
    | Instr.Halt -> ()
    | Instr.Call _ | Instr.Ret -> failwith "unexpected call/ret"
  in
  run 0

let seed_gen = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 99999)

let prop_vrange_sound =
  QCheck.Test.make ~count:60
    ~name:"vrange verdicts sound against the dynamic-trace oracle" seed_gen
    (fun seed ->
      let p = Gen_prog.generate seed in
      let g = A.Fgraph.of_func (Cfg.find_func p "main") in
      let v = V.analyze g in
      let ok = ref true in
      concrete_trace p g ~on_point:(fun ~blk ~idx regs ->
          (* Every concretely reachable register value must be inside
             its abstraction: [may_equal (const x) av] may only be false
             when [av] provably excludes [x]. *)
          for r = 0 to Reg.count - 1 do
            if
              not
                (V.may_equal
                   (V.const regs.(r))
                   (V.before v ~blk ~idx (Reg.of_int r)))
            then ok := false
          done);
      !ok)

(* The seed's optimistic backward scan, reimplemented verbatim as the
   oracle: skip every store that only may-alias, return the first
   must-alias write, stop at a boundary.  [last_write_before
   ~strict:false] is kept solely to reproduce this baseline (Legacy
   mode's overhead measurement), so the two must agree everywhere. *)
let seed_scan (body : Instr.t array) idx m =
  let result = ref A.Alias.No_write in
  (try
     for j = idx - 1 downto 0 do
       match body.(j) with
       | Instr.Boundary _ -> raise Exit
       | i -> (
           match Instr.mem_write i with
           | Some w when A.Alias.must_alias_in_block body j idx w m ->
               result := A.Alias.Write j;
               raise Exit
           | Some _ | None -> ())
     done
   with Exit -> ());
  !result

let scan_case_gen =
  let open QCheck.Gen in
  let reg = map Reg.of_int (int_bound 3) in
  let disp =
    oneof
      [
        map (fun c -> Instr.Dconst c) (int_bound 7);
        map (fun r -> Instr.Dreg r) reg;
      ]
  in
  let mref = map (fun d -> { Instr.space = space_a; disp = d }) disp in
  let instr =
    frequency
      [
        (3, map2 (fun m r -> Instr.St (m, r)) mref reg);
        (2, map2 (fun r v -> Instr.Li (r, v)) reg (int_bound 7));
        (1, return (Instr.Boundary 0));
        (1, map2 (fun r m -> Instr.Ld (r, m)) reg mref);
      ]
  in
  list_size (int_range 1 12) instr >>= fun instrs ->
  let body = Array.of_list instrs in
  int_bound (Array.length body) >>= fun idx ->
  mref >>= fun m -> return (body, idx, m)

let prop_nonstrict_scan_is_seed =
  QCheck.Test.make ~count:500
    ~name:"~strict:false reproduces the seed's optimistic scan"
    (QCheck.make
       ~print:(fun (body, idx, m) ->
         Printf.sprintf "idx=%d ref=%s in [%s]" idx
           (Format.asprintf "%a" Instr.pp_mref m)
           (String.concat "; "
              (Array.to_list (Array.map Instr.to_string body))))
       scan_case_gen)
    (fun (body, idx, m) ->
      A.Alias.last_write_before ~strict:false body idx m = seed_scan body idx m)

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "dominators" `Quick test_dominators;
          Alcotest.test_case "loops" `Quick test_loops;
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "reaching defs" `Quick test_reaching;
          Alcotest.test_case "alias" `Quick test_alias;
        ] );
      ( "wcet",
        [
          Alcotest.test_case "spans" `Quick test_wcet_spans;
          Alcotest.test_case "unbounded" `Quick test_wcet_unbounded;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "clobbers" `Quick test_clobbers;
          Alcotest.test_case "liveness" `Quick test_ipliveness;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_distinct_slots; prop_vrange_sound; prop_nonstrict_scan_is_seed ]
      );
    ]

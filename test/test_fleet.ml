(* The fleet simulator: merge laws for the streaming aggregates, shard
   reduction vs the sequential fold (jobs=1 vs jobs=4 byte-equality),
   snapshot/resume equivalence, spec/aggregate JSON round-trips, and the
   heartbeat.gasm assembly round-trip.

   Float caveat: float addition is commutative but only associative up to
   rounding, so the associativity properties draw from dyadic rationals
   (multiples of 1/16 with bounded magnitude) where every sum is exact. *)

module Fleet = Gecko_fleet
module Acc = Gecko_util.Stats.Acc
module Metrics = Gecko_obs.Metrics
module Json = Gecko_obs.Json
module Workbench = Gecko_harness.Workbench
module Asm = Gecko_isa.Asm

(* --- generators ------------------------------------------------------ *)

let dyadic_gen =
  QCheck.Gen.map (fun k -> float_of_int k /. 16.) (QCheck.Gen.int_range (-65536) 65536)

let dyadic_list =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_float l))
    QCheck.Gen.(list_size (int_bound 24) dyadic_gen)

let acc_equal (a : Acc.t) (b : Acc.t) =
  a.Acc.n = b.Acc.n
  && Float.equal a.Acc.sum b.Acc.sum
  && Float.equal a.Acc.sumsq b.Acc.sumsq
  && Float.equal a.Acc.min_v b.Acc.min_v
  && Float.equal a.Acc.max_v b.Acc.max_v

(* --- Stats.Acc merge laws -------------------------------------------- *)

let prop_acc_identity =
  QCheck.Test.make ~count:100 ~name:"Acc: empty is a two-sided identity"
    dyadic_list (fun xs ->
      let a = Acc.of_list xs in
      acc_equal (Acc.merge Acc.empty a) a && acc_equal (Acc.merge a Acc.empty) a)

let prop_acc_commutative =
  QCheck.Test.make ~count:100 ~name:"Acc: merge is commutative"
    (QCheck.pair dyadic_list dyadic_list) (fun (xs, ys) ->
      let a = Acc.of_list xs and b = Acc.of_list ys in
      acc_equal (Acc.merge a b) (Acc.merge b a))

let prop_acc_associative =
  QCheck.Test.make ~count:100 ~name:"Acc: merge is associative (dyadic inputs)"
    (QCheck.triple dyadic_list dyadic_list dyadic_list) (fun (xs, ys, zs) ->
      let a = Acc.of_list xs and b = Acc.of_list ys and c = Acc.of_list zs in
      acc_equal (Acc.merge (Acc.merge a b) c) (Acc.merge a (Acc.merge b c)))

let prop_acc_merge_is_concat =
  QCheck.Test.make ~count:100 ~name:"Acc: merge of splits equals fold of whole"
    (QCheck.pair dyadic_list dyadic_list) (fun (xs, ys) ->
      acc_equal
        (Acc.merge (Acc.of_list xs) (Acc.of_list ys))
        (Acc.of_list (xs @ ys)))

(* --- Metrics merge laws ---------------------------------------------- *)

(* A registry is described by a small op list; [build] replays it into a
   fresh registry.  Names come from a tiny fixed pool so merges overlap. *)
type op = Incr of int * int | Set_gauge of int * float | Observe of int * float

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun i by -> Incr (i, by)) (int_bound 2) (int_range 1 50);
        map2 (fun i v -> Set_gauge (i, v)) (int_bound 2) dyadic_gen;
        map2
          (fun i v -> Observe (i, Float.abs v +. 0.0625))
          (int_bound 2) dyadic_gen;
      ])

let ops_arb =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l))
    QCheck.Gen.(list_size (int_bound 16) op_gen)

let build ops =
  let r = Metrics.create () in
  List.iter
    (function
      | Incr (i, by) -> Metrics.incr ~by (Metrics.counter r (Printf.sprintf "c%d" i))
      | Set_gauge (i, v) -> Metrics.set_gauge (Metrics.gauge r (Printf.sprintf "g%d" i)) v
      | Observe (i, v) -> Metrics.observe (Metrics.histogram r (Printf.sprintf "h%d" i)) v)
    ops;
  r

let persist r = Json.to_string (Metrics.to_persist r)

let merged rs =
  let dst = Metrics.create () in
  List.iter (fun r -> Metrics.merge_into dst r) rs;
  dst

let prop_metrics_identity =
  QCheck.Test.make ~count:80 ~name:"Metrics: empty registry is an identity"
    ops_arb (fun ops ->
      let a = build ops in
      persist (merged [ Metrics.create (); a ]) = persist a
      && persist (merged [ a; Metrics.create () ]) = persist a)

let prop_metrics_commutative =
  QCheck.Test.make ~count:80 ~name:"Metrics: merge is commutative"
    (QCheck.pair ops_arb ops_arb) (fun (xs, ys) ->
      persist (merged [ build xs; build ys ])
      = persist (merged [ build ys; build xs ]))

let prop_metrics_associative =
  QCheck.Test.make ~count:80
    ~name:"Metrics: merge is associative (dyadic inputs)"
    (QCheck.triple ops_arb ops_arb ops_arb) (fun (xs, ys, zs) ->
      let left = merged [ merged [ build xs; build ys ]; build zs ] in
      let right = merged [ build xs; merged [ build ys; build zs ] ] in
      persist left = persist right)

let prop_metrics_persist_roundtrip =
  QCheck.Test.make ~count:80 ~name:"Metrics: to_persist/of_persist is exact"
    ops_arb (fun ops ->
      let r = build ops in
      persist (Metrics.of_persist (Metrics.to_persist r)) = persist r)

let prop_metrics_quantile_monotone =
  (* Quantiles of a merged-then-persisted registry must be monotone in p
     — the estimator walks cumulative bucket counts, so any violation
     means the merge or the round-trip corrupted a count. *)
  QCheck.Test.make ~count:80
    ~name:"Metrics: quantile is monotone in p after merge_into + persist"
    (QCheck.pair ops_arb ops_arb) (fun (xs, ys) ->
      let r =
        Metrics.of_persist
          (Metrics.to_persist (merged [ build xs; build ys ]))
      in
      let ps = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      List.for_all
        (fun i ->
          let h = Metrics.histogram r (Printf.sprintf "h%d" i) in
          let qs = List.map (Metrics.quantile h) ps in
          let rec mono = function
            | a :: (b :: _ as rest) -> a <= b && mono rest
            | _ -> true
          in
          mono qs)
        [ 0; 1; 2 ])

(* --- telemetry sketch and monoid laws -------------------------------- *)

module Telemetry = Fleet.Telemetry

let latency_list =
  (* Non-negative dyadic seconds (multiples of 1/1024) spanning many
     sketch buckets: the sketch's [sum] is float addition, exact only on
     dyadic inputs — same caveat as the Acc properties above. *)
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_float l))
    QCheck.Gen.(
      list_size (int_bound 24)
        (map (fun k -> float_of_int k /. 1024.) (int_range 0 100000)))

let sketch_of_list xs = List.fold_left Telemetry.Sketch.add Telemetry.Sketch.empty xs

let prop_sketch_merge_is_concat =
  QCheck.Test.make ~count:100
    ~name:"Sketch: merge of splits equals fold of whole; JSON exact"
    (QCheck.pair latency_list latency_list) (fun (xs, ys) ->
      let m = Telemetry.Sketch.merge (sketch_of_list xs) (sketch_of_list ys) in
      let whole = sketch_of_list (xs @ ys) in
      Json.to_string (Telemetry.Sketch.to_json m)
      = Json.to_string (Telemetry.Sketch.to_json whole)
      && Json.to_string
           (Telemetry.Sketch.to_json
              (Telemetry.Sketch.of_json (Telemetry.Sketch.to_json m)))
         = Json.to_string (Telemetry.Sketch.to_json m))

let prop_sketch_quantile_monotone =
  QCheck.Test.make ~count:100 ~name:"Sketch: quantile is monotone in q"
    latency_list (fun xs ->
      let s = sketch_of_list xs in
      let qs =
        List.map (Telemetry.Sketch.quantile s)
          [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono qs)

(* --- fleet campaign -------------------------------------------------- *)

let small_spec =
  (* Small enough for the test suite, busy enough to exercise attacks. *)
  Fleet.Spec.make ~devices:64 ~attackers:2 ~duration:0.02 ~shard_size:5
    ~seed:7 ()

let report_string spec =
  match (Fleet.Campaign.run spec).Fleet.Campaign.report with
  | Some r -> Json.to_string (Fleet.Report.to_json r)
  | None -> Alcotest.fail "campaign did not complete"

let test_jobs_byte_equality () =
  let saved = Workbench.jobs () in
  Fun.protect
    ~finally:(fun () -> Workbench.set_jobs saved)
    (fun () ->
      Workbench.set_jobs 1;
      let serial = report_string small_spec in
      Workbench.set_jobs 4;
      let parallel = report_string small_spec in
      Alcotest.(check string)
        "jobs=1 and jobs=4 merged reports are byte-identical" serial parallel)

let test_resume_equals_uninterrupted () =
  let spec =
    Fleet.Spec.make ~devices:24 ~attackers:1 ~duration:0.02 ~shard_size:4
      ~seed:11 ()
  in
  let uninterrupted = report_string spec in
  let snap = Filename.temp_file "gecko_fleet" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
    (fun () ->
      let partial =
        Fleet.Campaign.run ~snapshot_path:snap ~max_shards:2 spec
      in
      Alcotest.(check bool)
        "interrupted campaign yields no report"
        true (partial.Fleet.Campaign.report = None);
      let resume = Fleet.Campaign.load_snapshot snap in
      Alcotest.(check bool)
        "snapshot holds only the completed shards" true
        (List.length (snd resume) = 2);
      let resumed = Fleet.Campaign.run ~resume spec in
      Alcotest.(check int)
        "resume takes the snapshotted shards as done" 2
        resumed.Fleet.Campaign.resumed_shards;
      Alcotest.(check int)
        "resume re-runs only the missing devices"
        (24 - partial.Fleet.Campaign.devices_run)
        resumed.Fleet.Campaign.devices_run;
      match resumed.Fleet.Campaign.report with
      | None -> Alcotest.fail "resumed campaign did not complete"
      | Some r ->
          Alcotest.(check string)
            "resumed report equals the uninterrupted one" uninterrupted
            (Json.to_string (Fleet.Report.to_json r)))

let telemetry_stream spec path =
  let config =
    { Telemetry.default_config with Telemetry.tel_path = Some path }
  in
  ignore (Fleet.Campaign.run ~telemetry:config spec);
  let contents = In_channel.with_open_bin path In_channel.input_all in
  (* Drop the one wall-clock record; everything else must be sim-pure. *)
  String.split_on_char '\n' contents
  |> List.filter (fun l ->
         not (String.starts_with ~prefix:"{\"nondeterministic\":" l))
  |> String.concat "\n"

let test_telemetry_jobs_byte_equality () =
  let saved = Workbench.jobs () in
  let tmp = Filename.temp_file "gecko_tel" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Workbench.set_jobs saved;
      try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Workbench.set_jobs 1;
      let serial = telemetry_stream small_spec tmp in
      Workbench.set_jobs 4;
      let parallel = telemetry_stream small_spec tmp in
      Alcotest.(check bool) "stream has a header and shard records" true
        (List.length (String.split_on_char '\n' serial) > 2);
      Alcotest.(check string)
        "jobs=1 and jobs=4 telemetry streams are byte-identical" serial
        parallel)

let test_replay_matches_campaign () =
  let r =
    Fleet.Campaign.run ~telemetry:Telemetry.default_config small_spec
  in
  let tel =
    match r.Fleet.Campaign.telemetry with
    | Some t -> t
    | None -> Alcotest.fail "telemetry-armed campaign produced no telemetry"
  in
  match tel.Telemetry.outliers with
  | [] -> Alcotest.fail "campaign surfaced no outliers to drill into"
  | top :: _ ->
      let rp =
        Fleet.Campaign.replay ~device_id:top.Telemetry.o_device small_spec
      in
      let record t =
        (* Compare through the persisted outlier form — exactly what the
           stream carries. *)
        match
          List.find_opt
            (fun o -> o.Telemetry.o_device = top.Telemetry.o_device)
            t.Telemetry.outliers
        with
        | Some o ->
            Json.to_string
              (Telemetry.to_json
                 { (Telemetry.empty ~top_k:1) with Telemetry.outliers = [ o ] })
        | None -> Alcotest.fail "replay lost the outlier record"
      in
      Alcotest.(check string)
        "replayed outlier record equals the campaign's" (record tel)
        (record rp.Fleet.Campaign.rp_telemetry);
      Alcotest.(check bool) "flight dump is non-empty" true
        (Gecko_obs.Flight.length rp.Fleet.Campaign.rp_flight > 0);
      Alcotest.(check int)
        "replayed corruption count matches the record"
        top.Telemetry.o_corruptions
        rp.Fleet.Campaign.rp_agg.Fleet.Agg.corruptions;
      (* The bridge to the shrinker produces a well-formed repro. *)
      let repro = Fleet.Campaign.shrink_repro rp in
      Alcotest.(check bool) "shrink repro is non-trivial" true
        (Gecko_faultinject.Shrink.size repro > 0)

let test_snapshot_roundtrip () =
  let spec =
    Fleet.Spec.make ~devices:8 ~duration:0.01 ~shard_size:4 ~seed:3 ()
  in
  let devices, field = Fleet.Campaign.elaborate spec in
  let sr = Fleet.Campaign.run_shard ~spec ~field ~devices 0 in
  let json = Fleet.Campaign.snapshot_json spec [ sr ] in
  let spec', shards' = Fleet.Campaign.parse_snapshot (Json.to_string json) in
  Alcotest.(check bool) "spec round-trips" true (Fleet.Spec.equal spec spec');
  Alcotest.(check string)
    "shard result round-trips exactly"
    (Json.to_string (Fleet.Campaign.shard_to_json sr))
    (Json.to_string (Fleet.Campaign.shard_to_json (List.hd shards')))

let test_elaborate_deterministic () =
  let spec = Fleet.Spec.make ~devices:32 ~seed:5 () in
  let d1, f1 = Fleet.Campaign.elaborate spec in
  let d2, f2 = Fleet.Campaign.elaborate spec in
  Alcotest.(check bool) "device assignments are pure" true (d1 = d2);
  let exposures f =
    Array.map
      (fun (d : Fleet.Campaign.device) ->
        Fleet.Field.exposure_seconds
          (Fleet.Field.schedule_at f ~x:d.Fleet.Campaign.x ~y:d.Fleet.Campaign.y))
      d1
  in
  Alcotest.(check bool) "field schedules are pure" true (exposures f1 = exposures f2)

let test_spec_json_roundtrip () =
  let spec =
    Fleet.Spec.make ~devices:100 ~attackers:3 ~duration:0.125 ~area_m:50.
      ~shard_size:9 ~workload_mix:[ "crc32"; "fir" ]
      ~scheme_mix:[ Gecko_core.Scheme.Gecko; Gecko_core.Scheme.Gecko_noprune ]
      ~board_mix:[ Fleet.Spec.Bench; Fleet.Spec.Attack_rig ]
      ~freq_mhz:13.56 ~power_dbm:33. ~seed:42 ()
  in
  Alcotest.(check bool)
    "spec JSON round-trips" true
    (Fleet.Spec.equal spec (Fleet.Spec.of_json (Fleet.Spec.to_json spec)))

let test_spec_rejects_nonsense () =
  let base = Fleet.Spec.make ~devices:4 ~seed:1 () in
  List.iter
    (fun (label, spec) ->
      Alcotest.(check bool)
        label true
        (match Fleet.Spec.validate spec with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [
      ("zero devices", { base with Fleet.Spec.devices = 0 });
      ("zero shard size", { base with Fleet.Spec.shard_size = 0 });
      ("negative duration", { base with Fleet.Spec.duration = -1. });
      ("empty workload mix", { base with Fleet.Spec.workload_mix = [] });
      ("unknown workload", { base with Fleet.Spec.workload_mix = [ "nope" ] });
      ("empty scheme mix", { base with Fleet.Spec.scheme_mix = [] });
    ]

(* --- heartbeat.gasm round-trip --------------------------------------- *)

(* dune runtest runs in _build/default/test; dune exec from the root. *)
let heartbeat_path =
  List.find Sys.file_exists
    [ "../examples/heartbeat.gasm"; "examples/heartbeat.gasm" ]

let test_heartbeat_roundtrip () =
  match Asm.parse_file heartbeat_path with
  | Error e -> Alcotest.fail ("parse_file failed: " ^ e)
  | Ok p -> (
      let text = Asm.to_string p in
      match Asm.parse text with
      | Error e -> Alcotest.fail ("re-parse failed: " ^ e)
      | Ok p' ->
          Alcotest.(check string)
            "printed assembly reaches a fixpoint" text (Asm.to_string p'))

(* --------------------------------------------------------------------- *)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "fleet"
    [
      ( "merge-laws",
        q
          [
            prop_acc_identity;
            prop_acc_commutative;
            prop_acc_associative;
            prop_acc_merge_is_concat;
            prop_metrics_identity;
            prop_metrics_commutative;
            prop_metrics_associative;
            prop_metrics_persist_roundtrip;
            prop_metrics_quantile_monotone;
            prop_sketch_merge_is_concat;
            prop_sketch_quantile_monotone;
          ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 byte-equality" `Slow
            test_jobs_byte_equality;
          Alcotest.test_case "telemetry jobs=1 vs jobs=4 byte-equality" `Slow
            test_telemetry_jobs_byte_equality;
          Alcotest.test_case "replay matches campaign outlier" `Slow
            test_replay_matches_campaign;
          Alcotest.test_case "resume equals uninterrupted" `Slow
            test_resume_equals_uninterrupted;
          Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "elaborate is deterministic" `Quick
            test_elaborate_deterministic;
        ] );
      ( "spec",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_spec_json_roundtrip;
          Alcotest.test_case "validation rejects nonsense" `Quick
            test_spec_rejects_nonsense;
        ] );
      ( "asm",
        [
          Alcotest.test_case "heartbeat.gasm round-trip" `Quick
            test_heartbeat_roundtrip;
        ] );
    ]

open Gecko_isa
module B = Builder
module Core = Gecko_core
module M = Gecko_machine
module H = Gecko_energy.Harvester

(* Weighted array sum with prunable live-ins (constant bound, read-only
   coefficient) and loop-carried state in NVM. *)
let sum_program () =
  let b = B.program "sum" in
  let data = B.space b "data" ~words:16 ~init:(Array.init 16 (fun i -> i + 1)) () in
  let acc = B.space b "acc" ~words:1 () in
  let coeff = B.space b "coeff" ~words:2 ~init:[| 3; 5 |] () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r0 0;
  B.li b Reg.r1 0;
  B.st b (B.at acc 0) Reg.r1;
  B.li b Reg.r5 16;
  B.ld b Reg.r6 (B.at coeff 0);
  B.block b "loop" ~loop_bound:16;
  B.ld b Reg.r2 (B.idx data Reg.r0);
  B.mul b Reg.r2 Reg.r2 (B.reg Reg.r6);
  B.ld b Reg.r3 (B.at acc 0);
  B.add b Reg.r3 Reg.r3 (B.reg Reg.r2);
  B.st b (B.at acc 0) Reg.r3;
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.bin b Instr.Slt Reg.r4 Reg.r0 (B.reg Reg.r5);
  B.br b Instr.Nz Reg.r4 "loop" "done_";
  B.block b "done_";
  B.halt b;
  B.finish b

let compile_and_link scheme =
  let p, meta = Core.Pipeline.compile scheme (sum_program ()) in
  (Link.link p, meta)

let expected_sum = 3 * (16 * 17 / 2)

let acc_addr image =
  let space = Cfg.find_space image.Link.prog "acc" in
  image.Link.space_base.(space.Instr.space_id)

let test_continuous_power () =
  List.iter
    (fun scheme ->
      let image, meta = compile_and_link scheme in
      let board = M.Board.default () in
      let o, nvm =
        M.Machine.run_with_nvm ~board ~image ~meta M.Machine.default_options
      in
      Alcotest.(check int)
        (Core.Scheme.to_string scheme ^ " completes")
        1 o.M.Machine.completions;
      Alcotest.(check int)
        (Core.Scheme.to_string scheme ^ " result")
        expected_sum
        nvm.(acc_addr image))
    Core.Scheme.all

let test_intermittent_power () =
  (* A weak harvester with 2 Hz outages: every scheme must still produce
     the golden result (NVP checkpoints just in time; the others roll). *)
  let harvester =
    H.square_wave ~period:0.5 ~duty:0.6 (H.thevenin ~v_source:3.3 ~r_source:40.)
  in
  List.iter
    (fun scheme ->
      let image, meta = compile_and_link scheme in
      let board = M.Board.default ~harvester () in
      let golden = M.Machine.golden_nvm ~board ~image ~meta in
      let opts =
        { M.Machine.default_options with max_sim_time = 120.; seed = 7 }
      in
      let o, nvm = M.Machine.run_with_nvm ~board ~image ~meta opts in
      Alcotest.(check int)
        (Core.Scheme.to_string scheme ^ " completes")
        1 o.M.Machine.completions;
      Alcotest.(check (array int))
        (Core.Scheme.to_string scheme ^ " crash-consistent")
        golden nvm)
    Core.Scheme.all


(* Runtime behaviour details. *)

let outage_board () =
  let device =
    let d = Gecko_devices.Catalog.evaluation_board in
    {
      d with
      Gecko_devices.Device.core =
        {
          d.Gecko_devices.Device.core with
          Gecko_devices.Device.reboot_latency = 2e-4;
          reboot_energy = 6e-7;
        };
    }
  in
  {
    (M.Board.default ~device
       ~harvester:(H.thevenin ~v_source:3.3 ~r_source:2000.) ())
    with
    M.Board.capacitance = 0.6e-6;
  }

let test_jit_resume_events () =
  let prog = (Gecko_workloads.Workload.find "stringsearch").Gecko_workloads.Workload.build () in
  let p, meta = Core.Pipeline.compile Core.Scheme.Nvp prog in
  let image = Link.link p in
  let board = outage_board () in
  let o =
    M.Machine.run ~board ~image ~meta
      { M.Machine.default_options with record_events = true; max_sim_time = 30. }
  in
  Alcotest.(check int) "completes" 1 o.M.Machine.completions;
  let kinds = List.map (fun (e : M.Machine.event) -> e.M.Machine.ev_kind) o.M.Machine.events in
  Alcotest.(check bool) "checkpointed" true (List.mem M.Machine.Ev_checkpoint kinds);
  Alcotest.(check bool) "restored" true (List.mem M.Machine.Ev_restore_jit kinds);
  (* Events are time-ordered. *)
  let rec ordered = function
    | (a : M.Machine.event) :: (b :: _ as rest) ->
        a.M.Machine.ev_time <= b.M.Machine.ev_time && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true (ordered o.M.Machine.events)

let test_io_log () =
  let blink = (Gecko_workloads.Workload.find "blink").Gecko_workloads.Workload.build () in
  let p, meta = Core.Pipeline.compile Core.Scheme.Nvp blink in
  let image = Link.link p in
  let board = M.Board.default () in
  let o =
    M.Machine.run ~board ~image ~meta
      { M.Machine.default_options with record_io = true }
  in
  Alcotest.(check int) "eight blinks logged" 8 (List.length o.M.Machine.io_log);
  Alcotest.(check int) "count matches" o.M.Machine.io_out_count
    (List.length o.M.Machine.io_log);
  (* Alternating LED values 0,1,0,1... *)
  List.iteri
    (fun i (port, v) ->
      Alcotest.(check int) "port" 0 port;
      Alcotest.(check int) "value" (i land 1) v)
    o.M.Machine.io_log

let test_timeline_buckets () =
  let image, meta = compile_and_link Core.Scheme.Nvp in
  let board = M.Board.default () in
  let o =
    M.Machine.run ~board ~image ~meta
      {
        M.Machine.default_options with
        limit = M.Machine.Sim_time 0.05;
        restart_on_halt = true;
        timeline_bucket = Some 0.01;
      }
  in
  match o.M.Machine.timeline with
  | None -> Alcotest.fail "expected a timeline"
  | Some tl ->
      let total = Array.fold_left ( + ) 0 tl.M.Machine.completions_per_bucket in
      Alcotest.(check int) "buckets sum to completions" o.M.Machine.completions total

(* Property: the recorded event stream is time-ordered and its per-kind
   counts agree with the outcome counters, for every scheme, with and
   without an attack.  This pins the contract the observability layer
   (and the CLI trace export) builds on: every counter bump has exactly
   one recorded event. *)

let check_events_agree name (o : M.Machine.outcome) =
  let rec ordered = function
    | (a : M.Machine.event) :: (b :: _ as rest) ->
        a.M.Machine.ev_time <= b.M.Machine.ev_time && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) (name ^ ": timestamps ordered") true
    (ordered o.M.Machine.events);
  let kinds =
    List.map (fun (e : M.Machine.event) -> e.M.Machine.ev_kind)
      o.M.Machine.events
  in
  let n p = List.length (List.filter p kinds) in
  let check what expected p =
    Alcotest.(check int) (Printf.sprintf "%s: %s" name what) expected (n p)
  in
  check "checkpoints" o.M.Machine.jit_checkpoints (function
    | M.Machine.Ev_checkpoint -> true
    | _ -> false);
  check "checkpoint failures" o.M.Machine.jit_checkpoint_failures (function
    | M.Machine.Ev_checkpoint_failed -> true
    | _ -> false);
  check "rollbacks" o.M.Machine.rollbacks (function
    | M.Machine.Ev_rollback _ -> true
    | _ -> false);
  check "brownouts" o.M.Machine.brownouts (function
    | M.Machine.Ev_brownout -> true
    | _ -> false);
  check "detections" o.M.Machine.detections (function
    | M.Machine.Ev_detection -> true
    | _ -> false);
  check "reenables" o.M.Machine.reenables (function
    | M.Machine.Ev_reenable -> true
    | _ -> false);
  check "completions" o.M.Machine.completions (function
    | M.Machine.Ev_completion -> true
    | _ -> false);
  (* The initial charged boot is recorded but is not a re-boot. *)
  check "boots" (o.M.Machine.reboots + 1) (function
    | M.Machine.Ev_boot _ -> true
    | _ -> false)

let test_events_match_counters () =
  let attack_schedule =
    Gecko_emi.Schedule.always
      (Gecko_emi.Attack.remote ~distance_m:0.1
         (Gecko_emi.Signal.make ~freq_mhz:27. ~power_dbm:20.))
  in
  let outage_harvester =
    H.square_wave ~period:0.5 ~duty:0.6
      (H.thevenin ~v_source:3.3 ~r_source:40.)
  in
  List.iter
    (fun scheme ->
      let image, meta = compile_and_link scheme in
      List.iter
        (fun (label, board, schedule) ->
          let o =
            M.Machine.run ~board ~image ~meta
              {
                M.Machine.default_options with
                schedule;
                record_events = true;
                limit = M.Machine.Sim_time 0.3;
                restart_on_halt = true;
                max_sim_time = 1.;
                seed = 11;
              }
          in
          check_events_agree
            (Core.Scheme.to_string scheme ^ "/" ^ label)
            o)
        [
          ( "outages",
            M.Board.default ~harvester:outage_harvester (),
            Gecko_emi.Schedule.empty );
          ( "attack",
            M.Board.attack_rig ~device:Gecko_devices.Catalog.msp430fr5994 (),
            attack_schedule );
        ])
    [ Core.Scheme.Nvp; Core.Scheme.Ratchet; Core.Scheme.Gecko ]

let test_sim_time_cap () =
  (* A dead harvester and completions limit: the cap must kick in. *)
  let image, meta = compile_and_link Core.Scheme.Nvp in
  let board =
    { (M.Board.default ~harvester:Gecko_energy.Harvester.none ()) with
      M.Board.capacitance = 1e-6 }
  in
  let o =
    M.Machine.run ~board ~image ~meta
      {
        M.Machine.default_options with
        limit = M.Machine.Completions 1000;
        restart_on_halt = true;
        max_sim_time = 0.2;
      }
  in
  Alcotest.(check bool) "cap reached" true (o.M.Machine.sim_time >= 0.2);
  Alcotest.(check bool) "limit not hit" false o.M.Machine.hit_limit

let () =
  Alcotest.run "machine-smoke"
    [
      ( "machine",
        [
          Alcotest.test_case "continuous power" `Quick test_continuous_power;
          Alcotest.test_case "intermittent power" `Quick test_intermittent_power;
          Alcotest.test_case "JIT resume events" `Quick test_jit_resume_events;
          Alcotest.test_case "io log" `Quick test_io_log;
          Alcotest.test_case "timeline buckets" `Quick test_timeline_buckets;
          Alcotest.test_case "events match counters" `Quick
            test_events_match_counters;
          Alcotest.test_case "sim-time cap" `Quick test_sim_time_cap;
        ] );
    ]

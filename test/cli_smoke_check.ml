(* Validator for the CLI smoke artifacts produced by the dune rules in
   this directory: the trace, metrics and fuzz-report JSON files written
   by `gecko run`/`gecko fuzz` must parse and carry the expected keys.
   Exits non-zero (failing the @runtest alias) on any violation. *)

module Json = Gecko_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error m -> fail "cannot read %s: %s" path m

let parse path =
  match Json.parse (read_file path) with
  | Ok j -> j
  | Error m -> fail "%s: invalid JSON: %s" path m

let need path j key =
  match Json.member key j with
  | Some v -> v
  | None -> fail "%s: missing key %S" path key

let need_list path j key =
  match Json.to_list_opt (need path j key) with
  | Some l -> l
  | None -> fail "%s: key %S is not a list" path key

let check_trace path =
  let j = parse path in
  (* Chrome trace-event format: {"traceEvents": [...], "otherData": {...}}. *)
  (match need_list path j "traceEvents" with
  | e :: _ -> ignore (need path e "ph")
  | [] -> fail "%s: trace is empty" path);
  let other = need path j "otherData" in
  match Json.member "dropped" other with
  | Some (Json.Int d) when d >= 0 -> ()
  | _ -> fail "%s: otherData.dropped missing or negative" path

let check_metrics path =
  let j = parse path in
  match need path j "counters" with
  | Json.Assoc ((_ :: _) as counters) ->
      if not (List.mem_assoc "machine.completions" counters) then
        fail "%s: counters lack machine.completions" path
  | _ -> fail "%s: counters missing or empty" path

let check_fuzz path =
  let j = parse path in
  (match Json.to_string_opt (need path j "schema") with
  | Some "gecko.fuzz/1" -> ()
  | _ -> fail "%s: bad schema tag" path);
  ignore (need path j "workload");
  ignore (need path j "scheme");
  let explore = need path j "explore" in
  List.iter
    (fun k -> ignore (need path explore k))
    [ "sites_total"; "explored"; "event_sites_covered"; "baseline_ok"; "failures" ];
  let fuzz = need path j "fuzz" in
  List.iter (fun k -> ignore (need path fuzz k)) [ "evals"; "best_score" ];
  ignore (need_list path j "repros");
  match Json.to_float_opt (need path j "failures_total") with
  | Some 0. -> ()
  | Some n -> fail "%s: smoke fuzz found %g failures on a clean scheme" path n
  | None -> fail "%s: failures_total is not a number" path

let check_fleet path =
  let j = parse path in
  (match Json.to_string_opt (need path j "schema") with
  | Some "gecko.fleet-report/1" -> ()
  | _ -> fail "%s: bad schema tag" path);
  let spec = need path j "spec" in
  let total = need path j "total" in
  let int_of k v =
    match Json.to_float_opt (need path v k) with
    | Some f -> int_of_float f
    | None -> fail "%s: %s is not a number" path k
  in
  let devices = int_of "devices" spec in
  if int_of "devices" total <> devices then
    fail "%s: total.devices disagrees with spec.devices" path;
  if int_of "instructions" total <= 0 then
    fail "%s: fleet simulated no instructions" path;
  List.iter
    (fun k ->
      match need path j k with
      | Json.Assoc (_ :: _) -> ()
      | _ -> fail "%s: %s missing or empty" path k)
    [ "per_scheme"; "per_workload"; "metrics" ]

let check_run_log path =
  let s = read_file path in
  if String.length s = 0 then fail "%s: empty CLI output" path

let check_telemetry path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> fail "%s: empty telemetry stream" path
  | header :: rest ->
      let h =
        match Json.parse header with
        | Ok j -> j
        | Error m -> fail "%s: invalid header JSON: %s" path m
      in
      (match Json.to_string_opt (need path h "schema") with
      | Some "gecko.fleet-telemetry/1" -> ()
      | _ -> fail "%s: bad stream schema tag" path);
      ignore (need path h "spec");
      ignore (need path h "config");
      let records =
        List.map
          (fun l ->
            match Json.parse l with
            | Ok j -> j
            | Error m -> fail "%s: invalid stream record: %s" path m)
          rest
      in
      if not (List.exists (fun j -> Json.member "final" j <> None) records)
      then fail "%s: stream has no final record" path;
      if
        not
          (List.exists
             (fun j -> Json.member "nondeterministic" j <> None)
             records)
      then fail "%s: stream has no nondeterministic record" path;
      List.iter
        (fun j ->
          match Json.member "shard" j with
          | Some _ -> ignore (need path j "cumulative")
          | None -> ())
        records

(* The cross-engine gate: the lockstep and scalar fleet runs of the same
   spec must have written byte-identical reports. *)
let check_engines_agree lockstep scalar =
  let a = read_file lockstep and b = read_file scalar in
  if not (String.equal a b) then
    fail "%s and %s differ: lockstep and scalar engine reports must be \
          byte-identical" lockstep scalar

let check_flight path =
  let j = parse path in
  (match Json.to_string_opt (need path j "schema") with
  | Some "gecko.flight/1" -> ()
  | _ -> fail "%s: bad flight schema tag" path);
  match need_list path j "events" with
  | [] -> fail "%s: flight dump is empty" path
  | e :: _ -> List.iter (fun k -> ignore (need path e k)) [ "t"; "ev"; "v" ]

let () =
  match Array.to_list Sys.argv with
  | [ _; trace; metrics; fuzz; runlog; fleet; fleet_scalar; heartbeat;
      telemetry; flight; replaylog ] ->
      check_trace trace;
      check_metrics metrics;
      check_fuzz fuzz;
      check_run_log runlog;
      check_fleet fleet;
      check_fleet fleet_scalar;
      check_engines_agree fleet fleet_scalar;
      check_run_log heartbeat;
      check_telemetry telemetry;
      check_flight flight;
      check_run_log replaylog;
      print_endline "cli smoke artifacts ok"
  | _ ->
      fail
        "usage: cli_smoke_check TRACE METRICS FUZZ RUNLOG FLEET FLEET_SCALAR \
         HEARTBEAT TELEMETRY FLIGHT REPLAYLOG"

(* Properties of the pre-decode pass (Decode) and differentials of the
   decoded fast path against both the frozen reference interpreter and
   the machine's own checked path.

   This executable flips [GECKO_CHECKED] on before anything touches NVM,
   so every run here exercises the fast dispatcher with per-access NVM
   range validation enabled — the configuration the plain test
   executables never see (their Nvm instances latch the unchecked
   default). *)

let () = Unix.putenv "GECKO_CHECKED" "1"

open Gecko_isa
module Core = Gecko_core
module M = Gecko_machine
module D = Gecko_machine.Decode
module H = Gecko_energy.Harvester

let compile scheme seed =
  let p, meta = Core.Pipeline.compile scheme (Gen_prog.generate seed) in
  (Link.link p, meta)

let scheme_of seed =
  List.nth
    [ Core.Scheme.Nvp; Core.Scheme.Ratchet; Core.Scheme.Gecko_noprune;
      Core.Scheme.Gecko ]
    (seed mod 4)

let seed_gen = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 99999)

(* --- decode structure ------------------------------------------------- *)

(* Structural equality of two decodes, field by field.  [image] is
   deliberately excluded: provenance is compared by physical equality in
   the machine, and both sides here decode the same image anyway. *)
let dec_eq (a : D.t) (b : D.t) =
  a.D.ops = b.D.ops && a.D.dt = b.D.dt && a.D.en = b.D.en && a.D.cyc = b.D.cyc
  && a.D.block_start = b.D.block_start
  && a.D.blk_end = b.D.blk_end && a.D.e_sfx = b.D.e_sfx
  && a.D.dt_sfx = b.D.dt_sfx && a.D.n_ops = b.D.n_ops
  && a.D.n_fused = b.D.n_fused
  && a.D.n_blocks = b.D.n_blocks

let decode_of_seed seed =
  let image, _meta = compile (scheme_of seed) seed in
  let device = (M.Board.default ()).M.Board.device in
  (image, D.decode ~device image)

(* Decode is total on every generated program x scheme and lowers each
   linked instruction to exactly one slot; boundaries survive 1:1 (a
   fused pair rewrites only its first slot, the second keeps its
   original op, so nothing disappears from the stream). *)
let prop_decode_total_counts =
  QCheck.Test.make ~count:100
    ~name:"decode is total and preserves instruction/boundary counts"
    seed_gen (fun seed ->
      let image, d = decode_of_seed seed in
      let code = image.Link.code in
      let boundaries_src =
        Array.fold_left
          (fun acc li ->
            match li with
            | Link.Op (Instr.Boundary _) -> acc + 1
            | _ -> acc)
          0 code
      in
      let boundaries_dec =
        Array.fold_left
          (fun acc op -> match op with D.M_boundary _ -> acc + 1 | _ -> acc)
          0 d.D.ops
      in
      d.D.n_ops = Array.length code
      && Array.length d.D.ops = d.D.n_ops
      && boundaries_dec = boundaries_src
      && d.D.n_blocks > 0
      && d.D.n_fused >= 0 && d.D.n_fused <= d.D.n_ops)

(* A fused superinstruction retires two source instructions in one
   dispatch, so control must never be able to (or required to) stop
   between its halves: the second half is never a block start, and the
   pair sits strictly inside its basic block. *)
let prop_fusion_respects_splits =
  QCheck.Test.make ~count:100
    ~name:"fusion never crosses a block split" seed_gen (fun seed ->
      let _image, d = decode_of_seed seed in
      let ok = ref true in
      Array.iteri
        (fun i op ->
          if D.width op = 2 then
            if
              i + 1 >= d.D.n_ops
              || d.D.block_start.(i + 1)
              || d.D.blk_end.(i) < i + 2
              || D.solo op
            then ok := false)
        d.D.ops;
      !ok)

(* Same image, same device -> bit-identical decode, and the Workbench
   cache returns the one memoized value (physical equality) that is
   itself equal to a fresh decode. *)
let prop_decode_deterministic =
  QCheck.Test.make ~count:60 ~name:"decode is deterministic" seed_gen
    (fun seed ->
      let image, d1 = decode_of_seed seed in
      let device = (M.Board.default ()).M.Board.device in
      dec_eq d1 (D.decode ~device image))

let prop_decode_cache_hit =
  QCheck.Test.make ~count:40
    ~name:"workbench decode cache hit equals a fresh decode" seed_gen
    (fun seed ->
      let scheme = scheme_of seed in
      let prog = Gen_prog.generate seed in
      let board = M.Board.default () in
      let image, _meta, dec1 = Gecko_harness.Workbench.decoded scheme prog ~board in
      let _, _, dec2 = Gecko_harness.Workbench.decoded scheme prog ~board in
      dec2 == dec1
      && dec1.D.image == image
      && dec_eq dec1 (D.decode ~device:board.M.Board.device image))

(* --- differentials under GECKO_CHECKED ------------------------------- *)

(* Outage-prone board as in test_props: tiny storage, weak harvester. *)
let crashy_board () =
  let device =
    let d = Gecko_devices.Catalog.evaluation_board in
    {
      d with
      Gecko_devices.Device.core =
        {
          d.Gecko_devices.Device.core with
          Gecko_devices.Device.reboot_latency = 2e-4;
          reboot_energy = 6e-7;
        };
    }
  in
  {
    (M.Board.default ~device
       ~harvester:(H.thevenin ~v_source:3.3 ~r_source:2000.) ())
    with
    M.Board.capacitance = 0.6e-6;
  }

let norm (o : M.Machine.outcome) =
  ( ( o.M.Machine.completions,
      o.M.Machine.completion_times,
      o.M.Machine.sim_time,
      o.M.Machine.app_cycles,
      o.M.Machine.app_seconds,
      o.M.Machine.instrumentation_cycles ),
    ( o.M.Machine.jit_checkpoints,
      o.M.Machine.jit_checkpoint_failures,
      o.M.Machine.reboots,
      o.M.Machine.brownouts,
      o.M.Machine.detections,
      o.M.Machine.reenables ),
    ( o.M.Machine.rollbacks,
      o.M.Machine.recovery_block_runs,
      o.M.Machine.corruptions,
      o.M.Machine.io_out_count,
      o.M.Machine.io_log,
      o.M.Machine.final_mode ),
    List.map (Format.asprintf "%a" M.Machine.pp_event) o.M.Machine.events,
    o.M.Machine.hit_limit )

let norm_ref (o : Ref_machine.outcome) =
  ( ( o.Ref_machine.completions,
      o.Ref_machine.completion_times,
      o.Ref_machine.sim_time,
      o.Ref_machine.app_cycles,
      o.Ref_machine.app_seconds,
      o.Ref_machine.instrumentation_cycles ),
    ( o.Ref_machine.jit_checkpoints,
      o.Ref_machine.jit_checkpoint_failures,
      o.Ref_machine.reboots,
      o.Ref_machine.brownouts,
      o.Ref_machine.detections,
      o.Ref_machine.reenables ),
    ( o.Ref_machine.rollbacks,
      o.Ref_machine.recovery_block_runs,
      o.Ref_machine.corruptions,
      o.Ref_machine.io_out_count,
      o.Ref_machine.io_log,
      o.Ref_machine.final_mode ),
    List.map (Format.asprintf "%a" Ref_machine.pp_event) o.Ref_machine.events,
    o.Ref_machine.hit_limit )

(* The decoded fast path must match the frozen reference with NVM range
   checking live — same EMI schedule, crash-prone board. *)
let prop_checked_matches_reference =
  QCheck.Test.make ~count:16
    ~name:"fast path matches the reference under GECKO_CHECKED" seed_gen
    (fun seed ->
      let scheme = scheme_of seed in
      let image, meta = compile scheme seed in
      let board = crashy_board () in
      let o =
        M.Machine.run ~board ~image ~meta
          {
            M.Machine.default_options with
            limit = M.Machine.Sim_time 0.15;
            max_sim_time = 0.2;
            seed;
            restart_on_halt = true;
            record_io = true;
            record_events = true;
          }
      in
      let r =
        Ref_machine.run ~board ~image ~meta
          {
            Ref_machine.default_options with
            Ref_machine.limit = Ref_machine.Sim_time 0.15;
            max_sim_time = 0.2;
            seed;
            restart_on_halt = true;
            record_io = true;
            record_events = true;
          }
      in
      norm o = norm_ref r)

(* Genuine mid-run power failures: the supply is gated by a square wave,
   so the capacitor collapses and recovers repeatedly.  Rollback and
   replay through the decoded dispatcher must retrace the reference
   exactly, including the final NVM data segment. *)
let prop_outage_matches_reference =
  QCheck.Test.make ~count:12
    ~name:"fast path matches the reference across power failures" seed_gen
    (fun seed ->
      let scheme = scheme_of seed in
      let image, meta = compile scheme seed in
      let board =
        {
          (crashy_board ()) with
          M.Board.harvester =
            H.square_wave ~period:0.02 ~duty:0.55
              (H.thevenin ~v_source:3.3 ~r_source:1500.);
        }
      in
      let o, nvm =
        M.Machine.run_with_nvm ~board ~image ~meta
          {
            M.Machine.default_options with
            limit = M.Machine.Sim_time 0.15;
            max_sim_time = 0.2;
            seed;
            restart_on_halt = true;
            record_io = true;
            record_events = true;
          }
      in
      let r, rnvm =
        Ref_machine.run_with_nvm ~board ~image ~meta
          {
            Ref_machine.default_options with
            Ref_machine.limit = Ref_machine.Sim_time 0.15;
            max_sim_time = 0.2;
            seed;
            restart_on_halt = true;
            record_io = true;
            record_events = true;
          }
      in
      norm o = norm_ref r && nvm = rnvm)

(* An injected power failure mid-run (the n-th instruction-fetch site),
   identically on the fast and the checked interpreter: the decoded
   dispatcher's rollback/replay must be step-for-step equivalent to the
   per-instruction path's.  The reference has no injection hooks, so the
   machine differentials against itself with [fast] flipped. *)
let prop_injected_failure_fast_vs_checked =
  QCheck.Test.make ~count:12
    ~name:"injected mid-run failure: fast path equals checked path"
    seed_gen (fun seed ->
      let scheme = scheme_of seed in
      let image, meta = compile scheme seed in
      let board = crashy_board () in
      let run_with ~fast =
        let h =
          M.Machine.Step.start ~board ~image ~meta
            {
              M.Machine.default_options with
              limit = M.Machine.Sim_time 0.1;
              max_sim_time = 0.15;
              seed;
              restart_on_halt = true;
              record_io = true;
              record_events = true;
              fast;
            }
        in
        let fetches = ref 0 in
        let target = 200 + (seed mod 400) in
        M.Machine.Step.set_injector h
          (Some
             (fun site ->
               match site with
               | M.Machine.S_instr ->
                   incr fetches;
                   !fetches = target
               | _ -> false));
        while M.Machine.Step.step h do
          ()
        done;
        (M.Machine.Step.outcome h, M.Machine.Step.nvm_data h)
      in
      let o1, nvm1 = run_with ~fast:true in
      let o2, nvm2 = run_with ~fast:false in
      norm o1 = norm o2 && nvm1 = nvm2)

(* Pure observers (metrics registry, flight recorder) plus an armed but
   always-false injector must leave the fast path's outcome untouched. *)
let prop_observers_do_not_perturb =
  QCheck.Test.make ~count:10
    ~name:"armed observers and a false injector do not perturb the run"
    seed_gen (fun seed ->
      let scheme = scheme_of seed in
      let image, meta = compile scheme seed in
      let board = crashy_board () in
      let base_opts =
        {
          M.Machine.default_options with
          limit = M.Machine.Sim_time 0.1;
          max_sim_time = 0.15;
          seed;
          restart_on_halt = true;
          record_io = true;
          record_events = true;
        }
      in
      let plain = M.Machine.run ~board ~image ~meta base_opts in
      let observed =
        let h =
          M.Machine.Step.start ~board ~image ~meta
            {
              base_opts with
              metrics = Some (Gecko_obs.Metrics.create ());
              flight = Some (Gecko_obs.Flight.create ~capacity:32 ());
            }
        in
        M.Machine.Step.set_injector h (Some (fun _ -> false));
        while M.Machine.Step.step h do
          ()
        done;
        M.Machine.Step.outcome h
      in
      norm plain = norm observed)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "decoder"
    [
      ( "decode",
        q
          [
            prop_decode_total_counts;
            prop_fusion_respects_splits;
            prop_decode_deterministic;
            prop_decode_cache_hit;
          ] );
      ( "differential-checked",
        q
          [
            prop_checked_matches_reference;
            prop_outage_matches_reference;
            prop_injected_failure_fast_vs_checked;
            prop_observers_do_not_perturb;
          ] );
    ]

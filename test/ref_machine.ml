(* Frozen pre-optimization reference interpreter for the differential
   property test (test_props.ml).  This is a verbatim copy of
   lib/machine/machine.ml as of PR 1, BEFORE the hot-path optimization
   work (attack-window cursor, cached device constants, batched ADC
   observation, hoisted IO RNG).  Machine.run must produce identical
   outcomes to Ref_machine.run on every program x board x schedule x
   scheme; the differential QCheck property enforces it.  Do not
   "clean up" or re-optimize this module — its value is that it stays
   behind.  (Exception: semantic runtime additions MUST be mirrored here
   or the differential loses its subject — currently the speculation
   undo-log protocol for guarded images, kept step-for-step identical to
   the optimized interpreter, minus its injector/flight hooks.) *)

open Gecko_isa
open Gecko_emi
module Board = Gecko_machine.Board
module Nvm = Gecko_mem.Nvm
module Capacitor = Gecko_energy.Capacitor
module Harvester = Gecko_energy.Harvester
module Monitor = Gecko_monitor.Monitor
module Device = Gecko_devices.Device
module Policy = Gecko_core.Policy
module Meta = Gecko_core.Meta
module Scheme = Gecko_core.Scheme

type limit = Sim_time of float | Completions of int

type event_kind =
  | Ev_boot of Policy.mode
  | Ev_restore_jit
  | Ev_rollback of int
  | Ev_fresh_start
  | Ev_backup_signal of bool
  | Ev_checkpoint
  | Ev_checkpoint_failed
  | Ev_brownout
  | Ev_detection
  | Ev_reenable
  | Ev_completion

type event = { ev_time : float; ev_kind : event_kind }

let pp_event ppf e =
  let k =
    match e.ev_kind with
    | Ev_boot m -> Printf.sprintf "boot (mode %s)" (Policy.mode_to_string m)
    | Ev_restore_jit -> "JIT restore"
    | Ev_rollback b -> Printf.sprintf "rollback to boundary %d" b
    | Ev_fresh_start -> "fresh start"
    | Ev_backup_signal early ->
        if early then "backup signal (early — spurious)" else "backup signal"
    | Ev_checkpoint -> "JIT checkpoint"
    | Ev_checkpoint_failed -> "JIT checkpoint FAILED"
    | Ev_brownout -> "brownout"
    | Ev_detection -> "ATTACK DETECTED"
    | Ev_reenable -> "JIT re-enabled"
    | Ev_completion -> "application completed"
  in
  Format.fprintf ppf "%10.6fs  %s" e.ev_time k

type options = {
  schedule : Schedule.t;
  limit : limit;
  max_sim_time : float;
  timeline_bucket : float option;
  seed : int;
  restart_on_halt : bool;
  record_io : bool;
  record_events : bool;
  start_charged : bool;
  trace : Gecko_obs.Trace.t option;
  metrics : Gecko_obs.Metrics.registry option;
}

let default_options =
  {
    schedule = Schedule.empty;
    limit = Completions 1;
    max_sim_time = 3600.;
    timeline_bucket = None;
    seed = 1;
    restart_on_halt = false;
    record_io = false;
    record_events = false;
    start_charged = true;
    trace = None;
    metrics = None;
  }

type timeline = {
  bucket : float;
  app_seconds_per_bucket : float array;
  completions_per_bucket : int array;
}

type outcome = {
  completions : int;
  completion_times : float list;
  sim_time : float;
  app_cycles : int;
  app_seconds : float;
  instrumentation_cycles : int;
  jit_checkpoints : int;
  jit_checkpoint_failures : int;
  reboots : int;
  brownouts : int;
  detections : int;
  reenables : int;
  rollbacks : int;
  recovery_block_runs : int;
  misspeculations : int;
  corruptions : int;
  io_out_count : int;
  io_log : (int * int) list;
  final_mode : Policy.mode;
  timeline : timeline option;
  events : event list;
  hit_limit : bool;
}

let forward_progress o = if o.sim_time <= 0. then 0. else o.app_seconds /. o.sim_time

let checkpoint_failure_rate o =
  (* N_fail includes checkpoints cut short mid-write and power cycles
     whose ACK shows the expected checkpoint never completed (observed as
     a corrupt resume). *)
  let fails = o.jit_checkpoint_failures + o.corruptions in
  let attempts = o.jit_checkpoints + o.corruptions in
  if attempts = 0 then 0. else float_of_int fails /. float_of_int attempts

(* ------------------------------------------------------------------ *)

type state = {
  board : Board.t;
  image : Link.image;
  meta : Meta.t;
  opts : options;
  nvm : Nvm.t;
  cap : Capacitor.t;
  monitor : Monitor.t;
  profile : Coupling.profile;
  regs : int array;
  mutable pc : int;
  mutable powered : bool;
  mutable time : float;
  mutable mode : Policy.mode;
  (* attack cursor *)
  windows : Schedule.window array;
  mutable cur_amp : float;
  mutable cur_harvest_w : float;
  mutable next_change : float;
  (* loop control *)
  mutable stop : bool;
  mutable hit_limit : bool;
  mutable progress_written : bool;  (* progress flag written this power cycle *)
  k_has_guards : bool;  (* speculative image: undo-log protocol active *)
  (* Volatile mirrors of the committed-boundary word and the undo count
     (NVM stays authoritative; refreshed at boot/rollback). *)
  mutable boundary_word_v : int;
  mutable undo_count_v : int;
  mutable boot_inhibited : bool;  (* BOR hysteresis after a failed boot *)
  mutable boot_time : float;  (* when the current power cycle began *)
  mutable next_wake_check : float;
  t_min_on : float;  (* guaranteed minimum on-time of a full charge *)
  (* counters *)
  mutable completions : int;
  mutable completion_times : float list; (* reversed *)
  mutable app_cycles : int;
  mutable instrumentation_cycles : int;
  mutable jit_checkpoints : int;
  mutable jit_checkpoint_failures : int;
  mutable reboots : int;
  mutable brownouts : int;
  mutable detections : int;
  mutable reenables : int;
  mutable rollbacks : int;
  mutable recovery_block_runs : int;
  mutable misspeculations : int;
  mutable corruptions : int;
  mutable io_in_count : int;
  mutable io_out_count : int;
  mutable io_log : (int * int) list; (* reversed; committed records only *)
  (* GECKO staged-commit io_log, mirroring the optimized interpreter. *)
  mutable io_staged : (int * int) list; (* reversed *)
  mutable io_staged_ckpt : (int * int) list;
  mutable events : event list; (* reversed *)
  (* timeline *)
  tl_app : float array;
  tl_comp : int array;
  tl_bucket : float;
  (* observability; [tracing] caches [trace <> None && enabled] so the
     per-instruction cost of a disabled recorder is one branch *)
  tracing : bool;
  trace : Gecko_obs.Trace.t option;
  mutable next_vsample : float;
  hist_ckpt : Gecko_obs.Metrics.histogram option;
  hist_rollback : Gecko_obs.Metrics.histogram option;
}

let cycle_time st = Device.cycle_time st.board.Board.device
let epc st = Device.energy_per_cycle st.board.Board.device
let core st = st.board.Board.device.Device.core

let sleep_step = 100e-6

(* The sleeping device evaluates its wake condition on a slow timer (the
   LPM wake-interval idiom), not at the energy-integration step. *)
let wake_poll = 1.5e-3

(* --- NVM runtime cells ---------------------------------------------- *)

let jit_cell st off = st.image.Link.jit_base + off
let sys_cell st off = st.image.Link.sys_base + off
let gecko_cell st r colour =
  st.image.Link.gecko_base + Link.Cells.gecko_slot r colour

let ratchet_cell st parity r =
  sys_cell st (Link.Cells.sys_ratchet_lo + (parity * Reg.count) + Reg.to_int r)

(* --- attack cursor --------------------------------------------------- *)

let refresh_attack st =
  if st.time >= st.next_change then begin
    let amp = ref 0. and harv = ref 0. and next = ref infinity in
    Array.iter
      (fun (w : Schedule.window) ->
        if st.time >= w.Schedule.t_start && st.time < w.Schedule.t_end then begin
          amp := Attack.induced_amplitude ~profile:st.profile w.Schedule.attack;
          harv := Attack.harvestable_power w.Schedule.attack;
          next := min !next w.Schedule.t_end
        end
        else if w.Schedule.t_start > st.time then
          next := min !next w.Schedule.t_start)
      st.windows;
    st.cur_amp <- !amp;
    st.cur_harvest_w <- !harv;
    st.next_change <- !next
  end

(* --- time & energy --------------------------------------------------- *)

let charge st dt =
  let v = Capacitor.voltage st.cap in
  let i =
    Harvester.current st.board.Board.harvester ~time:st.time ~v
    +. (st.cur_harvest_w /. max v 0.5)
  in
  Capacitor.source_current st.cap ~amps:i ~dt

let bucket_index st = int_of_float (st.time /. st.tl_bucket)

let account_app_seconds st s =
  if st.tl_bucket > 0. then begin
    let i = bucket_index st in
    if i >= 0 && i < Array.length st.tl_app then
      st.tl_app.(i) <- st.tl_app.(i) +. s
  end

(* Advance time and drain energy for [cycles] plus [extra] joules. *)
let spend st cycles ~extra =
  let dt = float_of_int cycles *. cycle_time st in
  let e = (float_of_int cycles *. epc st) +. extra in
  ignore (Capacitor.drain st.cap e);
  charge st dt;
  st.time <- st.time +. dt

let nvm_extra st ~reads ~writes =
  (float_of_int reads *. (core st).Device.nvm_read_energy)
  +. (float_of_int writes *. (core st).Device.nvm_write_energy)

(* --- observability ---------------------------------------------------- *)

let trace_ids = function
  | Ev_boot _ -> ("boot", "power")
  | Ev_restore_jit -> ("restore_jit", "checkpoint")
  | Ev_rollback _ -> ("rollback", "recovery")
  | Ev_fresh_start -> ("fresh_start", "recovery")
  | Ev_backup_signal true -> ("backup_signal_early", "monitor")
  | Ev_backup_signal false -> ("backup_signal", "monitor")
  | Ev_checkpoint -> ("checkpoint", "checkpoint")
  | Ev_checkpoint_failed -> ("checkpoint_failed", "checkpoint")
  | Ev_brownout -> ("brownout", "power")
  | Ev_detection -> ("detection", "defense")
  | Ev_reenable -> ("reenable", "defense")
  | Ev_completion -> ("completion", "app")

let sample_voltage st =
  match st.trace with
  | None -> ()
  | Some tr ->
      Gecko_obs.Trace.counter tr ~cat:"energy" ~ts:st.time "cap_voltage"
        (Capacitor.voltage st.cap)

(* Voltage gauge sampling cadence on the trace (simulated time). *)
let vsample_period = 0.5e-3

let trace_span st ~t0 ~cat name =
  match st.trace with
  | None -> ()
  | Some tr ->
      Gecko_obs.Trace.complete tr ~cat ~ts:t0 ~dur:(st.time -. t0) name

let hist_observe h v =
  match h with None -> () | Some h -> Gecko_obs.Metrics.observe h v

let record st kind =
  if st.opts.record_events then
    st.events <- { ev_time = st.time; ev_kind = kind } :: st.events;
  if st.tracing then begin
    (match st.trace with
    | Some tr ->
        let name, cat = trace_ids kind in
        Gecko_obs.Trace.instant tr ~cat ~ts:st.time name
    | None -> ());
    sample_voltage st
  end

(* --- power transitions ----------------------------------------------- *)

let shutdown st =
  if st.tracing && st.powered then
    trace_span st ~t0:st.boot_time ~cat:"power" "power_on";
  st.powered <- false;
  Monitor.arm_wake st.monitor;
  Monitor.sync st.monitor ~time:st.time

let brownout st =
  st.brownouts <- st.brownouts + 1;
  record st Ev_brownout;
  (* Volatile state is lost — including any uncommitted io_log stage. *)
  Array.fill st.regs 0 Reg.count 0;
  st.io_staged <- [];
  shutdown st

let monitor_is_gecko st =
  match st.meta.Meta.scheme with
  | Scheme.Gecko | Scheme.Gecko_noprune -> true
  | Scheme.Nvp | Scheme.Ratchet -> false

let set_mode st m =
  st.mode <- m;
  Nvm.write st.nvm (sys_cell st Link.Cells.sys_mode) (Policy.mode_to_int m);
  if monitor_is_gecko st then
    Monitor.set_enabled st.monitor (Policy.monitor_enabled m)

(* --- program (re)start ----------------------------------------------- *)

let fresh_start st =
  Array.fill st.regs 0 Reg.count 0;
  st.io_staged <- [];
  st.regs.(Reg.to_int Reg.sp) <- st.image.Link.stack_words - 1;
  st.pc <- st.image.Link.entry

let reinit_data st =
  for a = 0 to st.image.Link.data_words - 1 do
    Nvm.write st.nvm a 0
  done;
  List.iter
    (fun (space_id, init) ->
      let base = st.image.Link.space_base.(space_id) in
      Array.iteri (fun i v -> Nvm.write st.nvm (base + i) v) init)
    st.image.Link.prog.Cfg.init_data;
  (* The progress flag is a power-cycle notion and is left alone here. *)
  Nvm.write st.nvm (sys_cell st Link.Cells.sys_boundary) 0;
  st.boundary_word_v <- 0;
  if st.k_has_guards then begin
    Nvm.write st.nvm (sys_cell st Link.Cells.sys_undo_count) 0;
    st.undo_count_v <- 0
  end;
  Nvm.write st.nvm (jit_cell st Link.Cells.jit_pc) (-1)

(* --- JIT checkpoint ISR (CTPL) --------------------------------------- *)

(* CTPL checkpoints the in-use SRAM sections as well as the register
   file; the simulator carries no separate SRAM, so this is a pure
   time/energy cost. *)
let ctpl_sram_words = 96

let jit_checkpoint_work st =
  st.jit_checkpoints <- st.jit_checkpoints + 1;
  spend st Cost.jit_isr_overhead_cycles ~extra:0.;
  let failed_sram = ref false in
  (try
     for _ = 1 to ctpl_sram_words do
       spend st Cost.nvm_write_cycles ~extra:(nvm_extra st ~reads:1 ~writes:1);
       if Capacitor.voltage st.cap <= st.board.Board.v_off then begin
         failed_sram := true;
         raise Exit
       end
     done
   with Exit -> ());
  if !failed_sram then begin
    st.jit_checkpoint_failures <- st.jit_checkpoint_failures + 1;
    record st Ev_checkpoint_failed;
    brownout st
  end
  else
  let failed = ref false in
  let write_word off v =
    if not !failed then begin
      spend st Cost.nvm_write_cycles ~extra:(nvm_extra st ~reads:0 ~writes:1);
      if Capacitor.voltage st.cap <= st.board.Board.v_off then failed := true
      else Nvm.write st.nvm (jit_cell st off) v
    end
  in
  begin
  Array.iteri (fun i v -> write_word (Link.Cells.jit_regs + i) v) st.regs;
  write_word Link.Cells.jit_pc st.pc;
  (* The ACK toggle is the last write — the checkpoint barrier. *)
  if not !failed then begin
    let ack = Nvm.read st.nvm (jit_cell st Link.Cells.jit_ack) in
    write_word Link.Cells.jit_ack (ack lxor 1)
  end;
  (if !failed then begin
     st.jit_checkpoint_failures <- st.jit_checkpoint_failures + 1;
     record st Ev_checkpoint_failed;
     brownout st
   end
   else begin
     (* The stage is part of the checkpointed volatile state. *)
     st.io_staged_ckpt <- st.io_staged;
     record st Ev_checkpoint
   end)
  end

(* The JIT checkpoint ISR latency — from backup signal to the ACK write
   (or the brownout that killed it) — is the window the attacker races. *)
let jit_checkpoint st =
  let t0 = st.time in
  jit_checkpoint_work st;
  trace_span st ~t0 ~cat:"checkpoint" "jit_checkpoint_isr";
  hist_observe st.hist_ckpt (st.time -. t0)

(* --- rollback recovery ----------------------------------------------- *)

let run_recovery_slice st (rec_ : Meta.recovery) =
  st.recovery_block_runs <- st.recovery_block_runs + 1;
  let scratch = Array.make Reg.count 0 in
  List.iter
    (fun instr ->
      let c = Cost.instr_cycles instr in
      (match instr with
      | Instr.Li (d, v) -> scratch.(Reg.to_int d) <- v
      | Instr.Mov (d, s) -> scratch.(Reg.to_int d) <- scratch.(Reg.to_int s)
      | Instr.Bin (op, d, a, b) ->
          let bv =
            match b with
            | Instr.Oreg r -> scratch.(Reg.to_int r)
            | Instr.Oimm v -> v
          in
          scratch.(Reg.to_int d) <-
            Instr.eval_binop op scratch.(Reg.to_int a) bv
      | Instr.Ld (d, m) ->
          let addr = Link.resolve st.image m scratch in
          spend st 0 ~extra:(nvm_extra st ~reads:1 ~writes:0);
          scratch.(Reg.to_int d) <- Nvm.read st.nvm addr
      | Instr.LdSlot (d, src, colour) ->
          spend st 0 ~extra:(nvm_extra st ~reads:1 ~writes:0);
          scratch.(Reg.to_int d) <-
            Nvm.read st.nvm (gecko_cell st (Reg.of_int src) colour)
      | Instr.St _ | Instr.In _ | Instr.Out _ | Instr.Nop | Instr.Ckpt _
      | Instr.CkptDyn _ | Instr.Boundary _ ->
          (* Never emitted into slices. *)
          ());
      spend st c ~extra:0.)
    rec_.Meta.g_slice;
  st.regs.(Reg.to_int rec_.Meta.g_reg) <- scratch.(Reg.to_int rec_.Meta.g_reg)

(* Misspeculation recovery: replay the undo log in reverse before the
   register restores, so every word a guarded store clobbered since the
   last commit holds its pre-window value again and the region's
   re-execution is deterministic.  Only entries whose tag equals the
   CURRENT committed-boundary word are live: an entry appended after the
   last commit carries exactly that word, while one orphaned by a crash
   between a commit and its count-clear carries the previous epoch's and
   is skipped.  The count stays until the clear at the end, so a supply
   collapse mid-replay just replays again next boot (rewriting an old
   value is idempotent).  Replaying at least one entry IS a detected
   misspeculation. *)
let undo_replay st word =
  (* Rollback is the boot-refresh point of the volatile mirrors. *)
  let count = Nvm.read st.nvm (sys_cell st Link.Cells.sys_undo_count) in
  st.boundary_word_v <- word;
  st.undo_count_v <- count;
  if count > 0 then begin
    let replayed = ref 0 in
    (try
       for k = count - 1 downto 0 do
         if Capacitor.voltage st.cap <= st.board.Board.v_off then raise Exit;
         let base =
           sys_cell st
             (Link.Cells.sys_undo_base + (k * Link.Cells.undo_entry_words))
         in
         spend st
           (3 * Cost.nvm_read_cycles)
           ~extra:(nvm_extra st ~reads:3 ~writes:0);
         let tag = Nvm.read st.nvm base in
         let addr = Nvm.read st.nvm (base + 1) in
         let old = Nvm.read st.nvm (base + 2) in
         if tag = word then begin
           spend st Cost.nvm_write_cycles
             ~extra:(nvm_extra st ~reads:0 ~writes:1);
           Nvm.write st.nvm addr old;
           incr replayed
         end
       done;
       spend st Cost.nvm_write_cycles ~extra:(nvm_extra st ~reads:0 ~writes:1);
       Nvm.write st.nvm (sys_cell st Link.Cells.sys_undo_count) 0;
       st.undo_count_v <- 0
     with Exit -> ());
    if !replayed > 0 then st.misspeculations <- st.misspeculations + 1
  end

(* The committed-boundary word of a guarded image packs (epoch, id + 1);
   plain images store id + 1 directly. *)
let boundary_word_bid st word =
  (if st.k_has_guards then word land 0xFFFFFFFF else word) - 1

let gecko_rollback_work st =
  (* Anything staged after the committed boundary is discarded: the
     region that produced it re-executes from the restore point. *)
  st.io_staged <- [];
  let word = Nvm.read st.nvm (sys_cell st Link.Cells.sys_boundary) in
  if st.k_has_guards then undo_replay st word;
  let bid = boundary_word_bid st word in
  if bid < 0 then begin
    record st Ev_fresh_start;
    fresh_start st
  end
  else begin
    st.rollbacks <- st.rollbacks + 1;
    record st (Ev_rollback bid);
    spend st Cost.rollback_overhead_cycles ~extra:0.;
    Array.fill st.regs 0 Reg.count 0;
    (match Meta.boundary_info st.meta bid with
    | Some info ->
        List.iter
          (fun (r : Meta.restore) ->
            spend st Cost.nvm_read_cycles
              ~extra:(nvm_extra st ~reads:1 ~writes:0);
            st.regs.(Reg.to_int r.Meta.r_reg) <-
              Nvm.read st.nvm (gecko_cell st r.Meta.r_reg r.Meta.r_color))
          info.Meta.restores;
        List.iter (run_recovery_slice st) info.Meta.recoveries
    | None -> ());
    st.pc <- Hashtbl.find st.image.Link.boundary_index bid + 1
  end

let gecko_rollback st =
  let t0 = st.time in
  gecko_rollback_work st;
  trace_span st ~t0 ~cat:"recovery" "rollback";
  hist_observe st.hist_rollback (st.time -. t0)

let ratchet_rollback_work st =
  let word = Nvm.read st.nvm (sys_cell st Link.Cells.sys_boundary) in
  if st.k_has_guards then undo_replay st word;
  let bid = boundary_word_bid st word in
  if bid < 0 then begin
    record st Ev_fresh_start;
    fresh_start st
  end
  else begin
    st.rollbacks <- st.rollbacks + 1;
    record st (Ev_rollback bid);
    let parity = Nvm.read st.nvm (sys_cell st Link.Cells.sys_parity) in
    List.iter
      (fun r ->
        spend st Cost.nvm_read_cycles ~extra:(nvm_extra st ~reads:1 ~writes:0);
        st.regs.(Reg.to_int r) <- Nvm.read st.nvm (ratchet_cell st parity r))
      Reg.all;
    st.pc <- Hashtbl.find st.image.Link.boundary_index bid + 1
  end

let ratchet_rollback st =
  let t0 = st.time in
  ratchet_rollback_work st;
  trace_span st ~t0 ~cat:"recovery" "rollback";
  hist_observe st.hist_rollback (st.time -. t0)

let restore_jit st =
  record st Ev_restore_jit;
  st.io_staged <- st.io_staged_ckpt;
  spend st (ctpl_sram_words * Cost.nvm_read_cycles)
    ~extra:(nvm_extra st ~reads:ctpl_sram_words ~writes:0);
  for i = 0 to Reg.count - 1 do
    st.regs.(i) <- Nvm.read st.nvm (jit_cell st (Link.Cells.jit_regs + i))
  done;
  spend st (Reg.count * Cost.nvm_read_cycles)
    ~extra:(nvm_extra st ~reads:(Reg.count + 2) ~writes:0);
  st.pc <- Nvm.read st.nvm (jit_cell st Link.Cells.jit_pc)

let handle_backup st =
  (match st.meta.Meta.scheme with
  | Scheme.Gecko | Scheme.Gecko_noprune ->
      record st (Ev_backup_signal (st.time -. st.boot_time < st.t_min_on))
  | Scheme.Nvp | Scheme.Ratchet -> record st (Ev_backup_signal false));
  match st.meta.Meta.scheme with
  | Scheme.Nvp ->
      jit_checkpoint st;
      if st.powered then shutdown st
  | Scheme.Ratchet ->
      (* No JIT state to save; the undervoltage interrupt powers down. *)
      spend st Cost.jit_isr_overhead_cycles ~extra:0.;
      shutdown st
  | Scheme.Gecko | Scheme.Gecko_noprune ->
      let early = st.time -. st.boot_time < st.t_min_on in
      let mode', action, detected = Policy.on_backup_signal st.mode ~early in
      if detected then begin
        st.detections <- st.detections + 1;
        record st Ev_detection
      end;
      set_mode st mode';
      (match action with
      | Policy.Checkpoint_and_sleep ->
          jit_checkpoint st;
          if st.powered then shutdown st
      | Policy.Rollback_inline ->
          (* The signal is untrusted: re-enter the interrupted region and
             keep executing with the attack surface closed. *)
          gecko_rollback st)

(* --- boot protocol ---------------------------------------------------- *)

let boot_protocol st =
  let ack = Nvm.read st.nvm (jit_cell st Link.Cells.jit_ack) in
  let seen = Nvm.read st.nvm (sys_cell st Link.Cells.sys_ack_seen) in
  let jp = Nvm.read st.nvm (jit_cell st Link.Cells.jit_pc) in
  let ack_ok = ack <> seen && jp >= 0 in
  Nvm.write st.nvm (sys_cell st Link.Cells.sys_ack_seen) ack;
  match st.meta.Meta.scheme with
  | Scheme.Nvp ->
      if ack_ok then restore_jit st
      else if jp < 0 then fresh_start st
      else begin
        (* Corrupted checkpoint: the register image cannot be trusted.
           The device restarts the program over possibly-inconsistent
           NVM — the data-corruption outcome of Section IV-B2. *)
        st.corruptions <- st.corruptions + 1;
        fresh_start st
      end
  | Scheme.Ratchet -> ratchet_rollback st
  | Scheme.Gecko | Scheme.Gecko_noprune ->
      let progress =
        Nvm.read st.nvm (sys_cell st Link.Cells.sys_progress) = 1
      in
      Nvm.write st.nvm (sys_cell st Link.Cells.sys_progress) 0;
      let mode = Policy.mode_of_int (Nvm.read st.nvm (sys_cell st Link.Cells.sys_mode)) in
      let mode', action, detected = Policy.on_boot mode { Policy.ack_ok; progress } in
      if detected then begin
        st.detections <- st.detections + 1;
        record st Ev_detection
      end;
      set_mode st mode';
      (match action with
      | Policy.Resume_jit -> if jp >= 0 then restore_jit st else fresh_start st
      | Policy.Rollback -> gecko_rollback st)

(* BOR behaviour: a boot attempt starts once the supply clears the
   power-on-reset threshold (a small margin above brownout); it may still
   die mid-boot, which costs real energy — exactly the V_fail-window
   vulnerability of Section IV-B2.  After a failed attempt a hysteresis
   band gates retries. *)
let try_reboot st =
  let v = Capacitor.voltage st.cap in
  let v_por = st.board.Board.v_off +. 0.1 in
  let gate = if st.boot_inhibited then v_por +. 0.08 else v_por in
  if v < gate then ()
  else begin
    st.reboots <- st.reboots + 1;
    let latency = (core st).Device.reboot_latency in
    ignore (Capacitor.drain st.cap (core st).Device.reboot_energy);
    charge st latency;
    st.time <- st.time +. latency;
    if Capacitor.voltage st.cap > st.board.Board.v_off then begin
      st.boot_inhibited <- false;
      st.powered <- true;
      st.progress_written <- false;
      st.boot_time <- st.time;
      Monitor.arm_backup st.monitor;
      Monitor.sync st.monitor ~time:st.time;
      record st (Ev_boot st.mode);
      boot_protocol st
    end
    else st.boot_inhibited <- true
  end

(* --- instruction execution ------------------------------------------- *)

let io_in_value st port =
  let h =
    Gecko_util.Rng.create
      ((st.opts.seed * 1_000_003) + (st.io_in_count * 31) + port)
  in
  st.io_in_count <- st.io_in_count + 1;
  Gecko_util.Rng.int h 1024

let complete st =
  (* Defensive: region formation brackets every [Out] with a boundary,
     so the stage is empty here; if a hand-built program reaches [Halt]
     with staged records, completion commits them. *)
  if st.io_staged <> [] then begin
    st.io_log <- st.io_staged @ st.io_log;
    st.io_staged <- []
  end;
  st.completions <- st.completions + 1;
  record st Ev_completion;
  st.completion_times <- st.time :: st.completion_times;
  if st.tl_bucket > 0. then begin
    let i = bucket_index st in
    if i >= 0 && i < Array.length st.tl_comp then
      st.tl_comp.(i) <- st.tl_comp.(i) + 1
  end;
  (match st.opts.limit with
  | Completions n when st.completions >= n ->
      st.stop <- true;
      st.hit_limit <- true
  | Completions _ | Sim_time _ -> ());
  if not st.stop then
    if st.opts.restart_on_halt then begin
      spend st 100 ~extra:0.;
      reinit_data st;
      fresh_start st
    end
    else begin
      st.stop <- true;
      st.hit_limit <- true
    end

(* Speculation-guard undo-log append: before a guarded store clobbers
   [addr], persist (tag, addr, old value).  Crash-atomic append order:
   entry words first, then the count increment (the commit — a torn
   entry above the count is never replayed), and only then may the
   caller overwrite [addr].  The tag and the count come from the
   volatile mirrors, so the append costs 1 NVM read (the old value) +
   4 NVM writes, charged to instrumentation. *)
let undo_append st addr =
  let count = st.undo_count_v in
  if count >= Link.Cells.undo_capacity then
    failwith "Machine: speculation undo log overflow";
  let old = Nvm.read st.nvm addr in
  let base =
    sys_cell st
      (Link.Cells.sys_undo_base + (count * Link.Cells.undo_entry_words))
  in
  let gc = Cost.nvm_read_cycles + (4 * Cost.nvm_write_cycles) in
  spend st gc ~extra:(nvm_extra st ~reads:1 ~writes:4);
  st.instrumentation_cycles <- st.instrumentation_cycles + gc;
  Nvm.write st.nvm base st.boundary_word_v;
  Nvm.write st.nvm (base + 1) addr;
  Nvm.write st.nvm (base + 2) old;
  Nvm.write st.nvm (sys_cell st Link.Cells.sys_undo_count) (count + 1);
  st.undo_count_v <- count + 1

let exec_op st i =
  let c = Cost.instr_cycles i in
  let r = Reg.to_int in
  (match i with
  | Instr.Li (d, v) ->
      spend st c ~extra:0.;
      st.regs.(r d) <- v
  | Instr.Mov (d, s) ->
      spend st c ~extra:0.;
      st.regs.(r d) <- st.regs.(r s)
  | Instr.Bin (op, d, a, b) ->
      spend st c ~extra:0.;
      let bv =
        match b with Instr.Oreg x -> st.regs.(r x) | Instr.Oimm v -> v
      in
      st.regs.(r d) <- Instr.eval_binop op st.regs.(r a) bv
  | Instr.Ld (d, m) ->
      spend st c ~extra:(nvm_extra st ~reads:1 ~writes:0);
      st.regs.(r d) <- Nvm.read st.nvm (Link.resolve st.image m st.regs)
  | Instr.St (m, s) ->
      let addr = Link.resolve st.image m st.regs in
      (* Speculation guard: a slot of this store is marked by the
         linker, so before clobbering the word we persist its old value
         in the undo log.  The executing slot is [st.pc - 1]: the fetch
         already advanced the pc. *)
      if st.k_has_guards && st.image.Link.guards.(st.pc - 1) then
        undo_append st addr;
      spend st c ~extra:(nvm_extra st ~reads:0 ~writes:1);
      Nvm.write st.nvm addr st.regs.(r s)
  | Instr.In (d, port) ->
      spend st c ~extra:0.;
      st.regs.(r d) <- io_in_value st port
  | Instr.Out (port, s) ->
      spend st c ~extra:0.;
      st.io_out_count <- st.io_out_count + 1;
      if st.opts.record_io then
        if monitor_is_gecko st then
          (* Staged, not logged: the record becomes persistent only at
             the region commit point. *)
          st.io_staged <- (port, st.regs.(r s)) :: st.io_staged
        else st.io_log <- (port, st.regs.(r s)) :: st.io_log
  | Instr.Nop -> spend st c ~extra:0.
  | Instr.Ckpt (src, colour) ->
      let addr = gecko_cell st src colour in
      (* Guarded checkpoint store: this owned store targets a slot some
         restore reuses without the sound crash-window survival proof,
         so log the slot's as-of-commit word before overwriting it. *)
      if st.k_has_guards && st.image.Link.guards.(st.pc - 1) then
        undo_append st addr;
      spend st c ~extra:(nvm_extra st ~reads:0 ~writes:1);
      Nvm.write st.nvm addr st.regs.(r src)
  | Instr.CkptDyn src ->
      spend st c ~extra:(nvm_extra st ~reads:1 ~writes:1);
      let parity = Nvm.read st.nvm (sys_cell st Link.Cells.sys_parity) in
      Nvm.write st.nvm (ratchet_cell st (1 - parity) src) st.regs.(r src)
  | Instr.LdSlot (d, src, colour) ->
      spend st c ~extra:(nvm_extra st ~reads:1 ~writes:0);
      st.regs.(r d) <- Nvm.read st.nvm (gecko_cell st (Reg.of_int src) colour)
  | Instr.Boundary id ->
      spend st c ~extra:(nvm_extra st ~reads:0 ~writes:1);
      (if st.k_has_guards then begin
         (* Guarded image: the commit word packs (epoch, id + 1) in one
            atomic NVM write, so undo entries appended before this
            commit stop matching the boundary word even when the SAME
            boundary id commits again (a self-loop region).  The count
            clear after the commit discards them; a crash in between
            leaves orphans whose stale tag the replay skips.  The
            previous epoch comes from the volatile mirror, and the
            count clear is elided when the log is already empty. *)
         let epoch = ((st.boundary_word_v lsr 32) + 1) land 0x3FFFFFFF in
         let word = (epoch lsl 32) lor (id + 1) in
         Nvm.write st.nvm (sys_cell st Link.Cells.sys_boundary) word;
         st.boundary_word_v <- word;
         if st.undo_count_v > 0 then begin
           let gc = Cost.nvm_write_cycles in
           spend st gc ~extra:(nvm_extra st ~reads:0 ~writes:1);
           st.instrumentation_cycles <- st.instrumentation_cycles + gc;
           Nvm.write st.nvm (sys_cell st Link.Cells.sys_undo_count) 0;
           st.undo_count_v <- 0
         end
       end
       else Nvm.write st.nvm (sys_cell st Link.Cells.sys_boundary) (id + 1));
      if not st.progress_written then begin
        (* Once per power cycle: the detection flag. *)
        spend st Cost.nvm_write_cycles ~extra:(nvm_extra st ~reads:0 ~writes:1);
        Nvm.write st.nvm (sys_cell st Link.Cells.sys_progress) 1;
        st.progress_written <- true
      end;
      (match st.meta.Meta.scheme with
      | Scheme.Ratchet ->
          let parity = Nvm.read st.nvm (sys_cell st Link.Cells.sys_parity) in
          Nvm.write st.nvm (sys_cell st Link.Cells.sys_parity) (1 - parity)
      | Scheme.Gecko | Scheme.Gecko_noprune ->
          (* Region commit: atomically append the staged io_log records.
             Both lists are newest-first, so prepending the stage keeps
             the log in emission order. *)
          if st.io_staged <> [] then begin
            st.io_log <- st.io_staged @ st.io_log;
            st.io_staged <- []
          end;
          let mode' = Policy.on_region_commit st.mode in
          if st.mode = Policy.Probe && mode' = Policy.Jit_on then begin
            st.reenables <- st.reenables + 1;
            record st Ev_reenable
          end;
          if mode' <> st.mode then set_mode st mode'
      | Scheme.Nvp -> ()));
  (* Progress accounting. *)
  match i with
  | Instr.Ckpt _ | Instr.CkptDyn _ | Instr.LdSlot _ | Instr.Boundary _ ->
      st.instrumentation_cycles <- st.instrumentation_cycles + c
  | _ ->
      st.app_cycles <- st.app_cycles + c;
      account_app_seconds st (float_of_int c *. cycle_time st)

let step_instr st =
  refresh_attack st;
  (match st.image.Link.code.(st.pc) with
  | Link.Op i ->
      st.pc <- st.pc + 1;
      exec_op st i
  | Link.Ljmp t ->
      spend st 1 ~extra:0.;
      st.app_cycles <- st.app_cycles + 1;
      account_app_seconds st (cycle_time st);
      st.pc <- t
  | Link.Lbr (cond, reg, t, e) ->
      spend st 1 ~extra:0.;
      st.app_cycles <- st.app_cycles + 1;
      account_app_seconds st (cycle_time st);
      st.pc <- (if Instr.eval_cond cond st.regs.(Reg.to_int reg) then t else e)
  | Link.Lcall (target, ret) ->
      let c = Cost.term_cycles (Instr.Call ("", "")) in
      spend st c ~extra:(nvm_extra st ~reads:0 ~writes:1);
      st.app_cycles <- st.app_cycles + c;
      account_app_seconds st (float_of_int c *. cycle_time st);
      let sp = st.regs.(Reg.to_int Reg.sp) in
      Nvm.write st.nvm (st.image.Link.stack_base + sp) ret;
      st.regs.(Reg.to_int Reg.sp) <- sp - 1;
      st.pc <- target
  | Link.Lret ->
      let c = Cost.term_cycles Instr.Ret in
      spend st c ~extra:(nvm_extra st ~reads:1 ~writes:0);
      st.app_cycles <- st.app_cycles + c;
      account_app_seconds st (float_of_int c *. cycle_time st);
      let sp = st.regs.(Reg.to_int Reg.sp) + 1 in
      st.regs.(Reg.to_int Reg.sp) <- sp;
      st.pc <- Nvm.read st.nvm (st.image.Link.stack_base + sp)
  | Link.Lhalt ->
      spend st 1 ~extra:0.;
      complete st);
  if st.tracing && st.time >= st.next_vsample then begin
    sample_voltage st;
    st.next_vsample <- st.time +. vsample_period
  end;
  if st.powered && not st.stop then begin
    if Capacitor.voltage st.cap <= st.board.Board.v_off then brownout st
    else
      let disturbance = st.cur_amp in
      match
        Monitor.observe st.monitor ~time:st.time
          ~v_true:(Capacitor.voltage st.cap) ~disturbance
      with
      | Some Monitor.Backup -> handle_backup st
      | Some Monitor.Wake | None -> ()
  end

let step_sleep st =
  refresh_attack st;
  let dt = sleep_step in
  (* Below brownout the MCU is completely off; only capacitor leakage
     remains (two orders of magnitude below the LPM draw). *)
  let sleep_draw =
    if Capacitor.voltage st.cap > st.board.Board.v_off then
      (core st).Device.sleep_power
    else (core st).Device.sleep_power /. 100.
  in
  ignore (Capacitor.drain st.cap (sleep_draw *. dt));
  charge st dt;
  st.time <- st.time +. dt;
  if st.time < st.next_wake_check then ()
  else begin
  st.next_wake_check <- st.time +. wake_poll;
  if st.tracing && st.time >= st.next_vsample then begin
    sample_voltage st;
    st.next_vsample <- st.time +. vsample_period
  end;
  let monitor_wake =
    match st.meta.Meta.scheme with
    | Scheme.Nvp | Scheme.Ratchet -> true
    | Scheme.Gecko | Scheme.Gecko_noprune -> Policy.monitor_enabled st.mode
  in
  if monitor_wake then begin
    match
      Monitor.observe st.monitor ~time:st.time
        ~v_true:(Capacitor.voltage st.cap) ~disturbance:st.cur_amp
    with
    | Some Monitor.Wake -> try_reboot st
    | Some Monitor.Backup | None -> ()
  end
  else if
    (* Attack surface closed: reboot only on the true (on-die POR)
       threshold, which remote EMI cannot move. *)
    Capacitor.voltage st.cap >= st.board.Board.v_on
  then try_reboot st
  end

(* ------------------------------------------------------------------ *)

let make_state ~board ~image ~meta opts =
  let nvm = Nvm.create ~words:image.Link.nvm_words () in
  Nvm.load_program nvm image;
  let device = board.Board.device in
  let kind = Device.monitor_kind device board.Board.monitor_choice in
  let monitor =
    Monitor.create kind
      { Gecko_monitor.Monitor.v_backup = board.Board.v_backup; v_on = board.Board.v_on }
  in
  let profile = Device.coupling device board.Board.monitor_choice in
  let v_init = if opts.start_charged then board.Board.v_max else 0. in
  let cap =
    Capacitor.create ~capacitance:board.Board.capacitance
      ~v_max:board.Board.v_max ~v_init
  in
  let tl_bucket = Option.value opts.timeline_bucket ~default:0. in
  let n_buckets =
    if tl_bucket > 0. then
      let horizon =
        match opts.limit with
        | Sim_time t -> t
        | Completions _ -> opts.max_sim_time
      in
      int_of_float (ceil (horizon /. tl_bucket)) + 1
    else 0
  in
  let st =
    {
      board;
      image;
      meta;
      opts;
      nvm;
      cap;
      monitor;
      profile;
      regs = Array.make Reg.count 0;
      pc = image.Link.entry;
      powered = opts.start_charged;
      time = 0.;
      mode = Policy.Jit_on;
      windows = Array.of_list (Schedule.windows opts.schedule);
      cur_amp = 0.;
      cur_harvest_w = 0.;
      next_change = neg_infinity;
      stop = false;
      hit_limit = false;
      progress_written = false;
      k_has_guards = Array.length image.Link.guards > 0;
      boundary_word_v = 0;
      undo_count_v = 0;
      boot_inhibited = false;
      boot_time = 0.;
      next_wake_check = 0.;
      t_min_on =
        0.5 *. float_of_int (Board.budget_cycles board)
        *. Device.cycle_time board.Board.device;
      completions = 0;
      completion_times = [];
      app_cycles = 0;
      instrumentation_cycles = 0;
      jit_checkpoints = 0;
      jit_checkpoint_failures = 0;
      reboots = 0;
      brownouts = 0;
      detections = 0;
      reenables = 0;
      rollbacks = 0;
      recovery_block_runs = 0;
      misspeculations = 0;
      corruptions = 0;
      io_in_count = 0;
      io_out_count = 0;
      io_log = [];
      io_staged = [];
      io_staged_ckpt = [];
      events = [];
      tl_app = Array.make (max n_buckets 1) 0.;
      tl_comp = Array.make (max n_buckets 1) 0;
      tl_bucket;
      tracing =
        (match opts.trace with
        | Some tr -> Gecko_obs.Trace.enabled tr
        | None -> false);
      trace =
        (match opts.trace with
        | Some tr when Gecko_obs.Trace.enabled tr -> Some tr
        | Some _ | None -> None);
      next_vsample = 0.;
      hist_ckpt =
        Option.map
          (fun reg -> Gecko_obs.Metrics.histogram reg "machine.jit_checkpoint_isr_s")
          opts.metrics;
      hist_rollback =
        Option.map
          (fun reg -> Gecko_obs.Metrics.histogram reg "machine.rollback_s")
          opts.metrics;
    }
  in
  (match st.trace with
  | Some tr ->
      (* The raw monitor output stream: what the (possibly disturbed)
         voltage monitor reported, before the runtime acted on it. *)
      Monitor.set_on_event monitor (fun ~time ev ->
          Gecko_obs.Trace.instant tr ~cat:"monitor" ~ts:time
            (match ev with
            | Monitor.Backup -> "monitor_backup"
            | Monitor.Wake -> "monitor_wake"))
  | None -> ());
  (* Initialize runtime cells. *)
  Nvm.write nvm (jit_cell st Link.Cells.jit_pc) (-1);
  Nvm.write nvm (sys_cell st Link.Cells.sys_ack_seen) (-1);
  Nvm.write nvm (sys_cell st Link.Cells.sys_mode)
    (Policy.mode_to_int Policy.Jit_on);
  fresh_start st;
  if not opts.start_charged then Monitor.arm_wake st.monitor;
  if monitor_is_gecko st then
    Monitor.set_enabled st.monitor (Policy.monitor_enabled st.mode);
  (* The initial power-up is a boot like any other. *)
  if st.powered then record st (Ev_boot st.mode);
  st

(* End-of-run scalar dump into the metrics registry.  Counters add, so a
   registry shared across several runs accumulates suite totals; the
   gauges keep last-run values. *)
let export_metrics st =
  match st.opts.metrics with
  | None -> ()
  | Some reg ->
      let module Mx = Gecko_obs.Metrics in
      let c name v = Mx.incr ~by:v (Mx.counter reg name) in
      c "machine.completions" st.completions;
      c "machine.jit_checkpoints" st.jit_checkpoints;
      c "machine.jit_checkpoint_failures" st.jit_checkpoint_failures;
      c "machine.reboots" st.reboots;
      c "machine.brownouts" st.brownouts;
      c "machine.detections" st.detections;
      c "machine.reenables" st.reenables;
      c "machine.rollbacks" st.rollbacks;
      c "machine.recovery_block_runs" st.recovery_block_runs;
      c "machine.misspeculations" st.misspeculations;
      c "machine.corruptions" st.corruptions;
      c "machine.app_cycles" st.app_cycles;
      c "machine.instrumentation_cycles" st.instrumentation_cycles;
      c "monitor.observations" (Monitor.observations st.monitor);
      c "monitor.fires" (Monitor.fires st.monitor);
      let g name v = Mx.set_gauge (Mx.gauge reg name) v in
      g "machine.sim_time_s" st.time;
      g "machine.app_seconds" (float_of_int st.app_cycles *. cycle_time st);
      g "machine.cap_voltage_final_v" (Capacitor.voltage st.cap);
      g "energy.drained_j" (Capacitor.energy_drained_total st.cap);
      g "energy.sourced_j" (Capacitor.energy_sourced_total st.cap)

let finish st =
  export_metrics st;
  if st.tracing then sample_voltage st;
  {
    completions = st.completions;
    completion_times = List.rev st.completion_times;
    sim_time = st.time;
    app_cycles = st.app_cycles;
    app_seconds = float_of_int st.app_cycles *. cycle_time st;
    instrumentation_cycles = st.instrumentation_cycles;
    jit_checkpoints = st.jit_checkpoints;
    jit_checkpoint_failures = st.jit_checkpoint_failures;
    reboots = st.reboots;
    brownouts = st.brownouts;
    detections = st.detections;
    reenables = st.reenables;
    rollbacks = st.rollbacks;
    recovery_block_runs = st.recovery_block_runs;
    misspeculations = st.misspeculations;
    corruptions = st.corruptions;
    io_out_count = st.io_out_count;
    io_log = List.rev st.io_log;
    final_mode = st.mode;
    events = List.rev st.events;
    timeline =
      (if st.tl_bucket > 0. then
         Some
           {
             bucket = st.tl_bucket;
             app_seconds_per_bucket = st.tl_app;
             completions_per_bucket = st.tl_comp;
           }
       else None);
    hit_limit = st.hit_limit;
  }

let run_state st =
  let time_limit =
    match st.opts.limit with
    | Sim_time t -> min t st.opts.max_sim_time
    | Completions _ -> st.opts.max_sim_time
  in
  while not st.stop do
    if st.time >= time_limit then begin
      st.stop <- true;
      st.hit_limit <- (match st.opts.limit with Sim_time _ -> true | Completions _ -> false)
    end
    else if st.powered then step_instr st
    else step_sleep st
  done;
  finish st

let run ~board ~image ~meta opts =
  run_state (make_state ~board ~image ~meta opts)

let data_snapshot st =
  Array.init st.image.Link.data_words (fun i -> Nvm.read st.nvm i)

let run_with_nvm ~board ~image ~meta opts =
  let st = make_state ~board ~image ~meta opts in
  let o = run_state st in
  (o, data_snapshot st)

let golden_nvm ~board ~image ~meta =
  let board =
    { board with Board.harvester = Gecko_energy.Harvester.constant_power 1.0 }
  in
  let opts =
    { default_options with limit = Completions 1; max_sim_time = 3600. }
  in
  let st = make_state ~board ~image ~meta opts in
  ignore (run_state st);
  data_snapshot st

(* Unit tests for the compiler's final verification passes
   (Gecko_core.Verify): each pass gets a positive control (a pipeline
   compile must satisfy it) and a hand-built or sabotaged program that
   must FAIL it.  The property tests exercise these passes on random
   programs; these cases pin the failure detection itself, so a verifier
   that degenerates to "always Ok" cannot survive. *)

open Gecko_isa
module B = Builder
module Core = Gecko_core

let acc_loop () =
  let b = B.program "acc" in
  let d = B.space b "d" ~words:2 () in
  let acc = Reg.r1 and i = Reg.r2 and t = Reg.r3 in
  B.func b "main";
  B.block b "entry";
  B.li b acc 0;
  B.li b i 8;
  B.block b "loop" ~loop_bound:8;
  B.add b acc acc (B.reg i);
  B.st b (B.at d 0) acc;
  B.sub b i i (B.imm 1);
  B.bin b Instr.Slt t i (B.imm 1);
  B.br b Instr.Z t "loop" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

let compile ?budget_cycles scheme =
  Core.Pipeline.compile ?budget_cycles scheme (acc_loop ())

let check_ok name = function
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "%s: unexpected errors: %s" name (String.concat "; " msgs)

let check_err name = function
  | Ok () -> Alcotest.failf "%s: expected a verification failure, got Ok" name
  | Error msgs ->
      Alcotest.(check bool) (name ^ " reports at least one message") true (msgs <> [])

(* --- idempotence ------------------------------------------------------ *)

(* A load/store anti-dependence on the same word with no boundary between
   them: re-executing the region reads its own output. *)
let war_no_boundary () =
  let b = B.program "war" in
  let d = B.space b "d" ~words:1 () in
  B.func b "main";
  B.block b "entry";
  B.ld b Reg.r1 (B.at d 0);
  B.add b Reg.r1 Reg.r1 (B.imm 1);
  B.st b (B.at d 0) Reg.r1;
  B.halt b;
  B.finish b

let test_idempotence_flags_war () =
  check_err "idempotence on WAR without boundary"
    (Core.Verify.idempotence (war_no_boundary ()))

let test_idempotence_ok_after_pipeline () =
  let p, _ = compile Core.Scheme.Gecko in
  check_ok "idempotence on compiled program" (Core.Verify.idempotence p)

(* A compiled program with its Boundary instructions stripped must fail:
   the pipeline placed a boundary between the WAR program's load and
   store exactly to break that hazard. *)
let test_idempotence_flags_stripped_boundaries () =
  let p, _ = Core.Pipeline.compile Core.Scheme.Gecko (war_no_boundary ()) in
  let p = Core.Copy.program p in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.Cfg.instrs <-
            List.filter
              (function Instr.Boundary _ -> false | _ -> true)
              blk.Cfg.instrs)
        f.Cfg.blocks)
    p.Cfg.funcs;
  check_err "idempotence after stripping boundaries" (Core.Verify.idempotence p)

(* --- coloring --------------------------------------------------------- *)

let sabotage_colors p meta =
  let p = Core.Copy.program p in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.Cfg.instrs <-
            List.map
              (function
                | Instr.Ckpt (r, _) -> Instr.Ckpt (r, 0)
                | Instr.LdSlot (d, s, _) -> Instr.LdSlot (d, s, 0)
                | i -> i)
              blk.Cfg.instrs)
        f.Cfg.blocks)
    p.Cfg.funcs;
  let infos = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k (bi : Core.Meta.binfo) ->
      Hashtbl.replace infos k
        {
          bi with
          Core.Meta.restores =
            List.map
              (fun r -> { r with Core.Meta.r_color = 0 })
              bi.Core.Meta.restores;
        })
    meta.Core.Meta.infos;
  (p, { meta with Core.Meta.infos })

let test_coloring_ok_after_pipeline () =
  (* A small budget forces in-loop boundaries, so the accumulator's slot
     really is saved at adjacent boundaries and the colours matter. *)
  let p, meta = compile ~budget_cycles:80 Core.Scheme.Gecko in
  check_ok "coloring on compiled program" (Core.Verify.coloring p meta)

let test_coloring_flags_collapsed_colors () =
  let p, meta = compile ~budget_cycles:80 Core.Scheme.Gecko in
  let p', meta' = sabotage_colors p meta in
  check_err "coloring with every colour forced to 0"
    (Core.Verify.coloring p' meta')

(* --- wcet ------------------------------------------------------------- *)

let test_wcet_ok_with_ample_budget () =
  let p, _ = compile ~budget_cycles:80 Core.Scheme.Gecko in
  check_ok "wcet within the compile budget" (Core.Verify.wcet ~budget:80 p)

let test_wcet_flags_tiny_budget () =
  let p, _ = compile Core.Scheme.Gecko in
  check_err "wcet with a 1-cycle budget" (Core.Verify.wcet ~budget:1 p)

let () =
  Alcotest.run "verify"
    [
      ( "idempotence",
        [
          Alcotest.test_case "flags WAR without boundary" `Quick
            test_idempotence_flags_war;
          Alcotest.test_case "accepts compiled program" `Quick
            test_idempotence_ok_after_pipeline;
          Alcotest.test_case "flags stripped boundaries" `Quick
            test_idempotence_flags_stripped_boundaries;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "accepts compiled program" `Quick
            test_coloring_ok_after_pipeline;
          Alcotest.test_case "flags collapsed colours" `Quick
            test_coloring_flags_collapsed_colors;
        ] );
      ( "wcet",
        [
          Alcotest.test_case "accepts ample budget" `Quick
            test_wcet_ok_with_ample_budget;
          Alcotest.test_case "flags tiny budget" `Quick
            test_wcet_flags_tiny_budget;
        ] );
    ]

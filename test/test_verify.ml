(* Unit tests for the compiler's final verification passes
   (Gecko_core.Verify): each pass gets a positive control (a pipeline
   compile must satisfy it) and a hand-built or sabotaged program that
   must FAIL it.  The property tests exercise these passes on random
   programs; these cases pin the failure detection itself, so a verifier
   that degenerates to "always Ok" cannot survive. *)

open Gecko_isa
module B = Builder
module Core = Gecko_core

let acc_loop () =
  let b = B.program "acc" in
  let d = B.space b "d" ~words:2 () in
  let acc = Reg.r1 and i = Reg.r2 and t = Reg.r3 in
  B.func b "main";
  B.block b "entry";
  B.li b acc 0;
  B.li b i 8;
  B.block b "loop" ~loop_bound:8;
  B.add b acc acc (B.reg i);
  B.st b (B.at d 0) acc;
  B.sub b i i (B.imm 1);
  B.bin b Instr.Slt t i (B.imm 1);
  B.br b Instr.Z t "loop" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

let compile ?budget_cycles scheme =
  Core.Pipeline.compile ?budget_cycles scheme (acc_loop ())

let check_ok name = function
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "%s: unexpected errors: %s" name (String.concat "; " msgs)

let check_err name = function
  | Ok () -> Alcotest.failf "%s: expected a verification failure, got Ok" name
  | Error msgs ->
      Alcotest.(check bool) (name ^ " reports at least one message") true (msgs <> [])

(* --- idempotence ------------------------------------------------------ *)

(* A load/store anti-dependence on the same word with no boundary between
   them: re-executing the region reads its own output. *)
let war_no_boundary () =
  let b = B.program "war" in
  let d = B.space b "d" ~words:1 () in
  B.func b "main";
  B.block b "entry";
  B.ld b Reg.r1 (B.at d 0);
  B.add b Reg.r1 Reg.r1 (B.imm 1);
  B.st b (B.at d 0) Reg.r1;
  B.halt b;
  B.finish b

let test_idempotence_flags_war () =
  check_err "idempotence on WAR without boundary"
    (Core.Verify.idempotence (war_no_boundary ()))

let test_idempotence_ok_after_pipeline () =
  let p, _ = compile Core.Scheme.Gecko in
  check_ok "idempotence on compiled program" (Core.Verify.idempotence p)

(* A compiled program with its Boundary instructions stripped must fail:
   the pipeline placed a boundary between the WAR program's load and
   store exactly to break that hazard. *)
let test_idempotence_flags_stripped_boundaries () =
  let p, _ = Core.Pipeline.compile Core.Scheme.Gecko (war_no_boundary ()) in
  let p = Core.Copy.program p in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.Cfg.instrs <-
            List.filter
              (function Instr.Boundary _ -> false | _ -> true)
              blk.Cfg.instrs)
        f.Cfg.blocks)
    p.Cfg.funcs;
  check_err "idempotence after stripping boundaries" (Core.Verify.idempotence p)

(* --- may-alias (dynamic) WAR ----------------------------------------- *)

(* A WAR through register-addressed references: the load's and store's
   displacements are registers, so only a may-alias analysis can see the
   hazard. *)
let dyn_war () =
  let b = B.program "dynwar" in
  let d = B.space b "d" ~words:4 () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r2 0;
  B.li b Reg.r3 1;
  B.ld b Reg.r1 (B.idx d Reg.r2);
  B.add b Reg.r1 Reg.r1 (B.imm 1);
  B.st b (B.idx d Reg.r3) Reg.r1;
  B.halt b;
  B.finish b

(* Insert [Boundary 0] immediately before the first matching instruction
   of [main] — the "cut" resolution class, by hand. *)
let cut_before p pred =
  let p = Core.Copy.program p in
  let f = List.hd p.Cfg.funcs in
  List.iter
    (fun blk ->
      blk.Cfg.instrs <-
        List.concat_map
          (fun i -> if pred i then [ Instr.Boundary 0; i ] else [ i ])
          blk.Cfg.instrs)
    f.Cfg.blocks;
  p

let test_idempotence_flags_dynamic_war () =
  check_err "idempotence on register-addressed WAR"
    (Core.Verify.idempotence (dyn_war ()))

let test_idempotence_accepts_cut_dynamic_war () =
  let cut =
    cut_before (dyn_war ()) (function Instr.St _ -> true | _ -> false)
  in
  check_ok "idempotence once the dynamic store is cut"
    (Core.Verify.idempotence cut)

let test_pipeline_cuts_dynamic_war () =
  (* The sound pipeline must form regions that break the hazard on its
     own, and the emitted program must satisfy the sound gate. *)
  let p, _ = Core.Pipeline.compile Core.Scheme.Gecko (dyn_war ()) in
  check_ok "compiled dynamic-WAR program is idempotent"
    (Core.Verify.idempotence p)

(* The seed's optimistic criterion trusted a stale must-alias write even
   when a register-addressed store in between may clobber the location:
   store d[0]; store d[r3] (may alias d[0]); load d[0]; store d[0].  The
   legacy WARAW exemption sees the first store and exempts the pair; the
   sound analysis reports the intervening dynamic store as a clobber. *)
let clobbered_waraw () =
  let b = B.program "clobber" in
  let d = B.space b "d" ~words:4 () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r5 7;
  B.li b Reg.r3 1;
  B.st b (B.at d 0) Reg.r5;
  B.st b (B.idx d Reg.r3) Reg.r5;
  B.ld b Reg.r1 (B.at d 0);
  B.add b Reg.r1 Reg.r1 (B.imm 1);
  B.st b (B.at d 0) Reg.r1;
  B.halt b;
  B.finish b

let test_sound_rejects_clobbered_waraw () =
  check_err "sound idempotence flags the clobbered WARAW exemption"
    (Core.Verify.idempotence (clobbered_waraw ()))

let test_legacy_accepts_clobbered_waraw () =
  (* Pinning the strengthening itself: the seed's criterion accepts the
     very program the sound gate rejects. *)
  check_ok "legacy idempotence trusts the stale write"
    (Core.Verify.idempotence ~mode:Core.Mode.Legacy (clobbered_waraw ()))

(* --- coloring --------------------------------------------------------- *)

let sabotage_colors p meta =
  let p = Core.Copy.program p in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.Cfg.instrs <-
            List.map
              (function
                | Instr.Ckpt (r, _) -> Instr.Ckpt (r, 0)
                | Instr.LdSlot (d, s, _) -> Instr.LdSlot (d, s, 0)
                | i -> i)
              blk.Cfg.instrs)
        f.Cfg.blocks)
    p.Cfg.funcs;
  let infos = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k (bi : Core.Meta.binfo) ->
      Hashtbl.replace infos k
        {
          bi with
          Core.Meta.restores =
            List.map
              (fun r -> { r with Core.Meta.r_color = 0 })
              bi.Core.Meta.restores;
        })
    meta.Core.Meta.infos;
  (p, { meta with Core.Meta.infos })

let test_coloring_ok_after_pipeline () =
  (* A small budget forces in-loop boundaries, so the accumulator's slot
     really is saved at adjacent boundaries and the colours matter. *)
  let p, meta = compile ~budget_cycles:80 Core.Scheme.Gecko in
  check_ok "coloring on compiled program" (Core.Verify.coloring p meta)

let test_coloring_flags_collapsed_colors () =
  let p, meta = compile ~budget_cycles:80 Core.Scheme.Gecko in
  let p', meta' = sabotage_colors p meta in
  check_err "coloring with every colour forced to 0"
    (Core.Verify.coloring p' meta')

(* --- slots (window clobbers) ------------------------------------------ *)

let test_slots_ok_after_pipeline () =
  let p, meta = compile ~budget_cycles:80 Core.Scheme.Gecko in
  check_ok "slots on compiled program" (Core.Verify.slots p meta)

let test_slots_flags_collapsed_colors () =
  (* Collapsing every colour to 0 makes each restore read a slot that the
     next boundary's store overwrites inside the crash window — the
     defect class the gate exists for, detected independently of the
     colouring metadata. *)
  let p, meta = compile ~budget_cycles:80 Core.Scheme.Gecko in
  let p', meta' = sabotage_colors p meta in
  check_err "slots with every colour forced to 0" (Core.Verify.slots p' meta')

(* --- io_commit (atomic io_log) ---------------------------------------- *)

let torn_io () =
  let b = B.program "torn" in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r1 42;
  B.io_out b 0 Reg.r1;
  B.add b Reg.r1 Reg.r1 (B.imm 1);
  B.halt b;
  B.finish b

let test_io_commit_flags_torn_out () =
  check_err "io_commit on Out without a committing boundary"
    (Core.Verify.io_commit (torn_io ()))

let test_io_commit_accepts_bracketed_out () =
  (* Splice the commit point in by hand (Ckpt stores may sit between the
     Out and its boundary, as emission produces). *)
  let p = Core.Copy.program (torn_io ()) in
  let f = List.hd p.Cfg.funcs in
  List.iter
    (fun blk ->
      blk.Cfg.instrs <-
        List.concat_map
          (fun i ->
            match i with
            | Instr.Out _ ->
                [ i; Instr.Ckpt (Reg.r1, 0); Instr.Boundary 0 ]
            | _ -> [ i ])
          blk.Cfg.instrs)
    f.Cfg.blocks;
  check_ok "io_commit once the Out is bracketed" (Core.Verify.io_commit p)

let test_io_commit_ok_after_pipeline () =
  let prog = (Gecko_workloads.Workload.find "blink").Gecko_workloads.Workload.build () in
  let p, _ = Core.Pipeline.compile Core.Scheme.Gecko prog in
  check_ok "io_commit on compiled blink" (Core.Verify.io_commit p)

(* --- wcet ------------------------------------------------------------- *)

let test_wcet_ok_with_ample_budget () =
  let p, _ = compile ~budget_cycles:80 Core.Scheme.Gecko in
  check_ok "wcet within the compile budget" (Core.Verify.wcet ~budget:80 p)

let test_wcet_flags_tiny_budget () =
  let p, _ = compile Core.Scheme.Gecko in
  check_err "wcet with a 1-cycle budget" (Core.Verify.wcet ~budget:1 p)

let () =
  Alcotest.run "verify"
    [
      ( "idempotence",
        [
          Alcotest.test_case "flags WAR without boundary" `Quick
            test_idempotence_flags_war;
          Alcotest.test_case "accepts compiled program" `Quick
            test_idempotence_ok_after_pipeline;
          Alcotest.test_case "flags stripped boundaries" `Quick
            test_idempotence_flags_stripped_boundaries;
        ] );
      ( "may-alias-war",
        [
          Alcotest.test_case "flags register-addressed WAR" `Quick
            test_idempotence_flags_dynamic_war;
          Alcotest.test_case "accepts the hand-cut resolution" `Quick
            test_idempotence_accepts_cut_dynamic_war;
          Alcotest.test_case "pipeline cuts it automatically" `Quick
            test_pipeline_cuts_dynamic_war;
          Alcotest.test_case "sound rejects clobbered WARAW exemption" `Quick
            test_sound_rejects_clobbered_waraw;
          Alcotest.test_case "legacy accepts it (pinned delta)" `Quick
            test_legacy_accepts_clobbered_waraw;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "accepts compiled program" `Quick
            test_coloring_ok_after_pipeline;
          Alcotest.test_case "flags collapsed colours" `Quick
            test_coloring_flags_collapsed_colors;
        ] );
      ( "slots",
        [
          Alcotest.test_case "accepts compiled program" `Quick
            test_slots_ok_after_pipeline;
          Alcotest.test_case "flags collapsed colours" `Quick
            test_slots_flags_collapsed_colors;
        ] );
      ( "io-commit",
        [
          Alcotest.test_case "flags an uncommitted Out" `Quick
            test_io_commit_flags_torn_out;
          Alcotest.test_case "accepts a bracketed Out" `Quick
            test_io_commit_accepts_bracketed_out;
          Alcotest.test_case "accepts compiled blink" `Quick
            test_io_commit_ok_after_pipeline;
        ] );
      ( "wcet",
        [
          Alcotest.test_case "accepts ample budget" `Quick
            test_wcet_ok_with_ample_budget;
          Alcotest.test_case "flags tiny budget" `Quick
            test_wcet_flags_tiny_budget;
        ] );
    ]

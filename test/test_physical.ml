(* Unit tests for the physical substrates: capacitor, harvesters, EMI
   coupling/attacks, the voltage monitor, and the NVM model. *)

module Cap = Gecko_energy.Capacitor
module H = Gecko_energy.Harvester
module C = Gecko_emi.Coupling
module S = Gecko_emi.Signal
module At = Gecko_emi.Attack
module Sch = Gecko_emi.Schedule
module Mon = Gecko_monitor.Monitor
module Nvm = Gecko_mem.Nvm

let feq = Alcotest.float 1e-6

let test_capacitor_energy () =
  let c = Cap.create ~capacitance:1e-3 ~v_max:3.3 ~v_init:3.0 in
  Alcotest.check feq "E = CV^2/2" (0.5 *. 1e-3 *. 9.) (Cap.energy c);
  let removed = Cap.drain c 1e-3 in
  Alcotest.check feq "removed what was asked" 1e-3 removed;
  Alcotest.check feq "remaining" (0.5 *. 1e-3 *. 9. -. 1e-3) (Cap.energy c);
  (* Draining more than stored empties it. *)
  let removed = Cap.drain c 1.0 in
  Alcotest.(check bool) "partial removal" true (removed < 1.0);
  Alcotest.check feq "empty" 0. (Cap.energy c)

let test_charge_time_rc () =
  (* Simulated RC charging matches the analytic time within a step. *)
  let capacitance = 1e-4 and r_source = 100. and v_source = 3.3 in
  let analytic =
    Cap.charge_time_rc ~capacitance ~v_source ~r_source ~v_from:1.0 ~v_to:3.0
  in
  let c = Cap.create ~capacitance ~v_max:3.3 ~v_init:1.0 in
  let h = H.thevenin ~v_source ~r_source in
  let dt = 1e-5 in
  let t = ref 0. in
  while Cap.voltage c < 3.0 && !t < 1.0 do
    Cap.source_current c ~amps:(H.current h ~time:!t ~v:(Cap.voltage c)) ~dt;
    t := !t +. dt
  done;
  Alcotest.(check bool) "within 2%" true
    (Float.abs (!t -. analytic) /. analytic < 0.02);
  Alcotest.(check bool) "infinite beyond source" true
    (Cap.charge_time_rc ~capacitance ~v_source ~r_source ~v_from:1.0 ~v_to:3.4
    = infinity)

let test_square_wave () =
  let h = H.square_wave ~period:1.0 ~duty:0.25 (H.thevenin ~v_source:3.3 ~r_source:1.) in
  Alcotest.(check bool) "on during duty" true (H.current h ~time:0.1 ~v:1.0 > 0.);
  Alcotest.check feq "off after duty" 0. (H.current h ~time:0.5 ~v:1.0);
  Alcotest.(check bool) "periodic" true (H.current h ~time:1.1 ~v:1.0 > 0.)

let test_coupling_profile () =
  let p = C.profile [ C.peak ~f0_mhz:27. ~half_width_mhz:6. ~gain:3. ] in
  let g = C.gain p in
  Alcotest.(check bool) "peaks at resonance" true
    (g ~freq_hz:27e6 > g ~freq_hz:10e6 && g ~freq_hz:27e6 > g ~freq_hz:40e6);
  Alcotest.(check bool) "VHF rolled off" true (g ~freq_hz:200e6 < 0.05 *. g ~freq_hz:27e6);
  Alcotest.(check int) "peak frequency" 27
    (int_of_float (C.peak_frequency_mhz p))

let test_attack_paths () =
  let profile = C.profile [ C.peak ~f0_mhz:27. ~half_width_mhz:6. ~gain:3. ] in
  let sig27 = S.make ~freq_mhz:27. ~power_dbm:20. in
  let amp a = At.induced_amplitude ~profile a in
  Alcotest.(check bool) "P2 couples more than P1" true
    (amp (At.dpi At.P2 sig27) > amp (At.dpi At.P1 sig27));
  Alcotest.(check bool) "wall attenuates" true
    (amp (At.remote ~distance_m:2. sig27)
    > amp (At.remote ~through_wall:true ~distance_m:2. sig27));
  Alcotest.check feq "dbm roundtrip" 0.1 (S.power_watts (S.make ~freq_mhz:1. ~power_dbm:20.))

let test_schedule () =
  let a = At.remote ~distance_m:1. (S.make ~freq_mhz:27. ~power_dbm:20.) in
  let s = Sch.make [ Sch.window ~t_start:1. ~t_end:2. a ] in
  Alcotest.(check bool) "inactive before" true (Sch.active s 0.5 = None);
  Alcotest.(check bool) "active inside" true (Sch.active s 1.5 <> None);
  Alcotest.(check bool) "inactive after" true (Sch.active s 2.5 = None);
  (match Sch.make [ Sch.window ~t_start:0. ~t_end:2. a; Sch.window ~t_start:1. ~t_end:3. a ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected overlap rejection")

let test_monitor_adc () =
  let m =
    Mon.create (Mon.Adc { sample_period = 1e-4 })
      { Mon.v_backup = 2.2; v_on = 3.0 }
  in
  (* No trigger before a sampling tick. *)
  Alcotest.(check bool) "no tick yet" true
    (Mon.observe m ~time:5e-5 ~v_true:2.0 ~disturbance:0. = None);
  Alcotest.(check bool) "backup at tick" true
    (Mon.observe m ~time:2e-4 ~v_true:2.0 ~disturbance:0. = Some Mon.Backup);
  (* Disturbance makes a healthy rail look dead. *)
  Mon.sync m ~time:2e-4;
  Alcotest.(check bool) "spurious backup" true
    (Mon.observe m ~time:4e-4 ~v_true:3.3 ~disturbance:2.0 = Some Mon.Backup);
  (* Wake arming and disable. *)
  Mon.arm_wake m;
  Mon.sync m ~time:4e-4;
  Alcotest.(check bool) "no wake below v_on" true
    (Mon.observe m ~time:6e-4 ~v_true:2.5 ~disturbance:0. = None);
  Alcotest.(check bool) "spurious wake" true
    (Mon.observe m ~time:8e-4 ~v_true:2.5 ~disturbance:0.6 = Some Mon.Wake);
  Mon.set_enabled m false;
  Alcotest.(check bool) "disabled is silent" true
    (Mon.observe m ~time:1e-3 ~v_true:0.5 ~disturbance:5.0 = None)

let test_monitor_comparator () =
  let m =
    Mon.create (Mon.Comparator { latency = 1e-6 })
      { Mon.v_backup = 2.2; v_on = 3.0 }
  in
  (* The condition must hold for the propagation delay. *)
  Alcotest.(check bool) "onset" true
    (Mon.observe m ~time:0. ~v_true:2.0 ~disturbance:0. = None);
  Alcotest.(check bool) "after latency" true
    (Mon.observe m ~time:2e-6 ~v_true:2.0 ~disturbance:0. = Some Mon.Backup)

let test_nvm () =
  let n = Nvm.create ~words:8 () in
  Nvm.write n 3 42;
  Alcotest.(check int) "read back" 42 (Nvm.read n 3);
  Alcotest.(check int) "stats" 1 (Nvm.writes n);
  let s = Nvm.snapshot n in
  Nvm.write n 3 7;
  Alcotest.(check (list (triple int int int))) "diff" [ (3, 42, 7) ]
    (Nvm.diff s (Nvm.snapshot n));
  Nvm.restore n s;
  Alcotest.(check int) "restored" 42 (Nvm.read n 3);
  (match Nvm.read n 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds check")

let () =
  Alcotest.run "physical"
    [
      ( "energy",
        [
          Alcotest.test_case "capacitor energy" `Quick test_capacitor_energy;
          Alcotest.test_case "rc charge time" `Quick test_charge_time_rc;
          Alcotest.test_case "square wave" `Quick test_square_wave;
        ] );
      ( "emi",
        [
          Alcotest.test_case "coupling profile" `Quick test_coupling_profile;
          Alcotest.test_case "attack paths" `Quick test_attack_paths;
          Alcotest.test_case "schedule" `Quick test_schedule;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "adc" `Quick test_monitor_adc;
          Alcotest.test_case "comparator" `Quick test_monitor_comparator;
        ] );
      ("nvm", [ Alcotest.test_case "basic" `Quick test_nvm ]);
    ]

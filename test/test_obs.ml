module Json = Gecko_obs.Json
module Trace = Gecko_obs.Trace
module Metrics = Gecko_obs.Metrics

let feq = Alcotest.float 1e-9

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse error: %s in %s" e s

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Assoc
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("string", Json.String "quote\" slash\\ newline\n tab\t unicode é");
        ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
        ("nested", Json.Assoc [ ("k", Json.List []) ]);
      ]
  in
  let s = Json.to_string doc in
  Alcotest.(check bool) "round trip" true (Json.equal doc (parse_exn s));
  (* Non-finite floats cannot be represented: printed as null. *)
  let s = Json.to_string (Json.List [ Json.Float Float.nan; Json.Float infinity ]) in
  Alcotest.(check bool) "nan/inf -> null" true
    (Json.equal (Json.List [ Json.Null; Json.Null ]) (parse_exn s));
  (* Escapes parse back. *)
  Alcotest.(check bool) "unicode escape" true
    (Json.equal (Json.String "A\xc3\xa9") (parse_exn {|"Aé"|}));
  (match Json.parse "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must be rejected");
  (* Accessors. *)
  let v = parse_exn {|{"a": {"b": 3}}|} in
  Alcotest.check feq "member chain" 3.
    (match Option.bind (Json.member "a" v) (Json.member "b") with
    | Some j -> Option.get (Json.to_float_opt j)
    | None -> Alcotest.fail "missing member")

(* ------------------------------------------------------------------ *)
(* Trace recorder                                                      *)
(* ------------------------------------------------------------------ *)

let test_trace_recorder () =
  let t = Trace.create () in
  Trace.instant t ~cat:"a" ~ts:1.0 "one";
  Trace.complete t ~cat:"b" ~ts:2.0 ~dur:0.5 "two";
  Trace.counter t ~ts:3.0 "volts" 2.5;
  Alcotest.(check int) "length" 3 (Trace.length t);
  Alcotest.(check int) "no drops" 0 (Trace.dropped t);
  (match Trace.entries t with
  | [ e1; e2; e3 ] ->
      Alcotest.(check string) "oldest first" "one" e1.Trace.name;
      Alcotest.check feq "ts preserved" 2.0 e2.Trace.ts;
      (match e2.Trace.ph with
      | Trace.Complete d -> Alcotest.check feq "dur" 0.5 d
      | _ -> Alcotest.fail "expected a complete span");
      (match e3.Trace.ph with
      | Trace.Counter v -> Alcotest.check feq "counter value" 2.5 v
      | _ -> Alcotest.fail "expected a counter")
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es));
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t)

let test_trace_ring_wrap () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.instant t ~ts:(float_of_int i) (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "holds capacity" 8 (Trace.length t);
  Alcotest.(check int) "dropped the rest" 12 (Trace.dropped t);
  let names = List.map (fun e -> e.Trace.name) (Trace.entries t) in
  Alcotest.(check (list string)) "keeps the newest, oldest first"
    [ "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]
    names

let test_trace_disabled () =
  let t = Trace.disabled () in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.instant t ~ts:1.0 "ignored";
  Trace.counter t ~ts:1.0 "ignored" 1.;
  let v = Trace.span t "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "span still runs f" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (Trace.length t);
  Trace.set_enabled t true;
  Trace.instant t ~ts:1.0 "seen";
  Alcotest.(check int) "re-enabled records" 1 (Trace.length t)

let test_trace_span () =
  let t = Trace.create () in
  let v = Trace.span t ~cat:"compiler" "work" (fun () -> 7) in
  Alcotest.(check int) "returns f's value" 7 v;
  (match Trace.entries t with
  | [ e ] -> (
      Alcotest.(check string) "span name" "work" e.Trace.name;
      match e.Trace.ph with
      | Trace.Complete d -> Alcotest.(check bool) "dur >= 0" true (d >= 0.)
      | _ -> Alcotest.fail "expected a complete span")
  | _ -> Alcotest.fail "expected one entry");
  (* Recorded even when f raises. *)
  (match Trace.span t "raises" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the exception to propagate");
  Alcotest.(check int) "span on raise recorded" 2 (Trace.length t)

let test_trace_chrome_export () =
  let t = Trace.create () in
  Trace.instant t ~cat:"power" ~ts:1e-3 "boot";
  Trace.complete t ~cat:"checkpoint" ~ts:2e-3 ~dur:5e-6 "isr";
  Trace.counter t ~ts:3e-3 "cap_voltage" 2.7;
  let doc = parse_exn (Trace.to_chrome_string ~pid:9 t) in
  let objs =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "expected a traceEvents array"
  in
  (match Option.bind (Json.member "otherData" doc) (Json.member "dropped") with
  | Some (Json.Int 0) -> ()
  | _ -> Alcotest.fail "expected otherData.dropped = 0");
  Alcotest.(check int) "one object per entry" 3 (List.length objs);
  let field name o = Option.get (Json.member name o) in
  List.iter
    (fun o ->
      (* The Chrome trace-event viewer requires these fields. *)
      List.iter
        (fun k ->
          Alcotest.(check bool) ("has " ^ k) true (Json.member k o <> None))
        [ "name"; "ph"; "ts"; "pid"; "tid" ];
      Alcotest.check feq "pid" 9. (Option.get (Json.to_float_opt (field "pid" o))))
    objs;
  (match objs with
  | [ boot; isr; volts ] ->
      Alcotest.(check (option string))
        "instant ph" (Some "i")
        (Json.to_string_opt (field "ph" boot));
      (* ts is exported in microseconds. *)
      Alcotest.check feq "ts us" 1e3
        (Option.get (Json.to_float_opt (field "ts" boot)));
      Alcotest.(check (option string))
        "complete ph" (Some "X")
        (Json.to_string_opt (field "ph" isr));
      Alcotest.check feq "dur us" 5.
        (Option.get (Json.to_float_opt (field "dur" isr)));
      Alcotest.check feq "counter value" 2.7
        (Option.get
           (Json.to_float_opt (field "value" (field "args" volts))))
  | _ -> Alcotest.fail "expected 3 objects")

let test_trace_jsonl_export () =
  let t = Trace.create () in
  Trace.instant t ~ts:0.25 "a";
  Trace.counter t ~ts:0.5 "b" 4.;
  let lines =
    Trace.to_jsonl t |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per entry" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Assoc _) -> ()
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.failf "bad JSONL line: %s" e)
    lines;
  let last = parse_exn (List.nth lines 1) in
  Alcotest.check feq "value field" 4.
    (Option.get (Json.to_float_opt (Option.get (Json.member "value" last))))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters_gauges () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "reboots" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  (* Interned: same name, same instrument. *)
  Metrics.incr (Metrics.counter reg "reboots");
  Alcotest.(check int) "interned" 6 (Metrics.counter_value c);
  let g = Metrics.gauge reg "volts" in
  Alcotest.(check bool) "gauge starts nan" true
    (Float.is_nan (Metrics.gauge_value g));
  Metrics.set_gauge g 3.1;
  Alcotest.check feq "gauge" 3.1 (Metrics.gauge_value g);
  (* Kind mismatch on an existing name is a programming error. *)
  match Metrics.gauge reg "reboots" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected a kind-mismatch failure"

let test_metrics_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~base:2. ~lowest:1. reg "lat" in
  List.iter (Metrics.observe h) [ 1.5; 3.0; 3.5; 12.0 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.check feq "sum" 20. (Metrics.hist_sum h);
  Alcotest.check feq "min" 1.5 (Metrics.hist_min h);
  Alcotest.check feq "max" 12. (Metrics.hist_max h);
  Alcotest.check feq "mean" 5. (Metrics.hist_mean h);
  (* base 2, lowest 1: bucket 0 = [1,2), 1 = [2,4), 3 = [8,16). *)
  Alcotest.(check (list (triple (float 1e-9) (float 1e-9) int)))
    "bucketing"
    [ (1., 2., 1); (2., 4., 2); (8., 16., 1) ]
    (Metrics.buckets h);
  (* Quantiles land in the right bucket (geometric midpoint). *)
  let in_bucket q (lo, hi) =
    let v = Metrics.quantile h q in
    v >= lo && v < hi
  in
  Alcotest.(check bool) "p25 in [1,2)" true (in_bucket 0.25 (1., 2.));
  Alcotest.(check bool) "p50 in [2,4)" true (in_bucket 0.5 (2., 4.));
  Alcotest.(check bool) "p99 in [8,16)" true (in_bucket 0.99 (8., 16.));
  (* Underflow: values below [lowest] are counted separately. *)
  Metrics.observe h 0.1;
  Alcotest.(check bool) "underflow bucket" true
    (List.exists (fun (lo, hi, c) -> lo = 0. && hi = 1. && c = 1)
       (Metrics.buckets h));
  (* Empty histogram: total accessors. *)
  let e = Metrics.histogram reg "empty" in
  Alcotest.(check int) "empty count" 0 (Metrics.hist_count e);
  Alcotest.check feq "empty mean" 0. (Metrics.hist_mean e);
  Alcotest.check feq "empty quantile" 0. (Metrics.quantile e 0.5)

let test_metrics_export () =
  let reg = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter reg "b.count");
  Metrics.incr (Metrics.counter reg "a.count");
  Metrics.set_gauge (Metrics.gauge reg "volts") 2.5;
  let h = Metrics.histogram ~base:2. ~lowest:1. reg "lat" in
  Metrics.observe h 3.;
  let doc = parse_exn (Json.to_string (Metrics.to_json reg)) in
  let get path =
    List.fold_left
      (fun acc k -> Option.bind acc (Json.member k))
      (Some doc) path
  in
  Alcotest.check feq "counter export" 3.
    (Option.get (Json.to_float_opt (Option.get (get [ "counters"; "b.count" ]))));
  Alcotest.check feq "gauge export" 2.5
    (Option.get (Json.to_float_opt (Option.get (get [ "gauges"; "volts" ]))));
  Alcotest.check feq "histogram count" 1.
    (Option.get (Json.to_float_opt (Option.get (get [ "histograms"; "lat"; "count" ]))));
  (* Counters are sorted by name. *)
  (match get [ "counters" ] with
  | Some (Json.Assoc kvs) ->
      Alcotest.(check (list string))
        "sorted" [ "a.count"; "b.count" ] (List.map fst kvs)
  | _ -> Alcotest.fail "expected a counters object");
  let csv = Metrics.to_csv reg in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check bool) "csv header" true
    (List.hd lines = "kind,name,field,value");
  Alcotest.(check bool) "csv counter row" true
    (List.mem "counter,b.count,value,3" lines);
  Alcotest.(check bool) "csv gauge row" true
    (List.mem "gauge,volts,value,2.5" lines)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Flight = Gecko_obs.Flight

let test_flight_ring_wrap () =
  let fl = Flight.create ~capacity:4 () in
  for i = 1 to 10 do
    Flight.record fl ~t_sim:(float_of_int i) ~arg:i ~v:3.0 "boundary"
  done;
  Alcotest.(check int) "length capped at capacity" 4 (Flight.length fl);
  Alcotest.(check int) "dropped counts the overwritten" 6 (Flight.dropped fl);
  Alcotest.(check (list int))
    "keeps the last N, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Flight.e_arg) (Flight.entries fl));
  let j = Flight.to_json fl in
  (match Json.member "schema" j with
  | Some (Json.String "gecko.flight/1") -> ()
  | _ -> Alcotest.fail "bad schema tag");
  (match Json.member "recorded" j with
  | Some (Json.Int 10) -> ()
  | _ -> Alcotest.fail "recorded must count kept + dropped");
  Flight.clear fl;
  Alcotest.(check int) "clear empties the ring" 0 (Flight.length fl);
  Alcotest.(check int) "clear resets dropped" 0 (Flight.dropped fl)

let test_flight_capacity_one () =
  (* The degenerate ring: every record overwrites the single slot. *)
  let fl = Flight.create ~capacity:1 () in
  Alcotest.(check int) "capacity clamps to >= 1" 1 (Flight.capacity fl);
  Flight.record fl ~t_sim:0.5 ~arg:1 ~v:2.0 "boot";
  Flight.record fl ~t_sim:1.5 ~arg:2 ~v:2.5 "detection";
  Alcotest.(check int) "one kept" 1 (Flight.length fl);
  Alcotest.(check int) "one dropped" 1 (Flight.dropped fl);
  (match Flight.entries fl with
  | [ e ] ->
      Alcotest.(check string) "latest survives" "detection" e.Flight.e_ev;
      Alcotest.check feq "its timestamp" 1.5 e.Flight.e_t
  | _ -> Alcotest.fail "expected exactly one entry")

let test_flight_disabled () =
  let fl = Flight.disabled () in
  Flight.record fl ~t_sim:0.0 ~arg:0 ~v:3.3 "boot";
  Alcotest.(check int) "disabled records nothing" 0 (Flight.length fl);
  Flight.set_enabled fl true;
  Flight.record fl ~t_sim:1.0 ~arg:0 ~v:3.3 "boot";
  Alcotest.(check int) "re-enabled records" 1 (Flight.length fl)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_metrics_prometheus () =
  let reg = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter reg "machine.completions");
  Metrics.set_gauge (Metrics.gauge reg "cap-volts") 2.5;
  let h = Metrics.histogram reg "machine.rollback_s" in
  Metrics.observe h 0.002;
  Metrics.observe h 0.004;
  let text = Metrics.to_prometheus reg in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  Alcotest.(check bool) "counter TYPE line" true
    (has "# TYPE machine_completions counter");
  Alcotest.(check bool) "counter sample" true (has "machine_completions 3");
  Alcotest.(check bool) "gauge sanitized name" true (has "cap_volts 2.5");
  Alcotest.(check bool) "histogram TYPE line" true
    (has "# TYPE machine_rollback_s histogram");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (has "machine_rollback_s_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "histogram count" true (has "machine_rollback_s_count 2");
  (* Bucket counts must be cumulative: each le line's value is
     non-decreasing in file order. *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        let prefix = "machine_rollback_s_bucket{" in
        if String.starts_with ~prefix l then
          match String.rindex_opt l ' ' with
          | Some i ->
              float_of_string_opt
                (String.sub l (i + 1) (String.length l - i - 1))
          | None -> None
        else None)
      lines
  in
  Alcotest.(check bool) "at least two bucket lines" true
    (List.length bucket_counts >= 2);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "bucket counts are cumulative" true
    (nondecreasing bucket_counts)

let () =
  Alcotest.run "obs"
    [
      ("json", [ Alcotest.test_case "round trip" `Quick test_json_roundtrip ]);
      ( "trace",
        [
          Alcotest.test_case "recorder" `Quick test_trace_recorder;
          Alcotest.test_case "ring wrap" `Quick test_trace_ring_wrap;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "span" `Quick test_trace_span;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
          Alcotest.test_case "jsonl export" `Quick test_trace_jsonl_export;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wrap" `Quick test_flight_ring_wrap;
          Alcotest.test_case "capacity one" `Quick test_flight_capacity_one;
          Alcotest.test_case "disabled" `Quick test_flight_disabled;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters & gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "export" `Quick test_metrics_export;
          Alcotest.test_case "prometheus exposition" `Quick
            test_metrics_prometheus;
        ] );
    ]

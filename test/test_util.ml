let test_rng_determinism () =
  let a = Gecko_util.Rng.create 42 and b = Gecko_util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Gecko_util.Rng.bits64 a)
      (Gecko_util.Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Gecko_util.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Gecko_util.Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13);
    let f = Gecko_util.Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.5);
    let x = Gecko_util.Rng.range r (-5) 5 in
    Alcotest.(check bool) "range inclusive" true (x >= -5 && x <= 5)
  done

let test_rng_split_independent () =
  let a = Gecko_util.Rng.create 1 in
  let b = Gecko_util.Rng.split a in
  Alcotest.(check bool) "streams differ" true
    (Gecko_util.Rng.bits64 a <> Gecko_util.Rng.bits64 b)

let feq = Alcotest.float 1e-9

let test_stats () =
  let module S = Gecko_util.Stats in
  Alcotest.check feq "mean" 2.5 (S.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.check feq "geomean" 2. (S.geomean [ 1.; 4. ]);
  Alcotest.check feq "median" 2.5 (S.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.check feq "p0" 1. (S.percentile 0. [ 3.; 1.; 2. ]);
  Alcotest.check feq "p100" 3. (S.percentile 100. [ 3.; 1.; 2. ]);
  Alcotest.check feq "clamp" 1. (S.clamp ~lo:0. ~hi:1. 5.);
  Alcotest.check feq "mean empty" 0. (S.mean []);
  let s = S.summarize [ 1.; 2.; 3. ] in
  Alcotest.(check int) "summary n" 3 s.S.n

(* The documented empty-input policy: every aggregate is total and
   returns 0. on [], and behaves sensibly on singletons. *)
let test_stats_empty_singleton () =
  let module S = Gecko_util.Stats in
  Alcotest.check feq "geomean empty" 0. (S.geomean []);
  Alcotest.check feq "stddev empty" 0. (S.stddev []);
  Alcotest.check feq "minimum empty" 0. (S.minimum []);
  Alcotest.check feq "maximum empty" 0. (S.maximum []);
  Alcotest.check feq "percentile empty" 0. (S.percentile 90. []);
  Alcotest.check feq "median empty" 0. (S.median []);
  let s = S.summarize [] in
  Alcotest.(check int) "summary empty n" 0 s.S.n;
  Alcotest.check feq "summary empty median" 0. s.S.median;
  Alcotest.check feq "mean singleton" 7. (S.mean [ 7. ]);
  Alcotest.check feq "geomean singleton" 7. (S.geomean [ 7. ]);
  Alcotest.check feq "stddev singleton" 0. (S.stddev [ 7. ]);
  Alcotest.check feq "minimum singleton" 7. (S.minimum [ 7. ]);
  Alcotest.check feq "maximum singleton" 7. (S.maximum [ 7. ]);
  Alcotest.check feq "p0 singleton" 7. (S.percentile 0. [ 7. ]);
  Alcotest.check feq "p50 singleton" 7. (S.percentile 50. [ 7. ]);
  Alcotest.check feq "p100 singleton" 7. (S.percentile 100. [ 7. ]);
  Alcotest.check feq "median singleton" 7. (S.median [ 7. ])

let test_table () =
  let module T = Gecko_util.Table in
  let t = T.create ~header:[ "a"; "b" ] () in
  T.add_row t [ "x"; "1" ];
  T.add_sep t;
  T.add_row t [ "yy"; "22" ];
  let s = T.render t in
  Alcotest.(check bool) "contains rows" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> l = "| yy | 22 |"));
  (match T.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity check");
  Alcotest.(check string) "pct" "12.50%" (T.cell_pct 0.125)

let test_chart () =
  let module C = Gecko_util.Chart in
  let s =
    C.line_plot ~width:20 ~height:5
      [ { C.label = "x"; points = [ (0., 0.); (1., 1.) ] } ]
  in
  Alcotest.(check bool) "plots something" true (String.contains s '*');
  let b = C.bar_chart [ ("a", 1.); ("b", 2.) ] in
  Alcotest.(check bool) "bars" true (String.contains b '#')

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats;
          Alcotest.test_case "empty & singleton" `Quick
            test_stats_empty_singleton;
        ] );
      ("render", [ Alcotest.test_case "table" `Quick test_table;
                   Alcotest.test_case "chart" `Quick test_chart ]);
    ]

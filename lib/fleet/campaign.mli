(** Sharded execution of a fleet campaign, with checkpoint/resume.

    The spec elaborates into per-device assignments (one RNG stream per
    device, split from the campaign seed) and one shared {!Field}.
    Devices partition into shards of [spec.shard_size]; each shard runs
    its devices serially and aggregates locally, and shards fan out over
    the shared {!Gecko_harness.Workbench} pool in fixed-size waves.
    Compilation goes through the Workbench's process-wide compile cache,
    so each workload×scheme pair compiles once per process — not once per
    device.

    Reduction folds shard results in shard-id order, so the merged report
    is byte-identical for any [--jobs] and any shard size.  After every
    wave the completed shard results are written to a versioned
    [gecko.fleet/1] snapshot (write-then-rename); a later invocation with
    the same spec resumes from it, re-running only the missing shards,
    and produces the byte-identical report an uninterrupted campaign
    would have — the fleet simulator itself behaves like an intermittent
    system. *)

type device = {
  id : int;
  workload : string;
  scheme : Gecko_core.Scheme.t;
  board : Spec.board_kind;
  x : float;
  y : float;
  seed : int;
}

val elaborate : Spec.t -> device array * Field.t
(** Deterministic: depends only on the spec. *)

val run_device :
  spec:Spec.t -> field:Field.t -> device -> Agg.t * Gecko_obs.Metrics.registry
(** Simulate one device under its local attack schedule; returns its
    aggregate and its run-metrics registry. *)

type shard_result = {
  sr_id : int;
  sr_agg : Agg.t;
  sr_per_scheme : (string * Agg.t) list;
  sr_per_workload : (string * Agg.t) list;
  sr_metrics : Gecko_obs.Json.t;
      (** Shard metrics registry, [Metrics.to_persist] form. *)
}

val run_shard :
  spec:Spec.t -> field:Field.t -> devices:device array -> int -> shard_result

val shard_to_json : shard_result -> Gecko_obs.Json.t
val shard_of_json : Gecko_obs.Json.t -> shard_result
(** Exact round-trip; raises [Invalid_argument] on malformed input. *)

(** {2 Snapshots} *)

val snapshot_schema : string
(** ["gecko.fleet/1"]. *)

val snapshot_json : Spec.t -> shard_result list -> Gecko_obs.Json.t

val parse_snapshot : string -> Spec.t * shard_result list
(** Validates the schema, the spec and shard-id sanity (in-range, no
    duplicates).  Raises [Invalid_argument] on any violation. *)

val load_snapshot : string -> Spec.t * shard_result list
(** {!parse_snapshot} of a file's contents.  Raises [Sys_error] on IO
    failure. *)

val report_of_shards : Spec.t -> shard_result list -> Report.t
(** Merge in shard-id order (the one true reduction). *)

(** {2 Running} *)

type result = {
  report : Report.t option;
      (** [None] when [max_shards] stopped the campaign early. *)
  completed_shards : int;
  total_shards : int;
  resumed_shards : int;  (** Shards taken from the snapshot, not re-run. *)
  devices_run : int;  (** Devices simulated by this invocation. *)
  instructions_run : int;
      (** Simulated instructions retired by this invocation (feeds the
          bench harness's fleet [sim_instr_per_sec]). *)
}

val run :
  ?snapshot_path:string ->
  ?resume:Spec.t * shard_result list ->
  ?max_shards:int ->
  Spec.t ->
  result
(** Run (or continue) a campaign.  [snapshot_path] enables per-wave
    checkpointing; [resume] supplies a loaded snapshot whose spec must
    equal the requested one (raises [Invalid_argument] otherwise);
    [max_shards] bounds how many new shards this invocation runs (for
    controlled interruption).  Pool width comes from
    {!Gecko_harness.Workbench.jobs}; results do not depend on it. *)

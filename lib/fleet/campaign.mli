(** Sharded execution of a fleet campaign, with checkpoint/resume.

    The spec elaborates into per-device assignments (one RNG stream per
    device, split from the campaign seed) and one shared {!Field}.
    Devices partition into shards of [spec.shard_size]; each shard runs
    its devices in id order — under the batched {!Lockstep} engine by
    default, or the scalar per-device runner — streaming each finished
    device into the shard accumulator (see {!Shard.acc}; no per-device
    list is ever materialized), and shards fan out over the shared
    {!Gecko_harness.Workbench} pool in fixed-size waves.  Compilation
    goes through the Workbench's process-wide compile cache, so each
    workload×scheme pair compiles once per process — not once per
    device.

    Reduction folds shard results in shard-id order, so the merged report
    is byte-identical for any [--jobs], any shard size, and either
    {!engine}.  After every wave the completed shard results are written
    to a versioned [gecko.fleet/1] snapshot (write-then-rename); a later
    invocation with the same spec resumes from it, re-running only the
    missing shards, and produces the byte-identical report an
    uninterrupted campaign would have — the fleet simulator itself
    behaves like an intermittent system. *)

type device = Shard.device = {
  id : int;
  workload : string;
  scheme : Gecko_core.Scheme.t;
  board : Spec.board_kind;
  x : float;
  y : float;
  seed : int;
}

val elaborate : Spec.t -> device array * Field.t
(** Deterministic: depends only on the spec. *)

val run_device :
  ?telemetry:Telemetry.config ->
  spec:Spec.t ->
  field:Field.t ->
  device ->
  Agg.t * Gecko_obs.Metrics.registry * Telemetry.t option
(** Simulate one device under its local attack schedule; returns its
    aggregate, its run-metrics registry and — when [telemetry] is given
    — its single-device telemetry (the device carries a flight recorder
    for the run; the dump rides in its outlier record if it scores as
    one). *)

(** {2 Engines}

    A runtime execution strategy — deliberately not part of {!Spec.t}:
    specs are embedded in reports and snapshots, which must be
    byte-identical whichever engine produced them.  Both engines run a
    shard's devices in ascending id order through the same
    {!Shard.acc}, so their shard results (and hence merged reports,
    snapshots, and telemetry streams) are byte-identical; the
    differential test suite pins this. *)

type engine =
  | Scalar  (** One [Machine.run] per device, serially. *)
  | Lockstep
      (** Batched windows of [Machine.Step] handles issued whole-block
          turns round-robin (see {!Lockstep}). *)

val engine_slug : engine -> string
(** ["scalar"] / ["lockstep"] (the [--engine] CLI values). *)

val engine_of_slug : string -> engine option

val default_engine : engine
(** {!Lockstep}. *)

type shard_result = Shard.t = {
  sr_id : int;
  sr_agg : Agg.t;
  sr_per_scheme : (string * Agg.t) list;
  sr_per_workload : (string * Agg.t) list;
  sr_metrics : Gecko_obs.Json.t;
      (** Shard metrics registry, [Metrics.to_persist] form. *)
  sr_telemetry : Telemetry.t option;
      (** Present when the campaign ran with telemetry; persisted in the
          snapshot so a resumed campaign keeps its outliers. *)
}

val run_shard :
  ?engine:engine ->
  ?telemetry:Telemetry.config ->
  spec:Spec.t ->
  field:Field.t ->
  devices:device array ->
  int ->
  shard_result
(** Run one shard ([engine] defaults to {!default_engine}); [devices] is
    the full elaborated array, the shard slice is cut here. *)

val shard_to_json : shard_result -> Gecko_obs.Json.t
val shard_of_json : Gecko_obs.Json.t -> shard_result
(** Exact round-trip; raises [Invalid_argument] on malformed input. *)

(** {2 Snapshots} *)

val snapshot_schema : string
(** ["gecko.fleet/1"]. *)

val snapshot_json : Spec.t -> shard_result list -> Gecko_obs.Json.t

val parse_snapshot : string -> Spec.t * shard_result list
(** Validates the schema, the spec and shard-id sanity (in-range, no
    duplicates).  Raises [Invalid_argument] on any violation. *)

val load_snapshot : string -> Spec.t * shard_result list
(** {!parse_snapshot} of a file's contents.  Raises [Sys_error] on IO
    failure. *)

val report_of_shards : Spec.t -> shard_result list -> Report.t
(** Merge in shard-id order (the one true reduction). *)

(** {2 Running} *)

type result = {
  report : Report.t option;
      (** [None] when [max_shards] stopped the campaign early. *)
  completed_shards : int;
  total_shards : int;
  resumed_shards : int;  (** Shards taken from the snapshot, not re-run. *)
  devices_run : int;  (** Devices simulated by this invocation. *)
  instructions_run : int;
      (** Simulated instructions retired by this invocation (feeds the
          bench harness's fleet [sim_instr_per_sec]). *)
  telemetry : Telemetry.t option;
      (** Campaign-wide telemetry, merged in shard-id order; present
          when the campaign ran with telemetry. *)
}

val run :
  ?engine:engine ->
  ?snapshot_path:string ->
  ?resume:Spec.t * shard_result list ->
  ?max_shards:int ->
  ?telemetry:Telemetry.config ->
  Spec.t ->
  result
(** Run (or continue) a campaign.  [engine] picks the shard execution
    strategy (default {!default_engine}; results do not depend on it);
    [snapshot_path] enables per-wave checkpointing; [resume] supplies a
    loaded snapshot whose spec must equal the requested one (raises
    [Invalid_argument] otherwise) — the snapshot may have been produced
    by either engine; [max_shards] bounds how many new shards this
    invocation runs (for controlled interruption).  Pool width comes
    from {!Gecko_harness.Workbench.jobs}; results do not depend on it.

    [telemetry] arms the observability layer: every device carries a
    {!Gecko_obs.Flight} recorder, every shard folds a {!Telemetry.t},
    and — when [tel_path] is set — the campaign streams
    [gecko.fleet-telemetry/1] JSONL: a header record, one record per
    completed shard ([{"shard"; "resumed"; "devices"; "telemetry";
    "cumulative"}], resumed shards first), a [{"final": ...}] record
    with the shard-id-order merge, and a last [{"nondeterministic":
    {"wall_seconds"; "devices_per_sec"; "jobs"}}] record quarantining
    every wall-clock-derived field.  All other records are sim-derived
    and byte-identical at any pool width.  [tel_progress] additionally
    writes a live progress line (devices/s, ETA, anomaly count) to
    stderr. *)

(** {2 Drill-down replay}

    The bridge from "fleet-wide anomaly" to "single-device repro": an
    outlier record carries the device id; {!replay} re-elaborates that
    one device from the spec — same RNG split, same schedule, same
    compiled image — and re-runs it with the full forensics kit
    attached.  The outcome is step-for-step the campaign's run (the
    observers are pure), so the replayed aggregate must equal the
    device's campaign contribution; from here
    {!Gecko_faultinject.Shrink} can minimize the repro. *)

type replay = {
  rp_device : device;
  rp_schedule : Gecko_emi.Schedule.t;
      (** The device's local attack schedule, as sampled from the field. *)
  rp_outcome : Gecko_machine.Machine.outcome;
  rp_agg : Agg.t;
  rp_telemetry : Telemetry.t;
      (** Single-device telemetry with [tel_top_k >= 1], so an anomalous
          device always yields its outlier record (flight dump
          included). *)
  rp_flight : Gecko_obs.Flight.t;
  rp_trace : Gecko_obs.Trace.t;
  rp_metrics : Gecko_obs.Metrics.registry;
}

val replay : ?config:Telemetry.config -> device_id:int -> Spec.t -> replay
(** Raises [Invalid_argument] if [device_id] is outside the spec's
    device range. *)

val shrink_repro : replay -> Gecko_faultinject.Shrink.repro
(** The replayed device as a shrinker input: its compiled program plus
    its local attack schedule (no forced fires).  Feed to
    {!Gecko_faultinject.Shrink.shrink} with a check that replays the
    device's anomaly to minimize the repro. *)

(** The shared spatial EMI environment of a campaign.

    One or more mobile attackers patrol the square deployment area on
    random-waypoint paths drawn from the campaign RNG; every device
    derives its local attack schedule from the distance to the nearest
    attacker over time, through the distance-dependent coupling already
    modelled by {!Gecko_emi.Attack.remote}.  The field is built once per
    campaign and is immutable afterwards, so shards can evaluate it
    concurrently and a device's schedule does not depend on shard
    assignment or execution order. *)

type t

val make :
  attackers:int ->
  area_m:float ->
  speed:float ->
  duration:float ->
  steps:int ->
  freq_mhz:float ->
  power_dbm:float ->
  range_m:float ->
  Gecko_util.Rng.t ->
  t
(** Draw attacker trajectories from the given RNG stream (consumed
    deterministically). *)

val nearest_distance : t -> x:float -> y:float -> time:float -> float
(** Distance (m) from a point to the nearest attacker at a simulated
    time; [infinity] with no attackers. *)

val schedule_at : t -> x:float -> y:float -> Gecko_emi.Schedule.t
(** The local attack schedule of a device at position [(x, y)]:
    piecewise-constant over [steps] field samples, one window (remote
    attack at the nearest-attacker distance) per sample within
    [range_m]. *)

val exposure_seconds : Gecko_emi.Schedule.t -> float
(** Total scheduled attack-window seconds. *)

(** Campaign specification: everything that determines a fleet simulation.

    A spec plus nothing else fixes the whole campaign — device placement,
    per-device workload/scheme/board assignment and RNG streams, attacker
    trajectories and the derived per-device EMI schedules — so two runs of
    the same spec produce byte-identical merged reports at any shard size
    and pool width, and a spec embedded in a [gecko.fleet/1] snapshot can
    be checked against the resuming invocation. *)

type board_kind =
  | Attack_rig  (** {!Gecko_machine.Board.attack_rig}: 10 µF storage. *)
  | Bench  (** {!Gecko_machine.Board.default}: 1 mF supercap bench board. *)

type t = {
  devices : int;
  attackers : int;
  seed : int;  (** Campaign seed; every stream splits from it. *)
  duration : float;  (** Simulated seconds per device. *)
  area_m : float;  (** Side of the square deployment area. *)
  shard_size : int;  (** Devices per work unit. *)
  workload_mix : string list;  (** Drawn per device from its RNG stream. *)
  scheme_mix : Gecko_core.Scheme.t list;
  board_mix : board_kind list;
  freq_mhz : float;  (** Attack tone. *)
  power_dbm : float;  (** Attacker transmit power. *)
  attacker_speed_mps : float;
      (** Patrol speed.  Deliberately time-compressed: device runs last
          fractions of a second, so a "walking" attacker is modelled as
          covering its whole patrol within the simulated window. *)
  range_m : float;  (** Coupling cutoff: farther attackers are inert. *)
  field_steps : int;
      (** Piecewise-constant samples of attacker motion per campaign
          duration (each sample becomes at most one schedule window). *)
}

val make :
  ?attackers:int ->
  ?duration:float ->
  ?area_m:float ->
  ?shard_size:int ->
  ?workload_mix:string list ->
  ?scheme_mix:Gecko_core.Scheme.t list ->
  ?board_mix:board_kind list ->
  ?freq_mhz:float ->
  ?power_dbm:float ->
  ?attacker_speed_mps:float ->
  ?range_m:float ->
  ?field_steps:int ->
  devices:int ->
  seed:int ->
  unit ->
  t
(** Validated constructor; raises [Invalid_argument] on nonsense (and on
    unknown workload names). *)

val validate : t -> t
(** Raises [Invalid_argument] if any field is out of range. *)

val shards : t -> int
(** Number of shards the campaign partitions into. *)

val scheme_slug : Gecko_core.Scheme.t -> string
(** CLI/JSON name: [nvp | ratchet | gecko | gecko-noprune]. *)

val scheme_of_slug : string -> Gecko_core.Scheme.t option
val board_slug : board_kind -> string
val board_of_slug : string -> board_kind option

val to_json : t -> Gecko_obs.Json.t
val of_json : Gecko_obs.Json.t -> t
(** Raises [Invalid_argument] on malformed input.  Round-trips exactly. *)

val equal : t -> t -> bool

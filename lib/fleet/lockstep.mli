(** The batched fleet shard engine.

    Steps a window of devices in lockstep over the shared pre-decoded
    program: each device is a {!Gecko_machine.Machine.Step} handle
    issued whole-block turns ({!Gecko_machine.Machine.Step.step_block})
    round-robin.  A turn dispatches a pre-decoded block when the
    fast-path guard holds and falls out to one fully-checked scalar step
    otherwise (attack edge, brown-out margin, checkpoint, monitor
    deadline, sleep), rejoining block dispatch at the next block
    boundary — [Machine.run] is literally [while step_block do () done],
    so per-device physics is bit-identical to the scalar engine by
    construction.

    Each window of [width] consecutive devices runs to completion, its
    results are buffered (O(width), constant in the campaign size) and
    emitted in ascending device-id order — the {!Shard.acc} fold
    invariant — so shard results, merged reports, and telemetry are
    byte-identical to the scalar engine at any [--jobs]. *)

val default_width : int
(** 256 devices per window. *)

val width : unit -> int
(** The window width: [GECKO_LOCKSTEP_WIDTH] when set to a positive
    integer, else {!default_width}. *)

val iter_devices :
  ?telemetry:Telemetry.config ->
  spec:Spec.t ->
  field:Field.t ->
  Shard.device array ->
  f:
    (Shard.device ->
    Agg.t * Gecko_obs.Metrics.registry * Telemetry.t option ->
    unit) ->
  unit
(** Run every device of the array under the lockstep engine, calling [f]
    with each device's contribution in ascending array order.  Live
    state is bounded by the window width: a finished device's handle is
    dropped before [f] sees its (small) result, so memory per finished
    device is O(1). *)

val run_shard :
  ?telemetry:Telemetry.config ->
  spec:Spec.t ->
  field:Field.t ->
  int ->
  Shard.device array ->
  Shard.t
(** {!iter_devices} folded through a {!Shard.acc}: the lockstep
    equivalent of the scalar shard runner, byte-identical results. *)

module Json = Gecko_obs.Json
module Acc = Gecko_util.Stats.Acc
module M = Gecko_machine.Machine
module Schedule = Gecko_emi.Schedule

type t = {
  devices : int;
  attacked_devices : int;
  exposure_s : float;
  instructions : int;
  completions : int;
  reboots : int;
  brownouts : int;
  jit_checkpoints : int;
  jit_checkpoint_failures : int;
  rollbacks : int;
  recovery_block_runs : int;
  misspeculations : int;
  detections : int;
  reenables : int;
  corruptions : int;
  io_outs : int;
  app_seconds : float;
  stalled_s : float;
  sim_seconds : float;
  energy_drained_j : float;
  energy_sourced_j : float;
  progress : Acc.t;
  detect_latency : Acc.t;
}

let empty =
  {
    devices = 0;
    attacked_devices = 0;
    exposure_s = 0.;
    instructions = 0;
    completions = 0;
    reboots = 0;
    brownouts = 0;
    jit_checkpoints = 0;
    jit_checkpoint_failures = 0;
    rollbacks = 0;
    recovery_block_runs = 0;
    misspeculations = 0;
    detections = 0;
    reenables = 0;
    corruptions = 0;
    io_outs = 0;
    app_seconds = 0.;
    stalled_s = 0.;
    sim_seconds = 0.;
    energy_drained_j = 0.;
    energy_sourced_j = 0.;
    progress = Acc.empty;
    detect_latency = Acc.empty;
  }

let merge a b =
  {
    devices = a.devices + b.devices;
    attacked_devices = a.attacked_devices + b.attacked_devices;
    exposure_s = a.exposure_s +. b.exposure_s;
    instructions = a.instructions + b.instructions;
    completions = a.completions + b.completions;
    reboots = a.reboots + b.reboots;
    brownouts = a.brownouts + b.brownouts;
    jit_checkpoints = a.jit_checkpoints + b.jit_checkpoints;
    jit_checkpoint_failures = a.jit_checkpoint_failures + b.jit_checkpoint_failures;
    rollbacks = a.rollbacks + b.rollbacks;
    recovery_block_runs = a.recovery_block_runs + b.recovery_block_runs;
    misspeculations = a.misspeculations + b.misspeculations;
    detections = a.detections + b.detections;
    reenables = a.reenables + b.reenables;
    corruptions = a.corruptions + b.corruptions;
    io_outs = a.io_outs + b.io_outs;
    app_seconds = a.app_seconds +. b.app_seconds;
    stalled_s = a.stalled_s +. b.stalled_s;
    sim_seconds = a.sim_seconds +. b.sim_seconds;
    energy_drained_j = a.energy_drained_j +. b.energy_drained_j;
    energy_sourced_j = a.energy_sourced_j +. b.energy_sourced_j;
    progress = Acc.merge a.progress b.progress;
    detect_latency = Acc.merge a.detect_latency b.detect_latency;
  }

(* Detection latencies: match each attack window with the first detection
   event inside it (events and windows are both time-ordered, each
   detection consumed at most once). *)
let detection_latencies ~(schedule : Schedule.t) (o : M.outcome) =
  let detections =
    List.filter_map
      (fun (e : M.event) ->
        match e.M.ev_kind with M.Ev_detection -> Some e.M.ev_time | _ -> None)
      o.M.events
  in
  let rec go acc dets (ws : Schedule.window list) =
    match ws with
    | [] -> List.rev acc
    | w :: ws' -> (
        match
          List.find_opt
            (fun t -> t >= w.Schedule.t_start && t <= w.Schedule.t_end)
            dets
        with
        | Some t ->
            go
              ((t -. w.Schedule.t_start) :: acc)
              (List.filter (fun t' -> t' > t) dets)
              ws'
        | None -> go acc dets ws')
  in
  go [] detections (Schedule.windows schedule)

let of_device ~(schedule : Schedule.t) ~energy_drained_j ~energy_sourced_j
    (o : M.outcome) =
  let exposure = Field.exposure_seconds schedule in
  let finite f = if Float.is_nan f then 0. else f in
  {
    devices = 1;
    attacked_devices = (if Schedule.windows schedule = [] then 0 else 1);
    exposure_s = exposure;
    instructions = o.M.instructions;
    completions = o.M.completions;
    reboots = o.M.reboots;
    brownouts = o.M.brownouts;
    jit_checkpoints = o.M.jit_checkpoints;
    jit_checkpoint_failures = o.M.jit_checkpoint_failures;
    rollbacks = o.M.rollbacks;
    recovery_block_runs = o.M.recovery_block_runs;
    misspeculations = o.M.misspeculations;
    detections = o.M.detections;
    reenables = o.M.reenables;
    corruptions = o.M.corruptions;
    io_outs = o.M.io_out_count;
    app_seconds = o.M.app_seconds;
    stalled_s = Float.max 0. (o.M.sim_time -. o.M.app_seconds);
    sim_seconds = o.M.sim_time;
    energy_drained_j = finite energy_drained_j;
    energy_sourced_j = finite energy_sourced_j;
    progress = Acc.add Acc.empty (M.forward_progress o);
    detect_latency =
      List.fold_left Acc.add Acc.empty (detection_latencies ~schedule o);
  }

let checkpoint_failure_rate t =
  if t.jit_checkpoints = 0 then 0.
  else float_of_int t.jit_checkpoint_failures /. float_of_int t.jit_checkpoints

(* --- exact JSON round-trip (campaign snapshots) ----------------------- *)

let acc_to_json (a : Acc.t) =
  if Acc.is_empty a then Json.Assoc [ ("n", Json.Int 0) ]
  else
    Json.Assoc
      [
        ("n", Json.Int a.Acc.n);
        ("sum", Json.Float a.Acc.sum);
        ("sumsq", Json.Float a.Acc.sumsq);
        ("min", Json.Float a.Acc.min_v);
        ("max", Json.Float a.Acc.max_v);
      ]

let acc_of_json j =
  let bad msg = invalid_arg ("Fleet.Agg.acc_of_json: " ^ msg) in
  match Json.member "n" j with
  | Some (Json.Int 0) -> Acc.empty
  | Some (Json.Int n) ->
      let flt k =
        match Option.bind (Json.member k j) Json.to_float_opt with
        | Some f -> f
        | None -> bad ("missing " ^ k)
      in
      {
        Acc.n;
        sum = flt "sum";
        sumsq = flt "sumsq";
        min_v = flt "min";
        max_v = flt "max";
      }
  | _ -> bad "missing n"

let to_json t =
  Json.Assoc
    [
      ("devices", Json.Int t.devices);
      ("attacked_devices", Json.Int t.attacked_devices);
      ("exposure_s", Json.Float t.exposure_s);
      ("instructions", Json.Int t.instructions);
      ("completions", Json.Int t.completions);
      ("reboots", Json.Int t.reboots);
      ("brownouts", Json.Int t.brownouts);
      ("jit_checkpoints", Json.Int t.jit_checkpoints);
      ("jit_checkpoint_failures", Json.Int t.jit_checkpoint_failures);
      ("rollbacks", Json.Int t.rollbacks);
      ("recovery_block_runs", Json.Int t.recovery_block_runs);
      ("misspeculations", Json.Int t.misspeculations);
      ("detections", Json.Int t.detections);
      ("reenables", Json.Int t.reenables);
      ("corruptions", Json.Int t.corruptions);
      ("io_outs", Json.Int t.io_outs);
      ("app_seconds", Json.Float t.app_seconds);
      ("stalled_s", Json.Float t.stalled_s);
      ("sim_seconds", Json.Float t.sim_seconds);
      ("energy_drained_j", Json.Float t.energy_drained_j);
      ("energy_sourced_j", Json.Float t.energy_sourced_j);
      ("progress", acc_to_json t.progress);
      ("detect_latency", acc_to_json t.detect_latency);
    ]

let of_json j =
  let bad msg = invalid_arg ("Fleet.Agg.of_json: " ^ msg) in
  let field k =
    match Json.member k j with Some v -> v | None -> bad ("missing " ^ k)
  in
  let int k = match field k with Json.Int i -> i | _ -> bad (k ^ ": expected int") in
  let flt k =
    match Json.to_float_opt (field k) with
    | Some f -> f
    | None -> bad (k ^ ": expected number")
  in
  {
    devices = int "devices";
    attacked_devices = int "attacked_devices";
    exposure_s = flt "exposure_s";
    instructions = int "instructions";
    completions = int "completions";
    reboots = int "reboots";
    brownouts = int "brownouts";
    jit_checkpoints = int "jit_checkpoints";
    jit_checkpoint_failures = int "jit_checkpoint_failures";
    rollbacks = int "rollbacks";
    recovery_block_runs = int "recovery_block_runs";
    (* Absent in snapshots written before the speculative pipeline. *)
    misspeculations =
      (match Json.member "misspeculations" j with
      | Some (Json.Int i) -> i
      | Some _ -> bad "misspeculations: expected int"
      | None -> 0);
    detections = int "detections";
    reenables = int "reenables";
    corruptions = int "corruptions";
    io_outs = int "io_outs";
    app_seconds = flt "app_seconds";
    stalled_s = flt "stalled_s";
    sim_seconds = flt "sim_seconds";
    energy_drained_j = flt "energy_drained_j";
    energy_sourced_j = flt "energy_sourced_j";
    progress = acc_of_json (field "progress");
    detect_latency = acc_of_json (field "detect_latency");
  }

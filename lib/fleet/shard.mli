(** The per-shard substrate both fleet engines share: the elaborated
    device record, the single source of machine options, the
    outcome-to-aggregate step, the shard result value, and a streaming
    accumulator that folds devices into the shard monoids the moment
    they finish.

    The invariant every engine must honor: devices fold into an {!acc}
    in ascending device-id order.  [Agg.merge] and the metrics
    histograms add floats, and float addition is not associative, so one
    canonical fold order is what makes shard results — and therefore
    merged reports and telemetry streams — byte-identical across
    engines and pool widths. *)

type device = {
  id : int;
  workload : string;
  scheme : Gecko_core.Scheme.t;
  board : Spec.board_kind;
  x : float;
  y : float;
  seed : int;
}

val board_of : Spec.board_kind -> Gecko_machine.Board.t
(** The catalogue board for a kind; memoized (boards are immutable), so
    every device of a campaign shares the two physical records. *)

val device_image :
  device ->
  Gecko_machine.Board.t
  * Gecko_isa.Link.image
  * Gecko_core.Meta.t
  * Gecko_machine.Decode.t
(** Board + compiled image + metadata + pre-decoded stream for a device,
    every layer memoized process-wide (see
    {!Gecko_harness.Workbench.decoded_workload}). *)

val device_options :
  ?trace:Gecko_obs.Trace.t ->
  ?flight:Gecko_obs.Flight.t ->
  spec:Spec.t ->
  schedule:Gecko_emi.Schedule.t ->
  reg:Gecko_obs.Metrics.registry ->
  dec:Gecko_machine.Decode.t ->
  device ->
  Gecko_machine.Machine.options
(** The one option record every path shares — scalar runner, lockstep
    [Step] handles, forensic replay — differing only in the pure
    observers, so a device's physics is bit-identical on every path. *)

val device_telemetry :
  Telemetry.config ->
  device ->
  latencies:float list ->
  flight:Gecko_obs.Json.t option ->
  Agg.t ->
  Telemetry.t

val device_result :
  ?telemetry:Telemetry.config ->
  schedule:Gecko_emi.Schedule.t ->
  reg:Gecko_obs.Metrics.registry ->
  flight:Gecko_obs.Flight.t option ->
  device ->
  Gecko_machine.Machine.outcome ->
  Agg.t * Gecko_obs.Metrics.registry * Telemetry.t option
(** Outcome -> the device's shard contribution (aggregate, run metrics,
    optional telemetry).  Both engines finish a device through here. *)

val flight_recorder : Telemetry.config option -> Gecko_obs.Flight.t option
(** A flight recorder sized per the telemetry config, when armed. *)

val run_device_full :
  ?trace:Gecko_obs.Trace.t ->
  ?flight:Gecko_obs.Flight.t ->
  spec:Spec.t ->
  field:Field.t ->
  device ->
  Gecko_machine.Machine.outcome
  * Agg.t
  * Gecko_obs.Metrics.registry
  * float list
(** Scalar run with full observability (replay's entry point): outcome,
    aggregate, metrics registry, detection latencies. *)

val run_device :
  ?telemetry:Telemetry.config ->
  spec:Spec.t ->
  field:Field.t ->
  device ->
  Agg.t * Gecko_obs.Metrics.registry * Telemetry.t option
(** The scalar engine's device runner (see {!Campaign.run_device}). *)

(** {2 Shard results} *)

type t = {
  sr_id : int;
  sr_agg : Agg.t;
  sr_per_scheme : (string * Agg.t) list;
  sr_per_workload : (string * Agg.t) list;
  sr_metrics : Gecko_obs.Json.t;
      (** Shard metrics registry, [Metrics.to_persist] form. *)
  sr_telemetry : Telemetry.t option;
      (** Present when the campaign ran with telemetry. *)
}

val to_json : t -> Gecko_obs.Json.t
val of_json : Gecko_obs.Json.t -> t
(** Exact round-trip; raises [Invalid_argument] on malformed input. *)

(** {2 Streaming accumulator} *)

val group_add : (string, Agg.t) Hashtbl.t -> string -> Agg.t -> unit
(** Fold an aggregate into a keyed group table (in call order). *)

val sorted_groups : (string, Agg.t) Hashtbl.t -> (string * Agg.t) list
(** The group table as an association list, keys ascending. *)

type acc
(** A shard under construction.  O(#groups + top_k) memory however many
    devices fold in. *)

val acc_create : ?telemetry:Telemetry.config -> int -> acc

val acc_add :
  acc ->
  device ->
  Agg.t * Gecko_obs.Metrics.registry * Telemetry.t option ->
  unit
(** Fold one finished device in.  Call in ascending device-id order —
    the byte-identity invariant. *)

val acc_finish : acc -> t

(** The merged campaign report: totals plus per-scheme and per-workload
    aggregates and the fleet-wide merged metrics registry.

    Built exclusively from shard aggregates merged in shard order, so its
    JSON and ASCII renderings are byte-identical for the same spec at any
    [--jobs] and any shard size, and identical between an uninterrupted
    campaign and one resumed from a snapshot. *)

type t = {
  spec : Spec.t;
  total : Agg.t;
  per_scheme : (string * Agg.t) list;  (** Sorted by scheme slug. *)
  per_workload : (string * Agg.t) list;  (** Sorted by workload name. *)
  metrics_persist : Gecko_obs.Json.t;
      (** Fleet-merged {!Gecko_obs.Metrics} registry in
          [Metrics.to_persist] form. *)
}

val schema : string
(** ["gecko.fleet-report/1"]. *)

val to_json : t -> Gecko_obs.Json.t

val of_json : Gecko_obs.Json.t -> t
(** Parses the aggregate sections (the human-facing [metrics] export is
    not round-trippable and comes back empty).  Raises
    [Invalid_argument] on malformed input or a schema mismatch. *)

val render : t -> string
(** ASCII summary: campaign header plus per-scheme and per-workload
    tables. *)

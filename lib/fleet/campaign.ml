module Json = Gecko_obs.Json
module Metrics = Gecko_obs.Metrics
module Rng = Gecko_util.Rng
module M = Gecko_machine.Machine
module Board = Gecko_machine.Board
module W = Gecko_workloads.Workload
module Workbench = Gecko_harness.Workbench

type device = {
  id : int;
  workload : string;
  scheme : Gecko_core.Scheme.t;
  board : Spec.board_kind;
  x : float;
  y : float;
  seed : int;
}

(* One RNG stream per device, split from the campaign seed before anything
   else consumes the master stream; the field draws its trajectories from
   a further split.  Device attributes depend only on (campaign seed,
   device id), never on shard shape or execution order. *)
let elaborate (spec : Spec.t) =
  let master = Rng.create spec.Spec.seed in
  let streams = Array.init spec.Spec.devices (fun _ -> Rng.split master) in
  let field =
    Field.make ~attackers:spec.Spec.attackers ~area_m:spec.Spec.area_m
      ~speed:spec.Spec.attacker_speed_mps ~duration:spec.Spec.duration
      ~steps:spec.Spec.field_steps ~freq_mhz:spec.Spec.freq_mhz
      ~power_dbm:spec.Spec.power_dbm ~range_m:spec.Spec.range_m
      (Rng.split master)
  in
  let workloads = Array.of_list spec.Spec.workload_mix in
  let schemes = Array.of_list spec.Spec.scheme_mix in
  let boards = Array.of_list spec.Spec.board_mix in
  let devices =
    Array.mapi
      (fun id rng ->
        let x = Rng.float rng spec.Spec.area_m in
        let y = Rng.float rng spec.Spec.area_m in
        {
          id;
          workload = Rng.choose rng workloads;
          scheme = Rng.choose rng schemes;
          board = Rng.choose rng boards;
          x;
          y;
          seed = Rng.int rng 0x3FFFFFFF;
        })
      streams
  in
  (devices, field)

(* --- single device ---------------------------------------------------- *)

let board_of = function
  | Spec.Attack_rig -> Board.attack_rig ()
  | Spec.Bench -> Board.default ()

let run_device ~(spec : Spec.t) ~field (d : device) =
  let schedule = Field.schedule_at field ~x:d.x ~y:d.y in
  let image, meta = Workbench.compiled d.scheme ((W.find d.workload).W.build ()) in
  let reg = Metrics.create () in
  let o =
    M.run ~board:(board_of d.board) ~image ~meta
      {
        M.default_options with
        schedule;
        limit = M.Sim_time spec.Spec.duration;
        max_sim_time = spec.Spec.duration +. 1.;
        restart_on_halt = true;
        record_events = true;
        seed = d.seed;
        metrics = Some reg;
      }
  in
  let gauge name = Metrics.gauge_value (Metrics.gauge reg name) in
  let agg =
    Agg.of_device ~schedule ~energy_drained_j:(gauge "energy.drained_j")
      ~energy_sourced_j:(gauge "energy.sourced_j") o
  in
  (agg, reg)

(* --- shards ----------------------------------------------------------- *)

type shard_result = {
  sr_id : int;
  sr_agg : Agg.t;
  sr_per_scheme : (string * Agg.t) list;
  sr_per_workload : (string * Agg.t) list;
  sr_metrics : Json.t;  (* Metrics.to_persist of the shard registry *)
}

let merge_groups groups =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (k, a) ->
      let prev = Option.value ~default:Agg.empty (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (Agg.merge prev a))
    groups;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let shard_devices (spec : Spec.t) (devices : device array) sid =
  let lo = sid * spec.Spec.shard_size in
  let hi = min (lo + spec.Spec.shard_size) spec.Spec.devices in
  Array.sub devices lo (hi - lo)

(* Each shard runs its devices serially in id order and aggregates
   locally: one Agg per scheme/workload group plus a shard-local metrics
   registry.  The shard result is a pure value; reduction happens later,
   in shard order, whatever the pool width. *)
let run_shard ~spec ~field ~devices sid =
  let reg = Metrics.create () in
  let agg = ref Agg.empty in
  let per_scheme = ref [] and per_workload = ref [] in
  Array.iter
    (fun d ->
      let a, dev_reg = run_device ~spec ~field d in
      Metrics.merge_into reg dev_reg;
      agg := Agg.merge !agg a;
      per_scheme := (Spec.scheme_slug d.scheme, a) :: !per_scheme;
      per_workload := (d.workload, a) :: !per_workload)
    (shard_devices spec devices sid);
  {
    sr_id = sid;
    sr_agg = !agg;
    sr_per_scheme = merge_groups !per_scheme;
    sr_per_workload = merge_groups !per_workload;
    sr_metrics = Metrics.to_persist reg;
  }

let shard_to_json sr =
  Json.Assoc
    [
      ("shard", Json.Int sr.sr_id);
      ("agg", Agg.to_json sr.sr_agg);
      ( "per_scheme",
        Json.Assoc (List.map (fun (k, a) -> (k, Agg.to_json a)) sr.sr_per_scheme)
      );
      ( "per_workload",
        Json.Assoc
          (List.map (fun (k, a) -> (k, Agg.to_json a)) sr.sr_per_workload) );
      ("metrics", sr.sr_metrics);
    ]

let shard_of_json j =
  let bad msg = invalid_arg ("Fleet.Campaign.shard_of_json: " ^ msg) in
  let field k =
    match Json.member k j with Some v -> v | None -> bad ("missing " ^ k)
  in
  let groups k =
    match field k with
    | Json.Assoc kvs -> List.map (fun (n, v) -> (n, Agg.of_json v)) kvs
    | _ -> bad (k ^ " is not an object")
  in
  {
    sr_id = (match field "shard" with Json.Int i -> i | _ -> bad "shard id");
    sr_agg = Agg.of_json (field "agg");
    sr_per_scheme = groups "per_scheme";
    sr_per_workload = groups "per_workload";
    sr_metrics = field "metrics";
  }

(* --- snapshots (gecko.fleet/1) ---------------------------------------- *)

let snapshot_schema = "gecko.fleet/1"

let snapshot_json (spec : Spec.t) completed =
  Json.Assoc
    [
      ("schema", Json.String snapshot_schema);
      ("spec", Spec.to_json spec);
      ("total_shards", Json.Int (Spec.shards spec));
      ("shards", Json.List (List.map shard_to_json completed));
    ]

(* Write-then-rename, so a campaign killed mid-write leaves the previous
   snapshot intact — the fleet simulator checkpoints like its subject. *)
let write_snapshot path json =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Json.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let parse_snapshot contents =
  let bad msg = invalid_arg ("Fleet.Campaign.parse_snapshot: " ^ msg) in
  match Json.parse contents with
  | Error e -> bad ("malformed JSON: " ^ e)
  | Ok j ->
      (match Json.member "schema" j with
      | Some (Json.String s) when s = snapshot_schema -> ()
      | Some (Json.String s) ->
          bad (Printf.sprintf "schema %S, expected %S" s snapshot_schema)
      | _ -> bad "missing schema");
      let spec =
        match Json.member "spec" j with
        | Some sj -> Spec.of_json sj
        | None -> bad "missing spec"
      in
      let shards =
        match Json.member "shards" j with
        | Some (Json.List xs) -> List.map shard_of_json xs
        | _ -> bad "missing shards"
      in
      let total = Spec.shards spec in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun sr ->
          if sr.sr_id < 0 || sr.sr_id >= total then
            bad (Printf.sprintf "shard id %d out of range" sr.sr_id);
          if Hashtbl.mem seen sr.sr_id then
            bad (Printf.sprintf "duplicate shard %d" sr.sr_id);
          Hashtbl.replace seen sr.sr_id ())
        shards;
      (spec, shards)

let load_snapshot path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  parse_snapshot contents

(* --- the campaign ----------------------------------------------------- *)

type result = {
  report : Report.t option;  (* None when stopped before the last shard *)
  completed_shards : int;
  total_shards : int;
  resumed_shards : int;
  devices_run : int;
  instructions_run : int;
}

let report_of_shards (spec : Spec.t) completed =
  let sorted = List.sort (fun a b -> compare a.sr_id b.sr_id) completed in
  let reg = Metrics.create () in
  List.iter (fun sr -> Metrics.merge_into reg (Metrics.of_persist sr.sr_metrics))
    sorted;
  {
    Report.spec;
    total = List.fold_left (fun acc sr -> Agg.merge acc sr.sr_agg) Agg.empty sorted;
    per_scheme = merge_groups (List.concat_map (fun sr -> sr.sr_per_scheme) sorted);
    per_workload =
      merge_groups (List.concat_map (fun sr -> sr.sr_per_workload) sorted);
    metrics_persist = Metrics.to_persist reg;
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: xs -> drop (n - 1) xs

let run ?snapshot_path ?resume ?max_shards (spec : Spec.t) =
  ignore (Spec.validate spec);
  (match max_shards with
  | Some n when n < 1 ->
      invalid_arg "Fleet.Campaign.run: max_shards must be >= 1"
  | Some _ | None -> ());
  let resumed =
    match resume with
    | None -> []
    | Some (rspec, shards) ->
        if not (Spec.equal rspec spec) then
          invalid_arg
            "Fleet.Campaign.run: snapshot spec differs from the requested \
             campaign";
        shards
  in
  let devices, field = elaborate spec in
  let total = Spec.shards spec in
  let done_ids = Hashtbl.create 64 in
  List.iter (fun sr -> Hashtbl.replace done_ids sr.sr_id ()) resumed;
  let pending =
    List.filter
      (fun sid -> not (Hashtbl.mem done_ids sid))
      (List.init total Fun.id)
  in
  let pending =
    match max_shards with Some n -> take n pending | None -> pending
  in
  let completed = ref resumed in
  let snapshot () =
    match snapshot_path with
    | None -> ()
    | Some path ->
        let sorted =
          List.sort (fun a b -> compare a.sr_id b.sr_id) !completed
        in
        write_snapshot path (snapshot_json spec sorted)
  in
  let wave = max 1 (Workbench.jobs ()) in
  let rec waves todo =
    match take wave todo with
    | [] -> ()
    | chunk ->
        let results =
          Workbench.pmap (fun sid -> run_shard ~spec ~field ~devices sid) chunk
        in
        completed := !completed @ results;
        snapshot ();
        waves (drop wave todo)
  in
  waves pending;
  let new_shards =
    (* The freshly-run results are the suffix of [completed]. *)
    drop (List.length resumed) !completed
  in
  let devices_run =
    List.fold_left (fun n sr -> n + sr.sr_agg.Agg.devices) 0 new_shards
  in
  let instructions_run =
    List.fold_left (fun n sr -> n + sr.sr_agg.Agg.instructions) 0 new_shards
  in
  let all_done = List.length !completed = total in
  {
    report = (if all_done then Some (report_of_shards spec !completed) else None);
    completed_shards = List.length !completed;
    total_shards = total;
    resumed_shards = List.length resumed;
    devices_run;
    instructions_run;
  }

module Json = Gecko_obs.Json
module Metrics = Gecko_obs.Metrics
module Rng = Gecko_util.Rng
module M = Gecko_machine.Machine
module Workbench = Gecko_harness.Workbench

type device = Shard.device = {
  id : int;
  workload : string;
  scheme : Gecko_core.Scheme.t;
  board : Spec.board_kind;
  x : float;
  y : float;
  seed : int;
}

(* One RNG stream per device, split from the campaign seed before anything
   else consumes the master stream; the field draws its trajectories from
   a further split.  Device attributes depend only on (campaign seed,
   device id), never on shard shape or execution order. *)
let elaborate (spec : Spec.t) =
  let master = Rng.create spec.Spec.seed in
  let streams = Array.init spec.Spec.devices (fun _ -> Rng.split master) in
  let field =
    Field.make ~attackers:spec.Spec.attackers ~area_m:spec.Spec.area_m
      ~speed:spec.Spec.attacker_speed_mps ~duration:spec.Spec.duration
      ~steps:spec.Spec.field_steps ~freq_mhz:spec.Spec.freq_mhz
      ~power_dbm:spec.Spec.power_dbm ~range_m:spec.Spec.range_m
      (Rng.split master)
  in
  let workloads = Array.of_list spec.Spec.workload_mix in
  let schemes = Array.of_list spec.Spec.scheme_mix in
  let boards = Array.of_list spec.Spec.board_mix in
  let devices =
    Array.mapi
      (fun id rng ->
        let x = Rng.float rng spec.Spec.area_m in
        let y = Rng.float rng spec.Spec.area_m in
        {
          id;
          workload = Rng.choose rng workloads;
          scheme = Rng.choose rng schemes;
          board = Rng.choose rng boards;
          x;
          y;
          seed = Rng.int rng 0x3FFFFFFF;
        })
      streams
  in
  (devices, field)

(* --- single device ---------------------------------------------------- *)

let run_device = Shard.run_device

(* --- engines ----------------------------------------------------------- *)

(* The engine is a runtime execution strategy, never part of the spec:
   specs are embedded in reports and snapshots, which must be
   byte-identical whichever engine produced them. *)
type engine = Scalar | Lockstep

let engine_slug = function Scalar -> "scalar" | Lockstep -> "lockstep"

let engine_of_slug = function
  | "scalar" -> Some Scalar
  | "lockstep" -> Some Lockstep
  | _ -> None

let default_engine = Lockstep

(* --- shards ----------------------------------------------------------- *)

type shard_result = Shard.t = {
  sr_id : int;
  sr_agg : Agg.t;
  sr_per_scheme : (string * Agg.t) list;
  sr_per_workload : (string * Agg.t) list;
  sr_metrics : Json.t;  (* Metrics.to_persist of the shard registry *)
  sr_telemetry : Telemetry.t option;  (* when the campaign ran with telemetry *)
}

let merge_groups groups =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, a) -> Shard.group_add tbl k a) groups;
  Shard.sorted_groups tbl

let shard_devices (spec : Spec.t) (devices : device array) sid =
  let lo = sid * spec.Spec.shard_size in
  let hi = min (lo + spec.Spec.shard_size) spec.Spec.devices in
  Array.sub devices lo (hi - lo)

(* Each shard runs its devices in id order and streams them into the
   shard accumulator the moment they finish — no per-device list
   survives.  The shard result is a pure value; reduction happens later,
   in shard order, whatever the pool width.  Both engines share the
   accumulator, so their results are byte-identical. *)
let run_shard ?(engine = default_engine) ?telemetry ~spec ~field ~devices sid =
  let devs = shard_devices spec devices sid in
  match engine with
  | Lockstep -> Lockstep.run_shard ?telemetry ~spec ~field sid devs
  | Scalar ->
      let acc = Shard.acc_create ?telemetry sid in
      Array.iter
        (fun d -> Shard.acc_add acc d (Shard.run_device ?telemetry ~spec ~field d))
        devs;
      Shard.acc_finish acc

let shard_to_json = Shard.to_json
let shard_of_json = Shard.of_json

(* --- snapshots (gecko.fleet/1) ---------------------------------------- *)

let snapshot_schema = "gecko.fleet/1"

let snapshot_json (spec : Spec.t) completed =
  Json.Assoc
    [
      ("schema", Json.String snapshot_schema);
      ("spec", Spec.to_json spec);
      ("total_shards", Json.Int (Spec.shards spec));
      ("shards", Json.List (List.map shard_to_json completed));
    ]

(* Write-then-rename, so a campaign killed mid-write leaves the previous
   snapshot intact — the fleet simulator checkpoints like its subject. *)
let write_snapshot path json =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Json.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let parse_snapshot contents =
  let bad msg = invalid_arg ("Fleet.Campaign.parse_snapshot: " ^ msg) in
  match Json.parse contents with
  | Error e -> bad ("malformed JSON: " ^ e)
  | Ok j ->
      (match Json.member "schema" j with
      | Some (Json.String s) when s = snapshot_schema -> ()
      | Some (Json.String s) ->
          bad (Printf.sprintf "schema %S, expected %S" s snapshot_schema)
      | _ -> bad "missing schema");
      let spec =
        match Json.member "spec" j with
        | Some sj -> Spec.of_json sj
        | None -> bad "missing spec"
      in
      let shards =
        match Json.member "shards" j with
        | Some (Json.List xs) -> List.map shard_of_json xs
        | _ -> bad "missing shards"
      in
      let total = Spec.shards spec in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun sr ->
          if sr.sr_id < 0 || sr.sr_id >= total then
            bad (Printf.sprintf "shard id %d out of range" sr.sr_id);
          if Hashtbl.mem seen sr.sr_id then
            bad (Printf.sprintf "duplicate shard %d" sr.sr_id);
          Hashtbl.replace seen sr.sr_id ())
        shards;
      (spec, shards)

let load_snapshot path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  parse_snapshot contents

(* --- the campaign ----------------------------------------------------- *)

type result = {
  report : Report.t option;  (* None when stopped before the last shard *)
  completed_shards : int;
  total_shards : int;
  resumed_shards : int;
  devices_run : int;
  instructions_run : int;
  telemetry : Telemetry.t option;  (* merged in shard-id order *)
}

let report_of_shards (spec : Spec.t) completed =
  let sorted = List.sort (fun a b -> compare a.sr_id b.sr_id) completed in
  let reg = Metrics.create () in
  List.iter (fun sr -> Metrics.merge_into reg (Metrics.of_persist sr.sr_metrics))
    sorted;
  {
    Report.spec;
    total = List.fold_left (fun acc sr -> Agg.merge acc sr.sr_agg) Agg.empty sorted;
    per_scheme = merge_groups (List.concat_map (fun sr -> sr.sr_per_scheme) sorted);
    per_workload =
      merge_groups (List.concat_map (fun sr -> sr.sr_per_workload) sorted);
    metrics_persist = Metrics.to_persist reg;
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: xs -> drop (n - 1) xs

(* Merged telemetry of a shard set, in shard-id order (the one true
   reduction, like {!report_of_shards}).  [None] when no shard carries
   telemetry. *)
let telemetry_of_shards completed =
  let sorted = List.sort (fun a b -> compare a.sr_id b.sr_id) completed in
  List.fold_left
    (fun acc sr ->
      match (acc, sr.sr_telemetry) with
      | None, t -> t
      | Some a, Some t -> Some (Telemetry.merge a t)
      | Some _, None -> acc)
    None sorted

(* The gecko.fleet-telemetry/1 JSONL stream: a header record, one record
   per completed shard (in completion order — which is shard-id order
   within the resumed prefix and within the freshly-run suffix, so the
   stream is byte-identical at any pool width), a [final] record with
   the shard-id-order merge, and last a clearly-marked
   [nondeterministic] record carrying the only wall-clock-derived
   fields.  `cmp` streams from different runs after stripping that one
   line. *)
let stream_header (spec : Spec.t) total (c : Telemetry.config) =
  Json.Assoc
    [
      ("schema", Json.String Telemetry.stream_schema);
      ("spec", Spec.to_json spec);
      ("total_shards", Json.Int total);
      ("total_devices", Json.Int spec.Spec.devices);
      ("config", Telemetry.config_to_json c);
    ]

let stream_shard_line sr ~resumed ~cumulative =
  Json.Assoc
    [
      ("shard", Json.Int sr.sr_id);
      ("resumed", Json.Bool resumed);
      ("devices", Json.Int sr.sr_agg.Agg.devices);
      ( "telemetry",
        match sr.sr_telemetry with
        | Some t -> Telemetry.to_json t
        | None -> Json.Null );
      ("cumulative", Telemetry.to_json cumulative);
    ]

let run ?(engine = default_engine) ?snapshot_path ?resume ?max_shards ?telemetry
    (spec : Spec.t) =
  ignore (Spec.validate spec);
  (match max_shards with
  | Some n when n < 1 ->
      invalid_arg "Fleet.Campaign.run: max_shards must be >= 1"
  | Some _ | None -> ());
  let resumed =
    match resume with
    | None -> []
    | Some (rspec, shards) ->
        if not (Spec.equal rspec spec) then
          invalid_arg
            "Fleet.Campaign.run: snapshot spec differs from the requested \
             campaign";
        shards
  in
  let devices, field = elaborate spec in
  let total = Spec.shards spec in
  let done_ids = Hashtbl.create 64 in
  List.iter (fun sr -> Hashtbl.replace done_ids sr.sr_id ()) resumed;
  let pending =
    List.filter
      (fun sid -> not (Hashtbl.mem done_ids sid))
      (List.init total Fun.id)
  in
  let pending =
    match max_shards with Some n -> take n pending | None -> pending
  in
  let completed = ref resumed in
  let snapshot () =
    match snapshot_path with
    | None -> ()
    | Some path ->
        let sorted =
          List.sort (fun a b -> compare a.sr_id b.sr_id) !completed
        in
        write_snapshot path (snapshot_json spec sorted)
  in
  (* Telemetry stream + live progress. *)
  let stream_oc =
    match telemetry with
    | Some { Telemetry.tel_path = Some path; _ } -> Some (open_out path)
    | Some _ | None -> None
  in
  let emit_json j =
    match stream_oc with
    | None -> ()
    | Some oc ->
        Json.to_channel oc j;
        output_char oc '\n';
        flush oc
  in
  let tel_cum =
    ref
      (Option.map
         (fun (c : Telemetry.config) ->
           Telemetry.empty ~top_k:c.Telemetry.tel_top_k)
         telemetry)
  in
  let devices_done = ref 0 in
  let emit_shard ~resumed:was_resumed sr =
    devices_done := !devices_done + sr.sr_agg.Agg.devices;
    match !tel_cum with
    | None -> ()
    | Some cum ->
        let cum =
          match sr.sr_telemetry with
          | Some t -> Telemetry.merge cum t
          | None -> cum
        in
        tel_cum := Some cum;
        emit_json (stream_shard_line sr ~resumed:was_resumed ~cumulative:cum)
  in
  let t_start = Gecko_util.Clock.now () in
  let progress_on =
    match telemetry with
    | Some c -> c.Telemetry.tel_progress
    | None -> false
  in
  let progress () =
    if progress_on then begin
      let wall = Gecko_util.Clock.elapsed t_start in
      let resumed_devices =
        List.fold_left (fun n sr -> n + sr.sr_agg.Agg.devices) 0 resumed
      in
      let fresh = !devices_done - resumed_devices in
      let rate = float_of_int fresh /. Float.max wall 1e-9 in
      let remaining = spec.Spec.devices - !devices_done in
      let eta =
        if fresh = 0 || remaining = 0 then ""
        else Printf.sprintf " | ETA %.0fs" (float_of_int remaining /. rate)
      in
      let anomalies =
        match !tel_cum with Some t -> t.Telemetry.anomalies | None -> 0
      in
      Printf.eprintf
        "\rfleet: %d/%d shards | %d/%d devices | %d anomalies | %.1f \
         devices/s%s   %!"
        (List.length !completed) total !devices_done spec.Spec.devices
        anomalies rate eta
    end
  in
  (match telemetry with
  | None -> ()
  | Some c ->
    emit_json (stream_header spec total c);
    (* Resumed shards replay into the stream first, in shard-id order. *)
    List.iter
      (fun sr -> emit_shard ~resumed:true sr)
      (List.sort (fun a b -> compare a.sr_id b.sr_id) resumed);
    progress ());
  let wave = max 1 (Workbench.jobs ()) in
  let rec waves todo =
    match take wave todo with
    | [] -> ()
    | chunk ->
        let results =
          Workbench.pmap
            (fun sid -> run_shard ~engine ?telemetry ~spec ~field ~devices sid)
            chunk
        in
        completed := !completed @ results;
        List.iter (emit_shard ~resumed:false) results;
        snapshot ();
        progress ();
        waves (drop wave todo)
  in
  waves pending;
  if progress_on then prerr_newline ();
  let new_shards =
    (* The freshly-run results are the suffix of [completed]. *)
    drop (List.length resumed) !completed
  in
  let devices_run =
    List.fold_left (fun n sr -> n + sr.sr_agg.Agg.devices) 0 new_shards
  in
  let instructions_run =
    List.fold_left (fun n sr -> n + sr.sr_agg.Agg.instructions) 0 new_shards
  in
  let all_done = List.length !completed = total in
  let final_telemetry = telemetry_of_shards !completed in
  (match (stream_oc, final_telemetry) with
  | Some _, Some t -> emit_json (Json.Assoc [ ("final", Telemetry.to_json t) ])
  | _ -> ());
  (* The only wall-clock-derived record, marked so deterministic
     consumers can strip it. *)
  (match stream_oc with
  | None -> ()
  | Some oc ->
      let wall = Gecko_util.Clock.elapsed t_start in
      emit_json
        (Json.Assoc
           [
             ( "nondeterministic",
               Json.Assoc
                 [
                   ("wall_seconds", Json.Float wall);
                   ( "devices_per_sec",
                     Json.Float (float_of_int devices_run /. Float.max wall 1e-9)
                   );
                   ("jobs", Json.Int (Workbench.jobs ()));
                 ] );
           ]);
      close_out oc);
  {
    report = (if all_done then Some (report_of_shards spec !completed) else None);
    completed_shards = List.length !completed;
    total_shards = total;
    resumed_shards = List.length resumed;
    devices_run;
    instructions_run;
    telemetry = final_telemetry;
  }

(* --- drill-down replay ------------------------------------------------- *)

type replay = {
  rp_device : device;
  rp_schedule : Gecko_emi.Schedule.t;
  rp_outcome : M.outcome;
  rp_agg : Agg.t;
  rp_telemetry : Telemetry.t;
  rp_flight : Gecko_obs.Flight.t;
  rp_trace : Gecko_obs.Trace.t;
  rp_metrics : Gecko_obs.Metrics.registry;
}

(* Replay always takes the scalar path — [Shard.run_device_full] with
   the forensics kit attached — so replaying a lockstep campaign's
   outlier is itself a cross-engine equality check. *)
let replay ?(config = Telemetry.default_config) ~device_id (spec : Spec.t) =
  ignore (Spec.validate spec);
  if device_id < 0 || device_id >= spec.Spec.devices then
    invalid_arg
      (Printf.sprintf "Fleet.Campaign.replay: device %d out of range [0, %d)"
         device_id spec.Spec.devices);
  let devices, field = elaborate spec in
  let d = devices.(device_id) in
  let flight =
    Gecko_obs.Flight.create ~capacity:config.Telemetry.tel_flight_capacity ()
  in
  let trace = Gecko_obs.Trace.create () in
  let o, agg, reg, latencies =
    Shard.run_device_full ~trace ~flight ~spec ~field d
  in
  let tel =
    Shard.device_telemetry
      { config with Telemetry.tel_top_k = max 1 config.Telemetry.tel_top_k }
      d ~latencies
      ~flight:(Some (Gecko_obs.Flight.to_json flight))
      agg
  in
  {
    rp_device = d;
    rp_schedule = Field.schedule_at field ~x:d.x ~y:d.y;
    rp_outcome = o;
    rp_agg = agg;
    rp_telemetry = tel;
    rp_flight = flight;
    rp_trace = trace;
    rp_metrics = reg;
  }

(* The last hop of the forensic workflow: anomaly -> replay -> shrink.
   The repro carries the device's *compiled* program (the shrinker
   re-links candidates without re-running the pipeline) and its local
   attack schedule; no forced fires — the schedule alone is what the
   device experienced. *)
let shrink_repro (rp : replay) =
  let d = rp.rp_device in
  let p, _meta =
    Gecko_core.Pipeline.compile d.scheme (Workbench.workload_program d.workload)
  in
  {
    Gecko_faultinject.Shrink.r_prog = p;
    r_schedule = rp.rp_schedule;
    r_fires = [];
  }

module Json = Gecko_obs.Json
module Metrics = Gecko_obs.Metrics
module M = Gecko_machine.Machine
module Board = Gecko_machine.Board
module Workbench = Gecko_harness.Workbench

type device = {
  id : int;
  workload : string;
  scheme : Gecko_core.Scheme.t;
  board : Spec.board_kind;
  x : float;
  y : float;
  seed : int;
}

(* Boards are immutable records (device constants + harvester shape), so
   the two catalogue entries are built once and shared by every device
   of a campaign — the decode cache then sees one physical image/device
   pair per (workload, scheme, board) key. *)
let attack_rig_board = Board.attack_rig ()
let bench_board = Board.default ()

let board_of = function
  | Spec.Attack_rig -> attack_rig_board
  | Spec.Bench -> bench_board

let device_image (d : device) =
  let board = board_of d.board in
  let image, meta, dec = Workbench.decoded_workload d.scheme d.workload ~board in
  (board, image, meta, dec)

(* The one option record every engine shares: the scalar per-device
   runner, the lockstep batch engine's [Step] handles, and [replay]'s
   full-forensics re-run differ only in the pure observers ([trace],
   [flight]), so a device produces bit-identical physics on every
   path. *)
let device_options ?trace ?flight ~(spec : Spec.t) ~schedule ~reg ~dec
    (d : device) =
  {
    M.default_options with
    schedule;
    limit = M.Sim_time spec.Spec.duration;
    max_sim_time = spec.Spec.duration +. 1.;
    restart_on_halt = true;
    record_events = true;
    seed = d.seed;
    metrics = Some reg;
    trace;
    flight;
    decoded = Some dec;
  }

let device_telemetry (c : Telemetry.config) (d : device) ~latencies ~flight agg
    =
  Telemetry.of_device ~weights:c.Telemetry.tel_weights
    ~top_k:c.Telemetry.tel_top_k ~id:d.id ~seed:d.seed ~workload:d.workload
    ~scheme:(Spec.scheme_slug d.scheme) ~board:(Spec.board_slug d.board)
    ~x:d.x ~y:d.y ~latencies ~flight agg

(* Outcome -> per-device contribution, shared by both engines so the
   aggregate a device folds into the shard is computed by exactly one
   piece of code whatever stepped it. *)
let device_result ?telemetry ~schedule ~reg ~flight (d : device)
    (o : M.outcome) =
  let gauge name = Metrics.gauge_value (Metrics.gauge reg name) in
  let agg =
    Agg.of_device ~schedule ~energy_drained_j:(gauge "energy.drained_j")
      ~energy_sourced_j:(gauge "energy.sourced_j") o
  in
  let latencies = Agg.detection_latencies ~schedule o in
  let tel =
    Option.map
      (fun c ->
        (* The dump rides along only if the device scores as an outlier;
           [Telemetry.of_device] drops it otherwise. *)
        let dump = Option.map Gecko_obs.Flight.to_json flight in
        device_telemetry c d ~latencies ~flight:dump agg)
      telemetry
  in
  (agg, reg, tel)

let run_device_full ?trace ?flight ~(spec : Spec.t) ~field (d : device) =
  let schedule = Field.schedule_at field ~x:d.x ~y:d.y in
  let board, image, meta, dec = device_image d in
  let reg = Metrics.create () in
  let o =
    M.run ~board ~image ~meta
      (device_options ?trace ?flight ~spec ~schedule ~reg ~dec d)
  in
  let gauge name = Metrics.gauge_value (Metrics.gauge reg name) in
  let agg =
    Agg.of_device ~schedule ~energy_drained_j:(gauge "energy.drained_j")
      ~energy_sourced_j:(gauge "energy.sourced_j") o
  in
  let latencies = Agg.detection_latencies ~schedule o in
  (o, agg, reg, latencies)

let flight_recorder telemetry =
  Option.map
    (fun (c : Telemetry.config) ->
      Gecko_obs.Flight.create ~capacity:c.Telemetry.tel_flight_capacity ())
    telemetry

let run_device ?telemetry ~(spec : Spec.t) ~field (d : device) =
  let flight = flight_recorder telemetry in
  let schedule = Field.schedule_at field ~x:d.x ~y:d.y in
  let board, image, meta, dec = device_image d in
  let reg = Metrics.create () in
  let o =
    M.run ~board ~image ~meta (device_options ?flight ~spec ~schedule ~reg ~dec d)
  in
  device_result ?telemetry ~schedule ~reg ~flight d o

(* --- shard results ----------------------------------------------------- *)

type t = {
  sr_id : int;
  sr_agg : Agg.t;
  sr_per_scheme : (string * Agg.t) list;
  sr_per_workload : (string * Agg.t) list;
  sr_metrics : Json.t;  (* Metrics.to_persist of the shard registry *)
  sr_telemetry : Telemetry.t option;  (* when the campaign ran with telemetry *)
}

let to_json sr =
  Json.Assoc
    ([
      ("shard", Json.Int sr.sr_id);
      ("agg", Agg.to_json sr.sr_agg);
      ( "per_scheme",
        Json.Assoc (List.map (fun (k, a) -> (k, Agg.to_json a)) sr.sr_per_scheme)
      );
      ( "per_workload",
        Json.Assoc
          (List.map (fun (k, a) -> (k, Agg.to_json a)) sr.sr_per_workload) );
      ("metrics", sr.sr_metrics);
    ]
    @
    match sr.sr_telemetry with
    | None -> []
    | Some t -> [ ("telemetry", Telemetry.to_json t) ])

let of_json j =
  let bad msg = invalid_arg ("Fleet.Campaign.shard_of_json: " ^ msg) in
  let field k =
    match Json.member k j with Some v -> v | None -> bad ("missing " ^ k)
  in
  let groups k =
    match field k with
    | Json.Assoc kvs -> List.map (fun (n, v) -> (n, Agg.of_json v)) kvs
    | _ -> bad (k ^ " is not an object")
  in
  {
    sr_id = (match field "shard" with Json.Int i -> i | _ -> bad "shard id");
    sr_agg = Agg.of_json (field "agg");
    sr_per_scheme = groups "per_scheme";
    sr_per_workload = groups "per_workload";
    sr_metrics = field "metrics";
    sr_telemetry = Option.map Telemetry.of_json (Json.member "telemetry" j);
  }

(* --- streaming accumulator --------------------------------------------- *)

(* Devices fold in as they finish — in ascending id order, which both
   engines guarantee, so the non-associative float adds in [Agg.merge]
   and the metrics histograms happen in one canonical order and the
   shard result is byte-identical across engines and pool widths.
   Memory is O(#scheme-groups + #workload-groups + top_k), independent
   of the device count: no per-device list survives the fold. *)
type acc = {
  acc_id : int;
  acc_reg : Metrics.registry;
  mutable acc_agg : Agg.t;
  acc_scheme : (string, Agg.t) Hashtbl.t;
  acc_workload : (string, Agg.t) Hashtbl.t;
  mutable acc_tel : Telemetry.t option;
}

let acc_create ?telemetry sid =
  {
    acc_id = sid;
    acc_reg = Metrics.create ();
    acc_agg = Agg.empty;
    acc_scheme = Hashtbl.create 4;
    acc_workload = Hashtbl.create 4;
    acc_tel =
      Option.map
        (fun (c : Telemetry.config) ->
          Telemetry.empty ~top_k:c.Telemetry.tel_top_k)
        telemetry;
  }

let group_add tbl k a =
  let prev = Option.value ~default:Agg.empty (Hashtbl.find_opt tbl k) in
  Hashtbl.replace tbl k (Agg.merge prev a)

let acc_add acc (d : device) (a, dev_reg, dev_tel) =
  Metrics.merge_into acc.acc_reg dev_reg;
  acc.acc_agg <- Agg.merge acc.acc_agg a;
  (match (acc.acc_tel, dev_tel) with
  | Some cur, Some t -> acc.acc_tel <- Some (Telemetry.merge cur t)
  | _ -> ());
  group_add acc.acc_scheme (Spec.scheme_slug d.scheme) a;
  group_add acc.acc_workload d.workload a

let sorted_groups tbl =
  Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let acc_finish acc =
  {
    sr_id = acc.acc_id;
    sr_agg = acc.acc_agg;
    sr_per_scheme = sorted_groups acc.acc_scheme;
    sr_per_workload = sorted_groups acc.acc_workload;
    sr_metrics = Metrics.to_persist acc.acc_reg;
    sr_telemetry = acc.acc_tel;
  }

module Json = Gecko_obs.Json
module Scheme = Gecko_core.Scheme

type board_kind = Attack_rig | Bench

type t = {
  devices : int;
  attackers : int;
  seed : int;
  duration : float;
  area_m : float;
  shard_size : int;
  workload_mix : string list;
  scheme_mix : Scheme.t list;
  board_mix : board_kind list;
  freq_mhz : float;
  power_dbm : float;
  attacker_speed_mps : float;
  range_m : float;
  field_steps : int;
}

let scheme_slug = function
  | Scheme.Nvp -> "nvp"
  | Scheme.Ratchet -> "ratchet"
  | Scheme.Gecko_noprune -> "gecko-noprune"
  | Scheme.Gecko -> "gecko"

let scheme_of_slug = function
  | "nvp" -> Some Scheme.Nvp
  | "ratchet" -> Some Scheme.Ratchet
  | "gecko-noprune" | "noprune" -> Some Scheme.Gecko_noprune
  | "gecko" -> Some Scheme.Gecko
  | _ -> None

let board_slug = function Attack_rig -> "attack-rig" | Bench -> "bench"

let board_of_slug = function
  | "attack-rig" -> Some Attack_rig
  | "bench" -> Some Bench
  | _ -> None

let validate t =
  let fail fmt = Printf.ksprintf (fun m -> invalid_arg ("Fleet.Spec: " ^ m)) fmt in
  if t.devices < 1 then fail "devices must be >= 1 (got %d)" t.devices;
  if t.attackers < 0 then fail "attackers must be >= 0 (got %d)" t.attackers;
  if t.duration <= 0. then fail "duration must be positive (got %g)" t.duration;
  if t.area_m <= 0. then fail "area must be positive (got %g)" t.area_m;
  if t.shard_size < 1 then fail "shard size must be >= 1 (got %d)" t.shard_size;
  if t.workload_mix = [] then fail "workload mix is empty";
  if t.scheme_mix = [] then fail "scheme mix is empty";
  if t.board_mix = [] then fail "board mix is empty";
  if t.freq_mhz <= 0. then fail "frequency must be positive (got %g)" t.freq_mhz;
  if t.attacker_speed_mps < 0. then
    fail "attacker speed must be >= 0 (got %g)" t.attacker_speed_mps;
  if t.range_m <= 0. then fail "range must be positive (got %g)" t.range_m;
  if t.field_steps < 1 then fail "field steps must be >= 1 (got %d)" t.field_steps;
  List.iter
    (fun w ->
      match Gecko_workloads.Workload.find w with
      | _ -> ()
      | exception Not_found -> fail "unknown workload %S in mix" w)
    t.workload_mix;
  t

let make ?(attackers = 1) ?(duration = 0.05) ?(area_m = 30.)
    ?(shard_size = 32) ?(workload_mix = [ "crc16"; "crc32"; "bitcnt"; "fir" ])
    ?(scheme_mix = [ Scheme.Nvp; Scheme.Ratchet; Scheme.Gecko ])
    ?(board_mix = [ Attack_rig ]) ?(freq_mhz = 27.) ?(power_dbm = 30.)
    ?(attacker_speed_mps = 200.) ?(range_m = 6.) ?(field_steps = 16) ~devices
    ~seed () =
  validate
    {
      devices;
      attackers;
      seed;
      duration;
      area_m;
      shard_size;
      workload_mix;
      scheme_mix;
      board_mix;
      freq_mhz;
      power_dbm;
      attacker_speed_mps;
      range_m;
      field_steps;
    }

let shards t = (t.devices + t.shard_size - 1) / t.shard_size

let to_json t =
  Json.Assoc
    [
      ("devices", Json.Int t.devices);
      ("attackers", Json.Int t.attackers);
      ("seed", Json.Int t.seed);
      ("duration_s", Json.Float t.duration);
      ("area_m", Json.Float t.area_m);
      ("shard_size", Json.Int t.shard_size);
      ("workload_mix", Json.List (List.map (fun w -> Json.String w) t.workload_mix));
      ( "scheme_mix",
        Json.List (List.map (fun s -> Json.String (scheme_slug s)) t.scheme_mix)
      );
      ( "board_mix",
        Json.List (List.map (fun b -> Json.String (board_slug b)) t.board_mix) );
      ("freq_mhz", Json.Float t.freq_mhz);
      ("power_dbm", Json.Float t.power_dbm);
      ("attacker_speed_mps", Json.Float t.attacker_speed_mps);
      ("range_m", Json.Float t.range_m);
      ("field_steps", Json.Int t.field_steps);
    ]

let of_json j =
  let bad msg = invalid_arg ("Fleet.Spec.of_json: " ^ msg) in
  let field k =
    match Json.member k j with Some v -> v | None -> bad ("missing " ^ k)
  in
  let int k = match field k with Json.Int i -> i | _ -> bad (k ^ ": expected int") in
  let flt k =
    match Json.to_float_opt (field k) with
    | Some f -> f
    | None -> bad (k ^ ": expected number")
  in
  let strings k =
    match field k with
    | Json.List xs ->
        List.map
          (function Json.String s -> s | _ -> bad (k ^ ": expected strings"))
          xs
    | _ -> bad (k ^ ": expected a list")
  in
  let parse_with name parse s =
    match parse s with Some v -> v | None -> bad (name ^ ": unknown " ^ s)
  in
  validate
    {
      devices = int "devices";
      attackers = int "attackers";
      seed = int "seed";
      duration = flt "duration_s";
      area_m = flt "area_m";
      shard_size = int "shard_size";
      workload_mix = strings "workload_mix";
      scheme_mix =
        List.map (parse_with "scheme_mix" scheme_of_slug) (strings "scheme_mix");
      board_mix =
        List.map (parse_with "board_mix" board_of_slug) (strings "board_mix");
      freq_mhz = flt "freq_mhz";
      power_dbm = flt "power_dbm";
      attacker_speed_mps = flt "attacker_speed_mps";
      range_m = flt "range_m";
      field_steps = int "field_steps";
    }

let equal a b = Json.equal (to_json a) (to_json b)

module Json = Gecko_obs.Json

(* --- quantile sketch --------------------------------------------------- *)

module Sketch = struct
  (* Log-bucketed histogram over latency seconds: bucket [i] covers
     [lowest * 2^i, lowest * 2^(i+1)); values below [lowest] land in a
     dedicated underflow count.  Immutable: [add]/[merge] copy the
     (at most [nbuckets]-long) counts array, which at fleet rates is
     noise next to the device simulation itself. *)
  type t = {
    n : int;
    sum : float;
    min_v : float;  (* +inf when empty *)
    max_v : float;  (* -inf when empty *)
    underflow : int;
    counts : int array;  (* treated as immutable *)
  }

  let nbuckets = 40
  let lowest = 1e-6

  let empty =
    { n = 0; sum = 0.; min_v = infinity; max_v = neg_infinity; underflow = 0;
      counts = [||] }

  let bucket_index v =
    min (nbuckets - 1) (int_of_float (floor (log (v /. lowest) /. log 2.)))

  let add s v =
    let v = Float.max v 0. in
    let base =
      { s with n = s.n + 1; sum = s.sum +. v; min_v = Float.min s.min_v v;
        max_v = Float.max s.max_v v }
    in
    if v < lowest then { base with underflow = base.underflow + 1 }
    else begin
      let i = bucket_index v in
      let counts = Array.make (max (Array.length s.counts) (i + 1)) 0 in
      Array.blit s.counts 0 counts 0 (Array.length s.counts);
      counts.(i) <- counts.(i) + 1;
      { base with counts }
    end

  let merge a b =
    let len = max (Array.length a.counts) (Array.length b.counts) in
    let counts = Array.make len 0 in
    Array.iteri (fun i c -> counts.(i) <- c) a.counts;
    Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.counts;
    {
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      underflow = a.underflow + b.underflow;
      counts;
    }

  let count s = s.n
  let sum s = s.sum

  let quantile s q =
    if s.n = 0 then 0.
    else begin
      let target =
        let r = int_of_float (ceil (q *. float_of_int s.n)) in
        min (max r 1) s.n
      in
      let seen = ref s.underflow in
      if !seen >= target then lowest /. 2.
      else begin
        let result = ref Float.nan in
        (try
           Array.iteri
             (fun i c ->
               seen := !seen + c;
               if c > 0 && !seen >= target then begin
                 let lo = lowest *. (2. ** float_of_int i) in
                 result := sqrt (lo *. (lo *. 2.));
                 raise Exit
               end)
             s.counts
         with Exit -> ());
        if Float.is_nan !result then s.max_v else !result
      end
    end

  let persist_float f = if Float.is_finite f then Json.Float f else Json.Null

  let to_json s =
    Json.Assoc
      [
        ("n", Json.Int s.n);
        ("sum", Json.Float s.sum);
        ("min", persist_float s.min_v);
        ("max", persist_float s.max_v);
        ("underflow", Json.Int s.underflow);
        ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) s.counts)));
      ]

  let of_json j =
    let bad msg = invalid_arg ("Fleet.Telemetry.Sketch.of_json: " ^ msg) in
    let field k =
      match Json.member k j with Some v -> v | None -> bad ("missing " ^ k)
    in
    let int_of = function Json.Int i -> i | _ -> bad "expected an integer" in
    let float_of k ~empty_v =
      match field k with
      | Json.Null -> empty_v
      | v -> (
          match Json.to_float_opt v with
          | Some f -> f
          | None -> bad (k ^ " is not a number"))
    in
    {
      n = int_of (field "n");
      sum = float_of "sum" ~empty_v:0.;
      min_v = float_of "min" ~empty_v:infinity;
      max_v = float_of "max" ~empty_v:neg_infinity;
      underflow = int_of (field "underflow");
      counts =
        (match field "counts" with
        | Json.List cs -> Array.of_list (List.map int_of cs)
        | _ -> bad "counts is not a list");
    }
end

(* --- badness score ----------------------------------------------------- *)

type weights = {
  w_corruption : float;
  w_ckpt_failure : float;
  w_brownout : float;
  w_detect_latency : float;
}

let default_weights =
  { w_corruption = 1000.; w_ckpt_failure = 10.; w_brownout = 0.1;
    w_detect_latency = 100. }

type outlier = {
  o_device : int;
  o_score : float;
  o_seed : int;
  o_workload : string;
  o_scheme : string;
  o_board : string;
  o_x : float;
  o_y : float;
  o_corruptions : int;
  o_ckpt_failures : int;
  o_brownouts : int;
  o_detections : int;
  o_latency_worst : float;
  o_flight : Json.t option;
}

type t = {
  devices : int;
  anomalies : int;
  corruptions : int;
  ckpt_failures : int;
  brownouts : int;
  detections : int;
  misspeculations : int;
  completions : int;
  latency : Sketch.t;
  top_k : int;
  outliers : outlier list;
}

let empty ~top_k =
  {
    devices = 0;
    anomalies = 0;
    corruptions = 0;
    ckpt_failures = 0;
    brownouts = 0;
    detections = 0;
    misspeculations = 0;
    completions = 0;
    latency = Sketch.empty;
    top_k = max 0 top_k;
    outliers = [];
  }

(* Total order: score descending, then device id ascending — merge
   results never depend on concatenation order. *)
let outlier_order a b =
  match compare b.o_score a.o_score with
  | 0 -> compare a.o_device b.o_device
  | c -> c

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let merge a b =
  let top_k = max a.top_k b.top_k in
  {
    devices = a.devices + b.devices;
    anomalies = a.anomalies + b.anomalies;
    corruptions = a.corruptions + b.corruptions;
    ckpt_failures = a.ckpt_failures + b.ckpt_failures;
    brownouts = a.brownouts + b.brownouts;
    detections = a.detections + b.detections;
    misspeculations = a.misspeculations + b.misspeculations;
    completions = a.completions + b.completions;
    latency = Sketch.merge a.latency b.latency;
    top_k;
    outliers = take top_k (List.sort outlier_order (a.outliers @ b.outliers));
  }

let of_device ~weights ~top_k ~id ~seed ~workload ~scheme ~board ~x ~y
    ~latencies ~flight (a : Agg.t) =
  let worst = List.fold_left Float.max 0. latencies in
  let score =
    (weights.w_corruption *. float_of_int a.Agg.corruptions)
    +. (weights.w_ckpt_failure *. float_of_int a.Agg.jit_checkpoint_failures)
    +. (weights.w_brownout *. float_of_int a.Agg.brownouts)
    +. (weights.w_detect_latency *. worst)
  in
  let anomalous = a.Agg.corruptions > 0 || a.Agg.jit_checkpoint_failures > 0 in
  {
    devices = 1;
    anomalies = (if anomalous then 1 else 0);
    corruptions = a.Agg.corruptions;
    ckpt_failures = a.Agg.jit_checkpoint_failures;
    brownouts = a.Agg.brownouts;
    detections = a.Agg.detections;
    misspeculations = a.Agg.misspeculations;
    completions = a.Agg.completions;
    latency = List.fold_left Sketch.add Sketch.empty latencies;
    top_k = max 0 top_k;
    outliers =
      (if score > 0. && top_k > 0 then
         [
           {
             o_device = id;
             o_score = score;
             o_seed = seed;
             o_workload = workload;
             o_scheme = scheme;
             o_board = board;
             o_x = x;
             o_y = y;
             o_corruptions = a.Agg.corruptions;
             o_ckpt_failures = a.Agg.jit_checkpoint_failures;
             o_brownouts = a.Agg.brownouts;
             o_detections = a.Agg.detections;
             o_latency_worst = worst;
             o_flight = flight;
           };
         ]
       else []);
  }

(* --- JSON -------------------------------------------------------------- *)

let outlier_to_json o =
  Json.Assoc
    ([
       ("device", Json.Int o.o_device);
       ("score", Json.Float o.o_score);
       ("seed", Json.Int o.o_seed);
       ("workload", Json.String o.o_workload);
       ("scheme", Json.String o.o_scheme);
       ("board", Json.String o.o_board);
       ("x", Json.Float o.o_x);
       ("y", Json.Float o.o_y);
       ("corruptions", Json.Int o.o_corruptions);
       ("ckpt_failures", Json.Int o.o_ckpt_failures);
       ("brownouts", Json.Int o.o_brownouts);
       ("detections", Json.Int o.o_detections);
       ("latency_worst", Json.Float o.o_latency_worst);
     ]
    @ match o.o_flight with None -> [] | Some f -> [ ("flight", f) ])

let outlier_of_json j =
  let bad msg = invalid_arg ("Fleet.Telemetry.of_json: outlier " ^ msg) in
  let field k =
    match Json.member k j with Some v -> v | None -> bad ("missing " ^ k)
  in
  let int_of k = match field k with Json.Int i -> i | _ -> bad (k ^ " not int") in
  let float_of k =
    match Json.to_float_opt (field k) with
    | Some f -> f
    | None -> bad (k ^ " not a number")
  in
  let string_of k =
    match field k with Json.String s -> s | _ -> bad (k ^ " not a string")
  in
  {
    o_device = int_of "device";
    o_score = float_of "score";
    o_seed = int_of "seed";
    o_workload = string_of "workload";
    o_scheme = string_of "scheme";
    o_board = string_of "board";
    o_x = float_of "x";
    o_y = float_of "y";
    o_corruptions = int_of "corruptions";
    o_ckpt_failures = int_of "ckpt_failures";
    o_brownouts = int_of "brownouts";
    o_detections = int_of "detections";
    o_latency_worst = float_of "latency_worst";
    o_flight = Json.member "flight" j;
  }

let to_json t =
  Json.Assoc
    [
      ("devices", Json.Int t.devices);
      ("anomalies", Json.Int t.anomalies);
      ("corruptions", Json.Int t.corruptions);
      ("ckpt_failures", Json.Int t.ckpt_failures);
      ("brownouts", Json.Int t.brownouts);
      ("detections", Json.Int t.detections);
      ("misspeculations", Json.Int t.misspeculations);
      ("completions", Json.Int t.completions);
      ("latency", Sketch.to_json t.latency);
      ("top_k", Json.Int t.top_k);
      ("outliers", Json.List (List.map outlier_to_json t.outliers));
    ]

let of_json j =
  let bad msg = invalid_arg ("Fleet.Telemetry.of_json: " ^ msg) in
  let field k =
    match Json.member k j with Some v -> v | None -> bad ("missing " ^ k)
  in
  let int_of k = match field k with Json.Int i -> i | _ -> bad (k ^ " not int") in
  {
    devices = int_of "devices";
    anomalies = int_of "anomalies";
    corruptions = int_of "corruptions";
    ckpt_failures = int_of "ckpt_failures";
    brownouts = int_of "brownouts";
    detections = int_of "detections";
    (* Absent in streams written before the speculative pipeline. *)
    misspeculations =
      (match Json.member "misspeculations" j with
      | Some (Json.Int i) -> i
      | Some _ -> bad "misspeculations not int"
      | None -> 0);
    completions = int_of "completions";
    latency = Sketch.of_json (field "latency");
    top_k = int_of "top_k";
    outliers =
      (match field "outliers" with
      | Json.List xs -> List.map outlier_of_json xs
      | _ -> bad "outliers is not a list");
  }

(* --- campaign configuration ------------------------------------------- *)

type config = {
  tel_path : string option;
  tel_progress : bool;
  tel_top_k : int;
  tel_weights : weights;
  tel_flight_capacity : int;
}

let default_config =
  {
    tel_path = None;
    tel_progress = false;
    tel_top_k = 8;
    tel_weights = default_weights;
    tel_flight_capacity = Gecko_obs.Flight.default_capacity;
  }

let stream_schema = "gecko.fleet-telemetry/1"

let weights_to_json w =
  Json.Assoc
    [
      ("corruption", Json.Float w.w_corruption);
      ("ckpt_failure", Json.Float w.w_ckpt_failure);
      ("brownout", Json.Float w.w_brownout);
      ("detect_latency", Json.Float w.w_detect_latency);
    ]

let weights_of_json j =
  let bad msg = invalid_arg ("Fleet.Telemetry.weights_of_json: " ^ msg) in
  let f k =
    match Option.bind (Json.member k j) Json.to_float_opt with
    | Some v -> v
    | None -> bad ("missing " ^ k)
  in
  {
    w_corruption = f "corruption";
    w_ckpt_failure = f "ckpt_failure";
    w_brownout = f "brownout";
    w_detect_latency = f "detect_latency";
  }

(* The header record of a gecko.fleet-telemetry/1 stream embeds the
   replay-relevant half of the config (weights, top-K, flight capacity),
   so `gecko replay` can reconstruct the exact scoring and ring depth
   the campaign used. *)
let config_to_json c =
  Json.Assoc
    [
      ("top_k", Json.Int c.tel_top_k);
      ("flight_capacity", Json.Int c.tel_flight_capacity);
      ("weights", weights_to_json c.tel_weights);
    ]

let config_of_json j =
  let bad msg = invalid_arg ("Fleet.Telemetry.config_of_json: " ^ msg) in
  let int_of k =
    match Json.member k j with
    | Some (Json.Int i) -> i
    | _ -> bad ("missing " ^ k)
  in
  {
    default_config with
    tel_top_k = int_of "top_k";
    tel_flight_capacity = int_of "flight_capacity";
    tel_weights =
      (match Json.member "weights" j with
      | Some w -> weights_of_json w
      | None -> bad "missing weights");
  }

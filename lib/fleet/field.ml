open Gecko_emi
module Rng = Gecko_util.Rng

type attacker = {
  waypoints : (float * float) array;  (* polyline start + turns *)
  seg_len : float array;  (* seg_len.(i) = |waypoints.(i+1) - waypoints.(i)| *)
  speed : float;
}

type t = {
  attackers : attacker list;
  duration : float;
  steps : int;
  freq_mhz : float;
  power_dbm : float;
  range_m : float;
}

let dist (x0, y0) (x1, y1) = Float.hypot (x1 -. x0) (y1 -. y0)

(* A random-waypoint patrol: uniform waypoints in the area, walked at
   constant speed.  Enough waypoints are drawn up front to cover the whole
   campaign duration, so evaluation never runs off the end. *)
let make_attacker rng ~area_m ~speed ~duration =
  let point () = (Rng.float rng area_m, Rng.float rng area_m) in
  let need = (speed *. duration) +. (2. *. area_m) in
  let rec grow acc covered last =
    if covered >= need then List.rev acc
    else
      let p = point () in
      grow (p :: acc) (covered +. dist last p) p
  in
  let start = point () in
  let pts = Array.of_list (grow [ start ] 0. start) in
  let segs =
    Array.init
      (max 0 (Array.length pts - 1))
      (fun i -> dist pts.(i) pts.(i + 1))
  in
  { waypoints = pts; seg_len = segs; speed }

let make ~attackers ~area_m ~speed ~duration ~steps ~freq_mhz ~power_dbm
    ~range_m rng =
  let atks = List.init attackers (fun _ -> make_attacker rng ~area_m ~speed ~duration) in
  { attackers = atks; duration; steps; freq_mhz; power_dbm; range_m }

let position a t =
  let rec walk i d =
    if i >= Array.length a.seg_len then a.waypoints.(Array.length a.waypoints - 1)
    else if d <= a.seg_len.(i) then begin
      let x0, y0 = a.waypoints.(i) and x1, y1 = a.waypoints.(i + 1) in
      let f = if a.seg_len.(i) <= 0. then 0. else d /. a.seg_len.(i) in
      (x0 +. (f *. (x1 -. x0)), y0 +. (f *. (y1 -. y0)))
    end
    else walk (i + 1) (d -. a.seg_len.(i))
  in
  walk 0 (a.speed *. Float.max 0. t)

let nearest_distance t ~x ~y ~time =
  List.fold_left
    (fun acc a -> Float.min acc (dist (x, y) (position a time)))
    infinity t.attackers

(* The device's local view of the campaign: one schedule window per field
   step in which some attacker is within coupling range, carrying a remote
   attack at the distance of the nearest attacker at the step midpoint.
   Purely a function of (field, position), so any shard can recompute it. *)
let schedule_at t ~x ~y =
  if t.attackers = [] then Schedule.empty
  else begin
    let dt = t.duration /. float_of_int t.steps in
    let windows = ref [] in
    for k = t.steps - 1 downto 0 do
      let t0 = float_of_int k *. dt in
      let d = nearest_distance t ~x ~y ~time:(t0 +. (dt /. 2.)) in
      if d <= t.range_m then begin
        let attack =
          Attack.remote
            ~distance_m:(Float.max 0.05 d)
            (Signal.make ~freq_mhz:t.freq_mhz ~power_dbm:t.power_dbm)
        in
        windows :=
          Schedule.window ~t_start:t0 ~t_end:(t0 +. dt) attack :: !windows
      end
    done;
    Schedule.normalize !windows
  end

let exposure_seconds schedule =
  List.fold_left
    (fun acc (w : Schedule.window) -> acc +. (w.Schedule.t_end -. w.Schedule.t_start))
    0. (Schedule.windows schedule)

(** Streaming campaign health telemetry.

    A campaign reduced to monoid aggregates ({!Agg}) hides exactly the
    devices that matter at fleet scale: the tails.  A [Telemetry.t] is a
    second, richer monoid folded alongside the aggregates: population
    counters, a mergeable detection-latency quantile sketch, and the
    top-K outlier devices ranked by a configurable badness score — each
    outlier carrying its exact seed and spec coordinates (and its flight
    recorder dump, when it carried one), which is everything
    [gecko replay] needs to re-create that one device deterministically.

    Everything here is simulated-time data: merging shard telemetries in
    shard-id order produces byte-identical JSON at any pool width.  The
    wall-clock side of a live campaign (devices/s, ETA) never enters
    this structure — {!Campaign} segregates it into a clearly-marked
    nondeterministic stream record. *)

module Json = Gecko_obs.Json

(** Mergeable log-bucketed quantile sketch (seconds; 1 µs resolution
    floor, factor-2 buckets).  The campaign uses it for onset-to-
    detection latencies; quantile estimates are geometric bucket
    midpoints, like {!Gecko_obs.Metrics.quantile}. *)
module Sketch : sig
  type t

  val empty : t
  val add : t -> float -> t
  val merge : t -> t -> t
  val count : t -> int
  val sum : t -> float

  val quantile : t -> float -> float
  (** [quantile s q] for [q] in [0,1]; 0 on an empty sketch.
      Monotone in [q]. *)

  val to_json : t -> Json.t

  val of_json : Json.t -> t
  (** Exact round-trip; raises [Invalid_argument] on malformed input. *)
end

(** Badness-score weights.  A device's score is
    [w_corruption * corruptions + w_ckpt_failure * checkpoint failures
     + w_brownout * brownouts + w_detect_latency * worst latency (s)];
    devices with score 0 are healthy and never become outliers. *)
type weights = {
  w_corruption : float;
  w_ckpt_failure : float;
  w_brownout : float;
  w_detect_latency : float;
}

val default_weights : weights
(** Corruption (silent wrong answers) dominates checkpoint failures
    dominates brownouts; a second of detection latency sits between a
    checkpoint failure and a corruption. *)

type outlier = {
  o_device : int;  (** Device id — the [gecko replay --device] handle. *)
  o_score : float;
  o_seed : int;  (** The device's exact per-run RNG seed. *)
  o_workload : string;
  o_scheme : string;  (** {!Spec.scheme_slug} form. *)
  o_board : string;  (** {!Spec.board_slug} form. *)
  o_x : float;
  o_y : float;  (** Deployment coordinates (m). *)
  o_corruptions : int;
  o_ckpt_failures : int;
  o_brownouts : int;
  o_detections : int;
  o_latency_worst : float;  (** Worst onset-to-detection latency (s). *)
  o_flight : Json.t option;  (** Its [gecko.flight/1] dump, if recorded. *)
}

type t = {
  devices : int;
  anomalies : int;  (** Devices with corruptions or checkpoint failures. *)
  corruptions : int;
  ckpt_failures : int;
  brownouts : int;
  detections : int;
  misspeculations : int;
      (** Undo-log replays on speculative (guarded) images; read as 0
          from streams predating the speculative pipeline. *)
  completions : int;
  latency : Sketch.t;  (** All onset-to-detection latencies. *)
  top_k : int;
  outliers : outlier list;
      (** At most [top_k], sorted by score descending (device id breaks
          ties), each with a positive score. *)
}

val empty : top_k:int -> t

val merge : t -> t -> t
(** Commutative monoid with [empty] (integer fields add exactly; the
    outlier lists concatenate, re-sort and truncate, which is
    order-insensitive because the sort key [(score, id)] is total). *)

val of_device :
  weights:weights ->
  top_k:int ->
  id:int ->
  seed:int ->
  workload:string ->
  scheme:string ->
  board:string ->
  x:float ->
  y:float ->
  latencies:float list ->
  flight:Json.t option ->
  Agg.t ->
  t
(** Telemetry of a single device run: its {!Agg.t} contribution plus
    the identifying coordinates an outlier record must carry. *)

val to_json : t -> Json.t

val of_json : Json.t -> t
(** Exact round-trip (snapshot resume relies on it); raises
    [Invalid_argument] on malformed input. *)

(** {2 Campaign configuration} *)

type config = {
  tel_path : string option;
      (** Write the [gecko.fleet-telemetry/1] JSONL stream here. *)
  tel_progress : bool;  (** Live stderr progress line. *)
  tel_top_k : int;
  tel_weights : weights;
  tel_flight_capacity : int;
      (** Ring capacity of the per-device flight recorders. *)
}

val default_config : config
(** No stream file, no progress line, top-K 8, {!default_weights},
    {!Gecko_obs.Flight.default_capacity}. *)

val stream_schema : string
(** ["gecko.fleet-telemetry/1"]. *)

val weights_to_json : weights -> Json.t
val weights_of_json : Json.t -> weights

val config_to_json : config -> Json.t
(** The replay-relevant half of a config (top-K, flight capacity,
    weights) — embedded in the stream header so [gecko replay] can
    reconstruct the campaign's exact scoring and ring depth.
    [tel_path] and [tel_progress] are invocation-local and excluded. *)

val config_of_json : Json.t -> config
(** Inverse of {!config_to_json} over the embedded fields; [tel_path]
    and [tel_progress] come back as their defaults.  Raises
    [Invalid_argument] on malformed input. *)

(** Streaming, mergeable campaign aggregates.

    One value summarizes any set of device runs; {!merge} combines two
    disjoint sets.  ({!empty}, {!merge}) is a commutative monoid —
    integer fields add exactly, float fields are exactly commutative and
    associative up to float-addition rounding — and the campaign reducer
    folds shard aggregates in fixed shard order, which makes the merged
    report byte-identical at any pool size.  {!to_json}/{!of_json}
    round-trip exactly (floats survive [%.17g] printing), which the
    campaign snapshot relies on for resume-equals-uninterrupted. *)

type t = {
  devices : int;
  attacked_devices : int;  (** Devices with at least one attack window. *)
  exposure_s : float;  (** Total scheduled attack-window seconds. *)
  instructions : int;
  completions : int;
  reboots : int;
  brownouts : int;
  jit_checkpoints : int;
  jit_checkpoint_failures : int;
  rollbacks : int;
  recovery_block_runs : int;
  misspeculations : int;
      (** Rollbacks on speculative (guarded) images that replayed undo
          entries — dynamic confirmations of residual may-alias
          hazards.  Read as 0 from snapshots predating the speculative
          pipeline. *)
  detections : int;
  reenables : int;
  corruptions : int;
  io_outs : int;
  app_seconds : float;
  stalled_s : float;  (** Simulated time not spent on application work. *)
  sim_seconds : float;
  energy_drained_j : float;
  energy_sourced_j : float;
  progress : Gecko_util.Stats.Acc.t;  (** Per-device forward progress. *)
  detect_latency : Gecko_util.Stats.Acc.t;
      (** Attack onset → first detection inside the window, per window. *)
}

val empty : t
val merge : t -> t -> t

val of_device :
  schedule:Gecko_emi.Schedule.t ->
  energy_drained_j:float ->
  energy_sourced_j:float ->
  Gecko_machine.Machine.outcome ->
  t
(** Aggregate of a single device run (requires the run to have recorded
    events, for detection latencies). *)

val checkpoint_failure_rate : t -> float

val detection_latencies :
  schedule:Gecko_emi.Schedule.t -> Gecko_machine.Machine.outcome -> float list
(** Onset-to-detection latency per attack window that saw a detection
    (each detection event matched to at most one window). *)

val to_json : t -> Gecko_obs.Json.t
val of_json : Gecko_obs.Json.t -> t
(** Raises [Invalid_argument] on malformed input. *)

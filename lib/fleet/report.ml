module Json = Gecko_obs.Json
module Metrics = Gecko_obs.Metrics
module Acc = Gecko_util.Stats.Acc
module Table = Gecko_util.Table

type t = {
  spec : Spec.t;
  total : Agg.t;
  per_scheme : (string * Agg.t) list;  (* sorted by slug *)
  per_workload : (string * Agg.t) list;  (* sorted by name *)
  metrics_persist : Json.t;  (* merged registry, Metrics.to_persist form *)
}

let schema = "gecko.fleet-report/1"

let group_to_json groups =
  Json.Assoc (List.map (fun (k, a) -> (k, Agg.to_json a)) groups)

let group_of_json name j =
  match j with
  | Json.Assoc kvs -> List.map (fun (k, v) -> (k, Agg.of_json v)) kvs
  | _ -> invalid_arg ("Fleet.Report.of_json: " ^ name ^ " is not an object")

let to_json t =
  Json.Assoc
    [
      ("schema", Json.String schema);
      ("spec", Spec.to_json t.spec);
      ("total", Agg.to_json t.total);
      ("per_scheme", group_to_json t.per_scheme);
      ("per_workload", group_to_json t.per_workload);
      ("metrics", Metrics.to_json (Metrics.of_persist t.metrics_persist));
    ]

let of_json j =
  let bad msg = invalid_arg ("Fleet.Report.of_json: " ^ msg) in
  let field k =
    match Json.member k j with Some v -> v | None -> bad ("missing " ^ k)
  in
  (match field "schema" with
  | Json.String s when s = schema -> ()
  | Json.String s -> bad (Printf.sprintf "schema %S, expected %S" s schema)
  | _ -> bad "schema is not a string");
  {
    spec = Spec.of_json (field "spec");
    total = Agg.of_json (field "total");
    per_scheme = group_of_json "per_scheme" (field "per_scheme");
    per_workload = group_of_json "per_workload" (field "per_workload");
    (* Lossy: the human-facing metrics export does not round-trip, so a
       parsed report carries an empty registry.  Only the campaign
       snapshot (not the report) needs exact metrics persistence. *)
    metrics_persist = Metrics.to_persist (Metrics.create ());
  }

let group_table ~title ~key_header groups =
  let tbl =
    Table.create ~title
      ~header:
        [ key_header; "devs"; "atk"; "compl"; "ckpts"; "fail%"; "rollbk";
          "corrupt"; "detect"; "lat ms"; "R mean"; "stall s" ]
      ()
  in
  List.iter
    (fun (key, (a : Agg.t)) ->
      Table.add_row tbl
        [
          key;
          string_of_int a.Agg.devices;
          string_of_int a.Agg.attacked_devices;
          string_of_int a.Agg.completions;
          string_of_int a.Agg.jit_checkpoints;
          Table.cell_pct (Agg.checkpoint_failure_rate a);
          string_of_int a.Agg.rollbacks;
          string_of_int a.Agg.corruptions;
          string_of_int a.Agg.detections;
          (if Acc.is_empty a.Agg.detect_latency then "-"
           else Printf.sprintf "%.2f" (1e3 *. Acc.mean a.Agg.detect_latency));
          Table.cell_pct (Acc.mean a.Agg.progress);
          Table.cell_f a.Agg.stalled_s;
        ])
    groups;
  Table.render tbl

let render t =
  let buf = Buffer.create 2048 in
  let s = t.spec in
  Buffer.add_string buf
    (Printf.sprintf
       "fleet campaign: %d devices, %d attacker(s) at %.0f dBm / %.0f MHz \
        sweeping a %.0f m field, %.3f s each, seed %d\n"
       s.Spec.devices s.Spec.attackers s.Spec.power_dbm s.Spec.freq_mhz
       s.Spec.area_m s.Spec.duration s.Spec.seed);
  let a = t.total in
  Buffer.add_string buf
    (Printf.sprintf
       "attacked devices %d/%d | exposure %.2f device-s | instructions %d | \
        energy drained %.3g J\n\n"
       a.Agg.attacked_devices a.Agg.devices a.Agg.exposure_s a.Agg.instructions
       a.Agg.energy_drained_j);
  Buffer.add_string buf
    (group_table ~title:"per recovery scheme" ~key_header:"scheme" t.per_scheme);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (group_table ~title:"per workload" ~key_header:"workload" t.per_workload);
  Buffer.contents buf

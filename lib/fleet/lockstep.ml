(* The batched shard engine: a window of devices stepped in lockstep
   over the shared pre-decoded program, each device a [Machine.Step]
   handle issued whole-block turns round-robin.  [Step.step_block] is
   exactly one iteration of [Machine.run]'s main loop — a pre-decoded
   block when the fast-path guard holds, one fully-checked scalar step
   otherwise (attack edge, brown-out margin, checkpoint, monitor
   deadline), rejoining block dispatch at the next boundary — so each
   device's physics is bit-identical to the scalar engine by
   construction, whatever the interleaving.

   Determinism of the fold: a window of [width] consecutive devices is
   run to completion, its results buffered (O(width), constant in the
   campaign size), and emitted in ascending id order before the next
   window starts.  Downstream consumption is the same streaming
   {!Shard.acc} the scalar engine uses, so shard results are
   byte-identical across engines and pool widths. *)

module M = Gecko_machine.Machine
module Metrics = Gecko_obs.Metrics

let default_width = 256

let width () =
  match Sys.getenv_opt "GECKO_LOCKSTEP_WIDTH" with
  | None | Some "" -> default_width
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | Some _ | None -> default_width)

(* Whole-block turns per device per scheduling round.  Large enough to
   amortize the slot scan, small enough that a window's devices advance
   through simulated time together and share cache-resident decode
   state. *)
let quantum = 128

type slot = {
  sl_device : Shard.device;
  sl_schedule : Gecko_emi.Schedule.t;
  sl_reg : Metrics.registry;
  sl_flight : Gecko_obs.Flight.t option;
  sl_handle : M.Step.handle;
}

let start_slot ?telemetry ~spec ~field (d : Shard.device) =
  let schedule = Field.schedule_at field ~x:d.Shard.x ~y:d.Shard.y in
  let flight = Shard.flight_recorder telemetry in
  let board, image, meta, dec = Shard.device_image d in
  let reg = Metrics.create () in
  let handle =
    M.Step.start ~board ~image ~meta
      (Shard.device_options ?flight ~spec ~schedule ~reg ~dec d)
  in
  {
    sl_device = d;
    sl_schedule = schedule;
    sl_reg = reg;
    sl_flight = flight;
    sl_handle = handle;
  }

let finish_slot ?telemetry (s : slot) =
  let o = M.Step.outcome s.sl_handle in
  Shard.device_result ?telemetry ~schedule:s.sl_schedule ~reg:s.sl_reg
    ~flight:s.sl_flight s.sl_device o

let iter_devices ?telemetry ~(spec : Spec.t) ~field
    (devices : Shard.device array) ~f =
  let n = Array.length devices in
  let w = width () in
  let lo = ref 0 in
  while !lo < n do
    let count = min w (n - !lo) in
    let slots =
      Array.init count (fun i ->
          Some (start_slot ?telemetry ~spec ~field devices.(!lo + i)))
    in
    let results = Array.make count None in
    let live = ref count in
    while !live > 0 do
      for i = 0 to count - 1 do
        match slots.(i) with
        | None -> ()
        | Some s ->
            let turns = ref quantum in
            let running = ref true in
            while !running && !turns > 0 do
              decr turns;
              if not (M.Step.step_block s.sl_handle) then running := false
            done;
            if not !running then begin
              results.(i) <- Some (finish_slot ?telemetry s);
              slots.(i) <- None;
              decr live
            end
      done
    done;
    for i = 0 to count - 1 do
      (match results.(i) with
      | Some r -> f devices.(!lo + i) r
      | None -> assert false);
      results.(i) <- None
    done;
    lo := !lo + count
  done

let run_shard ?telemetry ~spec ~field sid (devices : Shard.device array) =
  let acc = Shard.acc_create ?telemetry sid in
  iter_devices ?telemetry ~spec ~field devices ~f:(fun d r ->
      Shard.acc_add acc d r);
  Shard.acc_finish acc

module M = Gecko_machine.Machine

type kind = K_instr | K_event of string | K_ckpt_word | K_rollback_step

let event_name : M.event_kind -> string = function
  | M.Ev_boot _ -> "boot"
  | M.Ev_restore_jit -> "restore_jit"
  | M.Ev_rollback _ -> "rollback"
  | M.Ev_fresh_start -> "fresh_start"
  | M.Ev_backup_signal true -> "backup_signal_early"
  | M.Ev_backup_signal false -> "backup_signal"
  | M.Ev_checkpoint -> "checkpoint"
  | M.Ev_checkpoint_failed -> "checkpoint_failed"
  | M.Ev_brownout -> "brownout"
  | M.Ev_detection -> "detection"
  | M.Ev_reenable -> "reenable"
  | M.Ev_completion -> "completion"

let kind_of : M.inject_site -> kind = function
  | M.S_instr -> K_instr
  | M.S_event k -> K_event (event_name k)
  | M.S_ckpt_word _ -> K_ckpt_word
  | M.S_rollback_step _ -> K_rollback_step

let kind_name = function
  | K_instr -> "instr"
  | K_event n -> "event:" ^ n
  | K_ckpt_word -> "ckpt_word"
  | K_rollback_step -> "rollback_step"

type site = { s_ordinal : int; s_kind : kind; s_time : float; s_instr : int }

let census ~board ~image ~meta opts =
  let sites = ref [] in
  let n = ref 0 in
  let h = M.Step.start ~board ~image ~meta opts in
  M.Step.set_injector h
    (Some
       (fun s ->
         sites :=
           {
             s_ordinal = !n;
             s_kind = kind_of s;
             s_time = M.Step.time h;
             s_instr = M.Step.instructions h;
           }
           :: !sites;
         incr n;
         false));
  while M.Step.step h do () done;
  let o = M.Step.outcome h in
  (Array.of_list (List.rev !sites), o, M.Step.nvm_data h)

let run_with_fires ~board ~image ~meta opts ~fires =
  let module IS = Set.Make (Int) in
  let fires = IS.of_list fires in
  let n = ref 0 in
  let h = M.Step.start ~board ~image ~meta opts in
  M.Step.set_injector h
    (Some
       (fun _ ->
         let i = !n in
         incr n;
         IS.mem i fires));
  while M.Step.step h do () done;
  (M.Step.outcome h, M.Step.nvm_data h)

module M = Gecko_machine.Machine
module Board = Gecko_machine.Board
module Pool = Gecko_util.Pool
module Rng = Gecko_util.Rng

type failure = {
  f_fires : int list;
  f_kind : string;
  f_time : float;
  f_detail : string;
}

type report = {
  sites_total : int;
  sites_by_kind : (string * int) list;
  explored : int;
  explored_pairs : int;
  event_sites_covered : bool;
  instr_stride : int;
  failures : failure list;
  baseline_ok : bool;
}

let default_opts =
  {
    M.default_options with
    M.limit = M.Completions 1;
    max_sim_time = 30.;
    record_io = true;
    start_charged = true;
  }

let golden ?(max_sim_time = 30.) ~board ~image ~meta () =
  let board =
    { board with Board.harvester = Gecko_energy.Harvester.constant_power 1.0 }
  in
  let opts =
    { default_opts with M.schedule = Gecko_emi.Schedule.empty; max_sim_time }
  in
  let o, nvm = M.run_with_nvm ~board ~image ~meta opts in
  if o.M.completions < 1 then
    failwith "faultinject: golden run did not complete";
  (nvm, o.M.io_log)

(* [needle] must appear within [hay] in order (gaps allowed): re-execution
   after a rollback may repeat outputs but can never lose or reorder them. *)
let subsequence needle hay =
  let rec go n h =
    match (n, h) with
    | [], _ -> true
    | _, [] -> false
    | x :: n', y :: h' -> if x = y then go n' h' else go n h'
  in
  go needle hay

let oracle ~golden_nvm ~golden_io (o : M.outcome) ~nvm =
  if o.M.completions < 1 then
    Error
      (Printf.sprintf "did not complete (sim_time %.4f, %d brownouts)"
         o.M.sim_time o.M.brownouts)
  else if Array.length nvm <> Array.length golden_nvm then
    Error
      (Printf.sprintf "data segment size %d <> golden %d" (Array.length nvm)
         (Array.length golden_nvm))
  else
    let diff = ref (-1) in
    (try
       for i = 0 to Array.length nvm - 1 do
         if nvm.(i) <> golden_nvm.(i) then begin
           diff := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !diff >= 0 then
      Error
        (Printf.sprintf "NVM mismatch at word %d: got %d, golden %d" !diff
           nvm.(!diff)
           golden_nvm.(!diff))
    else if not (subsequence golden_io o.M.io_log) then
      Error "golden io_log is not a subsequence of the observed io_log"
    else Ok ()

(* Pick single-fire targets from the census: every non-instruction site
   first (events, checkpoint words, rollback steps are where the recovery
   protocol lives), then instruction boundaries at the smallest stride
   that fits the remaining budget. *)
let pick_targets (sites : Inject.site array) ~budget =
  let protocol, instrs =
    Array.to_list sites
    |> List.partition (fun s -> s.Inject.s_kind <> Inject.K_instr)
  in
  let stride_sample xs n =
    let len = List.length xs in
    if len <= n then (xs, 1)
    else
      let stride = (len + n - 1) / n in
      (List.filteri (fun i _ -> i mod stride = 0) xs, stride)
  in
  let n_proto = List.length protocol in
  if n_proto >= budget then
    let picked, _ = stride_sample protocol budget in
    (picked, false, 0)
  else
    let picked, stride = stride_sample instrs (budget - n_proto) in
    (protocol @ picked, true, stride)

let explore ?jobs ?(budget = 256) ?(pairs = 0) ?(seed = 1) ?opts ~board ~image
    ~meta () =
  let opts = match opts with Some o -> o | None -> default_opts in
  let golden_nvm, golden_io =
    golden ~max_sim_time:opts.M.max_sim_time ~board ~image ~meta ()
  in
  let sites, base_outcome, base_nvm = Inject.census ~board ~image ~meta opts in
  let baseline_ok =
    match oracle ~golden_nvm ~golden_io base_outcome ~nvm:base_nvm with
    | Ok () -> true
    | Error _ -> false
  in
  let by_kind = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      let k = Inject.kind_name s.Inject.s_kind in
      Hashtbl.replace by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
    sites;
  let sites_by_kind =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_kind []
    |> List.sort compare
  in
  let targets, event_sites_covered, instr_stride =
    pick_targets sites ~budget
  in
  let rng = Rng.create seed in
  let n_sites = Array.length sites in
  let pair_fires =
    if pairs <= 0 || n_sites < 2 then []
    else
      List.init pairs (fun _ ->
          let i = Rng.int rng n_sites in
          let j = Rng.int rng n_sites in
          let a, b = (min i j, max i j) in
          if a = b then [ a; b + 1 ] else [ a; b ])
  in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let describe fires =
    match fires with
    | [] -> ("", 0., [])
    | o :: _ ->
        if o < n_sites then
          let s = sites.(o) in
          (Inject.kind_name s.Inject.s_kind, s.Inject.s_time, fires)
        else ("instr", 0., fires)
  in
  let check fires =
    let o, nvm = Inject.run_with_fires ~board ~image ~meta opts ~fires in
    match oracle ~golden_nvm ~golden_io o ~nvm with
    | Ok () -> None
    | Error detail ->
        let f_kind, f_time, f_fires = describe fires in
        Some { f_fires; f_kind; f_time; f_detail = detail }
  in
  let work =
    List.map (fun s -> [ s.Inject.s_ordinal ]) targets @ pair_fires
  in
  let results =
    if jobs <= 1 then List.map check work
    else begin
      let pool = Pool.create ~jobs () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.map pool check work)
    end
  in
  let failures = List.filter_map Fun.id results in
  {
    sites_total = n_sites;
    sites_by_kind;
    explored = List.length targets;
    explored_pairs = List.length pair_fires;
    event_sites_covered;
    instr_stride;
    failures;
    baseline_ok;
  }

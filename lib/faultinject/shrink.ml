open Gecko_isa
module M = Gecko_machine.Machine
module Schedule = Gecko_emi.Schedule
module Attack = Gecko_emi.Attack
module Signal = Gecko_emi.Signal
module Copy = Gecko_core.Copy

type repro = {
  r_prog : Cfg.program;
  r_schedule : Schedule.t;
  r_fires : int list;
}

let instr_count r = Cfg.instr_count r.r_prog

let size r =
  instr_count r + Schedule.n_windows r.r_schedule + List.length r.r_fires

let default_check ~compile ~board ?opts () repro =
  match
    let image, meta = compile repro.r_prog in
    let opts = match opts with Some o -> o | None -> Explore.default_opts in
    let golden_nvm, golden_io =
      Explore.golden ~max_sim_time:opts.M.max_sim_time ~board ~image ~meta ()
    in
    let opts = { opts with M.schedule = repro.r_schedule } in
    let o, nvm =
      Inject.run_with_fires ~board ~image ~meta opts ~fires:repro.r_fires
    in
    Explore.oracle ~golden_nvm ~golden_io o ~nvm
  with
  | Ok () -> false
  | Error _ -> true
  | exception _ -> false

(* Try candidates in order; commit to the first still-failing one. *)
let first_passing check cands =
  List.find_opt check cands

(* {2 Fires} *)

let fires_candidates r =
  let drop_each =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) r.r_fires) r.r_fires
  in
  let halved = List.map (fun v -> v / 2) r.r_fires in
  ([] :: drop_each) @ (if halved <> r.r_fires then [ halved ] else [])
  |> List.filter (fun fs -> fs <> r.r_fires)
  |> List.map (fun fs -> { r with r_fires = fs })

(* {2 Schedule} *)

let schedule_candidates r =
  let n = Schedule.n_windows r.r_schedule in
  let dropped = List.init n (fun i -> Schedule.drop_window r.r_schedule i) in
  let halved = List.init n (fun i -> Schedule.scale_window r.r_schedule i 0.5) in
  (Schedule.empty :: dropped) @ halved
  |> List.filter (fun s -> Schedule.windows s <> Schedule.windows r.r_schedule)
  |> List.map (fun s -> { r with r_schedule = s })

(* {2 Program}

   Delta debugging per block: deleting contiguous chunks of the
   instruction list, largest first, plus collapsing loop bounds.  Every
   candidate is built on a deep copy so rejected candidates leave no
   trace. *)

let with_block_instrs r ~fname ~label instrs =
  let p = Copy.program r.r_prog in
  let b = Cfg.find_block (Cfg.find_func p fname) label in
  b.Cfg.instrs <- instrs;
  { r with r_prog = p }

let with_loop_bound r ~fname ~label bound =
  let p = Copy.program r.r_prog in
  let b = Cfg.find_block (Cfg.find_func p fname) label in
  b.Cfg.loop_bound <- bound;
  { r with r_prog = p }

let chunk_deletions instrs =
  let n = List.length instrs in
  let del lo len =
    List.filteri (fun i _ -> i < lo || i >= lo + len) instrs
  in
  let rec sizes acc k = if k < 1 then acc else sizes (k :: acc) (k / 2) in
  (* Largest chunks first: [n; n/2; ...; 1]. *)
  let cands = ref [] in
  List.iter
    (fun len ->
      let lo = ref 0 in
      while !lo + len <= n do
        cands := del !lo len :: !cands;
        lo := !lo + len
      done)
    (List.rev (sizes [] n));
  List.rev !cands

let program_candidates r =
  List.concat_map
    (fun f ->
      List.concat_map
        (fun b ->
          let deletions =
            chunk_deletions b.Cfg.instrs
            |> List.map (fun instrs ->
                   with_block_instrs r ~fname:f.Cfg.fname ~label:b.Cfg.label
                     instrs)
          in
          let bounds =
            match b.Cfg.loop_bound with
            | Some k when k > 1 ->
                [
                  with_loop_bound r ~fname:f.Cfg.fname ~label:b.Cfg.label
                    (Some 1);
                  with_loop_bound r ~fname:f.Cfg.fname ~label:b.Cfg.label
                    (Some (k / 2));
                ]
            | _ -> []
          in
          deletions @ bounds)
        f.Cfg.blocks)
    r.r_prog.Cfg.funcs

let shrink ?(max_rounds = 8) ~check r =
  if not (check r) then r
  else begin
    let cur = ref r in
    let progress = ref true in
    let rounds = ref 0 in
    while !progress && !rounds < max_rounds do
      progress := false;
      incr rounds;
      let try_pass cands =
        match
          first_passing check
            (List.filter (fun c -> size c < size !cur) cands)
        with
        | Some c ->
            cur := c;
            progress := true
        | None -> ()
      in
      (* Cheapest reductions first; each pass re-runs until it is dry so
         a single round usually reaches the pass's local fixpoint. *)
      let exhaust mk =
        let again = ref true in
        while !again do
          let before = size !cur in
          try_pass (mk !cur);
          again := size !cur < before
        done
      in
      exhaust fires_candidates;
      exhaust schedule_candidates;
      exhaust program_candidates
    done;
    !cur
  end

(* {2 Pretty-printing} *)

let ocaml_of_attack (a : Attack.t) =
  let signal =
    Printf.sprintf "(Gecko_emi.Signal.make ~freq_mhz:%g ~power_dbm:%g)"
      (Signal.freq_mhz a.Attack.signal)
      a.Attack.signal.Signal.power_dbm
  in
  match a.Attack.path with
  | Attack.Remote { distance_m; through_wall } ->
      Printf.sprintf
        "Gecko_emi.Attack.remote ~through_wall:%b ~distance_m:%g %s"
        through_wall distance_m signal
  | Attack.Dpi p ->
      Printf.sprintf "Gecko_emi.Attack.dpi Gecko_emi.Attack.%s %s"
        (match p with Attack.P1 -> "P1" | Attack.P2 -> "P2")
        signal

let to_ocaml r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "let program =\n";
  Buffer.add_string buf "  match Gecko_isa.Asm.parse {gasm|\n";
  Buffer.add_string buf (Asm.to_string r.r_prog);
  Buffer.add_string buf "|gasm}\n";
  Buffer.add_string buf
    "  with Ok p -> p | Error e -> failwith e\n\n";
  Buffer.add_string buf "let schedule =\n  Gecko_emi.Schedule.normalize [\n";
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf
           "    Gecko_emi.Schedule.window ~t_start:%g ~t_end:%g\n      (%s);\n"
           w.Schedule.t_start w.Schedule.t_end
           (ocaml_of_attack w.Schedule.attack)))
    (Schedule.windows r.r_schedule);
  Buffer.add_string buf "  ]\n\n";
  Buffer.add_string buf
    (Printf.sprintf "let fires = [%s]\n"
       (String.concat "; " (List.map string_of_int r.r_fires)));
  Buffer.contents buf

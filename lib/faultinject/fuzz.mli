(** Adversarial EMI-schedule fuzzer.

    Instead of injecting faults directly, this layer searches the space
    of {!Gecko_emi.Schedule.t} attack schedules for ones that break the
    scheme the physical way: a recon run records when the victim
    checkpoints, an initial population aims attack windows at exactly
    those instants, and a mutation loop (split / merge / shift / move /
    re-scale / drop / add, from the [Schedule] combinators) hill-climbs
    on a fitness that rewards corruptions, checkpoint failures and
    brownouts — with an overriding bonus for an actual crash-consistency
    violation against the golden run. *)

open Gecko_isa
module M = Gecko_machine.Machine

val resonant_attack :
  ?power_dbm:float -> ?distance_m:float -> Gecko_machine.Board.t -> Gecko_emi.Attack.t
(** Remote attack tuned to the board's monitor-coupling resonance (the
    paper's frequency-sweep step, Section IV-B). *)

val checkpoint_times : M.event list -> float list
(** Times of [Ev_checkpoint] / [Ev_backup_signal] events — the instants
    worth attacking. *)

val checkpoint_schedule :
  attack:Gecko_emi.Attack.t -> width:float -> float list -> Gecko_emi.Schedule.t
(** One window of [width] seconds centred on each given time. *)

type counters = {
  c_corruptions : int;
  c_ckpt_failures : int;
  c_brownouts : int;
  c_detections : int;
  c_completions : int;
}

type failure = { f_schedule : Gecko_emi.Schedule.t; f_detail : string }

type result = {
  evals : int;  (** Simulator runs spent. *)
  best_score : float;
  best_schedule : Gecko_emi.Schedule.t;
  best : counters;  (** Counters of the best-scoring run. *)
  failures : failure list;
      (** Schedules whose run violated the crash-consistency oracle. *)
}

val score : counters -> oracle_failed:bool -> float

val fuzz :
  ?jobs:int ->
  ?budget:int ->
  ?seed:int ->
  ?opts:M.options ->
  board:Gecko_machine.Board.t ->
  image:Link.image ->
  meta:Gecko_core.Meta.t ->
  unit ->
  result
(** Population search over schedules under [budget] (default 64) total
    evaluations.  Deterministic for a fixed [seed], [budget] and [jobs]
    (evaluation batches are mapped in input order). *)

(** The deterministic injection driver under the explorer and the
    shrinker.

    The simulator consults its injector at every {!Gecko_machine.Machine.inject_site}
    in a deterministic order, so the [n]-th consultation of a run — its
    {e ordinal} — identifies an exact physical instant reproducibly.
    [census] enumerates every consultation of an uninjected run;
    [run_with_fires] replays the run forcing a supply collapse at chosen
    ordinals.  With more than one fire, ordinals past the first count
    consultations of the {e modified} execution (the run after the first
    failure), which keeps multi-failure replays well defined. *)

open Gecko_isa
module M = Gecko_machine.Machine

(** Coarse classification of a consultation site, used by the explorer's
    coverage accounting. *)
type kind =
  | K_instr  (** Instruction fetch boundary. *)
  | K_event of string  (** Runtime event (trace-id name, e.g. ["checkpoint"]). *)
  | K_ckpt_word  (** NVM word write inside the JIT checkpoint ISR. *)
  | K_rollback_step  (** Restore/recovery step of a rollback. *)

val kind_name : kind -> string
(** ["instr"], ["event:<name>"], ["ckpt_word"], ["rollback_step"]. *)

type site = {
  s_ordinal : int;  (** Consultation index within the run. *)
  s_kind : kind;
  s_time : float;  (** Simulated time of the consultation. *)
  s_instr : int;  (** Instructions executed when it was consulted. *)
}

val census :
  board:Gecko_machine.Board.t ->
  image:Link.image ->
  meta:Gecko_core.Meta.t ->
  M.options ->
  site array * M.outcome * int array
(** Run to completion with a counting injector (which never fires) and
    return every consultation site in order, plus the run's outcome and
    final data-segment snapshot. *)

val run_with_fires :
  board:Gecko_machine.Board.t ->
  image:Link.image ->
  meta:Gecko_core.Meta.t ->
  M.options ->
  fires:int list ->
  M.outcome * int array
(** Replay the run forcing a supply collapse at each ordinal in [fires];
    returns the outcome and the final data-segment snapshot.  Ordinals
    beyond the run's consultation count simply never fire. *)

(** Counterexample minimization.

    A failing fault-injection case is a triple — program, attack
    schedule, injection ordinals.  The shrinker greedily minimizes all
    three while the caller-supplied [check] keeps reporting "still
    failing": delta-debugging chunk deletion over each basic block's
    instruction list (on {!Gecko_core.Copy.program} deep copies — the
    original is never mutated), dropping/halving attack windows, and
    dropping/halving injection ordinals, iterated to a fixpoint.
    [to_ocaml] renders the result as a replayable OCaml fragment. *)

open Gecko_isa
module M = Gecko_machine.Machine

type repro = {
  r_prog : Cfg.program;
  r_schedule : Gecko_emi.Schedule.t;
  r_fires : int list;
}

val size : repro -> int
(** Static instructions + windows + fires (the shrinking metric). *)

val instr_count : repro -> int

val default_check :
  compile:(Cfg.program -> Link.image * Gecko_core.Meta.t) ->
  board:Gecko_machine.Board.t ->
  ?opts:M.options ->
  unit ->
  repro ->
  bool
(** [true] iff the repro still violates the crash-consistency oracle
    (its own golden run as reference).  Any exception along the way —
    compile rejection, link failure, a golden run that cannot complete —
    counts as "not failing", so shrinking never escapes into invalid
    programs. *)

val shrink : ?max_rounds:int -> check:(repro -> bool) -> repro -> repro
(** Greedy fixpoint (at most [max_rounds] sweeps, default 8).  The
    result satisfies [check]; if the input does not, it is returned
    unchanged. *)

val to_ocaml : repro -> string
(** A replayable OCaml fragment: the program as an [Asm.parse]d [{gasm|…|gasm}]
    literal, the schedule from [Schedule.normalize] of explicit windows,
    and the fire list. *)

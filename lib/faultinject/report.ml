module Json = Gecko_obs.Json
module Schedule = Gecko_emi.Schedule

let failures_total ~(explore : Explore.report) ~(fuzz : Fuzz.result) =
  List.length explore.Explore.failures + List.length fuzz.Fuzz.failures

let explore_json (r : Explore.report) =
  Json.Assoc
    [
      ("sites_total", Json.Int r.Explore.sites_total);
      ( "sites_by_kind",
        Json.Assoc
          (List.map (fun (k, v) -> (k, Json.Int v)) r.Explore.sites_by_kind) );
      ("explored", Json.Int r.Explore.explored);
      ("explored_pairs", Json.Int r.Explore.explored_pairs);
      ("event_sites_covered", Json.Bool r.Explore.event_sites_covered);
      ("instr_stride", Json.Int r.Explore.instr_stride);
      ("baseline_ok", Json.Bool r.Explore.baseline_ok);
      ( "failures",
        Json.List
          (List.map
             (fun (f : Explore.failure) ->
               Json.Assoc
                 [
                   ( "fires",
                     Json.List
                       (List.map (fun i -> Json.Int i) f.Explore.f_fires) );
                   ("kind", Json.String f.Explore.f_kind);
                   ("time", Json.Float f.Explore.f_time);
                   ("detail", Json.String f.Explore.f_detail);
                 ])
             r.Explore.failures) );
    ]

let schedule_json s =
  Json.List
    (List.map
       (fun (w : Schedule.window) ->
         Json.Assoc
           [
             ("t_start", Json.Float w.Schedule.t_start);
             ("t_end", Json.Float w.Schedule.t_end);
           ])
       (Schedule.windows s))

let fuzz_json (r : Fuzz.result) =
  Json.Assoc
    [
      ("evals", Json.Int r.Fuzz.evals);
      ("best_score", Json.Float r.Fuzz.best_score);
      ("best_windows", schedule_json r.Fuzz.best_schedule);
      ( "best_counters",
        Json.Assoc
          [
            ("corruptions", Json.Int r.Fuzz.best.Fuzz.c_corruptions);
            ("ckpt_failures", Json.Int r.Fuzz.best.Fuzz.c_ckpt_failures);
            ("brownouts", Json.Int r.Fuzz.best.Fuzz.c_brownouts);
            ("detections", Json.Int r.Fuzz.best.Fuzz.c_detections);
            ("completions", Json.Int r.Fuzz.best.Fuzz.c_completions);
          ] );
      ( "failures",
        Json.List
          (List.map
             (fun (f : Fuzz.failure) ->
               Json.Assoc
                 [
                   ("windows", schedule_json f.Fuzz.f_schedule);
                   ("detail", Json.String f.Fuzz.f_detail);
                 ])
             r.Fuzz.failures) );
    ]

let repro_json (r : Shrink.repro) =
  Json.Assoc
    [
      ("instrs", Json.Int (Shrink.instr_count r));
      ("windows", Json.Int (Schedule.n_windows r.Shrink.r_schedule));
      ( "fires",
        Json.List (List.map (fun i -> Json.Int i) r.Shrink.r_fires) );
      ("ocaml", Json.String (Shrink.to_ocaml r));
    ]

let make ~workload ~scheme ~seed ~budget ~explore ~fuzz ~repros =
  Json.Assoc
    [
      ("schema", Json.String "gecko.fuzz/1");
      ("workload", Json.String workload);
      ("scheme", Json.String scheme);
      ("seed", Json.Int seed);
      ("budget", Json.Int budget);
      ("explore", explore_json explore);
      ("fuzz", fuzz_json fuzz);
      ("repros", Json.List (List.map repro_json repros));
      ("failures_total", Json.Int (failures_total ~explore ~fuzz));
    ]

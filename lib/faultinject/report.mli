(** JSON report for [gecko fuzz]: exploration coverage, fuzzing summary
    and shrunk reproducers, under the schema id ["gecko.fuzz/1"]. *)

val make :
  workload:string ->
  scheme:string ->
  seed:int ->
  budget:int ->
  explore:Explore.report ->
  fuzz:Fuzz.result ->
  repros:Shrink.repro list ->
  Gecko_obs.Json.t

val failures_total : explore:Explore.report -> fuzz:Fuzz.result -> int

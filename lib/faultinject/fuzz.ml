module M = Gecko_machine.Machine
module Board = Gecko_machine.Board
module Schedule = Gecko_emi.Schedule
module Attack = Gecko_emi.Attack
module Signal = Gecko_emi.Signal
module Coupling = Gecko_emi.Coupling
module Device = Gecko_devices.Device
module Pool = Gecko_util.Pool
module Rng = Gecko_util.Rng

let resonant_attack ?(power_dbm = 20.) ?(distance_m = 0.1) (board : Board.t) =
  let profile = Device.coupling board.Board.device board.Board.monitor_choice in
  let f0 = Coupling.peak_frequency_mhz profile in
  Attack.remote ~distance_m (Signal.make ~freq_mhz:f0 ~power_dbm)

let checkpoint_times events =
  List.filter_map
    (fun e ->
      match e.M.ev_kind with
      | M.Ev_checkpoint | M.Ev_backup_signal _ -> Some e.M.ev_time
      | _ -> None)
    events

let checkpoint_schedule ~attack ~width times =
  Schedule.normalize
    (List.map
       (fun t ->
         Schedule.window
           ~t_start:(t -. (width /. 2.))
           ~t_end:(t +. (width /. 2.))
           attack)
       times)

type counters = {
  c_corruptions : int;
  c_ckpt_failures : int;
  c_brownouts : int;
  c_detections : int;
  c_completions : int;
}

type failure = { f_schedule : Schedule.t; f_detail : string }

type result = {
  evals : int;
  best_score : float;
  best_schedule : Schedule.t;
  best : counters;
  failures : failure list;
}

let counters_of (o : M.outcome) =
  {
    c_corruptions = o.M.corruptions;
    c_ckpt_failures = o.M.jit_checkpoint_failures;
    c_brownouts = o.M.brownouts;
    c_detections = o.M.detections;
    c_completions = o.M.completions;
  }

let score c ~oracle_failed =
  (1000. *. float_of_int c.c_corruptions)
  +. (10. *. float_of_int c.c_ckpt_failures)
  +. float_of_int c.c_brownouts
  +. (if oracle_failed then 1.0e6 else 0.)

(* One seeded mutation.  Every combinator normalizes, so any sequence of
   mutations stays a valid schedule. *)
let mutate rng ~attack ~times ~horizon t =
  let random_time () =
    match times with
    | [] -> Rng.float rng horizon
    | _ ->
        if Rng.bool rng then Rng.choose rng (Array.of_list times)
        else Rng.float rng horizon
  in
  let fresh_window () =
    let c = random_time () in
    let w = 0.0005 +. Rng.float rng 0.01 in
    Schedule.window ~t_start:(c -. (w /. 2.)) ~t_end:(c +. (w /. 2.)) attack
  in
  let n = Schedule.n_windows t in
  if n = 0 then Schedule.add_window t (fresh_window ())
  else
    let i = Rng.int rng n in
    match Rng.int rng 7 with
    | 0 -> Schedule.shift_window t i (Rng.gaussian rng ~mu:0. ~sigma:0.005)
    | 1 -> Schedule.move_window t i ~t_start:(random_time ())
    | 2 -> Schedule.scale_window t i (0.25 +. Rng.float rng 2.25)
    | 3 -> Schedule.split_window t i (0.2 +. Rng.float rng 0.6)
    | 4 -> Schedule.merge_with_next t i
    | 5 -> Schedule.drop_window t i
    | _ -> Schedule.add_window t (fresh_window ())

let fuzz ?jobs ?(budget = 64) ?(seed = 1) ?opts ~board ~image ~meta () =
  let opts = match opts with Some o -> o | None -> Explore.default_opts in
  let golden_nvm, golden_io =
    Explore.golden ~max_sim_time:opts.M.max_sim_time ~board ~image ~meta ()
  in
  let attack = resonant_attack board in
  (* Recon: run under a continuous tone with events recorded to learn when
     the victim (spuriously) checkpoints — the attacker's EM-probe step. *)
  let recon_opts =
    {
      opts with
      M.schedule = Schedule.always attack;
      record_events = true;
      trace = None;
      metrics = None;
    }
  in
  let recon = M.run ~board ~image ~meta recon_opts in
  let times = checkpoint_times recon.M.events in
  let horizon = Float.max 0.01 recon.M.sim_time in
  let eval sched =
    let o, nvm =
      M.run_with_nvm ~board ~image ~meta
        { opts with M.schedule = sched; trace = None; metrics = None }
    in
    let c = counters_of o in
    (* Only a completed run can violate crash consistency; a run the
       attack starved of progress scores on counters alone. *)
    let oracle_failed, detail =
      if o.M.completions < 1 then (false, "")
      else
        match Explore.oracle ~golden_nvm ~golden_io o ~nvm with
        | Ok () -> (false, "")
        | Error d -> (true, d)
    in
    (score c ~oracle_failed, c, oracle_failed, detail)
  in
  let rng = Rng.create seed in
  let seeds =
    [
      Schedule.empty;
      Schedule.always attack;
      checkpoint_schedule ~attack ~width:0.002 times;
      checkpoint_schedule ~attack ~width:0.01 times;
    ]
  in
  let pool =
    match jobs with
    | Some j when j > 1 -> Some (Pool.create ~jobs:j ())
    | _ -> None
  in
  let map_eval scheds =
    match pool with
    | Some p -> Pool.map p eval scheds
    | None -> List.map eval scheds
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      let evals = ref 0 in
      let failures = ref [] in
      let scored = ref [] in
      let run_batch batch =
        let batch =
          if !evals + List.length batch > budget then
            List.filteri (fun i _ -> !evals + i < budget) batch
          else batch
        in
        let rs = map_eval batch in
        evals := !evals + List.length batch;
        List.iter2
          (fun sched (sc, c, failed, detail) ->
            if failed then
              failures := { f_schedule = sched; f_detail = detail } :: !failures;
            scored := (sc, sched, c) :: !scored)
          batch rs
      in
      run_batch seeds;
      let keep = 4 in
      while !evals < budget do
        let top =
          List.sort (fun (a, _, _) (b, _, _) -> compare b a) !scored
          |> List.filteri (fun i _ -> i < keep)
        in
        let batch =
          List.concat_map
            (fun (_, sched, _) ->
              [ mutate rng ~attack ~times ~horizon sched;
                mutate rng ~attack ~times ~horizon sched ])
            top
        in
        run_batch batch
      done;
      let best_score, best_schedule, best =
        match List.sort (fun (a, _, _) (b, _, _) -> compare b a) !scored with
        | x :: _ -> x
        | [] -> (0., Schedule.empty, counters_of recon)
      in
      {
        evals = !evals;
        best_score;
        best_schedule;
        best;
        failures = List.rev !failures;
      })

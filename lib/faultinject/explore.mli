(** Exhaustive single-failure exploration (plus k=2 pairs).

    For a given image × scheme × board, the explorer injects one supply
    collapse at every consultation site of the program's execution (all
    event / checkpoint-word / rollback-step sites, and every instruction
    boundary up to the run budget — stride-sampled beyond it) and checks
    each post-recovery run against the golden uninterrupted run: the
    final data segment must be equal, the run must still complete, and
    the golden [io_log] must survive as a subsequence of the observed
    one (re-execution may legally duplicate outputs, but never lose or
    reorder them).

    This is the DiCA-style directed counterpart to the random
    [Schedule.t] sampling of the property tests: a
    wrong-at-one-boundary recovery bug cannot hide from it. *)

open Gecko_isa
module M = Gecko_machine.Machine

type failure = {
  f_fires : int list;  (** Injection ordinals of the failing replay. *)
  f_kind : string;  (** {!Inject.kind_name} of the (first) fired site. *)
  f_time : float;  (** Simulated time of the first fired site. *)
  f_detail : string;  (** Oracle message. *)
}

type report = {
  sites_total : int;  (** Consultations in the uninjected run. *)
  sites_by_kind : (string * int) list;
  explored : int;  (** Single-failure replays executed. *)
  explored_pairs : int;  (** k=2 replays executed. *)
  event_sites_covered : bool;
      (** Every non-[instr] site got its own replay (budget permitting). *)
  instr_stride : int;
      (** 1 = every instruction boundary was explored exhaustively. *)
  failures : failure list;
  baseline_ok : bool;  (** The uninjected run itself passes the oracle. *)
}

val golden :
  ?max_sim_time:float ->
  board:Gecko_machine.Board.t ->
  image:Link.image ->
  meta:Gecko_core.Meta.t ->
  unit ->
  int array * (int * int) list
(** Final data segment and [io_log] of one uninterrupted run on
    continuous power (the oracle's reference).  Raises [Failure] if the
    program cannot complete within [max_sim_time] (default 30 s) even on
    continuous power. *)

val oracle :
  golden_nvm:int array ->
  golden_io:(int * int) list ->
  M.outcome ->
  nvm:int array ->
  (unit, string) result
(** The crash-consistency check applied to every replay. *)

val default_opts : M.options
(** [Completions 1], IO recorded, a 30 s simulated-time safety cap. *)

val explore :
  ?jobs:int ->
  ?budget:int ->
  ?pairs:int ->
  ?seed:int ->
  ?opts:M.options ->
  board:Gecko_machine.Board.t ->
  image:Link.image ->
  meta:Gecko_core.Meta.t ->
  unit ->
  report
(** [budget] (default 256) caps the number of single-failure replays:
    non-[instr] sites are covered first (they are the protocol-critical
    ones), then instruction boundaries at the smallest stride that fits.
    [pairs] (default 0) adds that many seeded-random k=2 replays.
    [jobs] > 1 fans replays out over a domain pool; results are
    independent of the pool size. *)

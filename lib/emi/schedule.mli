(** Time-varying attack scenarios.

    Fig. 9 and Fig. 13 of the paper drive the victim with attacks that
    start and stop at chosen times (and change frequency to modulate
    aggressiveness).  A schedule is a list of windows. *)

type window = { t_start : float; t_end : float; attack : Attack.t }

type t

val empty : t

val make : window list -> t
(** Windows may not overlap; raises [Invalid_argument] if they do. *)

val window : t_start:float -> t_end:float -> Attack.t -> window

val always : Attack.t -> t
(** The attack is active for the whole run. *)

val active : t -> float -> Attack.t option
(** The attack active at a given simulation time, if any. *)

val windows : t -> window list

(** {2 Mutation combinators}

    Building blocks of the adversarial schedule fuzzer
    ([Gecko_faultinject.Fuzz]): split, merge, shift, move, re-scale or
    drop individual windows.  Every combinator re-establishes the
    schedule invariant by {!normalize}-ing its result, so arbitrary
    mutation sequences always yield a runnable schedule.  Out-of-range
    window indices leave the schedule unchanged. *)

val normalize : window list -> t
(** Sort by start time, clamp starts to [t >= 0], drop empty windows and
    clip a later-starting window where it overlaps an earlier one (the
    earlier window wins). *)

val n_windows : t -> int

val nth : t -> int -> window option

val shift_window : t -> int -> float -> t
(** Translate window [i] by [dt] seconds (either sign). *)

val move_window : t -> int -> t_start:float -> t
(** Move window [i] to start at [t_start], preserving its duration. *)

val scale_window : t -> int -> float -> t
(** Scale the duration of window [i] by [k] about its start
    ([k <= 0.] drops the window). *)

val split_window : t -> int -> float -> t
(** Split window [i] into two at fraction [frac] of its duration
    ([frac] outside [(0, 1)] is the identity). *)

val merge_with_next : t -> int -> t
(** Replace windows [i] and [i+1] by one spanning both (carrying window
    [i]'s attack). *)

val drop_window : t -> int -> t

val add_window : t -> window -> t
(** Insert a window; where it overlaps existing ones, earlier-starting
    windows win (see {!normalize}). *)

type window = { t_start : float; t_end : float; attack : Attack.t }

type t = window list (* sorted by t_start *)

let empty = []

let window ~t_start ~t_end attack =
  if t_end <= t_start then invalid_arg "Schedule.window: empty window";
  { t_start; t_end; attack }

let make windows =
  let sorted = List.sort (fun a b -> compare a.t_start b.t_start) windows in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.t_end > b.t_start then
          invalid_arg "Schedule.make: overlapping windows"
        else check rest
    | _ -> ()
  in
  check sorted;
  sorted

let always attack = [ { t_start = 0.; t_end = infinity; attack } ]

(* --- mutation combinators --------------------------------------------- *)

(* Re-establish the representation invariant from an arbitrary window
   bag: sort by start, clamp to t >= 0, drop empty windows, and clip a
   later-starting window where it overlaps an earlier one (the earlier
   window wins).  Mutators can therefore be sloppy and stay valid. *)
let normalize ws =
  let sorted =
    List.filter_map
      (fun w ->
        let t_start = Float.max 0. w.t_start in
        if w.t_end > t_start then Some { w with t_start } else None)
      ws
    |> List.sort (fun a b -> compare (a.t_start, a.t_end) (b.t_start, b.t_end))
  in
  let rec clip last acc = function
    | [] -> List.rev acc
    | w :: rest ->
        let t_start = Float.max w.t_start last in
        if w.t_end <= t_start then clip last acc rest
        else clip w.t_end ({ w with t_start } :: acc) rest
  in
  clip neg_infinity [] sorted

let n_windows t = List.length t

let nth t i = List.nth_opt t i

let update_nth t i f =
  if i < 0 || i >= List.length t then t
  else normalize (List.concat (List.mapi (fun j w -> if j = i then f w else [ w ]) t))

let shift_window t i dt =
  update_nth t i (fun w ->
      [ { w with t_start = w.t_start +. dt; t_end = w.t_end +. dt } ])

let move_window t i ~t_start =
  update_nth t i (fun w ->
      let dur = w.t_end -. w.t_start in
      [ { w with t_start; t_end = t_start +. dur } ])

let scale_window t i k =
  if k <= 0. then update_nth t i (fun _ -> [])
  else
    update_nth t i (fun w ->
        [ { w with t_end = w.t_start +. (k *. (w.t_end -. w.t_start)) } ])

let split_window t i frac =
  if frac <= 0. || frac >= 1. then t
  else
    update_nth t i (fun w ->
        let mid = w.t_start +. (frac *. (w.t_end -. w.t_start)) in
        [ { w with t_end = mid }; { w with t_start = mid } ])

let merge_with_next t i =
  if i < 0 || i + 1 >= List.length t then t
  else
    let a = List.nth t i and b = List.nth t (i + 1) in
    let merged = { a with t_end = Float.max a.t_end b.t_end } in
    normalize
      (merged :: List.filteri (fun j _ -> j <> i && j <> i + 1) t)

let drop_window t i = update_nth t i (fun _ -> [])

let add_window t w = normalize (w :: t)

let active t time =
  List.find_map
    (fun w ->
      if time >= w.t_start && time < w.t_end then Some w.attack else None)
    t

let windows t = t

type kind =
  | Adc of { sample_period : float }
  | Comparator of { latency : float }

type thresholds = { v_backup : float; v_on : float }

type event = Backup | Wake

type arm = Watch_backup | Watch_wake

type t = {
  kind : kind;
  th : thresholds;
  mutable enabled : bool;
  mutable arm : arm;
  mutable last_tick : float;  (* last ADC sample time *)
  mutable cond_since : float option;  (* comparator: condition onset time *)
  mutable observations : int;
  mutable fires : int;
  mutable on_event : time:float -> event -> unit;
}

let no_hook ~time:_ _ = ()

let create kind th =
  if th.v_on <= th.v_backup then
    invalid_arg "Monitor.create: v_on must exceed v_backup";
  {
    kind;
    th;
    enabled = true;
    arm = Watch_backup;
    last_tick = 0.;
    cond_since = None;
    observations = 0;
    fires = 0;
    on_event = no_hook;
  }

let kind t = t.kind
let thresholds t = t.th
let enabled t = t.enabled

let set_enabled t e =
  t.enabled <- e;
  if not e then t.cond_since <- None

let arm_backup t =
  t.arm <- Watch_backup;
  t.cond_since <- None

let arm_wake t =
  t.arm <- Watch_wake;
  t.cond_since <- None

let reset t = t.cond_since <- None

let sync t ~time =
  t.last_tick <- time;
  t.cond_since <- None

(* The worst-case disturbed reading the armed condition can latch onto:
   an attacker-induced swing of +/- disturbance around the true voltage. *)
let condition_holds t ~v_true ~disturbance =
  match t.arm with
  | Watch_backup -> v_true -. disturbance < t.th.v_backup
  | Watch_wake -> v_true +. disturbance >= t.th.v_on

let event_of_arm = function Watch_backup -> Backup | Watch_wake -> Wake

let set_on_event t f = t.on_event <- f
let observations t = t.observations
let fires t = t.fires

let observe_armed t ~time ~v_true ~disturbance =
  if not t.enabled then None
  else
    match t.kind with
    | Adc { sample_period } ->
        if time -. t.last_tick >= sample_period then begin
          t.last_tick <- time;
          if condition_holds t ~v_true ~disturbance then
            Some (event_of_arm t.arm)
          else None
        end
        else None
    | Comparator { latency } ->
        if condition_holds t ~v_true ~disturbance then begin
          match t.cond_since with
          | None ->
              t.cond_since <- Some time;
              if latency <= 0. then Some (event_of_arm t.arm) else None
          | Some t0 ->
              if time -. t0 >= latency then begin
                t.cond_since <- None;
                Some (event_of_arm t.arm)
              end
              else None
        end
        else begin
          t.cond_since <- None;
          None
        end

(* Earliest future time at which [observe] could do anything other than
   return [None] without touching its state.  Lets the machine skip the
   per-instruction call entirely between ADC samples. *)
let next_sample_time t =
  if not t.enabled then infinity
  else
    match t.kind with
    | Adc { sample_period } -> t.last_tick +. sample_period
    | Comparator _ -> neg_infinity

(* Batched-integration entry point for block-level dispatch: [true] when
   every [observe] over a stretch whose true voltage stays at or above
   [v_min] (with constant [disturbance]) is guaranteed to return [None]
   without changing any state an [observe]/[next_sample_time] sequence
   could later act on, so the per-instruction calls may be skipped
   wholesale.  For the comparator that means: armed on backup, no
   pending condition onset, and the worst-case disturbed reading still
   above the backup threshold — each skipped observe would have taken
   the condition-false branch, which resets [cond_since] to the [None]
   it already is.  Only the [observations] count differs, and nothing
   reads it back.  The ADC kind is paced by [next_sample_time] instead
   and always answers [false] here. *)
let quiescent t ~v_min ~disturbance =
  (not t.enabled)
  ||
  match t.kind with
  | Adc _ -> false
  | Comparator _ ->
      t.arm = Watch_backup && t.cond_since = None
      && v_min -. disturbance >= t.th.v_backup

let observe t ~time ~v_true ~disturbance =
  t.observations <- t.observations + 1;
  match observe_armed t ~time ~v_true ~disturbance with
  | Some ev as r ->
      t.fires <- t.fires + 1;
      t.on_event ~time ev;
      r
  | None -> None

(** Voltage monitor — the component EMI attacks manipulate.

    Two constructions, matching Section II-C:

    - {b ADC-based}: the supply is sampled periodically and compared in
      software/firmware against V_backup / V_on references.  Trigger
      latency is bounded by the sampling period.
    - {b Comparator-based}: a continuous analog comparator raises an
      interrupt as soon as the (disturbed) input crosses the reference;
      trigger latency is the comparator propagation delay.

    The monitor does not see the true capacitor voltage: it sees
    [v_true ± disturbance], where the disturbance amplitude comes from
    {!Gecko_emi.Attack.induced_amplitude}.  While the system is on the
    monitor watches for under-voltage (backup/checkpoint signal); while it
    is off it watches for the recovery voltage (wake signal).  This
    asymmetric worst-case envelope is exactly what lets an attacker
    ping-pong the device (DoS) and wake it inside the V_fail window
    (checkpoint failure / data corruption). *)

type kind =
  | Adc of { sample_period : float }
  | Comparator of { latency : float }

type thresholds = { v_backup : float; v_on : float }

type event = Backup | Wake

type t

val create : kind -> thresholds -> t

val kind : t -> kind
val thresholds : t -> thresholds

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** GECKO closes the attack surface by disabling the monitor; a disabled
    monitor produces no events at all. *)

val arm_backup : t -> unit
(** Watch for under-voltage (system running). *)

val arm_wake : t -> unit
(** Watch for the recovery threshold (system off / sleeping). *)

val observe : t -> time:float -> v_true:float -> disturbance:float -> event option
(** Advance the monitor to [time] and report a trigger, if any.  For the
    ADC kind, triggers only fire on sampling ticks; the comparator fires
    once its latency has elapsed since the condition first held. *)

val next_sample_time : t -> float
(** The earliest time at which {!observe} could react: the next ADC
    sampling tick ([last sample + period]); [neg_infinity] for the
    always-listening comparator kind; [infinity] while disabled.  Callers
    on a hot loop may skip {!observe} entirely before this time — every
    skipped call would have returned [None] without changing any state.
    The value is a lower bound that can only move later (sampling ticks
    and {!sync} push it forward), so a cached copy is safe until the
    monitor is re-enabled or observed again. *)

val quiescent : t -> v_min:float -> disturbance:float -> bool
(** [quiescent t ~v_min ~disturbance] is [true] when every {!observe}
    over a stretch whose true voltage stays at or above [v_min] (with
    constant [disturbance]) is guaranteed to return [None] without
    changing any state a later {!observe} or {!next_sample_time} could
    act on, so a block dispatcher may skip the per-instruction calls
    wholesale.  Only meaningful for the comparator kind — the ADC kind
    is already paced by {!next_sample_time} and always answers [false]
    here.  Skipped calls are not counted in {!observations}. *)

val reset : t -> unit
(** Forget pending condition timing (used at reboot). *)

val sync : t -> time:float -> unit
(** Restart the sampling clock at [time] (ADC kind): the first sample
    after a (re)boot happens one full sampling period later. *)

(** {2 Observability}

    The monitor is the component under attack, so the trace layer wants
    to see its raw output stream, not just what the runtime did with
    it. *)

val set_on_event : t -> (time:float -> event -> unit) -> unit
(** Hook invoked on every event {!observe} reports (before the caller
    sees it).  One hook at a time; the default is a no-op. *)

val observations : t -> int
(** Total {!observe} calls over the monitor's lifetime. *)

val fires : t -> int
(** Total events reported. *)

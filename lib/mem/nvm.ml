type t = {
  data : int array;
  checked : bool;
  mutable reads : int;
  mutable writes : int;
}

(* Explicit range validation (with a helpful message) is a debug mode:
   in normal operation every address comes from the linker or from
   masked dynamic indices, and the per-access cost matters because the
   simulator touches NVM on the instruction hot path.  Unchecked mode
   still cannot corrupt memory — OCaml's own array bounds check remains
   and raises a plain [Invalid_argument] instead. *)
let default_checked =
  lazy
    (match Sys.getenv_opt "GECKO_CHECKED" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let create ?checked ~words () =
  if words <= 0 then invalid_arg "Nvm.create: words must be positive";
  let checked =
    match checked with Some c -> c | None -> Lazy.force default_checked
  in
  { data = Array.make words 0; checked; reads = 0; writes = 0 }

let words t = Array.length t.data

let checked t = t.checked

let check t addr =
  if addr < 0 || addr >= Array.length t.data then
    invalid_arg (Printf.sprintf "Nvm: address %d out of range [0,%d)" addr (Array.length t.data))

let read t addr =
  if t.checked then check t addr;
  t.reads <- t.reads + 1;
  t.data.(addr)

let write t addr v =
  if t.checked then check t addr;
  t.writes <- t.writes + 1;
  t.data.(addr) <- v

let reads t = t.reads
let writes t = t.writes

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0

let load_program t (img : Gecko_isa.Link.image) =
  Array.fill t.data 0 (Array.length t.data) 0;
  List.iter
    (fun (space_id, init) ->
      let base = img.Gecko_isa.Link.space_base.(space_id) in
      Array.iteri (fun i v -> t.data.(base + i) <- v) init)
    img.Gecko_isa.Link.prog.Gecko_isa.Cfg.init_data

let snapshot t = Array.copy t.data

let restore t snap =
  if Array.length snap <> Array.length t.data then
    invalid_arg "Nvm.restore: size mismatch";
  Array.blit snap 0 t.data 0 (Array.length snap)

let diff a b =
  let n = min (Array.length a) (Array.length b) in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if a.(i) <> b.(i) then out := (i, a.(i), b.(i)) :: !out
  done;
  !out

(** Non-volatile main memory (FRAM-like).

    Word-addressed, byte-granularity is not modelled.  FRAM on MSP430-class
    parts has symmetric read/write latency and effectively unlimited
    endurance, so the model tracks access counts (for energy accounting by
    the machine) but no wear.

    Contents survive power failure by construction: the machine never
    clears an [Nvm.t] across simulated outages. *)

type t

val create : ?checked:bool -> words:int -> unit -> t
(** [checked] enables explicit address validation with a descriptive
    error message.  It defaults to false — all addresses come from the
    linker or from masked indices, and the validation sits on the
    simulator's instruction hot path — unless the [GECKO_CHECKED]
    environment variable is set to [1]/[true]/[yes]/[on].  Unchecked
    access is still memory-safe: an out-of-range address raises the
    runtime's own [Invalid_argument "index out of bounds"]. *)

val words : t -> int

val checked : t -> bool

val read : t -> int -> int
(** Raises [Invalid_argument] on an out-of-range address. *)

val write : t -> int -> int -> unit

val reads : t -> int
(** Cumulative read count. *)

val writes : t -> int
(** Cumulative write count. *)

val reset_stats : t -> unit

val load_program : t -> Gecko_isa.Link.image -> unit
(** Install the initial data-segment contents of an image (space initial
    values; everything else zeroed). *)

val snapshot : t -> int array
(** Copy of the full contents (does not count as reads). *)

val restore : t -> int array -> unit

val diff : int array -> int array -> (int * int * int) list
(** [diff a b] lists [(addr, a_val, b_val)] where the two snapshots
    disagree. *)

(** GECKO — defending intermittent systems against EMI attacks on the
    just-in-time checkpoint protocol (MICRO 2024 reproduction).

    This facade re-exports the public API:

    - {!Isa}: the MCU instruction set, CFG program form, builder, linker;
    - {!Analysis}: dataflow analyses (dominators, liveness, reaching
      definitions, alias, WCET);
    - {!Compiler}: the GECKO compiler — region formation, checkpoint
      pruning, slot colouring, recovery metadata — and the detection
      policy;
    - {!Machine}/{!Board}: the intermittent-system simulator;
    - {!Obs}: observability — trace recorder (Perfetto/Chrome trace
      export), metrics registry, compiler/runtime profiling;
    - {!Energy}, {!Emi}, {!Monitor}, {!Devices}: the physical substrates;
    - {!Workloads}: the benchmark suite;
    - {!Experiments}: every table/figure of the paper's evaluation;
    - {!Fleet}: the deterministic fleet-scale campaign simulator
      (thousands of devices, a shared spatial EMI field, sharded
      execution with mergeable aggregates, snapshot/resume).

    Quickstart:
    {[
      let prog = Gecko.Workloads.find "crc32" in
      let p, meta =
        Gecko.Compiler.Pipeline.compile Gecko.Compiler.Scheme.Gecko
          (prog.Gecko.Workloads.build ())
      in
      let image = Gecko.Isa.Link.link p in
      let board = Gecko.Board.default () in
      let outcome =
        Gecko.Machine.run ~board ~image ~meta
          Gecko.Machine.default_options
      in
      assert (outcome.Gecko.Machine.completions = 1)
    ]} *)

module Util = Gecko_util
module Obs = Gecko_obs
module Isa = Gecko_isa
module Mem = Gecko_mem
module Energy = Gecko_energy
module Emi = Gecko_emi
module Monitor = Gecko_monitor.Monitor
module Devices = Gecko_devices
module Analysis = Gecko_analysis
module Compiler = Gecko_core
module Machine = Gecko_machine.Machine
module Board = Gecko_machine.Board

module Workloads = struct
  include Gecko_workloads.Workload
end

module Faultinject = Gecko_faultinject
module Fleet = Gecko_fleet
module Experiments = Gecko_harness.Experiments
module Workbench = Gecko_harness.Workbench

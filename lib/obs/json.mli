(** Minimal JSON document model, printer and parser.

    Self-contained so the observability layer carries no external
    dependency.  The printer emits compact RFC 8259 JSON; non-finite
    floats (nan/inf), which JSON cannot represent, are emitted as
    [null].  The parser accepts any document the printer emits (plus
    standard whitespace and [\uXXXX] escapes) — enough for exporter
    round-trip tests and for external tools to be fed valid JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact rendering. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parse a complete document; trailing non-whitespace is an error. *)

val to_channel : out_channel -> t -> unit

(** {2 Accessors} *)

val member : string -> t -> t option
(** [member k (Assoc _)] looks up key [k]; [None] on other variants. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert; everything else is [None]. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option

val equal : t -> t -> bool
(** Structural equality; [Assoc] fields are order-sensitive. *)

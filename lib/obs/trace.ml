type phase = Instant | Complete of float | Counter of float

type entry = {
  name : string;
  cat : string;
  ts : float;
  host : float;
  tid : int;
  ph : phase;
}

let dummy = { name = ""; cat = ""; ts = 0.; host = 0.; tid = 0; ph = Instant }

type t = {
  mutable enabled : bool;
  capacity : int;
  mutable buf : entry array;  (* grows geometrically up to capacity *)
  mutable head : int;  (* index of the oldest entry once wrapped *)
  mutable len : int;
  mutable dropped : int;
  epoch : float;
}

let default_capacity = 262_144

let create ?(capacity = default_capacity) () =
  {
    enabled = true;
    capacity = max 1 capacity;
    buf = Array.make (min 1024 (max 1 capacity)) dummy;
    head = 0;
    len = 0;
    dropped = 0;
    epoch = Unix.gettimeofday ();
  }

let disabled () =
  let t = create ~capacity:default_capacity () in
  t.enabled <- false;
  t

let enabled t = t.enabled
let set_enabled t e = t.enabled <- e
let elapsed t = Unix.gettimeofday () -. t.epoch
let length t = t.len
let dropped t = t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let grow t =
  let cap = Array.length t.buf in
  if cap < t.capacity then begin
    let cap' = min t.capacity (cap * 2) in
    let buf' = Array.make cap' dummy in
    Array.blit t.buf 0 buf' 0 t.len;
    t.buf <- buf'
  end

let push t e =
  if t.enabled then begin
    let cap = Array.length t.buf in
    if t.len = cap && cap < t.capacity then grow t;
    let cap = Array.length t.buf in
    if t.len < cap then begin
      t.buf.((t.head + t.len) mod cap) <- e;
      t.len <- t.len + 1
    end
    else begin
      (* Full at capacity: overwrite the oldest. *)
      t.buf.(t.head) <- e;
      t.head <- (t.head + 1) mod cap;
      t.dropped <- t.dropped + 1
    end
  end

let instant t ?(cat = "") ?(tid = 0) ~ts name =
  if t.enabled then push t { name; cat; ts; host = elapsed t; tid; ph = Instant }

let complete t ?(cat = "") ?(tid = 0) ~ts ~dur name =
  if t.enabled then
    push t { name; cat; ts; host = elapsed t; tid; ph = Complete dur }

let counter t ?(cat = "") ?(tid = 0) ~ts name v =
  if t.enabled then
    push t { name; cat; ts; host = elapsed t; tid; ph = Counter v }

let span t ?cat ?tid name f =
  if not t.enabled then f ()
  else begin
    let t0 = elapsed t in
    let finish () = complete t ?cat ?tid ~ts:t0 ~dur:(elapsed t -. t0) name in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let entries t =
  let cap = Array.length t.buf in
  List.init t.len (fun i -> t.buf.((t.head + i) mod cap))

(* --- exporters -------------------------------------------------------- *)

let ph_string = function
  | Instant -> "i"
  | Complete _ -> "X"
  | Counter _ -> "C"

let chrome_entry ~pid (e : entry) =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String (if e.cat = "" then "default" else e.cat));
      ("ph", Json.String (ph_string e.ph));
      ("ts", Json.Float (e.ts *. 1e6));
      ("pid", Json.Int pid);
      ("tid", Json.Int e.tid);
    ]
  in
  let extra =
    match e.ph with
    | Instant -> [ ("s", Json.String "t") ]
    | Complete dur -> [ ("dur", Json.Float (dur *. 1e6)) ]
    | Counter _ -> []
  in
  let args =
    let host = [ ("host_s", Json.Float e.host) ] in
    match e.ph with
    | Counter v -> ("value", Json.Float v) :: host
    | Instant | Complete _ -> host
  in
  Json.Assoc (base @ extra @ [ ("args", Json.Assoc args) ])

let to_chrome ?(pid = 1) t =
  Json.Assoc
    [
      ("traceEvents", Json.List (List.map (chrome_entry ~pid) (entries t)));
      ( "otherData",
        Json.Assoc
          [
            ("recorded", Json.Int (t.len + t.dropped));
            ("dropped", Json.Int t.dropped);
          ] );
    ]

let to_chrome_string ?pid t = Json.to_string (to_chrome ?pid t)

let jsonl_entry (e : entry) =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String (ph_string e.ph));
      ("ts", Json.Float e.ts);
      ("host", Json.Float e.host);
      ("tid", Json.Int e.tid);
    ]
  in
  let extra =
    match e.ph with
    | Instant -> []
    | Complete dur -> [ ("dur", Json.Float dur) ]
    | Counter v -> [ ("value", Json.Float v) ]
  in
  Json.Assoc (base @ extra)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (jsonl_entry e);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

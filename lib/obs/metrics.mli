(** Metrics registry: named counters, gauges and log-bucketed
    histograms, with JSON and CSV dumps.

    Instruments are interned by name: asking a registry twice for the
    same name returns the same instrument; asking for an existing name
    with a different instrument kind raises [Invalid_argument].
    Recording into an instrument is O(1) and allocation-free. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val counter : registry -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
(** [nan] until first set. *)

val histogram : ?base:float -> ?lowest:float -> registry -> string -> histogram
(** Log-bucketed histogram: bucket [i] covers
    [\[lowest·base^i, lowest·base^(i+1))].  Defaults: [base = 2.],
    [lowest = 1e-9] (sub-nanosecond floor — durations in seconds land in
    sensible buckets).  Values below [lowest] (and non-positive values)
    count into an underflow bucket.  [base]/[lowest] are fixed by the
    first caller; later callers just get the interned instrument. *)

val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_min : histogram -> float
(** [nan] when empty. *)

val hist_max : histogram -> float
(** [nan] when empty. *)

val hist_mean : histogram -> float
(** [0.] when empty (Stats policy). *)

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [0,1]: the geometric midpoint of the
    bucket holding the [q]-th sample — accurate to one bucket width.
    [0.] when empty. *)

val bucket_bounds : histogram -> int -> float * float
(** Inclusive-lo/exclusive-hi bounds of bucket [i]. *)

val buckets : histogram -> (float * float * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending; the underflow
    bucket reports as [(0., lowest, n)]. *)

(** {2 Merge}

    Registries form a commutative monoid under {!merge_into} with the
    empty registry as identity: counters add, gauges keep the maximum of
    the set values (unset [nan] gauges are the identity), histograms add
    bucket-wise.  Integer fields merge exactly in any order; float sums
    are exactly commutative and associative up to rounding, so
    deterministic reducers (the fleet campaign) merge shards in a fixed
    order.  Used by sharded simulations to aggregate locally and reduce
    at the end. *)

val merge_into : registry -> registry -> unit
(** [merge_into dst src] folds every instrument of [src] into [dst],
    interning missing names.  Raises [Invalid_argument] if an
    instrument name is registered with a different kind, or a histogram
    with different [base]/[lowest], in the two registries. *)

(** {2 Persistence}

    Exact round-trip for campaign snapshots: [of_persist (to_persist r)]
    observes equal to [r] (floats print as [%.17g]; [nan]/infinite
    values degrade to JSON [null] and restore as [nan]). *)

val to_persist : registry -> Json.t

val of_persist : Json.t -> registry
(** Raises [Invalid_argument] on malformed input. *)

(** {2 Exporters} *)

val to_json : registry -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {count;
    sum; min; max; mean; p50; p90; p99; buckets: [{lo; hi; count}]}}}].
    Instruments are sorted by name. *)

val to_csv : registry -> string
(** [kind,name,field,value] rows, sorted by name; histograms emit
    [count]/[sum]/[min]/[max]/[mean]/[p50]/[p90]/[p99] rows plus one
    [bucket<lo:hi>] row per non-empty bucket. *)

val to_prometheus : registry -> string
(** Prometheus text exposition (format 0.0.4): one [# TYPE] line per
    instrument, names sanitized to the Prometheus charset (dots become
    underscores).  Histograms expose cumulative [_bucket{le="..."}]
    series over the non-empty log buckets (underflow included under
    [le="lowest"]) plus the mandatory [le="+Inf"] bucket, [_sum] and
    [_count]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_finite f then begin
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  end
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Assoc kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c lit value =
  let n = String.length lit in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = lit then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" lit)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad hex digit in \\u escape"

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  fail c "truncated \\u escape";
                let v = ref 0 in
                for _ = 1 to 4 do
                  v := (!v * 16) + hex_digit c c.src.[c.pos];
                  advance c
                done;
                (match Uchar.of_int !v with
                | u -> Buffer.add_utf_8_uchar buf u
                | exception Invalid_argument _ -> fail c "bad \\u code point")
            | _ -> fail c "unknown escape");
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Assoc []
      end
      else
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Assoc (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage after document"
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors -------------------------------------------------------- *)

let member k = function Assoc kvs -> List.assoc_opt k kvs | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> x = y
  | List xs, List ys -> List.equal equal xs ys
  | Assoc xs, Assoc ys ->
      List.equal (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) xs ys
  | _ -> false

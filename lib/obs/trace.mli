(** Low-overhead trace recorder.

    Records {e instant events}, {e complete spans} and {e counter
    samples}, each stamped with a caller-supplied timestamp [ts] (the
    simulator passes simulated seconds; the compiler profiler passes
    host seconds via {!elapsed}) and with the host wall clock at record
    time.  Entries live in a bounded ring buffer: recording is O(1),
    allocation-free once the buffer has grown to steady state, and when
    the buffer is full the oldest entries are overwritten (the drop
    count is kept).  A disabled recorder ({!set_enabled}[ t false] or
    {!disabled}) rejects entries with a single branch — safe to leave
    wired into hot paths.

    Exporters produce the Chrome trace-event JSON array format (load
    the file in Perfetto / [chrome://tracing]) and JSONL. *)

type phase =
  | Instant  (** A point event ([ph = "i"]). *)
  | Complete of float  (** A span with this duration in seconds ([ph = "X"]). *)
  | Counter of float  (** A sampled value ([ph = "C"]). *)

type entry = {
  name : string;
  cat : string;  (** Chrome trace category, e.g. ["checkpoint"]. *)
  ts : float;  (** Caller clock, seconds (simulated or host-elapsed). *)
  host : float;  (** Host wall-clock seconds since recorder creation. *)
  tid : int;  (** Track id; exporters map it to the Chrome [tid]. *)
  ph : phase;
}

type t

val create : ?capacity:int -> unit -> t
(** A fresh enabled recorder.  [capacity] (default 262144 entries)
    bounds memory; past it the oldest entries are dropped. *)

val disabled : unit -> t
(** A permanently cheap no-op recorder (can be re-enabled). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val elapsed : t -> float
(** Host wall-clock seconds since [create] — the profiling clock. *)

val instant : t -> ?cat:string -> ?tid:int -> ts:float -> string -> unit
val complete : t -> ?cat:string -> ?tid:int -> ts:float -> dur:float -> string -> unit
val counter : t -> ?cat:string -> ?tid:int -> ts:float -> string -> float -> unit

val span : t -> ?cat:string -> ?tid:int -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] and records a host-clock complete span
    around it — the compiler-profiler idiom.  The span is recorded even
    if [f] raises. *)

val length : t -> int
(** Entries currently held (≤ capacity). *)

val dropped : t -> int
(** Entries overwritten after the ring filled. *)

val entries : t -> entry list
(** Oldest first. *)

val clear : t -> unit

(** {2 Exporters} *)

val to_chrome : ?pid:int -> t -> Json.t
(** The Chrome trace-event object form:
    [{"traceEvents": [...], "otherData": {"recorded"; "dropped"}}] — one
    [{name; cat; ph; ts; pid; tid}] object per entry, [ts] in
    microseconds.  Counter entries carry [args = {"value": v}]; every
    entry carries [args.host_s].  [otherData] records how many entries
    the ring ever saw and how many were overwritten, so a truncated
    trace is visible instead of silently short (Perfetto and
    chrome://tracing accept both the array and the object form). *)

val to_chrome_string : ?pid:int -> t -> string

val to_jsonl : t -> string
(** One compact JSON object per line:
    [{"name"; "cat"; "ph"; "ts"; "host"; "tid"; "dur"?; "value"?}]. *)

(** Fixed-capacity flight recorder — the device's black box.

    Keeps the last-N machine/runtime events (boundary commits, checkpoint
    begin/commit/fail, detections, rollbacks, brownouts, attack-window
    entries, io commits) with a voltage snapshot per event.  Unlike
    {!Trace} — which records everything and is sized for one closely
    watched run — a flight recorder is sized for a fleet: every device
    can carry one at near-zero cost, and only the recorders of anomalous
    devices are ever dumped.

    Recording is allocation-free: the ring is preallocated at creation
    and entries are overwritten in place (event names are static
    strings).  A disabled recorder rejects entries with one branch.

    All fields are simulated-time quantities — a dump is byte-identical
    across hosts, pool widths and wall-clock conditions. *)

type entry = {
  e_t : float;  (** Simulated seconds. *)
  e_ev : string;  (** Event name, e.g. ["rollback"]. *)
  e_arg : int;  (** Event argument (boundary id, staged count, ...). *)
  e_v : float;  (** Supply voltage at the instant (V). *)
}

type t

val default_capacity : int
(** 64 — deep enough to show the protocol context around an anomaly,
    small enough for a million devices to carry one each. *)

val create : ?capacity:int -> unit -> t
(** A fresh enabled recorder holding the last [capacity] events
    (default {!default_capacity}, clamped to at least 1). *)

val disabled : unit -> t
(** A permanently cheap no-op recorder (can be re-enabled). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> t_sim:float -> arg:int -> v:float -> string -> unit
(** Append an event; once full, the oldest is overwritten.  [ev] should
    be a static string — the hot path then allocates nothing. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Events overwritten after the ring filled. *)

val clear : t -> unit

val entries : t -> entry list
(** Oldest first. *)

val schema : string
(** ["gecko.flight/1"]. *)

val to_json : t -> Json.t
(** The [gecko.flight/1] dump:
    [{"schema"; "capacity"; "recorded"; "dropped";
      "events": [{"t"; "ev"; "arg"; "v"}, ...]}]
    with events oldest-first.  [recorded] counts every event ever seen
    (kept + dropped). *)

val to_string : t -> string

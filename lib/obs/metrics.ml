type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type histogram = {
  h_name : string;
  base : float;
  lowest : float;
  log_base : float;
  mutable counts : int array;
  mutable underflow : int;
  mutable n : int;
  mutable sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument = C of counter | G of gauge | H of histogram

type registry = (string, instrument) Hashtbl.t

let create () : registry = Hashtbl.create 32

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let intern reg name make match_kind =
  match Hashtbl.find_opt reg name with
  | Some i -> (
      match match_kind i with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name i)))
  | None ->
      let i = make () in
      Hashtbl.replace reg name i;
      (match match_kind i with Some v -> v | None -> assert false)

let counter reg name =
  intern reg name
    (fun () -> C { c_name = name; count = 0 })
    (function C c -> Some c | _ -> None)

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let gauge reg name =
  intern reg name
    (fun () -> G { g_name = name; value = Float.nan })
    (function G g -> Some g | _ -> None)

let set_gauge g v = g.value <- v
let gauge_value g = g.value

let max_buckets = 512

let histogram ?(base = 2.) ?(lowest = 1e-9) reg name =
  if base <= 1. then invalid_arg "Metrics.histogram: base must exceed 1";
  if lowest <= 0. then invalid_arg "Metrics.histogram: lowest must be positive";
  intern reg name
    (fun () ->
      H
        {
          h_name = name;
          base;
          lowest;
          log_base = log base;
          counts = Array.make 8 0;
          underflow = 0;
          n = 0;
          sum = 0.;
          h_min = Float.nan;
          h_max = Float.nan;
        })
    (function H h -> Some h | _ -> None)

let bucket_index h v =
  if v < h.lowest then -1
  else
    let i = int_of_float (floor (log (v /. h.lowest) /. h.log_base)) in
    min (max i 0) (max_buckets - 1)

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if Float.is_nan h.h_min || v < h.h_min then h.h_min <- v;
  if Float.is_nan h.h_max || v > h.h_max then h.h_max <- v;
  let i = bucket_index h v in
  if i < 0 then h.underflow <- h.underflow + 1
  else begin
    if i >= Array.length h.counts then begin
      let counts' = Array.make (min max_buckets (max (i + 1) (2 * Array.length h.counts))) 0 in
      Array.blit h.counts 0 counts' 0 (Array.length h.counts);
      h.counts <- counts'
    end;
    h.counts.(i) <- h.counts.(i) + 1
  end

let hist_count h = h.n
let hist_sum h = h.sum
let hist_min h = h.h_min
let hist_max h = h.h_max
let hist_mean h = if h.n = 0 then 0. else h.sum /. float_of_int h.n

let bucket_bounds h i =
  (h.lowest *. (h.base ** float_of_int i), h.lowest *. (h.base ** float_of_int (i + 1)))

let quantile h q =
  if h.n = 0 then 0.
  else begin
    let target =
      let r = int_of_float (ceil (q *. float_of_int h.n)) in
      min (max r 1) h.n
    in
    let seen = ref h.underflow in
    if !seen >= target then h.lowest /. 2.
    else begin
      let result = ref Float.nan in
      (try
         Array.iteri
           (fun i c ->
             seen := !seen + c;
             if c > 0 && !seen >= target then begin
               let lo, hi = bucket_bounds h i in
               result := sqrt (lo *. hi);
               raise Exit
             end)
           h.counts
       with Exit -> ());
      if Float.is_nan !result then h.h_max else !result
    end
  end

let buckets h =
  let under = if h.underflow > 0 then [ (0., h.lowest, h.underflow) ] else [] in
  let rest = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo, hi = bucket_bounds h i in
        rest := (lo, hi, c) :: !rest)
    h.counts;
  under @ List.rev !rest

(* --- merge ------------------------------------------------------------ *)

let merge_gauge_value a b =
  if Float.is_nan b then a else if Float.is_nan a then b else Float.max a b

let merge_min a b =
  if Float.is_nan b then a else if Float.is_nan a then b else Float.min a b

let merge_max a b =
  if Float.is_nan b then a else if Float.is_nan a then b else Float.max a b

let merge_hist_into (dst : histogram) (src : histogram) =
  if dst.base <> src.base || dst.lowest <> src.lowest then
    invalid_arg
      (Printf.sprintf
         "Metrics.merge_into: histogram %S bucketing mismatch (base %g/%g, \
          lowest %g/%g)"
         dst.h_name dst.base src.base dst.lowest src.lowest);
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  dst.underflow <- dst.underflow + src.underflow;
  dst.h_min <- merge_min dst.h_min src.h_min;
  dst.h_max <- merge_max dst.h_max src.h_max;
  if Array.length src.counts > Array.length dst.counts then begin
    let counts' = Array.make (Array.length src.counts) 0 in
    Array.blit dst.counts 0 counts' 0 (Array.length dst.counts);
    dst.counts <- counts'
  end;
  Array.iteri (fun i c -> if c <> 0 then dst.counts.(i) <- dst.counts.(i) + c)
    src.counts

let merge_into (dst : registry) (src : registry) =
  Hashtbl.iter
    (fun name i ->
      match i with
      | C c ->
          let d = counter dst name in
          d.count <- d.count + c.count
      | G g ->
          let d = gauge dst name in
          d.value <- merge_gauge_value d.value g.value
      | H h ->
          let d = histogram ~base:h.base ~lowest:h.lowest dst name in
          merge_hist_into d h)
    src

(* --- exporters -------------------------------------------------------- *)

let sorted_instruments (reg : registry) =
  Hashtbl.fold (fun name i acc -> (name, i) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_json h =
  Json.Assoc
    [
      ("count", Json.Int h.n);
      ("sum", Json.Float h.sum);
      ("min", Json.Float h.h_min);
      ("max", Json.Float h.h_max);
      ("mean", Json.Float (hist_mean h));
      ("p50", Json.Float (quantile h 0.5));
      ("p90", Json.Float (quantile h 0.9));
      ("p99", Json.Float (quantile h 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.Assoc
                 [
                   ("lo", Json.Float lo); ("hi", Json.Float hi); ("count", Json.Int c);
                 ])
             (buckets h)) );
    ]

let to_json reg =
  let items = sorted_instruments reg in
  let pick f = List.filter_map f items in
  Json.Assoc
    [
      ( "counters",
        Json.Assoc
          (pick (function n, C c -> Some (n, Json.Int c.count) | _ -> None)) );
      ( "gauges",
        Json.Assoc
          (pick (function n, G g -> Some (n, Json.Float g.value) | _ -> None))
      );
      ( "histograms",
        Json.Assoc
          (pick (function n, H h -> Some (n, hist_json h) | _ -> None)) );
    ]

(* Exact persistence: unlike [to_json] (a lossy human-facing export),
   [to_persist]/[of_persist] round-trip a registry bit-for-bit for finite
   values ([%.17g] floats; nan/inf degrade to JSON null and restore as
   nan).  The fleet campaign snapshot leans on this: a resumed campaign
   must merge to the byte-identical report. *)

let persist_float f = if Float.is_nan f then Json.Null else Json.Float f

let restore_float = function
  | Json.Null -> Float.nan
  | j -> (
      match Json.to_float_opt j with
      | Some f -> f
      | None -> invalid_arg "Metrics.of_persist: expected a number")

let to_persist reg =
  let items = sorted_instruments reg in
  let pick f = List.filter_map f items in
  Json.Assoc
    [
      ( "counters",
        Json.Assoc
          (pick (function n, C c -> Some (n, Json.Int c.count) | _ -> None)) );
      ( "gauges",
        Json.Assoc
          (pick (function n, G g -> Some (n, persist_float g.value) | _ -> None))
      );
      ( "histograms",
        Json.Assoc
          (pick (function
            | n, H h ->
                Some
                  ( n,
                    Json.Assoc
                      [
                        ("base", Json.Float h.base);
                        ("lowest", Json.Float h.lowest);
                        ("n", Json.Int h.n);
                        ("sum", persist_float h.sum);
                        ("underflow", Json.Int h.underflow);
                        ("min", persist_float h.h_min);
                        ("max", persist_float h.h_max);
                        ( "counts",
                          Json.List
                            (Array.to_list
                               (Array.map (fun c -> Json.Int c) h.counts)) );
                      ] )
            | _ -> None)) );
    ]

let of_persist j =
  let bad msg = invalid_arg ("Metrics.of_persist: " ^ msg) in
  let obj name =
    match Json.member name j with
    | Some (Json.Assoc kvs) -> kvs
    | Some _ -> bad (name ^ " is not an object")
    | None -> bad ("missing " ^ name)
  in
  let int_of = function Json.Int i -> i | _ -> bad "expected an integer" in
  let reg = create () in
  List.iter
    (fun (name, v) ->
      let c = counter reg name in
      c.count <- int_of v)
    (obj "counters");
  List.iter
    (fun (name, v) ->
      let g = gauge reg name in
      g.value <- restore_float v)
    (obj "gauges");
  List.iter
    (fun (name, v) ->
      let field k =
        match Json.member k v with
        | Some x -> x
        | None -> bad ("histogram " ^ name ^ " lacks " ^ k)
      in
      let h = histogram ~base:(restore_float (field "base"))
          ~lowest:(restore_float (field "lowest")) reg name
      in
      h.n <- int_of (field "n");
      h.sum <- restore_float (field "sum");
      h.underflow <- int_of (field "underflow");
      h.h_min <- restore_float (field "min");
      h.h_max <- restore_float (field "max");
      (match field "counts" with
      | Json.List cs -> h.counts <- Array.of_list (List.map int_of cs)
      | _ -> bad ("histogram " ^ name ^ " counts is not a list")))
    (obj "histograms");
  reg

(* Prometheus text exposition (version 0.0.4).  Instrument names keep
   their dotted form in the registry; the exposition sanitizes them to
   the [a-zA-Z_:][a-zA-Z0-9_:]* charset.  Histogram buckets follow the
   Prometheus convention: cumulative counts with [le] upper bounds plus
   the mandatory [+Inf] bucket, then [_sum] and [_count]. *)

let prom_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | '_' -> c
      | _ -> '_')
    name

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

let to_prometheus reg =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, i) ->
      let n = prom_name name in
      match i with
      | C c ->
          line "# TYPE %s counter" n;
          line "%s %d" n c.count
      | G g ->
          line "# TYPE %s gauge" n;
          line "%s %s" n (prom_float g.value)
      | H h ->
          line "# TYPE %s histogram" n;
          let cum = ref h.underflow in
          if h.underflow > 0 then
            line "%s_bucket{le=\"%s\"} %d" n (prom_float h.lowest) !cum;
          Array.iteri
            (fun i c ->
              if c > 0 then begin
                cum := !cum + c;
                let _, hi = bucket_bounds h i in
                line "%s_bucket{le=\"%s\"} %d" n (prom_float hi) !cum
              end)
            h.counts;
          line "%s_bucket{le=\"+Inf\"} %d" n h.n;
          line "%s_sum %s" n (prom_float h.sum);
          line "%s_count %d" n h.n)
    (sorted_instruments reg);
  Buffer.contents buf

let csv_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "nan"

let to_csv reg =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,name,field,value\n";
  List.iter
    (fun (name, i) ->
      match i with
      | C c -> Buffer.add_string buf (Printf.sprintf "counter,%s,value,%d\n" name c.count)
      | G g ->
          Buffer.add_string buf
            (Printf.sprintf "gauge,%s,value,%s\n" name (csv_float g.value))
      | H h ->
          List.iter
            (fun (field, v) ->
              Buffer.add_string buf
                (Printf.sprintf "histogram,%s,%s,%s\n" name field (csv_float v)))
            [
              ("count", float_of_int h.n);
              ("sum", h.sum);
              ("min", h.h_min);
              ("max", h.h_max);
              ("mean", hist_mean h);
              ("p50", quantile h 0.5);
              ("p90", quantile h 0.9);
              ("p99", quantile h 0.99);
            ];
          List.iter
            (fun (lo, hi, c) ->
              Buffer.add_string buf
                (Printf.sprintf "histogram,%s,bucket<%.3g:%.3g>,%d\n" name lo hi c))
            (buckets h))
    (sorted_instruments reg);
  Buffer.contents buf

type entry = { e_t : float; e_ev : string; e_arg : int; e_v : float }

(* The ring holds mutable slots overwritten in place, so steady-state
   recording allocates nothing; [entries]/[to_json] copy out into the
   immutable [entry] form. *)
type slot = {
  mutable s_t : float;
  mutable s_ev : string;
  mutable s_arg : int;
  mutable s_v : float;
}

type t = {
  mutable enabled : bool;
  buf : slot array;
  mutable head : int;  (* index of the oldest slot once wrapped *)
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  {
    enabled = true;
    buf = Array.init capacity (fun _ -> { s_t = 0.; s_ev = ""; s_arg = 0; s_v = 0. });
    head = 0;
    len = 0;
    dropped = 0;
  }

let disabled () =
  let t = create ~capacity:1 () in
  t.enabled <- false;
  t

let enabled t = t.enabled
let set_enabled t e = t.enabled <- e
let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let record t ~t_sim ~arg ~v ev =
  if t.enabled then begin
    let cap = Array.length t.buf in
    let s =
      if t.len < cap then begin
        let s = t.buf.((t.head + t.len) mod cap) in
        t.len <- t.len + 1;
        s
      end
      else begin
        let s = t.buf.(t.head) in
        t.head <- (t.head + 1) mod cap;
        t.dropped <- t.dropped + 1;
        s
      end
    in
    s.s_t <- t_sim;
    s.s_ev <- ev;
    s.s_arg <- arg;
    s.s_v <- v
  end

let entries t =
  let cap = Array.length t.buf in
  List.init t.len (fun i ->
      let s = t.buf.((t.head + i) mod cap) in
      { e_t = s.s_t; e_ev = s.s_ev; e_arg = s.s_arg; e_v = s.s_v })

let schema = "gecko.flight/1"

let to_json t =
  Json.Assoc
    [
      ("schema", Json.String schema);
      ("capacity", Json.Int (Array.length t.buf));
      ("recorded", Json.Int (t.len + t.dropped));
      ("dropped", Json.Int t.dropped);
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Assoc
                 [
                   ("t", Json.Float e.e_t);
                   ("ev", Json.String e.e_ev);
                   ("arg", Json.Int e.e_arg);
                   ("v", Json.Float e.e_v);
                 ])
             (entries t)) );
    ]

let to_string t = Json.to_string (to_json t)

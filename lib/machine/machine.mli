(** The intermittent-system MCU simulator.

    Executes a linked image with cycle and energy accounting against the
    board's capacitor, harvester, voltage monitor and EMI environment, and
    hosts the runtime of the compiled scheme:

    - {b NVP} (CTPL-style): monitor-triggered JIT checkpoint ISR, restore
      on wake, ACK barrier;
    - {b Ratchet}: boundary commits with parity double buffering, full
      register rollback at boot;
    - {b GECKO}: JIT roll-forward in normal operation, detection via
      ACK/progress checks, monitor disablement and idempotent rollback
      (slot restores + recovery-block execution) under attack, and the
      probe-based return to JIT.

    DoS ping-pong, V_fail-window wakes, partial checkpoints and data
    corruption all emerge from the simulation loop; nothing is scripted. *)

open Gecko_isa
open Gecko_emi

type limit =
  | Sim_time of float  (** Stop at this simulated time (s). *)
  | Completions of int  (** Stop after N application completions. *)

(** Power/runtime events, recorded when [record_events] is set. *)
type event_kind =
  | Ev_boot of Gecko_core.Policy.mode
  | Ev_restore_jit
  | Ev_rollback of int  (** boundary id rolled back to *)
  | Ev_fresh_start
  | Ev_backup_signal of bool  (** [true] when the timer check flagged it *)
  | Ev_checkpoint
  | Ev_checkpoint_failed
  | Ev_brownout
  | Ev_detection
  | Ev_reenable
  | Ev_completion

type event = { ev_time : float; ev_kind : event_kind }

val pp_event : Format.formatter -> event -> unit

(** Fault-injection sites: the instants at which a run consults the
    injector installed via {!Step.set_injector}.  Returning [true] from
    the injector collapses the supply at exactly that point; everything
    downstream (partial checkpoint, brownout, recovery) then follows
    from the ordinary simulation machinery. *)
type inject_site =
  | S_instr  (** An instruction fetch boundary (the instruction does not
                 execute). *)
  | S_event of event_kind  (** A runtime event was just recorded. *)
  | S_ckpt_word of int
      (** The JIT checkpoint ISR is about to write NVM word [k] (SRAM
          sections first, then registers/PC/ACK) — the word is lost. *)
  | S_rollback_step of int
      (** Restore/recovery step [k] of a rollback. *)

type options = {
  schedule : Schedule.t;
  limit : limit;
  max_sim_time : float;  (** Hard cap regardless of [limit]. *)
  timeline_bucket : float option;
      (** Collect per-bucket app cycles and completions. *)
  seed : int;
  restart_on_halt : bool;
      (** Re-initialize data and re-run on completion (throughput runs). *)
  record_io : bool;
  record_events : bool;
  start_charged : bool;
  trace : Gecko_obs.Trace.t option;
      (** Trace recorder (simulated-time stamps).  Receives instants for
          every runtime event, complete spans for power-on periods,
          checkpoint ISRs and rollbacks, the raw monitor event stream
          (category [monitor]) and a periodic [cap_voltage] counter
          track.  [None] (the default) or a disabled recorder keeps the
          simulation loop on its plain path. *)
  metrics : Gecko_obs.Metrics.registry option;
      (** Metrics sink: end-of-run counters/gauges ([machine.*],
          [monitor.*], [energy.*]) and latency histograms
          ([machine.jit_checkpoint_isr_s], [machine.rollback_s]).
          Counters accumulate across runs sharing a registry. *)
  flight : Gecko_obs.Flight.t option;
      (** Flight recorder — a fixed-capacity ring of the last-N runtime
          events with voltage snapshots, cheap enough for every fleet
          device to carry one.  Receives every {!event_kind} (whether or
          not [record_events] is set) plus [checkpoint_begin],
          [boundary] (arg = boundary id), [io_commit] (arg = records
          committed) and [attack_window] (arg = window index) markers.
          Pure observation: runs with and without a recorder are
          semantically identical.  [None] (the default) or a disabled
          recorder keeps the plain path. *)
  fast : bool;
      (** [true] (the default) dispatches through the pre-decoded block
          stream whenever the block guard holds; [false] forces the
          per-instruction checked path everywhere.  Outcomes are
          identical either way — the switch exists for differential
          tests and debugging. *)
  decoded : Decode.t option;
      (** A cached {!Decode.decode} of the run's image (see the
          Workbench decode cache).  [None] (the default) decodes at
          [run] time — O(code size), irrelevant for all but the
          shortest runs.  A value decoded from a different image or
          device is ignored. *)
}

val default_options : options

type timeline = {
  bucket : float;
  app_seconds_per_bucket : float array;
  completions_per_bucket : int array;
}

type outcome = {
  completions : int;
  completion_times : float list;  (** In order. *)
  sim_time : float;
  instructions : int;
      (** Instructions executed while powered — the simulator's unit of
          interpreter throughput ([instructions /. wall_seconds] is the
          bench harness's [sim_instr_per_sec]). *)
  app_cycles : int;  (** Cycles spent on original program instructions. *)
  app_seconds : float;
  instrumentation_cycles : int;
      (** Cycles spent on compiler-inserted instructions (Ckpt/Boundary). *)
  jit_checkpoints : int;
  jit_checkpoint_failures : int;
  reboots : int;
  brownouts : int;
  detections : int;
  reenables : int;
  rollbacks : int;
  recovery_block_runs : int;
  misspeculations : int;
      (** Rollbacks on a speculative (guarded) image that replayed at
          least one undo-log entry — a residual may-alias hazard whose
          store really did clobber a word its crash window had read. *)
  boundary_commits : int;
      (** Dynamic [Boundary] executions (region commits). *)
  ckpt_stores : int;
      (** Dynamic [Ckpt]/[CkptDyn] executions (checkpoint slot writes). *)
  guarded_stores : int;
      (** Dynamic executions of speculation-guarded stores (undo-log
          appends).  Zero on unguarded images. *)
  corruptions : int;  (** Boots that resumed from a corrupt JIT image. *)
  io_out_count : int;
  io_log : (int * int) list;  (** (port, value), in order, if recorded. *)
  final_mode : Gecko_core.Policy.mode;
  timeline : timeline option;
  events : event list;  (** In order, when [record_events] was set. *)
  hit_limit : bool;  (** False if stopped by [max_sim_time] instead. *)
}

val forward_progress : outcome -> float
(** R = forward-progress time / total time (Section IV-A2). *)

val checkpoint_failure_rate : outcome -> float
(** F = N_fail / N_checkpoints (Section IV-B2). *)

val run :
  board:Board.t ->
  image:Link.image ->
  meta:Gecko_core.Meta.t ->
  options ->
  outcome

val golden_nvm :
  board:Board.t -> image:Link.image -> meta:Gecko_core.Meta.t -> int array
(** Data-segment snapshot after one uninterrupted run on continuous power
    (the crash-consistency reference). *)

val run_with_nvm :
  board:Board.t ->
  image:Link.image ->
  meta:Gecko_core.Meta.t ->
  options ->
  outcome * int array
(** Like {!run} but also returns the final data-segment snapshot. *)

(** Deterministic stepping interface for fault-injection drivers
    (`Gecko_faultinject`).

    A handle is one run of {!run} broken into externally-driven steps; a
    step is one instruction (while powered) or one sleep tick (while
    off).  An installed injector is consulted at every {!inject_site} in
    deterministic order, so "the [n]-th consultation" identifies an
    exact injection point reproducibly across replays of the same
    (board, image, options). *)
module Step : sig
  type handle

  val start :
    board:Board.t ->
    image:Link.image ->
    meta:Gecko_core.Meta.t ->
    options ->
    handle

  val set_injector : handle -> (inject_site -> bool) option -> unit
  (** Install (or remove) the injector consulted at every site.
      Returning [true] forces a supply collapse at that instant. *)

  val step : handle -> bool
  (** Advance one step; [false] once the run has stopped (limit reached
      or completed). *)

  val step_block : handle -> bool
  (** Advance one main-loop turn: a whole pre-decoded block when the
      fast-path guard holds (powered, no injector, not tracing, decoded
      stream available, no pending attack/monitor/limit event inside the
      block), else exactly one fully-checked {!step}.  [Machine.run] is
      [while step_block h do () done] followed by {!outcome}, so a
      driver interleaving [step_block] turns across many handles — the
      lockstep fleet engine — reproduces [run] bit for bit per device.
      [false] once the run has stopped. *)

  val finished : handle -> bool

  val time : handle -> float
  val instructions : handle -> int
  val powered : handle -> bool
  val mode : handle -> Gecko_core.Policy.mode

  val force_power_failure : handle -> unit
  (** Collapse the supply now (outside any injector callback). *)

  val outcome : handle -> outcome
  (** Close the run's bookkeeping and return the outcome.  Call once,
      after {!step} returned [false] (metrics registries accumulate per
      call). *)

  val nvm_data : handle -> int array
  (** Final data-segment snapshot (the crash-consistency subject). *)
end

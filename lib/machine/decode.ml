(* Pre-decoded instruction stream for the interpreter fast path.

   A one-time pass lowers [Link.image] into a flat array of micro-ops
   with every per-instruction decision the hot loop used to make
   resolved ahead of time:

   - operands are plain ints (register indices, absolute NVM addresses,
     branch-target slots) — no [Link.resolve], no [Reg.to_int], no
     [Cost.instr_cycles] match at run time;
   - per-slot [dt] (wall advance) and [en] (capacitor drain, including
     NVM access energy) are precomputed with the *same float expressions*
     the interpreter evaluates, so a decoded run is bit-identical to an
     undecoded one;
   - straight-line runs between control-flow split points are grouped
     into basic blocks, with per-slot *suffix* energy/time totals so the
     machine can prove, in O(1) at any entry point (jump target, JIT
     restore, rollback resume), that a whole block can run without any
     per-instruction brownout / monitor / attack-window / limit check
     firing;
   - the dominant load→op, op→store and compare→branch pairs are fused
     into superinstructions.  A fused op occupies the slot of its first
     constituent; the second slot keeps its own unfused op so control
     may still enter there (a restore or return can land on any slot).
     Fusion never crosses a block split point.

   Boundary commits and Halt have data-dependent cost (progress flag,
   restart) and power/mode side effects, so they are "solo" slots: their
   suffix totals are infinite, which forces the machine back onto the
   fully-checked single-step path for exactly that instruction.

   The decode depends on the *device* timing/energy constants (cycle
   time, energy per cycle, NVM access energies) but not on the
   capacitor, harvester or monitor — those stay runtime state — so one
   decode is shared by every board built around the same device. *)

open Gecko_isa
module Device = Gecko_devices.Device

type mop =
  | M_li of int * int
  | M_mov of int * int
  | M_bin_rr of Instr.binop * int * int * int  (* op, d, a, b *)
  | M_bin_ri of Instr.binop * int * int * int  (* op, d, a, imm *)
  | M_ld of int * int  (* d, absolute address *)
  | M_ld_dyn of int * int * int  (* d, space base, index reg *)
  | M_st of int * int  (* absolute address, s *)
  | M_st_dyn of int * int * int  (* space base, index reg, s *)
  | M_in of int * int  (* d, port *)
  | M_out of int * int  (* port, s *)
  | M_nop
  | M_ckpt of int * int  (* absolute slot cell, src *)
  | M_ckptdyn of int * int * int  (* src, parity address, cell base *)
  | M_ldslot of int * int  (* d, absolute slot cell *)
  | M_boundary of int  (* solo: data-dependent cost and mode effects *)
  | M_jmp of int
  | M_br of Instr.cond * int * int * int  (* cond, reg, then, else *)
  | M_call of int * int  (* callee entry, return slot *)
  | M_ret
  | M_halt  (* solo: completion/restart has data-dependent cost *)
  (* Fused superinstructions.  Field order mirrors the constituents. *)
  | M_f_ld_op_rr of int * int * Instr.binop * int * int * int
      (* Ld(d1, abs); Bin(op, d2, a2, b2) *)
  | M_f_ld_op_ri of int * int * Instr.binop * int * int * int
      (* Ld(d1, abs); Bin(op, d2, a2, imm) *)
  | M_f_op_st_rr of Instr.binop * int * int * int * int
      (* Bin(op, d, a, b); St(abs, d) *)
  | M_f_op_st_ri of Instr.binop * int * int * int * int
      (* Bin(op, d, a, imm); St(abs, d) *)
  | M_f_cmp_br_rr of Instr.binop * int * int * int * Instr.cond * int * int
      (* Bin(op, d, a, b); Br(cond, d, t, e) *)
  | M_f_cmp_br_ri of Instr.binop * int * int * int * Instr.cond * int * int
      (* Bin(op, d, a, imm); Br(cond, d, t, e) *)
  | M_f_lddyn_op_rr of int * int * int * Instr.binop * int * int * int
      (* Ld(d1, base + idx reg); Bin(op, d2, a2, b2) *)
  | M_f_lddyn_op_ri of int * int * int * Instr.binop * int * int * int
      (* Ld(d1, base + idx reg); Bin(op, d2, a2, imm) *)
  | M_f_op_op_rr_rr of
      Instr.binop * int * int * int * Instr.binop * int * int * int
      (* Bin(op1, d1, a1, b1); Bin(op2, d2, a2, b2) *)
  | M_f_op_op_rr_ri of
      Instr.binop * int * int * int * Instr.binop * int * int * int
      (* Bin(op1, d1, a1, b1); Bin(op2, d2, a2, imm) *)
  | M_f_op_op_ri_rr of
      Instr.binop * int * int * int * Instr.binop * int * int * int
      (* Bin(op1, d1, a1, imm); Bin(op2, d2, a2, b2) *)
  | M_f_op_op_ri_ri of
      Instr.binop * int * int * int * Instr.binop * int * int * int
      (* Bin(op1, d1, a1, imm1); Bin(op2, d2, a2, imm2) *)

type t = {
  image : Link.image;  (* provenance *)
  ops : mop array;
  dt : float array;  (* wall advance of the slot's own instruction *)
  en : float array;  (* capacitor drain, incl. NVM access energy *)
  cyc : int array;  (* cycle count, for app/instrumentation accounting *)
  block_start : bool array;  (* control can be *required* to stop here *)
  blk_end : int array;  (* slot -> exclusive end of its basic block *)
  e_sfx : float array;  (* energy from slot to block end; inf on solo *)
  dt_sfx : float array;  (* wall time from slot to block end *)
  n_ops : int;
  n_fused : int;  (* fused superinstruction slots *)
  n_blocks : int;
}

let solo = function M_boundary _ | M_halt -> true | _ -> false

(* Per-instruction cost triple (cycles, NVM reads, NVM writes) — must
   agree with what [Machine.exec_op]/[Machine.step_instr] charge. *)
let costs = function
  | Link.Op i ->
      let c = Cost.instr_cycles i in
      let r, w =
        match i with
        | Instr.Ld _ | Instr.LdSlot _ -> (1, 0)
        | Instr.St _ | Instr.Ckpt _ -> (0, 1)
        | Instr.CkptDyn _ -> (1, 1)
        | Instr.Boundary _ -> (0, 1)
        | Instr.Li _ | Instr.Mov _ | Instr.Bin _ | Instr.In _ | Instr.Out _
        | Instr.Nop ->
            (0, 0)
      in
      (c, r, w)
  | Link.Ljmp _ | Link.Lbr _ | Link.Lhalt -> (1, 0, 0)
  | Link.Lcall _ -> (Cost.term_cycles (Instr.Call ("", "")), 0, 1)
  | Link.Lret -> (Cost.term_cycles Instr.Ret, 1, 0)

let decode ~device (image : Link.image) =
  let n = Array.length image.Link.code in
  let cycle_time = Device.cycle_time device in
  let epc = Device.energy_per_cycle device in
  let core = device.Device.core in
  let read_e = core.Device.nvm_read_energy in
  let write_e = core.Device.nvm_write_energy in
  let ri = Reg.to_int in
  let gecko_cell r colour =
    image.Link.gecko_base + Link.Cells.gecko_slot r colour
  in
  let sys_cell off = image.Link.sys_base + off in
  let abs_of (m : Instr.mref) =
    let base = image.Link.space_base.(m.Instr.space.Instr.space_id) in
    match m.Instr.disp with
    | Instr.Dconst c -> `Abs (base + c)
    | Instr.Dreg r -> `Dyn (base, ri r)
  in
  let ops =
    Array.map
      (function
        | Link.Op i -> (
            match i with
            | Instr.Li (d, v) -> M_li (ri d, v)
            | Instr.Mov (d, s) -> M_mov (ri d, ri s)
            | Instr.Bin (op, d, a, Instr.Oreg b) ->
                M_bin_rr (op, ri d, ri a, ri b)
            | Instr.Bin (op, d, a, Instr.Oimm v) -> M_bin_ri (op, ri d, ri a, v)
            | Instr.Ld (d, m) -> (
                match abs_of m with
                | `Abs a -> M_ld (ri d, a)
                | `Dyn (base, r) -> M_ld_dyn (ri d, base, r))
            | Instr.St (m, s) -> (
                match abs_of m with
                | `Abs a -> M_st (a, ri s)
                | `Dyn (base, r) -> M_st_dyn (base, r, ri s))
            | Instr.In (d, port) -> M_in (ri d, port)
            | Instr.Out (port, s) -> M_out (port, ri s)
            | Instr.Nop -> M_nop
            | Instr.Ckpt (src, colour) -> M_ckpt (gecko_cell src colour, ri src)
            | Instr.CkptDyn src ->
                (* Writes ratchet cell for parity (1 - p):
                   cell = base + (1 - p) * Reg.count, p read at run time. *)
                M_ckptdyn
                  ( ri src,
                    sys_cell Link.Cells.sys_parity,
                    sys_cell Link.Cells.sys_ratchet_lo + ri src )
            | Instr.LdSlot (d, src, colour) ->
                M_ldslot (ri d, gecko_cell (Reg.of_int src) colour)
            | Instr.Boundary id -> M_boundary id)
        | Link.Ljmp t -> M_jmp t
        | Link.Lbr (c, r, t, e) -> M_br (c, ri r, t, e)
        | Link.Lcall (target, ret) -> M_call (target, ret)
        | Link.Lret -> M_ret
        | Link.Lhalt -> M_halt)
      image.Link.code
  in
  let dt = Array.make n 0. in
  let en = Array.make n 0. in
  let cyc = Array.make n 0 in
  for i = 0 to n - 1 do
    let c, r, w = costs image.Link.code.(i) in
    cyc.(i) <- c;
    (* Exactly the expressions [Machine.spend]/[Machine.nvm_extra]
       evaluate, so precomputation cannot change a single bit. *)
    dt.(i) <- float_of_int c *. cycle_time;
    en.(i) <-
      (float_of_int c *. epc)
      +. ((float_of_int r *. read_e) +. (float_of_int w *. write_e))
  done;
  (* Block split points: anywhere control can be required to stop or
     enter — jump/branch/call/return targets, rollback resume points
     (boundary slot + 1), the slot after any terminator, and solo slots
     (plus the slot after them). *)
  let start = Array.make (n + 1) false in
  start.(n) <- true;
  let mark i = if i >= 0 && i <= n then start.(i) <- true in
  mark image.Link.entry;
  Hashtbl.iter (fun _ pc -> mark (pc + 1)) image.Link.boundary_index;
  Array.iteri
    (fun i op ->
      match op with
      | M_jmp t ->
          mark t;
          mark (i + 1)
      | M_br (_, _, t, e) ->
          mark t;
          mark e;
          mark (i + 1)
      | M_call (target, ret) ->
          mark target;
          mark ret;
          mark (i + 1)
      | M_ret | M_halt -> mark (i + 1)
      | M_boundary _ ->
          mark i;
          mark (i + 1)
      | _ -> ())
    ops;
  (* Speculation-guarded slots behave like solo: the undo-log append has
     costs and NVM side effects the precomputed block totals know nothing
     about, so the machine must take the fully-checked path there. *)
  let guarded i =
    Array.length image.Link.guards > 0 && image.Link.guards.(i)
  in
  Array.iteri
    (fun i op ->
      if solo op || guarded i then begin
        mark i;
        mark (i + 1)
      end)
    ops;
  let blk_end = Array.make n 0 in
  for i = n - 1 downto 0 do
    blk_end.(i) <- (if start.(i + 1) then i + 1 else blk_end.(i + 1))
  done;
  (* Fusion: adjacent pairs inside one block.  The second slot keeps its
     unfused op for mid-block entry. *)
  let n_fused = ref 0 in
  for i = 0 to n - 2 do
    if blk_end.(i) > i + 1 then begin
      let fused =
        match (ops.(i), ops.(i + 1)) with
        | M_ld (d1, a), M_bin_rr (op, d2, a2, b2) ->
            Some (M_f_ld_op_rr (d1, a, op, d2, a2, b2))
        | M_ld (d1, a), M_bin_ri (op, d2, a2, v) ->
            Some (M_f_ld_op_ri (d1, a, op, d2, a2, v))
        | M_bin_rr (op, d, a, b), M_st (addr, s) when s = d ->
            Some (M_f_op_st_rr (op, d, a, b, addr))
        | M_bin_ri (op, d, a, v), M_st (addr, s) when s = d ->
            Some (M_f_op_st_ri (op, d, a, v, addr))
        | M_bin_rr (op, d, a, b), M_br (c, r, t, e) when r = d ->
            Some (M_f_cmp_br_rr (op, d, a, b, c, t, e))
        | M_bin_ri (op, d, a, v), M_br (c, r, t, e) when r = d ->
            Some (M_f_cmp_br_ri (op, d, a, v, c, t, e))
        | M_ld_dyn (d1, base, r), M_bin_rr (op, d2, a2, b2) ->
            Some (M_f_lddyn_op_rr (d1, base, r, op, d2, a2, b2))
        | M_ld_dyn (d1, base, r), M_bin_ri (op, d2, a2, v) ->
            Some (M_f_lddyn_op_ri (d1, base, r, op, d2, a2, v))
        | M_bin_rr (op1, d1, a1, b1), M_bin_rr (op2, d2, a2, b2) ->
            Some (M_f_op_op_rr_rr (op1, d1, a1, b1, op2, d2, a2, b2))
        | M_bin_rr (op1, d1, a1, b1), M_bin_ri (op2, d2, a2, v2) ->
            Some (M_f_op_op_rr_ri (op1, d1, a1, b1, op2, d2, a2, v2))
        | M_bin_ri (op1, d1, a1, v1), M_bin_rr (op2, d2, a2, b2) ->
            Some (M_f_op_op_ri_rr (op1, d1, a1, v1, op2, d2, a2, b2))
        | M_bin_ri (op1, d1, a1, v1), M_bin_ri (op2, d2, a2, v2) ->
            Some (M_f_op_op_ri_ri (op1, d1, a1, v1, op2, d2, a2, v2))
        | _ -> None
      in
      match fused with
      | Some f ->
          ops.(i) <- f;
          incr n_fused
      | None -> ()
    end
  done;
  (* Suffix totals within each block; solo slots get [infinity] so the
     machine's block guard always rejects them. *)
  let e_sfx = Array.make n infinity in
  let dt_sfx = Array.make n infinity in
  for i = n - 1 downto 0 do
    if not (solo ops.(i) || guarded i) then
      if blk_end.(i) = i + 1 then begin
        e_sfx.(i) <- en.(i);
        dt_sfx.(i) <- dt.(i)
      end
      else begin
        e_sfx.(i) <- en.(i) +. e_sfx.(i + 1);
        dt_sfx.(i) <- dt.(i) +. dt_sfx.(i + 1)
      end
  done;
  let n_blocks = ref 0 in
  for i = 0 to n - 1 do
    if start.(i) then incr n_blocks
  done;
  {
    image;
    ops;
    dt;
    en;
    cyc;
    block_start = Array.sub start 0 n;
    blk_end;
    e_sfx;
    dt_sfx;
    n_ops = n;
    n_fused = !n_fused;
    n_blocks = !n_blocks;
  }

let fused_share t =
  if t.n_ops = 0 then 0. else float_of_int t.n_fused /. float_of_int t.n_ops

(* Number of source instructions a slot's op retires: 2 for fused. *)
let width = function
  | M_f_ld_op_rr _ | M_f_ld_op_ri _ | M_f_op_st_rr _ | M_f_op_st_ri _
  | M_f_cmp_br_rr _ | M_f_cmp_br_ri _ | M_f_lddyn_op_rr _ | M_f_lddyn_op_ri _
  | M_f_op_op_rr_rr _ | M_f_op_op_rr_ri _ | M_f_op_op_ri_rr _
  | M_f_op_op_ri_ri _ ->
      2
  | _ -> 1

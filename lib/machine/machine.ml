open Gecko_isa
open Gecko_emi
module Nvm = Gecko_mem.Nvm
module Capacitor = Gecko_energy.Capacitor
module Harvester = Gecko_energy.Harvester
module Monitor = Gecko_monitor.Monitor
module Device = Gecko_devices.Device
module Policy = Gecko_core.Policy
module Meta = Gecko_core.Meta
module Scheme = Gecko_core.Scheme

type limit = Sim_time of float | Completions of int

type event_kind =
  | Ev_boot of Policy.mode
  | Ev_restore_jit
  | Ev_rollback of int
  | Ev_fresh_start
  | Ev_backup_signal of bool
  | Ev_checkpoint
  | Ev_checkpoint_failed
  | Ev_brownout
  | Ev_detection
  | Ev_reenable
  | Ev_completion

type event = { ev_time : float; ev_kind : event_kind }

(* Fault-injection sites: the points where the simulator consults the
   (optional) injector callback.  Each consultation is an instant at
   which a power failure could physically strike: an instruction fetch
   boundary, a runtime event, an individual NVM word write inside the
   JIT checkpoint ISR, or a restore step inside a rollback. *)
type inject_site =
  | S_instr
  | S_event of event_kind
  | S_ckpt_word of int
  | S_rollback_step of int

let pp_event ppf e =
  let k =
    match e.ev_kind with
    | Ev_boot m -> Printf.sprintf "boot (mode %s)" (Policy.mode_to_string m)
    | Ev_restore_jit -> "JIT restore"
    | Ev_rollback b -> Printf.sprintf "rollback to boundary %d" b
    | Ev_fresh_start -> "fresh start"
    | Ev_backup_signal early ->
        if early then "backup signal (early — spurious)" else "backup signal"
    | Ev_checkpoint -> "JIT checkpoint"
    | Ev_checkpoint_failed -> "JIT checkpoint FAILED"
    | Ev_brownout -> "brownout"
    | Ev_detection -> "ATTACK DETECTED"
    | Ev_reenable -> "JIT re-enabled"
    | Ev_completion -> "application completed"
  in
  Format.fprintf ppf "%10.6fs  %s" e.ev_time k

type options = {
  schedule : Schedule.t;
  limit : limit;
  max_sim_time : float;
  timeline_bucket : float option;
  seed : int;
  restart_on_halt : bool;
  record_io : bool;
  record_events : bool;
  start_charged : bool;
  trace : Gecko_obs.Trace.t option;
  metrics : Gecko_obs.Metrics.registry option;
  flight : Gecko_obs.Flight.t option;
  (* [fast = false] forces the per-instruction checked path everywhere —
     the pre-decoded block dispatcher is skipped.  Debug/differential
     aid: outcomes must be identical either way. *)
  fast : bool;
  (* A cached [Decode.decode] of this image (see Workbench); decoded
     fresh when [None].  Ignored unless it matches the run's image. *)
  decoded : Decode.t option;
}

let default_options =
  {
    schedule = Schedule.empty;
    limit = Completions 1;
    max_sim_time = 3600.;
    timeline_bucket = None;
    seed = 1;
    restart_on_halt = false;
    record_io = false;
    record_events = false;
    start_charged = true;
    trace = None;
    metrics = None;
    flight = None;
    fast = true;
    decoded = None;
  }

type timeline = {
  bucket : float;
  app_seconds_per_bucket : float array;
  completions_per_bucket : int array;
}

type outcome = {
  completions : int;
  completion_times : float list;
  sim_time : float;
  instructions : int;
  app_cycles : int;
  app_seconds : float;
  instrumentation_cycles : int;
  jit_checkpoints : int;
  jit_checkpoint_failures : int;
  reboots : int;
  brownouts : int;
  detections : int;
  reenables : int;
  rollbacks : int;
  recovery_block_runs : int;
  misspeculations : int;
  boundary_commits : int;
  ckpt_stores : int;
  guarded_stores : int;
  corruptions : int;
  io_out_count : int;
  io_log : (int * int) list;
  final_mode : Policy.mode;
  timeline : timeline option;
  events : event list;
  hit_limit : bool;
}

let forward_progress o = if o.sim_time <= 0. then 0. else o.app_seconds /. o.sim_time

let checkpoint_failure_rate o =
  (* N_fail includes checkpoints cut short mid-write and power cycles
     whose ACK shows the expected checkpoint never completed (observed as
     a corrupt resume). *)
  let fails = o.jit_checkpoint_failures + o.corruptions in
  let attempts = o.jit_checkpoints + o.corruptions in
  if attempts = 0 then 0. else float_of_int fails /. float_of_int attempts

(* ------------------------------------------------------------------ *)

(* The per-instruction mutable floats live in their own all-float
   record: OCaml stores such records flat (unboxed), so the hot-path
   writes in [spend]/[refresh_attack] are plain stores.  Inside the
   mixed [state] record below each mutable float write would allocate a
   fresh box and go through the write barrier. *)
type phys = {
  mutable time : float;
  mutable cur_amp : float;
  mutable cur_harvest_w : float;
  mutable next_change : float;
  mutable next_obs : float;
  mutable next_vsample : float;
  mutable boot_time : float;
  mutable next_wake_check : float;
  k_harv_pw : float;
      (* delivered watts of a bare constant-power harvester (0. otherwise);
         lives here rather than in [state] so the fast path reads it flat
         instead of chasing a boxed-float or option pointer *)
}

type state = {
  board : Board.t;
  image : Link.image;
  meta : Meta.t;
  opts : options;
  nvm : Nvm.t;
  cap : Capacitor.t;
  monitor : Monitor.t;
  profile : Coupling.profile;
  (* per-device constants, copied out of the board at creation so the
     per-instruction paths never chase device/core pointers *)
  k_cycle_time : float;
  k_epc : float;
  k_nvm_read_e : float;
  k_nvm_write_e : float;
  k_sleep_power : float;
  k_v_off : float;
  k_e_off : float;  (* stored energy at the brownout threshold *)
  k_harv : Harvester.t;  (* copy of [board.harvester], no pointer chase *)
  k_harv_const : bool;  (* bare constant-power source: use [ph.k_harv_pw] *)
  k_tl_on : bool;  (* timeline buckets requested ([tl_bucket > 0.]) *)
  ph : phys;
  (* pre-decoded instruction stream + block dispatcher switch *)
  dec : Decode.t;
  fast_enabled : bool;
  (* speculative image: some store slots carry undo-log guards *)
  k_has_guards : bool;
  rng_io : Gecko_util.Rng.t;  (* per-run RNG behind [In], reseeded per draw *)
  regs : int array;
  mutable pc : int;
  mutable powered : bool;
  mutable mode : Policy.mode;
  (* attack cursor: windows are sorted by start time and non-overlapping
     (Schedule invariant), and simulated time only moves forward, so a
     monotone index replaces the per-instruction array scan *)
  windows : Schedule.window array;
  mutable win_idx : int;
  mutable instrs : int;
  (* fault injection: consulted at every {!inject_site}; [true] forces a
     power failure at that exact point.  [None] keeps the plain path. *)
  mutable injector : (inject_site -> bool) option;
  (* loop control *)
  k_time_limit : float;  (* resolved stop time of [opts.limit] *)
  mutable stop : bool;
  mutable hit_limit : bool;
  mutable progress_written : bool;  (* progress flag written this power cycle *)
  mutable boot_inhibited : bool;  (* BOR hysteresis after a failed boot *)
  t_min_on : float;  (* guaranteed minimum on-time of a full charge *)
  (* counters *)
  mutable completions : int;
  mutable completion_times : float list; (* reversed *)
  mutable app_cycles : int;
  mutable instrumentation_cycles : int;
  mutable jit_checkpoints : int;
  mutable jit_checkpoint_failures : int;
  mutable reboots : int;
  mutable brownouts : int;
  mutable detections : int;
  mutable reenables : int;
  mutable rollbacks : int;
  mutable recovery_block_runs : int;
  mutable misspeculations : int;
  mutable boundary_commits : int;
  mutable ckpt_stores : int;
  mutable guarded_stores : int;
  (* Volatile mirrors of the two hot system words of the undo-log
     protocol (the committed-boundary word and the undo entry count).
     NVM stays authoritative — every NVM write of either word updates
     its mirror, and a boot/rollback refresh re-reads them — the
     mirrors only spare the guarded fast paths the NVM READS: an
     undo-log append needs just the old-value read (1r + 4w), and a
     region commit with an empty log needs no extra NVM traffic at
     all. *)
  mutable boundary_word_v : int;
  mutable undo_count_v : int;
  mutable corruptions : int;
  mutable io_in_count : int;
  mutable io_out_count : int;
  mutable io_log : (int * int) list; (* reversed; committed records only *)
  (* GECKO staged-commit protocol for the io_log: [Out] records are
     staged in volatile memory and appended to the persistent log
     atomically at the region commit point ([Boundary]).  A rollback or
     brownout discards the stage, so a re-executed region cannot
     duplicate its records and a torn region cannot leave partial ones.
     The JIT checkpoint snapshots the stage along with the registers
     (it is volatile state), and [restore_jit] brings it back. *)
  mutable io_staged : (int * int) list; (* reversed *)
  mutable io_staged_ckpt : (int * int) list;
  mutable events : event list; (* reversed *)
  (* timeline *)
  tl_app : float array;
  tl_comp : int array;
  tl_bucket : float;
  (* observability; [tracing] caches [trace <> None && enabled] so the
     per-instruction cost of a disabled recorder is one branch *)
  tracing : bool;
  trace : Gecko_obs.Trace.t option;
  (* [flight] is [None] unless an enabled recorder was supplied, so a
     fleet device without one pays a single branch per recorded event *)
  flight : Gecko_obs.Flight.t option;
  hist_ckpt : Gecko_obs.Metrics.histogram option;
  hist_rollback : Gecko_obs.Metrics.histogram option;
}

let cycle_time st = st.k_cycle_time
let epc st = st.k_epc
let core st = st.board.Board.device.Device.core

let refresh_obs st = st.ph.next_obs <- Monitor.next_sample_time st.monitor

(* --- fault injection -------------------------------------------------- *)

let consult st site =
  match st.injector with None -> false | Some f -> f site

(* A forced power failure is a hard supply collapse: the capacitor is
   emptied on the spot and every existing voltage check (per-word inside
   the checkpoint ISR, per-instruction in the main loop) converts it
   into the same partial-checkpoint / brownout behaviour a genuine
   outage at that instant would produce.  Nothing downstream is
   scripted. *)
let force_power_failure st = Capacitor.set_voltage st.cap 0.

(* --- flight recorder --------------------------------------------------- *)

(* Pure observation: a note reads the clock and the capacitor and writes
   a preallocated ring slot.  No injector consultation, no physics —
   runs with and without a recorder are semantically identical. *)
let flight_note st ?(arg = 0) ev =
  match st.flight with
  | None -> ()
  | Some fl ->
      Gecko_obs.Flight.record fl ~t_sim:st.ph.time ~arg
        ~v:(Capacitor.voltage st.cap) ev

let flight_ids = function
  | Ev_boot m -> ("boot", Policy.mode_to_int m)
  | Ev_restore_jit -> ("restore_jit", 0)
  | Ev_rollback b -> ("rollback", b)
  | Ev_fresh_start -> ("fresh_start", 0)
  | Ev_backup_signal early -> ("backup_signal", if early then 1 else 0)
  | Ev_checkpoint -> ("checkpoint_commit", 0)
  | Ev_checkpoint_failed -> ("checkpoint_failed", 0)
  | Ev_brownout -> ("brownout", 0)
  | Ev_detection -> ("detection", 0)
  | Ev_reenable -> ("reenable", 0)
  | Ev_completion -> ("completion", 0)

let sleep_step = 100e-6

(* The sleeping device evaluates its wake condition on a slow timer (the
   LPM wake-interval idiom), not at the energy-integration step. *)
let wake_poll = 1.5e-3

(* --- NVM runtime cells ---------------------------------------------- *)

let jit_cell st off = st.image.Link.jit_base + off
let sys_cell st off = st.image.Link.sys_base + off
let gecko_cell st r colour =
  st.image.Link.gecko_base + Link.Cells.gecko_slot r colour

let ratchet_cell st parity r =
  sys_cell st (Link.Cells.sys_ratchet_lo + (parity * Reg.count) + Reg.to_int r)

(* --- attack cursor --------------------------------------------------- *)

(* Windows are sorted and disjoint, and time is monotone: advance the
   cursor past expired windows, then either enter the window under the
   cursor or idle until it starts.  Amortized O(1) per instruction
   instead of O(windows). *)
let refresh_attack st =
  if st.ph.time >= st.ph.next_change then begin
    let n = Array.length st.windows in
    let i = ref st.win_idx in
    while !i < n && st.ph.time >= st.windows.(!i).Schedule.t_end do incr i done;
    st.win_idx <- !i;
    if !i >= n then begin
      st.ph.cur_amp <- 0.;
      st.ph.cur_harvest_w <- 0.;
      st.ph.next_change <- infinity
    end
    else begin
      let w = st.windows.(!i) in
      if st.ph.time >= w.Schedule.t_start then begin
        st.ph.cur_amp <- Attack.induced_amplitude ~profile:st.profile w.Schedule.attack;
        st.ph.cur_harvest_w <- Attack.harvestable_power w.Schedule.attack;
        st.ph.next_change <- w.Schedule.t_end;
        flight_note st ~arg:!i "attack_window"
      end
      else begin
        st.ph.cur_amp <- 0.;
        st.ph.cur_harvest_w <- 0.;
        st.ph.next_change <- w.Schedule.t_start
      end
    end
  end

(* --- time & energy --------------------------------------------------- *)

let charge st dt =
  let v = Capacitor.voltage st.cap in
  let i =
    Harvester.current st.board.Board.harvester ~time:st.ph.time ~v
    +. (st.ph.cur_harvest_w /. max v 0.5)
  in
  Capacitor.source_current st.cap ~amps:i ~dt

let bucket_index st = int_of_float (st.ph.time /. st.tl_bucket)

let account_app_seconds st s =
  if st.tl_bucket > 0. then begin
    let i = bucket_index st in
    if i >= 0 && i < Array.length st.tl_app then
      st.tl_app.(i) <- st.tl_app.(i) +. s
  end

(* Advance time and drain energy for [cycles] plus [extra] joules. *)
let spend st cycles ~extra =
  let dt = float_of_int cycles *. cycle_time st in
  let e = (float_of_int cycles *. epc st) +. extra in
  ignore (Capacitor.drain st.cap e);
  charge st dt;
  st.ph.time <- st.ph.time +. dt

let nvm_extra st ~reads ~writes =
  (float_of_int reads *. st.k_nvm_read_e)
  +. (float_of_int writes *. st.k_nvm_write_e)

(* --- observability ---------------------------------------------------- *)

let trace_ids = function
  | Ev_boot _ -> ("boot", "power")
  | Ev_restore_jit -> ("restore_jit", "checkpoint")
  | Ev_rollback _ -> ("rollback", "recovery")
  | Ev_fresh_start -> ("fresh_start", "recovery")
  | Ev_backup_signal true -> ("backup_signal_early", "monitor")
  | Ev_backup_signal false -> ("backup_signal", "monitor")
  | Ev_checkpoint -> ("checkpoint", "checkpoint")
  | Ev_checkpoint_failed -> ("checkpoint_failed", "checkpoint")
  | Ev_brownout -> ("brownout", "power")
  | Ev_detection -> ("detection", "defense")
  | Ev_reenable -> ("reenable", "defense")
  | Ev_completion -> ("completion", "app")

let sample_voltage st =
  match st.trace with
  | None -> ()
  | Some tr ->
      Gecko_obs.Trace.counter tr ~cat:"energy" ~ts:st.ph.time "cap_voltage"
        (Capacitor.voltage st.cap)

(* Voltage gauge sampling cadence on the trace (simulated time). *)
let vsample_period = 0.5e-3

let trace_span st ~t0 ~cat name =
  match st.trace with
  | None -> ()
  | Some tr ->
      Gecko_obs.Trace.complete tr ~cat ~ts:t0 ~dur:(st.ph.time -. t0) name

let hist_observe h v =
  match h with None -> () | Some h -> Gecko_obs.Metrics.observe h v

let record st kind =
  if st.opts.record_events then
    st.events <- { ev_time = st.ph.time; ev_kind = kind } :: st.events;
  if st.tracing then begin
    (match st.trace with
    | Some tr ->
        let name, cat = trace_ids kind in
        Gecko_obs.Trace.instant tr ~cat ~ts:st.ph.time name
    | None -> ());
    sample_voltage st
  end;
  (match st.flight with
  | None -> ()
  | Some _ ->
      let name, arg = flight_ids kind in
      flight_note st ~arg name);
  (* The event itself happened; the injector may kill the supply right
     at it (e.g. the instant the backup signal fires, or the instant a
     checkpoint completes). *)
  if consult st (S_event kind) then force_power_failure st

(* --- power transitions ----------------------------------------------- *)

let shutdown st =
  if st.tracing && st.powered then
    trace_span st ~t0:st.ph.boot_time ~cat:"power" "power_on";
  st.powered <- false;
  Monitor.arm_wake st.monitor;
  Monitor.sync st.monitor ~time:st.ph.time;
  refresh_obs st

let brownout st =
  st.brownouts <- st.brownouts + 1;
  record st Ev_brownout;
  (* Volatile state is lost — including any uncommitted io_log stage. *)
  Array.fill st.regs 0 Reg.count 0;
  st.io_staged <- [];
  shutdown st

let monitor_is_gecko st =
  match st.meta.Meta.scheme with
  | Scheme.Gecko | Scheme.Gecko_noprune -> true
  | Scheme.Nvp | Scheme.Ratchet -> false

let set_mode st m =
  st.mode <- m;
  Nvm.write st.nvm (sys_cell st Link.Cells.sys_mode) (Policy.mode_to_int m);
  if monitor_is_gecko st then begin
    Monitor.set_enabled st.monitor (Policy.monitor_enabled m);
    refresh_obs st
  end

(* --- program (re)start ----------------------------------------------- *)

let fresh_start st =
  Array.fill st.regs 0 Reg.count 0;
  st.io_staged <- [];
  st.regs.(Reg.to_int Reg.sp) <- st.image.Link.stack_words - 1;
  st.pc <- st.image.Link.entry

let reinit_data st =
  for a = 0 to st.image.Link.data_words - 1 do
    Nvm.write st.nvm a 0
  done;
  List.iter
    (fun (space_id, init) ->
      let base = st.image.Link.space_base.(space_id) in
      Array.iteri (fun i v -> Nvm.write st.nvm (base + i) v) init)
    st.image.Link.prog.Cfg.init_data;
  (* The progress flag is a power-cycle notion and is left alone here. *)
  Nvm.write st.nvm (sys_cell st Link.Cells.sys_boundary) 0;
  st.boundary_word_v <- 0;
  (* Stale undo entries from the previous run would carry tag 0 — the
     same word a fresh run's pre-commit window has — so they must not
     survive the restart. *)
  if st.k_has_guards then begin
    Nvm.write st.nvm (sys_cell st Link.Cells.sys_undo_count) 0;
    st.undo_count_v <- 0
  end;
  Nvm.write st.nvm (jit_cell st Link.Cells.jit_pc) (-1)

(* --- JIT checkpoint ISR (CTPL) --------------------------------------- *)

(* CTPL checkpoints the in-use SRAM sections as well as the register
   file; the simulator carries no separate SRAM, so this is a pure
   time/energy cost. *)
let ctpl_sram_words = 96

let jit_checkpoint_work st =
  st.jit_checkpoints <- st.jit_checkpoints + 1;
  flight_note st "checkpoint_begin";
  spend st Cost.jit_isr_overhead_cycles ~extra:0.;
  (* One injection site per NVM word the ISR writes (SRAM sections first,
     then registers/PC/ACK): a forced collapse before word [k] leaves a
     checkpoint cut short at exactly that word. *)
  let kw = ref 0 in
  let failed_sram = ref false in
  (try
     for _ = 1 to ctpl_sram_words do
       if consult st (S_ckpt_word !kw) then force_power_failure st;
       incr kw;
       spend st Cost.nvm_write_cycles ~extra:(nvm_extra st ~reads:1 ~writes:1);
       if Capacitor.voltage st.cap <= st.board.Board.v_off then begin
         failed_sram := true;
         raise Exit
       end
     done
   with Exit -> ());
  if !failed_sram then begin
    st.jit_checkpoint_failures <- st.jit_checkpoint_failures + 1;
    record st Ev_checkpoint_failed;
    brownout st
  end
  else
  let failed = ref false in
  let write_word off v =
    if not !failed then begin
      if consult st (S_ckpt_word !kw) then force_power_failure st;
      incr kw;
      spend st Cost.nvm_write_cycles ~extra:(nvm_extra st ~reads:0 ~writes:1);
      if Capacitor.voltage st.cap <= st.board.Board.v_off then failed := true
      else Nvm.write st.nvm (jit_cell st off) v
    end
  in
  begin
  Array.iteri (fun i v -> write_word (Link.Cells.jit_regs + i) v) st.regs;
  write_word Link.Cells.jit_pc st.pc;
  (* The ACK toggle is the last write — the checkpoint barrier. *)
  if not !failed then begin
    let ack = Nvm.read st.nvm (jit_cell st Link.Cells.jit_ack) in
    write_word Link.Cells.jit_ack (ack lxor 1)
  end;
  (if !failed then begin
     st.jit_checkpoint_failures <- st.jit_checkpoint_failures + 1;
     record st Ev_checkpoint_failed;
     brownout st
   end
   else begin
     (* The stage is part of the checkpointed volatile state. *)
     st.io_staged_ckpt <- st.io_staged;
     record st Ev_checkpoint
   end)
  end

(* The JIT checkpoint ISR latency — from backup signal to the ACK write
   (or the brownout that killed it) — is the window the attacker races. *)
let jit_checkpoint st =
  let t0 = st.ph.time in
  jit_checkpoint_work st;
  trace_span st ~t0 ~cat:"checkpoint" "jit_checkpoint_isr";
  hist_observe st.hist_ckpt (st.ph.time -. t0)

(* --- rollback recovery ----------------------------------------------- *)

let run_recovery_slice st (rec_ : Meta.recovery) =
  st.recovery_block_runs <- st.recovery_block_runs + 1;
  let scratch = Array.make Reg.count 0 in
  List.iter
    (fun instr ->
      let c = Cost.instr_cycles instr in
      (match instr with
      | Instr.Li (d, v) -> scratch.(Reg.to_int d) <- v
      | Instr.Mov (d, s) -> scratch.(Reg.to_int d) <- scratch.(Reg.to_int s)
      | Instr.Bin (op, d, a, b) ->
          let bv =
            match b with
            | Instr.Oreg r -> scratch.(Reg.to_int r)
            | Instr.Oimm v -> v
          in
          scratch.(Reg.to_int d) <-
            Instr.eval_binop op scratch.(Reg.to_int a) bv
      | Instr.Ld (d, m) ->
          let addr = Link.resolve st.image m scratch in
          spend st 0 ~extra:(nvm_extra st ~reads:1 ~writes:0);
          scratch.(Reg.to_int d) <- Nvm.read st.nvm addr
      | Instr.LdSlot (d, src, colour) ->
          spend st 0 ~extra:(nvm_extra st ~reads:1 ~writes:0);
          scratch.(Reg.to_int d) <-
            Nvm.read st.nvm (gecko_cell st (Reg.of_int src) colour)
      | Instr.St _ | Instr.In _ | Instr.Out _ | Instr.Nop | Instr.Ckpt _
      | Instr.CkptDyn _ | Instr.Boundary _ ->
          (* Never emitted into slices. *)
          ());
      spend st c ~extra:0.)
    rec_.Meta.g_slice;
  st.regs.(Reg.to_int rec_.Meta.g_reg) <- scratch.(Reg.to_int rec_.Meta.g_reg)

(* Misspeculation recovery: replay the undo log in reverse before the
   register restores, so every word a guarded store clobbered since the
   last commit holds its pre-window value again and the region's
   re-execution is deterministic.  Only entries whose tag equals the
   CURRENT committed-boundary word are live: an entry appended after the
   last commit carries exactly that word, while one orphaned by a crash
   between a commit and its count-clear carries the previous epoch's and
   is skipped.  The count stays until the clear at the end, so a supply
   collapse mid-replay just replays again next boot (rewriting an old
   value is idempotent).  Replaying at least one entry IS a detected
   misspeculation. *)
let undo_replay st word =
  (* Rollback is the boot-refresh point of the volatile mirrors: the
     authoritative NVM words are (re)read here, after which the guarded
     fast paths trust the mirrors until the next power loss. *)
  let count = Nvm.read st.nvm (sys_cell st Link.Cells.sys_undo_count) in
  st.boundary_word_v <- word;
  st.undo_count_v <- count;
  if count > 0 then begin
    let replayed = ref 0 in
    (try
       for k = count - 1 downto 0 do
         if consult st (S_rollback_step k) then force_power_failure st;
         if Capacitor.voltage st.cap <= st.board.Board.v_off then raise Exit;
         let base =
           sys_cell st
             (Link.Cells.sys_undo_base + (k * Link.Cells.undo_entry_words))
         in
         spend st
           (3 * Cost.nvm_read_cycles)
           ~extra:(nvm_extra st ~reads:3 ~writes:0);
         let tag = Nvm.read st.nvm base in
         let addr = Nvm.read st.nvm (base + 1) in
         let old = Nvm.read st.nvm (base + 2) in
         if tag = word then begin
           spend st Cost.nvm_write_cycles
             ~extra:(nvm_extra st ~reads:0 ~writes:1);
           Nvm.write st.nvm addr old;
           incr replayed
         end
       done;
       spend st Cost.nvm_write_cycles ~extra:(nvm_extra st ~reads:0 ~writes:1);
       Nvm.write st.nvm (sys_cell st Link.Cells.sys_undo_count) 0;
       st.undo_count_v <- 0
     with Exit -> ());
    if !replayed > 0 then begin
      st.misspeculations <- st.misspeculations + 1;
      flight_note st ~arg:!replayed "misspeculation"
    end
  end

(* The committed-boundary word of a guarded image packs (epoch, id + 1);
   plain images store id + 1 directly. *)
let boundary_word_bid st word =
  (if st.k_has_guards then word land 0xFFFFFFFF else word) - 1

let gecko_rollback_work st =
  (* Anything staged after the committed boundary is discarded: the
     region that produced it re-executes from the restore point. *)
  st.io_staged <- [];
  let word = Nvm.read st.nvm (sys_cell st Link.Cells.sys_boundary) in
  if st.k_has_guards then undo_replay st word;
  let bid = boundary_word_bid st word in
  if bid < 0 then begin
    record st Ev_fresh_start;
    fresh_start st
  end
  else begin
    st.rollbacks <- st.rollbacks + 1;
    record st (Ev_rollback bid);
    spend st Cost.rollback_overhead_cycles ~extra:0.;
    Array.fill st.regs 0 Reg.count 0;
    let kr = ref 0 in
    let rollback_site st =
      if consult st (S_rollback_step !kr) then force_power_failure st;
      incr kr
    in
    (match Meta.boundary_info st.meta bid with
    | Some info ->
        List.iter
          (fun (r : Meta.restore) ->
            rollback_site st;
            spend st Cost.nvm_read_cycles
              ~extra:(nvm_extra st ~reads:1 ~writes:0);
            st.regs.(Reg.to_int r.Meta.r_reg) <-
              Nvm.read st.nvm (gecko_cell st r.Meta.r_reg r.Meta.r_color))
          info.Meta.restores;
        List.iter
          (fun rec_ ->
            rollback_site st;
            run_recovery_slice st rec_)
          info.Meta.recoveries
    | None -> ());
    st.pc <- Hashtbl.find st.image.Link.boundary_index bid + 1
  end

let gecko_rollback st =
  let t0 = st.ph.time in
  gecko_rollback_work st;
  trace_span st ~t0 ~cat:"recovery" "rollback";
  hist_observe st.hist_rollback (st.ph.time -. t0)

let ratchet_rollback_work st =
  let word = Nvm.read st.nvm (sys_cell st Link.Cells.sys_boundary) in
  if st.k_has_guards then undo_replay st word;
  let bid = boundary_word_bid st word in
  if bid < 0 then begin
    record st Ev_fresh_start;
    fresh_start st
  end
  else begin
    st.rollbacks <- st.rollbacks + 1;
    record st (Ev_rollback bid);
    let parity = Nvm.read st.nvm (sys_cell st Link.Cells.sys_parity) in
    let kr = ref 0 in
    List.iter
      (fun r ->
        if consult st (S_rollback_step !kr) then force_power_failure st;
        incr kr;
        spend st Cost.nvm_read_cycles ~extra:(nvm_extra st ~reads:1 ~writes:0);
        st.regs.(Reg.to_int r) <- Nvm.read st.nvm (ratchet_cell st parity r))
      Reg.all;
    st.pc <- Hashtbl.find st.image.Link.boundary_index bid + 1
  end

let ratchet_rollback st =
  let t0 = st.ph.time in
  ratchet_rollback_work st;
  trace_span st ~t0 ~cat:"recovery" "rollback";
  hist_observe st.hist_rollback (st.ph.time -. t0)

let restore_jit st =
  record st Ev_restore_jit;
  st.io_staged <- st.io_staged_ckpt;
  spend st (ctpl_sram_words * Cost.nvm_read_cycles)
    ~extra:(nvm_extra st ~reads:ctpl_sram_words ~writes:0);
  for i = 0 to Reg.count - 1 do
    st.regs.(i) <- Nvm.read st.nvm (jit_cell st (Link.Cells.jit_regs + i))
  done;
  spend st (Reg.count * Cost.nvm_read_cycles)
    ~extra:(nvm_extra st ~reads:(Reg.count + 2) ~writes:0);
  st.pc <- Nvm.read st.nvm (jit_cell st Link.Cells.jit_pc)

let handle_backup st =
  (match st.meta.Meta.scheme with
  | Scheme.Gecko | Scheme.Gecko_noprune ->
      record st (Ev_backup_signal (st.ph.time -. st.ph.boot_time < st.t_min_on))
  | Scheme.Nvp | Scheme.Ratchet -> record st (Ev_backup_signal false));
  match st.meta.Meta.scheme with
  | Scheme.Nvp ->
      jit_checkpoint st;
      if st.powered then shutdown st
  | Scheme.Ratchet ->
      (* No JIT state to save; the undervoltage interrupt powers down. *)
      spend st Cost.jit_isr_overhead_cycles ~extra:0.;
      shutdown st
  | Scheme.Gecko | Scheme.Gecko_noprune ->
      let early = st.ph.time -. st.ph.boot_time < st.t_min_on in
      let mode', action, detected = Policy.on_backup_signal st.mode ~early in
      if detected then begin
        st.detections <- st.detections + 1;
        record st Ev_detection
      end;
      set_mode st mode';
      (match action with
      | Policy.Checkpoint_and_sleep ->
          jit_checkpoint st;
          if st.powered then shutdown st
      | Policy.Rollback_inline ->
          (* The signal is untrusted: re-enter the interrupted region and
             keep executing with the attack surface closed. *)
          gecko_rollback st)

(* --- boot protocol ---------------------------------------------------- *)

let boot_protocol st =
  let ack = Nvm.read st.nvm (jit_cell st Link.Cells.jit_ack) in
  let seen = Nvm.read st.nvm (sys_cell st Link.Cells.sys_ack_seen) in
  let jp = Nvm.read st.nvm (jit_cell st Link.Cells.jit_pc) in
  let ack_ok = ack <> seen && jp >= 0 in
  Nvm.write st.nvm (sys_cell st Link.Cells.sys_ack_seen) ack;
  match st.meta.Meta.scheme with
  | Scheme.Nvp ->
      if ack_ok then restore_jit st
      else if jp < 0 then fresh_start st
      else begin
        (* Corrupted checkpoint: the register image cannot be trusted.
           The device restarts the program over possibly-inconsistent
           NVM — the data-corruption outcome of Section IV-B2. *)
        st.corruptions <- st.corruptions + 1;
        fresh_start st
      end
  | Scheme.Ratchet -> ratchet_rollback st
  | Scheme.Gecko | Scheme.Gecko_noprune ->
      let progress =
        Nvm.read st.nvm (sys_cell st Link.Cells.sys_progress) = 1
      in
      Nvm.write st.nvm (sys_cell st Link.Cells.sys_progress) 0;
      let mode = Policy.mode_of_int (Nvm.read st.nvm (sys_cell st Link.Cells.sys_mode)) in
      let mode', action, detected = Policy.on_boot mode { Policy.ack_ok; progress } in
      if detected then begin
        st.detections <- st.detections + 1;
        record st Ev_detection
      end;
      set_mode st mode';
      (match action with
      | Policy.Resume_jit -> if jp >= 0 then restore_jit st else fresh_start st
      | Policy.Rollback -> gecko_rollback st)

(* BOR behaviour: a boot attempt starts once the supply clears the
   power-on-reset threshold (a small margin above brownout); it may still
   die mid-boot, which costs real energy — exactly the V_fail-window
   vulnerability of Section IV-B2.  After a failed attempt a hysteresis
   band gates retries. *)
let try_reboot st =
  let v = Capacitor.voltage st.cap in
  let v_por = st.board.Board.v_off +. 0.1 in
  let gate = if st.boot_inhibited then v_por +. 0.08 else v_por in
  if v < gate then ()
  else begin
    st.reboots <- st.reboots + 1;
    let latency = (core st).Device.reboot_latency in
    ignore (Capacitor.drain st.cap (core st).Device.reboot_energy);
    charge st latency;
    st.ph.time <- st.ph.time +. latency;
    if Capacitor.voltage st.cap > st.board.Board.v_off then begin
      st.boot_inhibited <- false;
      st.powered <- true;
      st.progress_written <- false;
      st.ph.boot_time <- st.ph.time;
      Monitor.arm_backup st.monitor;
      Monitor.sync st.monitor ~time:st.ph.time;
      record st (Ev_boot st.mode);
      boot_protocol st;
      refresh_obs st
    end
    else st.boot_inhibited <- true
  end

(* --- instruction execution ------------------------------------------- *)

(* Each sensor read draws from a stream keyed on (run seed, draw index,
   port), so replays are deterministic and independent of execution
   history.  The generator itself is hoisted per run and reseeded in
   place — same values as a fresh [Rng.create] per draw, no allocation. *)
let io_in_value st port =
  Gecko_util.Rng.reseed st.rng_io
    ((st.opts.seed * 1_000_003) + (st.io_in_count * 31) + port);
  st.io_in_count <- st.io_in_count + 1;
  Gecko_util.Rng.int st.rng_io 1024

let complete st =
  (* Defensive: region formation brackets every [Out] with a boundary,
     so the stage is empty here; if a hand-built program reaches [Halt]
     with staged records, completion commits them. *)
  if st.io_staged <> [] then begin
    st.io_log <- st.io_staged @ st.io_log;
    st.io_staged <- []
  end;
  st.completions <- st.completions + 1;
  record st Ev_completion;
  st.completion_times <- st.ph.time :: st.completion_times;
  if st.tl_bucket > 0. then begin
    let i = bucket_index st in
    if i >= 0 && i < Array.length st.tl_comp then
      st.tl_comp.(i) <- st.tl_comp.(i) + 1
  end;
  (match st.opts.limit with
  | Completions n when st.completions >= n ->
      st.stop <- true;
      st.hit_limit <- true
  | Completions _ | Sim_time _ -> ());
  if not st.stop then
    if st.opts.restart_on_halt then begin
      spend st 100 ~extra:0.;
      reinit_data st;
      fresh_start st
    end
    else begin
      st.stop <- true;
      st.hit_limit <- true
    end

(* Speculation-guard undo-log append: before a guarded store clobbers
   [addr], persist (tag, addr, old value).  Crash-atomic append order:
   entry words first, then the count increment (the commit — a torn
   entry above the count is never replayed), and only then may the
   caller overwrite [addr].  The tag and the count come from the
   volatile mirrors, so the append costs 1 NVM read (the old value) +
   4 NVM writes, charged to instrumentation. *)
let undo_append st addr =
  st.guarded_stores <- st.guarded_stores + 1;
  let count = st.undo_count_v in
  if count >= Link.Cells.undo_capacity then
    failwith "Machine: speculation undo log overflow";
  let old = Nvm.read st.nvm addr in
  let base =
    sys_cell st
      (Link.Cells.sys_undo_base + (count * Link.Cells.undo_entry_words))
  in
  let gc = Cost.nvm_read_cycles + (4 * Cost.nvm_write_cycles) in
  spend st gc ~extra:(nvm_extra st ~reads:1 ~writes:4);
  st.instrumentation_cycles <- st.instrumentation_cycles + gc;
  Nvm.write st.nvm base st.boundary_word_v;
  Nvm.write st.nvm (base + 1) addr;
  Nvm.write st.nvm (base + 2) old;
  Nvm.write st.nvm (sys_cell st Link.Cells.sys_undo_count) (count + 1);
  st.undo_count_v <- count + 1

let exec_op st i =
  let c = Cost.instr_cycles i in
  let r = Reg.to_int in
  (match i with
  | Instr.Li (d, v) ->
      spend st c ~extra:0.;
      st.regs.(r d) <- v
  | Instr.Mov (d, s) ->
      spend st c ~extra:0.;
      st.regs.(r d) <- st.regs.(r s)
  | Instr.Bin (op, d, a, b) ->
      spend st c ~extra:0.;
      let bv =
        match b with Instr.Oreg x -> st.regs.(r x) | Instr.Oimm v -> v
      in
      st.regs.(r d) <- Instr.eval_binop op st.regs.(r a) bv
  | Instr.Ld (d, m) ->
      spend st c ~extra:(nvm_extra st ~reads:1 ~writes:0);
      st.regs.(r d) <- Nvm.read st.nvm (Link.resolve st.image m st.regs)
  | Instr.St (m, s) ->
      let addr = Link.resolve st.image m st.regs in
      (* Speculation guard: a slot of this store is marked by the
         linker, so before clobbering the word we persist its old value
         in the undo log.  The executing slot is [st.pc - 1]: the fetch
         already advanced the pc. *)
      if st.k_has_guards && Array.unsafe_get st.image.Link.guards (st.pc - 1)
      then undo_append st addr;
      spend st c ~extra:(nvm_extra st ~reads:0 ~writes:1);
      Nvm.write st.nvm addr st.regs.(r s)
  | Instr.In (d, port) ->
      spend st c ~extra:0.;
      st.regs.(r d) <- io_in_value st port
  | Instr.Out (port, s) ->
      spend st c ~extra:0.;
      st.io_out_count <- st.io_out_count + 1;
      if st.opts.record_io then
        if monitor_is_gecko st then
          (* Staged, not logged: the record becomes persistent only at
             the region commit point. *)
          st.io_staged <- (port, st.regs.(r s)) :: st.io_staged
        else st.io_log <- (port, st.regs.(r s)) :: st.io_log
  | Instr.Nop -> spend st c ~extra:0.
  | Instr.Ckpt (src, colour) ->
      st.ckpt_stores <- st.ckpt_stores + 1;
      let addr = gecko_cell st src colour in
      (* Guarded checkpoint store: this owned store targets a slot some
         restore reuses without the sound crash-window survival proof,
         so log the slot's as-of-commit word before overwriting it. *)
      if st.k_has_guards && Array.unsafe_get st.image.Link.guards (st.pc - 1)
      then undo_append st addr;
      spend st c ~extra:(nvm_extra st ~reads:0 ~writes:1);
      Nvm.write st.nvm addr st.regs.(r src)
  | Instr.CkptDyn src ->
      st.ckpt_stores <- st.ckpt_stores + 1;
      spend st c ~extra:(nvm_extra st ~reads:1 ~writes:1);
      let parity = Nvm.read st.nvm (sys_cell st Link.Cells.sys_parity) in
      Nvm.write st.nvm (ratchet_cell st (1 - parity) src) st.regs.(r src)
  | Instr.LdSlot (d, src, colour) ->
      spend st c ~extra:(nvm_extra st ~reads:1 ~writes:0);
      st.regs.(r d) <- Nvm.read st.nvm (gecko_cell st (Reg.of_int src) colour)
  | Instr.Boundary id ->
      st.boundary_commits <- st.boundary_commits + 1;
      spend st c ~extra:(nvm_extra st ~reads:0 ~writes:1);
      (if st.k_has_guards then begin
         (* Guarded image: the commit word packs (epoch, id + 1) in one
            atomic NVM write, so undo entries appended before this
            commit stop matching the boundary word even when the SAME
            boundary id commits again (a self-loop region).  The count
            clear after the commit discards them; a crash in between
            leaves orphans whose stale tag the replay skips.  The
            previous epoch comes from the volatile mirror, and the
            count clear is elided when the log is already empty — the
            steady-state commit costs exactly its plain-image write. *)
         let epoch = ((st.boundary_word_v lsr 32) + 1) land 0x3FFFFFFF in
         let word = (epoch lsl 32) lor (id + 1) in
         Nvm.write st.nvm (sys_cell st Link.Cells.sys_boundary) word;
         st.boundary_word_v <- word;
         if st.undo_count_v > 0 then begin
           let gc = Cost.nvm_write_cycles in
           spend st gc ~extra:(nvm_extra st ~reads:0 ~writes:1);
           st.instrumentation_cycles <- st.instrumentation_cycles + gc;
           Nvm.write st.nvm (sys_cell st Link.Cells.sys_undo_count) 0;
           st.undo_count_v <- 0
         end
       end
       else Nvm.write st.nvm (sys_cell st Link.Cells.sys_boundary) (id + 1));
      flight_note st ~arg:id "boundary";
      if not st.progress_written then begin
        (* Once per power cycle: the detection flag. *)
        spend st Cost.nvm_write_cycles ~extra:(nvm_extra st ~reads:0 ~writes:1);
        Nvm.write st.nvm (sys_cell st Link.Cells.sys_progress) 1;
        st.progress_written <- true
      end;
      (match st.meta.Meta.scheme with
      | Scheme.Ratchet ->
          let parity = Nvm.read st.nvm (sys_cell st Link.Cells.sys_parity) in
          Nvm.write st.nvm (sys_cell st Link.Cells.sys_parity) (1 - parity)
      | Scheme.Gecko | Scheme.Gecko_noprune ->
          (* Region commit: atomically append the staged io_log records.
             Both lists are newest-first, so prepending the stage keeps
             the log in emission order. *)
          if st.io_staged <> [] then begin
            flight_note st ~arg:(List.length st.io_staged) "io_commit";
            st.io_log <- st.io_staged @ st.io_log;
            st.io_staged <- []
          end;
          let mode' = Policy.on_region_commit st.mode in
          if st.mode = Policy.Probe && mode' = Policy.Jit_on then begin
            st.reenables <- st.reenables + 1;
            record st Ev_reenable
          end;
          if mode' <> st.mode then set_mode st mode'
      | Scheme.Nvp -> ()));
  (* Progress accounting. *)
  match i with
  | Instr.Ckpt _ | Instr.CkptDyn _ | Instr.LdSlot _ | Instr.Boundary _ ->
      st.instrumentation_cycles <- st.instrumentation_cycles + c
  | _ ->
      st.app_cycles <- st.app_cycles + c;
      account_app_seconds st (float_of_int c *. cycle_time st)

let step_instr st =
  (* A forced failure at the fetch boundary: the instruction never
     executes — exactly a power failure between two instructions. *)
  if consult st S_instr then begin
    force_power_failure st;
    brownout st
  end
  else begin
  refresh_attack st;
  st.instrs <- st.instrs + 1;
  (match st.image.Link.code.(st.pc) with
  | Link.Op i ->
      st.pc <- st.pc + 1;
      exec_op st i
  | Link.Ljmp t ->
      spend st 1 ~extra:0.;
      st.app_cycles <- st.app_cycles + 1;
      account_app_seconds st (cycle_time st);
      st.pc <- t
  | Link.Lbr (cond, reg, t, e) ->
      spend st 1 ~extra:0.;
      st.app_cycles <- st.app_cycles + 1;
      account_app_seconds st (cycle_time st);
      st.pc <- (if Instr.eval_cond cond st.regs.(Reg.to_int reg) then t else e)
  | Link.Lcall (target, ret) ->
      let c = Cost.term_cycles (Instr.Call ("", "")) in
      spend st c ~extra:(nvm_extra st ~reads:0 ~writes:1);
      st.app_cycles <- st.app_cycles + c;
      account_app_seconds st (float_of_int c *. cycle_time st);
      let sp = st.regs.(Reg.to_int Reg.sp) in
      Nvm.write st.nvm (st.image.Link.stack_base + sp) ret;
      st.regs.(Reg.to_int Reg.sp) <- sp - 1;
      st.pc <- target
  | Link.Lret ->
      let c = Cost.term_cycles Instr.Ret in
      spend st c ~extra:(nvm_extra st ~reads:1 ~writes:0);
      st.app_cycles <- st.app_cycles + c;
      account_app_seconds st (float_of_int c *. cycle_time st);
      let sp = st.regs.(Reg.to_int Reg.sp) + 1 in
      st.regs.(Reg.to_int Reg.sp) <- sp;
      st.pc <- Nvm.read st.nvm (st.image.Link.stack_base + sp)
  | Link.Lhalt ->
      spend st 1 ~extra:0.;
      complete st);
  if st.tracing && st.ph.time >= st.ph.next_vsample then begin
    sample_voltage st;
    st.ph.next_vsample <- st.ph.time +. vsample_period
  end;
  if st.powered && not st.stop then begin
    if Capacitor.voltage st.cap <= st.k_v_off then brownout st
    else if st.ph.time >= st.ph.next_obs then begin
      (* Between ADC sampling ticks every observe call returns [None]
         without touching monitor state, so the calls are skipped
         wholesale; the comparator kind is latency-sensitive and keeps
         per-instruction observation ([next_obs] = -inf). *)
      (match
         Monitor.observe st.monitor ~time:st.ph.time
           ~v_true:(Capacitor.voltage st.cap) ~disturbance:st.ph.cur_amp
       with
      | Some Monitor.Backup -> handle_backup st
      | Some Monitor.Wake | None -> ());
      refresh_obs st
    end
  end
  end

(* --- pre-decoded block dispatcher ------------------------------------ *)

(* One instruction's physics on the fast path: the exact float sequence
   of [spend] with [Capacitor.drain]/[charge] inlined (without flambda a
   cross-module call costs more than the float work it wraps).  Every
   expression replicates capacitor.ml / harvester.ml operation for
   operation, so the voltage trajectory is bit-identical to the checked
   path's.  [min]/[max] are spelled as float comparisons — same result
   as the polymorphic stdlib versions on the non-NaN values involved.
   When no attack window is harvesting, [cur_harvest_w = 0.] and the
   harvester current is >= +0., so skipping the [+. 0.] term cannot
   change a bit. *)
let spend_fast st dt e c =
  st.instrs <- st.instrs + 1;
  let cap = st.cap in
  let ph = st.ph in
  let open Capacitor in
  let v0 = cap.voltage in
  let v1 =
    if e > 0. then begin
      let stored = 0.5 *. cap.capacitance *. v0 *. v0 in
      let removed = if e <= stored then e else stored in
      let v = sqrt (2. *. (stored -. removed) /. cap.capacitance) in
      cap.voltage <- v;
      cap.drained_total <- cap.drained_total +. removed;
      v
    end
    else v0
  in
  let i =
    if st.k_harv_const then ph.k_harv_pw /. (if v1 >= 0.5 then v1 else 0.5)
    else Harvester.current st.k_harv ~time:ph.time ~v:v1
  in
  let i =
    if ph.cur_harvest_w > 0. then
      i +. (ph.cur_harvest_w /. (if v1 >= 0.5 then v1 else 0.5))
    else i
  in
  if i > 0. && dt > 0. then begin
    let e0 = 0.5 *. cap.capacitance *. v1 *. v1 in
    let dv = i *. dt /. cap.capacitance in
    let v' = v1 +. dv in
    let v2 = if cap.v_max <= v' then cap.v_max else v' in
    cap.voltage <- v2;
    cap.sourced_total <-
      cap.sourced_total +. ((0.5 *. cap.capacitance *. v2 *. v2) -. e0)
  end;
  ph.time <- ph.time +. dt;
  (* [c] is the instruction's application-cycle count, 0 for
     compiler-inserted instrumentation (whose cycles the caller books
     under [instrumentation_cycles]); folding the accounting in here
     keeps the dispatcher at one call per instruction, which without
     flambda is a measurable share of the loop. *)
  st.app_cycles <- st.app_cycles + c;
  if st.k_tl_on && c > 0 then account_app_seconds st dt

(* Region commits are the one per-instruction-path op the block
   dispatcher cannot batch (solo slot, data-dependent cost) yet by far
   the most frequent slow step: every region boundary of a healthy run
   lands here.  In the steady state — progress flag already written,
   nothing staged for commit, policy mode unchanged by the commit — a
   boundary's cost is exactly its decoded [dt]/[en] (the commit write
   is already in the decoder's NVM-write count), so the same O(1)
   guard used for blocks proves the hoisted checks are no-ops and the
   commit semantics run verbatim.  Any other situation (first boundary
   of a power cycle, staged io_log records, Probe re-enable, rollback
   modes) falls back to the fully-checked path untouched. *)
let try_fast_solo st pc id =
  (* Guarded images pack (epoch, id) into the commit word — free, it is
     the same single NVM write — but a non-empty undo log adds a count
     clear this O(1) guard does not model, so that case falls back. *)
  (if st.progress_written && ((not st.k_has_guards) || st.undo_count_v = 0)
   then
     match st.meta.Meta.scheme with
     | Scheme.Nvp | Scheme.Ratchet -> true
     | Scheme.Gecko | Scheme.Gecko_noprune ->
         (match st.io_staged with [] -> true | _ :: _ -> false)
         && Policy.on_region_commit st.mode = st.mode
   else false)
  &&
  let d = st.dec in
  let dt = Array.unsafe_get d.Decode.dt pc in
  let en = Array.unsafe_get d.Decode.en pc in
  let ph = st.ph in
  let t_end = ((ph.time +. dt) *. 1.000000000001) +. 1e-18 in
  if t_end >= st.k_time_limit || t_end >= ph.next_change then false
  else
    let e_need = (en *. 1.000001) +. 1e-18 in
    let e_rem = Capacitor.energy st.cap -. e_need in
    if e_rem <= (st.k_e_off *. 1.000001) +. 1e-18 then false
    else
      let mon_ok =
        t_end < ph.next_obs
        || ph.next_obs = neg_infinity
           && Monitor.quiescent st.monitor
                ~v_min:
                  (sqrt (2. *. e_rem /. Capacitor.capacitance st.cap)
                  *. 0.999999)
                ~disturbance:ph.cur_amp
      in
      if not mon_ok then false
      else begin
        st.boundary_commits <- st.boundary_commits + 1;
        spend_fast st dt en 0;
        let word =
          if st.k_has_guards then begin
            let epoch = ((st.boundary_word_v lsr 32) + 1) land 0x3FFFFFFF in
            let w = (epoch lsl 32) lor (id + 1) in
            st.boundary_word_v <- w;
            w
          end
          else id + 1
        in
        Nvm.write st.nvm (sys_cell st Link.Cells.sys_boundary) word;
        flight_note st ~arg:id "boundary";
        (match st.meta.Meta.scheme with
        | Scheme.Ratchet ->
            let parity = Nvm.read st.nvm (sys_cell st Link.Cells.sys_parity) in
            Nvm.write st.nvm (sys_cell st Link.Cells.sys_parity) (1 - parity)
        | Scheme.Nvp | Scheme.Gecko | Scheme.Gecko_noprune -> ());
        st.instrumentation_cycles <-
          st.instrumentation_cycles + Array.unsafe_get d.Decode.cyc pc;
        st.pc <- pc + 1;
        true
      end

(* Run the decoded slots [pc, endp) with the per-instruction checks
   hoisted out (the block guard proved them all no-ops).  Register
   indices come from the decoder, which only emits indices below
   [Reg.count], so unchecked array access is safe.  The loop is a local
   tail-recursive function: without flambda a [ref] loop counter lives
   in memory, while a tail-call argument stays in a register.  Arms
   that transfer control set [st.pc] and simply do not recurse. *)
let exec_block st pc endp =
  let d = st.dec in
  let ops = d.Decode.ops in
  let dta = d.Decode.dt in
  let ena = d.Decode.en in
  let cyc = d.Decode.cyc in
  let regs = st.regs in
  let nvm = st.nvm in
  let rec go s =
    if s >= endp then st.pc <- s
    else
      match Array.unsafe_get ops s with
    | Decode.M_li (dd, v) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd v;
        go (s + 1)
    | Decode.M_mov (dd, sv) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd (Array.unsafe_get regs sv);
        go (s + 1)
    | Decode.M_bin_rr (op, dd, a, b) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd
          (Instr.eval_binop op (Array.unsafe_get regs a)
             (Array.unsafe_get regs b));
        go (s + 1)
    | Decode.M_bin_ri (op, dd, a, v) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd
          (Instr.eval_binop op (Array.unsafe_get regs a) v);
        go (s + 1)
    | Decode.M_ld (dd, addr) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd (Nvm.read nvm addr);
        go (s + 1)
    | Decode.M_ld_dyn (dd, base, r) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd (Nvm.read nvm (base + Array.unsafe_get regs r));
        go (s + 1)
    | Decode.M_st (addr, sv) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Nvm.write nvm addr (Array.unsafe_get regs sv);
        go (s + 1)
    | Decode.M_st_dyn (base, r, sv) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Nvm.write nvm (base + Array.unsafe_get regs r) (Array.unsafe_get regs sv);
        go (s + 1)
    | Decode.M_in (dd, port) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd (io_in_value st port);
        go (s + 1)
    | Decode.M_out (port, sv) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        st.io_out_count <- st.io_out_count + 1;
        (if st.opts.record_io then
           if monitor_is_gecko st then
             st.io_staged <- (port, Array.unsafe_get regs sv) :: st.io_staged
           else st.io_log <- (port, Array.unsafe_get regs sv) :: st.io_log);
        go (s + 1)
    | Decode.M_nop ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        go (s + 1)
    | Decode.M_ckpt (addr, src) ->
        st.ckpt_stores <- st.ckpt_stores + 1;
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s) 0;
        Nvm.write nvm addr (Array.unsafe_get regs src);
        st.instrumentation_cycles <-
          st.instrumentation_cycles + Array.unsafe_get cyc s;
        go (s + 1)
    | Decode.M_ckptdyn (src, parity_addr, cell_base) ->
        st.ckpt_stores <- st.ckpt_stores + 1;
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s) 0;
        let parity = Nvm.read nvm parity_addr in
        Nvm.write nvm
          (cell_base + ((1 - parity) * Reg.count))
          (Array.unsafe_get regs src);
        st.instrumentation_cycles <-
          st.instrumentation_cycles + Array.unsafe_get cyc s;
        go (s + 1)
    | Decode.M_ldslot (dd, addr) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s) 0;
        Array.unsafe_set regs dd (Nvm.read nvm addr);
        st.instrumentation_cycles <-
          st.instrumentation_cycles + Array.unsafe_get cyc s;
        go (s + 1)
    | Decode.M_jmp t ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        st.pc <- t
    | Decode.M_br (cond, r, t, e) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        st.pc <-
          (if Instr.eval_cond cond (Array.unsafe_get regs r) then t else e)
    | Decode.M_call (target, ret) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        let spi = Reg.to_int Reg.sp in
        let sp = regs.(spi) in
        Nvm.write nvm (st.image.Link.stack_base + sp) ret;
        regs.(spi) <- sp - 1;
        st.pc <- target
    | Decode.M_ret ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        let spi = Reg.to_int Reg.sp in
        let sp = regs.(spi) + 1 in
        regs.(spi) <- sp;
        st.pc <- Nvm.read nvm (st.image.Link.stack_base + sp)
    | Decode.M_boundary _ | Decode.M_halt ->
        (* Solo slots never pass the block guard; if control ever lands
           here the slot is replayed on the checked path untouched. *)
        st.pc <- s
    | Decode.M_f_ld_op_rr (d1, addr, op, d2, a2, b2) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs d1 (Nvm.read nvm addr);
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Array.unsafe_set regs d2
          (Instr.eval_binop op (Array.unsafe_get regs a2)
             (Array.unsafe_get regs b2));
        go (s + 2)
    | Decode.M_f_ld_op_ri (d1, addr, op, d2, a2, v) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs d1 (Nvm.read nvm addr);
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Array.unsafe_set regs d2
          (Instr.eval_binop op (Array.unsafe_get regs a2) v);
        go (s + 2)
    | Decode.M_f_op_st_rr (op, dd, a, b, addr) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd
          (Instr.eval_binop op (Array.unsafe_get regs a)
             (Array.unsafe_get regs b));
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Nvm.write nvm addr (Array.unsafe_get regs dd);
        go (s + 2)
    | Decode.M_f_op_st_ri (op, dd, a, v, addr) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd
          (Instr.eval_binop op (Array.unsafe_get regs a) v);
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Nvm.write nvm addr (Array.unsafe_get regs dd);
        go (s + 2)
    | Decode.M_f_cmp_br_rr (op, dd, a, b, cond, t, e) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd
          (Instr.eval_binop op (Array.unsafe_get regs a)
             (Array.unsafe_get regs b));
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        st.pc <-
          (if Instr.eval_cond cond (Array.unsafe_get regs dd) then t else e)
    | Decode.M_f_cmp_br_ri (op, dd, a, v, cond, t, e) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs dd
          (Instr.eval_binop op (Array.unsafe_get regs a) v);
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        st.pc <-
          (if Instr.eval_cond cond (Array.unsafe_get regs dd) then t else e)
    | Decode.M_f_lddyn_op_rr (d1, base, r, op, d2, a2, b2) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs d1 (Nvm.read nvm (base + Array.unsafe_get regs r));
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Array.unsafe_set regs d2
          (Instr.eval_binop op (Array.unsafe_get regs a2)
             (Array.unsafe_get regs b2));
        go (s + 2)
    | Decode.M_f_lddyn_op_ri (d1, base, r, op, d2, a2, v) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs d1 (Nvm.read nvm (base + Array.unsafe_get regs r));
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Array.unsafe_set regs d2
          (Instr.eval_binop op (Array.unsafe_get regs a2) v);
        go (s + 2)
    | Decode.M_f_op_op_rr_rr (op1, d1, a1, b1, op2, d2, a2, b2) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs d1
          (Instr.eval_binop op1 (Array.unsafe_get regs a1)
             (Array.unsafe_get regs b1));
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Array.unsafe_set regs d2
          (Instr.eval_binop op2 (Array.unsafe_get regs a2)
             (Array.unsafe_get regs b2));
        go (s + 2)
    | Decode.M_f_op_op_rr_ri (op1, d1, a1, b1, op2, d2, a2, v2) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs d1
          (Instr.eval_binop op1 (Array.unsafe_get regs a1)
             (Array.unsafe_get regs b1));
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Array.unsafe_set regs d2
          (Instr.eval_binop op2 (Array.unsafe_get regs a2) v2);
        go (s + 2)
    | Decode.M_f_op_op_ri_rr (op1, d1, a1, v1, op2, d2, a2, b2) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs d1
          (Instr.eval_binop op1 (Array.unsafe_get regs a1) v1);
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Array.unsafe_set regs d2
          (Instr.eval_binop op2 (Array.unsafe_get regs a2)
             (Array.unsafe_get regs b2));
        go (s + 2)
    | Decode.M_f_op_op_ri_ri (op1, d1, a1, v1, op2, d2, a2, v2) ->
        spend_fast st (Array.unsafe_get dta s) (Array.unsafe_get ena s)
          (Array.unsafe_get cyc s);
        Array.unsafe_set regs d1
          (Instr.eval_binop op1 (Array.unsafe_get regs a1) v1);
        let s1 = s + 1 in
        spend_fast st (Array.unsafe_get dta s1) (Array.unsafe_get ena s1)
          (Array.unsafe_get cyc s1);
        Array.unsafe_set regs d2
          (Instr.eval_binop op2 (Array.unsafe_get regs a2) v2);
        go (s + 2)
  in
  go pc

(* Block-entry guard: prove that from [pc] to its block end none of the
   per-instruction checks — time limit, attack-window edge, brownout,
   monitor sample / comparator — can fire, then run the whole stretch
   with those checks hoisted out.  The per-instruction physics are
   untouched, so a fast block is bit-identical to the same slots stepped
   one at a time; the only drift is the [Monitor.observations] count of
   skipped no-op comparator observes, which nothing reads back.  The
   suffix totals are one rounded sum while the loop accumulates step by
   step, so every comparison carries a small conservative slack — a
   spurious guard failure just falls back to the checked path. *)
(* Full-block guard failed (a monitor sample, attack edge, limit or
   low-energy point lands inside the block): batch the longest prefix
   that provably finishes before the earliest such point instead of
   surrendering the whole block to the single-step path.  The walk
   follows the execution path from [pc] by superinstruction width, so
   the prefix always ends exactly where control would land — a fused
   pair never straddles the cut.  Prefix totals are differences of the
   decoder's suffix sums; the same relative margins as the full guard
   absorb the extra rounding.  Comparator monitors (next_obs = -inf)
   are handled by the full guard's quiescence proof only — a failed
   proof means per-instruction observation really is required. *)
let try_fast_prefix st pc =
  let d = st.dec in
  let ph = st.ph in
  if ph.next_obs = neg_infinity then false
  else
    let lim_t =
      let l = if st.k_time_limit <= ph.next_change then st.k_time_limit
              else ph.next_change in
      if ph.next_obs <= l then ph.next_obs else l
    in
    let endp = Array.unsafe_get d.Decode.blk_end pc in
    let dsfx0 = Array.unsafe_get d.Decode.dt_sfx pc in
    let esfx0 = Array.unsafe_get d.Decode.e_sfx pc in
    let e_cap = Capacitor.energy st.cap in
    let e_floor = (st.k_e_off *. 1.000001) +. 1e-18 in
    let ops = d.Decode.ops in
    let m = ref pc in
    let go_on = ref true in
    while !go_on && !m < endp do
      let nxt = !m + Decode.width (Array.unsafe_get ops !m) in
      let dt_pre =
        dsfx0
        -. (if nxt >= endp then 0. else Array.unsafe_get d.Decode.dt_sfx nxt)
      in
      let e_pre =
        esfx0
        -. (if nxt >= endp then 0. else Array.unsafe_get d.Decode.e_sfx nxt)
      in
      let t_end = ((ph.time +. dt_pre) *. 1.000000000001) +. 1e-18 in
      let e_need = (e_pre *. 1.000001) +. 1e-18 in
      if t_end < lim_t && e_cap -. e_need > e_floor then m := nxt
      else go_on := false
    done;
    if !m > pc then begin
      exec_block st pc !m;
      true
    end
    else false

let try_fast_block st =
  let d = st.dec in
  let pc = st.pc in
  if pc < 0 || pc >= d.Decode.n_ops then false
  else
    let e_sfx = Array.unsafe_get d.Decode.e_sfx pc in
    if e_sfx = infinity then
      (* Solo slot: steady-state region commits still get the O(1)
         guard treatment; everything else single-steps. *)
      (match Array.unsafe_get d.Decode.ops pc with
      | Decode.M_boundary id -> try_fast_solo st pc id
      | _ -> false)
    else
      let ph = st.ph in
      let t_end =
        ((ph.time +. Array.unsafe_get d.Decode.dt_sfx pc) *. 1.000000000001)
        +. 1e-18
      in
      if t_end >= st.k_time_limit || t_end >= ph.next_change then
        try_fast_prefix st pc
      else
        let e_need = (e_sfx *. 1.000001) +. 1e-18 in
        let e_rem = Capacitor.energy st.cap -. e_need in
        if e_rem <= (st.k_e_off *. 1.000001) +. 1e-18 then
          try_fast_prefix st pc
        else if t_end < ph.next_obs then begin
          exec_block st pc (Array.unsafe_get d.Decode.blk_end pc);
          true
        end
        else if ph.next_obs = neg_infinity then begin
          (* Comparator monitor: every in-block voltage stays above
             [v_min]; ask the monitor whether all observes at or above
             it are provably no-ops. *)
          let v_min =
            sqrt (2. *. e_rem /. Capacitor.capacitance st.cap) *. 0.999999
          in
          if Monitor.quiescent st.monitor ~v_min ~disturbance:ph.cur_amp
          then begin
            exec_block st pc (Array.unsafe_get d.Decode.blk_end pc);
            true
          end
          else false
        end
        else try_fast_prefix st pc

let step_sleep st =
  refresh_attack st;
  let dt = sleep_step in
  (* Below brownout the MCU is completely off; only capacitor leakage
     remains (two orders of magnitude below the LPM draw). *)
  let sleep_draw =
    if Capacitor.voltage st.cap > st.k_v_off then st.k_sleep_power
    else st.k_sleep_power /. 100.
  in
  ignore (Capacitor.drain st.cap (sleep_draw *. dt));
  charge st dt;
  st.ph.time <- st.ph.time +. dt;
  if st.ph.time < st.ph.next_wake_check then ()
  else begin
  st.ph.next_wake_check <- st.ph.time +. wake_poll;
  if st.tracing && st.ph.time >= st.ph.next_vsample then begin
    sample_voltage st;
    st.ph.next_vsample <- st.ph.time +. vsample_period
  end;
  let monitor_wake =
    match st.meta.Meta.scheme with
    | Scheme.Nvp | Scheme.Ratchet -> true
    | Scheme.Gecko | Scheme.Gecko_noprune -> Policy.monitor_enabled st.mode
  in
  if monitor_wake then begin
    match
      Monitor.observe st.monitor ~time:st.ph.time
        ~v_true:(Capacitor.voltage st.cap) ~disturbance:st.ph.cur_amp
    with
    | Some Monitor.Wake -> try_reboot st
    | Some Monitor.Backup | None -> ()
  end
  else if
    (* Attack surface closed: reboot only on the true (on-die POR)
       threshold, which remote EMI cannot move. *)
    Capacitor.voltage st.cap >= st.board.Board.v_on
  then try_reboot st
  end

(* ------------------------------------------------------------------ *)

let make_state ~board ~image ~meta opts =
  let nvm = Nvm.create ~words:image.Link.nvm_words () in
  Nvm.load_program nvm image;
  let device = board.Board.device in
  let kind = Device.monitor_kind device board.Board.monitor_choice in
  let monitor =
    Monitor.create kind
      { Gecko_monitor.Monitor.v_backup = board.Board.v_backup; v_on = board.Board.v_on }
  in
  let profile = Device.coupling device board.Board.monitor_choice in
  let v_init = if opts.start_charged then board.Board.v_max else 0. in
  let cap =
    Capacitor.create ~capacitance:board.Board.capacitance
      ~v_max:board.Board.v_max ~v_init
  in
  let tl_bucket = Option.value opts.timeline_bucket ~default:0. in
  let n_buckets =
    if tl_bucket > 0. then
      let horizon =
        match opts.limit with
        | Sim_time t -> t
        | Completions _ -> opts.max_sim_time
      in
      int_of_float (ceil (horizon /. tl_bucket)) + 1
    else 0
  in
  let st =
    {
      board;
      image;
      meta;
      opts;
      nvm;
      cap;
      monitor;
      profile;
      k_cycle_time = Device.cycle_time device;
      k_epc = Device.energy_per_cycle device;
      k_nvm_read_e = device.Device.core.Device.nvm_read_energy;
      k_nvm_write_e = device.Device.core.Device.nvm_write_energy;
      k_sleep_power = device.Device.core.Device.sleep_power;
      k_v_off = board.Board.v_off;
      k_e_off =
        Capacitor.stored_energy_at ~capacitance:board.Board.capacitance
          board.Board.v_off;
      k_harv = board.Board.harvester;
      k_harv_const =
        (match Harvester.constant_power_watts board.Board.harvester with
        | Some _ -> true
        | None -> false);
      k_tl_on = tl_bucket > 0.;
      ph =
        {
          time = 0.;
          cur_amp = 0.;
          cur_harvest_w = 0.;
          next_change = neg_infinity;
          next_obs = neg_infinity;
          next_vsample = 0.;
          boot_time = 0.;
          next_wake_check = 0.;
          k_harv_pw =
            (match Harvester.constant_power_watts board.Board.harvester with
            | Some p -> p
            | None -> 0.);
        };
      dec =
        (match opts.decoded with
        | Some d when d.Decode.image == image -> d
        | Some _ | None -> Decode.decode ~device image);
      fast_enabled = opts.fast;
      k_has_guards = Array.length image.Link.guards > 0;
      rng_io = Gecko_util.Rng.create 0;
      regs = Array.make Reg.count 0;
      pc = image.Link.entry;
      powered = opts.start_charged;
      mode = Policy.Jit_on;
      windows = Array.of_list (Schedule.windows opts.schedule);
      win_idx = 0;
      instrs = 0;
      injector = None;
      k_time_limit =
        (match opts.limit with
        | Sim_time t -> Float.min t opts.max_sim_time
        | Completions _ -> opts.max_sim_time);
      stop = false;
      hit_limit = false;
      progress_written = false;
      boot_inhibited = false;
      t_min_on =
        0.5 *. float_of_int (Board.budget_cycles board)
        *. Device.cycle_time board.Board.device;
      completions = 0;
      completion_times = [];
      app_cycles = 0;
      instrumentation_cycles = 0;
      jit_checkpoints = 0;
      jit_checkpoint_failures = 0;
      reboots = 0;
      brownouts = 0;
      detections = 0;
      reenables = 0;
      rollbacks = 0;
      recovery_block_runs = 0;
      misspeculations = 0;
      boundary_commits = 0;
      ckpt_stores = 0;
      guarded_stores = 0;
      boundary_word_v = 0;
      undo_count_v = 0;
      corruptions = 0;
      io_in_count = 0;
      io_out_count = 0;
      io_log = [];
      io_staged = [];
      io_staged_ckpt = [];
      events = [];
      tl_app = Array.make (max n_buckets 1) 0.;
      tl_comp = Array.make (max n_buckets 1) 0;
      tl_bucket;
      tracing =
        (match opts.trace with
        | Some tr -> Gecko_obs.Trace.enabled tr
        | None -> false);
      trace =
        (match opts.trace with
        | Some tr when Gecko_obs.Trace.enabled tr -> Some tr
        | Some _ | None -> None);
      flight =
        (match opts.flight with
        | Some fl when Gecko_obs.Flight.enabled fl -> Some fl
        | Some _ | None -> None);
      hist_ckpt =
        Option.map
          (fun reg -> Gecko_obs.Metrics.histogram reg "machine.jit_checkpoint_isr_s")
          opts.metrics;
      hist_rollback =
        Option.map
          (fun reg -> Gecko_obs.Metrics.histogram reg "machine.rollback_s")
          opts.metrics;
    }
  in
  (match st.trace with
  | Some tr ->
      (* The raw monitor output stream: what the (possibly disturbed)
         voltage monitor reported, before the runtime acted on it. *)
      Monitor.set_on_event monitor (fun ~time ev ->
          Gecko_obs.Trace.instant tr ~cat:"monitor" ~ts:time
            (match ev with
            | Monitor.Backup -> "monitor_backup"
            | Monitor.Wake -> "monitor_wake"))
  | None -> ());
  (* Initialize runtime cells. *)
  Nvm.write nvm (jit_cell st Link.Cells.jit_pc) (-1);
  Nvm.write nvm (sys_cell st Link.Cells.sys_ack_seen) (-1);
  Nvm.write nvm (sys_cell st Link.Cells.sys_mode)
    (Policy.mode_to_int Policy.Jit_on);
  fresh_start st;
  if not opts.start_charged then Monitor.arm_wake st.monitor;
  if monitor_is_gecko st then
    Monitor.set_enabled st.monitor (Policy.monitor_enabled st.mode);
  refresh_obs st;
  (* The initial power-up is a boot like any other. *)
  if st.powered then record st (Ev_boot st.mode);
  st

(* End-of-run scalar dump into the metrics registry.  Counters add, so a
   registry shared across several runs accumulates suite totals; the
   gauges keep last-run values. *)
let export_metrics st =
  match st.opts.metrics with
  | None -> ()
  | Some reg ->
      let module Mx = Gecko_obs.Metrics in
      let c name v = Mx.incr ~by:v (Mx.counter reg name) in
      c "machine.completions" st.completions;
      c "machine.jit_checkpoints" st.jit_checkpoints;
      c "machine.jit_checkpoint_failures" st.jit_checkpoint_failures;
      c "machine.reboots" st.reboots;
      c "machine.brownouts" st.brownouts;
      c "machine.detections" st.detections;
      c "machine.reenables" st.reenables;
      c "machine.rollbacks" st.rollbacks;
      c "machine.recovery_block_runs" st.recovery_block_runs;
      c "machine.misspeculations" st.misspeculations;
      c "machine.boundary_commits" st.boundary_commits;
      c "machine.ckpt_stores" st.ckpt_stores;
      c "machine.guarded_stores" st.guarded_stores;
      c "machine.corruptions" st.corruptions;
      c "machine.instructions" st.instrs;
      c "machine.app_cycles" st.app_cycles;
      c "machine.instrumentation_cycles" st.instrumentation_cycles;
      c "monitor.observations" (Monitor.observations st.monitor);
      c "monitor.fires" (Monitor.fires st.monitor);
      let g name v = Mx.set_gauge (Mx.gauge reg name) v in
      g "machine.sim_time_s" st.ph.time;
      g "machine.app_seconds" (float_of_int st.app_cycles *. cycle_time st);
      g "machine.cap_voltage_final_v" (Capacitor.voltage st.cap);
      g "energy.drained_j" (Capacitor.energy_drained_total st.cap);
      g "energy.sourced_j" (Capacitor.energy_sourced_total st.cap)

let finish st =
  export_metrics st;
  if st.tracing then sample_voltage st;
  {
    completions = st.completions;
    completion_times = List.rev st.completion_times;
    sim_time = st.ph.time;
    instructions = st.instrs;
    app_cycles = st.app_cycles;
    app_seconds = float_of_int st.app_cycles *. cycle_time st;
    instrumentation_cycles = st.instrumentation_cycles;
    jit_checkpoints = st.jit_checkpoints;
    jit_checkpoint_failures = st.jit_checkpoint_failures;
    reboots = st.reboots;
    brownouts = st.brownouts;
    detections = st.detections;
    reenables = st.reenables;
    rollbacks = st.rollbacks;
    recovery_block_runs = st.recovery_block_runs;
    misspeculations = st.misspeculations;
    boundary_commits = st.boundary_commits;
    ckpt_stores = st.ckpt_stores;
    guarded_stores = st.guarded_stores;
    corruptions = st.corruptions;
    io_out_count = st.io_out_count;
    io_log = List.rev st.io_log;
    final_mode = st.mode;
    events = List.rev st.events;
    timeline =
      (if st.tl_bucket > 0. then
         Some
           {
             bucket = st.tl_bucket;
             app_seconds_per_bucket = st.tl_app;
             completions_per_bucket = st.tl_comp;
           }
       else None);
    hit_limit = st.hit_limit;
  }

let step_once st =
  if st.stop then false
  else if st.ph.time >= st.k_time_limit then begin
    st.stop <- true;
    st.hit_limit <-
      (match st.opts.limit with Sim_time _ -> true | Completions _ -> false);
    false
  end
  else begin
    (if st.powered then step_instr st else step_sleep st);
    not st.stop
  end

(* One main-loop turn: whole decoded blocks whenever the guard holds;
   otherwise (injector armed, tracing, low energy, pending
   monitor/attack/limit event, solo slot, sleeping) one fully-checked
   step.  [Step.step] clients keep the per-instruction path —
   fault-injection sites are per instruction by definition.  [run_state]
   is literally [while step_block st do () done], so any driver issuing
   [step_block] turns — the lockstep fleet engine interleaves turns from
   thousands of devices — reproduces [run] bit for bit per device. *)
let step_block st =
  if
    st.fast_enabled && st.powered && (not st.stop)
    && (match st.injector with None -> true | Some _ -> false)
    && (not st.tracing)
    && try_fast_block st
  then true
  else step_once st

let run_state st =
  while step_block st do
    ()
  done;
  finish st

let run ~board ~image ~meta opts =
  run_state (make_state ~board ~image ~meta opts)

let data_snapshot st =
  Array.init st.image.Link.data_words (fun i -> Nvm.read st.nvm i)

module Step = struct
  type handle = state

  let start ~board ~image ~meta opts = make_state ~board ~image ~meta opts
  let set_injector st f = st.injector <- f
  let step = step_once
  let step_block = step_block
  let finished st = st.stop
  let time st = st.ph.time
  let instructions st = st.instrs
  let powered st = st.powered
  let mode st = st.mode
  let force_power_failure = force_power_failure
  let outcome = finish
  let nvm_data = data_snapshot
end

let run_with_nvm ~board ~image ~meta opts =
  let st = make_state ~board ~image ~meta opts in
  let o = run_state st in
  (o, data_snapshot st)

let golden_nvm ~board ~image ~meta =
  let board =
    { board with Board.harvester = Gecko_energy.Harvester.constant_power 1.0 }
  in
  let opts =
    { default_options with limit = Completions 1; max_sim_time = 3600. }
  in
  let st = make_state ~board ~image ~meta opts in
  ignore (run_state st);
  data_snapshot st

type t = {
  capacitance : float;
  v_max : float;
  mutable voltage : float;
  mutable drained_total : float;
  mutable sourced_total : float;
}

let create ~capacitance ~v_max ~v_init =
  if capacitance <= 0. then invalid_arg "Capacitor.create: capacitance <= 0";
  if v_init < 0. || v_init > v_max then
    invalid_arg "Capacitor.create: v_init out of range";
  { capacitance; v_max; voltage = v_init; drained_total = 0.; sourced_total = 0. }

let capacitance t = t.capacitance
let voltage t = t.voltage
let v_max t = t.v_max
let energy t = 0.5 *. t.capacitance *. t.voltage *. t.voltage

let energy_between t ~v_hi ~v_lo =
  0.5 *. t.capacitance *. ((v_hi *. v_hi) -. (v_lo *. v_lo))

let set_voltage t v =
  if v < 0. || v > t.v_max then invalid_arg "Capacitor.set_voltage: out of range";
  t.voltage <- v

let drain t joules =
  if joules <= 0. then 0.
  else
    let e = energy t in
    let removed = min joules e in
    let e' = e -. removed in
    t.voltage <- sqrt (2. *. e' /. t.capacitance);
    t.drained_total <- t.drained_total +. removed;
    removed

let source_current t ~amps ~dt =
  if amps > 0. && dt > 0. then begin
    let e0 = energy t in
    let dv = amps *. dt /. t.capacitance in
    t.voltage <- min t.v_max (t.voltage +. dv);
    t.sourced_total <- t.sourced_total +. (energy t -. e0)
  end

let energy_drained_total t = t.drained_total
let energy_sourced_total t = t.sourced_total

(* Batched-integration entry point for block-level dispatch: the stored
   energy at voltage [v], with the exact float expression of [energy] so
   an energy-space comparison agrees bit-for-bit with a voltage-space
   one (x -> 0.5*C*x*x rounds monotonically, so E(v1) > E(v2) implies
   v1 > v2). *)
let stored_energy_at ~capacitance v = 0.5 *. capacitance *. v *. v

let charge_time_rc ~capacitance ~v_source ~r_source ~v_from ~v_to =
  if v_to >= v_source then infinity
  else if v_to <= v_from then 0.
  else
    (* V(t) = Vs - (Vs - V0) e^{-t/RC} *)
    r_source *. capacitance
    *. log ((v_source -. v_from) /. (v_source -. v_to))

type t =
  | Constant_power of float
  | Thevenin of { v_source : float; r_source : float }
  | Square_wave of { period : float; duty : float; inner : t }
  | Scripted of { segments : (float * t) array; total : float }
  | Rf_ambient of { seed : int; mean_power : float; flicker : float }
  | None_

let constant_power p = Constant_power p
let thevenin ~v_source ~r_source = Thevenin { v_source; r_source }

let square_wave ~period ~duty inner =
  if period <= 0. || duty < 0. || duty > 1. then
    invalid_arg "Harvester.square_wave: bad parameters";
  Square_wave { period; duty; inner }

let scripted segments =
  if segments = [] then invalid_arg "Harvester.scripted: empty";
  let arr = Array.of_list segments in
  let total = Array.fold_left (fun acc (d, _) -> acc +. d) 0. arr in
  if total <= 0. then invalid_arg "Harvester.scripted: zero total duration";
  Scripted { segments = arr; total }

let rf_ambient ~seed ~mean_power ~flicker =
  Rf_ambient { seed; mean_power; flicker }

let none = None_

(* Deterministic per-slot fluctuation from a hash of (seed, slot index). *)
let flicker_factor seed flicker time =
  let slot = int_of_float (time /. 0.005) in
  let h = Gecko_util.Rng.create ((seed * 1_000_003) + slot) in
  1.0 +. ((Gecko_util.Rng.float h 2.0 -. 1.0) *. flicker)

let rec current t ~time ~v =
  match t with
  | Constant_power p ->
      let v_eff = max v 0.5 in
      p /. v_eff
  | Thevenin { v_source; r_source } -> max 0. ((v_source -. v) /. r_source)
  | Square_wave { period; duty; inner } ->
      let phase = Float.rem time period in
      if phase < duty *. period then current inner ~time ~v else 0.
  | Scripted { segments; total } ->
      let phase = ref (Float.rem time total) in
      let chosen = ref None_ in
      (try
         Array.iter
           (fun (d, h) ->
             if !phase < d then begin
               chosen := h;
               raise Exit
             end
             else phase := !phase -. d)
           segments
       with Exit -> ());
      current !chosen ~time ~v
  | Rf_ambient { seed; mean_power; flicker } ->
      let p = mean_power *. flicker_factor seed flicker time in
      let v_eff = max v 0.5 in
      p /. v_eff
  | None_ -> 0.

let constant_power_watts = function Constant_power p -> Some p | _ -> None

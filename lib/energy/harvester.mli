(** Ambient-energy harvester models.

    A harvester delivers current into the capacitor as a function of time
    and of the current capacitor voltage.  The models cover the paper's
    setups:

    - {!constant_power}: bench DC supply (Sections IV-A/IV-B, "+3.3V DC").
    - {!thevenin}: rectenna/solar front end with source impedance — gives
      the RC charging curve behind the capacitor-size study (Fig. 15).
    - {!square_wave}: the MSP430FR5969-based power generator that induces
      outages at 1 Hz (Section VII-B3).
    - {!scripted}: arbitrary piecewise traces ("RF power trace").
    - {!rf_ambient}: Powercast-style RF harvesting whose delivered power
      fluctuates deterministically around a mean (Section VII-B4). *)

type t

val constant_power : float -> t
(** Delivered power in watts (converted to current at the present
    capacitor voltage). *)

val thevenin : v_source:float -> r_source:float -> t
(** Current [(v_source - v) / r_source], floored at zero. *)

val square_wave : period:float -> duty:float -> t -> t
(** Gate another harvester: on for [duty * period] then off. *)

val scripted : (float * t) list -> t
(** [(duration, harvester)] segments, repeating cyclically. *)

val rf_ambient : seed:int -> mean_power:float -> flicker:float -> t
(** Mean delivered power with multiplicative deterministic fluctuation in
    [1-flicker, 1+flicker], varying every few milliseconds. *)

val none : t
(** No harvesting at all. *)

val current : t -> time:float -> v:float -> float
(** Charging current (amps) at simulation time [time] with capacitor
    voltage [v]. *)

val constant_power_watts : t -> float option
(** [Some p] when the harvester is a bare {!constant_power} source —
    the dominant bench configuration — letting a hot loop specialize
    {!current} to [p /. max v 0.5] instead of re-matching the model
    every instruction.  [None] for every other shape. *)

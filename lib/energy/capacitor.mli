(** Energy-buffer capacitor.

    The capacitor is the single energy store of an intermittent system
    (Fig. 1 of the paper).  Stored energy is E = ½·C·V²; the MCU drains
    energy per cycle, the harvester sources current.  Voltage is clamped to
    [0, v_max]. *)

type t = {
  capacitance : float;
  v_max : float;
  mutable voltage : float;
  mutable drained_total : float;
  mutable sourced_total : float;
}
(** The representation is exposed for the machine's block dispatcher,
    which inlines {!drain}/{!source_current} into its per-instruction
    loop (an all-float record keeps those float writes allocation-free,
    and without cross-module inlining the calls would dominate).  Treat
    the fields as read-only everywhere else: mutate through {!drain},
    {!source_current} and {!set_voltage}. *)

val create : capacitance:float -> v_max:float -> v_init:float -> t
(** [capacitance] in farads, voltages in volts. *)

val capacitance : t -> float
val voltage : t -> float
val v_max : t -> float

val energy : t -> float
(** Stored energy in joules. *)

val energy_between : t -> v_hi:float -> v_lo:float -> float
(** Energy released when discharging from [v_hi] to [v_lo]:
    ½·C·(v_hi² − v_lo²). *)

val set_voltage : t -> float -> unit

val drain : t -> float -> float
(** [drain t joules] removes up to [joules]; returns the energy actually
    removed (less if the capacitor empties). *)

val source_current : t -> amps:float -> dt:float -> unit
(** Integrate a charging current over [dt] seconds. *)

val energy_drained_total : t -> float
(** Cumulative joules removed by {!drain} over the capacitor's lifetime
    (observability: the simulator exports this as a metric). *)

val energy_sourced_total : t -> float
(** Cumulative joules actually banked by {!source_current} (net of the
    [v_max] clamp). *)

val stored_energy_at : capacitance:float -> float -> float
(** [stored_energy_at ~capacitance v] is the stored energy at voltage
    [v], with the exact float expression of {!energy}.  Rounding is
    monotone, so comparing energies computed this way agrees with
    comparing the underlying voltages — the block dispatcher uses it to
    prove a whole batch of drains cannot cross the brownout threshold. *)

val charge_time_rc :
  capacitance:float -> v_source:float -> r_source:float -> v_from:float -> v_to:float -> float
(** Analytic RC charge time from [v_from] to [v_to] through [r_source] from
    a Thévenin source at [v_source].  Infinite if [v_to >= v_source]. *)

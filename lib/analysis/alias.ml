open Gecko_isa

let may_alias (a : Instr.mref) (b : Instr.mref) =
  a.Instr.space.Instr.space_id = b.Instr.space.Instr.space_id
  &&
  match (a.Instr.disp, b.Instr.disp) with
  | Instr.Dconst x, Instr.Dconst y -> x = y
  | Instr.Dreg _, _ | _, Instr.Dreg _ -> true

let is_dynamic (m : Instr.mref) =
  match m.Instr.disp with Instr.Dreg _ -> true | Instr.Dconst _ -> false

let space_written p (s : Instr.space) =
  let found = ref false in
  Cfg.iter_instrs p (fun i ->
      match Instr.mem_write i with
      | Some m when m.Instr.space.Instr.space_id = s.Instr.space_id ->
          found := true
      | Some _ | None -> ());
  !found

let location_read_only p (m : Instr.mref) =
  let clobbered = ref false in
  Cfg.iter_instrs p (fun i ->
      match Instr.mem_write i with
      | Some w when may_alias w m -> clobbered := true
      | Some _ | None -> ());
  not !clobbered

(* --- last write before a point ------------------------------------- *)

type write_before =
  | Write of int
  | Clobbered of int
  | No_write

(* Provably-same-location test within one straight-line body: same space
   and either equal constant displacements, or the same index register
   with no redefinition between the two positions. *)
let must_alias_in_block (body : Instr.t array) j idx (w : Instr.mref)
    (m : Instr.mref) =
  w.Instr.space.Instr.space_id = m.Instr.space.Instr.space_id
  &&
  match (w.Instr.disp, m.Instr.disp) with
  | Instr.Dconst a, Instr.Dconst b -> a = b
  | Instr.Dreg a, Instr.Dreg b ->
      Reg.equal a b
      && (let unchanged = ref true in
          for k = j + 1 to idx - 1 do
            if Reg.Set.mem a (Instr.defs body.(k)) then unchanged := false
          done;
          !unchanged)
  | Instr.Dconst _, Instr.Dreg _ | Instr.Dreg _, Instr.Dconst _ -> false

let last_write_before ?(strict = true) (body : Instr.t array) idx
    (m : Instr.mref) =
  let result = ref No_write in
  (try
     for j = idx - 1 downto 0 do
       match body.(j) with
       | Instr.Boundary _ -> raise Exit
       | i -> (
           match Instr.mem_write i with
           | Some w when must_alias_in_block body j idx w m ->
               result := Write j;
               raise Exit
           | Some w when strict && may_alias w m ->
               (* A may-aliasing (dynamically addressed) store intervenes:
                  nothing earlier can be trusted to describe the
                  location's content.  The non-strict mode reproduces the
                  seed's silently-optimistic scan, which skipped such
                  stores and kept searching — kept only as the
                  measurement baseline for the soundness overhead. *)
               result := Clobbered j;
               raise Exit
           | Some _ | None -> ())
     done
   with Exit -> ());
  !result

(* --- may-alias WAR hazard set --------------------------------------- *)

type hazard = {
  hz_func : string;
  hz_load : int * int;
  hz_store_func : string;
  hz_store : int * int;
  hz_ref : Instr.mref;
  hz_dynamic : bool;
}

(* Program-wide forward-walk context: block bodies per function, plus the
   call graph links needed to continue a walk through calls and returns. *)
type walker = {
  wfuncs : Cfg.func array;
  wgraphs : Fgraph.t array;
  wbodies : Instr.t array array array;
  wfunc_index : (string, int) Hashtbl.t;
  wret_points : (string, (int * int) list) Hashtbl.t;
}

let walker (p : Cfg.program) =
  let wfuncs = Array.of_list p.Cfg.funcs in
  let wgraphs = Array.map Fgraph.of_func wfuncs in
  let wbodies =
    Array.map
      (fun (g : Fgraph.t) ->
        Array.map
          (fun (b : Cfg.block) -> Array.of_list b.Cfg.instrs)
          g.Fgraph.blocks)
      wgraphs
  in
  let wfunc_index = Hashtbl.create 8 in
  Array.iteri
    (fun i (f : Cfg.func) -> Hashtbl.replace wfunc_index f.Cfg.fname i)
    wfuncs;
  let wret_points = Hashtbl.create 8 in
  Array.iteri
    (fun fi (g : Fgraph.t) ->
      Array.iter
        (fun (b : Cfg.block) ->
          match b.Cfg.term with
          | Instr.Call (callee, ret) ->
              let ret_blk = Fgraph.block_id g ret in
              let old =
                try Hashtbl.find wret_points callee with Not_found -> []
              in
              Hashtbl.replace wret_points callee ((fi, ret_blk) :: old)
          | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> ())
        g.Fgraph.blocks)
    wgraphs;
  { wfuncs; wgraphs; wbodies; wfunc_index; wret_points }

(* Every store that may alias [m], reachable from (fi, blk, idx) without
   crossing a boundary.  By default each path stops at its first such
   store (a cut inserted before it re-protects everything behind it) or
   at a boundary; [~all:true] keeps scanning to the boundary so callers
   enumerating EVERY hazardous store on a path (speculation guard
   collection) see the ones behind the first.  [alias] is the may-alias
   verdict for a candidate store against the load's reference — the
   syntactic check or the value-tracking domain.  When [interproc], the
   walk follows calls into the callee entry and returns into every
   caller's return block (context-insensitive, hence conservative);
   otherwise it stops at call/return terminators — the seed's
   interprocedural blind spot, kept as the measurement baseline. *)
let war_stores ?(all = false) ~interproc ~alias w fi blk idx ~f =
  let visited = Hashtbl.create 16 in
  let rec scan fi blk idx =
    let body = w.wbodies.(fi).(blk) in
    let n = Array.length body in
    let stop = ref false in
    let i = ref idx in
    while (not !stop) && !i < n do
      (match body.(!i) with
      | Instr.Boundary _ -> stop := true
      | instr -> (
          match Instr.mem_write instr with
          | Some sw when alias fi blk !i sw ->
              f fi blk !i sw;
              if not all then stop := true
          | Some _ | None -> ()));
      incr i
    done;
    if not !stop then
      let g = w.wgraphs.(fi) in
      match g.Fgraph.blocks.(blk).Cfg.term with
      | Instr.Halt -> ()
      | Instr.Jmp _ | Instr.Br _ ->
          List.iter (fun s -> enter fi s) g.Fgraph.succ.(blk)
      | Instr.Call (callee, _) ->
          if interproc then (
            match Hashtbl.find_opt w.wfunc_index callee with
            | Some cf -> enter cf 0
            | None -> ())
      | Instr.Ret ->
          if interproc then
            let fname = w.wfuncs.(fi).Cfg.fname in
            List.iter
              (fun (caller, ret_blk) -> enter caller ret_blk)
              (try Hashtbl.find w.wret_points fname with Not_found -> [])
  and enter fi blk =
    if not (Hashtbl.mem visited (fi, blk)) then begin
      Hashtbl.replace visited (fi, blk) ();
      scan fi blk 0
    end
  in
  scan fi blk idx

type domain = Syntactic | Value

let war_hazards ?(domain = Syntactic) ?(strict = true) ?(interproc = true)
    ?(all = false) (p : Cfg.program) =
  let w = walker p in
  (* Value domain: one interval+congruence fixpoint per function, shared
     by every load scanned below.  The verdict compares the load's
     displacement abstracted at the load point against each candidate
     store's displacement at the store point — both sound per-point, so
     disjoint abstractions prove the addresses never coincide. *)
  let vrs =
    match domain with
    | Syntactic -> [||]
    | Value -> Array.map Vrange.analyze w.wgraphs
  in
  let alias_for fi bi idx (m : Instr.mref) =
    match domain with
    | Syntactic -> fun _sfi _sblk _sidx sw -> may_alias sw m
    | Value ->
        let m_av = Vrange.disp_before vrs.(fi) ~blk:bi ~idx m.Instr.disp in
        fun sfi sblk sidx (sw : Instr.mref) ->
          sw.Instr.space.Instr.space_id = m.Instr.space.Instr.space_id
          && Vrange.may_equal m_av
               (Vrange.disp_before vrs.(sfi) ~blk:sblk ~idx:sidx sw.Instr.disp)
  in
  let out = ref [] in
  Array.iteri
    (fun fi (bodies : Instr.t array array) ->
      let fname = w.wfuncs.(fi).Cfg.fname in
      Array.iteri
        (fun bi body ->
          Array.iteri
            (fun idx instr ->
              match Instr.mem_read instr with
              | Some m -> (
                  match last_write_before ~strict body idx m with
                  | Write _ ->
                      () (* WARAW-exempt: re-execution rewrites first *)
                  | Clobbered _ | No_write ->
                      war_stores ~all ~interproc
                        ~alias:(alias_for fi bi idx m) w fi bi (idx + 1)
                        ~f:(fun sfi sblk sidx sw ->
                          out :=
                            {
                              hz_func = fname;
                              hz_load = (bi, idx);
                              hz_store_func = w.wfuncs.(sfi).Cfg.fname;
                              hz_store = (sblk, sidx);
                              hz_ref = m;
                              hz_dynamic = is_dynamic m || is_dynamic sw;
                            }
                            :: !out))
              | None -> ())
            body)
        bodies)
    w.wbodies;
  List.rev !out

let pp_hazard fmt h =
  let lb, li = h.hz_load in
  let sb, si = h.hz_store in
  Format.fprintf fmt
    "%s: load %a at block %d+%d anti-depends on store at %s block %d+%d \
     with no boundary between%s"
    h.hz_func Instr.pp_mref h.hz_ref lb li h.hz_store_func sb si
    (if h.hz_dynamic then " (dynamically addressed)" else "")

(* --- WARAW-protected intervals -------------------------------------- *)

(* Positions where inserting a boundary would separate a WARAW-exempt
   store from its protected load: (block, lo, hi) means any insertion at
   index k with lo <= k <= hi breaks the exemption (region formation
   then has to cut again before the follow-up store).  Splitting avoids
   these points when it can. *)
let waraw_protected_intervals (f : Cfg.func) =
  List.concat
    (List.mapi
       (fun bi (b : Cfg.block) ->
         let body = Array.of_list b.Cfg.instrs in
         let acc = ref [] in
         Array.iteri
           (fun idx instr ->
             match Instr.mem_read instr with
             | Some m -> (
                 match last_write_before body idx m with
                 | Write j -> acc := (bi, j + 1, idx) :: !acc
                 | Clobbered _ | No_write -> ())
             | None -> ())
           body;
         !acc)
       f.Cfg.blocks)

(** Interval + congruence value tracking for registers — the precision
    layer behind {!Alias}'s [Value] domain.

    An abstract value bounds a register by an optional interval and a
    congruence [v = r (mod s)] ([s = 0] meaning exactly [r]).  Transfer
    functions respect {!Gecko_isa.Instr.eval_binop}'s 32-bit wrap: any
    result that may escape the signed 32-bit range loses its bounds and
    keeps its congruence only for power-of-two strides.  The analysis is
    a per-function forward fixpoint with branch refinement against zero
    and against trailing [Slt]/[Sle]/[Seq] comparisons, widened after a
    few joins per block so loops terminate. *)

open Gecko_isa

type av

val top : av
val bot : av
val const : int -> av

val is_bot : av -> bool
val equal_av : av -> av -> bool
val join : av -> av -> av

val may_equal : av -> av -> bool
(** Can the two abstract values denote the same concrete word?  [false]
    only when the intervals are disjoint or the congruences are
    incompatible — the sound "provably distinct" verdict alias analysis
    needs. *)

val pp_av : Format.formatter -> av -> unit

type t

val analyze : Fgraph.t -> t
(** Fixpoint over one function.  Function entry and call-return blocks
    assume nothing about the register file (callers, callees and restart
    paths all land there). *)

val before : t -> blk:int -> idx:int -> Reg.t -> av
(** Abstract value of a register immediately before instruction [idx] of
    block [blk] (index [n] = before the terminator). *)

val disp_before : t -> blk:int -> idx:int -> Instr.disp -> av
(** Abstract value of a memory displacement at a program point: constant
    displacements are exact, register displacements read {!before}. *)

open Gecko_isa
module Iset = Set.Make (Int)

type def = Entry | Site of Fgraph.point

type t = {
  g : Fgraph.t;
  site_of_id : (int, Fgraph.point) Hashtbl.t;
  id_of_site : (int * int, int) Hashtbl.t;
  in_sets : Iset.t array array; (* block -> reg -> ids *)
}

let def_equal a b =
  match (a, b) with
  | Entry, Entry -> true
  | Site p, Site q -> Fgraph.point_compare p q = 0
  | Entry, Site _ | Site _, Entry -> false

(* Ids 0..15 are the entry pseudo-definitions of r0..r15. *)
let entry_id r = Reg.to_int r

let all_regs = Reg.Set.of_list Reg.all

let compute ?(call_defs = fun _ -> all_regs) (g : Fgraph.t) =
  let n = Fgraph.n_blocks g in
  let site_of_id = Hashtbl.create 64 in
  let id_of_site = Hashtbl.create 64 in
  let next = ref Reg.count in
  let new_site bi idx =
    let id = !next in
    incr next;
    Hashtbl.replace site_of_id id { Fgraph.blk = bi; idx };
    Hashtbl.replace id_of_site (bi, idx) id;
    id
  in
  (* Registers defined at each (block, idx), where idx = instruction count
     denotes the terminator (call-clobber defs). *)
  let defs_at bi (b : Cfg.block) =
    let xs =
      List.mapi (fun idx i -> (idx, Instr.defs i)) b.Cfg.instrs
    in
    let term_defs =
      match b.Cfg.term with
      | Instr.Call (callee, _) -> call_defs callee
      | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> Reg.Set.empty
    in
    ignore bi;
    if Reg.Set.is_empty term_defs then xs
    else xs @ [ (List.length b.Cfg.instrs, term_defs) ]
  in
  (* Allocate def-site ids and per-block gen (last def id per reg). *)
  let gen = Array.make_matrix n Reg.count None in
  Array.iteri
    (fun bi (b : Cfg.block) ->
      List.iter
        (fun (idx, ds) ->
          if not (Reg.Set.is_empty ds) then begin
            let id = new_site bi idx in
            Reg.Set.iter (fun r -> gen.(bi).(Reg.to_int r) <- Some id) ds
          end)
        (defs_at bi b))
    g.Fgraph.blocks;
  let in_sets = Array.init n (fun _ -> Array.make Reg.count Iset.empty) in
  let out_sets = Array.init n (fun _ -> Array.make Reg.count Iset.empty) in
  if n > 0 then
    List.iter
      (fun r -> in_sets.(0).(Reg.to_int r) <- Iset.singleton (entry_id r))
      Reg.all;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      for ri = 0 to Reg.count - 1 do
        let inn =
          List.fold_left
            (fun acc p -> Iset.union acc out_sets.(p).(ri))
            (if b = 0 then Iset.singleton ri else Iset.empty)
            g.Fgraph.pred.(b)
        in
        if not (Iset.equal inn in_sets.(b).(ri)) then begin
          in_sets.(b).(ri) <- inn;
          changed := true
        end;
        let out =
          match gen.(b).(ri) with Some id -> Iset.singleton id | None -> inn
        in
        if not (Iset.equal out out_sets.(b).(ri)) then begin
          out_sets.(b).(ri) <- out;
          changed := true
        end
      done
    done
  done;
  { g; site_of_id; id_of_site; in_sets }

let ids_at t r (p : Fgraph.point) =
  let ri = Reg.to_int r in
  let b = t.g.Fgraph.blocks.(p.Fgraph.blk) in
  (* Scan the block prefix for the latest def before the point.  A
     call-clobber def sits at the terminator position and thus never
     precedes an in-block point. *)
  let last = ref None in
  List.iteri
    (fun idx i ->
      if idx < p.Fgraph.idx && Reg.Set.mem r (Instr.defs i) then
        last := Some (Hashtbl.find t.id_of_site (p.Fgraph.blk, idx)))
    b.Cfg.instrs;
  match !last with
  | Some id -> Iset.singleton id
  | None -> t.in_sets.(p.Fgraph.blk).(ri)

let def_of_id t id =
  if id < Reg.count then Entry else Site (Hashtbl.find t.site_of_id id)

let reaching_at t r p = List.map (def_of_id t) (Iset.elements (ids_at t r p))

let unique_at t r p =
  match Iset.elements (ids_at t r p) with
  | [ id ] -> Some (def_of_id t id)
  | _ -> None

let same_unique_def t r pa pb =
  match (unique_at t r pa, unique_at t r pb) with
  | Some a, Some b -> def_equal a b
  | Some _, None | None, Some _ | None, None -> false

(** Reaching definitions at instruction granularity.

    Used by checkpoint pruning: a live-in register of a region is a
    pruning candidate only when a {e unique} definition reaches the region
    boundary, and the recovery-block slice requires that each source
    operand has the same unique reaching definition at the definition site
    and at the boundary (value preservation across the gap). *)

open Gecko_isa

type def =
  | Entry  (** The register's value at function entry. *)
  | Site of Fgraph.point

type t

val compute : ?call_defs:(string -> Reg.Set.t) -> Fgraph.t -> t
(** [call_defs callee] — registers a call to [callee] may define; a call
    terminator then acts as a definition site for each of them (at the
    terminator position, so it can never be re-executed by a slice).
    Defaults to "all registers", the sound fallback. *)

val reaching_at : t -> Reg.t -> Fgraph.point -> def list
(** All definitions of the register that may reach the program point
    (the point denotes "immediately before the instruction at idx"). *)

val unique_at : t -> Reg.t -> Fgraph.point -> def option
(** [Some d] iff exactly one definition reaches. *)

val same_unique_def : t -> Reg.t -> Fgraph.point -> Fgraph.point -> bool
(** Both points see exactly one reaching definition and it is the same
    one — the register provably holds the same value at both points.
    This is the value-preservation core of checkpoint pruning and of the
    may-alias hazard analysis (address-register stability). *)

val def_equal : def -> def -> bool

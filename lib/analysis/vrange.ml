open Gecko_isa

(* Interval + congruence abstract values for register contents, the
   precision layer under {!Alias}'s value-tracking domain.

   An abstract value bounds a register by an interval [lo, hi] (either
   side optionally unbounded) and a congruence v = r (mod s):

   - s = 0 means "exactly r" (a known constant);
   - s >= 1 means v mod s = r with 0 <= r < s (s = 1 carries no
     congruence information).

   Transfer functions mirror {!Instr.eval_binop}'s 32-bit wrap (sext32):
   any result whose mathematical interval escapes the signed 32-bit
   range may wrap, so its bounds are dropped and its congruence survives
   only when the stride divides 2^32 (wrapping subtracts a multiple of
   2^32, which preserves residues exactly for power-of-two strides). *)

let min32 = -0x80000000
let max32 = 0x7FFFFFFF

type av = Bot | V of { lo : int option; hi : int option; s : int; r : int }

let top = V { lo = None; hi = None; s = 1; r = 0 }
let bot = Bot
let const c = V { lo = Some c; hi = Some c; s = 0; r = c }

let is_bot = function Bot -> true | V _ -> false

let pmod a m = ((a mod m) + m) mod m
let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let is_pow2 s = s > 0 && s land (s - 1) = 0

(* Normalize: a width-0 interval is a constant; keep congruence and
   interval mutually consistent enough for soundness (full reduction is
   unnecessary — both components are sound independently). *)
let norm lo hi s r =
  match (lo, hi) with
  | Some a, Some b when a > b -> Bot
  | Some a, Some b when a = b -> const a
  | _ ->
      if s = 0 then const r
      else
        let s = max s 1 in
        V { lo; hi; s; r = pmod r s }

let equal_av a b =
  match (a, b) with
  | Bot, Bot -> true
  | V a, V b -> a.lo = b.lo && a.hi = b.hi && a.s = b.s && a.r = b.r
  | Bot, V _ | V _, Bot -> false

(* --- lattice ---------------------------------------------------------- *)

let join_bound f a b =
  match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

(* Congruence join: the coarsest congruence implied by both.  Constants
   join to their difference's gcd. *)
let join_cong (s1, r1) (s2, r2) =
  if s1 = 0 && s2 = 0 then
    if r1 = r2 then (0, r1)
    else
      let g = abs (r1 - r2) in
      (g, pmod r1 g)
  else
    let g = gcd (gcd s1 s2) (abs (r1 - r2)) in
    if g = 0 then (0, r1) else (g, pmod r1 g)

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | V a, V b ->
      let s, r = join_cong (a.s, a.r) (b.s, b.r) in
      norm (join_bound min a.lo b.lo) (join_bound max a.hi b.hi) s r

(* Widening: keep whichever bounds were already stable, drop the ones
   still moving.  Congruences only coarsen along divisor chains, so they
   terminate on their own and are kept exactly. *)
let widen ~prev next =
  match (prev, next) with
  | Bot, x -> x
  | x, Bot -> x
  | V p, V n ->
      let s, r = join_cong (p.s, p.r) (n.s, n.r) in
      let lo = if p.lo = n.lo then n.lo else None in
      let hi = if p.hi = n.hi then n.hi else None in
      norm lo hi s r

(* --- queries ----------------------------------------------------------- *)

let cong_compatible (s1, r1) (s2, r2) =
  if s1 = 0 && s2 = 0 then r1 = r2
  else if s1 = 0 then pmod r1 s2 = pmod r2 s2
  else if s2 = 0 then pmod r2 s1 = pmod r1 s1
  else
    let g = gcd s1 s2 in
    g <= 1 || pmod r1 g = pmod r2 g

let may_equal a b =
  match (a, b) with
  | Bot, _ | _, Bot -> false
  | V a, V b ->
      let lo_le v = match v with Some x -> x | None -> min_int in
      let hi_ge v = match v with Some x -> x | None -> max_int in
      max (lo_le a.lo) (lo_le b.lo) <= min (hi_ge a.hi) (hi_ge b.hi)
      && cong_compatible (a.s, a.r) (b.s, b.r)

let pp_av fmt = function
  | Bot -> Format.fprintf fmt "bot"
  | V { lo; hi; s; r } ->
      let b = function Some x -> string_of_int x | None -> "_" in
      if s = 0 then Format.fprintf fmt "%d" r
      else if s = 1 then Format.fprintf fmt "[%s,%s]" (b lo) (b hi)
      else Format.fprintf fmt "[%s,%s]=%d(mod %d)" (b lo) (b hi) r s

(* --- transfer --------------------------------------------------------- *)

(* Interval result with wrap awareness: if the mathematical bounds are
   known and fit signed 32-bit, they are exact; otherwise the value may
   wrap, so bounds vanish and the congruence is kept only for
   power-of-two strides. *)
let bounded lo hi s r =
  let fits = function Some x -> x >= min32 && x <= max32 | None -> false in
  if fits lo && fits hi then norm lo hi s r
  else if s = 0 then
    (* A constant result wraps deterministically: fold it exactly. *)
    const (Instr.eval_binop Instr.Add r 0)
  else if is_pow2 s then norm None None s r
  else norm None None 1 0

let opt_map2 f a b =
  match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

let av_add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
      let s, r =
        if a.s = 0 && b.s = 0 then (0, a.r + b.r)
        else if a.s = 0 then (b.s, a.r + b.r)
        else if b.s = 0 then (a.s, a.r + b.r)
        else
          let g = gcd a.s b.s in
          (g, a.r + b.r)
      in
      bounded (opt_map2 ( + ) a.lo b.lo) (opt_map2 ( + ) a.hi b.hi) s r

let av_neg = function
  | Bot -> Bot
  | V a ->
      let flip = Option.map (fun x -> -x) in
      bounded (flip a.hi) (flip a.lo) a.s (-a.r)

let av_sub a b = av_add a (av_neg b)

let av_mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
      let s, r =
        if a.s = 0 && b.s = 0 then (0, a.r * b.r)
        else if a.s = 0 then (abs (a.r * b.s), a.r * b.r)
        else if b.s = 0 then (abs (b.r * a.s), a.r * b.r)
        else (gcd (gcd (a.s * b.s) (a.r * b.s)) (b.r * a.s), a.r * b.r)
      in
      let products =
        match (a.lo, a.hi, b.lo, b.hi) with
        | Some al, Some ah, Some bl, Some bh ->
            Some [ al * bl; al * bh; ah * bl; ah * bh ]
        | _ -> None
      in
      let lo = Option.map (List.fold_left min max_int) products in
      let hi = Option.map (List.fold_left max min_int) products in
      bounded lo hi s r

let av_shl a c =
  if c < 0 || c > 31 then top else av_mul a (const (1 lsl c))

let av_and_mask a m =
  if m < 0 then top
  else
    match a with
    | Bot -> Bot
    | V a ->
        (* v land m is within [0, m]; for a mask of the low bits the
           result is v mod (m+1), which preserves power-of-two strides
           dividing m+1. *)
        let s, r =
          if a.s = 0 then (0, a.r land m)
          else if is_pow2 (m + 1) && is_pow2 a.s && (m + 1) mod a.s = 0 then
            (a.s, a.r)
          else (1, 0)
        in
        bounded (Some 0) (Some m) s r

let bool_range = V { lo = Some 0; hi = Some 1; s = 1; r = 0 }

(* --- per-function fixpoint -------------------------------------------- *)

type state = av array (* indexed by Reg.to_int *)

let state_top () = Array.make Reg.count top
let state_bot () = Array.make Reg.count bot
let copy_state (s : state) = Array.copy s

let state_equal (a : state) (b : state) =
  let ok = ref true in
  for i = 0 to Reg.count - 1 do
    if not (equal_av a.(i) b.(i)) then ok := false
  done;
  !ok

let operand_av (st : state) = function
  | Instr.Oreg r -> st.(Reg.to_int r)
  | Instr.Oimm c -> const c

let transfer (st : state) (i : Instr.t) =
  match i with
  | Instr.Li (d, c) -> st.(Reg.to_int d) <- const c
  | Instr.Mov (d, s) -> st.(Reg.to_int d) <- st.(Reg.to_int s)
  | Instr.Bin (op, d, s1, o2) ->
      let a = st.(Reg.to_int s1) in
      let b = operand_av st o2 in
      let v =
        match op with
        | Instr.Add -> av_add a b
        | Instr.Sub -> av_sub a b
        | Instr.Mul -> av_mul a b
        | Instr.Shl -> (
            match b with
            | V { s = 0; r = c; _ } -> av_shl a c
            | _ -> top)
        | Instr.And -> (
            match b with
            | V { s = 0; r = m; _ } -> av_and_mask a m
            | _ -> top)
        | Instr.Slt | Instr.Sle | Instr.Seq | Instr.Sne -> bool_range
        | Instr.Div | Instr.Rem | Instr.Or | Instr.Xor | Instr.Shr
        | Instr.Sra ->
            top
      in
      st.(Reg.to_int d) <- v
  | Instr.Ld (d, _) | Instr.In (d, _) | Instr.LdSlot (d, _, _) ->
      st.(Reg.to_int d) <- top
  | Instr.St _ | Instr.Out _ | Instr.Nop | Instr.Ckpt _ | Instr.CkptDyn _
  | Instr.Boundary _ ->
      ()

(* Refine the interval of [av] against a one-sided bound. *)
let refine_le av bound =
  match av with
  | Bot -> Bot
  | V a ->
      let hi =
        match a.hi with Some h -> Some (min h bound) | None -> Some bound
      in
      norm a.lo hi a.s a.r

let refine_ge av bound =
  match av with
  | Bot -> Bot
  | V a ->
      let lo =
        match a.lo with Some l -> Some (max l bound) | None -> Some bound
      in
      norm lo a.hi a.s a.r

(* Edge refinement for [Br (cond, t, then_, else_)]: sharpen [t] against
   zero, and — when the block's last instruction is a comparison
   defining [t] whose first operand is still live-unmodified (it IS the
   last instruction) — sharpen the compared register too. *)
let refine_edge (st : state) (body : Instr.t array) (cond : Instr.cond)
    (t : Reg.t) ~taken =
  let st = copy_state st in
  let ti = Reg.to_int t in
  (match (cond, taken) with
  | Instr.Z, true | Instr.Nz, false -> st.(ti) <- const 0
  | Instr.Z, false | Instr.Nz, true -> ()
  | Instr.Ltz, true | Instr.Gez, false -> st.(ti) <- refine_le st.(ti) (-1)
  | Instr.Ltz, false | Instr.Gez, true -> st.(ti) <- refine_ge st.(ti) 0
  | Instr.Gtz, true | Instr.Lez, false -> st.(ti) <- refine_ge st.(ti) 1
  | Instr.Gtz, false | Instr.Lez, true -> st.(ti) <- refine_le st.(ti) 0);
  let n = Array.length body in
  (if n > 0 then
     match body.(n - 1) with
     | Instr.Bin (op, d, q, Instr.Oimm c) when Reg.equal d t && not (Reg.equal q t)
       -> (
         let qi = Reg.to_int q in
         (* The comparison result is nonzero exactly on the [taken]
            branch of Nz (and the not-taken branch of Z). *)
         let truth =
           match cond with
           | Instr.Nz -> Some taken
           | Instr.Z -> Some (not taken)
           | Instr.Ltz | Instr.Gez | Instr.Gtz | Instr.Lez -> None
         in
         match (op, truth) with
         | Instr.Slt, Some true -> st.(qi) <- refine_le st.(qi) (c - 1)
         | Instr.Slt, Some false -> st.(qi) <- refine_ge st.(qi) c
         | Instr.Sle, Some true -> st.(qi) <- refine_le st.(qi) c
         | Instr.Sle, Some false -> st.(qi) <- refine_ge st.(qi) (c + 1)
         | Instr.Seq, Some true -> st.(qi) <- const c
         | Instr.Sne, Some false -> st.(qi) <- const c
         | _ -> ())
     | _ -> ());
  st

type t = {
  graph : Fgraph.t;
  bodies : Instr.t array array;
  (* states.(blk).(idx) = abstract register file BEFORE instruction
     [idx]; index [n] is the state at the terminator. *)
  states : state array array;
}

let widen_after = 3

let analyze (g : Fgraph.t) =
  let n = Fgraph.n_blocks g in
  let bodies =
    Array.map (fun (b : Cfg.block) -> Array.of_list b.Cfg.instrs) g.Fgraph.blocks
  in
  let entry_state = Array.make n (state_bot ()) in
  let joins = Array.make n 0 in
  (* Function entry: nothing is known about the register file (callers
     and restart paths both land here). *)
  entry_state.(0) <- state_top ();
  let exit_state blk =
    let st = copy_state entry_state.(blk) in
    Array.iter (fun i -> transfer st i) bodies.(blk);
    st
  in
  let worklist = Queue.create () in
  let queued = Array.make n false in
  let enqueue b =
    if not queued.(b) then begin
      queued.(b) <- true;
      Queue.add b worklist
    end
  in
  enqueue 0;
  while not (Queue.is_empty worklist) do
    let blk = Queue.take worklist in
    queued.(blk) <- false;
    let out = exit_state blk in
    let push succ incoming =
      let prev = entry_state.(succ) in
      let joined = Array.mapi (fun i av -> join prev.(i) av) incoming in
      let next =
        if joins.(succ) >= widen_after then
          Array.mapi (fun i av -> widen ~prev:prev.(i) av) joined
        else joined
      in
      if not (state_equal prev next) then begin
        entry_state.(succ) <- next;
        joins.(succ) <- joins.(succ) + 1;
        enqueue succ
      end
    in
    match g.Fgraph.blocks.(blk).Cfg.term with
    | Instr.Br (cond, t, then_, else_) ->
        push
          (Fgraph.block_id g then_)
          (refine_edge out bodies.(blk) cond t ~taken:true);
        push
          (Fgraph.block_id g else_)
          (refine_edge out bodies.(blk) cond t ~taken:false)
    | Instr.Jmp _ ->
        List.iter (fun s -> push s out) g.Fgraph.succ.(blk)
    | Instr.Call (_, _) ->
        (* The callee may clobber every register before control returns
           to the return block (a successor edge in Fgraph). *)
        List.iter (fun s -> push s (state_top ())) g.Fgraph.succ.(blk)
    | Instr.Ret | Instr.Halt -> ()
  done;
  let states =
    Array.init n (fun blk ->
        let body = bodies.(blk) in
        let m = Array.length body in
        let acc = Array.make (m + 1) [||] in
        let st = copy_state entry_state.(blk) in
        for i = 0 to m - 1 do
          acc.(i) <- copy_state st;
          transfer st body.(i)
        done;
        acc.(m) <- st;
        acc)
  in
  { graph = g; bodies; states }

let before t ~blk ~idx r =
  let per_block = t.states.(blk) in
  let idx = min idx (Array.length per_block - 1) in
  per_block.(idx).(Reg.to_int r)

let disp_before t ~blk ~idx = function
  | Instr.Dconst c -> const c
  | Instr.Dreg r -> before t ~blk ~idx r

(** Alias analysis over symbolic memory references, plus the conservative
    may-alias WAR/WARAW hazard set region formation consumes.

    Every reference names its allocation (space); two references may alias
    iff they address the same space and their displacements can coincide —
    a register displacement can coincide with anything in the space.
    Distinct spaces are distinct allocations by construction, so the
    analysis is sound and — for builder-written MCU kernels — precise
    enough to expose the WAR/WARAW structure region formation needs. *)

open Gecko_isa

val may_alias : Instr.mref -> Instr.mref -> bool

val is_dynamic : Instr.mref -> bool
(** The displacement is a register — the address is only known at run
    time, so every store through it may alias the whole space. *)

val space_written : Cfg.program -> Instr.space -> bool
(** Does any store in the program target the space? *)

val location_read_only : Cfg.program -> Instr.mref -> bool
(** No store in the program can write this location: for a constant
    displacement, no aliasing store exists; for a dynamic displacement the
    whole space must be store-free.  Recovery-block loads require this. *)

(** {1 Last write before a point} *)

type write_before =
  | Write of int
      (** Body index of a store that provably writes the referenced
          location, with no interfering store in between: re-executing
          the block prefix rewrites the location before it is re-read. *)
  | Clobbered of int
      (** Body index of an intervening store that {e may} alias the
          location but cannot be proven to: the location's content at the
          query point is unknown.  Callers must treat this exactly like
          [No_write] — never fall back to an earlier (stale) write. *)
  | No_write
      (** A region boundary (or the block start) was reached first: no
          write before the point can be relied upon across rollback. *)

val last_write_before :
  ?strict:bool -> Instr.t array -> int -> Instr.mref -> write_before
(** Scan backward from [idx] in a straight-line body for the most recent
    store to the referenced location.  [strict] (default) reports
    [Clobbered] as soon as any may-aliasing store intervenes;
    [~strict:false] reproduces the seed's optimistic scan that skipped
    such stores (unsound — kept only as the soundness-overhead
    measurement baseline, never for compilation). *)

val must_alias_in_block :
  Instr.t array -> int -> int -> Instr.mref -> Instr.mref -> bool
(** [must_alias_in_block body j idx w m]: the store reference [w] at [j]
    provably addresses the same word as [m] at [idx] (equal constant
    displacements, or the same index register unmodified in between). *)

(** {1 May-alias WAR hazards} *)

type hazard = {
  hz_func : string;  (** function containing the load *)
  hz_load : int * int;  (** (block, index) of the load *)
  hz_store_func : string;  (** function containing the store *)
  hz_store : int * int;  (** (block, index) of the store *)
  hz_ref : Instr.mref;  (** the load's reference *)
  hz_dynamic : bool;  (** either access is dynamically addressed *)
}

type domain =
  | Syntactic
      (** Space + displacement check: a register displacement may alias
          anything in its space.  Sound and cheap; conservative on
          pointer-heavy code. *)
  | Value
      (** {!Vrange} value tracking: register displacements carry
          interval + congruence abstractions, so distinct constant
          slots, disjoint index ranges and different strides provably
          stop aliasing.  Still sound — everything the domain cannot
          separate remains a hazard. *)

val war_hazards :
  ?domain:domain ->
  ?strict:bool ->
  ?interproc:bool ->
  ?all:bool ->
  Cfg.program ->
  hazard list
(** Every load → may-aliasing-store anti-dependence reachable without
    crossing a region boundary, WARAW-exempt pairs aside.  Re-executing
    such a region after the store reads the overwritten value — the
    idempotence violation region formation must cut (or double-buffer).
    [domain] (default [Syntactic]) picks the may-alias verdict;
    [interproc] (default) follows calls and returns; [strict] (default)
    uses the clobber-aware WARAW exemption.  The non-default
    strict/interproc modes reproduce the seed's unsound analysis for
    overhead measurement.  [all] (default [false]) keeps each forward
    path scanning past its first hazardous store up to the boundary —
    required when the result enumerates every store that needs a
    speculation guard, rather than the cut positions region formation
    consumes. *)

val pp_hazard : Format.formatter -> hazard -> unit

val waraw_protected_intervals : Cfg.func -> (int * int * int) list
(** [(block, lo, hi)] triples: inserting a boundary at index [k] with
    [lo <= k <= hi] would separate a WARAW-exempt store from the load it
    protects, forcing region formation to cut again.  WCET splitting
    avoids these positions when it can. *)

(** Checkpoint pruning with recovery-block construction (Sections VI-C/VI-E).

    A candidate checkpoint of register [r] at boundary [b] can be pruned
    iff a {e recovery block} — a backward program slice — can reconstruct
    [r]'s value-at-[b] at recovery time from safe sources only:

    - constants ([Li]);
    - loads from locations no store in the program can clobber;
    - registers that remain checkpointed at [b] itself (slot reads).

    Soundness conditions enforced during data-dependence backtracking:
    every slice instruction's definition must dominate [b] (control-flow
    integrity of the slice), and every operand must have the {e same}
    unique reaching definition at its use site and at [b] (its value is
    unchanged over the gap, so recomputing with values-at-[b] is exact).
    Slices are capped in size; oversized candidates are kept. *)

open Gecko_isa

type node =
  | Nslot of Reg.t
      (** Read the register's checkpoint slot at this boundary (colour
          resolved at emission). *)
  | Ninstr of Instr.t  (** Re-execute an original instruction verbatim. *)

type decision =
  | Keep
  | Keep_stable of int
      (** A kept store whose value is identical at every crossing (its
          unique definition cannot re-execute between crossings, and the
          function is never called re-entrantly).  Stores of the same
          stability class may share a slot colour: overwriting with an
          identical word is harmless. *)
  | Reuse of int
      (** Redundant-checkpoint elimination: the register's value is
          provably unchanged since a dominating boundary that still
          checkpoints it; the restore references the owner's slot and no
          store is emitted here.  This removes the per-iteration
          re-checkpointing of loop-invariant registers. *)
  | Prune of node list

type result = (int, (Reg.t * decision) list) Hashtbl.t
(** Boundary id -> per-candidate decision (in ascending register order). *)

val max_slice_nodes : int

val analyze :
  ?force_keep:(int -> Reg.Set.t) ->
  ?sound:bool ->
  ?speculative:bool ->
  Cfg.program ->
  Candidates.t ->
  result

val analyze_with :
  ?force_keep:(int -> Reg.Set.t) ->
  ?sound:bool ->
  ?speculative:bool ->
  slices:bool ->
  reuse:bool ->
  Cfg.program ->
  Candidates.t ->
  result
(** Ablation entry point: disable the recovery-block slicing and/or the
    redundant-checkpoint reuse independently ([analyze] enables both).

    [force_keep] (default: none) maps a boundary id to registers that
    must stay plain [Keep] — the colouring pass passes its repair
    boundaries here so their fresh stores are known {e during} analysis
    and can never be targeted or converted by the reuse pass.

    [sound] (default [true]) controls the may-alias WAR discipline:

    - candidates in functions with residual dynamic hazards are all kept;
    - reuse targets are restricted to direct owned stores with no other
      owned store of the register on any interprocedural path between
      owner and reuser (so the slot colour read at a crash cannot have
      been overwritten inside the crash window);
    - reuse roots are pinned so they remain owners in later rounds.

    [sound:false] reproduces the seed's optimistic analysis and exists
    only as the baseline for soundness-overhead measurement.

    [speculative] (default [false], meaningful with [sound:true])
    relaxes only the crash-window slot-overwrite restrictions of the
    sound reuse pass — the interprocedural span walk, the direct-owner
    requirement and root pinning — because the speculative pipeline
    emits a runtime guard (an undo-log append) on every owned
    checkpoint store of a reused slot: rollback replays the undo log
    before running restores, so the slot reads its as-of-commit value
    regardless of what the crash window overwrote.  The hazard
    quarantine and the slice discipline stay fully sound. *)

val keep_all : Candidates.t -> result
(** The no-pruning configuration: every candidate kept. *)

val kept_count : result -> int

val pruned_count : result -> int
(** Sliced plus reused — checkpoint stores removed. *)

val reused_count : result -> int
val sliced_count : result -> int

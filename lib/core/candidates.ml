open Gecko_isa
module A = Gecko_analysis

type site = {
  s_id : int;
  s_func : int;
  s_point : A.Fgraph.point;
  s_live : Reg.Set.t;
}

type t = {
  prog : Cfg.program;
  funcs : Cfg.func array;
  graphs : A.Fgraph.t array;
  sites : site list;
  hazards : A.Alias.hazard list;
}

let compute ?(mode = Mode.default) (p : Cfg.program) =
  let funcs = Array.of_list p.Cfg.funcs in
  let graphs = Array.map A.Fgraph.of_func funcs in
  let live = A.Ipliveness.compute p in
  let sites = ref [] in
  Array.iteri
    (fun fi g ->
      let fname = funcs.(fi).Cfg.fname in
      Array.iteri
        (fun bi (b : Cfg.block) ->
          List.iteri
            (fun idx i ->
              match i with
              | Instr.Boundary id ->
                  let point = { A.Fgraph.blk = bi; idx } in
                  sites :=
                    {
                      s_id = id;
                      s_func = fi;
                      s_point = point;
                      s_live = A.Ipliveness.live_at live ~fname point;
                    }
                    :: !sites
              | _ -> ())
            b.Cfg.instrs)
        g.A.Fgraph.blocks)
    graphs;
  (* Residual may-alias WAR hazards travel with the candidate set so
     downstream passes (pruning, verification) can refuse to optimize
     across a hazard region formation failed to cut.  Empty on any
     correctly formed program.  The verdicts follow the pipeline mode's
     alias domain: Sound/Legacy keep the syntactic check (byte-identical
     to the historical behaviour); Precise and Speculative upgrade to
     value tracking — Speculative cuts the same hazard set, it only
     relaxes checkpoint pruning downstream. *)
  let hazards = A.Alias.war_hazards ~domain:(Mode.alias_domain mode) p in
  { prog = p; funcs; graphs; sites = List.rev !sites; hazards }

let site t id =
  match List.find_opt (fun s -> s.s_id = id) t.sites with
  | Some s -> s
  | None -> raise Not_found

let total_candidates t =
  List.fold_left (fun acc s -> acc + Reg.Set.cardinal s.s_live) 0 t.sites

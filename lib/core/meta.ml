open Gecko_isa

type restore = {
  r_reg : Reg.t;
  r_color : int;
  r_owned : bool;
  r_stable : int option;
}
type recovery = { g_reg : Reg.t; g_slice : Instr.t list }

type binfo = {
  b_id : int;
  b_func : string;
  restores : restore list;
  recoveries : recovery list;
}

type stats = {
  boundaries : int;
  candidates : int;
  kept : int;
  pruned : int;
  reused : int;
  recovery_blocks : int;
  recovery_instrs : int;
  lookup_table_instrs : int;
}

type t = {
  scheme : Scheme.t;
  infos : (int, binfo) Hashtbl.t;
  stats : stats;
  guards : (string * string * int) list;
}

let zero_stats =
  {
    boundaries = 0;
    candidates = 0;
    kept = 0;
    pruned = 0;
    reused = 0;
    recovery_blocks = 0;
    recovery_instrs = 0;
    lookup_table_instrs = 0;
  }

let empty scheme =
  { scheme; infos = Hashtbl.create 16; stats = zero_stats; guards = [] }

let boundary_info t id = Hashtbl.find_opt t.infos id

let pp_stats ppf s =
  Format.fprintf ppf
    "boundaries=%d candidates=%d kept=%d pruned=%d (%.0f%%, %d reused) \
     recovery_blocks=%d recovery_instrs=%d lookup=%d"
    s.boundaries s.candidates s.kept s.pruned
    (if s.candidates = 0 then 0.
     else 100. *. float_of_int s.pruned /. float_of_int s.candidates)
    s.reused s.recovery_blocks s.recovery_instrs s.lookup_table_instrs

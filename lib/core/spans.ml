open Gecko_isa
module A = Gecko_analysis

type t = {
  cands : Candidates.t;
  bodies : Instr.t array array array;
  func_index : (string, int) Hashtbl.t;
  ret_points : (string, (int * int) list) Hashtbl.t;
}

let make (cands : Candidates.t) =
  let nf = Array.length cands.Candidates.funcs in
  let bodies =
    Array.map
      (fun (g : A.Fgraph.t) ->
        Array.map
          (fun (b : Cfg.block) -> Array.of_list b.Cfg.instrs)
          g.A.Fgraph.blocks)
      cands.Candidates.graphs
  in
  let func_index = Hashtbl.create nf in
  Array.iteri
    (fun i (f : Cfg.func) -> Hashtbl.replace func_index f.Cfg.fname i)
    cands.Candidates.funcs;
  let ret_points = Hashtbl.create 8 in
  Array.iteri
    (fun fi (g : A.Fgraph.t) ->
      Array.iter
        (fun (b : Cfg.block) ->
          match b.Cfg.term with
          | Instr.Call (callee, ret) ->
              let ret_blk = A.Fgraph.block_id g ret in
              let old =
                try Hashtbl.find ret_points callee with Not_found -> []
              in
              Hashtbl.replace ret_points callee ((fi, ret_blk) :: old)
          | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> ())
        g.A.Fgraph.blocks)
    cands.Candidates.graphs;
  { cands; bodies; func_index; ret_points }

(* From (fi, blk, idx): report every boundary encountered via [on_boundary];
   when it returns true the path stops there. *)
let walk w ~on_boundary fi blk idx =
  let visited = Hashtbl.create 16 in
  let rec scan fi blk idx =
    let body = w.bodies.(fi).(blk) in
    let n = Array.length body in
    let stop = ref false in
    let i = ref idx in
    while (not !stop) && !i < n do
      (match body.(!i) with
      | Instr.Boundary id -> if on_boundary id then stop := true
      | _ -> ());
      incr i
    done;
    if not !stop then
      let g = w.cands.Candidates.graphs.(fi) in
      match g.A.Fgraph.blocks.(blk).Cfg.term with
      | Instr.Halt -> ()
      | Instr.Jmp _ | Instr.Br _ ->
          List.iter (fun s -> enter fi s) g.A.Fgraph.succ.(blk)
      | Instr.Call (callee, _) -> (
          match Hashtbl.find_opt w.func_index callee with
          | Some cf -> enter cf 0
          | None -> ())
      | Instr.Ret ->
          let fname = w.cands.Candidates.funcs.(fi).Cfg.fname in
          List.iter
            (fun (caller, ret_blk) -> enter caller ret_blk)
            (try Hashtbl.find w.ret_points fname with Not_found -> [])
  and enter fi blk =
    if not (Hashtbl.mem visited (fi, blk)) then begin
      Hashtbl.replace visited (fi, blk) ();
      scan fi blk 0
    end
  in
  scan fi blk idx

let from_site w (s : Candidates.site) ~on_boundary =
  walk w ~on_boundary s.Candidates.s_func s.Candidates.s_point.A.Fgraph.blk
    (s.Candidates.s_point.A.Fgraph.idx + 1)

(* Visit every instruction position reachable from just after [s] before
   crossing any boundary — the site's crash window: a failure anywhere in
   it rolls back to [s], so anything executed here (in particular [Ckpt]
   slot stores of the next boundary) can have happened before the restore
   at [s] re-runs. *)
let iter_window w (s : Candidates.site) ~f =
  let visited = Hashtbl.create 16 in
  let rec scan fi blk idx =
    let body = w.bodies.(fi).(blk) in
    let n = Array.length body in
    let stop = ref false in
    let i = ref idx in
    while (not !stop) && !i < n do
      (match body.(!i) with
      | Instr.Boundary _ -> stop := true
      | instr -> f fi blk !i instr);
      incr i
    done;
    if not !stop then
      let g = w.cands.Candidates.graphs.(fi) in
      match g.A.Fgraph.blocks.(blk).Cfg.term with
      | Instr.Halt -> ()
      | Instr.Jmp _ | Instr.Br _ ->
          List.iter (fun b -> enter fi b) g.A.Fgraph.succ.(blk)
      | Instr.Call (callee, _) -> (
          match Hashtbl.find_opt w.func_index callee with
          | Some cf -> enter cf 0
          | None -> ())
      | Instr.Ret ->
          let fname = w.cands.Candidates.funcs.(fi).Cfg.fname in
          List.iter
            (fun (caller, ret_blk) -> enter caller ret_blk)
            (try Hashtbl.find w.ret_points fname with Not_found -> [])
  and enter fi blk =
    if not (Hashtbl.mem visited (fi, blk)) then begin
      Hashtbl.replace visited (fi, blk) ();
      scan fi blk 0
    end
  in
  scan s.Candidates.s_func s.Candidates.s_point.A.Fgraph.blk
    (s.Candidates.s_point.A.Fgraph.idx + 1)

let edges w ~stops =
  let acc = Hashtbl.create 64 in
  List.iter
    (fun (s : Candidates.site) ->
      if stops s.Candidates.s_id then
        from_site w s ~on_boundary:(fun id ->
            if stops id then begin
              Hashtbl.replace acc (s.Candidates.s_id, id) ();
              true
            end
            else false))
    w.cands.Candidates.sites;
  Hashtbl.fold (fun e () l -> e :: l) acc []

let reachable_sites w src =
  let s = Candidates.site w.cands src in
  let acc = Hashtbl.create 32 in
  from_site w s ~on_boundary:(fun id ->
      Hashtbl.replace acc id ();
      false);
  Hashtbl.fold (fun id () l -> id :: l) acc []

let reachable_until w ~src ~stop =
  let s = Candidates.site w.cands src in
  let acc = Hashtbl.create 32 in
  from_site w s ~on_boundary:(fun id ->
      if id = stop then true
      else begin
        Hashtbl.replace acc id ();
        false
      end);
  Hashtbl.fold (fun id () l -> id :: l) acc []

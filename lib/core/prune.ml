open Gecko_isa
module A = Gecko_analysis

type node = Nslot of Reg.t | Ninstr of Instr.t

type decision = Keep | Keep_stable of int | Reuse of int | Prune of node list

type result = (int, (Reg.t * decision) list) Hashtbl.t

let max_slice_nodes = 16
let max_depth = 24

exception Unsliceable

type ctx = {
  prog : Cfg.program;
  g : A.Fgraph.t;
  dom : A.Dom.t;
  reaching : A.Reaching.t;
  defsites : A.Fgraph.point list array;  (* per register, incl. call clobbers *)
  pb : A.Fgraph.point;  (* the boundary *)
  live : Reg.Set.t;
  pruned : (int, unit) Hashtbl.t;  (* regs already pruned at this boundary *)
  pinned : (int, unit) Hashtbl.t;
      (* regs referenced as slot leaves by earlier slices: their
         checkpoints must stay *)
  target : Reg.t;  (* the register being sliced *)
  mutable emitted : node list;  (* reversed: parents before children *)
  mutable count : int;
  seen_sites : (int * int, bool) Hashtbl.t;  (* false = in progress *)
  seen_slots : (int, unit) Hashtbl.t;
}

let emit ctx node =
  ctx.count <- ctx.count + 1;
  if ctx.count > max_slice_nodes then raise Unsliceable;
  ctx.emitted <- node :: ctx.emitted

(* Value preservation of [q] between [p] and the boundary: either the
   same unique definition reaches both points, or no definition of [q]
   can execute on a path from [p] to the boundary without re-crossing
   [p] (re-crossing re-executes the instruction at [p], refreshing the
   dependence with current values, so the recomputation still agrees). *)
let no_def_between ctx q p =
  let pb = ctx.pb in
  let pblk = p.A.Fgraph.blk in
  let reach_avoiding srcs dst =
    let seen = Hashtbl.create 16 in
    let found = ref false in
    let rec go b =
      if b <> pblk && not (Hashtbl.mem seen b) then begin
        Hashtbl.replace seen b ();
        if b = dst then found := true
        else List.iter go ctx.g.A.Fgraph.succ.(b)
      end
    in
    List.iter (fun b -> go b) srcs;
    !found
  in
  List.for_all
    (fun (dq : A.Fgraph.point) ->
      if dq.A.Fgraph.blk = pblk then
        (* Positions before [p] require re-entering the block, which
           crosses [p] first.  Positions at/after [p] run immediately —
           but when the boundary sits later in the same block, only defs
           strictly between the two points interfere (later ones must
           wrap around and re-cross [p]). *)
        dq.A.Fgraph.idx < p.A.Fgraph.idx
        || (pb.A.Fgraph.blk = pblk
           && pb.A.Fgraph.idx > p.A.Fgraph.idx
           && dq.A.Fgraph.idx >= pb.A.Fgraph.idx)
      else
        let step1 =
          reach_avoiding ctx.g.A.Fgraph.succ.(pblk) dq.A.Fgraph.blk
        in
        let step2 =
          (dq.A.Fgraph.blk = pb.A.Fgraph.blk
          && dq.A.Fgraph.idx < pb.A.Fgraph.idx)
          || reach_avoiding
               ctx.g.A.Fgraph.succ.(dq.A.Fgraph.blk)
               pb.A.Fgraph.blk
        in
        not (step1 && step2))
    ctx.defsites.(Reg.to_int q)

let value_preserved ctx q p =
  A.Reaching.same_unique_def ctx.reaching q p ctx.pb
  || no_def_between ctx q p

let rec slice_def ctx depth q (d : A.Reaching.def) =
  if depth > max_depth then raise Unsliceable;
  match d with
  | A.Reaching.Entry -> raise Unsliceable
  | A.Reaching.Site dp ->
      if not (A.Dom.dominates_point ctx.dom dp ctx.pb) then raise Unsliceable;
      let key = (dp.A.Fgraph.blk, dp.A.Fgraph.idx) in
      (match Hashtbl.find_opt ctx.seen_sites key with
      | Some true -> () (* already emitted *)
      | Some false ->
          (* Circular dependence: the site is still being expanded, so
             its value cannot be recomputed bottom-up. *)
          raise Unsliceable
      | None -> ());
      if Hashtbl.mem ctx.seen_sites key then ()
      else begin
        Hashtbl.replace ctx.seen_sites key false;
        let instr =
          match A.Fgraph.instr_at ctx.g dp with
          | Some i -> i
          | None -> raise Unsliceable
        in
        (match instr with
        | Instr.Li _ -> ()
        | Instr.Mov (_, s) -> need ctx (depth + 1) s dp
        | Instr.Bin (_, _, a, Instr.Oreg b) ->
            need ctx (depth + 1) a dp;
            need ctx (depth + 1) b dp
        | Instr.Bin (_, _, a, Instr.Oimm _) -> need ctx (depth + 1) a dp
        | Instr.Ld (_, m) ->
            if not (A.Alias.location_read_only ctx.prog m) then
              raise Unsliceable;
            (match m.Instr.disp with
            | Instr.Dreg i -> need ctx (depth + 1) i dp
            | Instr.Dconst _ -> ())
        | Instr.In _ | Instr.Out _ | Instr.St _ | Instr.Nop | Instr.Ckpt _
        | Instr.CkptDyn _ | Instr.LdSlot _ | Instr.Boundary _ ->
            raise Unsliceable);
        ignore q;
        Hashtbl.replace ctx.seen_sites key true;
        emit ctx (Ninstr instr)
      end

(* Obtain [q]'s value-at-[p] (proven equal to its value-at-boundary). *)
and need ctx depth q p =
  (* Even a slot read requires value preservation between [p] and the
     boundary: the slot holds the value-at-boundary. *)
  if not (value_preserved ctx q p) then raise Unsliceable;
  let slot_eligible =
    Reg.Set.mem q ctx.live
    && (not (Hashtbl.mem ctx.pruned (Reg.to_int q)))
    && not (Reg.equal q ctx.target)
  in
  if slot_eligible then begin
    if not (Hashtbl.mem ctx.seen_slots (Reg.to_int q)) then begin
      Hashtbl.replace ctx.seen_slots (Reg.to_int q) ();
      emit ctx (Nslot q)
    end
  end
  else
    match A.Reaching.unique_at ctx.reaching q ctx.pb with
    | Some d -> slice_def ctx depth q d
    | None -> raise Unsliceable

let try_slice prog g dom reaching defsites pb live pruned pinned r =
  let ctx =
    {
      prog;
      g;
      dom;
      reaching;
      defsites;
      pb;
      live;
      pruned;
      pinned;
      target = r;
      emitted = [];
      count = 0;
      seen_sites = Hashtbl.create 8;
      seen_slots = Hashtbl.create 8;
    }
  in
  match A.Reaching.unique_at reaching r pb with
  | None | Some A.Reaching.Entry -> None
  | Some (A.Reaching.Site _ as d) -> (
      try
        slice_def ctx 0 r d;
        (* Commit the slot references: those registers must stay
           checkpointed at this boundary. *)
        Hashtbl.iter (fun q () -> Hashtbl.replace pinned q ()) ctx.seen_slots;
        Some (List.rev ctx.emitted)
      with Unsliceable -> None)

let analyze_with ?(force_keep = fun _ -> Reg.Set.empty) ?(sound = true)
    ?(speculative = false) ~slices ~reuse (p : Cfg.program)
    (cands : Candidates.t) =
  (* [speculative] relaxes exactly the crash-window slot-overwrite
     restrictions of the sound reuse pass (the span walk, the
     direct-owner requirement and root pinning): with every owned store
     of a reused slot carrying a runtime speculation guard, a rollback
     replays the undo log first and the slot reads its as-of-commit
     value no matter what the window overwrote.  Everything else — the
     hazard quarantine, the slice discipline, repairs — stays sound. *)
  let windowed = sound && not speculative in
  let result : result = Hashtbl.create 32 in
  (* Never prune across an unresolved dynamic hazard: if region formation
     left a may-alias WAR in some function (possible only when a caller
     bypasses {!Regions.form}), every candidate in the functions involved
     is kept verbatim — re-execution there is not idempotent, so neither
     slices (whose loads could observe clobbered locations) nor reuse can
     be justified. *)
  let hazardous = Hashtbl.create 4 in
  if sound then
    List.iter
      (fun (h : A.Alias.hazard) ->
        Hashtbl.replace hazardous h.A.Alias.hz_func ();
        Hashtbl.replace hazardous h.A.Alias.hz_store_func ())
      cands.Candidates.hazards;
  let site_hazardous (s : Candidates.site) =
    Hashtbl.mem hazardous cands.Candidates.funcs.(s.Candidates.s_func).Cfg.fname
  in
  (* Per-function analyses, shared across the function's boundaries.  Call
     sites act as definition points for the callee's clobber set, so no
     value is assumed preserved across a call that may overwrite it. *)
  let clobbers = A.Clobbers.compute p in
  let call_defs = A.Clobbers.of_function clobbers in
  let defsites_of (g : A.Fgraph.t) =
    let ds = Array.make Reg.count [] in
    Array.iteri
      (fun bi (b : Cfg.block) ->
        List.iteri
          (fun idx i ->
            Reg.Set.iter
              (fun r ->
                ds.(Reg.to_int r) <-
                  { A.Fgraph.blk = bi; idx } :: ds.(Reg.to_int r))
              (Instr.defs i))
          b.Cfg.instrs;
        match b.Cfg.term with
        | Instr.Call (callee, _) ->
            let pos = { A.Fgraph.blk = bi; idx = List.length b.Cfg.instrs } in
            Reg.Set.iter
              (fun r -> ds.(Reg.to_int r) <- pos :: ds.(Reg.to_int r))
              (call_defs callee)
        | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> ())
      g.A.Fgraph.blocks;
    ds
  in
  let per_func =
    Array.map
      (fun g ->
        (g, A.Dom.compute g, A.Reaching.compute ~call_defs g, defsites_of g))
      cands.Candidates.graphs
  in
  (* Phase 1: slice-based pruning. *)
  List.iter
    (fun (s : Candidates.site) ->
      let g, dom, reaching, defsites = per_func.(s.Candidates.s_func) in
      let pruned = Hashtbl.create 8 in
      let pinned = Hashtbl.create 8 in
      let forced = force_keep s.Candidates.s_id in
      let decisions =
        List.map
          (fun r ->
            if
              (not slices) || site_hazardous s || Reg.Set.mem r forced
              || Hashtbl.mem pinned (Reg.to_int r)
            then (r, Keep)
            else
              match
                try_slice p g dom reaching defsites s.Candidates.s_point
                  s.Candidates.s_live pruned pinned r
              with
              | Some slice ->
                  Hashtbl.replace pruned (Reg.to_int r) ();
                  (r, Prune slice)
              | None -> (r, Keep))
          (Reg.Set.elements s.Candidates.s_live)
      in
      Hashtbl.replace result s.Candidates.s_id decisions)
    cands.Candidates.sites;
  (* Phase 2: redundant-checkpoint elimination.  A kept checkpoint of
     [r] at site [s] is redundant when a dominating site [o] already has
     a restore of [r] (owned store, or itself a reuse of a further
     dominating store) and no definition of [r] — including call-clobber
     pseudo-definitions — can execute on a path from [o] to [s] that does
     not re-cross [o].  Then [r]'s value at [s] equals the value the
     root store saved on this very pass, so the restore can reference the
     root's slot.  (Any other store of [r] in between necessarily writes
     that same value, so even a shared colour is harmless; no further
     containment condition is needed.)

     A second pass marks the remaining owned stores whose value is
     identical at every crossing ([Keep_stable]): no definition of the
     register is reachable from the store and the function is never
     called.  Same-class stable stores may share a slot colour. *)
  let decision_for bid r =
    match Hashtbl.find_opt result bid with
    | None -> None
    | Some ds ->
        List.find_map
          (fun (x, d) -> if Reg.equal x r then Some d else None)
          ds
  in
  let set_decision bid r d =
    let ds = Hashtbl.find result bid in
    Hashtbl.replace result bid
      (List.map (fun (x, old) -> if Reg.equal x r then (x, d) else (x, old)) ds)
  in
  let callable = Hashtbl.create 8 in
  List.iter
    (fun (f : Cfg.func) ->
      List.iter
        (fun (b : Cfg.block) ->
          match b.Cfg.term with
          | Instr.Call (callee, _) -> Hashtbl.replace callable callee ()
          | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> ())
        f.Cfg.blocks)
    p.Cfg.funcs;
  let block_reach =
    Array.map (fun (g, _, _, _) -> A.Blockreach.compute g) per_func
  in
  (* No definition of [r] on any o->s path avoiding o (block-granular:
     entering o's block crosses o, since blocks are straight-line). *)
  let no_defs_between fi (defsites : A.Fgraph.point list array) r
      (op : A.Fgraph.point) (sp : A.Fgraph.point) =
    let g = cands.Candidates.graphs.(fi) in
    let ob = op.A.Fgraph.blk in
    let reach_avoiding srcs dst =
      let seen = Hashtbl.create 16 in
      let found = ref false in
      let rec go b =
        if b <> ob && not (Hashtbl.mem seen b) then begin
          Hashtbl.replace seen b ();
          if b = dst then found := true
          else List.iter go g.A.Fgraph.succ.(b)
        end
      in
      List.iter go srcs;
      !found
    in
    List.for_all
      (fun (dq : A.Fgraph.point) ->
        if dq.A.Fgraph.blk = ob then
          (* Positions before o require re-entering the block (crossing
             o); positions after o interfere only if s is not later in
             the same block (otherwise they must wrap and re-cross o). *)
          dq.A.Fgraph.idx < op.A.Fgraph.idx
          || (sp.A.Fgraph.blk = ob
             && sp.A.Fgraph.idx > op.A.Fgraph.idx
             && dq.A.Fgraph.idx >= sp.A.Fgraph.idx)
        else
          let step1 = reach_avoiding g.A.Fgraph.succ.(ob) dq.A.Fgraph.blk in
          let step2 =
            (dq.A.Fgraph.blk = sp.A.Fgraph.blk
            && dq.A.Fgraph.idx < sp.A.Fgraph.idx)
            || reach_avoiding
                 g.A.Fgraph.succ.(dq.A.Fgraph.blk)
                 sp.A.Fgraph.blk
          in
          not (step1 && step2))
      defsites.(Reg.to_int r)
  in
  (* Per-function dominance-sorted sites (dominators first). *)
  let sites_of_func = Array.make (Array.length cands.Candidates.funcs) [] in
  List.iter
    (fun (s : Candidates.site) ->
      sites_of_func.(s.Candidates.s_func) <-
        s :: sites_of_func.(s.Candidates.s_func))
    cands.Candidates.sites;
  (* Sound reuse needs interprocedural window reasoning: a reusing
     restore at [s] reads the owner's slot colour, so no other owned
     store of the register may execute between the owner [o] and [s] on
     any runtime path — otherwise the slot a crash-time restore reads
     can hold a stale (or, with a repair boundary's forced store inside
     [s]'s own crash window, a future) crossing's value.
     [Spans.from_site] walks exactly those paths.  Reuse roots are
     pinned: once some site references [o]'s slot for [r], [o] must
     remain an owned store of [r] in every later round. *)
  let spans = lazy (Spans.make cands) in
  let is_owner bid r =
    match decision_for bid r with
    | Some Keep | Some (Keep_stable _) -> true
    | Some (Reuse _) | Some (Prune _) | None -> false
  in
  let no_owned_store_between (o : Candidates.site) (s : Candidates.site) r =
    let ok = ref true in
    Spans.from_site (Lazy.force spans) o ~on_boundary:(fun id ->
        if id = s.Candidates.s_id then true
        else if is_owner id r then begin
          ok := false;
          true
        end
        else false);
    !ok
  in
  let root_pinned : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref reuse in
  let rounds = ref 0 in
  while !changed && !rounds < 8 do
    incr rounds;
    changed := false;
    Array.iteri
      (fun fi (_, dom, _, defsites) ->
        let sites = sites_of_func.(fi) in
        List.iter
          (fun (s : Candidates.site) ->
            List.iter
              (fun r ->
                let blocked =
                  (* A repair (force_keep) is absolute in both modes:
                     colouring requested this store, so reuse must never
                     take it back. *)
                  Reg.Set.mem r (force_keep s.Candidates.s_id)
                  || (sound && site_hazardous s)
                  || windowed
                     && Hashtbl.mem root_pinned
                          (s.Candidates.s_id, Reg.to_int r)
                in
                match decision_for s.Candidates.s_id r with
                | Some Keep when not blocked ->
                    (* Nearest dominating site with r live and a usable
                       restore; sound mode only considers direct owners
                       (Keep / Keep_stable), so the referenced slot is
                       written by the target itself. *)
                    let doms =
                      List.filter
                        (fun (o : Candidates.site) ->
                          o.Candidates.s_id <> s.Candidates.s_id
                          && Reg.Set.mem r o.Candidates.s_live
                          && A.Dom.dominates_point dom o.Candidates.s_point
                               s.Candidates.s_point
                          && ((not windowed) || is_owner o.Candidates.s_id r))
                        sites
                    in
                    (* Nearest = dominated by all the others. *)
                    let nearest =
                      List.fold_left
                        (fun best (o : Candidates.site) ->
                          match best with
                          | None -> Some o
                          | Some b ->
                              if
                                A.Dom.dominates_point dom
                                  b.Candidates.s_point o.Candidates.s_point
                              then Some o
                              else best)
                        None doms
                    in
                    (match nearest with
                    | None -> ()
                    | Some o -> (
                        let target =
                          match decision_for o.Candidates.s_id r with
                          | Some Keep | Some (Keep_stable _) ->
                              Some o.Candidates.s_id
                          | Some (Reuse t) -> if windowed then None else Some t
                          | Some (Prune _) | None -> None
                        in
                        match target with
                        | Some t
                          when no_defs_between fi defsites r
                                 o.Candidates.s_point s.Candidates.s_point
                               && ((not windowed)
                                  || no_owned_store_between o s r) ->
                            set_decision s.Candidates.s_id r (Reuse t);
                            if windowed then
                              Hashtbl.replace root_pinned (t, Reg.to_int r)
                                ();
                            changed := true
                        | Some _ | None -> ()))
                | Some Keep | Some (Keep_stable _) | Some (Reuse _)
                | Some (Prune _) | None ->
                    ())
              (Reg.Set.elements s.Candidates.s_live))
          sites)
      per_func
  done;
  (* Normalize reuse chains: owners decided in a later round may have
     become reusers themselves; restores must reference the root owned
     store. *)
  List.iter
    (fun (s : Candidates.site) ->
      List.iter
        (fun r ->
          match decision_for s.Candidates.s_id r with
          | Some (Reuse t) ->
              let rec root t seen =
                if List.mem t seen then t
                else
                  match decision_for t r with
                  | Some (Reuse t') -> root t' (t :: seen)
                  | Some Keep | Some (Keep_stable _) | Some (Prune _) | None
                    ->
                      t
              in
              let t' = root t [] in
              if t' <> t then set_decision s.Candidates.s_id r (Reuse t')
          | Some Keep | Some (Keep_stable _) | Some (Prune _) | None -> ())
        (Reg.Set.elements s.Candidates.s_live))
    cands.Candidates.sites;
  (* Stability pass. *)
  Array.iteri
    (fun fi (_, _, _, defsites) ->
      let reach = block_reach.(fi) in
      let fname = cands.Candidates.funcs.(fi).Cfg.fname in
      if not (Hashtbl.mem callable fname) then
        List.iter
          (fun (s : Candidates.site) ->
            List.iter
              (fun r ->
                match decision_for s.Candidates.s_id r with
                (* Forced keeps (repair boundaries) stay plain [Keep]:
                   their whole point is a fresh store whose colour
                   alternation the colouring pass relies on. *)
                | Some Keep when not (Reg.Set.mem r (force_keep s.Candidates.s_id)) ->
                    let sp = s.Candidates.s_point in
                    let stable =
                      List.for_all
                        (fun (dq : A.Fgraph.point) ->
                          let self_cycle =
                            A.Blockreach.reaches reach sp.A.Fgraph.blk
                              sp.A.Fgraph.blk
                          in
                          if dq.A.Fgraph.blk = sp.A.Fgraph.blk then
                            not (dq.A.Fgraph.idx > sp.A.Fgraph.idx || self_cycle)
                          else
                            not
                              (A.Blockreach.reaches reach sp.A.Fgraph.blk
                                 dq.A.Fgraph.blk))
                        defsites.(Reg.to_int r)
                    in
                    if stable then
                      set_decision s.Candidates.s_id r
                        (Keep_stable
                           ((Reg.to_int r * 1_000_000) + s.Candidates.s_id))
                | Some Keep | Some (Keep_stable _) | Some (Reuse _)
                | Some (Prune _) | None ->
                    ())
              (Reg.Set.elements s.Candidates.s_live))
          sites_of_func.(fi))
    per_func;
  result

let analyze = analyze_with ~slices:true ~reuse:true

let keep_all (cands : Candidates.t) =
  let result : result = Hashtbl.create 32 in
  List.iter
    (fun (s : Candidates.site) ->
      Hashtbl.replace result s.Candidates.s_id
        (List.map (fun r -> (r, Keep)) (Reg.Set.elements s.Candidates.s_live)))
    cands.Candidates.sites;
  result

let count_matching f (result : result) =
  Hashtbl.fold
    (fun _ ds acc ->
      acc + List.length (List.filter (fun (_, d) -> f d) ds))
    result 0

let kept_count =
  count_matching (function
    | Keep | Keep_stable _ -> true
    | Reuse _ | Prune _ -> false)

let reused_count =
  count_matching (function
    | Reuse _ -> true
    | Keep | Keep_stable _ | Prune _ -> false)

let sliced_count =
  count_matching (function
    | Prune _ -> true
    | Keep | Keep_stable _ | Reuse _ -> false)

let pruned_count r = reused_count r + sliced_count r

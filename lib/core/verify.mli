(** Final verification passes run after compilation (and used heavily by
    the property-based tests).

    These are independent soundness gates: they re-derive their property
    from the emitted program (and its metadata) rather than trusting the
    passes that were supposed to establish it. *)

open Gecko_isa

val idempotence : ?mode:Mode.t -> Cfg.program -> (unit, string list) result
(** No may-alias memory anti-dependence survives without a boundary
    between the load and the store (WARAW-exempt pairs aside), in every
    mode — regions are idempotent by construction and re-execution after
    a rollback is deterministic without memory replay.  [mode] (default
    [Sound]) picks the hazard verdicts: [Legacy] checks only the seed's
    optimistic criterion (soundness-overhead measurement baseline);
    [Precise] and [Speculative] use the value-tracking domain. *)

val coloring : Cfg.program -> Meta.t -> (unit, string list) result
(** No two span-adjacent boundaries checkpoint the same register into the
    same slot colour. *)

val slot_clobbers :
  ?mode:Mode.t -> Cfg.program -> Meta.t -> (string * string * int) list
(** The positions — [(fname, block label, instr idx)], sorted — of every
    checkpoint store that overwrites, inside some boundary's crash
    window, a slot that boundary's committed recovery state reads,
    without a value-equality or stability exemption.  On a sound or
    precise image this is empty (that is what [slots] certifies); on a
    speculative image it is precisely the set of stores that must carry
    a runtime undo-log guard, which is how the pipeline computes
    {!Meta.t.guards}. *)

val slots : ?mode:Mode.t -> Cfg.program -> Meta.t -> (unit, string list) result
(** Window-clobber gate: no slot read by a boundary's committed recovery
    state (restores — owned or reused — and recovery-block slot loads) is
    overwritten by a checkpoint store inside that boundary's crash
    window, unless the overwrite provably stores the identical word or
    carries a speculation guard (a guarded store appends the slot's old
    word to the undo log, and rollback replays the log before running
    restores, so the read survives by construction).  Derived directly
    from the emitted instruction stream; in particular it rejects a
    reused restore whose owner's slot a later (e.g. repair) boundary
    clobbers. *)

val io_commit : Cfg.program -> (unit, string list) result
(** Atomic io_log commit: every [Out] is followed in its block (modulo
    checkpoint stores) by the boundary that atomically commits its
    staged io_log record. *)

val speculation :
  capacity:int -> Cfg.program -> Meta.t -> (unit, string list) result
(** Undo-log capacity gate ([Speculative] images only): no crash window
    contains more guarded stores (plain or checkpoint) than the
    runtime's reserved undo-log [capacity], so the per-store append can
    never overflow.  Trivially [Ok] when the image carries no guards. *)

val wcet : budget:int -> Cfg.program -> (unit, string list) result
(** Every region span (with its emitted checkpoint stores) fits the
    charge-cycle budget. *)

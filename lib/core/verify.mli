(** Final verification passes run after compilation (and used heavily by
    the property-based tests).

    These are independent soundness gates: they re-derive their property
    from the emitted program (and its metadata) rather than trusting the
    passes that were supposed to establish it. *)

open Gecko_isa

val idempotence : ?legacy:bool -> Cfg.program -> (unit, string list) result
(** No may-alias memory anti-dependence survives without a boundary
    between the load and the store (WARAW-exempt pairs aside).  The
    default is the sound interprocedural may-alias analysis;
    [legacy:true] checks only the seed's optimistic criterion and exists
    for soundness-overhead measurement. *)

val coloring : Cfg.program -> Meta.t -> (unit, string list) result
(** No two span-adjacent boundaries checkpoint the same register into the
    same slot colour. *)

val slots : Cfg.program -> Meta.t -> (unit, string list) result
(** Window-clobber gate: no slot read by a boundary's committed recovery
    state (restores — owned or reused — and recovery-block slot loads) is
    overwritten by a checkpoint store inside that boundary's crash
    window, unless the overwrite provably stores the identical word.
    Derived directly from the emitted instruction stream; in particular
    it rejects a reused restore whose owner's slot a later (e.g. repair)
    boundary clobbers. *)

val io_commit : Cfg.program -> (unit, string list) result
(** Atomic io_log commit: every [Out] is followed in its block (modulo
    checkpoint stores) by the boundary that atomically commits its
    staged io_log record. *)

val wcet : budget:int -> Cfg.program -> (unit, string list) result
(** Every region span (with its emitted checkpoint stores) fits the
    charge-cycle budget. *)

(** Checkpoint-slot colouring — static double buffering (Section VI-D).

    If checkpoint store [b2] of register [r] can be the {e next} store of
    [r] after store [b1] at runtime (some execution path connects them
    without an intervening store of [r]), the two must target different
    slot indices: a power failure in the middle of [b2]'s checkpoint
    sequence must leave the slots the committed recovery state references
    intact.

    The pass 2-colours, per register, the graph of emitted checkpoint
    stores under that consecutive-store adjacency (including
    cross-function edges via calls and returns).  An odd cycle (the
    paper's "join point" conflict) is repaired by inserting a fresh
    boundary immediately after a cycle node that is the source of a
    private cycle edge; the new boundary checkpoints all its live-ins
    unpruned — the paper's "additional checkpoint". *)

open Gecko_isa

type t

val color : t -> int -> Reg.t -> int
(** Colour of the checkpoint store of a register at a boundary; raises
    [Not_found] if that pair is not an emitted store. *)

val adjacency : Candidates.t -> (int * int) list
(** Immediate span-successor pairs of boundary ids (every boundary stops
    the walk). *)

val adjacency_for : Candidates.t -> stops:(int -> bool) -> (int * int) list
(** Directed consecutive pairs where only boundaries satisfying [stops]
    terminate the walk (and only they are walk sources). *)

val assign :
  ?mode:Mode.t ->
  next_id:int ref ->
  analyze:
    (force_keep:(int -> Reg.Set.t) ->
    Cfg.program ->
    Candidates.t ->
    Prune.result) ->
  Cfg.program ->
  Candidates.t * Prune.result * t
(** May insert repair boundaries (mutating the program).  [mode]
    (default [Sound]) is threaded into the per-round
    {!Candidates.compute} so hazard verdicts stay consistent with the
    pipeline's alias domain.  [analyze] is
    re-run after every insertion, receiving the repair boundaries'
    forced-keep sets, so repair stores are first-class during pruning —
    in particular the reuse pass sees them as unprunable owned stores
    rather than discovering them after the fact.  Returns the final
    candidates, decisions and colours.  Raises [Failure] if colouring
    does not converge. *)

(**/**)

(* Debug hooks for convergence tracing (tests only). *)
val try_color_debug : Candidates.t -> Prune.result -> int list option
val insert_repair_debug : next_id:int ref -> Candidates.t -> int -> unit
val pick_repair_node : (int * int) list -> int list -> int

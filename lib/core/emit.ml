open Gecko_isa

let insert_before_boundaries (p : Cfg.program) ckpts_for =
  List.iter
    (fun (f : Cfg.func) ->
      List.iter
        (fun (b : Cfg.block) ->
          b.Cfg.instrs <-
            List.concat_map
              (fun i ->
                match i with
                | Instr.Boundary id -> ckpts_for id @ [ i ]
                | _ -> [ i ])
              b.Cfg.instrs)
        f.Cfg.blocks)
    p.Cfg.funcs

let gecko scheme (p : Cfg.program) (cands : Candidates.t)
    (decisions : Prune.result) (colors : Coloring.t) =
  let infos = Hashtbl.create 32 in
  let candidates = ref 0
  and kept = ref 0
  and reused = ref 0
  and sliced = ref 0
  and recovery_instrs = ref 0 in
  (* The colour a restore of (bid, r) reads: an owned store's own colour,
     or the owning boundary's colour for a reused slot. *)
  let restore_color bid r =
    match Hashtbl.find_opt decisions bid with
    | None -> Coloring.color colors bid r
    | Some ds -> (
        match List.find_opt (fun (x, _) -> Reg.equal x r) ds with
        | Some (_, Prune.Reuse owner) -> Coloring.color colors owner r
        | Some (_, (Prune.Keep | Prune.Keep_stable _ | Prune.Prune _))
        | None ->
            Coloring.color colors bid r)
  in
  let materialize_slice bid nodes =
    List.map
      (fun n ->
        match n with
        | Prune.Nslot q -> Instr.LdSlot (q, Reg.to_int q, restore_color bid q)
        | Prune.Ninstr i -> i)
      nodes
  in
  List.iter
    (fun (s : Candidates.site) ->
      let bid = s.Candidates.s_id in
      let ds = try Hashtbl.find decisions bid with Not_found -> [] in
      let restores, recoveries =
        List.fold_left
          (fun (rs, gs) (r, d) ->
            incr candidates;
            match d with
            | Prune.Keep | Prune.Keep_stable _ ->
                incr kept;
                ( {
                    Meta.r_reg = r;
                    r_color = Coloring.color colors bid r;
                    r_owned = true;
                    r_stable =
                      (match d with
                      | Prune.Keep_stable c -> Some c
                      | Prune.Keep | Prune.Reuse _ | Prune.Prune _ -> None);
                  }
                  :: rs,
                  gs )
            | Prune.Reuse owner ->
                incr reused;
                ( {
                    Meta.r_reg = r;
                    r_color = Coloring.color colors owner r;
                    r_owned = false;
                    r_stable = None;
                  }
                  :: rs,
                  gs )
            | Prune.Prune nodes ->
                incr sliced;
                let slice = materialize_slice bid nodes in
                recovery_instrs := !recovery_instrs + List.length slice;
                (rs, { Meta.g_reg = r; g_slice = slice } :: gs))
          ([], []) ds
      in
      Hashtbl.replace infos bid
        {
          Meta.b_id = bid;
          b_func = cands.Candidates.funcs.(s.Candidates.s_func).Cfg.fname;
          restores = List.rev restores;
          recoveries = List.rev recoveries;
        })
    cands.Candidates.sites;
  (* Insert the checkpoint stores for owned restores only. *)
  let ckpts_for bid =
    match Hashtbl.find_opt infos bid with
    | None -> []
    | Some info ->
        List.filter_map
          (fun (r : Meta.restore) ->
            if r.Meta.r_owned then
              Some (Instr.Ckpt (r.Meta.r_reg, r.Meta.r_color))
            else None)
          info.Meta.restores
  in
  insert_before_boundaries p ckpts_for;
  let boundaries = Hashtbl.length infos in
  (* Dispatch-table footprint: an entry per boundary plus a descriptor per
     recovery block (the paper reports ~130 instructions total). *)
  let lookup_table_instrs =
    if !sliced = 0 then 0 else (2 * boundaries) + (4 * !sliced)
  in
  {
    Meta.scheme;
    infos;
    stats =
      {
        Meta.boundaries;
        candidates = !candidates;
        kept = !kept;
        pruned = !reused + !sliced;
        reused = !reused;
        recovery_blocks = !sliced;
        recovery_instrs = !recovery_instrs;
        lookup_table_instrs;
      };
    guards = [];
  }

let ratchet (p : Cfg.program) =
  let all_ckpts = List.map (fun r -> Instr.CkptDyn r) Reg.all in
  let boundaries = ref 0 in
  insert_before_boundaries p (fun _ ->
      incr boundaries;
      all_ckpts);
  {
    Meta.scheme = Scheme.Ratchet;
    infos = Hashtbl.create 1;
    stats =
      {
        Meta.boundaries = !boundaries;
        candidates = !boundaries * Reg.count;
        kept = !boundaries * Reg.count;
        pruned = 0;
        reused = 0;
        recovery_blocks = 0;
        recovery_instrs = 0;
        lookup_table_instrs = 0;
      };
    guards = [];
  }

(** WCET-driven region splitting (Section VI-B, steps 3–4).

    Each region must complete within one capacitor charge cycle.  The pass
    compares every boundary's worst-case span (plus an estimate of the
    checkpoint stores the scheme will add at the next boundary) against the
    cycle budget of a full charge, and cuts oversized spans by inserting a
    boundary roughly halfway along the worst-case path.  It loops back to
    the WCET analysis until all regions fit.

    Cut points are hazard-aware: a position between a WARAW-exempting
    store and the load it protects is avoided when possible (a boundary
    there would break the exemption and force region formation to cut
    again), falling back to the avoided position only when no other cut
    can split the span.

    Raises [Invalid_argument] if the budget is too small to make progress
    (a single instruction plus checkpoint overhead exceeds it). *)

val by_wcet :
  next_id:int ref ->
  budget:int ->
  ckpt_overhead:int ->
  Gecko_isa.Cfg.program ->
  int
(** Returns the number of boundaries inserted. *)

val max_span : Gecko_isa.Cfg.program -> int
(** Largest worst-case span over all boundaries of all functions (after
    formation). *)

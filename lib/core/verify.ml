open Gecko_isa
module A = Gecko_analysis

let idempotence ?(mode = Mode.default) p =
  (* Every mode — [Speculative] included — must cut its hazard set to
     empty: regions are idempotent by construction and re-execution after
     a rollback is deterministic without memory replay.  [mode] only
     selects the alias domain the hazards are judged in. *)
  match Regions.violations ~mode p with [] -> Ok () | errs -> Error errs

let coloring p (meta : Meta.t) =
  let cands = Candidates.compute p in
  let vf = Valueflow.make p cands in
  let site_tbl = Hashtbl.create 32 in
  List.iter
    (fun (s : Candidates.site) ->
      Hashtbl.replace site_tbl s.Candidates.s_id s)
    cands.Candidates.sites;
  let owned bid r =
    match Meta.boundary_info meta bid with
    | None -> None
    | Some info ->
        List.find_map
          (fun (x : Meta.restore) ->
            if Reg.equal x.Meta.r_reg r && x.Meta.r_owned then
              Some (x.Meta.r_color, x.Meta.r_stable)
            else None)
          info.Meta.restores
  in
  let owned_color bid r = Option.map fst (owned bid r) in
  let errs = ref [] in
  List.iter
    (fun r ->
      let stops bid = owned_color bid r <> None in
      let edges = Coloring.adjacency_for cands ~stops in
      List.iter
        (fun (b1, b2) ->
          let same_value () =
            match
              (Hashtbl.find_opt site_tbl b1, Hashtbl.find_opt site_tbl b2)
            with
            | Some sa, Some sb ->
                Valueflow.same_value_over_edge vf r ~src:sa ~dst:sb
            | _ -> false
          in
          match (owned b1 r, owned b2 r) with
          | Some (_, Some s1), Some (_, Some s2) when s1 = s2 ->
              () (* same stability class: identical values, exempt *)
          | Some (c1, _), Some (c2, _) when c1 = c2 && same_value () -> ()
          | Some (c1, _), Some (c2, _) when c1 = c2 ->
              errs :=
                Printf.sprintf
                  "stores %d -> %d both checkpoint %s into colour %d" b1 b2
                  (Reg.to_string r) c1
                :: !errs
          | _ -> ())
        edges)
    Reg.all;
  match !errs with [] -> Ok () | e -> Error (List.rev e)

(* Independent window-clobber gate.  For every boundary [s], every slot
   its committed recovery state READS — restores (owned or reused) and
   recovery-block [LdSlot]s — must survive [s]'s crash window: the set of
   instructions executable after [s] commits and before the next boundary
   commits.  Any [Ckpt] in that window targeting a read (register,
   colour) pair clobbers the slot a crash-time rollback to [s] would
   load, unless the overwrite provably stores the identical word (same
   stability class, or value-equality from [s] to the writer's owning
   boundary).  This re-derives the protection property directly from the
   emitted instruction stream, independent of how pruning/colouring
   reasoned — it is the gate that catches a reused restore routed at a
   slot some later (e.g. repair) boundary overwrites.

   The scan is shared: [slots] turns unexempted clobbers into errors
   (minus the positions carrying a speculation guard — a guarded store
   appends the slot's old word to the undo log, and rollback replays
   the log before running restores, so the read survives by
   construction); [slot_clobbers] returns their positions, which is
   exactly how the speculative pipeline decides where guards go. *)
let window_clobber_scan ?(mode = Mode.default) p (meta : Meta.t) =
  let cands = Candidates.compute ~mode p in
  let w = Spans.make cands in
  let vf = Valueflow.make p cands in
  let site_tbl = Hashtbl.create 32 in
  List.iter
    (fun (s : Candidates.site) ->
      Hashtbl.replace site_tbl s.Candidates.s_id s)
    cands.Candidates.sites;
  let stable_at bid r =
    match Meta.boundary_info meta bid with
    | None -> None
    | Some info ->
        Option.join
          (List.find_map
             (fun (x : Meta.restore) ->
               if Reg.equal x.Meta.r_reg r then Some x.Meta.r_stable
               else None)
             info.Meta.restores)
  in
  (* Slot reads of the recovery state committed at a boundary:
     (register, colour, stability class of the value read). *)
  let reads_of (info : Meta.binfo) =
    let base =
      List.map
        (fun (x : Meta.restore) ->
          (x.Meta.r_reg, x.Meta.r_color, x.Meta.r_stable))
        info.Meta.restores
    in
    let slice_reads =
      List.concat_map
        (fun (g : Meta.recovery) ->
          List.filter_map
            (function
              | Instr.LdSlot (q, _, c) ->
                  Some (q, c, stable_at info.Meta.b_id q)
              | _ -> None)
            g.Meta.g_slice)
        info.Meta.recoveries
    in
    base @ slice_reads
  in
  let owner_boundary fi blk idx =
    let b = cands.Candidates.graphs.(fi).A.Fgraph.blocks.(blk) in
    let rec go i = function
      | [] -> None
      | Instr.Boundary id :: _ when i > idx -> Some id
      | _ :: rest -> go (i + 1) rest
    in
    go 0 b.Cfg.instrs
  in
  (* Unexempted clobbers as ((fname, label, idx), message); malformed
     programs (a checkpoint store with no owning boundary) as plain
     messages. *)
  let clobbers = ref [] in
  let errs = ref [] in
  List.iter
    (fun (s : Candidates.site) ->
      match Meta.boundary_info meta s.Candidates.s_id with
      | None -> ()
      | Some info ->
          let reads = reads_of info in
          if reads <> [] then
            Spans.iter_window w s ~f:(fun fi blk idx instr ->
                match instr with
                | Instr.Ckpt (wr, wc) ->
                    List.iter
                      (fun (r, c, stable_r) ->
                        if Reg.equal wr r && wc = c then
                          match owner_boundary fi blk idx with
                          | None ->
                              errs :=
                                Printf.sprintf
                                  "checkpoint store of %s (colour %d) in \
                                   %s has no owning boundary"
                                  (Reg.to_string wr) wc
                                  cands.Candidates.funcs.(fi).Cfg.fname
                                :: !errs
                          | Some n ->
                              let exempt =
                                (match (stable_r, stable_at n r) with
                                | Some a, Some b -> a = b
                                | _ -> false)
                                ||
                                match Hashtbl.find_opt site_tbl n with
                                | Some sn ->
                                    Valueflow.same_value_over_edge vf r
                                      ~src:s ~dst:sn
                                | None -> false
                              in
                              if not exempt then
                                let pos =
                                  ( cands.Candidates.funcs.(fi).Cfg.fname,
                                    cands.Candidates.graphs.(fi)
                                      .A.Fgraph.blocks
                                      .(blk)
                                      .Cfg.label,
                                    idx )
                                in
                                clobbers :=
                                  ( pos,
                                    Printf.sprintf
                                      "restore of %s at boundary %d reads \
                                       slot colour %d, overwritten inside \
                                       its crash window by boundary %d's \
                                       store"
                                      (Reg.to_string r) s.Candidates.s_id c n
                                  )
                                  :: !clobbers)
                      reads
                | _ -> ()))
    cands.Candidates.sites;
  (List.rev !clobbers, List.rev !errs)

let slot_clobbers ?mode p meta =
  let clobbers, _ = window_clobber_scan ?mode p meta in
  List.sort_uniq compare (List.map fst clobbers)

let slots ?mode p (meta : Meta.t) =
  let clobbers, errs = window_clobber_scan ?mode p meta in
  let unguarded =
    List.filter
      (fun (pos, _) -> not (List.mem pos meta.Meta.guards))
      clobbers
  in
  match errs @ List.map snd unguarded with
  | [] -> Ok ()
  | e -> Error e

(* Atomic io_log commit: the runtime stages [Out] records per region and
   persists them only at the region commit point, so every [Out] must be
   followed (within its block, with only checkpoint stores in between) by
   the boundary that commits it.  An [Out] whose commit point is in some
   later block would leave its record staged across a control transfer —
   structurally legal for the interpreter, but outside the staged-commit
   protocol this gate certifies. *)
let io_commit (p : Cfg.program) =
  let errs = ref [] in
  List.iter
    (fun (f : Cfg.func) ->
      List.iter
        (fun (b : Cfg.block) ->
          let rec committed = function
            | Instr.Ckpt _ :: rest | Instr.CkptDyn _ :: rest -> committed rest
            | Instr.Boundary _ :: _ -> true
            | _ -> false
          in
          let rec scan = function
            | [] -> ()
            | Instr.Out _ :: rest ->
                if not (committed rest) then
                  errs :=
                    Printf.sprintf
                      "torn io_log commit: Out in %s/%s is not followed by \
                       its committing boundary"
                      f.Cfg.fname b.Cfg.label
                    :: !errs;
                scan rest
            | _ :: rest -> scan rest
          in
          scan b.Cfg.instrs)
        f.Cfg.blocks)
    p.Cfg.funcs;
  match !errs with [] -> Ok () | e -> Error (List.rev e)

(* Undo-log capacity gate: a crash window re-executes at most once per
   rollback, so the undo log only ever holds the guarded stores of a
   single window.  Statically bound that count per window so the runtime
   append can never overflow the reserved NVM area. *)
let speculation ~capacity p (meta : Meta.t) =
  if meta.Meta.guards = [] then Ok ()
  else begin
    let cands = Candidates.compute ~mode:Mode.Speculative p in
    let w = Spans.make cands in
    let errs = ref [] in
    List.iter
      (fun (s : Candidates.site) ->
        let count = ref 0 in
        Spans.iter_window w s ~f:(fun fi blk idx instr ->
            match instr with
            | Instr.St _ | Instr.Ckpt _ ->
                let fname = cands.Candidates.funcs.(fi).Cfg.fname in
                let label =
                  cands.Candidates.graphs.(fi).A.Fgraph.blocks.(blk).Cfg.label
                in
                if List.mem (fname, label, idx) meta.Meta.guards then
                  incr count
            | _ -> ());
        if !count > capacity then
          errs :=
            Printf.sprintf
              "crash window of boundary %d holds %d guarded stores, undo \
               log capacity is %d"
              s.Candidates.s_id !count capacity
            :: !errs)
      cands.Candidates.sites;
    match !errs with [] -> Ok () | e -> Error (List.rev e)
  end

let wcet ~budget p =
  let over = Split.max_span p in
  if over <= budget then Ok ()
  else
    Error
      [
        Printf.sprintf "worst-case region span %d cycles exceeds budget %d" over
          budget;
      ]

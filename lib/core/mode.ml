(* Pipeline precision/speculation mode.  One axis supersedes the old
   bare [?sound] flag:

   - [Legacy]: the seed's optimistic compiler (non-strict, intraproc
     alias analysis, no slot/io gates).  Unsound under dynamic
     addressing; kept only as the soundness-overhead measurement
     baseline.
   - [Sound]: the syntactic may-alias sound pipeline (the PR-4 fix and
     the default; byte-identical to the former [~sound:true]).
   - [Precise]: the sound pipeline with {!Gecko_analysis.Alias}'s
     value-tracking domain — distinct constant slots, disjoint index
     ranges and different strides provably stop aliasing, so fewer
     hazard cuts and fewer pinned checkpoints.
   - [Speculative]: region formation cuts exactly like [Precise]
     (regions stay idempotent), but checkpoint pruning reuses slots
     optimistically, without the sound crash-window survival proof;
     every owned checkpoint store whose window clobber cannot be
     proven harmless is emitted with a runtime speculation guard (an
     NVM undo-log append) so rollback can restore the overwritten
     slot words before running the register restores. *)

type t = Legacy | Sound | Precise | Speculative

let default = Sound

let to_string = function
  | Legacy -> "legacy"
  | Sound -> "sound"
  | Precise -> "precise"
  | Speculative -> "speculative"

let of_string s =
  match String.lowercase_ascii s with
  | "legacy" -> Some Legacy
  | "sound" -> Some Sound
  | "precise" -> Some Precise
  | "speculative" -> Some Speculative
  | _ -> None

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

(* The hazard verdicts region formation and candidate analysis consume. *)
let alias_domain = function
  | Legacy | Sound -> Gecko_analysis.Alias.Syntactic
  | Precise | Speculative -> Gecko_analysis.Alias.Value

let is_sound = function Legacy -> false | Sound | Precise | Speculative -> true

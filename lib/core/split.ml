open Gecko_isa
module A = Gecko_analysis

let fresh next_id =
  let id = !next_id in
  incr next_id;
  Instr.Boundary id

let insert_in_block (b : Cfg.block) idx instr =
  let rec go i = function
    | rest when i = idx -> instr :: rest
    | [] -> [ instr ]
    | x :: rest -> x :: go (i + 1) rest
  in
  b.Cfg.instrs <- go 0 b.Cfg.instrs

(* Walk the worst-case path from [start] accumulating cost; insert a
   boundary at the first point where the accumulated cost reaches
   [target].  Points inside a WARAW-protected interval ([avoid]) are
   skipped when possible — a boundary between an exempting store and its
   load would break the exemption and force region formation to cut
   again before the follow-up store; the first avoided point is kept as
   a fallback so an oversized span is always split. *)
let cut_along_worst g wcet start target ~avoid =
  let rec walk (p : A.Fgraph.point) acc fallback =
    match A.Wcet.worst_successor wcet p with
    | None -> fallback
    | Some next ->
        let cost =
          match A.Fgraph.instr_at g p with
          | Some i -> Cost.instr_cycles i
          | None -> (
              match g.A.Fgraph.blocks.(p.A.Fgraph.blk).Cfg.term with
              | t -> Cost.term_cycles t)
        in
        let acc = acc + cost in
        if acc >= target then
          if not (avoid next) then Some next
          else
            walk next acc (if fallback = None then Some next else fallback)
        else walk next acc fallback
  in
  walk start 0 None

let by_wcet ~next_id ~budget ~ckpt_overhead (p : Cfg.program) =
  let inserted = ref 0 in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ do
    incr rounds;
    if !rounds > 10_000 then
      invalid_arg "Split.by_wcet: did not converge (budget too small?)";
    continue_ := false;
    List.iter
      (fun (f : Cfg.func) ->
        let g = A.Fgraph.of_func f in
        let wcet = A.Wcet.compute g in
        (* Recomputed every round: insertions shift block indices. *)
        let protected_ = A.Alias.waraw_protected_intervals f in
        let avoid (pt : A.Fgraph.point) =
          List.exists
            (fun (bi, lo, hi) ->
              pt.A.Fgraph.blk = bi && pt.A.Fgraph.idx >= lo
              && pt.A.Fgraph.idx <= hi)
            protected_
        in
        let spans = A.Wcet.boundary_spans wcet in
        let oversize =
          List.find_opt (fun (_, _, span) -> span + ckpt_overhead > budget) spans
        in
        match oversize with
        | None -> ()
        | Some (_, bpoint, span) ->
            let eff_budget = budget - ckpt_overhead in
            if eff_budget <= 8 then
              invalid_arg
                (Printf.sprintf
                   "Split.by_wcet: budget %d too small (checkpoint overhead %d)"
                   budget ckpt_overhead);
            let start =
              { bpoint with A.Fgraph.idx = bpoint.A.Fgraph.idx + 1 }
            in
            let target = min (eff_budget / 2) (span / 2) in
            let target = max target 1 in
            (match cut_along_worst g wcet start target ~avoid with
            | Some cut_point ->
                insert_in_block
                  g.A.Fgraph.blocks.(cut_point.A.Fgraph.blk)
                  cut_point.A.Fgraph.idx (fresh next_id);
                incr inserted;
                continue_ := true
            | None ->
                invalid_arg
                  "Split.by_wcet: cannot find a cut point (single instruction \
                   exceeds the budget?)"))
      p.Cfg.funcs
  done;
  !inserted

let max_span (p : Cfg.program) =
  List.fold_left
    (fun acc (f : Cfg.func) ->
      let g = A.Fgraph.of_func f in
      let wcet = A.Wcet.compute g in
      List.fold_left
        (fun acc (_, _, span) -> max acc span)
        (max acc (A.Wcet.entry_span wcet))
        (A.Wcet.boundary_spans wcet))
    0 p.Cfg.funcs

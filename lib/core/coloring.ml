open Gecko_isa
module A = Gecko_analysis

type t = (int * int, int) Hashtbl.t (* (boundary id, reg index) -> colour *)

let color t bid r =
  match Hashtbl.find_opt t (bid, Reg.to_int r) with
  | Some c -> c
  | None -> raise Not_found

let adjacency cands = Spans.edges (Spans.make cands) ~stops:(fun _ -> true)

let adjacency_for cands ~stops = Spans.edges (Spans.make cands) ~stops

(* ------------------------------------------------------------------ *)
(* 2-colouring                                                         *)
(* ------------------------------------------------------------------ *)

type attempt =
  | Colored of t
  | Conflict of Reg.t * int list * (int * int) list
      (** register, odd cycle, that register's directed edges *)

let decision_of (decisions : Prune.result) bid r =
  match Hashtbl.find_opt decisions bid with
  | None -> None
  | Some ds ->
      List.find_map
        (fun (x, d) -> if Reg.equal x r then Some d else None)
        ds

let stores_reg decisions bid r =
  match decision_of decisions bid r with
  | Some Prune.Keep | Some (Prune.Keep_stable _) -> true
  | Some (Prune.Reuse _) | Some (Prune.Prune _) | None -> false

(* Stores that provably write the same word may share a colour: a
   partial overwrite leaves the value unchanged.  Two cases: same
   stability class (globally crossing-invariant values), or no
   definition of the register between the two stores (segment-level
   identity, Valueflow). *)
let exempt_edge vf site_of decisions r (a, b) =
  (match (decision_of decisions a r, decision_of decisions b r) with
  | Some (Prune.Keep_stable ca), Some (Prune.Keep_stable cb) -> ca = cb
  | _ -> false)
  ||
  match (site_of a, site_of b) with
  | Some sa, Some sb -> Valueflow.same_value_over_edge vf r ~src:sa ~dst:sb
  | _ -> false

(* Recover the odd cycle from the BFS parent map when edge (u, v) closes
   it: tree path u -> lca plus reversed tree path v -> lca. *)
let recover_cycle parents u v =
  let rec ancestors x acc =
    match Hashtbl.find_opt parents x with
    | Some p when p <> x -> ancestors p (x :: acc)
    | _ -> x :: acc
  in
  let au = List.rev (ancestors u []) (* u, parent u, ..., root *) in
  let in_au = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace in_au x ()) au;
  let rec climb x acc =
    if Hashtbl.mem in_au x then (x, List.rev acc)
    else
      match Hashtbl.find_opt parents x with
      | Some p when p <> x -> climb p (x :: acc)
      | _ -> (x, List.rev acc)
  in
  let lca, v_part = climb v [] in
  let rec take_until acc = function
    | [] -> List.rev acc
    | x :: _ when x = lca -> List.rev (x :: acc)
    | x :: rest -> take_until (x :: acc) rest
  in
  let u_part = take_until [] au (* u ... lca *) in
  u_part @ List.rev v_part

let try_color vf (cands : Candidates.t) (decisions : Prune.result) =
  let w = Spans.make cands in
  let site_tbl = Hashtbl.create 32 in
  List.iter
    (fun (s : Candidates.site) ->
      Hashtbl.replace site_tbl s.Candidates.s_id s)
    cands.Candidates.sites;
  let site_of id = Hashtbl.find_opt site_tbl id in
  let colors : t = Hashtbl.create 64 in
  let result = ref None in
  (try
     List.iter
       (fun r ->
         let ri = Reg.to_int r in
         let stops bid = stores_reg decisions bid r in
         let redges =
           List.filter
             (fun e -> not (exempt_edge vf site_of decisions r e))
             (Spans.edges w ~stops)
         in
         begin
           (* Self-loops are odd cycles of length one. *)
           (match List.find_opt (fun (a, b) -> a = b) redges with
           | Some (a, _) ->
               if Sys.getenv_opt "GECKO_COLOR_DEBUG" <> None then
                 Printf.eprintf "  self-conflict reg %s edges %s\n%!"
                   (Reg.to_string r)
                   (String.concat " "
                      (List.map
                         (fun (x, y) -> Printf.sprintf "%d->%d" x y)
                         redges));
               result := Some (Conflict (r, [ a ], redges));
               raise Exit
           | None -> ());
           let nbrs = Hashtbl.create 16 in
           let add_nbr a b =
             let old = try Hashtbl.find nbrs a with Not_found -> [] in
             Hashtbl.replace nbrs a (b :: old)
           in
           List.iter
             (fun (a, b) ->
               add_nbr a b;
               add_nbr b a)
             redges;
           let nodes =
             List.filter_map
               (fun (s : Candidates.site) ->
                 if stops s.Candidates.s_id then Some s.Candidates.s_id
                 else None)
               cands.Candidates.sites
           in
           let parents = Hashtbl.create 16 in
           List.iter
             (fun start ->
               if not (Hashtbl.mem colors (start, ri)) then begin
                 Hashtbl.replace colors (start, ri) 0;
                 Hashtbl.replace parents start start;
                 let queue = Queue.create () in
                 Queue.add start queue;
                 while not (Queue.is_empty queue) do
                   let b = Queue.take queue in
                   let cb = Hashtbl.find colors (b, ri) in
                   List.iter
                     (fun n ->
                       match Hashtbl.find_opt colors (n, ri) with
                       | None ->
                           Hashtbl.replace colors (n, ri) (1 - cb);
                           Hashtbl.replace parents n b;
                           Queue.add n queue
                       | Some cn ->
                           if cn = cb && n <> b then begin
                             if Sys.getenv_opt "GECKO_COLOR_DEBUG" <> None
                             then
                               Printf.eprintf
                                 "  bfs-conflict reg %s edge %d-%d edges %s\n%!"
                                 (Reg.to_string r) b n
                                 (String.concat " "
                                    (List.map
                                       (fun (x, y) ->
                                         Printf.sprintf "%d->%d" x y)
                                       redges));
                             result :=
                               Some
                                 (Conflict
                                    (r, recover_cycle parents b n, redges));
                             raise Exit
                           end)
                     (try Hashtbl.find nbrs b with Not_found -> [])
                 done
               end)
             nodes
         end)
       Reg.all
   with Exit -> ());
  match !result with Some c -> c | None -> Colored colors

(* Insert a fresh boundary immediately AFTER the boundary with id [bid]:
   that position belongs exclusively to spans originating at [bid], so the
   insertion lengthens exactly the cycle edges leaving it. *)
let insert_repair ~next_id (cands : Candidates.t) bid =
  let s = Candidates.site cands bid in
  let g = cands.Candidates.graphs.(s.Candidates.s_func) in
  let blk = g.A.Fgraph.blocks.(s.Candidates.s_point.A.Fgraph.blk) in
  let id = !next_id in
  incr next_id;
  let pos = s.Candidates.s_point.A.Fgraph.idx + 1 in
  let rec go i = function
    | rest when i = pos -> Instr.Boundary id :: rest
    | [] -> [ Instr.Boundary id ]
    | x :: rest -> x :: go (i + 1) rest
  in
  blk.Cfg.instrs <- go 0 blk.Cfg.instrs

(* Pick the cycle node to repair after.  The insertion point just after a
   boundary X reroutes exactly the spans leaving X, so the chosen node
   must be the source of a directed cycle edge; a node with out-degree 1
   is ideal (the rewiring is private to the cycle edge and cannot flip
   the parity of unrelated cycles). *)
let pick_repair_node edges cycle =
  match cycle with
  | [] -> invalid_arg "Coloring.pick_repair_node: empty cycle"
  | [ x ] -> x (* self-loop *)
  | first :: _ ->
      let out_deg x =
        List.length (List.filter (fun (a, b) -> a = x && b <> x) edges)
      in
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        | [ last ] -> [ (last, first) ]
        | [] -> []
      in
      let candidates =
        List.concat_map
          (fun (a, b) ->
            let fwd = if List.mem (a, b) edges then [ a ] else [] in
            let bwd = if List.mem (b, a) edges then [ b ] else [] in
            fwd @ bwd)
          (pairs cycle)
      in
      let best =
        List.fold_left
          (fun acc x ->
            match acc with
            | None -> Some x
            | Some y -> if out_deg x < out_deg y then Some x else acc)
          None candidates
      in
      (match best with Some x -> x | None -> first)

let assign ?(mode = Mode.default) ~next_id ~analyze (p : Cfg.program) =
  let repairs : (int, Reg.Set.t) Hashtbl.t = Hashtbl.create 8 in
  let repair_at : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rec loop round =
    if round > 256 then failwith "Coloring.assign: did not converge";
    (* Decisions are recomputed after every insertion.  A repair boundary
       force-keeps exactly the problematic register (the paper's
       "additional checkpoint that saves the problematic register to a
       different index"): the forced keeps are passed INTO the analysis —
       not patched in afterwards — so the reuse pass can neither reuse
       them away (undoing the alternation) nor route another site's
       restore at a slot the repair's own store would clobber inside that
       site's crash window; its other live-ins are treated normally. *)
    let cands = Candidates.compute ~mode p in
    let force_keep bid =
      match Hashtbl.find_opt repairs bid with
      | Some regs -> regs
      | None -> Reg.Set.empty
    in
    let decisions = analyze ~force_keep p cands in
    let vf = Valueflow.make p cands in
    match try_color vf cands decisions with
    | Colored colors -> (cands, decisions, colors)
    | Conflict (reg, cycle, redges) ->
        let node = pick_repair_node redges cycle in
        if Sys.getenv_opt "GECKO_COLOR_DEBUG" <> None then
          Printf.eprintf "round %d: reg %s cycle [%s] repair after %d\n%!"
            round (Reg.to_string reg)
            (String.concat ";" (List.map string_of_int cycle))
            node;
        (* Coalesce: several registers self-looping at the same node
           share one repair boundary.  If that repair already hosts this
           register (the cycle involves the repair itself), a fresh
           boundary is inserted between the node and its repair. *)
        let coalesced =
          match Hashtbl.find_opt repair_at node with
          | Some rid ->
              let old =
                try Hashtbl.find repairs rid with Not_found -> Reg.Set.empty
              in
              if Reg.Set.mem reg old then false
              else begin
                Hashtbl.replace repairs rid (Reg.Set.add reg old);
                true
              end
          | None -> false
        in
        if not coalesced then begin
          Hashtbl.replace repair_at node !next_id;
          Hashtbl.replace repairs !next_id (Reg.Set.singleton reg);
          insert_repair ~next_id cands node
        end;
        loop (round + 1)
  in
  loop 0

let try_color_debug cands decisions =
  (* Debug entry without a program handle: rebuild from candidates. *)
  match try_color (Valueflow.make cands.Candidates.prog cands) cands decisions with
  | Colored _ -> None
  | Conflict (_, c, _) -> Some c

let insert_repair_debug = insert_repair

(** Pipeline precision/speculation mode — supersedes the old bare
    [?sound] flag of {!Pipeline.compile}.

    [Legacy] is the seed's optimistic (unsound) compiler, kept only as
    the soundness-overhead measurement baseline.  [Sound] (the default)
    is the syntactic may-alias sound pipeline.  [Precise] upgrades the
    hazard verdicts to {!Gecko_analysis.Alias}'s value-tracking domain.
    [Speculative] additionally reuses checkpoint slots optimistically
    (pruning the residual may-alias candidates the sound crash-window
    discipline kept alive) and emits runtime speculation guards (NVM
    undo-log appends) on the owned stores whose window clobbers cannot
    be proven harmless, so a rollback can restore the overwritten slot
    words before running the register restores. *)

type t = Legacy | Sound | Precise | Speculative

val default : t
(** [Sound]. *)

val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val compare : t -> t -> int

val alias_domain : t -> Gecko_analysis.Alias.domain
(** The may-alias domain this mode's hazard queries use. *)

val is_sound : t -> bool
(** Every mode except [Legacy]: rollback correctness is guaranteed
    (statically, or — for [Speculative] — via runtime guards). *)

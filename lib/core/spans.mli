(** Span walks over boundary sites: who can be the next boundary after
    whom at runtime, across functions (calls flow into callee entries,
    returns flow to every call site's return block).

    Shared by slot colouring (consecutive-store adjacency), pruning
    (containment checks for redundant-checkpoint reuse) and the
    verification pass. *)

type t

val make : Candidates.t -> t

val from_site : t -> Candidates.site -> on_boundary:(int -> bool) -> unit
(** Walk all paths from just after the site, reporting every boundary id
    encountered to [on_boundary]; a [true] return stops that path. *)

val iter_window : t -> Candidates.site -> f:(int -> int -> int -> Gecko_isa.Instr.t -> unit) -> unit
(** Visit every instruction position [(func, blk, idx, instr)] reachable
    from just after the site before crossing any boundary — the site's
    crash window.  Slot stores ([Ckpt]) of the next boundary execute
    inside this window, before its commit. *)

val edges : t -> stops:(int -> bool) -> (int * int) list
(** Directed pairs [(a, b)]: from just after boundary [a], boundary [b]
    is the first boundary satisfying [stops] on some path.  Only
    boundaries satisfying [stops] are used as walk sources. *)

val reachable_sites : t -> int -> int list
(** All boundary ids encountered on any path from just after the given
    boundary (no stopping; loops traversed once). *)

val reachable_until : t -> src:int -> stop:int -> int list
(** Boundary ids encountered on paths from just after [src], where paths
    are cut at boundary [stop] (exclusive).  Used to compute what lies
    between two boundaries without re-crossing the first. *)

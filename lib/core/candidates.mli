(** Checkpoint candidates: the live-in register set of every region
    boundary.  These are the stores a naive idempotent compiler would
    emit; pruning then removes the reconstructible ones. *)

open Gecko_isa
module A = Gecko_analysis

type site = {
  s_id : int;  (** boundary id *)
  s_func : int;  (** index into {!funcs} *)
  s_point : A.Fgraph.point;  (** position of the [Boundary] instruction *)
  s_live : Reg.Set.t;  (** live-in registers = checkpoint candidates *)
}

type t = {
  prog : Cfg.program;
  funcs : Cfg.func array;
  graphs : A.Fgraph.t array;
  sites : site list;
  hazards : A.Alias.hazard list;
      (** Residual may-alias WAR hazards (empty once region formation has
          run): pruning keeps every candidate in a function that still
          carries one, and verification rejects the program. *)
}

val compute : ?mode:Mode.t -> Cfg.program -> t
(** [mode] (default [Sound]) selects the hazard verdicts carried in
    {!field-hazards}: [Precise]/[Speculative] use the value-tracking
    alias domain, and [Speculative] reports an empty set (its residual
    hazards are guarded at run time, so pruning may ignore them). *)

val site : t -> int -> site
(** Lookup by boundary id; raises [Not_found]. *)

val total_candidates : t -> int

open Gecko_isa
module A = Gecko_analysis

let default_budget = 4000

(* Upper bound on per-boundary checkpoint cost, used when sizing regions
   before the stores exist. *)
let ckpt_overhead_estimate = function
  | Scheme.Nvp -> 0
  | Scheme.Ratchet ->
      (Reg.count * Cost.instr_cycles (Instr.CkptDyn Reg.r0))
      + Cost.instr_cycles (Instr.Boundary 0)
  | Scheme.Gecko_noprune | Scheme.Gecko ->
      (Reg.count * Cost.instr_cycles (Instr.Ckpt (Reg.r0, 0)))
      + Cost.instr_cycles (Instr.Boundary 0)

let fail_on_errors what = function
  | Ok () -> ()
  | Error errs ->
      failwith
        (Printf.sprintf "Pipeline: %s verification failed:\n%s" what
           (String.concat "\n" errs))

(* Compiler profiler: each pass runs under a host-clock span, and the IR
   instruction count is sampled after every pass so pass-by-pass code
   growth shows up on the same Perfetto track. *)
let pass ?obs ?metrics p name f =
  let run () =
    match obs with
    | None -> f ()
    | Some tr -> Gecko_obs.Trace.span tr ~cat:"compiler" name f
  in
  let t0 = Sys.time () in
  let r = run () in
  (match metrics with
  | None -> ()
  | Some reg ->
      Gecko_obs.Metrics.observe
        (Gecko_obs.Metrics.histogram reg ("pipeline." ^ name ^ ".seconds"))
        (Sys.time () -. t0);
      Gecko_obs.Metrics.set_gauge
        (Gecko_obs.Metrics.gauge reg ("pipeline." ^ name ^ ".ir_instrs"))
        (float_of_int (Cfg.instr_count p)));
  (match obs with
  | None -> ()
  | Some tr ->
      Gecko_obs.Trace.counter tr ~cat:"compiler"
        ~ts:(Gecko_obs.Trace.elapsed tr) "ir_instrs"
        (float_of_int (Cfg.instr_count p)));
  r

(* Speculation guards: the optimistic reuse pass lets a restore read a
   slot owned by a (possibly distant) dominating boundary without the
   sound crash-window survival proof.  The stores that actually endanger
   a read are exactly the window clobbers the {!Verify.slots} scan
   cannot exempt (most owner re-executions store the identical word —
   loop-invariant re-checkpoints — and need nothing): each of those
   carries a runtime guard, an undo-log append of the slot cell's old
   value.  Rollback replays the log before running restores, so the
   slot reads its as-of-commit value no matter what the crash window
   overwrote.  Guard positions are named on the FINAL (post-emit)
   program as (fname, block label, instr idx) for the linker. *)
let speculation_guards (p : Cfg.program) (meta : Meta.t) =
  Verify.slot_clobbers ~mode:Mode.Speculative p meta

let compile ?(budget_cycles = default_budget) ?(prune_slices = true)
    ?(prune_reuse = true) ?(mode = Mode.default) ?obs ?metrics scheme prog =
  let p = pass ?obs ?metrics prog "copy" (fun () -> Copy.program prog) in
  let pass name f = pass ?obs ?metrics p name f in
  let sound = Mode.is_sound mode in
  match scheme with
  | Scheme.Nvp -> (p, Meta.empty Scheme.Nvp)
  | Scheme.Ratchet | Scheme.Gecko_noprune | Scheme.Gecko ->
      let next_id = ref 0 in
      pass "regions" (fun () -> ignore (Regions.form ~mode ~next_id p));
      let overhead = ckpt_overhead_estimate scheme in
      pass "split" (fun () ->
          ignore
            (Split.by_wcet ~next_id ~budget:budget_cycles
               ~ckpt_overhead:overhead p));
      pass "regions2" (fun () -> ignore (Regions.form ~mode ~next_id p));
      let meta =
        match scheme with
        | Scheme.Ratchet -> pass "emit" (fun () -> Emit.ratchet p)
        | Scheme.Gecko | Scheme.Gecko_noprune ->
            let analyze =
              match scheme with
              | Scheme.Gecko ->
                  fun ~force_keep p cands ->
                    Prune.analyze_with ~force_keep ~sound
                      ~speculative:(mode = Mode.Speculative)
                      ~slices:prune_slices ~reuse:prune_reuse p cands
              | Scheme.Gecko_noprune | Scheme.Ratchet | Scheme.Nvp ->
                  fun ~force_keep _p cands ->
                    ignore force_keep;
                    Prune.keep_all cands
            in
            let cands, decisions, colors =
              pass "coloring" (fun () ->
                  Coloring.assign ~mode ~next_id ~analyze p)
            in
            pass "emit" (fun () -> Emit.gecko scheme p cands decisions colors)
        | Scheme.Nvp -> assert false
      in
      (* Speculative mode pruned optimistically: enumerate the owned
         checkpoint stores of reused slots on the final program
         (post-split, post-repair, post-emit — positions are the
         linker's) and record them as runtime guards. *)
      let meta =
        match mode with
        | Mode.Speculative ->
            let guards = pass "guards" (fun () -> speculation_guards p meta) in
            { meta with Meta.guards }
        | Mode.Legacy | Mode.Sound | Mode.Precise -> meta
      in
      pass "verify" (fun () ->
          fail_on_errors "idempotence" (Verify.idempotence ~mode p);
          (match scheme with
          | Scheme.Gecko | Scheme.Gecko_noprune ->
              fail_on_errors "coloring" (Verify.coloring p meta);
              if sound then
                fail_on_errors "slots" (Verify.slots ~mode p meta)
          | Scheme.Ratchet | Scheme.Nvp -> ());
          (match scheme with
          | Scheme.Ratchet | Scheme.Gecko | Scheme.Gecko_noprune ->
              if sound then fail_on_errors "io_commit" (Verify.io_commit p)
          | Scheme.Nvp -> ());
          (match mode with
          | Mode.Speculative ->
              fail_on_errors "speculation"
                (Verify.speculation ~capacity:Link.Cells.undo_capacity p meta)
          | Mode.Legacy | Mode.Sound | Mode.Precise -> ());
          fail_on_errors "wcet" (Verify.wcet ~budget:budget_cycles p));
      (p, meta)

let checkpoint_store_count p =
  Cfg.count_matching p (function
    | Instr.Ckpt _ | Instr.CkptDyn _ -> true
    | _ -> false)

let boundary_count p =
  Cfg.count_matching p (function Instr.Boundary _ -> true | _ -> false)

open Gecko_isa
module A = Gecko_analysis

let is_boundary = function Instr.Boundary _ -> true | _ -> false

let fresh next_id =
  let id = !next_id in
  incr next_id;
  Instr.Boundary id

(* Insert a boundary at the head of a block unless one is already there. *)
let boundary_at_head next_id (b : Cfg.block) =
  match b.Cfg.instrs with
  | i :: _ when is_boundary i -> 0
  | _ ->
      b.Cfg.instrs <- fresh next_id :: b.Cfg.instrs;
      1

(* Rebuild a block so every I/O instruction is bracketed by boundaries. *)
let bracket_io next_id (b : Cfg.block) =
  let inserted = ref 0 in
  let rec go prev_was_boundary = function
    | [] -> []
    | i :: rest when Instr.is_io i ->
        let before =
          if prev_was_boundary then []
          else begin
            incr inserted;
            [ fresh next_id ]
          end
        in
        let after =
          match rest with
          | r :: _ when is_boundary r -> []
          | _ ->
              incr inserted;
              [ fresh next_id ]
        in
        before @ (i :: after) @ go (after <> []) rest
    | i :: rest -> i :: go (is_boundary i) rest
  in
  b.Cfg.instrs <- go false b.Cfg.instrs;
  !inserted

let structural_pass next_id (p : Cfg.program) =
  let inserted = ref 0 in
  List.iter
    (fun (f : Cfg.func) ->
      let g = A.Fgraph.of_func f in
      let dom = A.Dom.compute g in
      let loops = A.Loops.compute g dom in
      (* Entry block. *)
      inserted := !inserted + boundary_at_head next_id (Cfg.entry_block f);
      (* Loop headers. *)
      List.iter
        (fun h ->
          inserted :=
            !inserted + boundary_at_head next_id g.A.Fgraph.blocks.(h))
        (A.Loops.headers loops);
      (* Call-return blocks. *)
      List.iter
        (fun (b : Cfg.block) ->
          match b.Cfg.term with
          | Instr.Call (_, ret) ->
              inserted :=
                !inserted + boundary_at_head next_id (Cfg.find_block f ret)
          | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> ())
        f.Cfg.blocks;
      (* I/O bracketing. *)
      List.iter
        (fun b -> inserted := !inserted + bracket_io next_id b)
        f.Cfg.blocks)
    p.Cfg.funcs;
  !inserted

(* Anti-dependence cuts: the may-alias WAR/WARAW hazard set lives in the
   analysis layer ({!A.Alias.war_hazards}); region formation resolves each
   hazard by inserting a boundary immediately before the offending store,
   so a rollback can never land between the load and the store.  The
   pipeline {!Mode} picks the hazard verdicts: [Legacy] reproduces the
   seed's analysis (intraprocedural, optimistic WARAW scan) — only the
   soundness-overhead measurement baseline compiles with it; [Precise]
   and [Speculative] upgrade the may-alias test to the value-tracking
   domain, so provably distinct slots and disjoint index ranges stop
   forcing cuts. *)

let hazards ?(mode = Mode.default) (p : Cfg.program) =
  let legacy = not (Mode.is_sound mode) in
  A.Alias.war_hazards ~domain:(Mode.alias_domain mode) ~strict:(not legacy)
    ~interproc:(not legacy) p

let insert_in_block (b : Cfg.block) idx instr =
  let rec go i = function
    | rest when i = idx -> instr :: rest
    | [] -> [ instr ]
    | x :: rest -> x :: go (i + 1) rest
  in
  b.Cfg.instrs <- go 0 b.Cfg.instrs

let func_by_name (p : Cfg.program) name =
  List.find (fun (f : Cfg.func) -> f.Cfg.fname = name) p.Cfg.funcs

let rec war_fixpoint ~mode next_id (p : Cfg.program) acc =
  match hazards ~mode p with
  | [] -> acc
  | hz :: _ ->
      let f = func_by_name p hz.A.Alias.hz_store_func in
      let sblk, sidx = hz.A.Alias.hz_store in
      let blk = List.nth f.Cfg.blocks sblk in
      insert_in_block blk sidx (fresh next_id);
      war_fixpoint ~mode next_id p (acc + 1)

let form ?(mode = Mode.default) ~next_id p =
  let a = structural_pass next_id p in
  (* Every mode cuts its hazard set to empty — [Speculative] included:
     regions stay idempotent by construction, so re-execution after a
     rollback is deterministic without any memory replay.  What
     [Speculative] relaxes is downstream checkpoint PRUNING (optimistic
     slot reuse with runtime-guarded roots; see {!Prune} and
     {!Pipeline}), not the anti-dependence discipline.  Its hazard
     verdicts come from the value-tracking domain, like [Precise]. *)
  let b = war_fixpoint ~mode next_id p 0 in
  a + b

let violations ?(mode = Mode.default) (p : Cfg.program) =
  List.map (Format.asprintf "%a" A.Alias.pp_hazard) (hazards ~mode p)

(** The GECKO compiler driver: the five-step pass sequence of Section VI-B
    plus pruning, colouring and emission.

    {ol
    {- idempotent region formation;}
    {- WCET analysis of every region span;}
    {- splitting of regions that cannot finish within one charge cycle
       (looping back to the WCET analysis);}
    {- a second region-formation pass (splits may have broken a WARAW
       exemption);}
    {- checkpoint insertion: candidates (live-ins) → pruning → slot
       colouring (with repair boundaries) → emission of checkpoint
       stores and recovery metadata.}}

    The input program is deep-copied: one built workload can be compiled
    under every scheme. *)

open Gecko_isa

val default_budget : int
(** Default charge-cycle budget in cycles (overridden by experiment
    configurations derived from board parameters). *)

val compile :
  ?budget_cycles:int ->
  ?prune_slices:bool ->
  ?prune_reuse:bool ->
  ?mode:Mode.t ->
  ?obs:Gecko_obs.Trace.t ->
  ?metrics:Gecko_obs.Metrics.registry ->
  Scheme.t ->
  Cfg.program ->
  Cfg.program * Meta.t
(** [prune_slices]/[prune_reuse] (both default [true]) independently
    disable the two checkpoint-pruning mechanisms of the [Gecko] scheme —
    the ablation study.  Raises [Failure] if a verification pass fails —
    a compiler bug, not a user error.

    [mode] (default [Sound]) selects the precision/soundness point of the
    whole pipeline (it supersedes the former [sound] flag):

    - [Sound] — the may-alias-sound pipeline with the syntactic alias
      domain: interprocedural WAR hazard detection in region formation,
      the hazard-aware pruning discipline, and the independent
      [Verify.slots] / [Verify.io_commit] gates.  Byte-identical to the
      historical [sound:true] output.
    - [Precise] — same gates, but hazard verdicts come from the
      value-tracking alias domain ({!Gecko_analysis.Vrange}): provably
      disjoint register-addressed accesses stop forcing anti-dependence
      cuts.
    - [Speculative] — same region formation as [Precise] (every
      value-domain hazard is still cut, so regions stay idempotent), but
      checkpoint pruning reuses slots optimistically, without the sound
      crash-window survival proof.  Every owned checkpoint store of a
      reused slot gets a runtime speculation guard (an undo-log append
      of the slot's old word) recorded in {!Meta.t.guards}; rollback
      replays the log before running restores, so reused slots read
      their as-of-commit values.  Guard positions are exempted by
      [Verify.slots] and capacity-bounded by [Verify.speculation].
    - [Legacy] — the seed's optimistic compiler; exists solely as the
      baseline for soundness-overhead measurement (it can emit programs
      whose rollback is unsound under dynamic addressing).

    [obs] turns on the compiler profiler: every pass is recorded as a
    host-clock span (category ["compiler"]) with an [ir_instrs] counter
    sample after it.  [metrics] additionally collects per-pass wall-time
    histograms ([pipeline.<pass>.seconds]) and IR-size gauges
    ([pipeline.<pass>.ir_instrs]). *)

val speculation_guards : Cfg.program -> Meta.t -> (string * string * int) list
(** The owned checkpoint stores targeting a reused (register, colour)
    slot of a (final, post-emit) program, as (function, block label,
    instruction index) triples — what [compile ~mode:Speculative]
    records in {!Meta.t.guards}.  A slot counts as reused when any
    boundary's metadata carries a non-owned restore of it.  Exposed so
    harnesses that re-link a mutated program (e.g. counterexample
    shrinking) can recompute guard positions for the mutant instead of
    reusing stale ones. *)

val checkpoint_store_count : Cfg.program -> int
(** Static count of checkpoint stores ([Ckpt] / [CkptDyn]) — Table III. *)

val boundary_count : Cfg.program -> int

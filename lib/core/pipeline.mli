(** The GECKO compiler driver: the five-step pass sequence of Section VI-B
    plus pruning, colouring and emission.

    {ol
    {- idempotent region formation;}
    {- WCET analysis of every region span;}
    {- splitting of regions that cannot finish within one charge cycle
       (looping back to the WCET analysis);}
    {- a second region-formation pass (splits may have broken a WARAW
       exemption);}
    {- checkpoint insertion: candidates (live-ins) → pruning → slot
       colouring (with repair boundaries) → emission of checkpoint
       stores and recovery metadata.}}

    The input program is deep-copied: one built workload can be compiled
    under every scheme. *)

open Gecko_isa

val default_budget : int
(** Default charge-cycle budget in cycles (overridden by experiment
    configurations derived from board parameters). *)

val compile :
  ?budget_cycles:int ->
  ?prune_slices:bool ->
  ?prune_reuse:bool ->
  ?sound:bool ->
  ?obs:Gecko_obs.Trace.t ->
  ?metrics:Gecko_obs.Metrics.registry ->
  Scheme.t ->
  Cfg.program ->
  Cfg.program * Meta.t
(** [prune_slices]/[prune_reuse] (both default [true]) independently
    disable the two checkpoint-pruning mechanisms of the [Gecko] scheme —
    the ablation study.  Raises [Failure] if a verification pass fails —
    a compiler bug, not a user error.

    [sound] (default [true]) selects the may-alias-sound pipeline:
    interprocedural WAR hazard detection in region formation, the
    hazard-aware pruning discipline, and the independent [Verify.slots] /
    [Verify.io_commit] gates.  [sound:false] reproduces the seed's
    optimistic compiler and exists solely as the baseline for
    soundness-overhead measurement (it can emit programs whose rollback
    is unsound under dynamic addressing).

    [obs] turns on the compiler profiler: every pass is recorded as a
    host-clock span (category ["compiler"]) with an [ir_instrs] counter
    sample after it.  [metrics] additionally collects per-pass wall-time
    histograms ([pipeline.<pass>.seconds]) and IR-size gauges
    ([pipeline.<pass>.ir_instrs]). *)

val checkpoint_store_count : Cfg.program -> int
(** Static count of checkpoint stores ([Ckpt] / [CkptDyn]) — Table III. *)

val boundary_count : Cfg.program -> int

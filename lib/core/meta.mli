(** Compiled recovery metadata consumed by the runtime.

    For every region boundary, the machine needs to know how to
    reconstruct the register file when rolling back to it: which registers
    are restored from which colour slot, and which are recomputed by a
    recovery block.  For Ratchet, all 16 registers are restored from the
    parity-selected buffer, so per-boundary lists are unnecessary. *)

open Gecko_isa

type restore = {
  r_reg : Reg.t;
  r_color : int;
  r_owned : bool;
      (** True when this boundary emits the store itself; false when the
          restore references a dominating boundary's still-valid slot
          (redundant-checkpoint elimination). *)
  r_stable : int option;
      (** Stability class for stores whose value is identical at every
          crossing; same-class stores may legally share a slot colour. *)
}

type recovery = { g_reg : Reg.t; g_slice : Instr.t list }
(** The slice executes in dependence order in a scratch register window;
    its last write to [g_reg] is the reconstructed live-in value. *)

type binfo = {
  b_id : int;
  b_func : string;
  restores : restore list;
  recoveries : recovery list;
}

type stats = {
  boundaries : int;
  candidates : int;  (** live-in checkpoint candidates before pruning *)
  kept : int;  (** checkpoint stores actually emitted *)
  pruned : int;  (** stores removed: reused + sliced *)
  reused : int;
  recovery_blocks : int;
  recovery_instrs : int;
  lookup_table_instrs : int;
      (** dispatch-table footprint, modelled per the paper (~130). *)
}

type t = {
  scheme : Scheme.t;
  infos : (int, binfo) Hashtbl.t;
  stats : stats;
  guards : (string * string * int) list;
      (** Speculation guards: [(fname, block label, instr idx)] of every
          owned checkpoint store whose (register, colour) slot some
          boundary's restore reuses — the stores the optimistic reuse
          pass trusts without the sound crash-window survival proof.
          The linker marks these code slots so the runtime appends an
          undo-log entry (the slot cell's old word) before each such
          store; rollback replays the log before running restores.
          Empty outside [Speculative] mode. *)
}

val empty : Scheme.t -> t

val boundary_info : t -> int -> binfo option

val pp_stats : Format.formatter -> stats -> unit

(** Idempotent region formation (Section VI-B).

    Inserts [Boundary] instructions so that every span executed between
    two dynamic boundary crossings is idempotent:

    - a boundary at every function entry;
    - a boundary at every natural-loop header;
    - boundaries immediately before and after every I/O instruction
      (I/O must not silently replay across a whole region);
    - a boundary at the start of every call-return block (callee entries
      are covered by the function-entry rule);
    - anti-dependence cuts: for every hazard in the may-alias WAR set
      ({!Gecko_analysis.Alias.war_hazards} — dynamic register-addressed
      references included, followed across calls and returns), a boundary
      is inserted before the store — unless the pair is WARAW-exempt (a
      store provably to the same location precedes the load in the same
      block with no boundary and no may-aliasing store in between, so
      re-execution rewrites before re-reading).

    The pass runs to a fixpoint and is idempotent: re-running it on an
    already-formed program inserts nothing. *)

open Gecko_isa
module A = Gecko_analysis

val form : ?mode:Mode.t -> next_id:int ref -> Cfg.program -> int
(** Returns the number of boundaries inserted.  [mode] picks the hazard
    verdicts: [Legacy] is the seed's unsound analysis (intraprocedural,
    optimistic WARAW scan — only the soundness-overhead measurement
    baseline uses it); [Precise] upgrades the may-alias test to the
    value-tracking domain; [Speculative] skips the anti-dependence cut
    fixpoint entirely (residual hazards are guarded at run time by the
    pipeline instead of cut). *)

val hazards : ?mode:Mode.t -> Cfg.program -> A.Alias.hazard list
(** Residual may-alias WAR hazards under the mode's domain (empty on a
    correctly formed program, except in [Speculative] mode where the
    remaining hazards are exactly the ones needing runtime guards). *)

val violations : ?mode:Mode.t -> Cfg.program -> string list
(** Human-readable rendering of {!hazards} — the final verification
    pass. *)

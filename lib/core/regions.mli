(** Idempotent region formation (Section VI-B).

    Inserts [Boundary] instructions so that every span executed between
    two dynamic boundary crossings is idempotent:

    - a boundary at every function entry;
    - a boundary at every natural-loop header;
    - boundaries immediately before and after every I/O instruction
      (I/O must not silently replay across a whole region);
    - a boundary at the start of every call-return block (callee entries
      are covered by the function-entry rule);
    - anti-dependence cuts: for every hazard in the may-alias WAR set
      ({!Gecko_analysis.Alias.war_hazards} — dynamic register-addressed
      references included, followed across calls and returns), a boundary
      is inserted before the store — unless the pair is WARAW-exempt (a
      store provably to the same location precedes the load in the same
      block with no boundary and no may-aliasing store in between, so
      re-execution rewrites before re-reading).

    The pass runs to a fixpoint and is idempotent: re-running it on an
    already-formed program inserts nothing. *)

open Gecko_isa
module A = Gecko_analysis

val form : ?legacy:bool -> next_id:int ref -> Cfg.program -> int
(** Returns the number of boundaries inserted.  [legacy] selects the
    seed's unsound hazard analysis (intraprocedural, optimistic WARAW
    scan) — only the soundness-overhead measurement baseline uses it. *)

val hazards : ?legacy:bool -> Cfg.program -> A.Alias.hazard list
(** Residual may-alias WAR hazards (empty on a correctly formed
    program). *)

val violations : ?legacy:bool -> Cfg.program -> string list
(** Human-readable rendering of {!hazards} — the final verification
    pass. *)

type linked_instr =
  | Op of Instr.t
  | Ljmp of int
  | Lbr of Instr.cond * Reg.t * int * int
  | Lcall of int * int
  | Lret
  | Lhalt

type image = {
  prog : Cfg.program;
  code : linked_instr array;
  entry : int;
  block_index : (string * string, int) Hashtbl.t;
  space_base : int array;
  data_words : int;
  stack_base : int;
  stack_words : int;
  jit_base : int;
  gecko_base : int;
  sys_base : int;
  nvm_words : int;
  boundary_index : (int, int) Hashtbl.t;
  guards : bool array;
}

let stack_default = 64

module Cells = struct
  let jit_regs = 0
  let jit_pc = 16
  let jit_ack = 17
  let jit_words = 18
  let gecko_slot r colour = (Reg.to_int r * 2) + colour
  let gecko_words = 32
  let sys_boundary = 0
  let sys_parity = 1
  let sys_progress = 2
  let sys_ratchet_lo = 3
  let sys_ack_seen = 35
  let sys_mode = 36
  let sys_words = 37

  (* Speculation undo log (allocated only for guarded images): a count
     word, then [undo_capacity] entries of [undo_entry_words] words each
     — (epoch tag, absolute address, old value). *)
  let sys_undo_count = 37
  let sys_undo_base = 38
  let undo_capacity = 64
  let undo_entry_words = 3
  let sys_words_guarded = sys_undo_base + (undo_capacity * undo_entry_words)
end

let link ?(stack_words = stack_default) ?(guards = []) (p : Cfg.program) =
  (* Pass 1: assign slot indices to blocks. *)
  let block_index = Hashtbl.create 64 in
  let slots = ref 0 in
  List.iter
    (fun (f : Cfg.func) ->
      List.iter
        (fun (b : Cfg.block) ->
          Hashtbl.replace block_index (f.Cfg.fname, b.Cfg.label) !slots;
          slots := !slots + List.length b.Cfg.instrs + 1)
        f.Cfg.blocks)
    p.Cfg.funcs;
  let code = Array.make (max 1 !slots) Lhalt in
  let boundary_index = Hashtbl.create 16 in
  let lookup fname label =
    match Hashtbl.find_opt block_index (fname, label) with
    | Some i -> i
    | None ->
        invalid_arg (Printf.sprintf "Link: unresolved label %s/%s" fname label)
  in
  (* Pass 2: emit. *)
  let pos = ref 0 in
  List.iter
    (fun (f : Cfg.func) ->
      List.iter
        (fun (b : Cfg.block) ->
          List.iter
            (fun i ->
              (match i with
              | Instr.Boundary id -> Hashtbl.replace boundary_index id !pos
              | _ -> ());
              code.(!pos) <- Op i;
              incr pos)
            b.Cfg.instrs;
          (code.(!pos) <-
            (match b.Cfg.term with
            | Instr.Jmp l -> Ljmp (lookup f.Cfg.fname l)
            | Instr.Br (c, r, t, e) ->
                Lbr (c, r, lookup f.Cfg.fname t, lookup f.Cfg.fname e)
            | Instr.Call (callee, ret) ->
                let callee_entry =
                  let cf = Cfg.find_func p callee in
                  lookup callee (Cfg.entry_block cf).Cfg.label
                in
                Lcall (callee_entry, lookup f.Cfg.fname ret)
            | Instr.Ret -> Lret
            | Instr.Halt -> Lhalt));
          incr pos)
        f.Cfg.blocks)
    p.Cfg.funcs;
  (* Data layout. *)
  let n_spaces =
    List.fold_left
      (fun acc (s : Instr.space) -> max acc (s.Instr.space_id + 1))
      0 p.Cfg.spaces
  in
  let space_base = Array.make (max 1 n_spaces) 0 in
  let data_words = ref 0 in
  List.iter
    (fun (s : Instr.space) ->
      space_base.(s.Instr.space_id) <- !data_words;
      data_words := !data_words + s.Instr.space_words)
    p.Cfg.spaces;
  let stack_base = !data_words in
  let jit_base = stack_base + stack_words in
  let gecko_base = jit_base + Cells.jit_words in
  let sys_base = gecko_base + Cells.gecko_words in
  (* The undo-log area exists only in guarded (speculative) images, so
     every other image keeps the historical layout bit-for-bit. *)
  let nvm_words =
    sys_base
    + (if guards = [] then Cells.sys_words else Cells.sys_words_guarded)
  in
  let guard_slots =
    if guards = [] then [||]
    else begin
      let a = Array.make (Array.length code) false in
      List.iter
        (fun (fname, label, idx) ->
          let base = lookup fname label in
          a.(base + idx) <- true)
        guards;
      a
    end
  in
  let entry =
    let mf = Cfg.find_func p p.Cfg.main in
    lookup p.Cfg.main (Cfg.entry_block mf).Cfg.label
  in
  {
    prog = p;
    code;
    entry;
    block_index;
    space_base;
    data_words = !data_words;
    stack_base;
    stack_words;
    jit_base;
    gecko_base;
    sys_base;
    nvm_words;
    boundary_index;
    guards = guard_slots;
  }

let resolve img (m : Instr.mref) regs =
  let base = img.space_base.(m.Instr.space.Instr.space_id) in
  let d =
    match m.Instr.disp with
    | Instr.Dconst c -> c
    | Instr.Dreg r -> regs.(Reg.to_int r)
  in
  base + d

let disasm img =
  let buf = Buffer.create 4096 in
  (* Invert the block index for labelling. *)
  let starts = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (f, l) i -> Hashtbl.replace starts i (Printf.sprintf "%s/%s" f l))
    img.block_index;
  Array.iteri
    (fun i li ->
      (match Hashtbl.find_opt starts i with
      | Some name -> Buffer.add_string buf (Printf.sprintf "%s:\n" name)
      | None -> ());
      let body =
        match li with
        | Op op -> Instr.to_string op
        | Ljmp t -> Printf.sprintf "jmp @%d" t
        | Lbr (c, r, t, e) ->
            Format.asprintf "br.%s %a, @%d, @%d"
              (match c with
              | Instr.Z -> "z"
              | Instr.Nz -> "nz"
              | Instr.Ltz -> "ltz"
              | Instr.Gez -> "gez"
              | Instr.Gtz -> "gtz"
              | Instr.Lez -> "lez")
              Reg.pp r t e
        | Lcall (t, ret) -> Printf.sprintf "call @%d ret @%d" t ret
        | Lret -> "ret"
        | Lhalt -> "halt"
      in
      Buffer.add_string buf (Printf.sprintf "  %4d: %s\n" i body))
    img.code;
  Buffer.contents buf

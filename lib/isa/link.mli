(** Linker: flatten a CFG program into an executable image.

    The image assigns every basic block a contiguous range of instruction
    slots (block body followed by one terminator slot) and lays out the
    non-volatile data segment:

    {v
      [ data spaces | call stack | JIT checkpoint area | GECKO slots | sys ]
    v}

    The JIT area holds 16 registers + PC + SP-shadow + ACK.  The GECKO area
    holds two colour slots per register (double buffering).  The sys area
    holds runtime cells (committed-boundary id, Ratchet buffer parity,
    mode/detection words). *)

type linked_instr =
  | Op of Instr.t
  | Ljmp of int
  | Lbr of Instr.cond * Reg.t * int * int
  | Lcall of int * int  (** callee entry index, return index. *)
  | Lret
  | Lhalt

type image = {
  prog : Cfg.program;
  code : linked_instr array;
  entry : int;
  block_index : (string * string, int) Hashtbl.t;
      (** (function, label) -> first slot of the block. *)
  space_base : int array;  (** space id -> base word address. *)
  data_words : int;
  stack_base : int;
  stack_words : int;
  jit_base : int;
  gecko_base : int;
  sys_base : int;
  nvm_words : int;
  boundary_index : (int, int) Hashtbl.t;
      (** boundary id -> slot of its [Boundary] instruction. *)
  guards : bool array;
      (** Per-code-slot speculation-guard marks ([[||]] when the image
          carries none): the runtime appends an undo-log entry before
          executing a store at a marked slot. *)
}

val stack_default : int
(** Default call-stack depth in words. *)

(** Offsets of runtime cells, relative to the area bases. *)
module Cells : sig
  val jit_regs : int
  (** Start of the 16 register words in the JIT area. *)

  val jit_pc : int
  val jit_ack : int
  val jit_words : int

  val gecko_slot : Reg.t -> int -> int
  (** [gecko_slot r colour] — offset of a checkpoint slot in the GECKO
      area. *)

  val gecko_words : int

  val sys_boundary : int
  (** Committed boundary id (+1; 0 = none). *)

  val sys_parity : int
  (** Ratchet double-buffer parity. *)

  val sys_ratchet_lo : int
  (** 2 * 16 words of Ratchet register slots. *)

  val sys_progress : int
  (** Completed-region flag for attack detection. *)

  val sys_ack_seen : int
  (** ACK value observed at the previous boot (for toggle detection). *)

  val sys_mode : int
  (** Persisted GECKO policy mode (survives outages). *)

  val sys_words : int

  val sys_undo_count : int
  (** Number of valid undo-log entries (guarded images only). *)

  val sys_undo_base : int
  (** First undo-log entry word (guarded images only). *)

  val undo_capacity : int
  (** Maximum undo-log entries — {!Verify.speculation} bounds the static
      guarded-store count per crash window by this. *)

  val undo_entry_words : int
  (** Words per undo entry: epoch tag, absolute address, old value. *)

  val sys_words_guarded : int
  (** Sys-area size when the image carries speculation guards. *)
end

val link : ?stack_words:int -> ?guards:(string * string * int) list ->
  Cfg.program -> image
(** [guards] (default none) marks store slots as speculation-guarded by
    [(fname, block label, instr idx)]; a non-empty list also appends the
    undo-log area to the sys segment. *)

val resolve : image -> Instr.mref -> int array -> int
(** Absolute word address of a memory reference given the register-file
    contents (for dynamic displacements). *)

val disasm : image -> string

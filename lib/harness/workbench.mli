(** Shared pieces of the experiment harness: the victim application used
    in the attack studies, compile/link caching, and common run
    helpers. *)

open Gecko_isa
open Gecko_emi

val sense_app : unit -> Cfg.program
(** The canonical intermittent application of the attack experiments: an
    endless sense–process–report loop (Section III, "Applications"). *)

val compiled :
  ?mode:Gecko_core.Mode.t ->
  Gecko_core.Scheme.t ->
  Cfg.program ->
  Link.image * Gecko_core.Meta.t
(** Compile and link (memoized on program name + scheme + pipeline
    mode).  Speculative-mode metas carry {!Gecko_core.Meta.t.guards},
    which are linked into the image so guarded runs arm the undo-log
    protocol.  Thread-safe: the memo table is shared with the experiment
    pool's worker domains — and with every fleet campaign shard, so a
    workload×scheme×mode triple compiles once per process, not once per
    device — and guarded by a mutex. *)

val cache_counts : unit -> int * int
(** Process-lifetime [(hits, misses)] of the shared compile cache.
    Misses count distinct (program, scheme) keys compiled regardless of
    pool size; campaign throughput reporting takes deltas around a
    run. *)

val decoded :
  ?mode:Gecko_core.Mode.t ->
  Gecko_core.Scheme.t ->
  Cfg.program ->
  board:Gecko_machine.Board.t ->
  Link.image * Gecko_core.Meta.t * Gecko_machine.Decode.t
(** {!compiled}, plus the pre-decoded instruction stream for the board's
    device, memoized beside the compile cache on (program, scheme, mode,
    device model).  Feed the third component to
    {!Gecko_machine.Machine.options.decoded} so repeated runs of the
    same workload skip the O(code size) decode pass. *)

val decode_counts : unit -> int * int
(** Process-lifetime [(hits, misses)] of the decode cache (one miss per
    distinct (program, scheme, mode, device) key). *)

val workload_program : string -> Cfg.program
(** The catalogued workload's CFG, built once per process and memoized
    by name (builds are deterministic).  Raises like
    {!Gecko_workloads.Workload.find} on unknown names. *)

val decoded_workload :
  ?mode:Gecko_core.Mode.t ->
  Gecko_core.Scheme.t ->
  string ->
  board:Gecko_machine.Board.t ->
  Link.image * Gecko_core.Meta.t * Gecko_machine.Decode.t
(** {!decoded} of {!workload_program}: the fleet engines' one-stop
    image/meta/decoded lookup, every layer memoized. *)

val record_cache_metrics : Gecko_obs.Metrics.registry -> unit
(** Publish {!cache_counts} and {!decode_counts} as the
    [workbench.compile_cache_hits] / [workbench.compile_cache_misses] /
    [workbench.decode_cache_hits] / [workbench.decode_cache_misses]
    counters of a metrics registry (setting them to the current totals,
    idempotently). *)

val jobs : unit -> int
(** Effective parallelism of the experiment pool: the value given to
    {!set_jobs}, else [GECKO_JOBS], else the runtime's recommended
    domain count (see {!Gecko_util.Pool.default_jobs}). *)

val set_jobs : int -> unit
(** Fix the experiment pool's size ([>= 1]; 1 means fully serial).
    Replaces a live pool of a different size.  Call from the
    coordinating domain only — never from inside a {!pmap} task. *)

val pmap : ('a -> 'b) -> 'a list -> 'b list
(** Run one closure per sweep point on the shared experiment pool.
    Order-preserving and exception-propagating (see
    {!Gecko_util.Pool.map}).  Each closure must be self-contained: it
    may call {!compiled} but must not call {!pmap} itself.  With one
    job this is exactly [List.map], so experiment output is identical
    at every pool size. *)

val run_nvp_progress :
  board:Gecko_machine.Board.t ->
  schedule:Schedule.t ->
  duration:float ->
  Gecko_machine.Machine.outcome
(** Run the sense app under NVP for [duration] seconds of simulated time
    and report the outcome (forward-progress studies). *)

val progress_rate :
  board:Gecko_machine.Board.t -> attack:Attack.t option -> duration:float -> float
(** Forward-progress rate R of the NVP sense app, normalized to the
    attack-free rate on the same board (1.0 = unimpeded). *)

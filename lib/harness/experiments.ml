open Gecko_emi
module U = Gecko_util
module M = Gecko_machine.Machine
module Board = Gecko_machine.Board
module Device = Gecko_devices.Device
module Catalog = Gecko_devices.Catalog
module Core = Gecko_core
module W = Gecko_workloads.Workload

type fidelity = Quick | Full
type artifact = { text : string; metrics : (string * float) list }

(* Metric keys are dotted paths of [a-z0-9_] segments. *)
let slug s =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | 'a' .. 'z' | '0' .. '9' | '.' -> c
      | _ -> '_')
    s

(* ------------------------------------------------------------------ *)
(* Shared knobs                                                        *)
(* ------------------------------------------------------------------ *)

let sweep_freqs = function
  | Quick ->
      [ 1.; 3.; 5.; 6.; 8.; 10.; 13.; 16.; 18.; 21.; 24.; 26.; 27.; 28.; 30.;
        35.; 40.; 50.; 70.; 100.; 200.; 500. ]
  | Full ->
      List.init 60 (fun i -> float_of_int (i + 1))
      @ List.init 8 (fun i -> 65. +. (5. *. float_of_int i))
      @ List.init 23 (fun i -> 120. +. (40. *. float_of_int i))

let sweep_duration = function Quick -> 0.04 | Full -> 0.15

let attack_board device monitor_choice =
  { (Board.attack_rig ~device ()) with Board.monitor_choice }

(* Forward-progress rate of the NVP sense app under [schedule],
   normalized to the attack-free run on the same board. *)
let rate_with ~board ~baseline schedule duration =
  let o = Workbench.run_nvp_progress ~board ~schedule ~duration in
  if baseline <= 0. then 0.
  else Float.min 1.0 (M.forward_progress o /. baseline)

let baseline_rate ~board duration =
  M.forward_progress
    (Workbench.run_nvp_progress ~board ~schedule:Schedule.empty ~duration)

(* Every sweep point is an independent simulation: fan the frequency
   grid out over the experiment pool.  [pmap] preserves the input order
   so the series (and everything rendered from it) is identical at any
   pool size. *)
let sweep ~board ~make_attack ~fidelity =
  let duration = sweep_duration fidelity in
  let baseline = baseline_rate ~board duration in
  Workbench.pmap
    (fun f ->
      let attack = make_attack f in
      (f, rate_with ~board ~baseline (Schedule.always attack) duration))
    (sweep_freqs fidelity)

(* Minimum rate over the sweep; near-ties resolve to the strongest
   coupling (the resonance peak), matching how Table I reports the
   attack frequency. *)
let min_point ?profile points =
  let gain f =
    match profile with
    | None -> 0.
    | Some p -> Gecko_emi.Coupling.gain p ~freq_hz:(f *. 1e6)
  in
  List.fold_left
    (fun (bf, br) (f, r) ->
      if r < br -. 1e-3 then (f, r)
      else if Float.abs (r -. br) <= 1e-3 && gain f > gain bf then (f, br)
      else (bf, br))
    (0., infinity) points

(* ------------------------------------------------------------------ *)
(* Figures 4, 5, 7: frequency sweeps                                   *)
(* ------------------------------------------------------------------ *)

let fig4_dpi_sweep fidelity =
  let devices =
    [ Catalog.msp430fr2311; Catalog.msp430fr5739; Catalog.msp430fr5994;
      Catalog.stm32l552ze ]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Fig. 4 — DPI attack on ADC-based voltage monitors (forward-progress \
     rate vs frequency, 20 dBm)\n\n";
  List.iter
    (fun d ->
      let board = attack_board d Device.Use_adc in
      let series =
        List.map
          (fun point ->
            let label =
              match point with Attack.P1 -> "P1" | Attack.P2 -> "P2"
            in
            {
              U.Chart.label;
              points =
                sweep ~board ~fidelity ~make_attack:(fun f ->
                    Attack.dpi point
                      (Signal.make ~freq_mhz:f ~power_dbm:20.));
            })
          [ Attack.P1; Attack.P2 ]
      in
      Buffer.add_string buf
        (U.Chart.line_plot ~height:10 ~y_min:0. ~y_max:1.
           ~title:(Printf.sprintf "%s (DPI)" d.Device.model)
           ~x_label:"MHz" ~y_label:"R" series);
      Buffer.add_char buf '\n')
    devices;
  { text = Buffer.contents buf; metrics = [] }

let remote_signal ?(power_dbm = 20.) ?(distance_m = 0.1) f =
  Attack.remote ~distance_m (Signal.make ~freq_mhz:f ~power_dbm)

let fig5_remote_adc_sweep fidelity =
  let buf = Buffer.create 4096 in
  let ms = ref [] in
  Buffer.add_string buf
    "Fig. 5 — Remote attack on ADC-based voltage monitors (all nine \
     devices, 20 dBm at the reference distance)\n\n";
  List.iter
    (fun d ->
      let board = attack_board d Device.Use_adc in
      let points = sweep ~board ~fidelity ~make_attack:remote_signal in
      let fmin, rmin = min_point ~profile:d.Device.adc_profile points in
      let key = slug d.Device.model in
      ms := (key ^ ".fmin_mhz", fmin) :: (key ^ ".rmin", rmin) :: !ms;
      Buffer.add_string buf
        (U.Chart.line_plot ~height:8 ~y_min:0. ~y_max:1.
           ~title:
             (Printf.sprintf "%s   (min R = %.2f%% at %.0f MHz)"
                d.Device.model (100. *. rmin) fmin)
           ~x_label:"MHz" ~y_label:"R"
           [ { U.Chart.label = "remote"; points } ]);
      Buffer.add_char buf '\n')
    Catalog.all;
  { text = Buffer.contents buf; metrics = List.rev !ms }

let fig7_remote_comparator_sweep fidelity =
  let buf = Buffer.create 4096 in
  let ms = ref [] in
  Buffer.add_string buf
    "Fig. 7 — Remote attack on comparator-based voltage monitors\n\n";
  List.iter
    (fun d ->
      if Device.has_comparator d then begin
        let board = attack_board d Device.Use_comparator in
        let points = sweep ~board ~fidelity ~make_attack:remote_signal in
        let fmin, rmin =
          match d.Device.comp_profile with
          | Some p -> min_point ~profile:p points
          | None -> min_point points
        in
        let key = slug d.Device.model in
        ms :=
          (key ^ ".comp_fmin_mhz", fmin) :: (key ^ ".comp_rmin", rmin) :: !ms;
        Buffer.add_string buf
          (U.Chart.line_plot ~height:8 ~y_min:0. ~y_max:1.
             ~title:
               (Printf.sprintf "%s comparator   (min R = %.4f%% at %.0f MHz)"
                  d.Device.model (100. *. rmin) fmin)
             ~x_label:"MHz" ~y_label:"R"
             [ { U.Chart.label = "remote"; points } ]);
        Buffer.add_char buf '\n'
      end)
    Catalog.all;
  { text = Buffer.contents buf; metrics = List.rev !ms }

(* ------------------------------------------------------------------ *)
(* Figure 8: power vs distance                                         *)
(* ------------------------------------------------------------------ *)

let fig8_distance fidelity =
  let d = Catalog.evaluation_board in
  let board = attack_board d Device.Use_adc in
  let duration = sweep_duration fidelity in
  let baseline = baseline_rate ~board duration in
  let distances = [ 0.5; 1.; 2.; 3.; 4.; 5. ] in
  let powers = [ 15.; 20.; 25.; 30.; 35. ] in
  let t =
    U.Table.create
      ~title:
        "Fig. 8 — Attack distance analysis on MSP430FR5994 (forward-progress \
         rate at 27 MHz; DoS = rate below 50%)"
      ~header:
        ("power \\ distance"
        :: List.map (fun d -> Printf.sprintf "%.1f m" d) distances)
      ()
  in
  (* Whole power x distance grid through the pool; DoS counting and the
     table rows are assembled serially from the ordered results. *)
  let grid =
    List.concat_map
      (fun p -> List.map (fun dist -> (p, dist)) distances)
      powers
  in
  let rates =
    Array.of_list
      (Workbench.pmap
         (fun (p, dist) ->
           let attack =
             Attack.remote ~distance_m:dist
               (Signal.make ~freq_mhz:27. ~power_dbm:p)
           in
           rate_with ~board ~baseline (Schedule.always attack) duration)
         grid)
  in
  let ncols = List.length distances in
  let dos_cells = ref 0 in
  List.iteri
    (fun pi p ->
      let row =
        List.mapi
          (fun di _dist ->
            let r = rates.((pi * ncols) + di) in
            if r < 0.5 then incr dos_cells;
            Printf.sprintf "%.0f%%%s" (100. *. r) (if r < 0.5 then " DoS" else ""))
          distances
      in
      U.Table.add_row t (Printf.sprintf "%.0f dBm" p :: row))
    powers;
  {
    text = U.Table.render t;
    metrics =
      [
        ("dos_cells", float_of_int !dos_cells);
        ("cells", float_of_int (List.length distances * List.length powers));
      ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 9: real-time staged attack                                   *)
(* ------------------------------------------------------------------ *)

let fig9_realtime fidelity =
  let seg = match fidelity with Quick -> 0.25 | Full -> 1.0 in
  (* (start, stop, freq): the attacker modulates aggressiveness by moving
     on and off the monitor's own resonance (Section IV-B2). *)
  let stages_for = function
    | Device.Use_adc ->
        [ (1., 2., 27.); (3., 4., 25.); (5., 6., 29.5); (7., 8., 27.) ]
    | Device.Use_comparator ->
        [ (1., 2., 5.); (3., 4., 4.3); (5., 6., 6.6); (7., 8., 5.) ]
  in
  let schedule_for choice =
    Schedule.make
      (List.map
         (fun (a, b, f) ->
           Schedule.window ~t_start:(a *. seg) ~t_end:(b *. seg)
             (remote_signal ~power_dbm:20. f))
         (stages_for choice))
  in
  let total = 9. *. seg in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Fig. 9 — Real-time attack control on MSP430FR5994 (R per time bucket; \
     staged on/near/off-resonance frequencies per monitor)\n\n";
  let configs = [ ("ADC", Device.Use_adc); ("comparator", Device.Use_comparator) ] in
  let results =
    Workbench.pmap
      (fun (_name, choice) ->
        let schedule = schedule_for choice in
        let board = attack_board Catalog.msp430fr5994 choice in
        let image, meta =
          Workbench.compiled Core.Scheme.Nvp (Workbench.sense_app ())
        in
        let o =
          M.run ~board ~image ~meta
            {
              M.default_options with
              schedule;
              limit = M.Sim_time total;
              restart_on_halt = true;
              timeline_bucket = Some (seg /. 4.);
              max_sim_time = total +. 1.;
            }
        in
        let base =
          M.forward_progress
            (Workbench.run_nvp_progress ~board ~schedule:Schedule.empty
               ~duration:(seg *. 2.))
        in
        (o, base))
      configs
  in
  List.iter2
    (fun (name, _choice) (o, base) ->
      (match o.M.timeline with
      | Some tl ->
          let pts =
            Array.to_list
              (Array.mapi
                 (fun i v ->
                   let r = v /. tl.M.bucket /. Float.max base 1e-9 in
                   (float_of_int i *. tl.M.bucket, Float.min 1.0 r))
                 tl.M.app_seconds_per_bucket)
          in
          let pts =
            List.filter (fun (t, _) -> t < total) pts
          in
          Buffer.add_string buf
            (U.Chart.line_plot ~height:8 ~y_min:0. ~y_max:1.
               ~title:(Printf.sprintf "(%s-based monitor)" name)
               ~x_label:"time (s)" ~y_label:"R"
               [ { U.Chart.label = "forward progress"; points = pts } ])
      | None -> ());
      Buffer.add_char buf '\n')
    configs results;
  { text = Buffer.contents buf; metrics = [] }

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let checkpoint_failure_rate_at ~device freq duration =
  (* Outage-prone supply plus the resonant attack: spurious wake-ups in
     the V_fail window race the checkpoint ISR against the brownout. *)
  let harvester =
    Gecko_energy.Harvester.square_wave ~period:0.08 ~duty:0.2
      (Gecko_energy.Harvester.thevenin ~v_source:3.3 ~r_source:150.)
  in
  let board =
    { (attack_board device Device.Use_adc) with Board.harvester }
  in
  let image, meta = Workbench.compiled Core.Scheme.Nvp (Workbench.sense_app ()) in
  let o =
    M.run ~board ~image ~meta
      {
        M.default_options with
        schedule = Schedule.always (remote_signal freq);
        limit = M.Sim_time duration;
        restart_on_halt = true;
        max_sim_time = duration +. 1.;
      }
  in
  M.checkpoint_failure_rate o

let table1 fidelity =
  let duration = sweep_duration fidelity *. 10. in
  let t =
    U.Table.create
      ~title:
        "Table I — EMI attack results on real-world energy-harvesting MCUs"
      ~header:
        [ "Model"; "Monitor"; "ADC-Rmin / freq"; "Comp-Rmin / freq";
          "ADC-Fmax / freq" ]
      ()
  in
  let ms = ref [] in
  (* The device loop stays serial — [sweep] already fans each frequency
     grid out over the pool, and pool tasks must not nest.  The
     checkpoint-failure runs depend on the per-device resonant
     frequency, so they form a second pooled stage. *)
  let per_device =
    List.map
      (fun d ->
        let adc_points =
          sweep ~board:(attack_board d Device.Use_adc) ~fidelity
            ~make_attack:remote_signal
        in
        let fmin, rmin = min_point ~profile:d.Device.adc_profile adc_points in
        let comp_cell =
          if Device.has_comparator d then begin
            let pts =
              sweep ~board:(attack_board d Device.Use_comparator) ~fidelity
                ~make_attack:remote_signal
            in
            let f, r =
              match d.Device.comp_profile with
              | Some p -> min_point ~profile:p pts
              | None -> min_point pts
            in
            Printf.sprintf "%.1e%% / %.0fMHz" (100. *. r) f
          end
          else "N/A"
        in
        (d, fmin, rmin, comp_cell))
      Catalog.all
  in
  let fails =
    Workbench.pmap
      (fun (d, fmin, _, _) -> checkpoint_failure_rate_at ~device:d fmin duration)
      per_device
  in
  List.iter2
    (fun (d, fmin, rmin, comp_cell) fail ->
      let key = slug d.Device.model in
      ms :=
        (key ^ ".fmax", fail)
        :: (key ^ ".fmin_mhz", fmin)
        :: (key ^ ".rmin", rmin)
        :: !ms;
      U.Table.add_row t
        [
          d.Device.model;
          (if Device.has_comparator d then "ADC & Comp." else "ADC");
          Printf.sprintf "%.1f%% / %.0fMHz" (100. *. rmin) fmin;
          comp_cell;
          Printf.sprintf "%.0f%% / %.0fMHz" (100. *. fail) fmin;
        ])
    per_device fails;
  { text = U.Table.render t; metrics = List.rev !ms }

let table2 () =
  let t =
    U.Table.create
      ~title:"Table II — Prior EMI-mitigation solutions vs GECKO"
      ~header:
        [ "Prior work"; "Target"; "HW/SW"; "Energy eff."; "PF recovery";
          "Intermittent-ready" ]
      ()
  in
  List.iter (U.Table.add_row t)
    [
      [ "Ghost Talk"; "Microphones"; "Hybrid"; "Low"; "No"; "N/A" ];
      [ "Rocking Drones"; "Drones"; "Hybrid"; "Low"; "No"; "N/A" ];
      [ "Trick or Heat"; "Incubators"; "Hardware"; "Low"; "No"; "N/A" ];
      [ "SoK"; "Analog sensors"; "Hybrid"; "Low"; "No"; "N/A" ];
      [ "Detection of EMI"; "Temp. sensors, mics"; "Software"; "High"; "No"; "N/A" ];
      [ "Transduction Shield"; "Pressure sensors, mics"; "Hybrid"; "Low"; "No"; "N/A" ];
      [ "Detection of Weak EMI"; "IIoT sensors"; "Software"; "Low"; "No"; "N/A" ];
      [ "GECKO"; "Voltage monitor"; "Software"; "High"; "Yes"; "Applicable" ];
    ];
  { text = U.Table.render t; metrics = [] }

(* ------------------------------------------------------------------ *)
(* Figures 11, 12, 14; Table III                                       *)
(* ------------------------------------------------------------------ *)

let workload_cycles scheme name ~board ~options =
  let w = W.find name in
  let image, meta = Workbench.compiled scheme (w.W.build ()) in
  let o = M.run ~board ~image ~meta options in
  (o, image, meta)

let fig11_overhead_no_outage _fidelity =
  let board = Board.default () in
  (* One pool task per workload; each task runs its four scheme variants
     back to back so the NVP baseline stays local to the closure. *)
  let rows =
    Workbench.pmap
      (fun name ->
        let cycles scheme =
          let o, _, _ = workload_cycles scheme name ~board ~options:M.default_options in
          float_of_int (o.M.app_cycles + o.M.instrumentation_cycles)
        in
        let nvp = cycles Core.Scheme.Nvp in
        let vals =
          List.map
            (fun s -> cycles s /. nvp)
            [ Core.Scheme.Ratchet; Core.Scheme.Gecko_noprune; Core.Scheme.Gecko ]
        in
        (name, vals))
      W.names
  in
  let avgs = List.map snd rows in
  let geo i =
    U.Stats.geomean (List.map (fun vs -> List.nth vs i) avgs)
  in
  let chart =
    U.Chart.grouped_bars
      ~title:
        "Fig. 11 — Normalized execution time (no power outage; baseline = \
         NVP = 1.0)"
      ~group_labels:[ "Ratchet"; "GECKO w/o pruning"; "GECKO" ]
      (rows @ [ ("geomean", [ geo 0; geo 1; geo 2 ]) ])
  in
  {
    text =
      chart
      ^ Printf.sprintf
          "\nAverage overhead vs NVP: Ratchet %+.0f%%, GECKO w/o pruning \
           %+.0f%%, GECKO %+.0f%%\n"
          (100. *. (geo 0 -. 1.))
          (100. *. (geo 1 -. 1.))
          (100. *. (geo 2 -. 1.));
    metrics =
      [
        ("ratchet.geomean", geo 0);
        ("gecko_noprune.geomean", geo 1);
        ("gecko.geomean", geo 2);
      ];
  }

let fig12_checkpoint_reduction _fidelity =
  let t =
    U.Table.create
      ~title:
        "Fig. 12 — Checkpoint reduction (candidate stores vs emitted after \
         pruning)"
      ~header:[ "workload"; "candidates"; "emitted"; "removed"; "reduction" ]
      ()
  in
  let stats =
    Workbench.pmap
      (fun name ->
        let w = W.find name in
        let _, meta = Workbench.compiled Core.Scheme.Gecko (w.W.build ()) in
        meta.Core.Meta.stats)
      W.names
  in
  let tot_c = ref 0 and tot_k = ref 0 in
  List.iter2
    (fun name s ->
      tot_c := !tot_c + s.Core.Meta.candidates;
      tot_k := !tot_k + s.Core.Meta.kept;
      U.Table.add_row t
        [
          name;
          string_of_int s.Core.Meta.candidates;
          string_of_int s.Core.Meta.kept;
          string_of_int (s.Core.Meta.candidates - s.Core.Meta.kept);
          U.Table.cell_pct
            (float_of_int (s.Core.Meta.candidates - s.Core.Meta.kept)
            /. float_of_int (max 1 s.Core.Meta.candidates));
        ])
    W.names stats;
  U.Table.add_sep t;
  U.Table.add_row t
    [
      "total";
      string_of_int !tot_c;
      string_of_int !tot_k;
      string_of_int (!tot_c - !tot_k);
      U.Table.cell_pct
        (float_of_int (!tot_c - !tot_k) /. float_of_int (max 1 !tot_c));
    ];
  {
    text = U.Table.render t;
    metrics =
      [
        ("candidates", float_of_int !tot_c);
        ("emitted", float_of_int !tot_k);
        ( "reduction",
          float_of_int (!tot_c - !tot_k) /. float_of_int (max 1 !tot_c) );
      ];
  }

let table3_checkpoint_stores _fidelity =
  let t =
    U.Table.create
      ~title:
        "Table III — Checkpoint stores generated by GECKO per application"
      ~header:[ "app"; "# ckpt stores"; "recovery blocks"; "avg slice len" ]
      ()
  in
  let per_app =
    Workbench.pmap
      (fun name ->
        let w = W.find name in
        let p, meta = Core.Pipeline.compile Core.Scheme.Gecko (w.W.build ()) in
        (Core.Pipeline.checkpoint_store_count p, meta.Core.Meta.stats))
      W.names
  in
  let counts = ref [] in
  List.iter2
    (fun name (n, s) ->
      counts := float_of_int n :: !counts;
      U.Table.add_row t
        [
          name;
          string_of_int n;
          string_of_int s.Core.Meta.recovery_blocks;
          (if s.Core.Meta.recovery_blocks = 0 then "-"
           else
             Printf.sprintf "%.1f"
               (float_of_int s.Core.Meta.recovery_instrs
               /. float_of_int s.Core.Meta.recovery_blocks));
        ])
    W.names per_app;
  U.Table.add_sep t;
  U.Table.add_row t
    [ "avg"; Printf.sprintf "%.0f" (U.Stats.mean !counts); ""; "" ];
  {
    text = U.Table.render t;
    metrics = [ ("avg_ckpt_stores", U.Stats.mean !counts) ];
  }

let fig14_harvesting_overhead fidelity =
  let completions = match fidelity with Quick -> 2 | Full -> 5 in
  let harvester =
    Gecko_energy.Harvester.rf_ambient ~seed:99 ~mean_power:3.2e-3 ~flicker:0.5
  in
  let board =
    { (Board.default ~harvester ()) with Board.capacitance = 47e-6 }
  in
  let opts =
    {
      M.default_options with
      limit = M.Completions completions;
      restart_on_halt = true;
      max_sim_time = 600.;
    }
  in
  let rows =
    Workbench.pmap
      (fun name ->
        let time scheme =
          let o, _, _ = workload_cycles scheme name ~board ~options:opts in
          o.M.sim_time
        in
        let nvp = time Core.Scheme.Nvp in
        ( name,
          List.map
            (fun s -> time s /. nvp)
            [ Core.Scheme.Ratchet; Core.Scheme.Gecko ] ))
      W.names
  in
  let geo i = U.Stats.geomean (List.map (fun (_, vs) -> List.nth vs i) rows) in
  {
    text =
      U.Chart.grouped_bars
        ~title:
          "Fig. 14 — Normalized execution time in an RF energy-harvesting \
           environment (Powercast-style source; baseline = NVP)"
        ~group_labels:[ "Ratchet"; "GECKO" ]
        (rows @ [ ("geomean", [ geo 0; geo 1 ]) ]);
    metrics = [ ("ratchet.geomean", geo 0); ("gecko.geomean", geo 1) ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 13: attack scenarios                                         *)
(* ------------------------------------------------------------------ *)

let fig13_attack_scenarios fidelity =
  let minute = match fidelity with Quick -> 0.05 | Full -> 0.2 in
  let total_minutes = 50 in
  let scenarios =
    [ ("(a) no attack", []);
      ("(b) attack at 40min", [ 40 ]);
      ("(c) attack at 30min", [ 30 ]);
      ("(d) attacks at 20, 40min", [ 20; 40 ]);
      ("(e) attacks at 15, 30, 35min", [ 15; 30; 35 ]);
      ("(f) attacks at 10, 25, 40min", [ 10; 25; 40 ]) ]
  in
  let attack_len = 5 in
  let harvester =
    Gecko_energy.Harvester.square_wave ~period:(4. *. minute) ~duty:0.5
      (Gecko_energy.Harvester.thevenin ~v_source:3.3 ~r_source:120.)
  in
  let board =
    { (Board.attack_rig ~device:Catalog.msp430fr5994 ()) with
      Board.harvester }
  in
  let run scheme schedule =
    let image, meta = Workbench.compiled scheme (Workbench.sense_app ()) in
    let total = float_of_int total_minutes *. minute in
    M.run ~board ~image ~meta
      {
        M.default_options with
        schedule;
        limit = M.Sim_time total;
        restart_on_halt = true;
        timeline_bucket = Some minute;
        max_sim_time = total +. 1.;
      }
  in
  let base_o = run Core.Scheme.Nvp Schedule.empty in
  let base_rate =
    float_of_int base_o.M.completions /. float_of_int total_minutes
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fig. 13 — Attack detection and recovery (compressed timeline: 1 \
        paper-minute = %.2f s sim; attack = 27 MHz remote; 0%% = denial of \
        service; baseline = NVP without attack)\n\n"
       minute);
  let ms = ref [] in
  let schemes = [ Core.Scheme.Nvp; Core.Scheme.Ratchet; Core.Scheme.Gecko ] in
  let schedule_of minutes =
    Schedule.make
      (List.map
         (fun m ->
           Schedule.window
             ~t_start:(float_of_int m *. minute)
             ~t_end:(float_of_int (m + attack_len) *. minute)
             (Attack.remote ~distance_m:0.3
                (Signal.make ~freq_mhz:27. ~power_dbm:35.)))
         minutes)
  in
  (* All scenario x scheme runs as one flat pool batch (18 tasks); the
     per-scenario charts are regrouped from the ordered results. *)
  let outs =
    Array.of_list
      (Workbench.pmap
         (fun (minutes, scheme) -> run scheme (schedule_of minutes))
         (List.concat_map
            (fun (_, minutes) -> List.map (fun s -> (minutes, s)) schemes)
            scenarios))
  in
  let nschemes = List.length schemes in
  List.iteri
    (fun si (name, _minutes) ->
      let scen = String.sub name 1 1 in
      let series =
        List.mapi
          (fun ki scheme ->
            let o = outs.((si * nschemes) + ki) in
            let pts =
              match o.M.timeline with
              | Some tl ->
                  List.init total_minutes (fun i ->
                      ( float_of_int i,
                        Float.min 1.2
                          (float_of_int tl.M.completions_per_bucket.(i)
                          /. Float.max base_rate 1e-9) ))
              | None -> []
            in
            ( Core.Scheme.to_string scheme,
              o,
              { U.Chart.label = Core.Scheme.to_string scheme; points = pts } ))
          [ Core.Scheme.Nvp; Core.Scheme.Ratchet; Core.Scheme.Gecko ]
      in
      Buffer.add_string buf
        (U.Chart.line_plot ~height:9 ~y_min:0. ~y_max:1.2 ~title:name
           ~x_label:"minute" ~y_label:"throughput"
           (List.map (fun (_, _, s) -> s) series));
      List.iter
        (fun (nm, (o : M.outcome), _) ->
          let throughput =
            float_of_int o.M.completions
            /. (base_rate *. float_of_int total_minutes)
          in
          let key = Printf.sprintf "%s.%s" scen (slug nm) in
          ms :=
            (key ^ ".detections", float_of_int o.M.detections)
            :: (key ^ ".throughput", throughput)
            :: !ms;
          Buffer.add_string buf
            (Printf.sprintf
               "  %-18s total throughput %5.1f%%  detections=%d reenables=%d\n"
               nm (100. *. throughput) o.M.detections o.M.reenables))
        series;
      Buffer.add_char buf '\n')
    scenarios;
  { text = Buffer.contents buf; metrics = List.rev !ms }

(* ------------------------------------------------------------------ *)
(* Figure 15: capacitor sweep                                          *)
(* ------------------------------------------------------------------ *)

let fig15_capacitor_sweep fidelity =
  let completions = match fidelity with Quick -> 2 | Full -> 4 in
  let harvester =
    Gecko_energy.Harvester.thevenin ~v_source:3.25 ~r_source:40.
  in
  let sizes = [ 1e-3; 2e-3; 5e-3; 10e-3 ] in
  let t =
    U.Table.create
      ~title:
        "Fig. 15 — Total execution time vs capacitor size (equal buffered \
         energy; RC charging makes larger capacitors slower to refill)"
      ~header:[ "capacitor"; "NVP (s)"; "GECKO (s)"; "GECKO/NVP" ]
      ()
  in
  let ms = ref [] in
  (* Capacitor size x scheme, one pooled task per cell. *)
  let cells =
    List.concat_map
      (fun c -> List.map (fun s -> (c, s)) [ Core.Scheme.Nvp; Core.Scheme.Gecko ])
      sizes
  in
  let times =
    Array.of_list
      (Workbench.pmap
         (fun (c, scheme) ->
           let board = Board.with_capacitance (Board.default ~harvester ()) c in
           let image, meta = Workbench.compiled scheme (Workbench.sense_app ()) in
           let o =
             M.run ~board ~image ~meta
               {
                 M.default_options with
                 limit = M.Completions completions;
                 restart_on_halt = true;
                 start_charged = false;
                 max_sim_time = 3600.;
               }
           in
           o.M.sim_time)
         cells)
  in
  List.iteri
    (fun ci c ->
      let nvp = times.(2 * ci) and gecko = times.((2 * ci) + 1) in
      ms :=
        (Printf.sprintf "cap_%.0fmf.gecko_over_nvp" (c *. 1e3), gecko /. nvp)
        :: !ms;
      U.Table.add_row t
        [
          Printf.sprintf "%.0f mF" (c *. 1e3);
          Printf.sprintf "%.2f" nvp;
          Printf.sprintf "%.2f" gecko;
          Printf.sprintf "%.2f" (gecko /. nvp);
        ])
    sizes;
  { text = U.Table.render t; metrics = List.rev !ms }

(* Ablation: the two pruning mechanisms contribute independently. *)
let ablation _fidelity =
  let board = Board.default () in
  let t =
    U.Table.create
      ~title:
        "Ablation — GECKO overhead vs NVP with each pruning mechanism \
         disabled (geomean over the suite)"
      ~header:
        [ "configuration"; "overhead vs NVP"; "checkpoint stores (total)" ]
      ()
  in
  let nvp_cycles =
    Workbench.pmap
      (fun wname ->
        let w = W.find wname in
        let image, meta = Workbench.compiled Core.Scheme.Nvp (w.W.build ()) in
        let o = M.run ~board ~image ~meta M.default_options in
        (wname, float_of_int (o.M.app_cycles + o.M.instrumentation_cycles)))
      W.names
  in
  let ms = ref [] in
  let row name ~slices ~reuse =
    let per_wl =
      Workbench.pmap
        (fun (wname, nvp) ->
          let w = W.find wname in
          let p, meta =
            Core.Pipeline.compile ~prune_slices:slices ~prune_reuse:reuse
              Core.Scheme.Gecko (w.W.build ())
          in
          let image = Gecko_isa.Link.link p in
          let o = M.run ~board ~image ~meta M.default_options in
          let ov =
            float_of_int (o.M.app_cycles + o.M.instrumentation_cycles) /. nvp
          in
          (ov, Core.Pipeline.checkpoint_store_count p))
        nvp_cycles
    in
    let overheads = List.map fst per_wl in
    let stores = List.fold_left (fun acc (_, s) -> acc + s) 0 per_wl in
    let ov = U.Stats.geomean overheads -. 1. in
    U.Table.add_row t
      [
        name;
        Printf.sprintf "%+.1f%%" (100. *. ov);
        string_of_int stores;
      ];
    ov
  in
  let full = row "full GECKO (slices + reuse)" ~slices:true ~reuse:true in
  let slices = row "slices only" ~slices:true ~reuse:false in
  let reuse = row "reuse only" ~slices:false ~reuse:true in
  let none = row "no pruning" ~slices:false ~reuse:false in
  ms :=
    [
      ("full.overhead", full);
      ("slices_only.overhead", slices);
      ("reuse_only.overhead", reuse);
      ("no_pruning.overhead", none);
    ];
  { text = U.Table.render t; metrics = !ms }

(* Region-budget sensitivity: the WCET splitter's charge-cycle budget is
   a design knob — smaller budgets mean more regions, more commits, more
   checkpoint traffic. *)
let budget_sweep _fidelity =
  let board = Board.default () in
  let t =
    U.Table.create
      ~title:
        "Budget sweep — GECKO overhead vs the charge-cycle region budget \
         (geomean over the suite)"
      ~header:[ "budget (cycles)"; "overhead vs NVP"; "regions (total)" ]
      ()
  in
  let ms = ref [] in
  List.iter
    (fun budget ->
      let per_wl =
        Workbench.pmap
          (fun wname ->
            let w = W.find wname in
            let nvp_image, nvp_meta =
              Workbench.compiled Core.Scheme.Nvp (w.W.build ())
            in
            let nvp_o = M.run ~board ~image:nvp_image ~meta:nvp_meta M.default_options in
            let p, meta =
              Core.Pipeline.compile ~budget_cycles:budget Core.Scheme.Gecko
                (w.W.build ())
            in
            let o =
              M.run ~board ~image:(Gecko_isa.Link.link p) ~meta M.default_options
            in
            let ov =
              float_of_int (o.M.app_cycles + o.M.instrumentation_cycles)
              /. float_of_int (nvp_o.M.app_cycles + nvp_o.M.instrumentation_cycles)
            in
            (ov, meta.Core.Meta.stats.Core.Meta.boundaries))
          W.names
      in
      let overheads = List.map fst per_wl in
      let regions = List.fold_left (fun acc (_, r) -> acc + r) 0 per_wl in
      let ov = U.Stats.geomean overheads -. 1. in
      ms := (Printf.sprintf "budget_%d.overhead" budget, ov) :: !ms;
      U.Table.add_row t
        [
          string_of_int budget;
          Printf.sprintf "%+.1f%%" (100. *. ov);
          string_of_int regions;
        ])
    [ 80; 120; 250; 500; 2000 ];
  { text = U.Table.render t; metrics = List.rev !ms }

(* Soundness overhead: what may-alias soundness costs over the seed's
   optimistic (unsound) compiler, per workload, under no-attack constant
   power — and how much of it the precision ladder claws back.  Four
   pipeline modes run against the same NVP baseline:

   - [Legacy]: the seed's optimistic baseline (can be unsound);
   - [Sound]: syntactic may-alias domain (the historical sound default);
   - [Precise]: value-tracking alias domain, same cut discipline;
   - [Speculative]: optimistic checkpoint-slot reuse, with the
     unprovable window clobbers guarded at runtime.

   The HEADLINE metric ([<wl>.soundness_overhead_pct]) is the residual
   cost of the shipping sound configuration — Speculative — over
   Legacy; the syntactic and value-domain columns are kept as
   [<wl>.sound_overhead_pct] / [<wl>.precise_overhead_pct].  A negative
   value means the sound build ran FASTER than the optimistic one
   (boundary placement is budget-driven, so fewer/more WAR cuts move
   WCET split points and occasionally land a luckier checkpoint layout);
   negatives are flagged and counted ([negative_overheads]) rather than
   celebrated. *)
let soundness_overhead _fidelity =
  let board = Board.default () in
  let t =
    U.Table.create
      ~title:
        "Soundness overhead — GECKO overhead vs NVP per pipeline mode; \
         headline = speculative vs the seed's optimistic baseline (no \
         power outage)"
      ~header:
        [
          "workload"; "legacy"; "sound"; "precise"; "speculative";
          "headline";
        ]
      ()
  in
  let rows =
    Workbench.pmap
      (fun wname ->
        let w = W.find wname in
        let nvp_image, nvp_meta =
          Workbench.compiled Core.Scheme.Nvp (w.W.build ())
        in
        let nvp_o = M.run ~board ~image:nvp_image ~meta:nvp_meta M.default_options in
        let nvp =
          float_of_int (nvp_o.M.app_cycles + nvp_o.M.instrumentation_cycles)
        in
        let overhead_pct mode =
          let image, meta =
            Workbench.compiled ~mode Core.Scheme.Gecko (w.W.build ())
          in
          let o = M.run ~board ~image ~meta M.default_options in
          100.
          *. ((float_of_int (o.M.app_cycles + o.M.instrumentation_cycles)
               /. nvp)
             -. 1.)
        in
        ( wname,
          overhead_pct Core.Mode.Legacy,
          overhead_pct Core.Mode.Sound,
          overhead_pct Core.Mode.Precise,
          overhead_pct Core.Mode.Speculative ))
      W.names
  in
  (* Overhead-over-legacy in percentage points, and the matching
     slowdown ratio for geomeans. *)
  let pp over legacy = over -. legacy in
  let ratio over legacy = (1. +. (over /. 100.)) /. (1. +. (legacy /. 100.)) in
  let ms = ref [] in
  let negatives = ref 0 in
  List.iter
    (fun (wname, legacy, sound, precise, spec) ->
      let headline = pp spec legacy in
      if headline < 0. then incr negatives;
      ms :=
        (wname ^ ".precise_overhead_pct", pp precise legacy)
        :: (wname ^ ".sound_overhead_pct", pp sound legacy)
        :: (wname ^ ".soundness_overhead_pct", headline)
        :: !ms;
      U.Table.add_row t
        [
          wname;
          Printf.sprintf "%+.1f%%" legacy;
          Printf.sprintf "%+.1f%%" sound;
          Printf.sprintf "%+.1f%%" precise;
          Printf.sprintf "%+.1f%%" spec;
          Printf.sprintf "%+.1f pp%s" headline
            (if headline < 0. then " (!)" else "");
        ])
    rows;
  let geomean_pp sel =
    let ratios =
      List.map
        (fun (_, legacy, sound, precise, spec) ->
          ratio (sel (sound, precise, spec)) legacy)
        rows
    in
    100. *. (U.Stats.geomean ratios -. 1.)
  in
  let geo_sound = geomean_pp (fun (s, _, _) -> s) in
  let geo_precise = geomean_pp (fun (_, p, _) -> p) in
  let geo_spec = geomean_pp (fun (_, _, sp) -> sp) in
  ms :=
    ("negative_overheads", float_of_int !negatives)
    :: ("geomean.precise_overhead_pct", geo_precise)
    :: ("geomean.sound_overhead_pct", geo_sound)
    :: ("geomean.soundness_overhead_pct", geo_spec)
    :: !ms;
  {
    text =
      U.Table.render t
      ^ Printf.sprintf
          "Geomean slowdown over optimistic: sound %+.1f%%, precise \
           %+.1f%%, speculative %+.1f%% (headline)\n"
          geo_sound geo_precise geo_spec
      ^ (if !negatives > 0 then
           Printf.sprintf
             "(!) %d workload(s) ran FASTER sound than optimistic — a \
              budget-driven boundary-placement artifact, see \
              DESIGN.md.\n"
             !negatives
         else "");
    metrics = List.rev !ms;
  }

(* Detection latency: how quickly GECKO notices an attack that begins
   mid-run. *)
let detection_latency fidelity =
  let onset = 0.2 in
  let duration = match fidelity with Quick -> 0.5 | Full -> 1.0 in
  let image, meta = Workbench.compiled Core.Scheme.Gecko (Workbench.sense_app ()) in
  let t =
    U.Table.create
      ~title:
        "Detection latency — time from attack onset to GECKO's reactive \
         detection (sense app, 27 MHz / 5 MHz resonances)"
      ~header:[ "monitor"; "attack"; "latency" ]
      ()
  in
  let ms = ref [] in
  let configs =
    [ ("ADC", Device.Use_adc, 27.); ("comparator", Device.Use_comparator, 5.) ]
  in
  let outs =
    Workbench.pmap
      (fun (_label, choice, freq) ->
        let board = attack_board Catalog.msp430fr5994 choice in
        M.run ~board ~image ~meta
          {
            M.default_options with
            schedule =
              Schedule.make
                [
                  Schedule.window ~t_start:onset ~t_end:duration
                    (remote_signal freq);
                ];
            limit = M.Sim_time duration;
            restart_on_halt = true;
            record_events = true;
            max_sim_time = duration +. 1.;
          })
      configs
  in
  List.iter2
    (fun (label, _choice, freq) o ->
      let latency =
        List.find_map
          (fun (e : M.event) ->
            match e.M.ev_kind with
            | M.Ev_detection when e.M.ev_time >= onset ->
                Some (e.M.ev_time -. onset)
            | _ -> None)
          o.M.events
      in
      (match latency with
      | Some l -> ms := (slug label ^ ".latency_s", l) :: !ms
      | None -> ());
      U.Table.add_row t
        [
          label;
          Printf.sprintf "%.0f MHz" freq;
          (match latency with
          | Some l -> Printf.sprintf "%.2f ms" (l *. 1e3)
          | None -> "not detected");
        ])
    configs outs;
  { text = U.Table.render t; metrics = List.rev !ms }

let artifacts =
  [
    ("fig4", fig4_dpi_sweep);
    ("fig5", fig5_remote_adc_sweep);
    ("fig7", fig7_remote_comparator_sweep);
    ("fig8", fig8_distance);
    ("fig9", fig9_realtime);
    ("table1", table1);
    ("table2", fun _ -> table2 ());
    ("fig11", fig11_overhead_no_outage);
    ("fig12", fig12_checkpoint_reduction);
    ("fig13", fig13_attack_scenarios);
    ("fig14", fig14_harvesting_overhead);
    ("fig15", fig15_capacitor_sweep);
    ("table3", table3_checkpoint_stores);
    ("ablation", ablation);
    ("budget-sweep", budget_sweep);
    ("soundness-overhead", soundness_overhead);
    ("detection-latency", detection_latency);
  ]

let all_artifacts fidelity =
  List.map (fun (name, f) -> (name, f fidelity)) artifacts

let all fidelity =
  List.map (fun (name, a) -> (name, a.text)) (all_artifacts fidelity)

open Gecko_isa
open Gecko_emi
module B = Builder
module M = Gecko_machine.Machine
module Board = Gecko_machine.Board
module Core = Gecko_core

let sense_app () =
  let b = B.program "sense_app" in
  let buf = B.space b "buf" ~words:16 () in
  let stats = B.space b "stats" ~words:2 () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r0 0;
  B.li b Reg.r3 0;
  B.block b "loop" ~loop_bound:4;
  (* Burst-sample four readings, then filter and store them. *)
  for _ = 1 to 4 do
    B.io_in b Reg.r1 0;
    B.bin b Instr.And Reg.r1 Reg.r1 (B.imm 1023);
    B.bin b Instr.Mul Reg.r2 Reg.r1 (B.imm 3);
    B.bin b Instr.Shr Reg.r2 Reg.r2 (B.imm 2);
    B.bin b Instr.Add Reg.r3 Reg.r3 (B.reg Reg.r2);
    B.st b (B.idx buf Reg.r0) Reg.r2;
    B.add b Reg.r0 Reg.r0 (B.imm 1)
  done;
  B.bin b Instr.Slt Reg.r4 Reg.r0 (B.imm 16);
  B.br b Instr.Nz Reg.r4 "loop" "report";
  B.block b "report";
  B.st b (B.at stats 0) Reg.r3;
  B.io_out b 1 Reg.r3;
  B.halt b;
  B.finish b

(* The memo table is shared by the worker domains of the experiment
   pool — and, since the fleet simulator shards also compile through
   here, by every fleet campaign shard — so every lookup and insert
   holds [cache_mutex].  Compilation itself also runs under the lock: it
   is cheap next to simulation, it is deterministic, and holding the
   lock keeps two workers from compiling the same program twice (the
   loser of the race counts a hit, so miss totals equal the number of
   distinct keys regardless of pool size). *)
let cache :
    (string * Core.Scheme.t * Core.Mode.t, Link.image * Core.Meta.t) Hashtbl.t =
  Hashtbl.create 16

let cache_mutex = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0

let compiled ?(mode = Core.Mode.default) scheme (prog : Cfg.program) =
  let key = (prog.Cfg.pname, scheme, mode) in
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt cache key with
      | Some v ->
          incr cache_hits;
          v
      | None ->
          incr cache_misses;
          let p, meta = Core.Pipeline.compile ~mode scheme prog in
          (* Speculative metas carry guards; linking them into the image
             is what arms the runtime undo-log protocol. *)
          let v = (Link.link ~guards:meta.Core.Meta.guards p, meta) in
          Hashtbl.replace cache key v;
          v)

let cache_counts () =
  Mutex.protect cache_mutex (fun () -> (!cache_hits, !cache_misses))

(* Decoded-stream cache, beside the compile cache.  [Decode.decode] is
   O(code size) and depends only on the image and the device's
   timing/energy constants, so it is keyed by (program, scheme, device
   model); the machine validates provenance by physical equality on the
   image, which is stable here because [compiled] memoizes the link.
   Shares [cache_mutex]: both caches are touched at run setup, never in
   the hot loop. *)
let decode_cache :
    ( string * Core.Scheme.t * Core.Mode.t * string,
      Gecko_machine.Decode.t )
    Hashtbl.t =
  Hashtbl.create 16

let decode_hits = ref 0
let decode_misses = ref 0

let decoded ?(mode = Core.Mode.default) scheme (prog : Cfg.program)
    ~(board : Board.t) =
  let image, meta = compiled ~mode scheme prog in
  let device = board.Board.device in
  let key = (prog.Cfg.pname, scheme, mode, device.Gecko_devices.Device.model) in
  let dec =
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt decode_cache key with
        | Some d ->
            incr decode_hits;
            d
        | None ->
            incr decode_misses;
            let d = Gecko_machine.Decode.decode ~device image in
            Hashtbl.replace decode_cache key d;
            d)
  in
  (image, meta, dec)

let decode_counts () =
  Mutex.protect cache_mutex (fun () -> (!decode_hits, !decode_misses))

(* Workload CFG builds are deterministic and keyed by catalogue name, so
   a fleet shard that elaborates thousands of devices re-runs each
   builder once per process instead of once per device.  Shares
   [cache_mutex] with the compile/decode caches for the same reason they
   do: touched at run setup only. *)
let workload_cache : (string, Gecko_isa.Cfg.program) Hashtbl.t =
  Hashtbl.create 16

let workload_program name =
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt workload_cache name with
      | Some p -> p
      | None ->
          let p = (Gecko_workloads.Workload.find name).Gecko_workloads.Workload.build () in
          Hashtbl.replace workload_cache name p;
          p)

let decoded_workload ?mode scheme name ~board =
  decoded ?mode scheme (workload_program name) ~board

let record_cache_metrics reg =
  let hits, misses = cache_counts () in
  let module Mx = Gecko_obs.Metrics in
  let set name v =
    let c = Mx.counter reg name in
    Mx.incr ~by:(v - Mx.counter_value c) c
  in
  set "workbench.compile_cache_hits" hits;
  set "workbench.compile_cache_misses" misses;
  let dhits, dmisses = decode_counts () in
  set "workbench.decode_cache_hits" dhits;
  set "workbench.decode_cache_misses" dmisses

(* --- experiment pool -------------------------------------------------- *)

(* The pool and its setting are only touched from the coordinating
   domain (experiments hand closures to the pool; they never call
   [pmap] from inside a task), so plain refs suffice. *)
let requested_jobs : int option ref = ref None
let current_pool : Gecko_util.Pool.t option ref = ref None

let jobs () =
  match !requested_jobs with
  | Some n -> n
  | None -> Gecko_util.Pool.default_jobs ()

let set_jobs n =
  if n < 1 then invalid_arg "Workbench.set_jobs: jobs must be >= 1";
  (match !current_pool with
  | Some p when Gecko_util.Pool.jobs p <> n ->
      Gecko_util.Pool.shutdown p;
      current_pool := None
  | Some _ | None -> ());
  requested_jobs := Some n

let pool () =
  match !current_pool with
  | Some p -> p
  | None ->
      let p = Gecko_util.Pool.create ~jobs:(jobs ()) () in
      current_pool := Some p;
      p

let pmap f xs = Gecko_util.Pool.map (pool ()) f xs

let run_nvp_progress ~board ~schedule ~duration =
  let image, meta = compiled Core.Scheme.Nvp (sense_app ()) in
  M.run ~board ~image ~meta
    {
      M.default_options with
      schedule;
      limit = M.Sim_time duration;
      restart_on_halt = true;
      max_sim_time = duration +. 1.;
    }

let progress_rate ~board ~attack ~duration =
  let schedule =
    match attack with Some a -> Schedule.always a | None -> Schedule.empty
  in
  let o = run_nvp_progress ~board ~schedule ~duration in
  let r = M.forward_progress o in
  let baseline =
    M.forward_progress (run_nvp_progress ~board ~schedule:Schedule.empty ~duration)
  in
  if baseline <= 0. then 0. else min 1.0 (r /. baseline)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let reseed t seed = t.state <- Int64.of_int seed

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* SplitMix64 finalizer. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix (next_seed t)

let split t = { state = bits64 t }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value is non-negative as a native OCaml int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits scaled to [0,1). *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

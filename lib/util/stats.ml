let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
      let logs = List.map log xs in
      exp (mean logs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
      sqrt var

let minimum = function
  | [] -> 0.
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> 0.
  | x :: xs -> List.fold_left max x xs

let percentile p xs =
  match xs with
  | [] -> 0.
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then a.(lo)
      else
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median xs = percentile 50. xs

let normalize_to base xs = List.map (fun x -> x /. base) xs

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    max = maximum xs;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.median s.max

(* --- mergeable streaming accumulator ---------------------------------- *)

module Acc = struct
  type t = {
    n : int;
    sum : float;
    sumsq : float;
    min_v : float;  (* +inf when empty, so Float.min is the merge *)
    max_v : float;  (* -inf when empty *)
  }

  let empty = { n = 0; sum = 0.; sumsq = 0.; min_v = infinity; max_v = neg_infinity }

  let is_empty t = t.n = 0

  let add t x =
    {
      n = t.n + 1;
      sum = t.sum +. x;
      sumsq = t.sumsq +. (x *. x);
      min_v = Float.min t.min_v x;
      max_v = Float.max t.max_v x;
    }

  let of_list xs = List.fold_left add empty xs

  let merge a b =
    {
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      sumsq = a.sumsq +. b.sumsq;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }

  let count t = t.n
  let total t = t.sum
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

  let stddev t =
    if t.n < 2 then 0.
    else
      let m = mean t in
      (* Population variance from the running moments; clamp the tiny
         negative values cancellation can produce. *)
      sqrt (Float.max 0. ((t.sumsq /. float_of_int t.n) -. (m *. m)))

  let minimum t = if t.n = 0 then 0. else t.min_v
  let maximum t = if t.n = 0 then 0. else t.max_v
end

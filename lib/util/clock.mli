(** Process wall clock for throughput reporting, guaranteed monotone.

    [Unix.gettimeofday] can step backwards (NTP slew, manual clock
    changes), which turns [t1 -. t0] elapsed-time arithmetic into
    negative "wall" times and negative derived rates.  This module is
    the single clock every wall-time measurement goes through:

    - the default source is [Unix.gettimeofday] clamped to be
      non-decreasing within the process, so elapsed times are >= 0 even
      across a clock step;
    - a harness with access to a true monotonic clock (the bench links
      bechamel's [CLOCK_MONOTONIC] binding) installs it once via
      {!set_source}, after which every measurement in the process is
      genuinely step-free.

    Readings are seconds since an arbitrary per-process epoch: only
    differences are meaningful. *)

val now : unit -> float
(** Current reading of the installed source, clamped so consecutive
    calls never decrease. *)

val elapsed : float -> float
(** [elapsed t0] is [max 0. (now () -. t0)]. *)

val set_source : (unit -> float) -> unit
(** Replace the clock source (e.g. with a [CLOCK_MONOTONIC] reader).
    The non-decreasing clamp still applies across the switch. *)

let source = ref Unix.gettimeofday

(* Benign race under domains: a stale [last] only weakens the clamp to
   what a per-domain clamp would give; readings still never decrease
   relative to what the same domain saw. *)
let last = ref neg_infinity

let now () =
  let t = !source () in
  let t = if t > !last then t else !last in
  last := t;
  t

let elapsed t0 = Float.max 0. (now () -. t0)

let set_source f = source := f

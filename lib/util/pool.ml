type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* queue became non-empty, a task finished, or shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let default_jobs () =
  match Sys.getenv_opt "GECKO_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if t.closed then None
    else if Queue.is_empty t.queue then begin
      Condition.wait t.work t.mutex;
      next ()
    end
    else Some (Queue.pop t.queue)
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker_loop t

let create ?jobs () =
  let size = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      workers = [];
      closed = false;
    }
  in
  t.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  List.iter Domain.join ws

(* Tasks never raise: each wraps its own result.  Completion is counted
   under the pool mutex so the caller can sleep on [work] until the last
   task of its batch lands. *)
let map t f xs =
  if t.size <= 1 || t.closed then List.map f xs
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | xs ->
        let items = Array.of_list xs in
        let n = Array.length items in
        let results = Array.make n None in
        let left = ref n in
        let task i () =
          let r =
            match f items.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock t.mutex;
          results.(i) <- Some r;
          decr left;
          if !left = 0 then Condition.broadcast t.work;
          Mutex.unlock t.mutex
        in
        Mutex.lock t.mutex;
        for i = 0 to n - 1 do
          Queue.add (task i) t.queue
        done;
        Condition.broadcast t.work;
        (* The caller works the queue too; when it drains (possibly into
           other domains' hands), sleep until the batch completes. *)
        let rec drive () =
          if !left > 0 then
            if Queue.is_empty t.queue then begin
              Condition.wait t.work t.mutex;
              drive ()
            end
            else begin
              let task = Queue.pop t.queue in
              Mutex.unlock t.mutex;
              task ();
              Mutex.lock t.mutex;
              drive ()
            end
        in
        drive ();
        Mutex.unlock t.mutex;
        (* Re-raise the first failure in input order, if any. *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) -> ()
            | None -> assert false)
          results;
        List.init n (fun i ->
            match results.(i) with
            | Some (Ok v) -> v
            | Some (Error _) | None -> assert false)

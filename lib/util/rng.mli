(** Deterministic splittable pseudo-random number generator.

    All stochastic parts of the simulator draw from this generator so that
    every experiment is reproducible from a seed.  The implementation is
    SplitMix64, which is small, fast and has good statistical quality for
    simulation purposes. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val reseed : t -> int -> unit
(** [reseed t seed] resets [t] in place to the state [create seed] would
    produce, without allocating.  Hot paths that need a fresh
    deterministic stream per draw (e.g. the machine's sensor input) keep
    one generator and reseed it instead of allocating per call. *)

val split : t -> t
(** [split t] derives an independent generator; [t] is advanced. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive; requires [lo <= hi]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

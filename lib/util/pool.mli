(** Fixed-size domain pool for embarrassingly parallel sweeps.

    Built on the stdlib multicore primitives ([Domain], [Mutex],
    [Condition]) only — no external dependency.  The experiment harness
    uses it to fan simulator runs out across cores: every sweep point is
    an independent, deterministic closure (each run is seeded
    explicitly), so execution order cannot affect results and {!map} can
    return them in input order.

    A pool of size [n] provides [n]-way parallelism: [n - 1] worker
    domains plus the calling domain, which executes queued tasks itself
    while it waits.  Size 1 spawns no domains at all and [map] degrades
    to [List.map] — the exact serial behaviour.

    Tasks must not themselves call {!map} on the same pool (the nested
    call could deadlock waiting on workers that are all busy with the
    outer map). *)

type t

val default_jobs : unit -> int
(** Pool size used when none is given: the [GECKO_JOBS] environment
    variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults
    to {!default_jobs}; values below 1 are clamped to 1). *)

val jobs : t -> int
(** The parallelism degree the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], running the
    applications on the pool, and returns the results in input order.
    If any application raises, the first exception (in input order) is
    re-raised in the caller with its backtrace — after all tasks of this
    call have finished, so no work is left running in the background. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  [map] on a shut-down
    pool runs serially. *)

(** Small statistics toolkit for experiment post-processing.

    Empty-input policy: every aggregate in this module is total and
    returns [0.] on the empty list — including {!percentile} and
    {!median}.  Experiment code folds over runs whose event lists may
    legitimately be empty (e.g. no rollbacks under no attack), and a
    uniform zero beats a raise deep inside a sweep. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val minimum : float list -> float
(** Smallest element; 0. on the empty list. *)

val maximum : float list -> float
(** Largest element; 0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation between
    order statistics.  0. on the empty list; the sole element on a
    singleton (for any [p]). *)

val median : float list -> float
(** [percentile 50.]; 0. on the empty list. *)

val normalize_to : float -> float list -> float list
(** [normalize_to base xs] divides every element by [base]. *)

val clamp : lo:float -> hi:float -> float -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary

val pp_summary : Format.formatter -> summary -> unit

(** Small statistics toolkit for experiment post-processing.

    Empty-input policy: every aggregate in this module is total and
    returns [0.] on the empty list — including {!percentile} and
    {!median}.  Experiment code folds over runs whose event lists may
    legitimately be empty (e.g. no rollbacks under no attack), and a
    uniform zero beats a raise deep inside a sweep. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val minimum : float list -> float
(** Smallest element; 0. on the empty list. *)

val maximum : float list -> float
(** Largest element; 0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation between
    order statistics.  0. on the empty list; the sole element on a
    singleton (for any [p]). *)

val median : float list -> float
(** [percentile 50.]; 0. on the empty list. *)

val normalize_to : float -> float list -> float list
(** [normalize_to base xs] divides every element by [base]. *)

val clamp : lo:float -> hi:float -> float -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary

val pp_summary : Format.formatter -> summary -> unit

(** Mergeable streaming summary: a commutative monoid over constant-space
    accumulators, so shards of a fleet campaign can aggregate locally and
    reduce at the end.  [merge] is exactly commutative; it is associative
    up to float-addition rounding in [sum]/[sumsq] (exact whenever the
    inputs are dyadic rationals of bounded magnitude, and count/min/max
    are always exact), so deterministic reductions fold shards in a fixed
    order.  Empty-input policy matches the rest of this module: the
    aggregates of {!Acc.empty} are [0.]. *)
module Acc : sig
  type t = {
    n : int;
    sum : float;
    sumsq : float;
    min_v : float;  (** [+inf] when empty. *)
    max_v : float;  (** [-inf] when empty. *)
  }

  val empty : t
  (** The identity of {!merge}. *)

  val is_empty : t -> bool
  val add : t -> float -> t
  val of_list : float list -> t

  val merge : t -> t -> t
  (** Combine two accumulators as if their observations were
      concatenated. *)

  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val stddev : t -> float
  (** Population standard deviation from the running moments; [0.] on
      fewer than two observations. *)

  val minimum : t -> float
  val maximum : t -> float
end

lib/isa/reg.mli: Format Map Set

lib/isa/cost.ml: Instr

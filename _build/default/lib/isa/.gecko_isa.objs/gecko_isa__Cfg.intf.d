lib/isa/cfg.mli: Format Hashtbl Instr

lib/isa/cost.mli: Instr

lib/isa/builder.ml: Array Cfg Instr List Printf

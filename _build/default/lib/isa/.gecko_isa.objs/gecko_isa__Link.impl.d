lib/isa/link.ml: Array Buffer Cfg Format Hashtbl Instr List Printf Reg

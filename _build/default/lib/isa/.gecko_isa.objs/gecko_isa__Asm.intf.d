lib/isa/asm.mli: Cfg

lib/isa/reg.ml: Format Int List Map Printf Set

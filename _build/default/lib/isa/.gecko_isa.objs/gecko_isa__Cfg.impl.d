lib/isa/cfg.ml: Format Hashtbl Instr List Printf

lib/isa/link.mli: Cfg Hashtbl Instr Reg

lib/isa/asm.ml: Array Buffer Cfg In_channel Instr List Option Printf Reg String

lib/isa/builder.mli: Cfg Instr Reg

(* Hand-rolled line-oriented assembler/disassembler for the ISA. *)

let binop_names =
  [
    (Instr.Add, "add"); (Instr.Sub, "sub"); (Instr.Mul, "mul");
    (Instr.Div, "div"); (Instr.Rem, "rem"); (Instr.And, "and");
    (Instr.Or, "or"); (Instr.Xor, "xor"); (Instr.Shl, "shl");
    (Instr.Shr, "shr"); (Instr.Sra, "sra"); (Instr.Slt, "slt");
    (Instr.Sle, "sle"); (Instr.Seq, "seq"); (Instr.Sne, "sne");
  ]

let cond_names =
  [
    (Instr.Z, "z"); (Instr.Nz, "nz"); (Instr.Ltz, "ltz");
    (Instr.Gez, "gez"); (Instr.Gtz, "gtz"); (Instr.Lez, "lez");
  ]

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let mref_str (m : Instr.mref) =
  match m.Instr.disp with
  | Instr.Dconst c -> Printf.sprintf "%s[%d]" m.Instr.space.Instr.space_name c
  | Instr.Dreg r -> Printf.sprintf "%s[%s]" m.Instr.space.Instr.space_name (Reg.to_string r)

let operand_str = function
  | Instr.Oreg r -> Reg.to_string r
  | Instr.Oimm i -> string_of_int i

let instr_str = function
  | Instr.Li (d, v) -> Printf.sprintf "li    %s, %d" (Reg.to_string d) v
  | Instr.Mov (d, s) ->
      Printf.sprintf "mov   %s, %s" (Reg.to_string d) (Reg.to_string s)
  | Instr.Bin (op, d, a, b) ->
      Printf.sprintf "%-5s %s, %s, %s" (List.assoc op binop_names)
        (Reg.to_string d) (Reg.to_string a) (operand_str b)
  | Instr.Ld (d, m) -> Printf.sprintf "ld    %s, %s" (Reg.to_string d) (mref_str m)
  | Instr.St (m, s) -> Printf.sprintf "st    %s, %s" (mref_str m) (Reg.to_string s)
  | Instr.In (d, p) -> Printf.sprintf "in    %s, port%d" (Reg.to_string d) p
  | Instr.Out (p, s) -> Printf.sprintf "out   port%d, %s" p (Reg.to_string s)
  | Instr.Nop -> "nop"
  | Instr.Ckpt (r, c) -> Printf.sprintf "ckpt  %s, %d" (Reg.to_string r) c
  | Instr.CkptDyn r -> Printf.sprintf "ckptd %s" (Reg.to_string r)
  | Instr.LdSlot (d, src, c) ->
      Printf.sprintf "ldslot %s, r%d, %d" (Reg.to_string d) src c
  | Instr.Boundary id -> Printf.sprintf "boundary %d" id

let term_str = function
  | Instr.Jmp l -> Printf.sprintf "jmp   %s" l
  | Instr.Br (c, r, t, e) ->
      Printf.sprintf "br.%-3s %s, %s, %s" (List.assoc c cond_names)
        (Reg.to_string r) t e
  | Instr.Call (f, ret) -> Printf.sprintf "call  %s, %s" f ret
  | Instr.Ret -> "ret"
  | Instr.Halt -> "halt"

let to_string (p : Cfg.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".program %s\n" p.Cfg.pname);
  List.iter
    (fun (s : Instr.space) ->
      let init =
        match List.assoc_opt s.Instr.space_id p.Cfg.init_data with
        | Some a when Array.length a > 0 ->
            " init "
            ^ String.concat " " (Array.to_list (Array.map string_of_int a))
        | Some _ | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf ".space %s %d%s\n" s.Instr.space_name
           s.Instr.space_words init))
    p.Cfg.spaces;
  List.iter
    (fun (f : Cfg.func) ->
      Buffer.add_string buf (Printf.sprintf "\n.func %s\n" f.Cfg.fname);
      List.iter
        (fun (b : Cfg.block) ->
          (match b.Cfg.loop_bound with
          | Some n -> Buffer.add_string buf (Printf.sprintf "%s [%d]:\n" b.Cfg.label n)
          | None -> Buffer.add_string buf (Printf.sprintf "%s:\n" b.Cfg.label));
          List.iter
            (fun i -> Buffer.add_string buf ("    " ^ instr_str i ^ "\n"))
            b.Cfg.instrs;
          Buffer.add_string buf ("    " ^ term_str b.Cfg.term ^ "\n"))
        f.Cfg.blocks)
    p.Cfg.funcs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let tokens s =
  String.split_on_char ' ' (String.map (function '\t' | ',' -> ' ' | c -> c) s)
  |> List.filter (fun t -> t <> "")

let parse_int line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "expected integer, got %S" s

let parse_reg line s =
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i when i >= 0 && i < Reg.count -> Reg.of_int i
    | Some _ | None -> fail line "bad register %S" s
  else fail line "expected register, got %S" s

let parse_operand line s =
  if String.length s >= 2 && s.[0] = 'r' && int_of_string_opt (String.sub s 1 (String.length s - 1)) <> None
  then Instr.Oreg (parse_reg line s)
  else Instr.Oimm (parse_int line s)

let parse_port line s =
  let prefix = "port" in
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    parse_int line (String.sub s pl (String.length s - pl))
  else fail line "expected portN, got %S" s

(* space[idx] *)
let parse_mref line spaces s =
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some l, Some r when r = String.length s - 1 && l > 0 ->
      let name = String.sub s 0 l in
      let idx = String.sub s (l + 1) (r - l - 1) in
      let space =
        match
          List.find_opt (fun (sp : Instr.space) -> sp.Instr.space_name = name) spaces
        with
        | Some sp -> sp
        | None -> fail line "unknown space %S" name
      in
      let disp =
        if String.length idx >= 2 && idx.[0] = 'r'
           && int_of_string_opt (String.sub idx 1 (String.length idx - 1)) <> None
        then Instr.Dreg (parse_reg line idx)
        else Instr.Dconst (parse_int line idx)
      in
      { Instr.space; disp }
  | _ -> fail line "expected space[index], got %S" s

type st = {
  mutable pname : string option;
  mutable spaces : Instr.space list; (* reversed *)
  mutable init_data : (int * int array) list;
  mutable funcs : Cfg.func list; (* reversed *)
  mutable cur_func : (string * Cfg.block list ref) option; (* blocks reversed *)
  mutable cur_label : (string * int option) option;
  mutable cur_instrs : Instr.t list; (* reversed *)
}

let close_block line st term =
  match st.cur_label with
  | None -> fail line "instruction outside a block"
  | Some (label, loop_bound) -> (
      match st.cur_func with
      | None -> fail line "block outside a function"
      | Some (_, blocks) ->
          blocks :=
            {
              Cfg.label;
              instrs = List.rev st.cur_instrs;
              term;
              loop_bound;
            }
            :: !blocks;
          st.cur_label <- None;
          st.cur_instrs <- [])

let close_func line st =
  (if st.cur_label <> None then fail line "unterminated block at end of function");
  match st.cur_func with
  | None -> ()
  | Some (fname, blocks) ->
      st.funcs <- { Cfg.fname; blocks = List.rev !blocks } :: st.funcs;
      st.cur_func <- None

let rev_find_map f l = List.find_map f l

let parse text =
  let st =
    {
      pname = None;
      spaces = [];
      init_data = [];
      funcs = [];
      cur_func = None;
      cur_label = None;
      cur_instrs = [];
    }
  in
  let next_space_id = ref 0 in
  try
    List.iteri
      (fun i raw ->
        let line = i + 1 in
        let s = String.trim (strip_comment raw) in
        if s = "" then ()
        else if String.length s > 0 && s.[0] = '.' then begin
          match tokens s with
          | [ ".program"; name ] -> st.pname <- Some name
          | ".space" :: name :: words :: rest ->
              let space =
                {
                  Instr.space_name = name;
                  space_id = !next_space_id;
                  space_words = parse_int line words;
                }
              in
              incr next_space_id;
              st.spaces <- space :: st.spaces;
              (match rest with
              | "init" :: vals ->
                  st.init_data <-
                    ( space.Instr.space_id,
                      Array.of_list (List.map (parse_int line) vals) )
                    :: st.init_data
              | [] -> ()
              | _ -> fail line "bad .space directive")
          | [ ".func"; name ] ->
              close_func line st;
              st.cur_func <- Some (name, ref [])
          | _ -> fail line "unknown directive %S" s
        end
        else if s.[String.length s - 1] = ':' then begin
          let head = String.sub s 0 (String.length s - 1) in
          (* Implicit fall-through: an unterminated block jumps to the
             new label, mirroring the builder's convenience. *)
          (match (st.cur_label, tokens head) with
          | Some _, (next :: _) -> close_block line st (Instr.Jmp next)
          | Some _, [] -> fail line "bad label %S" s
          | None, _ -> ());
          match tokens head with
          | [ label ] -> st.cur_label <- Some (label, None)
          | [ label; bound ]
            when String.length bound > 2
                 && bound.[0] = '['
                 && bound.[String.length bound - 1] = ']' ->
              let n =
                parse_int line (String.sub bound 1 (String.length bound - 2))
              in
              st.cur_label <- Some (label, Some n)
          | _ -> fail line "bad label %S" s
        end
        else begin
          let spaces = List.rev st.spaces in
          let emit ins = st.cur_instrs <- ins :: st.cur_instrs in
          match tokens s with
          | [ "li"; d; v ] -> emit (Instr.Li (parse_reg line d, parse_int line v))
          | [ "mov"; d; x ] -> emit (Instr.Mov (parse_reg line d, parse_reg line x))
          | [ op; d; a; b ]
            when rev_find_map
                   (fun (o, n) -> if n = op then Some o else None)
                   binop_names
                 <> None ->
              let o =
                Option.get
                  (rev_find_map
                     (fun (o, n) -> if n = op then Some o else None)
                     binop_names)
              in
              emit
                (Instr.Bin (o, parse_reg line d, parse_reg line a, parse_operand line b))
          | [ "ld"; d; m ] -> emit (Instr.Ld (parse_reg line d, parse_mref line spaces m))
          | [ "st"; m; x ] -> emit (Instr.St (parse_mref line spaces m, parse_reg line x))
          | [ "in"; d; p ] -> emit (Instr.In (parse_reg line d, parse_port line p))
          | [ "out"; p; x ] -> emit (Instr.Out (parse_port line p, parse_reg line x))
          | [ "nop" ] -> emit Instr.Nop
          | [ "ckpt"; r; c ] ->
              emit (Instr.Ckpt (parse_reg line r, parse_int line c))
          | [ "ckptd"; r ] -> emit (Instr.CkptDyn (parse_reg line r))
          | [ "ldslot"; d; r; c ] ->
              emit
                (Instr.LdSlot
                   ( parse_reg line d,
                     Reg.to_int (parse_reg line r),
                     parse_int line c ))
          | [ "boundary"; id ] -> emit (Instr.Boundary (parse_int line id))
          | [ "jmp"; l ] -> close_block line st (Instr.Jmp l)
          | [ br; r; t; e ]
            when String.length br > 3 && String.sub br 0 3 = "br." ->
              let cc = String.sub br 3 (String.length br - 3) in
              let c =
                match
                  rev_find_map
                    (fun (c, n) -> if n = cc then Some c else None)
                    cond_names
                with
                | Some c -> c
                | None -> fail line "bad condition %S" cc
              in
              close_block line st (Instr.Br (c, parse_reg line r, t, e))
          | [ "call"; f; ret ] -> close_block line st (Instr.Call (f, ret))
          | [ "ret" ] -> close_block line st Instr.Ret
          | [ "halt" ] -> close_block line st Instr.Halt
          | _ -> fail line "cannot parse %S" s
        end)
      (String.split_on_char '\n' text);
    close_func 0 st;
    let pname =
      match st.pname with Some n -> n | None -> fail 0 "missing .program"
    in
    let funcs = List.rev st.funcs in
    let main =
      match funcs with
      | f :: _ -> f.Cfg.fname
      | [] -> fail 0 "no functions"
    in
    let p =
      {
        Cfg.pname;
        funcs;
        main;
        spaces = List.rev st.spaces;
        init_data = st.init_data;
      }
    in
    match Cfg.validate p with
    | Ok () -> Ok p
    | Error msg -> Error (Printf.sprintf "validation: %s" msg)
  with Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

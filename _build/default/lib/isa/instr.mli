(** Instruction set of the simulated MCU.

    The same representation serves as the compiler IR (inside basic blocks of
    a {!Cfg} program) and, after {!Link}ing, as the executed machine code.
    Values are 32-bit two's-complement words (the MCU handles 32-bit data the
    way a 16-bit MSP430 handles register pairs; a single word type keeps the
    model simple without changing any of the checkpointing behaviour).

    Memory operands carry the {e allocation} they address (a named data
    space) plus a displacement that is either a compile-time constant or a
    register.  This symbolic form is what the alias analysis consumes. *)

(** A named data allocation in non-volatile memory. *)
type space = { space_name : string; space_id : int; space_words : int }

type disp = Dconst of int | Dreg of Reg.t

(** A memory reference: word [disp] within [space]. *)
type mref = { space : space; disp : disp }

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** Signed division; division by zero yields 0 (MCU convention). *)
  | Rem  (** Signed remainder; by zero yields 0. *)
  | And
  | Or
  | Xor
  | Shl
  | Shr  (** Logical right shift. *)
  | Sra  (** Arithmetic right shift. *)
  | Slt  (** Set 1 if [a < b] signed, else 0. *)
  | Sle
  | Seq
  | Sne

type operand = Oreg of Reg.t | Oimm of int

type t =
  | Li of Reg.t * int  (** Load immediate. *)
  | Mov of Reg.t * Reg.t
  | Bin of binop * Reg.t * Reg.t * operand  (** [dst = src1 op src2]. *)
  | Ld of Reg.t * mref
  | St of mref * Reg.t
  | In of Reg.t * int  (** Read an I/O port (sensor). *)
  | Out of int * Reg.t  (** Write an I/O port (radio / actuator / GPIO). *)
  | Nop
  | Ckpt of Reg.t * int
      (** GECKO checkpoint store: persist the register into its statically
          coloured slot (colour 0 or 1) in the GECKO NVM checkpoint area. *)
  | CkptDyn of Reg.t
      (** Ratchet-style checkpoint store with a dynamically indexed
          double-buffer (costs extra cycles for the index load). *)
  | LdSlot of Reg.t * int * int
      (** [LdSlot (dst, srcreg, colour)] reads the checkpoint slot of
          register [srcreg] with [colour] — used only inside recovery
          blocks. *)
  | Boundary of int
      (** Region boundary; the operand is the id of the region being
          entered.  Inserted by the compiler, interpreted by the runtime. *)

(** Block terminators. *)
type cond = Z | Nz | Ltz | Gez | Gtz | Lez

type terminator =
  | Jmp of string
  | Br of cond * Reg.t * string * string  (** [Br (c, r, then_, else_)]. *)
  | Call of string * string  (** [Call (callee_function, return_block)]. *)
  | Ret
  | Halt

val defs : t -> Reg.Set.t
(** Registers written by the instruction. *)

val uses : t -> Reg.Set.t
(** Registers read by the instruction (including address registers). *)

val mem_write : t -> mref option
val mem_read : t -> mref option

val is_io : t -> bool
(** I/O instructions are externally visible and must not be re-executed,
    so they force region boundaries. *)

val eval_binop : binop -> int -> int -> int
(** 32-bit two's-complement semantics. *)

val eval_cond : cond -> int -> bool

val term_uses : terminator -> Reg.Set.t

val pp_mref : Format.formatter -> mref -> unit
val pp : Format.formatter -> t -> unit
val pp_terminator : Format.formatter -> terminator -> unit
val to_string : t -> string

type space = { space_name : string; space_id : int; space_words : int }
type disp = Dconst of int | Dreg of Reg.t
type mref = { space : space; disp : disp }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Sra
  | Slt
  | Sle
  | Seq
  | Sne

type operand = Oreg of Reg.t | Oimm of int

type t =
  | Li of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Bin of binop * Reg.t * Reg.t * operand
  | Ld of Reg.t * mref
  | St of mref * Reg.t
  | In of Reg.t * int
  | Out of int * Reg.t
  | Nop
  | Ckpt of Reg.t * int
  | CkptDyn of Reg.t
  | LdSlot of Reg.t * int * int
  | Boundary of int

type cond = Z | Nz | Ltz | Gez | Gtz | Lez

type terminator =
  | Jmp of string
  | Br of cond * Reg.t * string * string
  | Call of string * string
  | Ret
  | Halt

let defs = function
  | Li (d, _) | Mov (d, _) | Bin (_, d, _, _) | Ld (d, _) | In (d, _)
  | LdSlot (d, _, _) ->
      Reg.Set.singleton d
  | St _ | Out _ | Nop | Ckpt _ | CkptDyn _ | Boundary _ -> Reg.Set.empty

let disp_uses = function Dconst _ -> Reg.Set.empty | Dreg r -> Reg.Set.singleton r

let uses = function
  | Li _ | Nop | Boundary _ | LdSlot _ | In _ -> Reg.Set.empty
  | Mov (_, s) -> Reg.Set.singleton s
  | Bin (_, _, a, Oreg b) -> Reg.Set.add b (Reg.Set.singleton a)
  | Bin (_, _, a, Oimm _) -> Reg.Set.singleton a
  | Ld (_, m) -> disp_uses m.disp
  | St (m, s) -> Reg.Set.add s (disp_uses m.disp)
  | Out (_, s) -> Reg.Set.singleton s
  | Ckpt (r, _) | CkptDyn r -> Reg.Set.singleton r

let mem_write = function St (m, _) -> Some m | _ -> None
let mem_read = function Ld (_, m) -> Some m | _ -> None
let is_io = function In _ | Out _ -> true | _ -> false

let mask32 = 0xFFFFFFFF

(* Sign-extend the low 32 bits into a native int. *)
let sext32 x =
  let x = x land mask32 in
  if x land 0x80000000 <> 0 then x - 0x100000000 else x

let eval_binop op a b =
  let a = sext32 a and b = sext32 b in
  let r =
    match op with
    | Add -> a + b
    | Sub -> a - b
    | Mul -> a * b
    | Div -> if b = 0 then 0 else a / b
    | Rem -> if b = 0 then 0 else a mod b
    | And -> a land b
    | Or -> a lor b
    | Xor -> a lxor b
    | Shl -> a lsl (b land 31)
    | Shr -> (a land mask32) lsr (b land 31)
    | Sra -> a asr (b land 31)
    | Slt -> if a < b then 1 else 0
    | Sle -> if a <= b then 1 else 0
    | Seq -> if a = b then 1 else 0
    | Sne -> if a <> b then 1 else 0
  in
  sext32 r

let eval_cond c v =
  match c with
  | Z -> v = 0
  | Nz -> v <> 0
  | Ltz -> v < 0
  | Gez -> v >= 0
  | Gtz -> v > 0
  | Lez -> v <= 0

let term_uses = function
  | Br (_, r, _, _) -> Reg.Set.singleton r
  | Jmp _ | Halt -> Reg.Set.empty
  | Call _ | Ret -> Reg.Set.singleton Reg.sp

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sra -> "sra"
  | Slt -> "slt"
  | Sle -> "sle"
  | Seq -> "seq"
  | Sne -> "sne"

let cond_name = function
  | Z -> "z"
  | Nz -> "nz"
  | Ltz -> "ltz"
  | Gez -> "gez"
  | Gtz -> "gtz"
  | Lez -> "lez"

let pp_mref ppf m =
  match m.disp with
  | Dconst c -> Format.fprintf ppf "%s[%d]" m.space.space_name c
  | Dreg r -> Format.fprintf ppf "%s[%a]" m.space.space_name Reg.pp r

let pp_operand ppf = function
  | Oreg r -> Reg.pp ppf r
  | Oimm i -> Format.fprintf ppf "#%d" i

let pp ppf = function
  | Li (d, i) -> Format.fprintf ppf "li %a, #%d" Reg.pp d i
  | Mov (d, s) -> Format.fprintf ppf "mov %a, %a" Reg.pp d Reg.pp s
  | Bin (op, d, a, b) ->
      Format.fprintf ppf "%s %a, %a, %a" (binop_name op) Reg.pp d Reg.pp a
        pp_operand b
  | Ld (d, m) -> Format.fprintf ppf "ld %a, %a" Reg.pp d pp_mref m
  | St (m, s) -> Format.fprintf ppf "st %a, %a" pp_mref m Reg.pp s
  | In (d, p) -> Format.fprintf ppf "in %a, port%d" Reg.pp d p
  | Out (p, s) -> Format.fprintf ppf "out port%d, %a" p Reg.pp s
  | Nop -> Format.pp_print_string ppf "nop"
  | Ckpt (r, c) -> Format.fprintf ppf "ckpt %a, slot%d" Reg.pp r c
  | CkptDyn r -> Format.fprintf ppf "ckpt.dyn %a" Reg.pp r
  | LdSlot (d, r, c) -> Format.fprintf ppf "ldslot %a, r%d, slot%d" Reg.pp d r c
  | Boundary id -> Format.fprintf ppf "-- region %d --" id

let pp_terminator ppf = function
  | Jmp l -> Format.fprintf ppf "jmp %s" l
  | Br (c, r, t, e) ->
      Format.fprintf ppf "br.%s %a, %s, %s" (cond_name c) Reg.pp r t e
  | Call (f, ret) -> Format.fprintf ppf "call %s -> %s" f ret
  | Ret -> Format.pp_print_string ppf "ret"
  | Halt -> Format.pp_print_string ppf "halt"

let to_string i = Format.asprintf "%a" pp i

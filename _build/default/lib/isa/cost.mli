(** Cycle cost model, shared by the WCET analysis and the machine.

    Costs approximate an MSP430-class in-order core running from FRAM:
    single-cycle ALU, two-cycle memory, slow multiply/divide (no hardware
    divider), and a small fixed cost for the runtime pseudo-ops. *)

val instr_cycles : Instr.t -> int
val term_cycles : Instr.terminator -> int

val jit_checkpoint_words : int
(** Words written by the JIT (CTPL-style) checkpoint ISR: 16 registers,
    PC, ACK. *)

val jit_isr_overhead_cycles : int
(** ISR entry/exit and peripheral-state bookkeeping. *)

val nvm_write_cycles : int
val nvm_read_cycles : int

val rollback_overhead_cycles : int
(** GECKO recovery-block lookup-table dispatch cost at rollback. *)

type pending_block = {
  pb_label : string;
  pb_loop_bound : int option;
  mutable pb_instrs : Instr.t list; (* reversed *)
  mutable pb_term : Instr.terminator option;
}

type pending_func = {
  pf_name : string;
  mutable pf_blocks : pending_block list; (* reversed *)
}

type t = {
  name : string;
  mutable spaces : Instr.space list; (* reversed *)
  mutable init_data : (int * int array) list;
  mutable funcs : pending_func list; (* reversed *)
  mutable cur_func : pending_func option;
  mutable cur_block : pending_block option;
  mutable next_space_id : int;
}

let program name =
  {
    name;
    spaces = [];
    init_data = [];
    funcs = [];
    cur_func = None;
    cur_block = None;
    next_space_id = 0;
  }

let space t name ~words ?init () =
  if words <= 0 then invalid_arg "Builder.space: words must be positive";
  let s =
    { Instr.space_name = name; space_id = t.next_space_id; space_words = words }
  in
  t.next_space_id <- t.next_space_id + 1;
  t.spaces <- s :: t.spaces;
  (match init with
  | Some a ->
      if Array.length a > words then
        invalid_arg (Printf.sprintf "Builder.space %s: init larger than space" name);
      t.init_data <- (s.Instr.space_id, a) :: t.init_data
  | None -> ());
  s

let close_block t =
  match t.cur_block with
  | None -> ()
  | Some pb ->
      (match (pb.pb_term, t.cur_func) with
      | None, _ ->
          invalid_arg
            (Printf.sprintf "Builder: block %s left unterminated" pb.pb_label)
      | Some _, None -> assert false
      | Some _, Some pf -> pf.pf_blocks <- pb :: pf.pf_blocks);
      t.cur_block <- None

let func t name =
  (* Finish the previous function, if any. *)
  (match t.cur_block with
  | Some pb when pb.pb_term = None ->
      invalid_arg
        (Printf.sprintf "Builder.func: block %s unterminated" pb.pb_label)
  | _ -> ());
  close_block t;
  (match t.cur_func with Some pf -> t.funcs <- pf :: t.funcs | None -> ());
  t.cur_func <- Some { pf_name = name; pf_blocks = [] }

let block t ?loop_bound label =
  (match t.cur_func with
  | None -> invalid_arg "Builder.block: no current function"
  | Some _ -> ());
  (* Implicit fall-through from an unterminated current block. *)
  (match t.cur_block with
  | Some pb when pb.pb_term = None -> pb.pb_term <- Some (Instr.Jmp label)
  | _ -> ());
  close_block t;
  t.cur_block <-
    Some { pb_label = label; pb_loop_bound = loop_bound; pb_instrs = []; pb_term = None }

let emit t i =
  match t.cur_block with
  | None -> invalid_arg "Builder: no current block"
  | Some pb ->
      if pb.pb_term <> None then
        invalid_arg
          (Printf.sprintf "Builder: emitting into terminated block %s" pb.pb_label);
      pb.pb_instrs <- i :: pb.pb_instrs

let terminate t term =
  match t.cur_block with
  | None -> invalid_arg "Builder: no current block to terminate"
  | Some pb ->
      if pb.pb_term <> None then
        invalid_arg
          (Printf.sprintf "Builder: block %s already terminated" pb.pb_label);
      pb.pb_term <- Some term

let imm i = Instr.Oimm i
let reg r = Instr.Oreg r
let at s c = { Instr.space = s; disp = Instr.Dconst c }
let idx s r = { Instr.space = s; disp = Instr.Dreg r }

let li t d i = emit t (Instr.Li (d, i))
let mov t d s = emit t (Instr.Mov (d, s))
let bin t op d a b = emit t (Instr.Bin (op, d, a, b))
let add t d a b = bin t Instr.Add d a b
let sub t d a b = bin t Instr.Sub d a b
let mul t d a b = bin t Instr.Mul d a b
let ld t d m = emit t (Instr.Ld (d, m))
let st t m s = emit t (Instr.St (m, s))
let io_in t d p = emit t (Instr.In (d, p))
let io_out t p s = emit t (Instr.Out (p, s))
let nop t = emit t Instr.Nop

let jmp t l = terminate t (Instr.Jmp l)
let br t c r then_ else_ = terminate t (Instr.Br (c, r, then_, else_))
let call t callee ~ret = terminate t (Instr.Call (callee, ret))
let ret t = terminate t Instr.Ret
let halt t = terminate t Instr.Halt

let finish t =
  (match t.cur_block with
  | Some pb when pb.pb_term = None ->
      invalid_arg
        (Printf.sprintf "Builder.finish: block %s unterminated" pb.pb_label)
  | _ -> ());
  close_block t;
  (match t.cur_func with Some pf -> t.funcs <- pf :: t.funcs | None -> ());
  t.cur_func <- None;
  let funcs =
    List.rev_map
      (fun pf ->
        {
          Cfg.fname = pf.pf_name;
          blocks =
            List.rev_map
              (fun pb ->
                {
                  Cfg.label = pb.pb_label;
                  instrs = List.rev pb.pb_instrs;
                  term =
                    (match pb.pb_term with
                    | Some term -> term
                    | None -> assert false);
                  loop_bound = pb.pb_loop_bound;
                })
              pf.pf_blocks;
        })
      t.funcs
  in
  let main =
    match funcs with
    | [] -> invalid_arg "Builder.finish: program has no functions"
    | f :: _ -> f.Cfg.fname
  in
  let p =
    {
      Cfg.pname = t.name;
      funcs;
      main;
      spaces = List.rev t.spaces;
      init_data = t.init_data;
    }
  in
  match Cfg.validate p with
  | Ok () -> p
  | Error msg -> invalid_arg (Printf.sprintf "Builder.finish: %s" msg)

(** Control-flow-graph program representation.

    A {!program} is a set of functions, each a list of basic blocks.  Blocks
    hold a mutable instruction list so compiler passes can insert
    checkpoint stores and region boundaries in place.  Loop-header blocks
    carry an iteration bound used by the WCET analysis. *)

type block = {
  label : string;
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
  mutable loop_bound : int option;
      (** If this block is a natural-loop header, the maximum trip count
          (supplied by the program builder, as MCU toolchains require). *)
}

type func = {
  fname : string;
  mutable blocks : block list;  (** Layout order; the entry block is first. *)
}

type program = {
  pname : string;
  mutable funcs : func list;
  main : string;
  spaces : Instr.space list;
  init_data : (int * int array) list;
      (** Initial contents per space id; missing spaces start zeroed. *)
}

val entry_block : func -> block
val find_func : program -> string -> func
val find_block : func -> string -> block

val successors : Instr.terminator -> string list
(** Intra-procedural successors: a [Call] flows to its return block, [Ret]
    and [Halt] have none. *)

val predecessors : func -> (string, string list) Hashtbl.t
(** Map from block label to predecessor labels. *)

val iter_blocks : func -> (block -> unit) -> unit
val iter_instrs : program -> (Instr.t -> unit) -> unit

val instr_count : program -> int
(** Static instruction count, terminators excluded. *)

val count_matching : program -> (Instr.t -> bool) -> int

val find_space : program -> string -> Instr.space

val validate : program -> (unit, string) result
(** Structural checks: labels resolve, entry blocks exist, call targets
    exist, constant displacements are in bounds, space ids are unique,
    the main function exists. *)

val pp_func : Format.formatter -> func -> unit
val pp : Format.formatter -> program -> unit

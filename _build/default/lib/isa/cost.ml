let nvm_write_cycles = 2
let nvm_read_cycles = 2

let instr_cycles = function
  | Instr.Li _ | Instr.Mov _ | Instr.Nop -> 1
  | Instr.Bin (op, _, _, _) -> (
      match op with
      | Instr.Mul -> 3
      | Instr.Div | Instr.Rem -> 8
      | Instr.Add | Instr.Sub | Instr.And | Instr.Or | Instr.Xor | Instr.Shl
      | Instr.Shr | Instr.Sra | Instr.Slt | Instr.Sle | Instr.Seq | Instr.Sne
        ->
          1)
  | Instr.Ld _ -> nvm_read_cycles
  | Instr.St _ -> nvm_write_cycles
  | Instr.In _ | Instr.Out _ -> 4
  | Instr.Ckpt _ -> nvm_write_cycles
  | Instr.CkptDyn _ ->
      (* Dynamic double buffering: index load + address arithmetic + write. *)
      nvm_read_cycles + 1 + nvm_write_cycles
  | Instr.LdSlot _ -> nvm_read_cycles
  | Instr.Boundary _ ->
      (* Commit: one NVM write of the boundary id.  The progress flag is
         written once per power cycle, amortized by the runtime. *)
      nvm_write_cycles

let term_cycles = function
  | Instr.Jmp _ -> 1
  | Instr.Br _ -> 1
  | Instr.Call _ -> 1 + nvm_write_cycles (* push return address *)
  | Instr.Ret -> 1 + nvm_read_cycles
  | Instr.Halt -> 1

let jit_checkpoint_words = 18
let jit_isr_overhead_cycles = 24
let rollback_overhead_cycles = 130

(** Machine registers.

    The simulated MCU has a 16-entry volatile register file, mirroring the
    MSP430 register count.  [r15] is reserved by convention as the stack
    pointer for programs that use calls. *)

type t = private int

val count : int
(** Number of architectural registers (16). *)

val of_int : int -> t
(** Raises [Invalid_argument] outside [0, count). *)

val to_int : t -> int

val all : t list
(** All registers in index order. *)

val sp : t
(** Stack-pointer convention register (r15). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val r0 : t
val r1 : t
val r2 : t
val r3 : t
val r4 : t
val r5 : t
val r6 : t
val r7 : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t
val r13 : t
val r14 : t
val r15 : t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

type block = {
  label : string;
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
  mutable loop_bound : int option;
}

type func = { fname : string; mutable blocks : block list }

type program = {
  pname : string;
  mutable funcs : func list;
  main : string;
  spaces : Instr.space list;
  init_data : (int * int array) list;
}

let entry_block f =
  match f.blocks with
  | [] -> invalid_arg (Printf.sprintf "Cfg.entry_block: %s has no blocks" f.fname)
  | b :: _ -> b

let find_func p name =
  match List.find_opt (fun f -> f.fname = name) p.funcs with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Cfg.find_func: no function %s" name)

let find_block f label =
  match List.find_opt (fun b -> b.label = label) f.blocks with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Cfg.find_block: no block %s in %s" label f.fname)

let successors = function
  | Instr.Jmp l -> [ l ]
  | Instr.Br (_, _, t, e) -> if t = e then [ t ] else [ t; e ]
  | Instr.Call (_, ret) -> [ ret ]
  | Instr.Ret | Instr.Halt -> []

let predecessors f =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b.label []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let old = try Hashtbl.find tbl s with Not_found -> [] in
          Hashtbl.replace tbl s (b.label :: old))
        (successors b.term))
    f.blocks;
  tbl

let iter_blocks f g = List.iter g f.blocks

let iter_instrs p g =
  List.iter (fun f -> List.iter (fun b -> List.iter g b.instrs) f.blocks) p.funcs

let instr_count p =
  let n = ref 0 in
  iter_instrs p (fun _ -> incr n);
  !n

let count_matching p pred =
  let n = ref 0 in
  iter_instrs p (fun i -> if pred i then incr n);
  !n

let find_space p name =
  match List.find_opt (fun (s : Instr.space) -> s.space_name = name) p.spaces with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Cfg.find_space: no space %s" name)

let validate p =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_func f =
    if f.blocks = [] then err "function %s has no blocks" f.fname
    else
      let labels = Hashtbl.create 16 in
      let dup =
        List.exists
          (fun b ->
            if Hashtbl.mem labels b.label then true
            else (
              Hashtbl.replace labels b.label ();
              false))
          f.blocks
      in
      if dup then err "function %s has duplicate block labels" f.fname
      else
        let bad_target =
          List.find_map
            (fun b ->
              let check_label l =
                if Hashtbl.mem labels l then None
                else Some (Printf.sprintf "%s: unknown label %s" f.fname l)
              in
              let term_issue =
                match b.term with
                | Instr.Jmp l -> check_label l
                | Instr.Br (_, _, t, e) -> (
                    match check_label t with
                    | Some _ as s -> s
                    | None -> check_label e)
                | Instr.Call (callee, ret) -> (
                    if not (List.exists (fun g -> g.fname = callee) p.funcs)
                    then Some (Printf.sprintf "%s: unknown callee %s" f.fname callee)
                    else check_label ret)
                | Instr.Ret | Instr.Halt -> None
              in
              match term_issue with
              | Some _ as s -> s
              | None ->
                  List.find_map
                    (fun i ->
                      match (Instr.mem_read i, Instr.mem_write i) with
                      | Some m, _ | _, Some m -> (
                          match m.Instr.disp with
                          | Instr.Dconst c
                            when c < 0 || c >= m.Instr.space.Instr.space_words ->
                              Some
                                (Printf.sprintf
                                   "%s/%s: %s[%d] out of bounds (size %d)"
                                   f.fname b.label m.Instr.space.Instr.space_name
                                   c m.Instr.space.Instr.space_words)
                          | _ -> None)
                      | None, None -> None)
                    b.instrs)
            f.blocks
        in
        match bad_target with Some s -> Error s | None -> Ok ()
  in
  let ids = List.map (fun (s : Instr.space) -> s.Instr.space_id) p.spaces in
  let sorted = List.sort_uniq compare ids in
  if List.length sorted <> List.length ids then err "duplicate space ids"
  else if not (List.exists (fun f -> f.fname = p.main) p.funcs) then
    err "main function %s not found" p.main
  else
    List.fold_left
      (fun acc f -> match acc with Error _ -> acc | Ok () -> check_func f)
      (Ok ()) p.funcs

let pp_block ppf b =
  Format.fprintf ppf "@[<v 2>%s:%s@," b.label
    (match b.loop_bound with
    | Some n -> Printf.sprintf "  ; loop bound %d" n
    | None -> "");
  List.iter (fun i -> Format.fprintf ppf "%a@," Instr.pp i) b.instrs;
  Format.fprintf ppf "%a@]" Instr.pp_terminator b.term

let pp_func ppf f =
  Format.fprintf ppf "@[<v>func %s:@," f.fname;
  List.iter (fun b -> Format.fprintf ppf "%a@," pp_block b) f.blocks;
  Format.fprintf ppf "@]"

let pp ppf p =
  Format.fprintf ppf "@[<v>program %s (main = %s)@," p.pname p.main;
  List.iter
    (fun (s : Instr.space) ->
      Format.fprintf ppf "space %s: %d words@," s.Instr.space_name
        s.Instr.space_words)
    p.spaces;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_func f) p.funcs;
  Format.fprintf ppf "@]"

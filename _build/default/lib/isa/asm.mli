(** Textual assembly for the ISA (`.gasm`).

    Grammar (line-oriented; `;` starts a comment):

    {v
    .program NAME
    .space NAME WORDS [init N N ...]
    .func NAME
    LABEL:            ; basic block
    LABEL [BOUND]:    ; loop-header block with trip-count annotation
        li    r0, 42
        mov   r1, r0
        add   r2, r1, r0        ; or an immediate: add r2, r1, 5
        ld    r3, data[r0]      ; register or constant index
        st    data[7], r3
        in    r4, port0
        out   port1, r4
        nop
        jmp   LABEL
        br.nz r4, THEN, ELSE    ; cc in z nz ltz gez gtz lez
        call  FUNC, RETLABEL
        ret
        halt
    v}

    {!to_string} emits exactly this format, and {!parse} reads it back:
    the two round-trip. *)

val to_string : Cfg.program -> string

val parse : string -> (Cfg.program, string) result
(** Errors carry a line number and message. *)

val parse_file : string -> (Cfg.program, string) result

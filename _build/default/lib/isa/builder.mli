(** Imperative CFG construction API.

    Usage pattern:
    {[
      let b = Builder.program "crc32" in
      let data = Builder.space b "data" ~words:64 () in
      Builder.func b "main";
      Builder.li b r0 0;
      Builder.block b "loop" ~loop_bound:64;
      ...
      Builder.br b Nz r1 "loop" "done_";
      Builder.block b "done_";
      Builder.halt b;
      Builder.finish b
    ]}

    Starting a new block while the current one has no terminator inserts an
    implicit fall-through [Jmp]. *)

type t

val program : string -> t

val space : t -> string -> words:int -> ?init:int array -> unit -> Instr.space
(** Declare a data allocation.  [init] (padded with zeroes) sets the initial
    NVM contents. *)

val func : t -> string -> unit
(** Begin a function; the first block emitted becomes its entry.  The first
    function declared is the program's main. *)

val block : t -> ?loop_bound:int -> string -> unit
(** Begin a basic block.  [loop_bound] marks a natural-loop header with its
    maximum trip count. *)

(** {2 Operand helpers} *)

val imm : int -> Instr.operand
val reg : Reg.t -> Instr.operand

val at : Instr.space -> int -> Instr.mref
(** Constant-displacement reference. *)

val idx : Instr.space -> Reg.t -> Instr.mref
(** Register-indexed reference. *)

(** {2 Instruction emitters} *)

val li : t -> Reg.t -> int -> unit
val mov : t -> Reg.t -> Reg.t -> unit
val bin : t -> Instr.binop -> Reg.t -> Reg.t -> Instr.operand -> unit
val add : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val sub : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val mul : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val ld : t -> Reg.t -> Instr.mref -> unit
val st : t -> Instr.mref -> Reg.t -> unit
val io_in : t -> Reg.t -> int -> unit
val io_out : t -> int -> Reg.t -> unit
val nop : t -> unit

(** {2 Terminators} *)

val jmp : t -> string -> unit
val br : t -> Instr.cond -> Reg.t -> string -> string -> unit
val call : t -> string -> ret:string -> unit
val ret : t -> unit
val halt : t -> unit

val finish : t -> Cfg.program
(** Close the program and validate it; raises [Invalid_argument] with the
    validation message on malformed programs. *)

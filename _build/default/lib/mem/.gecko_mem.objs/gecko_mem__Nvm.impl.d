lib/mem/nvm.ml: Array Gecko_isa List Printf

lib/mem/nvm.mli: Gecko_isa

(** Non-volatile main memory (FRAM-like).

    Word-addressed, byte-granularity is not modelled.  FRAM on MSP430-class
    parts has symmetric read/write latency and effectively unlimited
    endurance, so the model tracks access counts (for energy accounting by
    the machine) but no wear.

    Contents survive power failure by construction: the machine never
    clears an [Nvm.t] across simulated outages. *)

type t

val create : words:int -> t

val words : t -> int

val read : t -> int -> int
(** Raises [Invalid_argument] on an out-of-range address. *)

val write : t -> int -> int -> unit

val reads : t -> int
(** Cumulative read count. *)

val writes : t -> int
(** Cumulative write count. *)

val reset_stats : t -> unit

val load_program : t -> Gecko_isa.Link.image -> unit
(** Install the initial data-segment contents of an image (space initial
    values; everything else zeroed). *)

val snapshot : t -> int array
(** Copy of the full contents (does not count as reads). *)

val restore : t -> int array -> unit

val diff : int array -> int array -> (int * int * int) list
(** [diff a b] lists [(addr, a_val, b_val)] where the two snapshots
    disagree. *)

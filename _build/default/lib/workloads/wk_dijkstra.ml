(* Dijkstra single-source shortest paths over a 12-node dense adjacency
   matrix (MiBench dijkstra at sensor scale).  The scan loops handle two
   nodes per iteration, as an optimizing MCU compiler would unroll
   them. *)

open Gecko_isa
module B = Builder

let n = 12
let inf = 99999

(* A deterministic connected weighted graph. *)
let adjacency () =
  let raw = Wk_common.input_words ~seed:101 (n * n) in
  let m = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let w = (raw.((i * n) + j) mod 23) + 1 in
        (* Keep roughly half the edges; the ring guarantees connectivity. *)
        if raw.((j * n) + i) mod 2 = 0 || j = (i + 1) mod n then
          m.((i * n) + j) <- w
      end
    done
  done;
  m

let program () =
  let b = B.program "dijkstra" in
  let adj = B.space b "adj" ~words:(n * n) ~init:(adjacency ()) () in
  let dist = B.space b "dist" ~words:n () in
  let visited = B.space b "visited" ~words:n () in
  let i = Reg.r0
  and u = Reg.r1
  and best = Reg.r2
  and v = Reg.r3
  and t = Reg.r4
  and w = Reg.r5
  and du = Reg.r6
  and dv = Reg.r7
  and addr = Reg.r8
  and iter = Reg.r9
  and row = Reg.r10 in
  B.func b "main";
  B.block b "entry";
  B.li b i 0;
  B.block b "init" ~loop_bound:(n / 4);
  for _ = 1 to 4 do
    B.li b t inf;
    B.st b (B.idx dist i) t;
    B.li b t 0;
    B.st b (B.idx visited i) t;
    B.add b i i (B.imm 1)
  done;
  B.bin b Instr.Slt t i (B.imm n);
  B.br b Instr.Nz t "init" "start";
  B.block b "start";
  B.li b t 0;
  B.st b (B.at dist 0) t;
  B.li b iter 0;
  B.block b "outer" ~loop_bound:n;
  (* Select the unvisited node with minimal distance, two per round. *)
  B.li b u (-1);
  B.li b best inf;
  B.li b v 0;
  B.block b "select" ~loop_bound:(n / 2);
  for copy = 0 to 1 do
    let lbl s = Printf.sprintf "sel_%s%d" s copy in
    B.ld b t (B.idx visited v);
    B.br b Instr.Nz t (lbl "next") (lbl "check");
    B.block b (lbl "check");
    B.ld b dv (B.idx dist v);
    B.bin b Instr.Slt t dv (B.reg best);
    B.br b Instr.Z t (lbl "next") (lbl "take");
    B.block b (lbl "take");
    B.mov b best dv;
    B.mov b u v;
    B.block b (lbl "next");
    B.add b v v (B.imm 1)
  done;
  B.bin b Instr.Slt t v (B.imm n);
  B.br b Instr.Nz t "select" "visit";
  B.block b "visit";
  B.br b Instr.Ltz u "outer_next" "mark";
  B.block b "mark";
  B.li b t 1;
  B.st b (B.idx visited u) t;
  B.ld b du (B.idx dist u);
  B.bin b Instr.Mul row u (B.imm n);
  (* Relax all edges out of u, two per round. *)
  B.li b v 0;
  B.block b "relax" ~loop_bound:(n / 2);
  for copy = 0 to 1 do
    let lbl s = Printf.sprintf "rel_%s%d" s copy in
    B.bin b Instr.Add addr row (B.reg v);
    B.ld b w (B.idx adj addr);
    B.br b Instr.Z w (lbl "next") (lbl "check");
    B.block b (lbl "check");
    B.ld b dv (B.idx dist v);
    B.bin b Instr.Add t du (B.reg w);
    B.bin b Instr.Slt addr t (B.reg dv);
    B.br b Instr.Z addr (lbl "next") (lbl "doit");
    B.block b (lbl "doit");
    B.st b (B.idx dist v) t;
    B.block b (lbl "next");
    B.add b v v (B.imm 1)
  done;
  B.bin b Instr.Slt t v (B.imm n);
  B.br b Instr.Nz t "relax" "outer_next";
  B.block b "outer_next";
  B.add b iter iter (B.imm 1);
  B.bin b Instr.Slt t iter (B.imm n);
  B.br b Instr.Nz t "outer" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

lib/workloads/wk_dijkstra.ml: Array Builder Gecko_isa Instr Printf Reg Wk_common

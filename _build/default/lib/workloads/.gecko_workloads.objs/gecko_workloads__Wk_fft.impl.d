lib/workloads/wk_fft.ml: Array Builder Gecko_isa Instr List Reg Wk_common

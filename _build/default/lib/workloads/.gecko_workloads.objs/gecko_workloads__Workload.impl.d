lib/workloads/workload.ml: Cfg Gecko_isa List Wk_basicmath Wk_bitcnt Wk_blink Wk_crc16 Wk_crc32 Wk_dhrystone Wk_dijkstra Wk_fft Wk_fir Wk_qsort Wk_stringsearch

lib/workloads/wk_crc32.ml: Builder Gecko_isa Instr Reg Wk_common

lib/workloads/wk_qsort.ml: Builder Gecko_isa Instr Reg Wk_common

lib/workloads/wk_basicmath.ml: Array Builder Gecko_isa Instr Reg Wk_common

lib/workloads/wk_stringsearch.ml: Array Builder Gecko_isa Instr List Printf Reg Wk_common

lib/workloads/wk_crc16.ml: Builder Gecko_isa Instr Reg Wk_common

lib/workloads/wk_dhrystone.ml: Builder Gecko_isa Instr Reg Wk_common

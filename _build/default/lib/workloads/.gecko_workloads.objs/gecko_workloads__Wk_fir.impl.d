lib/workloads/wk_fir.ml: Builder Gecko_isa Instr Reg Wk_common

lib/workloads/wk_bitcnt.ml: Builder Gecko_isa Instr Reg Wk_common

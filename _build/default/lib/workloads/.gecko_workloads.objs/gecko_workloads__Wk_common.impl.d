lib/workloads/wk_common.ml: Array Float

lib/workloads/workload.mli: Cfg Gecko_isa

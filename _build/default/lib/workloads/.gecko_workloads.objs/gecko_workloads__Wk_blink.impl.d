lib/workloads/wk_blink.ml: Builder Gecko_isa Instr Reg

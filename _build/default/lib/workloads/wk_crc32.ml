(* Table-driven CRC-32 over a 128-byte message, sixteen bytes per loop
   iteration (MCU compilers unroll this hot loop; it also keeps region
   sizes MSP430-realistic, where every 32-bit operation is several
   16-bit instructions). *)

open Gecko_isa
module B = Builder

let msg_len = 128

let program () =
  let b = B.program "crc32" in
  let table = B.space b "table" ~words:256 ~init:(Wk_common.crc32_table ()) () in
  let msg =
    B.space b "msg" ~words:msg_len ~init:(Wk_common.input_bytes ~seed:11 msg_len) ()
  in
  let result = B.space b "result" ~words:1 () in
  let i = Reg.r0
  and crc = Reg.r1
  and byte = Reg.r2
  and idx = Reg.r3
  and tv = Reg.r4
  and len = Reg.r5
  and mask = Reg.r6 in
  B.func b "main";
  B.block b "entry";
  B.li b i 0;
  B.li b crc (-1);
  (* 0xFFFFFFFF *)
  B.li b len msg_len;
  B.li b mask 0xFF;
  B.block b "loop" ~loop_bound:(msg_len / 16);
  for _ = 1 to 16 do
    B.ld b byte (B.idx msg i);
    B.bin b Instr.Xor idx crc (B.reg byte);
    B.bin b Instr.And idx idx (B.reg mask);
    B.ld b tv (B.idx table idx);
    B.bin b Instr.Shr crc crc (B.imm 8);
    B.bin b Instr.Xor crc crc (B.reg tv);
    B.add b i i (B.imm 1)
  done;
  B.bin b Instr.Slt idx i (B.reg len);
  B.br b Instr.Nz idx "loop" "fin";
  B.block b "fin";
  B.bin b Instr.Xor crc crc (B.imm (-1));
  B.st b (B.at result 0) crc;
  B.halt b;
  B.finish b

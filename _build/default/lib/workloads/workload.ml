open Gecko_isa

type t = {
  name : string;
  description : string;
  build : unit -> Cfg.program;
}

let all =
  [
    {
      name = "basicmath";
      description = "integer sqrt, angle conversion, cubic eval, gcd";
      build = Wk_basicmath.program;
    };
    {
      name = "bitcnt";
      description = "SWAR and table-driven bit counting over 64 words";
      build = Wk_bitcnt.program;
    };
    {
      name = "blink";
      description = "GPIO LED toggle with busy-wait delay";
      build = Wk_blink.program;
    };
    {
      name = "crc16";
      description = "bitwise CRC-16/CCITT over a 32-byte message";
      build = Wk_crc16.program;
    };
    {
      name = "crc32";
      description = "table-driven CRC-32 over a 64-byte message";
      build = Wk_crc32.program;
    };
    {
      name = "dhrystone";
      description = "record copies, string compare and arithmetic via calls";
      build = Wk_dhrystone.program;
    };
    {
      name = "dijkstra";
      description = "single-source shortest paths on a 12-node dense graph";
      build = Wk_dijkstra.program;
    };
    {
      name = "fft";
      description = "32-point radix-2 fixed-point FFT (Q14)";
      build = Wk_fft.program;
    };
    {
      name = "fir";
      description = "8-tap FIR filter over 48 samples";
      build = Wk_fir.program;
    };
    {
      name = "qsort";
      description = "iterative quicksort of 48 words with an NVM work stack";
      build = Wk_qsort.program;
    };
    {
      name = "stringsearch";
      description = "four 8-byte pattern searches in a 192-byte text";
      build = Wk_stringsearch.program;
    };
  ]

let find name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None -> raise Not_found

let names = List.map (fun w -> w.name) all

(* Bitwise CRC-16/CCITT over a 32-byte message, the eight bit steps of
   each byte fully unrolled (the standard MCU idiom). *)

open Gecko_isa
module B = Builder

let msg_len = 48
let poly = 0x1021

let program () =
  let b = B.program "crc16" in
  let msg =
    B.space b "msg" ~words:msg_len ~init:(Wk_common.input_bytes ~seed:23 msg_len) ()
  in
  let result = B.space b "result" ~words:1 () in
  let i = Reg.r0
  and crc = Reg.r1
  and byte = Reg.r2
  and t = Reg.r3
  and len = Reg.r4
  and mask16 = Reg.r5 in
  B.func b "main";
  B.block b "entry";
  B.li b i 0;
  B.li b crc 0xFFFF;
  B.li b len msg_len;
  B.li b mask16 0xFFFF;
  B.block b "loop" ~loop_bound:(msg_len / 2);
  for _ = 1 to 2 do
    B.ld b byte (B.idx msg i);
    B.bin b Instr.Shl byte byte (B.imm 8);
    B.bin b Instr.Xor crc crc (B.reg byte);
    B.bin b Instr.And crc crc (B.reg mask16);
    for _ = 1 to 8 do
      (* crc = crc & 0x8000 ? (crc << 1) ^ poly : crc << 1, masked. *)
      B.bin b Instr.And t crc (B.imm 0x8000);
      B.bin b Instr.Shl crc crc (B.imm 1);
      (* t = t ? poly : 0 — branch-free: t = (t >> 15) * poly. *)
      B.bin b Instr.Shr t t (B.imm 15);
      B.bin b Instr.Mul t t (B.imm poly);
      B.bin b Instr.Xor crc crc (B.reg t);
      B.bin b Instr.And crc crc (B.reg mask16)
    done;
    B.add b i i (B.imm 1)
  done;
  B.bin b Instr.Slt t i (B.reg len);
  B.br b Instr.Nz t "loop" "fin";
  B.block b "fin";
  B.st b (B.at result 0) crc;
  B.halt b;
  B.finish b

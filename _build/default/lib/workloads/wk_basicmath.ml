(* MiBench basicmath at MCU scale: integer square roots (Newton), angle
   conversion, cubic polynomial evaluation and a GCD phase — several
   sequential loop nests, which is why it carries many checkpoint stores
   in Table III. *)

open Gecko_isa
module B = Builder

let n = 32

let program () =
  let b = B.program "basicmath" in
  let data =
    B.space b "data" ~words:n
      ~init:(Array.map (fun v -> v + 1) (Wk_common.input_bytes ~seed:3 n))
      ()
  in
  let roots = B.space b "roots" ~words:n () in
  let rads = B.space b "rads" ~words:n () in
  let cubics = B.space b "cubics" ~words:16 () in
  let gcds = B.space b "gcds" ~words:(n / 2) () in
  let i = Reg.r0
  and x = Reg.r1
  and y = Reg.r2
  and t = Reg.r3
  and k = Reg.r4
  and acc = Reg.r5
  and u = Reg.r6
  and v = Reg.r7 in
  B.func b "main";
  B.block b "entry";
  B.li b i 0;
  (* Phase 1: isqrt via 8 unrolled Newton steps, y0 = x (inputs are
     >= 1, and (y + x/y)/2 of a positive pair stays >= 1 after the max
     with 1 below, so the division is safe). *)
  B.block b "sqrt_loop" ~loop_bound:n;
  B.ld b x (B.idx data i);
  B.mov b y x;
  for _ = 1 to 8 do
    B.bin b Instr.Div t x (B.reg y);
    B.bin b Instr.Add y y (B.reg t);
    B.bin b Instr.Shr y y (B.imm 1);
    (* y = max y 1, branch-free: y += (y == 0). *)
    B.bin b Instr.Seq t y (B.imm 0);
    B.bin b Instr.Add y y (B.reg t)
  done;
  B.st b (B.idx roots i) y;
  B.add b i i (B.imm 1);
  B.bin b Instr.Slt t i (B.imm n);
  B.br b Instr.Nz t "sqrt_loop" "deg_init";
  (* Phase 2: degrees -> scaled radians: r = d * 31416 / 1800. *)
  B.block b "deg_init";
  B.li b i 0;
  B.block b "deg_loop" ~loop_bound:(n / 4);
  for _ = 1 to 4 do
    B.ld b x (B.idx data i);
    B.mul b x x (B.imm 31416);
    B.bin b Instr.Div x x (B.imm 1800);
    B.st b (B.idx rads i) x;
    B.add b i i (B.imm 1)
  done;
  B.bin b Instr.Slt t i (B.imm n);
  B.br b Instr.Nz t "deg_loop" "cubic_init";
  (* Phase 3: cubic y = ((x - 7)x + 12)x - 9 by Horner. *)
  B.block b "cubic_init";
  B.li b i 0;
  B.block b "cubic_loop" ~loop_bound:4;
  for _ = 1 to 4 do
    B.mov b x i;
    B.bin b Instr.Sub y x (B.imm 7);
    B.mul b y y (B.reg x);
    B.add b y y (B.imm 12);
    B.mul b y y (B.reg x);
    B.sub b y y (B.imm 9);
    B.st b (B.idx cubics i) y;
    B.add b i i (B.imm 1)
  done;
  B.bin b Instr.Slt t i (B.imm 16);
  B.br b Instr.Nz t "cubic_loop" "gcd_init";
  (* Phase 4: gcd of consecutive pairs (Euclid). *)
  B.block b "gcd_init";
  B.li b i 0;
  B.li b acc 0;
  B.block b "gcd_loop" ~loop_bound:(n / 2);
  B.bin b Instr.Shl k i (B.imm 1);
  B.ld b u (B.idx data k);
  B.add b k k (B.imm 1);
  B.ld b v (B.idx data k);
  B.block b "euclid" ~loop_bound:8;
  B.br b Instr.Z v "gcd_store" "euclid_step";
  B.block b "euclid_step";
  for _ = 1 to 4 do
    (* One Euclid step; Rem by zero yields 0 in this ISA, so the step is
       harmlessly idempotent once v reaches 0. *)
    B.bin b Instr.Rem t u (B.reg v);
    (* if v = 0 keep (u, v) unchanged: sel = (v != 0). *)
    B.bin b Instr.Sne k v (B.imm 0);
    B.mul b x v (B.reg k);
    (* x = v or 0 *)
    B.bin b Instr.Seq y v (B.imm 0);
    B.mul b y u (B.reg y);
    (* y = u if v = 0 else 0 *)
    B.bin b Instr.Add x x (B.reg y);
    (* x = (v != 0) ? v : u  — the next u *)
    B.mul b t t (B.reg k);
    (* next v = rem or 0 *)
    B.mov b u x;
    B.mov b v t
  done;
  B.jmp b "euclid";
  B.block b "gcd_store";
  B.st b (B.idx gcds i) u;
  B.add b acc acc (B.reg u);
  B.add b i i (B.imm 1);
  B.bin b Instr.Slt t i (B.imm (n / 2));
  B.br b Instr.Nz t "gcd_loop" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

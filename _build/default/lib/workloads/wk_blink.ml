(* The classic GPIO blink: toggle an LED port with a straight-line cycle
   delay (the `__delay_cycles` intrinsic idiom — MCU blink code does not
   loop for short delays).  The paper's smallest app (6 checkpoint stores
   in Table III). *)

open Gecko_isa
module B = Builder

let blinks = 8
let delay_cycles = 24

let program () =
  let b = B.program "blink" in
  let state = B.space b "state" ~words:1 () in
  let led = Reg.r0 and i = Reg.r1 and t = Reg.r3 in
  B.func b "main";
  B.block b "entry";
  B.li b i 0;
  B.block b "loop" ~loop_bound:blinks;
  B.bin b Instr.And led i (B.imm 1);
  B.io_out b 0 led;
  B.st b (B.at state 0) led;
  (* Inline delay. *)
  for _ = 1 to delay_cycles do
    B.nop b
  done;
  B.add b i i (B.imm 1);
  B.bin b Instr.Slt t i (B.imm blinks);
  B.br b Instr.Nz t "loop" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

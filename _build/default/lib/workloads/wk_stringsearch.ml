(* Search four 8-byte patterns in a 192-byte text with a branch-free
   unrolled window compare.  Two patterns occur in the text, two do
   not. *)

open Gecko_isa
module B = Builder

let text_len = 192
let pat_len = 8

let text () =
  let t = Wk_common.input_bytes ~seed:91 text_len in
  (* Plant recognizable needles. *)
  let needle1 = [| 7; 14; 21; 28; 35; 42; 49; 56 |] in
  let needle2 = [| 9; 9; 8; 8; 7; 7; 6; 6 |] in
  Array.blit needle1 0 t 40 pat_len;
  Array.blit needle2 0 t 133 pat_len;
  (t, needle1, needle2)

let program () =
  let txt, needle1, needle2 = text () in
  let b = B.program "stringsearch" in
  let text_s = B.space b "text" ~words:text_len ~init:txt () in
  let pats =
    [
      ("p0", needle1);
      ("p1", needle2);
      ("p2", [| 1; 2; 3; 4; 5; 6; 7; 200 |]);
      ("p3", [| 250; 250; 250; 250; 1; 1; 1; 1 |]);
    ]
  in
  let pat_spaces =
    List.map (fun (nm, init) -> (nm, B.space b nm ~words:pat_len ~init ())) pats
  in
  let found = B.space b "found" ~words:4 () in
  let pos = Reg.r0
  and k = Reg.r1
  and tc = Reg.r2
  and pch = Reg.r3
  and t = Reg.r4
  and mism = Reg.r5 in
  B.func b "main";
  B.block b "entry";
  B.nop b;
  List.iteri
    (fun pi (nm, pspace) ->
      let lbl s = Printf.sprintf "%s_%s" nm s in
      B.block b (lbl "init");
      B.li b pos 0;
      B.li b t (-1);
      B.st b (B.at found pi) t;
      B.block b (lbl "scan") ~loop_bound:(text_len - pat_len + 1);
      (* Branch-free unrolled comparison: count mismatches over the
         whole window (the MCU idiom that trades early exit for a
         predictable, fat loop body). *)
      B.li b mism 0;
      for j = 0 to pat_len - 1 do
        B.add b k pos (B.imm j);
        B.ld b tc (B.idx text_s k);
        B.ld b pch (B.at pspace j);
        B.bin b Instr.Sne t tc (B.reg pch);
        B.bin b Instr.Add mism mism (B.reg t)
      done;
      B.br b Instr.Z mism (lbl "hit") (lbl "miss");
      B.block b (lbl "hit");
      B.st b (B.at found pi) pos;
      B.jmp b (lbl "done");
      B.block b (lbl "miss");
      B.add b pos pos (B.imm 1);
      B.bin b Instr.Sle t pos (B.imm (text_len - pat_len));
      B.br b Instr.Nz t (lbl "scan") (lbl "done");
      B.block b (lbl "done"))
    pat_spaces;
  B.halt b;
  B.finish b

(* Shared helpers for workload construction. *)

(* Deterministic input data (small LCG, independent of Stdlib.Random). *)
let input_words ~seed n =
  let state = ref (seed land 0x7FFFFFFF) in
  Array.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state)

let input_bytes ~seed n = Array.map (fun v -> v land 0xFF) (input_words ~seed n)

(* CRC-32 (IEEE) reference table. *)
let crc32_table () =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
        else c := !c lsr 1
      done;
      !c)

(* Q14 fixed-point sine table for the FFT twiddles: sin(2*pi*k/n) for
   k in 0..n-1. *)
let sin_table_q14 n =
  Array.init n (fun k ->
      let x = sin (2. *. Float.pi *. float_of_int k /. float_of_int n) in
      int_of_float (Float.round (x *. 16384.)))

(* 8-tap FIR filter over 48 samples, the tap loop fully unrolled.
   Coefficients live in a read-only table: their register copies are
   classic pruning candidates. *)

open Gecko_isa
module B = Builder

let n_samples = 48
let n_taps = 8

let program () =
  let b = B.program "fir" in
  let coeff =
    B.space b "coeff" ~words:n_taps ~init:[| 3; -5; 9; 21; 21; 9; -5; 3 |] ()
  in
  let x =
    B.space b "x"
      ~words:(n_samples + n_taps)
      ~init:(Wk_common.input_bytes ~seed:37 (n_samples + n_taps))
      ()
  in
  let y = B.space b "y" ~words:n_samples () in
  let n = Reg.r0
  and acc = Reg.r1
  and s = Reg.r2
  and c = Reg.r3
  and k = Reg.r4
  and bound = Reg.r5 in
  B.func b "main";
  B.block b "entry";
  B.li b n 0;
  B.li b bound n_samples;
  B.block b "loop" ~loop_bound:(n_samples / 2);
  for _ = 1 to 2 do
    B.li b acc 0;
    for tap = 0 to n_taps - 1 do
      B.add b k n (B.imm tap);
      B.ld b s (B.idx x k);
      B.ld b c (B.at coeff tap);
      B.mul b s s (B.reg c);
      B.add b acc acc (B.reg s)
    done;
    B.bin b Instr.Sra acc acc (B.imm 6);
    B.st b (B.idx y n) acc;
    B.add b n n (B.imm 1)
  done;
  B.bin b Instr.Slt k n (B.reg bound);
  B.br b Instr.Nz k "loop" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

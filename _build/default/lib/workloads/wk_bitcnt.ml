(* Bit counting over 64 words with two strategies per iteration: SWAR
   popcount and a nibble-table lookup, results accumulated separately
   (mirrors MiBench bitcnts exercising several counters). *)

open Gecko_isa
module B = Builder

let n_words = 64

let nibble_table = [| 0; 1; 1; 2; 1; 2; 2; 3; 1; 2; 2; 3; 2; 3; 3; 4 |]

let program () =
  let b = B.program "bitcnt" in
  let data =
    B.space b "data" ~words:n_words ~init:(Wk_common.input_words ~seed:5 n_words) ()
  in
  let ntab = B.space b "ntab" ~words:16 ~init:nibble_table () in
  let result = B.space b "result" ~words:2 () in
  let i = Reg.r0
  and v = Reg.r1
  and t = Reg.r2
  and swar = Reg.r3
  and tabcnt = Reg.r4
  and nib = Reg.r5
  and u = Reg.r6
  and bound = Reg.r7 in
  B.func b "main";
  B.block b "entry";
  B.li b i 0;
  B.li b swar 0;
  B.li b tabcnt 0;
  B.li b bound n_words;
  B.block b "loop" ~loop_bound:(n_words / 2);
  for _ = 1 to 2 do
    B.ld b v (B.idx data i);
    (* SWAR popcount of the low 16 bits. *)
    B.bin b Instr.And u v (B.imm 0xFFFF);
    B.bin b Instr.Shr t u (B.imm 1);
    B.bin b Instr.And t t (B.imm 0x5555);
    B.bin b Instr.Sub u u (B.reg t);
    B.bin b Instr.Shr t u (B.imm 2);
    B.bin b Instr.And t t (B.imm 0x3333);
    B.bin b Instr.And u u (B.imm 0x3333);
    B.bin b Instr.Add u u (B.reg t);
    B.bin b Instr.Shr t u (B.imm 4);
    B.bin b Instr.Add u u (B.reg t);
    B.bin b Instr.And u u (B.imm 0x0F0F);
    B.bin b Instr.Shr t u (B.imm 8);
    B.bin b Instr.Add u u (B.reg t);
    B.bin b Instr.And u u (B.imm 0x1F);
    B.bin b Instr.Add swar swar (B.reg u);
    (* Nibble-table count of the same bits. *)
    for shift = 0 to 3 do
      B.bin b Instr.Shr nib v (B.imm (shift * 4));
      B.bin b Instr.And nib nib (B.imm 0xF);
      B.ld b t (B.idx ntab nib);
      B.add b tabcnt tabcnt (B.reg t)
    done;
    B.add b i i (B.imm 1);
  done;
  B.bin b Instr.Slt t i (B.reg bound);
  B.br b Instr.Nz t "loop" "fin";
  B.block b "fin";
  B.st b (B.at result 0) swar;
  B.st b (B.at result 1) tabcnt;
  B.halt b;
  B.finish b

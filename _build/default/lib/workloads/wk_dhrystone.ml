(* A Dhrystone-flavoured mix: record copies, string comparison and
   integer arithmetic, structured as real function calls (exercising the
   call/return region boundaries and the NVM call stack). *)

open Gecko_isa
module B = Builder

let iters = 12
let rec_len = 8
let str_len = 16

let program () =
  let b = B.program "dhrystone" in
  let rec_a =
    B.space b "rec_a" ~words:rec_len ~init:(Wk_common.input_bytes ~seed:41 rec_len) ()
  in
  let rec_b = B.space b "rec_b" ~words:rec_len () in
  let str_a =
    B.space b "str_a" ~words:str_len ~init:(Wk_common.input_bytes ~seed:43 str_len) ()
  in
  let str_b = B.space b "str_b" ~words:str_len () in
  let counts = B.space b "counts" ~words:3 () in
  (* main uses r0-r5; callees use r8-r13 to keep register files disjoint
     (no callee-save convention in this ISA). *)
  let it = Reg.r0 and eq = Reg.r1 and t = Reg.r2 and sum = Reg.r3 in
  let ci = Reg.r8 and cv = Reg.r9 and ct = Reg.r10 and cu = Reg.r11 in
  B.func b "main";
  B.block b "entry";
  B.li b it 0;
  B.li b sum 0;
  (* Make str_b a copy of str_a, diverging at the last character every
     other iteration. *)
  B.block b "loop" ~loop_bound:iters;
  B.call b "copy_record" ~ret:"after_copy";
  B.block b "after_copy";
  B.call b "copy_string" ~ret:"after_cstr";
  B.block b "after_cstr";
  (* Every other iteration, flip the last character of str_b. *)
  B.bin b Instr.And t it (B.imm 1);
  B.br b Instr.Z t "compare" "mutate";
  B.block b "mutate";
  B.ld b t (B.at str_b (str_len - 1));
  B.bin b Instr.Xor t t (B.imm 0xFF);
  B.st b (B.at str_b (str_len - 1)) t;
  B.block b "compare";
  B.call b "str_cmp" ~ret:"after_cmp";
  B.block b "after_cmp";
  (* str_cmp leaves its verdict in counts[2]. *)
  B.ld b eq (B.at counts 2);
  B.add b sum sum (B.reg eq);
  B.st b (B.at counts 0) sum;
  B.add b it it (B.imm 1);
  B.st b (B.at counts 1) it;
  B.bin b Instr.Slt t it (B.imm iters);
  B.br b Instr.Nz t "loop" "fin";
  B.block b "fin";
  B.halt b;
  (* copy_record: rec_b[i] = rec_a[i] + 1. *)
  B.func b "copy_record";
  B.block b "cr_entry";
  B.li b ci 0;
  B.block b "cr_loop" ~loop_bound:(rec_len / 2);
  for _ = 1 to 2 do
    B.ld b cv (B.idx rec_a ci);
    B.add b cv cv (B.imm 1);
    B.st b (B.idx rec_b ci) cv;
    B.add b ci ci (B.imm 1)
  done;
  B.bin b Instr.Slt ct ci (B.imm rec_len);
  B.br b Instr.Nz ct "cr_loop" "cr_done";
  B.block b "cr_done";
  B.ret b;
  (* copy_string: str_b = str_a. *)
  B.func b "copy_string";
  B.block b "cs_entry";
  B.li b ci 0;
  B.block b "cs_loop" ~loop_bound:(str_len / 4);
  for _ = 1 to 4 do
    B.ld b cv (B.idx str_a ci);
    B.st b (B.idx str_b ci) cv;
    B.add b ci ci (B.imm 1)
  done;
  B.bin b Instr.Slt ct ci (B.imm str_len);
  B.br b Instr.Nz ct "cs_loop" "cs_done";
  B.block b "cs_done";
  B.ret b;
  (* str_cmp: counts[2] = (str_a == str_b). *)
  B.func b "str_cmp";
  B.block b "sc_entry";
  B.li b ci 0;
  B.li b cu 1;
  B.block b "sc_loop" ~loop_bound:(str_len / 4);
  (* Branch-free accumulation of mismatches, four characters per round. *)
  for _ = 1 to 4 do
    B.ld b cv (B.idx str_a ci);
    B.ld b ct (B.idx str_b ci);
    B.bin b Instr.Sne ct cv (B.reg ct);
    B.bin b Instr.Seq ct ct (B.imm 0);
    B.bin b Instr.Mul cu cu (B.reg ct);
    B.add b ci ci (B.imm 1)
  done;
  B.bin b Instr.Slt ct ci (B.imm str_len);
  B.br b Instr.Nz ct "sc_loop" "sc_done";
  B.block b "sc_done";
  B.st b (B.at counts 2) cu;
  B.ret b;
  B.finish b

(* 32-point radix-2 decimation-in-time FFT in Q14 fixed point, with the
   twiddle factors in a read-only sine table — the largest kernel of the
   suite, as in Table III. *)

open Gecko_isa
module B = Builder

let n = 32
let bits = 5

let bitrev i =
  let r = ref 0 in
  for k = 0 to bits - 1 do
    if i land (1 lsl k) <> 0 then r := !r lor (1 lsl (bits - 1 - k))
  done;
  !r

let program () =
  let b = B.program "fft" in
  let sine = B.space b "sine" ~words:n ~init:(Wk_common.sin_table_q14 n) () in
  let re =
    B.space b "re" ~words:n
      ~init:(Array.map (fun v -> (v * 64) - 8192) (Wk_common.input_bytes ~seed:55 n))
      ()
  in
  let im = B.space b "im" ~words:n ~init:(Array.make n 0) () in
  let len = Reg.r0
  and half = Reg.r1
  and step = Reg.r2
  and i = Reg.r3
  and k = Reg.r4
  and a = Reg.r5
  and bb = Reg.r6
  and wr = Reg.r7
  and wi = Reg.r8
  and tr = Reg.r9
  and ti = Reg.r10
  and t1 = Reg.r11
  and t2 = Reg.r12
  and t3 = Reg.r13 in
  B.func b "main";
  (* Bit-reverse permutation, fully unrolled (compile-time indices). *)
  B.block b "entry";
  List.iter
    (fun idx ->
      let j = bitrev idx in
      if j > idx then begin
        B.ld b t1 (B.at re idx);
        B.ld b t2 (B.at re j);
        B.st b (B.at re idx) t2;
        B.st b (B.at re j) t1;
        B.ld b t1 (B.at im idx);
        B.ld b t2 (B.at im j);
        B.st b (B.at im idx) t2;
        B.st b (B.at im j) t1
      end)
    (List.init n (fun x -> x));
  B.li b len 2;
  B.block b "stages" ~loop_bound:bits;
  B.bin b Instr.Shr half len (B.imm 1);
  B.li b step n;
  B.bin b Instr.Div step step (B.reg len);
  B.li b i 0;
  B.block b "groups" ~loop_bound:(n / 2);
  B.li b k 0;
  B.block b "butterfly" ~loop_bound:(n / 2);
  (* Twiddle w = exp(-2*pi*j*k/len): wr = cos = sine[(idx + n/4) mod n],
     wi = -sine[idx]. *)
  B.bin b Instr.Mul t1 k (B.reg step);
  B.bin b Instr.Add t2 t1 (B.imm (n / 4));
  B.bin b Instr.And t2 t2 (B.imm (n - 1));
  B.ld b wr (B.idx sine t2);
  B.ld b wi (B.idx sine t1);
  B.li b t3 0;
  B.bin b Instr.Sub wi t3 (B.reg wi);
  B.bin b Instr.Add a i (B.reg k);
  B.bin b Instr.Add bb a (B.reg half);
  (* t = w * x[b] in Q14; all loads precede all stores so region
     formation needs a single anti-dependence cut per butterfly. *)
  B.ld b t1 (B.idx re bb);
  B.ld b t2 (B.idx im bb);
  B.bin b Instr.Mul tr t1 (B.reg wr);
  B.bin b Instr.Mul t3 t2 (B.reg wi);
  B.bin b Instr.Sub tr tr (B.reg t3);
  B.bin b Instr.Sra tr tr (B.imm 14);
  B.bin b Instr.Mul ti t1 (B.reg wi);
  B.bin b Instr.Mul t3 t2 (B.reg wr);
  B.bin b Instr.Add ti ti (B.reg t3);
  B.bin b Instr.Sra ti ti (B.imm 14);
  (* Butterfly update: load both halves, then write all four words. *)
  B.ld b t1 (B.idx re a);
  B.ld b t2 (B.idx im a);
  B.bin b Instr.Sub t3 t1 (B.reg tr);
  B.st b (B.idx re bb) t3;
  B.bin b Instr.Add t1 t1 (B.reg tr);
  B.st b (B.idx re a) t1;
  B.bin b Instr.Sub t3 t2 (B.reg ti);
  B.st b (B.idx im bb) t3;
  B.bin b Instr.Add t2 t2 (B.reg ti);
  B.st b (B.idx im a) t2;
  B.add b k k (B.imm 1);
  B.bin b Instr.Slt t1 k (B.reg half);
  B.br b Instr.Nz t1 "butterfly" "group_next";
  B.block b "group_next";
  B.add b i i (B.reg len);
  B.bin b Instr.Slt t1 i (B.imm n);
  B.br b Instr.Nz t1 "groups" "stage_next";
  B.block b "stage_next";
  B.bin b Instr.Shl len len (B.imm 1);
  B.bin b Instr.Sle t1 len (B.imm n);
  B.br b Instr.Nz t1 "stages" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

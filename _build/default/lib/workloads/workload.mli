(** The benchmark applications of the paper's evaluation (a MiBench-style
    suite, Table III): basicmath, bitcnt, blink, crc16, crc32, dhrystone,
    dijkstra, fft, fir, qsort, stringsearch.

    Each kernel is built with the {!Gecko_isa.Builder} at MCU scale (small
    working sets in NVM), terminates with [Halt], and leaves its results
    in its data spaces so crash consistency can be checked by diffing the
    final data segment against an uninterrupted golden run. *)

open Gecko_isa

type t = {
  name : string;
  description : string;
  build : unit -> Cfg.program;
}

val all : t list
(** Table III order. *)

val find : string -> t
(** Raises [Not_found]. *)

val names : string list

(* Iterative quicksort (Lomuto partition) over 48 words with an explicit
   work stack in NVM — heavy in WAR hazards, so region formation earns
   its keep here. *)

open Gecko_isa
module B = Builder

let n = 48

let program () =
  let b = B.program "qsort" in
  let arr = B.space b "arr" ~words:n ~init:(Wk_common.input_bytes ~seed:77 n) () in
  let wstack = B.space b "wstack" ~words:64 () in
  let sp = Reg.r0
  and lo = Reg.r1
  and hi = Reg.r2
  and pivot = Reg.r3
  and ii = Reg.r4
  and j = Reg.r5
  and a = Reg.r6
  and t = Reg.r7
  and u = Reg.r8 in
  B.func b "main";
  B.block b "entry";
  B.li b t 0;
  B.st b (B.at wstack 0) t;
  B.li b t (n - 1);
  B.st b (B.at wstack 1) t;
  B.li b sp 2;
  B.block b "work" ~loop_bound:(4 * n);
  (* Pop (lo, hi). *)
  B.sub b sp sp (B.imm 2);
  B.ld b lo (B.idx wstack sp);
  B.add b t sp (B.imm 1);
  B.ld b hi (B.idx wstack t);
  B.bin b Instr.Slt t lo (B.reg hi);
  B.br b Instr.Z t "work_check" "partition";
  B.block b "partition";
  B.ld b pivot (B.idx arr hi);
  B.mov b ii lo;
  B.mov b j lo;
  B.block b "ploop" ~loop_bound:n;
  (* Two partition steps per round; the second re-checks j < hi. *)
  B.ld b a (B.idx arr j);
  B.bin b Instr.Slt t a (B.reg pivot);
  B.br b Instr.Z t "pnext" "pswap";
  B.block b "pswap";
  (* swap arr[ii] <-> arr[j] *)
  B.ld b u (B.idx arr ii);
  B.st b (B.idx arr ii) a;
  B.st b (B.idx arr j) u;
  B.add b ii ii (B.imm 1);
  B.block b "pnext";
  B.add b j j (B.imm 1);
  B.bin b Instr.Slt t j (B.reg hi);
  B.br b Instr.Nz t "p2" "pdone";
  B.block b "p2";
  B.ld b a (B.idx arr j);
  B.bin b Instr.Slt t a (B.reg pivot);
  B.br b Instr.Z t "pnext2" "pswap2";
  B.block b "pswap2";
  B.ld b u (B.idx arr ii);
  B.st b (B.idx arr ii) a;
  B.st b (B.idx arr j) u;
  B.add b ii ii (B.imm 1);
  B.block b "pnext2";
  B.add b j j (B.imm 1);
  B.bin b Instr.Slt t j (B.reg hi);
  B.br b Instr.Nz t "ploop" "pdone";
  B.block b "pdone";
  (* swap arr[ii] <-> arr[hi]; push (lo, ii-1) and (ii+1, hi). *)
  B.ld b a (B.idx arr ii);
  B.ld b u (B.idx arr hi);
  B.st b (B.idx arr ii) u;
  B.st b (B.idx arr hi) a;
  B.st b (B.idx wstack sp) lo;
  B.bin b Instr.Sub t ii (B.imm 1);
  B.add b u sp (B.imm 1);
  B.st b (B.idx wstack u) t;
  B.add b sp sp (B.imm 2);
  B.bin b Instr.Add t ii (B.imm 1);
  B.st b (B.idx wstack sp) t;
  B.add b u sp (B.imm 1);
  B.st b (B.idx wstack u) hi;
  B.add b sp sp (B.imm 2);
  B.block b "work_check";
  B.br b Instr.Gtz sp "work" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

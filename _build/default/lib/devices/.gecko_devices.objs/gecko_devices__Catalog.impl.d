lib/devices/catalog.ml: Coupling Device Gecko_emi Gecko_monitor List

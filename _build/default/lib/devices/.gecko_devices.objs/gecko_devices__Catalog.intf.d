lib/devices/catalog.mli: Device

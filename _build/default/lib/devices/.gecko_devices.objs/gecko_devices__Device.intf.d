lib/devices/device.mli: Gecko_emi Gecko_monitor

lib/devices/device.ml: Gecko_emi Gecko_monitor Printf

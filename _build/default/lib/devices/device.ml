type core_params = {
  clock_hz : float;
  active_power : float;
  sleep_power : float;
  reboot_latency : float;
  reboot_energy : float;
  nvm_write_energy : float;
  nvm_read_energy : float;
}

type t = {
  model : string;
  core : core_params;
  adc_kind : Gecko_monitor.Monitor.kind;
  adc_profile : Gecko_emi.Coupling.profile;
  comp_kind : Gecko_monitor.Monitor.kind option;
  comp_profile : Gecko_emi.Coupling.profile option;
}

type monitor_choice = Use_adc | Use_comparator

let monitor_kind t = function
  | Use_adc -> t.adc_kind
  | Use_comparator -> (
      match t.comp_kind with
      | Some k -> k
      | None ->
          invalid_arg
            (Printf.sprintf "Device.monitor_kind: %s has no comparator" t.model))

let coupling t = function
  | Use_adc -> t.adc_profile
  | Use_comparator -> (
      match t.comp_profile with
      | Some p -> p
      | None ->
          invalid_arg
            (Printf.sprintf "Device.coupling: %s has no comparator" t.model))

let has_comparator t = t.comp_kind <> None

let cycle_time t = 1. /. t.core.clock_hz
let energy_per_cycle t = t.core.active_power /. t.core.clock_hz

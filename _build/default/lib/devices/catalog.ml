open Gecko_emi

let msp430_core ~clock_hz ~reboot_latency =
  {
    Device.clock_hz;
    active_power = clock_hz *. 0.36e-9;
    (* ~120 uA/MHz at 3 V *)
    sleep_power = 30e-6;
    reboot_latency;
    reboot_energy = reboot_latency *. clock_hz *. 0.36e-9 *. 1.0;
    nvm_write_energy = 1.2e-9;
    nvm_read_energy = 0.6e-9;
  }

let adc sample_period = Gecko_monitor.Monitor.Adc { sample_period }
let comp latency = Gecko_monitor.Monitor.Comparator { latency }

let peak = Coupling.peak

let mk ~model ~clock_mhz ~reboot_ms ~sample_us ~adc_peaks ?comp_cfg () =
  let core =
    msp430_core ~clock_hz:(clock_mhz *. 1e6) ~reboot_latency:(reboot_ms *. 1e-3)
  in
  let comp_kind, comp_profile =
    match comp_cfg with
    | Some (latency_us, peaks) ->
        (Some (comp (latency_us *. 1e-6)), Some (Coupling.profile peaks))
    | None -> (None, None)
  in
  {
    Device.model;
    core;
    adc_kind = adc (sample_us *. 1e-6);
    adc_profile = Coupling.profile adc_peaks;
    comp_kind;
    comp_profile;
  }

(* The dominant ADC resonance sits at ~27 MHz on MSP430-family boards
   (Table I); per-device gain and sampling cadence set the depth of the
   forward-progress collapse. *)
let res27 gain = peak ~f0_mhz:27. ~half_width_mhz:6. ~gain

let msp430fr2311 =
  mk ~model:"TI-MSP430FR2311" ~clock_mhz:8. ~reboot_ms:0.5 ~sample_us:64.
    ~adc_peaks:[ res27 3.2 ] ()

let msp430fr2433 =
  mk ~model:"TI-MSP430FR2433" ~clock_mhz:8. ~reboot_ms:0.5 ~sample_us:88.
    ~adc_peaks:[ res27 3.1 ] ()

let msp430fr4133 =
  mk ~model:"TI-MSP430FR4133" ~clock_mhz:8. ~reboot_ms:0.5 ~sample_us:75.
    ~adc_peaks:[ peak ~f0_mhz:27.7 ~half_width_mhz:6. ~gain:3.2 ] ()

let msp430f5529 =
  mk ~model:"TI-MSP430F5529" ~clock_mhz:8. ~reboot_ms:0.5 ~sample_us:83.
    ~adc_peaks:[ res27 3.0; peak ~f0_mhz:16. ~half_width_mhz:3. ~gain:3.3 ]
    ()

let msp430fr5739 =
  mk ~model:"TI-MSP430FR5739" ~clock_mhz:8. ~reboot_ms:0.5 ~sample_us:37.
    ~adc_peaks:[ res27 2.4 ] ()

let msp430fr5994 =
  mk ~model:"TI-MSP430FR5994" ~clock_mhz:8. ~reboot_ms:0.5 ~sample_us:83.
    ~adc_peaks:[ res27 3.0 ]
    ~comp_cfg:
      ( 0.5,
        [
          peak ~f0_mhz:5. ~half_width_mhz:0.8 ~gain:3.4;
          peak ~f0_mhz:6. ~half_width_mhz:0.8 ~gain:3.3;
        ] )
    ()

let msp430fr6989 =
  mk ~model:"TI-MSP430FR6989" ~clock_mhz:8. ~reboot_ms:0.5 ~sample_us:75.
    ~adc_peaks:[ res27 3.1 ]
    ~comp_cfg:(0.6, [ peak ~f0_mhz:27. ~half_width_mhz:4. ~gain:3.2 ])
    ()

let msp432p =
  mk ~model:"TI-MSP432P (cortex-m4)" ~clock_mhz:16. ~reboot_ms:0.5
    ~sample_us:68. ~adc_peaks:[ res27 3.0 ] ()

let stm32l552ze =
  mk ~model:"STM32L552ZE (cortex-m33)" ~clock_mhz:16. ~reboot_ms:0.5
    ~sample_us:100.
    ~adc_peaks:[ peak ~f0_mhz:17.5 ~half_width_mhz:4. ~gain:3.1 ]
    ()

let all =
  [
    msp430fr2311;
    msp430fr2433;
    msp430fr4133;
    msp430f5529;
    msp430fr5739;
    msp430fr5994;
    msp430fr6989;
    msp432p;
    stm32l552ze;
  ]

let find model =
  match List.find_opt (fun d -> d.Device.model = model) all with
  | Some d -> d
  | None -> raise Not_found

let evaluation_board = msp430fr5994

(** Commodity intermittent-system platform descriptions.

    Each device bundles the electrical personality the simulator needs:
    clock and power figures for the MCU core, voltage-monitor construction
    (sampling period / comparator latency), and — crucially — the EMI
    coupling profiles of its monitor front ends.  The coupling profiles are
    calibrated against Table I of the paper: peak attack frequencies and
    relative susceptibility were measured on real boards there, and are the
    one thing this reproduction cannot derive from first principles. *)

type core_params = {
  clock_hz : float;
  active_power : float;  (** W while the core executes. *)
  sleep_power : float;  (** W in the off/LPM state (leakage). *)
  reboot_latency : float;  (** s from wake signal to first instruction. *)
  reboot_energy : float;  (** J consumed by a boot (BOR, clock start). *)
  nvm_write_energy : float;  (** J per NVM word write. *)
  nvm_read_energy : float;  (** J per NVM word read. *)
}

type t = {
  model : string;
  core : core_params;
  adc_kind : Gecko_monitor.Monitor.kind;
  adc_profile : Gecko_emi.Coupling.profile;
  comp_kind : Gecko_monitor.Monitor.kind option;
  comp_profile : Gecko_emi.Coupling.profile option;
      (** Present only on parts with an on-board comparator monitor. *)
}

type monitor_choice = Use_adc | Use_comparator

val monitor_kind : t -> monitor_choice -> Gecko_monitor.Monitor.kind
(** Raises [Invalid_argument] if the device has no comparator. *)

val coupling : t -> monitor_choice -> Gecko_emi.Coupling.profile

val has_comparator : t -> bool

val cycle_time : t -> float
(** Seconds per clock cycle. *)

val energy_per_cycle : t -> float
(** Active energy per cycle (J). *)

(** The nine commodity platforms evaluated in Table I of the paper.

    Coupling peak frequencies and relative susceptibilities are calibrated
    to the table's measurements (see DESIGN.md, substitution table);
    everything else is derived from public datasheet figures. *)

val msp430fr2311 : Device.t
val msp430fr2433 : Device.t
val msp430fr4133 : Device.t
val msp430f5529 : Device.t
val msp430fr5739 : Device.t
val msp430fr5994 : Device.t
val msp430fr6989 : Device.t
val msp432p : Device.t
val stm32l552ze : Device.t

val all : Device.t list
(** All nine, in Table I order. *)

val find : string -> Device.t
(** Lookup by model name; raises [Not_found]. *)

val evaluation_board : Device.t
(** The board used in the paper's evaluation (MSP430FR5994, Section
    VII-A). *)

lib/monitor/monitor.ml:

lib/monitor/monitor.mli:

type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '='; '~' |]

let bounds series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> (0., 1., 0., 1.)
  | _ ->
      let mn l = List.fold_left min (List.hd l) l
      and mx l = List.fold_left max (List.hd l) l in
      (mn xs, mx xs, mn ys, mx ys)

let line_plot ?(width = 72) ?(height = 18) ?(x_label = "") ?(y_label = "")
    ?title ?y_min ?y_max series =
  let x0, x1, yy0, yy1 = bounds series in
  let y0 = Option.value y_min ~default:yy0 in
  let y1 = Option.value y_max ~default:yy1 in
  let y1 = if y1 <= y0 then y0 +. 1. else y1 in
  let x1 = if x1 <= x0 then x0 +. 1. else x1 in
  let grid = Array.make_matrix height width ' ' in
  let plot_one gi s =
    let g = glyphs.(gi mod Array.length glyphs) in
    List.iter
      (fun (x, y) ->
        let cx =
          int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
        in
        let cy =
          int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
        in
        let cy = height - 1 - cy in
        if cx >= 0 && cx < width && cy >= 0 && cy < height then
          grid.(cy).(cx) <- g)
      s.points
  in
  List.iteri plot_one series;
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  if y_label <> "" then (
    Buffer.add_string buf y_label;
    Buffer.add_char buf '\n');
  let ytick row =
    let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
    y0 +. (frac *. (y1 -. y0))
  in
  Array.iteri
    (fun row line ->
      Buffer.add_string buf (Printf.sprintf "%10.3g |" (ytick row));
      Buffer.add_string buf (String.init width (fun i -> line.(i)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 11 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%s%-10.4g%s%10.4g  %s\n" (String.make 12 ' ') x0
       (String.make (max 1 (width - 20)) ' ')
       x1 x_label);
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "    %c = %s\n" glyphs.(i mod Array.length glyphs) s.label))
    series;
  Buffer.contents buf

let bar_chart ?(width = 50) ?title ?(unit_label = "") rows =
  let vmax = List.fold_left (fun acc (_, v) -> max acc v) 0. rows in
  let vmax = if vmax <= 0. then 1. else vmax in
  let name_w =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 rows
  in
  let buf = Buffer.create 512 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun (name, v) ->
      let n = int_of_float (v /. vmax *. float_of_int width) in
      Buffer.add_string buf
        (Printf.sprintf "%-*s | %s %.4g%s\n" name_w name (String.make n '#') v
           unit_label))
    rows;
  Buffer.contents buf

let grouped_bars ?(width = 40) ?title ~group_labels rows =
  let vmax =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left max acc vs)
      0. rows
  in
  let vmax = if vmax <= 0. then 1. else vmax in
  let name_w =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 rows
  in
  let glabel_w =
    List.fold_left (fun acc g -> max acc (String.length g)) 0 group_labels
  in
  let buf = Buffer.create 512 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun (name, vs) ->
      List.iteri
        (fun i v ->
          let g = List.nth group_labels i in
          let n = int_of_float (v /. vmax *. float_of_int width) in
          let shown_name = if i = 0 then name else "" in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-*s | %s %.4g\n" name_w shown_name glabel_w
               g (String.make n '#') v))
        vs;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

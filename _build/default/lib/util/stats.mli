(** Small statistics toolkit for experiment post-processing. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation between
    order statistics.  Raises [Invalid_argument] on the empty list. *)

val median : float list -> float

val normalize_to : float -> float list -> float list
(** [normalize_to base xs] divides every element by [base]. *)

val clamp : lo:float -> hi:float -> float -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary

val pp_summary : Format.formatter -> summary -> unit

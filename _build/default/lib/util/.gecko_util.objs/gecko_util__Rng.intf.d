lib/util/rng.mli:

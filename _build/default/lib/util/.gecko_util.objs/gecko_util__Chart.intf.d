lib/util/chart.mli:

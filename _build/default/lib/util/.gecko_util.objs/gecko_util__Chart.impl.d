lib/util/chart.ml: Array Buffer List Option Printf String

lib/util/table.mli:

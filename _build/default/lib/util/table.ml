type align = Left | Right | Center

type row = Cells of string list | Sep

type t = {
  title : string option;
  header : string list;
  arity : int;
  mutable rows : row list; (* reversed *)
}

let create ?title ~header () =
  { title; header; arity = List.length header; rows = [] }

let add_row t cells =
  if List.length cells <> t.arity then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" t.arity
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render ?align t =
  let rows = List.rev t.rows in
  let aligns =
    match align with
    | Some a when List.length a = t.arity -> Array.of_list a
    | _ -> Array.init t.arity (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make t.arity 0 in
  let account cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  account t.header;
  List.iter (function Cells c -> account c | Sep -> ()) rows;
  let buf = Buffer.create 256 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  hline ();
  line t.header;
  hline ();
  List.iter (function Cells c -> line c | Sep -> hline ()) rows;
  hline ();
  Buffer.contents buf

let print ?align t = print_string (render ?align t)

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3g" x

let cell_pct x = Printf.sprintf "%.2f%%" (x *. 100.)

(** ASCII table rendering for experiment output.

    Every reproduced paper table/figure prints through this module so the
    bench harness output is uniform and diff-able. *)

type align = Left | Right | Center

type t

val create : ?title:string -> header:string list -> unit -> t
(** A table with a fixed header row.  Column count is set by the header. *)

val add_row : t -> string list -> unit
(** Append a data row.  Raises [Invalid_argument] if the arity differs from
    the header. *)

val add_sep : t -> unit
(** Append a horizontal separator line. *)

val render : ?align:align list -> t -> string
(** Render with box-drawing in plain ASCII.  [align] defaults to left for the
    first column and right for the rest. *)

val print : ?align:align list -> t -> unit

val cell_f : float -> string
(** Compact float formatting: "%.3g" with special-casing of exact ints. *)

val cell_pct : float -> string
(** Fraction as percentage, e.g. [0.0312 -> "3.12%"]. *)

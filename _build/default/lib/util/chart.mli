(** ASCII chart rendering: line plots and horizontal bar charts.

    Used by the bench harness to render the paper's figures as text.  A
    figure is a set of named series over a shared x axis. *)

type series = { label : string; points : (float * float) list }

val line_plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?title:string ->
  ?y_min:float ->
  ?y_max:float ->
  series list ->
  string
(** Render series on a character grid.  Each series is drawn with its own
    glyph; a legend maps glyphs to labels.  X positions are scaled linearly
    between the global min and max x of all series. *)

val bar_chart :
  ?width:int -> ?title:string -> ?unit_label:string -> (string * float) list -> string
(** Horizontal bars scaled to the maximum value. *)

val grouped_bars :
  ?width:int ->
  ?title:string ->
  group_labels:string list ->
  (string * float list) list ->
  string
(** [grouped_bars ~group_labels rows] renders, for each [(name, values)] row,
    one bar per group (e.g. one per scheme).  [values] arity must match
    [group_labels]. *)

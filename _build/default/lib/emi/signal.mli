(** Attack RF signal: a single-tone sine wave, as used throughout the
    paper's DPI and remote experiments. *)

type t = { freq_hz : float; power_dbm : float }

val make : freq_mhz:float -> power_dbm:float -> t

val freq_mhz : t -> float

val power_watts : t -> float
(** dBm → watts. *)

val dbm_of_watts : float -> float

val pp : Format.formatter -> t -> unit

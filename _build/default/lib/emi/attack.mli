(** An EMI attack instance: a signal plus how it reaches the victim.

    Remote attacks are attenuated by free-space propagation through
    walls/windows; DPI experiments inject conducted power at a circuit
    node (Fig. 3), with point P2 (capacitor/monitor node) coupling more
    directly and over a broader band than P1 (power-line node). *)

type injection_point = P1 | P2

type path =
  | Remote of { distance_m : float; through_wall : bool }
  | Dpi of injection_point

type t = { signal : Signal.t; path : path }

val remote : ?through_wall:bool -> distance_m:float -> Signal.t -> t
val dpi : injection_point -> Signal.t -> t

val path_attenuation : t -> float
(** Field attenuation factor (1.0 at the 0.1 m reference distance). *)

val induced_amplitude : profile:Coupling.profile -> t -> float
(** Peak disturbance amplitude (volts) superimposed on the voltage-monitor
    input.  Proportional to the square root of the transmitted power
    (V ∝ E-field ∝ √P), to the coupling gain at the signal frequency, and
    to the path attenuation. *)

val harvestable_power : t -> float
(** RF power (watts) the victim's energy harvester collects from the attack
    signal itself (Section VI-A discussion: attack signals are stored in
    the capacitor as ambient energy). *)

val pp : Format.formatter -> t -> unit

type peak = { f0_mhz : float; half_width_mhz : float; gain : float }

type profile = { peaks : peak list; lowpass_mhz : float; base_gain : float }

let peak ~f0_mhz ~half_width_mhz ~gain =
  if f0_mhz <= 0. || half_width_mhz <= 0. || gain < 0. then
    invalid_arg "Coupling.peak: bad parameters";
  { f0_mhz; half_width_mhz; gain }

let profile ?(base_gain = 0.001) ?(lowpass_mhz = 45.) peaks =
  { peaks; lowpass_mhz; base_gain }

let gain p ~freq_hz =
  let f = freq_hz /. 1e6 in
  let resonant =
    List.fold_left
      (fun acc pk ->
        let x = (f -. pk.f0_mhz) /. pk.half_width_mhz in
        acc +. (pk.gain /. (1. +. (x *. x))))
      0. p.peaks
  in
  (* Fourth-order roll-off: the front end simply does not pass VHF+. *)
  let rolloff =
    let r = f /. p.lowpass_mhz in
    1. /. (1. +. (r ** 4.))
  in
  (p.base_gain +. resonant) *. rolloff

let peak_frequency_mhz p =
  let best = ref 1. and best_g = ref neg_infinity in
  for i = 1 to 1000 do
    let f = float_of_int i in
    let g = gain p ~freq_hz:(f *. 1e6) in
    if g > !best_g then begin
      best_g := g;
      best := f
    end
  done;
  !best

type window = { t_start : float; t_end : float; attack : Attack.t }

type t = window list (* sorted by t_start *)

let empty = []

let window ~t_start ~t_end attack =
  if t_end <= t_start then invalid_arg "Schedule.window: empty window";
  { t_start; t_end; attack }

let make windows =
  let sorted = List.sort (fun a b -> compare a.t_start b.t_start) windows in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.t_end > b.t_start then
          invalid_arg "Schedule.make: overlapping windows"
        else check rest
    | _ -> ()
  in
  check sorted;
  sorted

let always attack = [ { t_start = 0.; t_end = infinity; attack } ]

let active t time =
  List.find_map
    (fun w ->
      if time >= w.t_start && time < w.t_end then Some w.attack else None)
    t

let windows t = t

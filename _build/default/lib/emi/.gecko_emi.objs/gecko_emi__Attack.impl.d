lib/emi/attack.ml: Coupling Format Printf Signal

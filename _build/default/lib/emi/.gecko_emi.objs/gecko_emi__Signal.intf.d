lib/emi/signal.mli: Format

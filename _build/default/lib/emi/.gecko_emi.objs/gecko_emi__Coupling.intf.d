lib/emi/coupling.mli:

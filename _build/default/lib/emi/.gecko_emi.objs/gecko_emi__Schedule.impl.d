lib/emi/schedule.ml: Attack List

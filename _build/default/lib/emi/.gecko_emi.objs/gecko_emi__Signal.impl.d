lib/emi/signal.ml: Format

lib/emi/schedule.mli: Attack

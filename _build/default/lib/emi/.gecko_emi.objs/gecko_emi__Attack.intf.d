lib/emi/attack.mli: Coupling Format Signal

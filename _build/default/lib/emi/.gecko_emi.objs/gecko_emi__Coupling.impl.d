lib/emi/coupling.ml: List

(** Time-varying attack scenarios.

    Fig. 9 and Fig. 13 of the paper drive the victim with attacks that
    start and stop at chosen times (and change frequency to modulate
    aggressiveness).  A schedule is a list of windows. *)

type window = { t_start : float; t_end : float; attack : Attack.t }

type t

val empty : t

val make : window list -> t
(** Windows may not overlap; raises [Invalid_argument] if they do. *)

val window : t_start:float -> t_end:float -> Attack.t -> window

val always : Attack.t -> t
(** The attack is active for the whole run. *)

val active : t -> float -> Attack.t option
(** The attack active at a given simulation time, if any. *)

val windows : t -> window list

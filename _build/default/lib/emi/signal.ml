type t = { freq_hz : float; power_dbm : float }

let make ~freq_mhz ~power_dbm =
  if freq_mhz <= 0. then invalid_arg "Signal.make: frequency must be positive";
  { freq_hz = freq_mhz *. 1e6; power_dbm }

let freq_mhz t = t.freq_hz /. 1e6
let power_watts t = 10. ** (t.power_dbm /. 10.) /. 1000.
let dbm_of_watts w = 10. *. log10 (w *. 1000.)

let pp ppf t =
  Format.fprintf ppf "%.1f MHz @ %.1f dBm" (freq_mhz t) t.power_dbm

type injection_point = P1 | P2

type path =
  | Remote of { distance_m : float; through_wall : bool }
  | Dpi of injection_point

type t = { signal : Signal.t; path : path }

let remote ?(through_wall = false) ~distance_m signal =
  if distance_m <= 0. then invalid_arg "Attack.remote: distance must be positive";
  { signal; path = Remote { distance_m; through_wall } }

let dpi point signal = { signal; path = Dpi point }

let reference_distance = 0.1
let wall_attenuation = 0.45

let path_attenuation t =
  match t.path with
  | Remote { distance_m; through_wall } ->
      let d = max distance_m reference_distance in
      let free_space = reference_distance /. d in
      if through_wall then free_space *. wall_attenuation else free_space
  | Dpi P1 -> 0.55 (* conducted, but filtered by the power-line network *)
  | Dpi P2 -> 1.0 (* directly at the monitor/capacitor node *)

(* Coupling coefficient: volts induced at the monitor input per sqrt-watt
   of effective incident power at the reference distance, with unit
   coupling gain.  Calibrated so that 20 dBm at the reference distance on a
   resonance with gain ~1 swings several volts — enough to cross any
   monitor threshold, matching the universal vulnerability in Table I. *)
let kappa = 14.0

let induced_amplitude ~profile t =
  let p = Signal.power_watts t.signal in
  let g = Coupling.gain profile ~freq_hz:t.signal.Signal.freq_hz in
  let broadband_boost =
    (* Conducted injection at P2 partially bypasses the resonant network:
       it keeps a floor response across the band (Fig. 4, bottom). *)
    match t.path with
    | Dpi P2 -> max g (0.06 /. (1. +. ((t.signal.Signal.freq_hz /. 60e6) ** 4.)))
    | Dpi P1 | Remote _ -> g
  in
  kappa *. sqrt p *. broadband_boost *. path_attenuation t

(* A small rectenna collects a fraction of the incident power. *)
let harvestable_power t =
  let p = Signal.power_watts t.signal in
  let att = path_attenuation t in
  0.002 *. p *. att *. att

let pp ppf t =
  let path_s =
    match t.path with
    | Remote { distance_m; through_wall } ->
        Printf.sprintf "remote %.1f m%s" distance_m
          (if through_wall then " (through wall)" else "")
    | Dpi P1 -> "DPI@P1"
    | Dpi P2 -> "DPI@P2"
  in
  Format.fprintf ppf "%a via %s" Signal.pp t.signal path_s

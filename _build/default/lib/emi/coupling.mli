(** Frequency-selective coupling of EMI into a voltage-monitor front end.

    Low-power MCU boards lack input filtering, so an injected tone couples
    into the monitor input with a gain that peaks at the resonant
    frequencies of the PCB trace / external capacitor network (Section
    II-D).  We model the gain as a sum of Lorentzian resonances under a
    low-pass roll-off; above roughly 50 MHz the paper observed no effect on
    any platform, which the roll-off reproduces. *)

type peak = { f0_mhz : float; half_width_mhz : float; gain : float }
(** One resonance: response [gain / (1 + ((f - f0)/hw)^2)]. *)

type profile = {
  peaks : peak list;
  lowpass_mhz : float;  (** -3 dB-style corner of the front-end roll-off. *)
  base_gain : float;  (** Broadband floor. *)
}

val peak : f0_mhz:float -> half_width_mhz:float -> gain:float -> peak

val profile :
  ?base_gain:float -> ?lowpass_mhz:float -> peak list -> profile

val gain : profile -> freq_hz:float -> float
(** Dimensionless voltage coupling gain at the given frequency. *)

val peak_frequency_mhz : profile -> float
(** Frequency of maximum gain over a 1–1000 MHz scan. *)

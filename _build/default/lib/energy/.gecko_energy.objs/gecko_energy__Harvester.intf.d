lib/energy/harvester.mli:

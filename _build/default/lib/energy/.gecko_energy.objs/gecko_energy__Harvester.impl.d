lib/energy/harvester.ml: Array Float Gecko_util

lib/energy/capacitor.ml:

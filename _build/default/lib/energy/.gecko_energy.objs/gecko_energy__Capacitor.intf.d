lib/energy/capacitor.mli:

open Gecko_isa
module A = Gecko_analysis

let is_boundary = function Instr.Boundary _ -> true | _ -> false

let fresh next_id =
  let id = !next_id in
  incr next_id;
  Instr.Boundary id

(* Insert a boundary at the head of a block unless one is already there. *)
let boundary_at_head next_id (b : Cfg.block) =
  match b.Cfg.instrs with
  | i :: _ when is_boundary i -> 0
  | _ ->
      b.Cfg.instrs <- fresh next_id :: b.Cfg.instrs;
      1

(* Rebuild a block so every I/O instruction is bracketed by boundaries. *)
let bracket_io next_id (b : Cfg.block) =
  let inserted = ref 0 in
  let rec go prev_was_boundary = function
    | [] -> []
    | i :: rest when Instr.is_io i ->
        let before =
          if prev_was_boundary then []
          else begin
            incr inserted;
            [ fresh next_id ]
          end
        in
        let after =
          match rest with
          | r :: _ when is_boundary r -> []
          | _ ->
              incr inserted;
              [ fresh next_id ]
        in
        before @ (i :: after) @ go (after <> []) rest
    | i :: rest -> i :: go (is_boundary i) rest
  in
  b.Cfg.instrs <- go false b.Cfg.instrs;
  !inserted

let structural_pass next_id (p : Cfg.program) =
  let inserted = ref 0 in
  List.iter
    (fun (f : Cfg.func) ->
      let g = A.Fgraph.of_func f in
      let dom = A.Dom.compute g in
      let loops = A.Loops.compute g dom in
      (* Entry block. *)
      inserted := !inserted + boundary_at_head next_id (Cfg.entry_block f);
      (* Loop headers. *)
      List.iter
        (fun h ->
          inserted :=
            !inserted + boundary_at_head next_id g.A.Fgraph.blocks.(h))
        (A.Loops.headers loops);
      (* Call-return blocks. *)
      List.iter
        (fun (b : Cfg.block) ->
          match b.Cfg.term with
          | Instr.Call (_, ret) ->
              inserted :=
                !inserted + boundary_at_head next_id (Cfg.find_block f ret)
          | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> ())
        f.Cfg.blocks;
      (* I/O bracketing. *)
      List.iter
        (fun b -> inserted := !inserted + bracket_io next_id b)
        f.Cfg.blocks)
    p.Cfg.funcs;
  !inserted

(* Is the load at [idx] in [body] WARAW-exempt: a store to provably the
   same location earlier in the same block with no boundary in between, so
   re-execution rewrites the location before re-reading it?  The store
   must MUST-alias the load — a may-aliasing store (dynamic index) might
   rewrite a different word and leave the re-read exposed. *)
let waraw_exempt body idx m =
  let must_alias j (w : Instr.mref) =
    w.Instr.space.Instr.space_id = m.Instr.space.Instr.space_id
    &&
    match (w.Instr.disp, m.Instr.disp) with
    | Instr.Dconst a, Instr.Dconst b -> a = b
    | Instr.Dreg a, Instr.Dreg b ->
        Reg.equal a b
        && (* The index register must be unchanged between the store and
              the load. *)
        (let unchanged = ref true in
         for k = j + 1 to idx - 1 do
           if Reg.Set.mem a (Instr.defs body.(k)) then unchanged := false
         done;
         !unchanged)
    | Instr.Dconst _, Instr.Dreg _ | Instr.Dreg _, Instr.Dconst _ -> false
  in
  let exempt = ref false in
  (try
     for j = idx - 1 downto 0 do
       match body.(j) with
       | i when is_boundary i -> raise Exit
       | Instr.St (w, _) when must_alias j w -> begin
           exempt := true;
           raise Exit
         end
       | _ -> ()
     done
   with Exit -> ());
  !exempt

(* Find an aliasing store reachable from (blk, start_idx) without crossing a
   boundary.  Returns its (block, index). *)
let find_war_store (g : A.Fgraph.t) bodies blk start_idx m =
  let visited = Array.make (A.Fgraph.n_blocks g) false in
  let exception Found of int * int in
  let rec scan_block bi from =
    let body = bodies.(bi) in
    let stop = ref false in
    let i = ref from in
    while (not !stop) && !i < Array.length body do
      (match body.(!i) with
      | instr when is_boundary instr -> stop := true
      | Instr.St (w, _) when A.Alias.may_alias w m -> raise (Found (bi, !i))
      | _ -> ());
      incr i
    done;
    if not !stop then
      match g.A.Fgraph.blocks.(bi).Cfg.term with
      | Instr.Call _ | Instr.Ret | Instr.Halt -> ()
      | Instr.Jmp _ | Instr.Br _ ->
          List.iter
            (fun s ->
              if not visited.(s) then begin
                visited.(s) <- true;
                scan_block s 0
              end)
            g.A.Fgraph.succ.(bi)
  in
  try
    scan_block blk start_idx;
    None
  with Found (b, i) -> Some (b, i)

let find_violation (p : Cfg.program) =
  let result = ref None in
  (try
     List.iter
       (fun (f : Cfg.func) ->
         let g = A.Fgraph.of_func f in
         let bodies =
           Array.map
             (fun (b : Cfg.block) -> Array.of_list b.Cfg.instrs)
             g.A.Fgraph.blocks
         in
         Array.iteri
           (fun bi body ->
             Array.iteri
               (fun idx instr ->
                 match Instr.mem_read instr with
                 | Some m when not (waraw_exempt body idx m) -> (
                     match find_war_store g bodies bi (idx + 1) m with
                     | Some (sb, si) ->
                         result := Some (f, g, bi, idx, sb, si, m);
                         raise Exit
                     | None -> ())
                 | Some _ | None -> ())
               body)
           bodies)
       p.Cfg.funcs
   with Exit -> ());
  !result

let insert_in_block (b : Cfg.block) idx instr =
  let rec go i = function
    | rest when i = idx -> instr :: rest
    | [] -> [ instr ]
    | x :: rest -> x :: go (i + 1) rest
  in
  b.Cfg.instrs <- go 0 b.Cfg.instrs

let rec war_fixpoint next_id (p : Cfg.program) acc =
  match find_violation p with
  | None -> acc
  | Some (f, g, _, _, sb, si, _) ->
      let blk = g.A.Fgraph.blocks.(sb) in
      ignore f;
      insert_in_block blk si (fresh next_id);
      war_fixpoint next_id p (acc + 1)

let form ~next_id p =
  let a = structural_pass next_id p in
  let b = war_fixpoint next_id p 0 in
  a + b

let violations (p : Cfg.program) =
  (* Report-only variant: collect every violating pair. *)
  let out = ref [] in
  List.iter
    (fun (f : Cfg.func) ->
      let g = A.Fgraph.of_func f in
      let bodies =
        Array.map
          (fun (b : Cfg.block) -> Array.of_list b.Cfg.instrs)
          g.A.Fgraph.blocks
      in
      Array.iteri
        (fun bi body ->
          Array.iteri
            (fun idx instr ->
              match Instr.mem_read instr with
              | Some m when not (waraw_exempt body idx m) -> (
                  match find_war_store g bodies bi (idx + 1) m with
                  | Some (sb, si) ->
                      out :=
                        Format.asprintf
                          "%s: load %a at %s+%d anti-depends on store at %s+%d \
                           with no boundary between"
                          f.Cfg.fname Instr.pp_mref m
                          g.A.Fgraph.blocks.(bi).Cfg.label idx
                          g.A.Fgraph.blocks.(sb).Cfg.label si
                        :: !out
                  | None -> ())
              | Some _ | None -> ())
            body)
        bodies)
    p.Cfg.funcs;
  List.rev !out

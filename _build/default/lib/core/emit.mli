(** Materialize checkpoint stores and recovery metadata.

    GECKO schemes: for every boundary, one [Ckpt (r, colour)] per kept
    candidate is inserted immediately before the [Boundary] instruction,
    and pruned candidates' slices are materialized (slot leaves resolved
    to [LdSlot] with the boundary's colour for that register).

    Ratchet: sixteen [CkptDyn] stores before every boundary; restores are
    parity-driven at runtime, so per-boundary metadata is empty. *)

open Gecko_isa

val gecko :
  Scheme.t ->
  Cfg.program ->
  Candidates.t ->
  Prune.result ->
  Coloring.t ->
  Meta.t

val ratchet : Cfg.program -> Meta.t

(** Final verification passes run after compilation (and used heavily by
    the property-based tests). *)

open Gecko_isa

val idempotence : Cfg.program -> (unit, string list) result
(** No memory anti-dependence survives without a boundary between the
    load and the store (WARAW-exempt pairs aside). *)

val coloring : Cfg.program -> Meta.t -> (unit, string list) result
(** No two span-adjacent boundaries checkpoint the same register into the
    same slot colour. *)

val wcet : budget:int -> Cfg.program -> (unit, string list) result
(** Every region span (with its emitted checkpoint stores) fits the
    charge-cycle budget. *)

open Gecko_isa

let idempotence p =
  match Regions.violations p with [] -> Ok () | errs -> Error errs

let coloring p (meta : Meta.t) =
  let cands = Candidates.compute p in
  let vf = Valueflow.make p cands in
  let site_tbl = Hashtbl.create 32 in
  List.iter
    (fun (s : Candidates.site) ->
      Hashtbl.replace site_tbl s.Candidates.s_id s)
    cands.Candidates.sites;
  let owned bid r =
    match Meta.boundary_info meta bid with
    | None -> None
    | Some info ->
        List.find_map
          (fun (x : Meta.restore) ->
            if Reg.equal x.Meta.r_reg r && x.Meta.r_owned then
              Some (x.Meta.r_color, x.Meta.r_stable)
            else None)
          info.Meta.restores
  in
  let owned_color bid r = Option.map fst (owned bid r) in
  let errs = ref [] in
  List.iter
    (fun r ->
      let stops bid = owned_color bid r <> None in
      let edges = Coloring.adjacency_for cands ~stops in
      List.iter
        (fun (b1, b2) ->
          let same_value () =
            match
              (Hashtbl.find_opt site_tbl b1, Hashtbl.find_opt site_tbl b2)
            with
            | Some sa, Some sb ->
                Valueflow.same_value_over_edge vf r ~src:sa ~dst:sb
            | _ -> false
          in
          match (owned b1 r, owned b2 r) with
          | Some (_, Some s1), Some (_, Some s2) when s1 = s2 ->
              () (* same stability class: identical values, exempt *)
          | Some (c1, _), Some (c2, _) when c1 = c2 && same_value () -> ()
          | Some (c1, _), Some (c2, _) when c1 = c2 ->
              errs :=
                Printf.sprintf
                  "stores %d -> %d both checkpoint %s into colour %d" b1 b2
                  (Reg.to_string r) c1
                :: !errs
          | _ -> ())
        edges)
    Reg.all;
  match !errs with [] -> Ok () | e -> Error (List.rev e)

let wcet ~budget p =
  let over = Split.max_span p in
  if over <= budget then Ok ()
  else
    Error
      [
        Printf.sprintf "worst-case region span %d cycles exceeds budget %d" over
          budget;
      ]

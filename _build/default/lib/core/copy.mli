(** Deep copy of a CFG program, so one built program can be compiled under
    several schemes independently. *)

val program : Gecko_isa.Cfg.program -> Gecko_isa.Cfg.program

lib/core/coloring.ml: Array Candidates Cfg Gecko_analysis Gecko_isa Hashtbl Instr List Printf Prune Queue Reg Spans String Sys Valueflow

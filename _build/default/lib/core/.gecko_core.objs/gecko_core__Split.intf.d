lib/core/split.mli: Gecko_isa

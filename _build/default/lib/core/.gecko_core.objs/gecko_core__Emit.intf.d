lib/core/emit.mli: Candidates Cfg Coloring Gecko_isa Meta Prune Scheme

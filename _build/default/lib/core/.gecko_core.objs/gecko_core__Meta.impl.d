lib/core/meta.ml: Format Gecko_isa Hashtbl Instr Reg Scheme

lib/core/verify.mli: Cfg Gecko_isa Meta

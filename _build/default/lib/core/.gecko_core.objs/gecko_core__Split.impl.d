lib/core/split.ml: Array Cfg Cost Gecko_analysis Gecko_isa Instr List Printf

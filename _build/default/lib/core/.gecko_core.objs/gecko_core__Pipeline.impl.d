lib/core/pipeline.ml: Cfg Coloring Copy Cost Emit Gecko_isa Instr Meta Printf Prune Reg Regions Scheme Split String Verify

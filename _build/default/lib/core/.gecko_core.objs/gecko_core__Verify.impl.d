lib/core/verify.ml: Candidates Coloring Gecko_isa Hashtbl List Meta Option Printf Reg Regions Split Valueflow

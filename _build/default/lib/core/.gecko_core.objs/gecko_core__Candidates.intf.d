lib/core/candidates.mli: Cfg Gecko_analysis Gecko_isa Reg

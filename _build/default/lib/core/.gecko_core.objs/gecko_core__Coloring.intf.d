lib/core/coloring.mli: Candidates Cfg Gecko_isa Prune Reg

lib/core/candidates.ml: Array Cfg Gecko_analysis Gecko_isa Instr List Reg

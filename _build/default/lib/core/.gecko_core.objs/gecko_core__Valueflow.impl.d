lib/core/valueflow.ml: Array Candidates Cfg Gecko_analysis Gecko_isa Hashtbl Instr List Reg

lib/core/meta.mli: Format Gecko_isa Hashtbl Instr Reg Scheme

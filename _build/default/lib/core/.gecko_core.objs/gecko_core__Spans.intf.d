lib/core/spans.mli: Candidates

lib/core/regions.ml: Array Cfg Format Gecko_analysis Gecko_isa Instr List Reg

lib/core/prune.mli: Candidates Cfg Gecko_isa Hashtbl Instr Reg

lib/core/valueflow.mli: Candidates Cfg Gecko_isa Reg

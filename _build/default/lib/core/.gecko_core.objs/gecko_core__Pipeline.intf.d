lib/core/pipeline.mli: Cfg Gecko_isa Meta Scheme

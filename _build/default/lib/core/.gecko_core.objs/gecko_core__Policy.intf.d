lib/core/policy.mli:

lib/core/emit.ml: Array Candidates Cfg Coloring Gecko_isa Hashtbl Instr List Meta Prune Reg Scheme

lib/core/copy.mli: Gecko_isa

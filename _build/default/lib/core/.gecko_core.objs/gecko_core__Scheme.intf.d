lib/core/scheme.mli: Format

lib/core/scheme.ml: Format

lib/core/copy.ml: Cfg Gecko_isa List

lib/core/regions.mli: Gecko_isa

(** Idempotent region formation (Section VI-B).

    Inserts [Boundary] instructions so that every span executed between
    two dynamic boundary crossings is idempotent:

    - a boundary at every function entry;
    - a boundary at every natural-loop header;
    - boundaries immediately before and after every I/O instruction
      (I/O must not silently replay across a whole region);
    - a boundary at the start of every call-return block (callee entries
      are covered by the function-entry rule);
    - anti-dependence cuts: for every may-aliasing load→store pair
      reachable without crossing a boundary, a boundary is inserted before
      the store — unless the pair is WARAW-exempt (a store to the same
      location precedes the load in the same block with no boundary in
      between, so re-execution rewrites before re-reading).

    The pass runs to a fixpoint and is idempotent: re-running it on an
    already-formed program inserts nothing. *)

val form : next_id:int ref -> Gecko_isa.Cfg.program -> int
(** Returns the number of boundaries inserted. *)

val violations : Gecko_isa.Cfg.program -> string list
(** Human-readable list of remaining WAR violations (empty on a correctly
    formed program) — the final verification pass. *)

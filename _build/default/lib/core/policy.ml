type mode = Jit_on | Idempotent | Probe

type boot_obs = { ack_ok : bool; progress : bool }

type boot_action = Resume_jit | Rollback

let mode_to_int = function Jit_on -> 0 | Idempotent -> 1 | Probe -> 2

let mode_of_int = function
  | 0 -> Jit_on
  | 1 -> Idempotent
  | 2 -> Probe
  | n -> invalid_arg (Printf.sprintf "Policy.mode_of_int: %d" n)

let mode_to_string = function
  | Jit_on -> "JIT"
  | Idempotent -> "idempotent"
  | Probe -> "probe"

let on_boot mode obs =
  match mode with
  | Jit_on ->
      if obs.ack_ok && obs.progress then (Jit_on, Resume_jit, false)
      else (Idempotent, Rollback, true)
  | Idempotent ->
      (* Attempt to get back to normal: re-enable the monitor for one
         probationary region. *)
      (Probe, Rollback, false)
  | Probe ->
      (* The probe power cycle ended without a commit and without a
         signal (e.g. a hard brownout): stay defensive. *)
      (Idempotent, Rollback, false)

type backup_action = Checkpoint_and_sleep | Rollback_inline

let on_backup_signal mode ~early =
  match mode with
  | Jit_on ->
      if early then (Idempotent, Rollback_inline, true)
      else (Jit_on, Checkpoint_and_sleep, false)
  | Probe -> (Idempotent, Rollback_inline, true)
  | Idempotent -> (Idempotent, Rollback_inline, false)

let on_region_commit = function
  | Probe -> Jit_on
  | (Jit_on | Idempotent) as m -> m

let monitor_enabled = function Jit_on | Probe -> true | Idempotent -> false

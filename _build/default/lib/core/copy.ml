open Gecko_isa

let block (b : Cfg.block) =
  {
    Cfg.label = b.Cfg.label;
    instrs = b.Cfg.instrs;
    term = b.Cfg.term;
    loop_bound = b.Cfg.loop_bound;
  }

let func (f : Cfg.func) =
  { Cfg.fname = f.Cfg.fname; blocks = List.map block f.Cfg.blocks }

let program (p : Cfg.program) =
  {
    Cfg.pname = p.Cfg.pname;
    funcs = List.map func p.Cfg.funcs;
    main = p.Cfg.main;
    spaces = p.Cfg.spaces;
    init_data = p.Cfg.init_data;
  }

(** Segment-level value identity between checkpoint stores.

    Two stores of register [r] at boundaries [a] and [b] write the same
    word whenever no definition of [r] (including call-clobber
    pseudo-definitions) can execute on a path from [a] to [b] that does
    not re-cross [a].  Such stores may share a slot colour: a partial
    overwrite leaves the same value in place.  This exemption is what
    makes 2-colouring feasible when several boundaries of one loop all
    checkpoint the same register (e.g. the unpruned configuration). *)

open Gecko_isa

type t

val make : Cfg.program -> Candidates.t -> t

val same_value_over_edge :
  t -> Reg.t -> src:Candidates.site -> dst:Candidates.site -> bool
(** Conservative: [false] whenever the sites are in different functions. *)

open Gecko_isa
module A = Gecko_analysis

type t = {
  cands : Candidates.t;
  defsites : A.Fgraph.point list array array; (* func -> reg -> points *)
}

let make (p : Cfg.program) (cands : Candidates.t) =
  let clobbers = A.Clobbers.compute p in
  let call_defs = A.Clobbers.of_function clobbers in
  let defsites =
    Array.map
      (fun (g : A.Fgraph.t) ->
        let ds = Array.make Reg.count [] in
        Array.iteri
          (fun bi (b : Cfg.block) ->
            List.iteri
              (fun idx i ->
                Reg.Set.iter
                  (fun r ->
                    ds.(Reg.to_int r) <-
                      { A.Fgraph.blk = bi; idx } :: ds.(Reg.to_int r))
                  (Instr.defs i))
              b.Cfg.instrs;
            match b.Cfg.term with
            | Instr.Call (callee, _) ->
                let pos =
                  { A.Fgraph.blk = bi; idx = List.length b.Cfg.instrs }
                in
                Reg.Set.iter
                  (fun r -> ds.(Reg.to_int r) <- pos :: ds.(Reg.to_int r))
                  (call_defs callee)
            | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> ())
          g.A.Fgraph.blocks;
        ds)
      cands.Candidates.graphs
  in
  { cands; defsites }

let same_value_over_edge t r ~(src : Candidates.site) ~(dst : Candidates.site)
    =
  src.Candidates.s_func = dst.Candidates.s_func
  &&
  let fi = src.Candidates.s_func in
  let g = t.cands.Candidates.graphs.(fi) in
  let op = src.Candidates.s_point in
  let sp = dst.Candidates.s_point in
  let ob = op.A.Fgraph.blk in
  (* Reach [dstb] from [srcs] without passing through [ob] — except that
     arriving AT [dstb] itself is always allowed, even when dstb = ob
     (re-entering the source block is exactly how a wrap-around edge
     reaches a destination at or before the source). *)
  let reach_avoiding srcs dstb =
    let seen = Hashtbl.create 16 in
    let found = ref false in
    let rec go b =
      if b = dstb then found := true
      else if b <> ob && not (Hashtbl.mem seen b) then begin
        Hashtbl.replace seen b ();
        List.iter go g.A.Fgraph.succ.(b)
      end
    in
    List.iter go srcs;
    !found
  in
  (* Is the destination strictly later in the source block?  Then the
     span is the in-block segment; otherwise it wraps the CFG. *)
  let forward_in_block =
    sp.A.Fgraph.blk = ob && sp.A.Fgraph.idx > op.A.Fgraph.idx
  in
  List.for_all
    (fun (dq : A.Fgraph.point) ->
      if forward_in_block then
        (* Only in-block definitions strictly between the points can
           execute on the segment (flow cannot leave mid-block). *)
        not
          (dq.A.Fgraph.blk = ob
          && dq.A.Fgraph.idx > op.A.Fgraph.idx
          && dq.A.Fgraph.idx < sp.A.Fgraph.idx)
      else if dq.A.Fgraph.blk = ob then
        if sp.A.Fgraph.blk = ob then
          (* Wrap-around to a destination at/before the source: defs
             after the source run before leaving the block; defs before
             the destination run on re-entry before arrival. *)
          not
            (dq.A.Fgraph.idx > op.A.Fgraph.idx
            || dq.A.Fgraph.idx < sp.A.Fgraph.idx)
        else
          (* Destination elsewhere: only defs after the source matter
             (re-entering the block re-crosses the source store). *)
          dq.A.Fgraph.idx <= op.A.Fgraph.idx
      else
        let step1 = reach_avoiding g.A.Fgraph.succ.(ob) dq.A.Fgraph.blk in
        let step2 =
          (dq.A.Fgraph.blk = sp.A.Fgraph.blk
          && dq.A.Fgraph.idx < sp.A.Fgraph.idx)
          || reach_avoiding g.A.Fgraph.succ.(dq.A.Fgraph.blk) sp.A.Fgraph.blk
        in
        not (step1 && step2))
    t.defsites.(fi).(Reg.to_int r)

(** The power-failure-recovery schemes compared in the evaluation. *)

type t =
  | Nvp  (** JIT checkpointing only (CTPL-style); the baseline. *)
  | Ratchet
      (** Compiler-directed rollback recovery: idempotent regions with
          full register checkpointing and dynamic double buffering. *)
  | Gecko_noprune  (** GECKO without the checkpoint-pruning optimization. *)
  | Gecko  (** Full GECKO: pruning + recovery blocks + 2-colouring. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list

val uses_boundaries : t -> bool
(** Whether the compiler inserts regions/checkpoints at all. *)

type t = Nvp | Ratchet | Gecko_noprune | Gecko

let to_string = function
  | Nvp -> "NVP"
  | Ratchet -> "Ratchet"
  | Gecko_noprune -> "GECKO w/o pruning"
  | Gecko -> "GECKO"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all = [ Nvp; Ratchet; Gecko_noprune; Gecko ]

let uses_boundaries = function
  | Nvp -> false
  | Ratchet | Gecko_noprune | Gecko -> true

(** GECKO's reactive EMI-attack detection and mode control (Sections VI-A
    and VI-F), as a pure state machine hosted by the runtime.

    Modes:
    - [Jit_on]: normal operation; the voltage monitor is trusted and JIT
      checkpointing serves roll-forward recovery.
    - [Idempotent]: under attack; the monitor is disabled (attack surface
      closed) and recovery rolls back to the last committed region.
    - [Probe]: first region after a reboot while recovering from an
      attack; the monitor is re-enabled provisionally.  A checkpoint
      signal before the first region commit means the attack persists.

    Detection signals at boot:
    - ACK check: the JIT checkpoint ISR persists a toggling ACK as its
      last write; an untoggled ACK across a power failure means the
      checkpoint was cut short (data corruption attempt).
    - Progress check: at least one region boundary must have committed
      since the previous boot — a full charge guarantees one region by
      WCET construction, so zero progress means spurious wake-ups (DoS).

    The mode is persisted in NVM by the host so it survives outages. *)

type mode = Jit_on | Idempotent | Probe

type boot_obs = {
  ack_ok : bool;  (** ACK toggled as expected across the outage. *)
  progress : bool;  (** ≥ 1 region committed during the last power cycle. *)
}

type boot_action =
  | Resume_jit  (** Restore registers/PC from the JIT checkpoint area. *)
  | Rollback  (** Re-enter the last committed region via GECKO metadata. *)

val mode_to_int : mode -> int
val mode_of_int : int -> mode
val mode_to_string : mode -> string

val on_boot : mode -> boot_obs -> mode * boot_action * bool
(** New mode, how to restore state, and whether an attack was detected at
    this boot. *)

type backup_action =
  | Checkpoint_and_sleep  (** Trust the signal: JIT checkpoint, power down. *)
  | Rollback_inline
      (** Reject the signal: disable the monitor, re-enter the interrupted
          region from compiler checkpoints, keep running (Section VI-F:
          "rolls back to a recent idempotent recovery point"). *)

val on_backup_signal : mode -> early:bool -> mode * backup_action * bool
(** The monitor raised a checkpoint signal while running.  [early] is the
    timer-based detection input: the signal arrived sooner after boot
    than the guaranteed minimum power-on period of a full charge, which a
    genuine discharge cannot do.  In [Probe], {e any} signal before the
    first region commit means the attack persists.  Returns (new mode,
    action, detected). *)

val on_region_commit : mode -> mode
(** A region boundary committed.  In [Probe], the quiet first region
    completes the re-enable handshake: back to [Jit_on]. *)

val monitor_enabled : mode -> bool
(** The attack surface is closed in [Idempotent] mode. *)

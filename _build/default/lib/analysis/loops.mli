(** Natural-loop detection from back edges.

    A back edge is an edge [b -> h] where [h] dominates [b]; [h] is a loop
    header.  GECKO places a region boundary at every loop header (Section
    VI-B, "Loop and I/O operation"), which also guarantees the WCET span
    graph is acyclic. *)

type loop = { header : int; body : int list (* includes the header *) }

type t

val compute : Fgraph.t -> Dom.t -> t

val headers : t -> int list

val is_header : t -> int -> bool

val loops : t -> loop list

val containing : t -> int -> loop list
(** Loops whose body contains the given block. *)

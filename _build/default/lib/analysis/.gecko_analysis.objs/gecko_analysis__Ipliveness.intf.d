lib/analysis/ipliveness.mli: Cfg Fgraph Gecko_isa Reg

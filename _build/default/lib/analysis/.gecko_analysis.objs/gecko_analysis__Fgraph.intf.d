lib/analysis/fgraph.mli: Cfg Format Gecko_isa Hashtbl Instr

lib/analysis/wcet.mli: Fgraph

lib/analysis/reaching.mli: Fgraph Gecko_isa Reg

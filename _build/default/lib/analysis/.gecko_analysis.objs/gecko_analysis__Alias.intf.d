lib/analysis/alias.mli: Cfg Gecko_isa Instr

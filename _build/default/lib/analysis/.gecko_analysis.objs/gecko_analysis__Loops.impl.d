lib/analysis/loops.ml: Array Dom Fgraph Hashtbl Int List Set

lib/analysis/alias.ml: Cfg Gecko_isa Instr

lib/analysis/ipliveness.ml: Array Cfg Fgraph Gecko_isa Hashtbl Instr List Printf Reg

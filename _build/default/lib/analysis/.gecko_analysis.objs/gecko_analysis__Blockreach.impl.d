lib/analysis/blockreach.ml: Array Fgraph List Queue

lib/analysis/fgraph.ml: Array Cfg Format Gecko_isa Hashtbl List Printf

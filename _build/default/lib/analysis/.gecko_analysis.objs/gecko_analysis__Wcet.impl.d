lib/analysis/wcet.ml: Array Cfg Cost Fgraph Format Gecko_isa Hashtbl Instr List

lib/analysis/live.ml: Array Cfg Fgraph Gecko_isa Instr List Reg

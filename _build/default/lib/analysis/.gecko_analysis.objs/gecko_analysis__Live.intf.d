lib/analysis/live.mli: Fgraph Gecko_isa Reg

lib/analysis/dom.ml: Array Fgraph List

lib/analysis/blockreach.mli: Fgraph

lib/analysis/dom.mli: Fgraph

lib/analysis/loops.mli: Dom Fgraph

lib/analysis/clobbers.ml: Cfg Gecko_isa Hashtbl Instr List Reg

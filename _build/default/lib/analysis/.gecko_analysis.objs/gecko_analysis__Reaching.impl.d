lib/analysis/reaching.ml: Array Cfg Fgraph Gecko_isa Hashtbl Instr Int List Reg Set

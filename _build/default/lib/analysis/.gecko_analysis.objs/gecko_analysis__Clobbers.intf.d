lib/analysis/clobbers.mli: Cfg Gecko_isa Reg

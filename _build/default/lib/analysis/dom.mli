(** Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm). *)

type t

val compute : Fgraph.t -> t

val idom : t -> int -> int
(** Immediate dominator of a block id; the entry's idom is itself.
    Unreachable blocks report themselves. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does block [a] dominate block [b]?  Reflexive. *)

val dominates_point : t -> Fgraph.point -> Fgraph.point -> bool
(** Point-level domination: strictly earlier in the same block, or the
    block dominates (for distinct blocks).  [dominates_point t a b] means
    an execution reaching [b] has passed [a]. *)

(** Register clobber summaries: the registers a function (transitively,
    through its callees) may define.  Used to treat call sites as
    definition points in the reaching-definitions analysis — without
    this, checkpoint pruning could wrongly assume a register is unchanged
    across a call that overwrites it.

    The stack pointer is excluded: call/return pairs are balanced, so
    from the caller's perspective SP is preserved. *)

open Gecko_isa

type t

val compute : Cfg.program -> t

val of_function : t -> string -> Reg.Set.t
(** Registers possibly defined by calling the function (empty set for
    unknown names). *)

open Gecko_isa

type finfo = {
  g : Fgraph.t;
  mutable live_in : Reg.Set.t array;
  mutable live_out : Reg.Set.t array;
}

type t = {
  infos : (string, finfo) Hashtbl.t;
  entry_live : (string, Reg.Set.t) Hashtbl.t;
  ret_uses : (string, Reg.Set.t) Hashtbl.t;
}

let lookup tbl key =
  try Hashtbl.find tbl key with Not_found -> Reg.Set.empty

let term_uses t ~fname term =
  match term with
  | Instr.Call (callee, _) ->
      (* The stack pointer is implicitly read by the push. *)
      Reg.Set.add Reg.sp (lookup t.entry_live callee)
  | Instr.Ret -> Reg.Set.add Reg.sp (lookup t.ret_uses fname)
  | Instr.Jmp _ | Instr.Br _ | Instr.Halt -> Instr.term_uses term

let block_transfer t ~fname (b : Cfg.block) out =
  let after_term = Reg.Set.union out (term_uses t ~fname b.Cfg.term) in
  List.fold_right
    (fun i live ->
      Reg.Set.union (Instr.uses i) (Reg.Set.diff live (Instr.defs i)))
    b.Cfg.instrs after_term

(* One round of per-function dataflow; returns whether anything changed. *)
let flow_function t fname (fi : finfo) =
  let n = Fgraph.n_blocks fi.g in
  let changed = ref false in
  let pass () =
    let inner = ref true in
    while !inner do
      inner := false;
      for b = n - 1 downto 0 do
        let out =
          List.fold_left
            (fun acc s -> Reg.Set.union acc fi.live_in.(s))
            Reg.Set.empty fi.g.Fgraph.succ.(b)
        in
        let inn = block_transfer t ~fname fi.g.Fgraph.blocks.(b) out in
        if not (Reg.Set.equal out fi.live_out.(b)) then begin
          fi.live_out.(b) <- out;
          inner := true;
          changed := true
        end;
        if not (Reg.Set.equal inn fi.live_in.(b)) then begin
          fi.live_in.(b) <- inn;
          inner := true;
          changed := true
        end
      done
    done
  in
  pass ();
  !changed

let compute (p : Cfg.program) =
  let t =
    {
      infos = Hashtbl.create 8;
      entry_live = Hashtbl.create 8;
      ret_uses = Hashtbl.create 8;
    }
  in
  List.iter
    (fun (f : Cfg.func) ->
      let g = Fgraph.of_func f in
      let n = Fgraph.n_blocks g in
      Hashtbl.replace t.infos f.Cfg.fname
        {
          g;
          live_in = Array.make n Reg.Set.empty;
          live_out = Array.make n Reg.Set.empty;
        })
    p.Cfg.funcs;
  let stable = ref false in
  let rounds = ref 0 in
  while (not !stable) && !rounds < 64 do
    incr rounds;
    stable := true;
    (* Per-function flow with the current summaries. *)
    Hashtbl.iter
      (fun fname fi -> if flow_function t fname fi then stable := false)
      t.infos;
    (* Refresh summaries. *)
    Hashtbl.iter
      (fun fname (fi : finfo) ->
        let e = if Fgraph.n_blocks fi.g > 0 then fi.live_in.(0) else Reg.Set.empty in
        if not (Reg.Set.equal e (lookup t.entry_live fname)) then begin
          Hashtbl.replace t.entry_live fname e;
          stable := false
        end)
      t.infos;
    List.iter
      (fun (f : Cfg.func) ->
        let caller = Hashtbl.find t.infos f.Cfg.fname in
        List.iteri
          (fun bi (b : Cfg.block) ->
            ignore bi;
            match b.Cfg.term with
            | Instr.Call (callee, ret) ->
                let ret_blk = Fgraph.block_id caller.g ret in
                let live_ret = caller.live_in.(ret_blk) in
                let old = lookup t.ret_uses callee in
                let merged = Reg.Set.union old live_ret in
                if not (Reg.Set.equal merged old) then begin
                  Hashtbl.replace t.ret_uses callee merged;
                  stable := false
                end
            | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> ())
          f.Cfg.blocks)
      p.Cfg.funcs
  done;
  t

let find t fname =
  match Hashtbl.find_opt t.infos fname with
  | Some fi -> fi
  | None -> invalid_arg (Printf.sprintf "Ipliveness: unknown function %s" fname)

let live_at t ~fname (p : Fgraph.point) =
  let fi = find t fname in
  let b = fi.g.Fgraph.blocks.(p.Fgraph.blk) in
  let after_term =
    Reg.Set.union fi.live_out.(p.Fgraph.blk) (term_uses t ~fname b.Cfg.term)
  in
  let nb = List.length b.Cfg.instrs in
  let rec walk i live rev_instrs =
    if i < p.Fgraph.idx then live
    else
      match rev_instrs with
      | [] -> live
      | instr :: rest ->
          let live' =
            Reg.Set.union (Instr.uses instr)
              (Reg.Set.diff live (Instr.defs instr))
          in
          walk (i - 1) live' rest
  in
  walk (nb - 1) after_term (List.rev b.Cfg.instrs)

let graph t ~fname = (find t fname).g

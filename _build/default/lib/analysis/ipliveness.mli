(** Inter-procedural register liveness (context-insensitive).

    Per-function liveness is computed with call summaries and iterated to
    a fixpoint:

    - a [Call f] terminator uses the live-in set of [f]'s entry;
    - a [Ret] in [f] uses the union, over [f]'s call sites, of the live
      set at the corresponding return-block entry;
    - calls kill nothing (sound over-approximation of liveness).

    This determines the checkpoint candidate sets at call-related region
    boundaries — far smaller than the all-registers fallback. *)

open Gecko_isa

type t

val compute : Cfg.program -> t

val live_at : t -> fname:string -> Fgraph.point -> Reg.Set.t
(** Registers live immediately before the instruction at the point. *)

val graph : t -> fname:string -> Fgraph.t

(** Indexed view of a function's control-flow graph.

    Compiler passes mutate block instruction lists; analyses therefore
    rebuild this view after every structural change (programs are small,
    full recomputation is cheap and keeps passes simple). *)

open Gecko_isa

type t = {
  func : Cfg.func;
  blocks : Cfg.block array;  (** Layout order; index 0 is the entry. *)
  index_of : (string, int) Hashtbl.t;
  succ : int list array;
  pred : int list array;
}

val of_func : Cfg.func -> t

val n_blocks : t -> int

val block_id : t -> string -> int

val rpo : t -> int array
(** Reverse postorder over blocks reachable from the entry. *)

val reachable : t -> bool array

(** A program point: instruction [idx] within block [blk] ([idx] may equal
    the instruction count, denoting the terminator position). *)
type point = { blk : int; idx : int }

val point_compare : point -> point -> int

val instr_at : t -> point -> Instr.t option
(** [None] at the terminator position. *)

val pp_point : t -> Format.formatter -> point -> unit

(** Intra-function block reachability (transitive closure over successor
    edges; call terminators flow to their return blocks). *)

type t

val compute : Fgraph.t -> t

val reaches : t -> int -> int -> bool
(** [reaches t a b] — can control flow from block [a] to block [b]
    (irreflexive unless a cycle passes through [a])? *)

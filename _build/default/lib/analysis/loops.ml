module Iset = Set.Make (Int)

type loop = { header : int; body : int list }

type t = { loops : loop list; header_set : Iset.t }

let natural_loop (g : Fgraph.t) header tail =
  (* Body = header plus everything that reaches [tail] without passing
     through [header]. *)
  let body = ref (Iset.singleton header) in
  let rec add b =
    if not (Iset.mem b !body) then begin
      body := Iset.add b !body;
      List.iter add g.Fgraph.pred.(b)
    end
  in
  add tail;
  !body

let compute (g : Fgraph.t) (dom : Dom.t) =
  let n = Fgraph.n_blocks g in
  let acc = ref [] in
  for b = 0 to n - 1 do
    List.iter
      (fun s ->
        if Dom.dominates dom s b then
          acc := { header = s; body = Iset.elements (natural_loop g s b) } :: !acc)
      g.Fgraph.succ.(b)
  done;
  (* Merge loops sharing a header. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let prev = try Hashtbl.find tbl l.header with Not_found -> Iset.empty in
      Hashtbl.replace tbl l.header
        (Iset.union prev (Iset.of_list l.body)))
    !acc;
  let loops =
    Hashtbl.fold
      (fun header body acc -> { header; body = Iset.elements body } :: acc)
      tbl []
  in
  let header_set =
    List.fold_left (fun s l -> Iset.add l.header s) Iset.empty loops
  in
  { loops; header_set }

let headers t = Iset.elements t.header_set
let is_header t b = Iset.mem b t.header_set
let loops t = t.loops
let containing t b = List.filter (fun l -> List.mem b l.body) t.loops

type t = bool array array

let compute (g : Fgraph.t) =
  let n = Fgraph.n_blocks g in
  let m = Array.make_matrix n n false in
  for src = 0 to n - 1 do
    (* BFS from the successors of [src]. *)
    let q = Queue.create () in
    List.iter (fun s -> Queue.add s q) g.Fgraph.succ.(src);
    while not (Queue.is_empty q) do
      let b = Queue.take q in
      if not m.(src).(b) then begin
        m.(src).(b) <- true;
        List.iter (fun s -> Queue.add s q) g.Fgraph.succ.(b)
      end
    done
  done;
  m

let reaches t a b = t.(a).(b)

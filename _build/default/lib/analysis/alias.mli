(** Alias analysis over symbolic memory references.

    Every reference names its allocation (space); two references may alias
    iff they address the same space and their displacements can coincide.
    Distinct spaces are distinct allocations by construction, so the
    analysis is sound and — for builder-written MCU kernels — precise
    enough to expose the WAR/WARAW structure region formation needs. *)

open Gecko_isa

val may_alias : Instr.mref -> Instr.mref -> bool

val space_written : Cfg.program -> Instr.space -> bool
(** Does any store in the program target the space? *)

val location_read_only : Cfg.program -> Instr.mref -> bool
(** No store in the program can write this location: for a constant
    displacement, no aliasing store exists; for a dynamic displacement the
    whole space must be store-free.  Recovery-block loads require this. *)

(** Register liveness (backward dataflow).

    [Call] and [Ret] terminators conservatively use every register: the
    analysis is intra-procedural (Section VI-B treats calls as separate
    regions), so anything can be needed across the boundary.  This only
    inflates the checkpoint set at call-related boundaries — sound. *)

open Gecko_isa

type t

val compute : Fgraph.t -> t

val live_in : t -> int -> Reg.Set.t
val live_out : t -> int -> Reg.Set.t

val live_at : t -> Fgraph.point -> Reg.Set.t
(** Registers live immediately {e before} the instruction at the point
    (at the terminator position for [idx = length instrs]). *)

open Gecko_isa

type t = {
  func : Cfg.func;
  blocks : Cfg.block array;
  index_of : (string, int) Hashtbl.t;
  succ : int list array;
  pred : int list array;
}

let of_func (f : Cfg.func) =
  let blocks = Array.of_list f.Cfg.blocks in
  let n = Array.length blocks in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i b -> Hashtbl.replace index_of b.Cfg.label i) blocks;
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i b ->
      let ss =
        List.filter_map
          (fun l -> Hashtbl.find_opt index_of l)
          (Cfg.successors b.Cfg.term)
      in
      succ.(i) <- ss;
      List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss)
    blocks;
  { func = f; blocks; index_of; succ; pred }

let n_blocks t = Array.length t.blocks

let block_id t label =
  match Hashtbl.find_opt t.index_of label with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Fgraph.block_id: no block %s" label)

let rpo t =
  let n = n_blocks t in
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succ.(i);
      post := i :: !post
    end
  in
  if n > 0 then dfs 0;
  Array.of_list !post

let reachable t =
  let n = n_blocks t in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.succ.(i)
    end
  in
  if n > 0 then dfs 0;
  seen

type point = { blk : int; idx : int }

let point_compare a b =
  match compare a.blk b.blk with 0 -> compare a.idx b.idx | c -> c

let instr_at t p =
  let b = t.blocks.(p.blk) in
  List.nth_opt b.Cfg.instrs p.idx

let pp_point t ppf p =
  Format.fprintf ppf "%s+%d" t.blocks.(p.blk).Cfg.label p.idx

open Gecko_isa

exception Unbounded of string

type t = {
  g : Fgraph.t;
  instrs : Instr.t array array;
  memo : (int * int, int) Hashtbl.t;
  state : (int * int, bool) Hashtbl.t; (* true = in progress *)
}

let rec cycles t (p : Fgraph.point) =
  let key = (p.Fgraph.blk, p.Fgraph.idx) in
  match Hashtbl.find_opt t.memo key with
  | Some c -> c
  | None ->
      if Hashtbl.find_opt t.state key = Some true then
        raise
          (Unbounded
             (Format.asprintf "boundary-free cycle through %a"
                (Fgraph.pp_point t.g) p));
      Hashtbl.replace t.state key true;
      let body = t.instrs.(p.Fgraph.blk) in
      let c =
        if p.Fgraph.idx < Array.length body then
          match body.(p.Fgraph.idx) with
          | Instr.Boundary _ as b ->
              (* The commit closes the span; its own cost is charged here. *)
              Cost.instr_cycles b
          | i ->
              Cost.instr_cycles i
              + cycles t { p with Fgraph.idx = p.Fgraph.idx + 1 }
        else
          let term = t.g.Fgraph.blocks.(p.Fgraph.blk).Cfg.term in
          let base = Cost.term_cycles term in
          match term with
          | Instr.Call _ | Instr.Ret | Instr.Halt ->
              (* Callee entries and return blocks open with their own
                 boundaries, so the span ends at the control transfer. *)
              base
          | Instr.Jmp _ | Instr.Br _ ->
              base
              + List.fold_left
                  (fun acc s -> max acc (cycles t { Fgraph.blk = s; idx = 0 }))
                  0 t.g.Fgraph.succ.(p.Fgraph.blk)
      in
      Hashtbl.replace t.state key false;
      Hashtbl.replace t.memo key c;
      c

let compute (g : Fgraph.t) =
  let instrs =
    Array.map (fun (b : Cfg.block) -> Array.of_list b.Cfg.instrs) g.Fgraph.blocks
  in
  let t = { g; instrs; memo = Hashtbl.create 256; state = Hashtbl.create 256 } in
  (* Force evaluation from the entry and from behind every boundary so
     Unbounded surfaces at compute time. *)
  if Fgraph.n_blocks g > 0 then
    ignore (cycles t { Fgraph.blk = 0; idx = 0 });
  Array.iteri
    (fun bi body ->
      Array.iteri
        (fun idx i ->
          match i with
          | Instr.Boundary _ ->
              ignore (cycles t { Fgraph.blk = bi; idx = idx + 1 })
          | _ -> ())
        body)
    instrs;
  t

let from_point t p = cycles t p

let boundary_spans t =
  let acc = ref [] in
  Array.iteri
    (fun bi body ->
      Array.iteri
        (fun idx i ->
          match i with
          | Instr.Boundary id ->
              let p = { Fgraph.blk = bi; idx } in
              let span = cycles t { Fgraph.blk = bi; idx = idx + 1 } in
              acc := (id, p, span) :: !acc
          | _ -> ())
        body)
    t.instrs;
  List.rev !acc

let entry_span t =
  if Fgraph.n_blocks t.g = 0 then 0 else cycles t { Fgraph.blk = 0; idx = 0 }

let worst_successor t (p : Fgraph.point) =
  let body = t.instrs.(p.Fgraph.blk) in
  if p.Fgraph.idx < Array.length body then
    match body.(p.Fgraph.idx) with
    | Instr.Boundary _ -> None
    | _ -> Some { p with Fgraph.idx = p.Fgraph.idx + 1 }
  else
    match t.g.Fgraph.blocks.(p.Fgraph.blk).Cfg.term with
    | Instr.Call _ | Instr.Ret | Instr.Halt -> None
    | Instr.Jmp _ | Instr.Br _ ->
        let best = ref None and best_c = ref (-1) in
        List.iter
          (fun s ->
            let c = cycles t { Fgraph.blk = s; idx = 0 } in
            if c > !best_c then begin
              best_c := c;
              best := Some { Fgraph.blk = s; idx = 0 }
            end)
          t.g.Fgraph.succ.(p.Fgraph.blk);
        !best

(** Worst-case execution time of region spans.

    A {e span} is the code executed between two dynamic region-boundary
    crossings.  Because region formation places a boundary at every loop
    header (and at calls/returns), the boundary-free subgraph is acyclic
    and the longest span is well defined; {!Unbounded} is raised if a
    boundary-free cycle remains (i.e. region formation was skipped or
    buggy).

    The compiler compares each span against the cycles a fully charged
    capacitor can sustain (the "minimum time bound of the power-on
    period", Section VI-B) and splits oversized regions. *)

exception Unbounded of string

type t

val compute : Fgraph.t -> t
(** May raise {!Unbounded}. *)

val from_point : t -> Fgraph.point -> int
(** Worst-case cycles from the point (inclusive) up to and including the
    next boundary commit (or program exit). *)

val boundary_spans : t -> (int * Fgraph.point * int) list
(** For each [Boundary id] instruction: [(id, its point, worst-case span
    of the region it opens)]. *)

val entry_span : t -> int
(** Worst-case cycles from function entry to the first boundary commit. *)

val worst_successor : t -> Fgraph.point -> Fgraph.point option
(** The next point along the worst-case path, if the span continues (used
    by the splitting pass to find where to cut). *)

type t = { idom : int array; order : int array (* rpo position per block *) }

let compute (g : Fgraph.t) =
  let n = Fgraph.n_blocks g in
  let rpo = Fgraph.rpo g in
  let order = Array.make n max_int in
  Array.iteri (fun pos b -> order.(b) <- pos) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while order.(!a) > order.(!b) do
        a := idom.(!a)
      done;
      while order.(!b) > order.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          let preds = List.filter (fun p -> idom.(p) >= 0) g.Fgraph.pred.(b) in
          match preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  (* Unreachable blocks dominate only themselves. *)
  Array.iteri (fun b d -> if d < 0 then idom.(b) <- b) idom;
  { idom; order }

let idom t b = t.idom.(b)

let dominates t a b =
  if a = b then true
  else
    let rec climb x =
      if x = a then true
      else
        let up = t.idom.(x) in
        if up = x then false else climb up
    in
    climb b

let dominates_point t (a : Fgraph.point) (b : Fgraph.point) =
  if a.Fgraph.blk = b.Fgraph.blk then a.Fgraph.idx < b.Fgraph.idx
  else dominates t a.Fgraph.blk b.Fgraph.blk

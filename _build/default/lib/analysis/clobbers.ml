open Gecko_isa

type t = (string, Reg.Set.t) Hashtbl.t

let direct_defs (f : Cfg.func) =
  List.fold_left
    (fun acc (b : Cfg.block) ->
      List.fold_left
        (fun acc i -> Reg.Set.union acc (Instr.defs i))
        acc b.Cfg.instrs)
    Reg.Set.empty f.Cfg.blocks

let callees (f : Cfg.func) =
  List.filter_map
    (fun (b : Cfg.block) ->
      match b.Cfg.term with
      | Instr.Call (callee, _) -> Some callee
      | Instr.Jmp _ | Instr.Br _ | Instr.Ret | Instr.Halt -> None)
    f.Cfg.blocks

let compute (p : Cfg.program) =
  let t : t = Hashtbl.create 8 in
  List.iter
    (fun (f : Cfg.func) ->
      Hashtbl.replace t f.Cfg.fname
        (Reg.Set.remove Reg.sp (direct_defs f)))
    p.Cfg.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Cfg.func) ->
        let cur = try Hashtbl.find t f.Cfg.fname with Not_found -> Reg.Set.empty in
        let merged =
          List.fold_left
            (fun acc c ->
              Reg.Set.union acc
                (try Hashtbl.find t c with Not_found -> Reg.Set.empty))
            cur (callees f)
        in
        if not (Reg.Set.equal merged cur) then begin
          Hashtbl.replace t f.Cfg.fname merged;
          changed := true
        end)
      p.Cfg.funcs
  done;
  t

let of_function t name =
  try Hashtbl.find t name with Not_found -> Reg.Set.empty

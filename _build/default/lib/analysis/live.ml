open Gecko_isa

type t = { g : Fgraph.t; live_in : Reg.Set.t array; live_out : Reg.Set.t array }

let all_regs = Reg.Set.of_list Reg.all

let term_uses = function
  | Instr.Call _ | Instr.Ret -> all_regs
  | term -> Instr.term_uses term

let block_transfer (b : Cfg.block) out =
  let after_term = Reg.Set.union out (term_uses b.Cfg.term) in
  List.fold_right
    (fun i live ->
      Reg.Set.union (Instr.uses i) (Reg.Set.diff live (Instr.defs i)))
    b.Cfg.instrs after_term

let compute (g : Fgraph.t) =
  let n = Fgraph.n_blocks g in
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Reg.Set.union acc live_in.(s))
          Reg.Set.empty g.Fgraph.succ.(b)
      in
      let inn = block_transfer g.Fgraph.blocks.(b) out in
      if not (Reg.Set.equal out live_out.(b)) then begin
        live_out.(b) <- out;
        changed := true
      end;
      if not (Reg.Set.equal inn live_in.(b)) then begin
        live_in.(b) <- inn;
        changed := true
      end
    done
  done;
  { g; live_in; live_out }

let live_in t b = t.live_in.(b)
let live_out t b = t.live_out.(b)

let live_at t (p : Fgraph.point) =
  let b = t.g.Fgraph.blocks.(p.Fgraph.blk) in
  let instrs = b.Cfg.instrs in
  let nb = List.length instrs in
  (* Walk backwards from the terminator to the point. *)
  let after_term =
    Reg.Set.union t.live_out.(p.Fgraph.blk) (term_uses b.Cfg.term)
  in
  let rec walk i live rev_instrs =
    if i < p.Fgraph.idx then live
    else
      match rev_instrs with
      | [] -> live
      | instr :: rest ->
          let live' =
            Reg.Set.union (Instr.uses instr) (Reg.Set.diff live (Instr.defs instr))
          in
          walk (i - 1) live' rest
  in
  walk (nb - 1) after_term (List.rev instrs)

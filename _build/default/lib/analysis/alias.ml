open Gecko_isa

let may_alias (a : Instr.mref) (b : Instr.mref) =
  a.Instr.space.Instr.space_id = b.Instr.space.Instr.space_id
  &&
  match (a.Instr.disp, b.Instr.disp) with
  | Instr.Dconst x, Instr.Dconst y -> x = y
  | Instr.Dreg _, _ | _, Instr.Dreg _ -> true

let space_written p (s : Instr.space) =
  let found = ref false in
  Cfg.iter_instrs p (fun i ->
      match Instr.mem_write i with
      | Some m when m.Instr.space.Instr.space_id = s.Instr.space_id ->
          found := true
      | Some _ | None -> ());
  !found

let location_read_only p (m : Instr.mref) =
  let clobbered = ref false in
  Cfg.iter_instrs p (fun i ->
      match Instr.mem_write i with
      | Some w when may_alias w m -> clobbered := true
      | Some _ | None -> ());
  not !clobbered

lib/harness/workbench.mli: Attack Cfg Gecko_core Gecko_emi Gecko_isa Gecko_machine Link Schedule

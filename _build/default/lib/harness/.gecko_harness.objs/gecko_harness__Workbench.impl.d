lib/harness/workbench.ml: Builder Cfg Gecko_core Gecko_emi Gecko_isa Gecko_machine Hashtbl Instr Link Reg Schedule

lib/harness/experiments.ml: Array Attack Buffer Float Gecko_core Gecko_devices Gecko_emi Gecko_energy Gecko_isa Gecko_machine Gecko_util Gecko_workloads List Printf Schedule Signal Workbench

lib/harness/experiments.mli:

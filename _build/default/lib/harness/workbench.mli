(** Shared pieces of the experiment harness: the victim application used
    in the attack studies, compile/link caching, and common run
    helpers. *)

open Gecko_isa
open Gecko_emi

val sense_app : unit -> Cfg.program
(** The canonical intermittent application of the attack experiments: an
    endless sense–process–report loop (Section III, "Applications"). *)

val compiled :
  Gecko_core.Scheme.t -> Cfg.program -> Link.image * Gecko_core.Meta.t
(** Compile and link (memoized on program name + scheme). *)

val run_nvp_progress :
  board:Gecko_machine.Board.t ->
  schedule:Schedule.t ->
  duration:float ->
  Gecko_machine.Machine.outcome
(** Run the sense app under NVP for [duration] seconds of simulated time
    and report the outcome (forward-progress studies). *)

val progress_rate :
  board:Gecko_machine.Board.t -> attack:Attack.t option -> duration:float -> float
(** Forward-progress rate R of the NVP sense app, normalized to the
    attack-free rate on the same board (1.0 = unimpeded). *)

(** Board-level configuration: MCU + energy storage + thresholds +
    harvester (Fig. 1 of the paper). *)

open Gecko_devices
open Gecko_energy

type t = {
  device : Device.t;
  monitor_choice : Device.monitor_choice;
  capacitance : float;
  v_max : float;  (** Capacitor/supply ceiling. *)
  v_on : float;  (** Wake / reboot threshold. *)
  v_backup : float;  (** JIT checkpoint threshold. *)
  v_off : float;  (** Brownout: execution stops, volatile state lost. *)
  harvester : Harvester.t;
}

val default : ?device:Device.t -> ?harvester:Harvester.t -> unit -> t
(** MSP430FR5994 evaluation board with a 1 mF supercapacitor (Section
    VII-A): ADC monitor, 3.3 V ceiling, V_on 3.0, V_backup 2.2,
    V_off 1.8, bench DC supply unless a harvester is given. *)

val attack_rig : ?device:Device.t -> ?monitor_choice:Device.monitor_choice -> unit -> t
(** The DPI/remote attack bench of Section IV: +3.3 V DC supply through a
    small board-level storage capacitor (10 µF), so wake-ups inside the
    V_fail window leave real races between the checkpoint ISR and the
    brownout threshold. *)

val with_capacitance : t -> float -> t
(** Scale the capacitor, adjusting [v_backup] so the buffered energy
    between [v_on] and [v_backup] stays constant (Section VII-D). *)

val usable_energy : t -> float
(** Joules between [v_on] and [v_backup] — the guaranteed execution
    budget of one charge cycle. *)

val reserve_energy : t -> float
(** Joules between [v_backup] and [v_off] — what the JIT checkpoint ISR
    can rely on. *)

val budget_cycles : t -> int
(** Conservative cycle budget per charge cycle for the WCET splitter
    (worst-case energy per cycle, 50% safety margin). *)

val pp : Format.formatter -> t -> unit

lib/machine/machine.mli: Board Format Gecko_core Gecko_emi Gecko_isa Link Schedule

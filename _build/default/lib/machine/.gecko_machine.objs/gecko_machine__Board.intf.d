lib/machine/board.mli: Device Format Gecko_devices Gecko_energy Harvester

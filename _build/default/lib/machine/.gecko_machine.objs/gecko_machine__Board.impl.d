lib/machine/board.ml: Catalog Device Format Gecko_devices Gecko_energy Harvester Option

open Gecko_devices
open Gecko_energy

type t = {
  device : Device.t;
  monitor_choice : Device.monitor_choice;
  capacitance : float;
  v_max : float;
  v_on : float;
  v_backup : float;
  v_off : float;
  harvester : Harvester.t;
}

let default ?device ?harvester () =
  {
    device = Option.value device ~default:Catalog.evaluation_board;
    monitor_choice = Device.Use_adc;
    capacitance = 1e-3;
    v_max = 3.3;
    v_on = 3.0;
    v_backup = 2.2;
    v_off = 1.8;
    harvester =
      Option.value harvester ~default:(Harvester.constant_power 3.0e-3);
  }

let attack_rig ?device ?(monitor_choice = Device.Use_adc) () =
  let b = default ?device () in
  {
    b with
    monitor_choice;
    capacitance = 4.7e-6;
    harvester = Harvester.thevenin ~v_source:3.3 ~r_source:150.;
  }

let usable_energy t =
  0.5 *. t.capacitance *. ((t.v_on *. t.v_on) -. (t.v_backup *. t.v_backup))

let reserve_energy t =
  0.5 *. t.capacitance *. ((t.v_backup *. t.v_backup) -. (t.v_off *. t.v_off))

let with_capacitance t c =
  if c <= 0. then invalid_arg "Board.with_capacitance";
  let e = usable_energy t in
  let v_backup_sq = (t.v_on *. t.v_on) -. (2. *. e /. c) in
  let v_backup = sqrt (max v_backup_sq (t.v_off *. t.v_off *. 1.05)) in
  { t with capacitance = c; v_backup }

let budget_cycles t =
  let worst_energy_per_cycle =
    Device.energy_per_cycle t.device +. t.device.Device.core.Device.nvm_write_energy
  in
  let cycles = usable_energy t /. worst_energy_per_cycle in
  max 64 (int_of_float (cycles *. 0.5))

let pp ppf t =
  Format.fprintf ppf
    "%s (%s monitor), C=%.1f mF, Von=%.2f Vb=%.2f Voff=%.2f, budget=%d cycles"
    t.device.Device.model
    (match t.monitor_choice with
    | Device.Use_adc -> "ADC"
    | Device.Use_comparator -> "comparator")
    (t.capacitance *. 1e3) t.v_on t.v_backup t.v_off (budget_cycles t)

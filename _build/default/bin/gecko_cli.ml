(* The `gecko` command-line tool: compile workloads, inspect the pipeline,
   run intermittent executions, stage EMI attacks and regenerate the
   paper's experiments. *)

open Cmdliner
module Compiler = Gecko.Compiler
module M = Gecko.Machine
module W = Gecko.Workloads

let scheme_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "nvp" -> Ok Compiler.Scheme.Nvp
    | "ratchet" -> Ok Compiler.Scheme.Ratchet
    | "gecko" -> Ok Compiler.Scheme.Gecko
    | "gecko-noprune" | "noprune" -> Ok Compiler.Scheme.Gecko_noprune
    | _ -> Error (`Msg "scheme must be nvp | ratchet | gecko | gecko-noprune")
  in
  let print ppf s = Format.pp_print_string ppf (Compiler.Scheme.to_string s) in
  Arg.conv (parse, print)

let workload_arg =
  let doc = "Benchmark application (see `gecko list`) or a .gasm file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let scheme_arg =
  let doc = "Recovery scheme: nvp, ratchet, gecko, gecko-noprune." in
  Arg.(value & opt scheme_conv Compiler.Scheme.Gecko & info [ "s"; "scheme" ] ~doc)

let find_workload name =
  if Filename.check_suffix name ".gasm" then
    match Gecko.Isa.Asm.parse_file name with
    | Ok p -> p
    | Error e ->
        Printf.eprintf "%s: %s\n" name e;
        exit 1
  else
    try (W.find name).W.build ()
    with Not_found ->
      Printf.eprintf "unknown workload %s; see `gecko list`\n" name;
      exit 1

(* --- list ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "workloads:";
    List.iter
      (fun w -> Printf.printf "  %-14s %s\n" w.W.name w.W.description)
      W.all;
    print_endline "\ndevices:";
    List.iter
      (fun d -> Printf.printf "  %s\n" d.Gecko.Devices.Device.model)
      Gecko.Devices.Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and devices")
    Term.(const run $ const ())

(* --- compile ---------------------------------------------------------- *)

let compile_cmd =
  let disasm =
    Arg.(value & flag & info [ "d"; "disasm" ] ~doc:"Print the linked image.")
  in
  let asm =
    Arg.(
      value & flag
      & info [ "asm" ]
          ~doc:
            "Print the compiled program as .gasm (shows the inserted \
             checkpoint stores and region boundaries).")
  in
  let run name scheme disasm asm =
    let p, meta = Compiler.Pipeline.compile scheme (find_workload name) in
    Format.printf "%s as %s:@.  %a@.  static checkpoint stores: %d@."
      name
      (Compiler.Scheme.to_string scheme)
      Compiler.Meta.pp_stats meta.Compiler.Meta.stats
      (Compiler.Pipeline.checkpoint_store_count p);
    if asm then print_string (Gecko.Isa.Asm.to_string p);
    if disasm then print_string (Gecko.Isa.Link.disasm (Gecko.Isa.Link.link p))
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a workload and show pipeline statistics")
    Term.(const run $ workload_arg $ scheme_arg $ disasm $ asm)

(* --- run -------------------------------------------------------------- *)

let run_cmd =
  let seconds =
    Arg.(value & opt float 1.0 & info [ "t"; "time" ] ~doc:"Simulated seconds.")
  in
  let attack_mhz =
    Arg.(
      value
      & opt (some float) None
      & info [ "attack" ] ~docv:"MHZ" ~doc:"Transmit an EMI tone at this frequency.")
  in
  let outages =
    Arg.(
      value & flag
      & info [ "outages" ] ~doc:"Power through a 1 Hz outage generator instead of a bench supply.")
  in
  let trace =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace" ] ~docv:"N"
          ~doc:"Print the first N power/runtime events of the run.")
  in
  let run name scheme seconds attack_mhz outages trace =
    let p, meta = Compiler.Pipeline.compile scheme (find_workload name) in
    let image = Gecko.Isa.Link.link p in
    let board =
      if outages then
        {
          (Gecko.Board.attack_rig ()) with
          Gecko.Board.harvester =
            Gecko.Energy.Harvester.square_wave ~period:1.0 ~duty:0.5
              (Gecko.Energy.Harvester.thevenin ~v_source:3.3 ~r_source:150.);
        }
      else Gecko.Board.attack_rig ()
    in
    let schedule =
      match attack_mhz with
      | Some f ->
          Gecko.Emi.Schedule.always
            (Gecko.Emi.Attack.remote ~distance_m:0.1
               (Gecko.Emi.Signal.make ~freq_mhz:f ~power_dbm:20.))
      | None -> Gecko.Emi.Schedule.empty
    in
    let o =
      M.run ~board ~image ~meta
        {
          M.default_options with
          schedule;
          limit = M.Sim_time seconds;
          restart_on_halt = true;
          record_events = trace <> None;
          max_sim_time = seconds +. 1.;
        }
    in
    (match trace with
    | Some n ->
        List.iteri
          (fun i e -> if i < n then Format.printf "%a@." M.pp_event e)
          o.M.events
    | None -> ());
    Printf.printf
      "%s as %s for %.2fs:\n  completions %d | reboots %d | JIT checkpoints %d \
       (%d failed) | rollbacks %d\n  recovery blocks run %d | detections %d | \
       re-enables %d | corrupt resumes %d\n  forward-progress rate %.2f%% | \
       final mode %s\n"
      name
      (Compiler.Scheme.to_string scheme)
      o.M.sim_time o.M.completions o.M.reboots o.M.jit_checkpoints
      o.M.jit_checkpoint_failures o.M.rollbacks o.M.recovery_block_runs
      o.M.detections o.M.reenables o.M.corruptions
      (100. *. M.forward_progress o)
      (Compiler.Policy.mode_to_string o.M.final_mode)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a workload on the simulated intermittent system")
    Term.(
      const run $ workload_arg $ scheme_arg $ seconds $ attack_mhz $ outages
      $ trace)

(* --- experiment ------------------------------------------------------- *)

let experiment_cmd =
  let names =
    [ "fig4"; "fig5"; "fig7"; "fig8"; "fig9"; "table1"; "table2"; "fig11";
      "fig12"; "fig13"; "fig14"; "fig15"; "table3"; "ablation";
      "budget-sweep"; "detection-latency" ]
  in
  let which =
    let doc =
      Printf.sprintf "Artifact to regenerate: %s, or 'all'."
        (String.concat ", " names)
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ARTIFACT" ~doc)
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Use the full sweep grids (slow).")
  in
  let run which full =
    let fidelity =
      if full then Gecko.Experiments.Full else Gecko.Experiments.Quick
    in
    let artifacts = Gecko.Experiments.all fidelity in
    let selected =
      if which = "all" then artifacts
      else List.filter (fun (n, _) -> n = which) artifacts
    in
    if selected = [] then begin
      Printf.eprintf "unknown artifact %s\n" which;
      exit 1
    end;
    List.iter
      (fun (n, text) ->
        Printf.printf "=== %s ===\n%s\n" n text;
        flush stdout)
      selected
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a table or figure from the paper's evaluation")
    Term.(const run $ which $ full)

let () =
  let info =
    Cmd.info "gecko" ~version:"1.0.0"
      ~doc:
        "EMI attacks on JIT checkpointing and the GECKO defense, on a \
         simulated intermittent system"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; compile_cmd; run_cmd; experiment_cmd ]))

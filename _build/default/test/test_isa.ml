(* Unit tests for the ISA layer: registers, instruction semantics, the
   builder's structural checks, and the linker's layout. *)

open Gecko_isa
module B = Builder

let test_reg_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument "Reg.of_int: -1 out of range")
    (fun () -> ignore (Reg.of_int (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Reg.of_int: 16 out of range")
    (fun () -> ignore (Reg.of_int 16));
  Alcotest.(check int) "sp is r15" 15 (Reg.to_int Reg.sp)

let test_binop_semantics () =
  let c = Instr.eval_binop in
  Alcotest.(check int) "add" 7 (c Instr.Add 3 4);
  Alcotest.(check int) "sub negative" (-1) (c Instr.Sub 3 4);
  Alcotest.(check int) "mul" 12 (c Instr.Mul 3 4);
  Alcotest.(check int) "div by zero" 0 (c Instr.Div 5 0);
  Alcotest.(check int) "rem by zero" 0 (c Instr.Rem 5 0);
  Alcotest.(check int) "slt true" 1 (c Instr.Slt (-2) 1);
  Alcotest.(check int) "sne" 1 (c Instr.Sne 1 2);
  (* 32-bit two's-complement wraparound. *)
  Alcotest.(check int) "wrap add" (-2147483648) (c Instr.Add 2147483647 1);
  Alcotest.(check int) "shl wrap" (-2147483648) (c Instr.Shl 1 31);
  Alcotest.(check int) "shr logical" 0x7FFFFFFF (c Instr.Shr (-1) 1);
  Alcotest.(check int) "sra arithmetic" (-1) (c Instr.Sra (-1) 1)

let test_defs_uses () =
  let i = Instr.Bin (Instr.Add, Reg.r1, Reg.r2, Instr.Oreg Reg.r3) in
  Alcotest.(check bool) "defs r1" true (Reg.Set.mem Reg.r1 (Instr.defs i));
  Alcotest.(check bool) "uses r2" true (Reg.Set.mem Reg.r2 (Instr.uses i));
  Alcotest.(check bool) "uses r3" true (Reg.Set.mem Reg.r3 (Instr.uses i));
  let space = { Instr.space_name = "s"; space_id = 0; space_words = 4 } in
  let ld = Instr.Ld (Reg.r0, { Instr.space; disp = Instr.Dreg Reg.r5 }) in
  Alcotest.(check bool) "ld uses index reg" true
    (Reg.Set.mem Reg.r5 (Instr.uses ld))

let test_builder_rejects_unterminated () =
  Alcotest.check_raises "unterminated"
    (Invalid_argument "Builder.finish: block b unterminated") (fun () ->
      let b = B.program "bad" in
      B.func b "main";
      B.block b "b";
      B.nop b;
      ignore (B.finish b))

let test_builder_rejects_bad_target () =
  let build () =
    let b = B.program "bad2" in
    B.func b "main";
    B.block b "b";
    B.jmp b "nowhere";
    ignore (B.finish b)
  in
  (match build () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected validation failure")

let test_builder_rejects_oob_const () =
  let build () =
    let b = B.program "bad3" in
    let s = B.space b "s" ~words:2 () in
    B.func b "main";
    B.block b "b";
    B.ld b Reg.r0 (B.at s 5);
    B.halt b;
    ignore (B.finish b)
  in
  (match build () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds rejection")

let test_fallthrough () =
  let b = B.program "ft" in
  B.func b "main";
  B.block b "a";
  B.nop b;
  B.block b "b";
  (* implicit jmp a -> b *)
  B.halt b;
  let p = B.finish b in
  let f = Cfg.find_func p "main" in
  let a = Cfg.find_block f "a" in
  (match a.Cfg.term with
  | Instr.Jmp "b" -> ()
  | _ -> Alcotest.fail "expected implicit fall-through jump")

let test_linker_layout () =
  let b = B.program "lay" in
  let s1 = B.space b "s1" ~words:10 () in
  let s2 = B.space b "s2" ~words:6 () in
  B.func b "main";
  B.block b "e";
  B.ld b Reg.r0 (B.at s1 0);
  B.st b (B.at s2 3) Reg.r0;
  B.halt b;
  let img = Link.link (B.finish b) in
  Alcotest.(check int) "s1 base" 0 img.Link.space_base.(s1.Instr.space_id);
  Alcotest.(check int) "s2 base" 10 img.Link.space_base.(s2.Instr.space_id);
  Alcotest.(check int) "data words" 16 img.Link.data_words;
  Alcotest.(check bool) "areas ordered" true
    (img.Link.stack_base < img.Link.jit_base
    && img.Link.jit_base < img.Link.gecko_base
    && img.Link.gecko_base < img.Link.sys_base
    && img.Link.sys_base + Link.Cells.sys_words = img.Link.nvm_words);
  (* Dynamic resolve. *)
  let regs = Array.make 16 0 in
  regs.(0) <- 4;
  Alcotest.(check int) "resolve dyn" 14
    (Link.resolve img { Instr.space = s2; disp = Instr.Dreg Reg.r0 } regs)

let test_disasm_nonempty () =
  let b = B.program "d" in
  B.func b "main";
  B.block b "e";
  B.li b Reg.r0 7;
  B.halt b;
  let img = Link.link (B.finish b) in
  let text = Link.disasm img in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions li" true (contains text "li r0")


let test_asm_errors () =
  let bad = [
    ".program p\n.func main\ne:\n    bogus r1, r2\n    halt\n";
    ".program p\n.func main\ne:\n    ld r0, nowhere[0]\n    halt\n";
    ".func main\ne:\n    halt\n";  (* missing .program *)
    ".program p\n.func main\ne:\n    li r99, 1\n    halt\n";
  ] in
  List.iter
    (fun text ->
      match Asm.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" text)
    bad

let test_asm_parse_minimal () =
  let text =
    ".program t\n.space d 2 init 7 9\n.func main\ne:\n    ld r0, d[1]\n    halt\n"
  in
  match Asm.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p ->
      Alcotest.(check string) "name" "t" p.Cfg.pname;
      Alcotest.(check int) "spaces" 1 (List.length p.Cfg.spaces);
      Alcotest.(check string) "round trip stable" (Asm.to_string p)
        (match Asm.parse (Asm.to_string p) with
        | Ok p2 -> Asm.to_string p2
        | Error e -> e)

let () =
  Alcotest.run "isa"
    [
      ( "semantics",
        [
          Alcotest.test_case "reg bounds" `Quick test_reg_bounds;
          Alcotest.test_case "binop semantics" `Quick test_binop_semantics;
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
        ] );
      ( "builder",
        [
          Alcotest.test_case "unterminated" `Quick test_builder_rejects_unterminated;
          Alcotest.test_case "bad target" `Quick test_builder_rejects_bad_target;
          Alcotest.test_case "oob constant" `Quick test_builder_rejects_oob_const;
          Alcotest.test_case "fall-through" `Quick test_fallthrough;
        ] );
      ( "linker",
        [
          Alcotest.test_case "layout" `Quick test_linker_layout;
          Alcotest.test_case "disasm" `Quick test_disasm_nonempty;
        ] );
      ( "asm",
        [
          Alcotest.test_case "parse errors" `Quick test_asm_errors;
          Alcotest.test_case "minimal program" `Quick test_asm_parse_minimal;
        ] );
    ]

(* Unit tests for the dataflow analyses on hand-built CFGs. *)

open Gecko_isa
module A = Gecko_analysis
module B = Builder

(* A diamond with a loop:
   entry -> hdr -> (then | else) -> join -> hdr ... -> exit *)
let diamond_loop () =
  let b = B.program "dl" in
  let d = B.space b "d" ~words:8 () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r0 0;
  B.li b Reg.r1 5;
  B.block b "hdr" ~loop_bound:5;
  B.bin b Instr.And Reg.r2 Reg.r0 (B.imm 1);
  B.br b Instr.Nz Reg.r2 "then_" "else_";
  B.block b "then_";
  B.st b (B.at d 0) Reg.r0;
  B.jmp b "join";
  B.block b "else_";
  B.st b (B.at d 1) Reg.r1;
  B.block b "join";
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.bin b Instr.Slt Reg.r2 Reg.r0 (B.reg Reg.r1);
  B.br b Instr.Nz Reg.r2 "hdr" "exit_";
  B.block b "exit_";
  B.halt b;
  B.finish b

let graph_of p = A.Fgraph.of_func (Cfg.find_func p "main")

let test_dominators () =
  let g = graph_of (diamond_loop ()) in
  let dom = A.Dom.compute g in
  let id l = A.Fgraph.block_id g l in
  Alcotest.(check bool) "entry dom all" true (A.Dom.dominates dom (id "entry") (id "exit_"));
  Alcotest.(check bool) "hdr dom join" true (A.Dom.dominates dom (id "hdr") (id "join"));
  Alcotest.(check bool) "then not dom join" false
    (A.Dom.dominates dom (id "then_") (id "join"));
  Alcotest.(check int) "idom of join is hdr" (id "hdr") (A.Dom.idom dom (id "join"))

let test_loops () =
  let g = graph_of (diamond_loop ()) in
  let dom = A.Dom.compute g in
  let loops = A.Loops.compute g dom in
  let id l = A.Fgraph.block_id g l in
  Alcotest.(check (list int)) "headers" [ id "hdr" ] (A.Loops.headers loops);
  let l = List.hd (A.Loops.loops loops) in
  Alcotest.(check bool) "join in body" true (List.mem (id "join") l.A.Loops.body);
  Alcotest.(check bool) "exit not in body" false (List.mem (id "exit_") l.A.Loops.body)

let test_liveness () =
  let g = graph_of (diamond_loop ()) in
  let live = A.Live.compute g in
  let id l = A.Fgraph.block_id g l in
  (* r1 (the bound) is live at the loop header, r2 (the scratch) is not. *)
  Alcotest.(check bool) "r1 live at hdr" true
    (Reg.Set.mem Reg.r1 (A.Live.live_in live (id "hdr")));
  Alcotest.(check bool) "r2 dead at hdr" false
    (Reg.Set.mem Reg.r2 (A.Live.live_in live (id "hdr")))

let test_reaching () =
  let g = graph_of (diamond_loop ()) in
  let r = A.Reaching.compute g in
  let id l = A.Fgraph.block_id g l in
  (* At the header, r0 has two reaching defs (entry li, join increment). *)
  let defs = A.Reaching.reaching_at r Reg.r0 { A.Fgraph.blk = id "hdr"; idx = 0 } in
  Alcotest.(check int) "two defs of r0" 2 (List.length defs);
  Alcotest.(check bool) "no unique def" true
    (A.Reaching.unique_at r Reg.r0 { A.Fgraph.blk = id "hdr"; idx = 0 } = None);
  (* r1 has a unique def everywhere. *)
  Alcotest.(check bool) "unique def of r1" true
    (A.Reaching.unique_at r Reg.r1 { A.Fgraph.blk = id "exit_"; idx = 0 } <> None)

let test_alias () =
  let s1 = { Instr.space_name = "a"; space_id = 0; space_words = 8 } in
  let s2 = { Instr.space_name = "b"; space_id = 1; space_words = 8 } in
  let m ?(s = s1) d = { Instr.space = s; disp = d } in
  Alcotest.(check bool) "same const" true
    (A.Alias.may_alias (m (Instr.Dconst 3)) (m (Instr.Dconst 3)));
  Alcotest.(check bool) "diff const" false
    (A.Alias.may_alias (m (Instr.Dconst 3)) (m (Instr.Dconst 4)));
  Alcotest.(check bool) "dyn vs const" true
    (A.Alias.may_alias (m (Instr.Dreg Reg.r0)) (m (Instr.Dconst 4)));
  Alcotest.(check bool) "different spaces" false
    (A.Alias.may_alias (m (Instr.Dconst 3)) (m ~s:s2 (Instr.Dconst 3)))

let test_wcet_spans () =
  (* After region formation every span is finite and positive. *)
  let p = diamond_loop () in
  let next_id = ref 0 in
  ignore (Gecko_core.Regions.form ~next_id p);
  let g = graph_of p in
  let w = A.Wcet.compute g in
  let spans = A.Wcet.boundary_spans w in
  Alcotest.(check bool) "has boundaries" true (List.length spans >= 2);
  List.iter
    (fun (_, _, span) -> Alcotest.(check bool) "positive span" true (span > 0))
    spans

let test_wcet_unbounded () =
  (* Without formation the loop has no boundary: the WCET must refuse. *)
  let p = diamond_loop () in
  let g = graph_of p in
  (match A.Wcet.compute g with
  | exception A.Wcet.Unbounded _ -> ()
  | _ -> Alcotest.fail "expected Unbounded")

let test_clobbers () =
  let b = B.program "calls" in
  B.func b "main";
  B.block b "e";
  B.call b "f" ~ret:"r";
  B.block b "r";
  B.halt b;
  B.func b "f";
  B.block b "fe";
  B.li b Reg.r7 1;
  B.call b "g" ~ret:"fr";
  B.block b "fr";
  B.ret b;
  B.func b "g";
  B.block b "ge";
  B.li b Reg.r8 2;
  B.ret b;
  let p = B.finish b in
  let c = A.Clobbers.compute p in
  let cf = A.Clobbers.of_function c "f" in
  Alcotest.(check bool) "f clobbers r7" true (Reg.Set.mem Reg.r7 cf);
  Alcotest.(check bool) "f clobbers r8 transitively" true (Reg.Set.mem Reg.r8 cf);
  Alcotest.(check bool) "f does not clobber sp" false (Reg.Set.mem Reg.sp cf)

let test_ipliveness () =
  let b = B.program "ipl" in
  let out = B.space b "o" ~words:1 () in
  B.func b "main";
  B.block b "e";
  B.li b Reg.r0 41;
  B.call b "inc" ~ret:"r";
  B.block b "r";
  B.st b (B.at out 0) Reg.r0;
  B.halt b;
  B.func b "inc";
  B.block b "ie";
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.ret b;
  let p = B.finish b in
  let l = A.Ipliveness.compute p in
  let g = A.Ipliveness.graph l ~fname:"inc" in
  ignore g;
  (* r0 is live at the callee entry (used there and by the caller after
     return); r5 is not. *)
  let live = A.Ipliveness.live_at l ~fname:"inc" { A.Fgraph.blk = 0; idx = 0 } in
  Alcotest.(check bool) "r0 live in callee" true (Reg.Set.mem Reg.r0 live);
  Alcotest.(check bool) "r5 dead in callee" false (Reg.Set.mem Reg.r5 live)

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "dominators" `Quick test_dominators;
          Alcotest.test_case "loops" `Quick test_loops;
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "reaching defs" `Quick test_reaching;
          Alcotest.test_case "alias" `Quick test_alias;
        ] );
      ( "wcet",
        [
          Alcotest.test_case "spans" `Quick test_wcet_spans;
          Alcotest.test_case "unbounded" `Quick test_wcet_unbounded;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "clobbers" `Quick test_clobbers;
          Alcotest.test_case "liveness" `Quick test_ipliveness;
        ] );
    ]

open Gecko_isa
module B = Builder
module Core = Gecko_core

(* Sum an array into memory, with a WAR on the accumulator cell. *)
let sum_program () =
  let b = B.program "sum" in
  let data = B.space b "data" ~words:16 ~init:(Array.init 16 (fun i -> i + 1)) () in
  let acc = B.space b "acc" ~words:1 () in
  let coeff = B.space b "coeff" ~words:2 ~init:[| 3; 5 |] () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r0 0;
  (* i *)
  B.li b Reg.r1 0;
  B.st b (B.at acc 0) Reg.r1;
  (* Prunable live-ins: a constant bound and a read-only coefficient. *)
  B.li b Reg.r5 16;
  B.ld b Reg.r6 (B.at coeff 0);
  B.block b "loop" ~loop_bound:16;
  B.ld b Reg.r2 (B.idx data Reg.r0);
  B.mul b Reg.r2 Reg.r2 (B.reg Reg.r6);
  B.ld b Reg.r3 (B.at acc 0);
  B.add b Reg.r3 Reg.r3 (B.reg Reg.r2);
  B.st b (B.at acc 0) Reg.r3;
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.bin b Instr.Slt Reg.r4 Reg.r0 (B.reg Reg.r5);
  B.br b Instr.Nz Reg.r4 "loop" "done_";
  B.block b "done_";
  B.halt b;
  B.finish b

let test_formation () =
  let p, meta = Core.Pipeline.compile Core.Scheme.Gecko (sum_program ()) in
  Alcotest.(check bool)
    "has boundaries" true
    (Core.Pipeline.boundary_count p > 0);
  Alcotest.(check (list string)) "idempotent" [] (Core.Regions.violations p);
  Alcotest.(check bool)
    "has checkpoints" true
    (Core.Pipeline.checkpoint_store_count p > 0);
  Format.printf "stats: %a@." Core.Meta.pp_stats meta.Core.Meta.stats

let test_schemes_compile () =
  List.iter
    (fun s ->
      let p, _ = Core.Pipeline.compile s (sum_program ()) in
      match Cfg.validate p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "scheme %s: %s" (Core.Scheme.to_string s) e)
    Core.Scheme.all

let test_pruning_happens () =
  let _, meta = Core.Pipeline.compile Core.Scheme.Gecko (sum_program ()) in
  let s = meta.Core.Meta.stats in
  Alcotest.(check bool) "some pruning" true (s.Core.Meta.pruned > 0)


(* ------------------------------------------------------------------ *)
(* Targeted pass-level tests                                           *)
(* ------------------------------------------------------------------ *)

module A = Gecko_analysis

let count_boundaries p = Core.Pipeline.boundary_count p

(* WAR: a load followed by an aliasing store needs a boundary between. *)
let test_war_cut () =
  let b = B.program "war" in
  let d = B.space b "d" ~words:4 () in
  B.func b "main";
  B.block b "e";
  B.ld b Reg.r0 (B.at d 0);
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.st b (B.at d 0) Reg.r0;
  B.halt b;
  let p = B.finish b in
  let next_id = ref 0 in
  ignore (Core.Regions.form ~next_id p);
  Alcotest.(check (list string)) "no violations" [] (Core.Regions.violations p);
  let f = Cfg.find_func p "main" in
  let blk = Cfg.find_block f "e" in
  (* The block must contain a boundary between the ld and the st. *)
  let rec scan saw_ld saw_boundary = function
    | [] -> Alcotest.fail "no store found"
    | Instr.Ld _ :: rest -> scan true saw_boundary rest
    | Instr.Boundary _ :: rest -> scan saw_ld (saw_boundary || saw_ld) rest
    | Instr.St _ :: _ ->
        Alcotest.(check bool) "boundary before store" true saw_boundary
    | _ :: rest -> scan saw_ld saw_boundary rest
  in
  scan false false blk.Cfg.instrs

(* WARAW: st x; ld x; st x in one block needs no cut (must-alias). *)
let test_waraw_exempt () =
  let b = B.program "waraw" in
  let d = B.space b "d" ~words:4 () in
  B.func b "main";
  B.block b "e";
  B.li b Reg.r0 1;
  B.st b (B.at d 0) Reg.r0;
  B.ld b Reg.r1 (B.at d 0);
  B.add b Reg.r1 Reg.r1 (B.imm 1);
  B.st b (B.at d 0) Reg.r1;
  B.halt b;
  let p = B.finish b in
  let next_id = ref 0 in
  ignore (Core.Regions.form ~next_id p);
  (* Only the function-entry boundary. *)
  Alcotest.(check int) "single boundary" 1 (count_boundaries p);
  Alcotest.(check (list string)) "still idempotent" [] (Core.Regions.violations p)

(* A may-aliasing (dynamic) store does NOT exempt the pair. *)
let test_may_alias_not_exempt () =
  let b = B.program "maywar" in
  let d = B.space b "d" ~words:4 () in
  B.func b "main";
  B.block b "e";
  B.li b Reg.r0 1;
  B.li b Reg.r2 3;
  B.st b (B.idx d Reg.r2) Reg.r0;
  B.ld b Reg.r1 (B.at d 0);
  B.add b Reg.r1 Reg.r1 (B.imm 1);
  B.st b (B.at d 0) Reg.r1;
  B.halt b;
  let p = B.finish b in
  let next_id = ref 0 in
  ignore (Core.Regions.form ~next_id p);
  Alcotest.(check bool) "extra cut inserted" true (count_boundaries p >= 2);
  Alcotest.(check (list string)) "idempotent" [] (Core.Regions.violations p)

(* I/O instructions are bracketed by boundaries. *)
let test_io_bracketing () =
  let b = B.program "io" in
  B.func b "main";
  B.block b "e";
  B.li b Reg.r0 1;
  B.io_out b 0 Reg.r0;
  B.nop b;
  B.halt b;
  let p = B.finish b in
  let next_id = ref 0 in
  ignore (Core.Regions.form ~next_id p);
  let f = Cfg.find_func p "main" in
  let blk = Cfg.find_block f "e" in
  let arr = Array.of_list blk.Cfg.instrs in
  Array.iteri
    (fun i ins ->
      if Instr.is_io ins then begin
        Alcotest.(check bool) "boundary before io" true
          (i > 0 && (match arr.(i - 1) with Instr.Boundary _ -> true | _ -> false));
        Alcotest.(check bool) "boundary after io" true
          (i + 1 < Array.length arr
          && (match arr.(i + 1) with Instr.Boundary _ -> true | _ -> false))
      end)
    arr

(* WCET splitting cuts an oversized straight-line region. *)
let test_wcet_split () =
  let b = B.program "long" in
  B.func b "main";
  B.block b "e";
  for i = 0 to 199 do
    B.li b Reg.r0 i
  done;
  B.halt b;
  let p = B.finish b in
  let next_id = ref 0 in
  ignore (Core.Regions.form ~next_id p);
  let before = count_boundaries p in
  ignore (Core.Split.by_wcet ~next_id ~budget:50 ~ckpt_overhead:10 p);
  Alcotest.(check bool) "splits inserted" true (count_boundaries p > before);
  Alcotest.(check bool) "spans fit" true (Core.Split.max_span p <= 50)

(* Pruning: constants and read-only loads are sliced; loop-carried state
   is kept; loop-invariant values are reused. *)
let test_prune_decisions () =
  let _, meta = Core.Pipeline.compile Core.Scheme.Gecko (sum_program ()) in
  let s = meta.Core.Meta.stats in
  Alcotest.(check bool) "some slices" true (s.Core.Meta.recovery_blocks > 0);
  Alcotest.(check bool) "accounting" true
    (s.Core.Meta.kept + s.Core.Meta.pruned = s.Core.Meta.candidates)

(* Coloring: a loop header's checkpoints get a repair partner with
   alternating colours. *)
let test_coloring_alternates () =
  let p, meta = Core.Pipeline.compile Core.Scheme.Gecko (sum_program ()) in
  (match Core.Verify.coloring p meta with
  | Ok () -> ()
  | Error e -> Alcotest.failf "coloring: %s" (String.concat "; " e));
  (* The loop-carried registers must be stored at two alternating sites. *)
  let stores = Hashtbl.create 8 in
  Cfg.iter_instrs p (fun i ->
      match i with
      | Instr.Ckpt (r, c) ->
          let old = try Hashtbl.find stores (Reg.to_int r) with Not_found -> [] in
          Hashtbl.replace stores (Reg.to_int r) (c :: old)
      | _ -> ());
  let carried = Hashtbl.find stores 0 (* r0 = loop counter *) in
  Alcotest.(check bool) "two sites with both colours" true
    (List.mem 0 carried && List.mem 1 carried)

(* Recovery slices re-execute cleanly through the machine. *)
let test_budget_too_small () =
  match Core.Pipeline.compile ~budget_cycles:4 Core.Scheme.Gecko (sum_program ()) with
  | exception Invalid_argument _ -> ()
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected budget failure"

let () =
  Alcotest.run "compiler"
    [
      ( "pipeline",
        [
          Alcotest.test_case "formation" `Quick test_formation;
          Alcotest.test_case "all schemes" `Quick test_schemes_compile;
          Alcotest.test_case "pruning" `Quick test_pruning_happens;
        ] );
      ( "regions",
        [
          Alcotest.test_case "WAR cut" `Quick test_war_cut;
          Alcotest.test_case "WARAW exemption" `Quick test_waraw_exempt;
          Alcotest.test_case "may-alias not exempt" `Quick test_may_alias_not_exempt;
          Alcotest.test_case "I/O bracketing" `Quick test_io_bracketing;
        ] );
      ("wcet", [ Alcotest.test_case "splitting" `Quick test_wcet_split;
                 Alcotest.test_case "budget too small" `Quick test_budget_too_small ]);
      ( "checkpointing",
        [
          Alcotest.test_case "prune decisions" `Quick test_prune_decisions;
          Alcotest.test_case "coloring alternates" `Quick test_coloring_alternates;
        ] );
    ]

test/gen_prog.ml: Array Builder Gecko_isa Gecko_util Instr Printf Reg

test/test_workloads.ml: Alcotest Array Cfg Float Gecko_core Gecko_devices Gecko_energy Gecko_isa Gecko_machine Gecko_workloads Instr Link List Printf

test/test_physical.ml: Alcotest Float Gecko_emi Gecko_energy Gecko_mem Gecko_monitor

test/test_policy.ml: Alcotest Gecko_core Gecko_emi Gecko_energy Gecko_harness Gecko_isa Gecko_machine Link List

test/test_analysis.ml: Alcotest Builder Cfg Gecko_analysis Gecko_core Gecko_isa Instr List Reg

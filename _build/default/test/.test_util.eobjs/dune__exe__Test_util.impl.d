test/test_util.ml: Alcotest Gecko_util List String

test/test_compiler.ml: Alcotest Array Builder Cfg Format Gecko_analysis Gecko_core Gecko_isa Hashtbl Instr List Reg String

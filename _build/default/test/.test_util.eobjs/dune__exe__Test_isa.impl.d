test/test_isa.ml: Alcotest Array Asm Builder Cfg Gecko_isa Instr Link List Reg String

test/test_props.ml: Alcotest Asm Float Gecko_core Gecko_devices Gecko_emi Gecko_energy Gecko_isa Gecko_machine Gen_prog Link List Printf QCheck QCheck_alcotest

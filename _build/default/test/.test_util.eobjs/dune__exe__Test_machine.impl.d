test/test_machine.ml: Alcotest Array Builder Cfg Gecko_core Gecko_devices Gecko_energy Gecko_isa Gecko_machine Gecko_workloads Instr Link List Reg

open Gecko_isa
module Core = Gecko_core
module M = Gecko_machine
module W = Gecko_workloads
module H = Gecko_energy.Harvester

let compile_and_link scheme prog =
  let p, meta = Core.Pipeline.compile scheme prog in
  (Link.link p, meta)

let space_snapshot image nvm name =
  let space = Cfg.find_space image.Link.prog name in
  let base = image.Link.space_base.(space.Instr.space_id) in
  Array.sub nvm base space.Instr.space_words

let run_once scheme w =
  let image, meta = compile_and_link scheme ((W.Workload.find w).W.Workload.build ()) in
  let board = M.Board.default () in
  let o, nvm = M.Machine.run_with_nvm ~board ~image ~meta M.Machine.default_options in
  Alcotest.(check int) (w ^ " completes") 1 o.M.Machine.completions;
  (image, nvm)

(* Reference CRC-32 in OCaml over the same message. *)
let crc32_ref bytes =
  let table = Gecko_workloads.Wk_common.crc32_table () in
  let crc = ref 0xFFFFFFFF in
  Array.iter
    (fun b ->
      let idx = (!crc lxor b) land 0xFF in
      crc := (!crc lsr 8) lxor table.(idx))
    bytes;
  !crc lxor 0xFFFFFFFF

let test_crc32_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "crc32" in
  let msg = space_snapshot image nvm "msg" in
  let got = (space_snapshot image nvm "result").(0) land 0xFFFFFFFF in
  Alcotest.(check int) "crc32 value" (crc32_ref msg) got

let test_qsort_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "qsort" in
  let arr = space_snapshot image nvm "arr" in
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "sorted" sorted arr;
  (* Same multiset as the input. *)
  let input =
    Array.map (fun v -> v land 0xFF) (W.Wk_common.input_bytes ~seed:77 48)
  in
  Array.sort compare input;
  Alcotest.(check (array int)) "permutation of input" input arr

let test_dijkstra_semantics () =
  let image, nvm = run_once Core.Scheme.Nvp "dijkstra" in
  let dist = space_snapshot image nvm "dist" in
  let adj = space_snapshot image nvm "adj" in
  (* Reference Dijkstra over the same adjacency matrix. *)
  let n = Array.length dist in
  let inf = 99999 in
  let d = Array.make n inf and visited = Array.make n false in
  d.(0) <- 0;
  for _ = 1 to n do
    let u = ref (-1) and best = ref inf in
    for v = 0 to n - 1 do
      if (not visited.(v)) && d.(v) < !best then begin
        best := d.(v);
        u := v
      end
    done;
    if !u >= 0 then begin
      visited.(!u) <- true;
      for v = 0 to n - 1 do
        let w = adj.((!u * n) + v) in
        if w > 0 && d.(!u) + w < d.(v) then d.(v) <- d.(!u) + w
      done
    end
  done;
  Alcotest.(check (array int)) "distances" d dist

let test_fft_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "fft" in
  let re = space_snapshot image nvm "re" in
  let im = space_snapshot image nvm "im" in
  (* Reference float DFT over the original (time-domain) inputs. *)
  let n = Array.length re in
  let inputs =
    Array.map
      (fun v -> float_of_int ((v * 64) - 8192))
      (W.Wk_common.input_bytes ~seed:55 n)
  in
  Array.iteri
    (fun k _ ->
      let racc = ref 0. and iacc = ref 0. in
      Array.iteri
        (fun t x ->
          let ang = -2. *. Float.pi *. float_of_int (k * t) /. float_of_int n in
          racc := !racc +. (x *. cos ang);
          iacc := !iacc +. (x *. sin ang))
        inputs;
      (* Q14 twiddles accumulate rounding over log2 n stages. *)
      let tol = 3500. in
      Alcotest.(check bool)
        (Printf.sprintf "re[%d] %.0f vs %d" k !racc re.(k))
        true
        (Float.abs (!racc -. float_of_int re.(k)) < tol);
      Alcotest.(check bool)
        (Printf.sprintf "im[%d] %.0f vs %d" k !iacc im.(k))
        true
        (Float.abs (!iacc -. float_of_int im.(k)) < tol))
    re


let test_crc16_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "crc16" in
  let msg = space_snapshot image nvm "msg" in
  (* Reference CRC-16/CCITT (false start 0xFFFF). *)
  let crc = ref 0xFFFF in
  Array.iter
    (fun b ->
      crc := (!crc lxor (b lsl 8)) land 0xFFFF;
      for _ = 1 to 8 do
        if !crc land 0x8000 <> 0 then
          crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
        else crc := (!crc lsl 1) land 0xFFFF
      done)
    msg;
  Alcotest.(check int) "crc16 value" !crc
    (space_snapshot image nvm "result").(0)

let test_bitcnt_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "bitcnt" in
  let data = space_snapshot image nvm "data" in
  let popcount16 v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
    go (v land 0xFFFF) 0
  in
  let expected = Array.fold_left (fun acc v -> acc + popcount16 v) 0 data in
  let result = space_snapshot image nvm "result" in
  Alcotest.(check int) "swar counter" expected result.(0);
  Alcotest.(check int) "table counter" expected result.(1)

let test_fir_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "fir" in
  let x = space_snapshot image nvm "x" in
  let coeff = space_snapshot image nvm "coeff" in
  let y = space_snapshot image nvm "y" in
  Array.iteri
    (fun n got ->
      let acc = ref 0 in
      Array.iteri (fun t c -> acc := !acc + (x.(n + t) * c)) coeff;
      Alcotest.(check int) (Printf.sprintf "y[%d]" n) (!acc asr 6) got)
    y

let test_basicmath_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "basicmath" in
  let data = space_snapshot image nvm "data" in
  let roots = space_snapshot image nvm "roots" in
  Array.iteri
    (fun i r ->
      (* Newton with fixed iterations converges to isqrt within 1. *)
      let exact = int_of_float (sqrt (float_of_int data.(i))) in
      Alcotest.(check bool)
        (Printf.sprintf "isqrt(%d)=%d (got %d)" data.(i) exact r)
        true
        (abs (r - exact) <= 1))
    roots;
  let gcds = space_snapshot image nvm "gcds" in
  Array.iteri
    (fun i g ->
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      Alcotest.(check int)
        (Printf.sprintf "gcd pair %d" i)
        (gcd data.(2 * i) data.((2 * i) + 1))
        g)
    gcds

let test_stringsearch_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "stringsearch" in
  let found = space_snapshot image nvm "found" in
  (* Patterns 0 and 1 are planted at 40 and 133; 2 and 3 are absent. *)
  Alcotest.(check int) "needle1" 40 found.(0);
  Alcotest.(check int) "needle2" 133 found.(1);
  Alcotest.(check int) "absent" (-1) found.(2);
  Alcotest.(check int) "absent2" (-1) found.(3)

let test_dhrystone_semantics () =
  let image, nvm = run_once Core.Scheme.Gecko "dhrystone" in
  let counts = space_snapshot image nvm "counts" in
  (* 12 iterations; the string comparison succeeds on even iterations
     (no mutation) and fails on odd ones. *)
  Alcotest.(check int) "iterations" 12 counts.(1);
  Alcotest.(check int) "equal count" 6 counts.(0);
  let rec_a = space_snapshot image nvm "rec_a" in
  let rec_b = space_snapshot image nvm "rec_b" in
  Array.iteri
    (fun i v -> Alcotest.(check int) "record copy" (rec_a.(i) + 1) v)
    rec_b

(* Cross-scheme determinism: all schemes compute the same final data
   segment on continuous power. *)
let test_cross_scheme_agreement () =
  List.iter
    (fun w ->
      let prog_of s = compile_and_link s ((W.Workload.find w).W.Workload.build ()) in
      let board = M.Board.default () in
      let run s =
        let image, meta = prog_of s in
        let _, nvm =
          M.Machine.run_with_nvm ~board ~image ~meta M.Machine.default_options
        in
        (image, nvm)
      in
      let _, ref_nvm = run Core.Scheme.Nvp in
      List.iter
        (fun s ->
          let _, nvm = run s in
          Alcotest.(check (array int))
            (Printf.sprintf "%s/%s matches NVP" w (Core.Scheme.to_string s))
            ref_nvm nvm)
        [ Core.Scheme.Ratchet; Core.Scheme.Gecko_noprune; Core.Scheme.Gecko ])
    W.Workload.names

(* Crash consistency: a tiny storage capacitor, a weak harvester and a
   fast-booting part force many power cycles per run; the final data
   segment must match an uninterrupted golden run for every workload and
   scheme. *)
let test_crash_consistency () =
  let harvester = H.thevenin ~v_source:3.3 ~r_source:2000. in
  let device =
    let d = Gecko_devices.Catalog.evaluation_board in
    {
      d with
      Gecko_devices.Device.core =
        {
          d.Gecko_devices.Device.core with
          Gecko_devices.Device.reboot_latency = 2e-4;
          reboot_energy = 6e-7;
        };
    }
  in
  let total_reboots = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun scheme ->
          let image, meta =
            compile_and_link scheme ((W.Workload.find w).W.Workload.build ())
          in
          let board =
            { (M.Board.default ~device ~harvester ()) with M.Board.capacitance = 0.6e-6 }
          in
          let golden = M.Machine.golden_nvm ~board ~image ~meta in
          let opts =
            { M.Machine.default_options with max_sim_time = 60.; seed = 13 }
          in
          let o, nvm = M.Machine.run_with_nvm ~board ~image ~meta opts in
          total_reboots := !total_reboots + o.M.Machine.reboots;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s completes" w (Core.Scheme.to_string scheme))
            1 o.M.Machine.completions;
          Alcotest.(check (array int))
            (Printf.sprintf "%s/%s crash-consistent" w (Core.Scheme.to_string scheme))
            golden nvm)
        Core.Scheme.all)
    W.Workload.names;
  Alcotest.(check bool) "outages actually happened" true (!total_reboots > 40)

let () =
  Alcotest.run "workloads"
    [
      ( "semantics",
        [
          Alcotest.test_case "crc32" `Quick test_crc32_semantics;
          Alcotest.test_case "crc16" `Quick test_crc16_semantics;
          Alcotest.test_case "bitcnt" `Quick test_bitcnt_semantics;
          Alcotest.test_case "fir" `Quick test_fir_semantics;
          Alcotest.test_case "basicmath" `Quick test_basicmath_semantics;
          Alcotest.test_case "stringsearch" `Quick test_stringsearch_semantics;
          Alcotest.test_case "dhrystone" `Quick test_dhrystone_semantics;
          Alcotest.test_case "qsort" `Quick test_qsort_semantics;
          Alcotest.test_case "dijkstra" `Quick test_dijkstra_semantics;
          Alcotest.test_case "fft" `Quick test_fft_semantics;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "cross-scheme agreement" `Quick
            test_cross_scheme_agreement;
          Alcotest.test_case "crash consistency under outages" `Slow
            test_crash_consistency;
        ] );
    ]

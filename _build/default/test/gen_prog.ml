(* Random structured-program generator for property-based testing.

   Programs are built from phases (straight-line blocks, bounded counted
   loops with optional memory traffic, if-diamonds) over a read-write
   data space and a read-only table.  All registers are initialized up
   front and dynamic indices are masked into bounds, so every generated
   program is well-formed, deterministic and terminating.  Sensor input
   ([In]) is excluded: replayed reads legitimately return fresh samples,
   which would make golden-state comparison meaningless. *)

open Gecko_isa
module B = Builder
module Rng = Gecko_util.Rng

let n_regs = 10 (* r0..r9 as data registers; r10-r12 for loop bookkeeping *)

let reg rng = Reg.of_int (Rng.int rng n_regs)

let random_op rng b data table =
  match Rng.int rng 8 with
  | 0 -> B.li b (reg rng) (Rng.range rng (-1000) 1000)
  | 1 ->
      let ops =
        [| Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or; Instr.Xor;
           Instr.Shl; Instr.Shr; Instr.Sra; Instr.Slt; Instr.Div; Instr.Rem |]
      in
      let op = ops.(Rng.int rng (Array.length ops)) in
      let src2 =
        if Rng.bool rng then B.reg (reg rng)
        else B.imm (Rng.range rng (-64) 64)
      in
      B.bin b op (reg rng) (reg rng) src2
  | 2 -> B.ld b (reg rng) (B.at data (Rng.int rng 16))
  | 3 -> B.ld b (reg rng) (B.at table (Rng.int rng 16))
  | 4 ->
      (* Dynamic load with a masked index. *)
      let idx = Reg.r11 in
      B.bin b Instr.And idx (reg rng) (B.imm 15);
      B.ld b (reg rng) (B.idx data idx)
  | 5 -> B.st b (B.at data (Rng.int rng 16)) (reg rng)
  | 6 ->
      let idx = Reg.r11 in
      B.bin b Instr.And idx (reg rng) (B.imm 15);
      B.st b (B.idx data idx) (reg rng)
  | _ -> B.mov b (reg rng) (reg rng)

let straight rng b data table =
  for _ = 1 to 3 + Rng.int rng 8 do
    random_op rng b data table
  done

let generate seed =
  let rng = Rng.create seed in
  let b = B.program (Printf.sprintf "rand_%d" seed) in
  let data =
    B.space b "data" ~words:16
      ~init:(Array.init 16 (fun i -> (seed + i) land 0xFF))
      ()
  in
  let table =
    B.space b "table" ~words:16
      ~init:(Array.init 16 (fun i -> (i * 37) land 0xFF))
      ()
  in
  B.func b "main";
  B.block b "entry";
  for i = 0 to n_regs - 1 do
    B.li b (Reg.of_int i) (Rng.range rng 0 255)
  done;
  let phases = 2 + Rng.int rng 4 in
  for p = 0 to phases - 1 do
    match Rng.int rng 3 with
    | 0 -> straight rng b data table
    | 1 ->
        (* Counted loop. *)
        let bound = 2 + Rng.int rng 8 in
        let i = Reg.r10 and t = Reg.r12 in
        B.li b i 0;
        let hdr = Printf.sprintf "loop%d" p in
        let out = Printf.sprintf "after%d" p in
        B.block b hdr ~loop_bound:bound;
        straight rng b data table;
        (* Occasional read-modify-write to force WAR structure. *)
        if Rng.bool rng then begin
          let slot = Rng.int rng 16 in
          B.ld b t (B.at data slot);
          B.add b t t (B.imm 1);
          B.st b (B.at data slot) t
        end;
        B.add b i i (B.imm 1);
        B.bin b Instr.Slt t i (B.imm bound);
        B.br b Instr.Nz t hdr out;
        B.block b out
    | _ ->
        (* If-diamond. *)
        let t = Reg.r12 in
        let th = Printf.sprintf "then%d" p
        and el = Printf.sprintf "else%d" p
        and j = Printf.sprintf "join%d" p in
        B.bin b Instr.And t (reg rng) (B.imm 1);
        B.br b Instr.Nz t th el;
        B.block b th;
        straight rng b data table;
        B.jmp b j;
        B.block b el;
        straight rng b data table;
        B.block b j;
        if Rng.bool rng then B.io_out b 1 (reg rng)
  done;
  B.halt b;
  B.finish b

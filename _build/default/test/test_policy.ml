(* Unit tests for GECKO's detection/mode state machine and the attack
   end-to-end behaviour of the machine. *)

module P = Gecko_core.Policy
module Core = Gecko_core
module M = Gecko_machine
open Gecko_isa

let ok = { P.ack_ok = true; progress = true }

let test_normal_operation () =
  (* Healthy boots stay in JIT and roll forward. *)
  let m, a, d = P.on_boot P.Jit_on ok in
  Alcotest.(check bool) "stays jit" true (m = P.Jit_on);
  Alcotest.(check bool) "resumes" true (a = P.Resume_jit);
  Alcotest.(check bool) "no detection" false d

let test_ack_detection () =
  let m, a, d = P.on_boot P.Jit_on { P.ack_ok = false; progress = true } in
  Alcotest.(check bool) "drops to idempotent" true (m = P.Idempotent);
  Alcotest.(check bool) "rolls back" true (a = P.Rollback);
  Alcotest.(check bool) "detected" true d

let test_progress_detection () =
  let _, a, d = P.on_boot P.Jit_on { P.ack_ok = true; progress = false } in
  Alcotest.(check bool) "rolls back" true (a = P.Rollback);
  Alcotest.(check bool) "detected" true d

let test_probe_cycle () =
  (* Idempotent -> probe at reboot; quiet first region -> back to JIT. *)
  let m, a, _ = P.on_boot P.Idempotent ok in
  Alcotest.(check bool) "probes" true (m = P.Probe && a = P.Rollback);
  Alcotest.(check bool) "commit re-enables" true (P.on_region_commit P.Probe = P.Jit_on);
  (* A signal during the probe means the attack persists. *)
  let m, act, d = P.on_backup_signal P.Probe ~early:false in
  Alcotest.(check bool) "back to idempotent" true
    (m = P.Idempotent && act = P.Rollback_inline && d)

let test_timer_detection () =
  let m, act, d = P.on_backup_signal P.Jit_on ~early:true in
  Alcotest.(check bool) "early signal rejected" true
    (m = P.Idempotent && act = P.Rollback_inline && d);
  let m, act, d = P.on_backup_signal P.Jit_on ~early:false in
  Alcotest.(check bool) "genuine signal trusted" true
    (m = P.Jit_on && act = P.Checkpoint_and_sleep && not d)

let test_monitor_gating () =
  Alcotest.(check bool) "closed under attack" false (P.monitor_enabled P.Idempotent);
  Alcotest.(check bool) "open in probe" true (P.monitor_enabled P.Probe);
  List.iter
    (fun m ->
      Alcotest.(check bool) "mode roundtrip" true
        (P.mode_of_int (P.mode_to_int m) = m))
    [ P.Jit_on; P.Idempotent; P.Probe ]

(* End-to-end attack behaviour. *)

let run_attacked scheme freq =
  let prog = Gecko_harness.Workbench.sense_app () in
  let p, meta = Core.Pipeline.compile scheme prog in
  let image = Link.link p in
  let board = M.Board.attack_rig () in
  M.Machine.run ~board ~image ~meta
    {
      M.Machine.default_options with
      schedule =
        Gecko_emi.Schedule.always
          (Gecko_emi.Attack.remote ~distance_m:0.1
             (Gecko_emi.Signal.make ~freq_mhz:freq ~power_dbm:20.));
      limit = M.Machine.Sim_time 0.3;
      restart_on_halt = true;
      max_sim_time = 1.;
    }

let test_nvp_dos_at_resonance () =
  let resonant = run_attacked Core.Scheme.Nvp 27. in
  let immune = run_attacked Core.Scheme.Nvp 200. in
  let r o = M.Machine.forward_progress o in
  Alcotest.(check bool) "resonance collapses progress" true
    (r resonant < 0.1 *. r immune);
  Alcotest.(check bool) "off-resonance unaffected" true (r immune > 0.5)

let test_gecko_survives_attack () =
  let o = run_attacked Core.Scheme.Gecko 27. in
  Alcotest.(check bool) "detected" true (o.M.Machine.detections > 0);
  Alcotest.(check bool) "keeps working" true
    (M.Machine.forward_progress o > 0.3);
  Alcotest.(check bool) "attack surface closed" true
    (o.M.Machine.final_mode = P.Idempotent)

let test_gecko_reenables_after_attack () =
  let prog = Gecko_harness.Workbench.sense_app () in
  let p, meta = Core.Pipeline.compile Core.Scheme.Gecko prog in
  let image = Link.link p in
  let harvester =
    Gecko_energy.Harvester.square_wave ~period:0.05 ~duty:0.5
      (Gecko_energy.Harvester.thevenin ~v_source:3.3 ~r_source:150.)
  in
  let board = { (M.Board.attack_rig ()) with M.Board.harvester } in
  let o =
    M.Machine.run ~board ~image ~meta
      {
        M.Machine.default_options with
        schedule =
          Gecko_emi.Schedule.make
            [
              Gecko_emi.Schedule.window ~t_start:0.1 ~t_end:0.3
                (Gecko_emi.Attack.remote ~distance_m:0.1
                   (Gecko_emi.Signal.make ~freq_mhz:27. ~power_dbm:20.));
            ];
        limit = M.Machine.Sim_time 0.6;
        restart_on_halt = true;
        max_sim_time = 1.;
      }
  in
  Alcotest.(check bool) "detected during window" true (o.M.Machine.detections > 0);
  Alcotest.(check bool) "re-enabled after" true (o.M.Machine.reenables > 0);
  Alcotest.(check bool) "back to JIT" true (o.M.Machine.final_mode = P.Jit_on)

let () =
  Alcotest.run "policy"
    [
      ( "state-machine",
        [
          Alcotest.test_case "normal operation" `Quick test_normal_operation;
          Alcotest.test_case "ACK detection" `Quick test_ack_detection;
          Alcotest.test_case "progress detection" `Quick test_progress_detection;
          Alcotest.test_case "probe cycle" `Quick test_probe_cycle;
          Alcotest.test_case "timer detection" `Quick test_timer_detection;
          Alcotest.test_case "monitor gating" `Quick test_monitor_gating;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "NVP DoS at resonance" `Quick test_nvp_dos_at_resonance;
          Alcotest.test_case "GECKO survives attack" `Quick test_gecko_survives_attack;
          Alcotest.test_case "GECKO re-enables" `Quick test_gecko_reenables_after_attack;
        ] );
    ]

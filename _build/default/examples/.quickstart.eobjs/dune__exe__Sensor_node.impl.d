examples/sensor_node.ml: Gecko List Printf

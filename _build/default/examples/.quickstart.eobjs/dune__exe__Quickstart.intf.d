examples/quickstart.mli:

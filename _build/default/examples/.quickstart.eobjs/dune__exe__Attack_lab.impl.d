examples/attack_lab.ml: Array Float Gecko List Printf String Sys

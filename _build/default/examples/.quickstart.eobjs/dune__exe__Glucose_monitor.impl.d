examples/glucose_monitor.ml: Array Gecko Instr Printf Reg

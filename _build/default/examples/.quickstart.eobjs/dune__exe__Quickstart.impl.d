examples/quickstart.ml: Array Cfg Format Gecko Instr Printf Reg

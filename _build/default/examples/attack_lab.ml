(* Attack lab: characterize a device's EMI susceptibility the way the
   paper's Section IV does — sweep the transmit frequency, find the
   resonance, then demonstrate the two exploit outcomes (denial of
   service and checkpoint corruption) on the stock JIT-checkpointing
   firmware.

     dune exec examples/attack_lab.exe -- [device-substring]            *)

module M = Gecko.Machine
module Device = Gecko.Devices.Device
module Catalog = Gecko.Devices.Catalog

let () =
  let wanted = if Array.length Sys.argv > 1 then Sys.argv.(1) else "FR5994" in
  let device =
    match
      List.find_opt
        (fun d ->
          let up s = String.uppercase_ascii s in
          let needle = up wanted and hay = up d.Device.model in
          let nl = String.length needle and hl = String.length hay in
          let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
          scan 0)
        Catalog.all
    with
    | Some d -> d
    | None ->
        Printf.eprintf "no device matching %S; try one of:\n" wanted;
        List.iter (fun d -> Printf.eprintf "  %s\n" d.Device.model) Catalog.all;
        exit 1
  in
  Printf.printf "Characterizing %s\n\n" device.Device.model;
  let board = Gecko.Board.attack_rig ~device () in
  (* Coarse frequency sweep. *)
  let freqs = [ 1.; 5.; 10.; 16.; 20.; 24.; 27.; 30.; 35.; 45.; 60.; 100.; 300. ] in
  print_endline "frequency sweep (20 dBm, reference distance):";
  let gain f =
    Gecko.Emi.Coupling.gain device.Device.adc_profile ~freq_hz:(f *. 1e6)
  in
  let best = ref (0., 1.) in
  List.iter
    (fun f ->
      let attack =
        Gecko.Emi.Attack.remote ~distance_m:0.1
          (Gecko.Emi.Signal.make ~freq_mhz:f ~power_dbm:20.)
      in
      let r =
        Gecko.Workbench.progress_rate ~board ~attack:(Some attack)
          ~duration:0.05
      in
      if r < snd !best -. 0.001 || (Float.abs (r -. snd !best) <= 0.001 && gain f > gain (fst !best))
      then best := (f, r);
      let bar = String.make (int_of_float (r *. 40.)) '#' in
      Printf.printf "  %6.1f MHz  %-40s %5.1f%%\n" f bar (100. *. r))
    freqs;
  let f0, rmin = !best in
  Printf.printf "\nresonance near %.0f MHz (forward progress collapses to %.1f%%)\n"
    f0 (100. *. rmin);
  (* Exploit demo: checkpoint corruption under outage-prone power. *)
  let harvester =
    Gecko.Energy.Harvester.square_wave ~period:0.08 ~duty:0.2
      (Gecko.Energy.Harvester.thevenin ~v_source:3.3 ~r_source:150.)
  in
  let board = { board with Gecko.Board.harvester } in
  let image, meta =
    let p, meta =
      Gecko.Compiler.Pipeline.compile Gecko.Compiler.Scheme.Nvp
        (Gecko.Workbench.sense_app ())
    in
    (Gecko.Isa.Link.link p, meta)
  in
  let o =
    M.run ~board ~image ~meta
      {
        M.default_options with
        schedule =
          Gecko.Emi.Schedule.always
            (Gecko.Emi.Attack.remote ~distance_m:0.1
               (Gecko.Emi.Signal.make ~freq_mhz:f0 ~power_dbm:20.));
        limit = M.Sim_time 1.5;
        restart_on_halt = true;
        max_sim_time = 2.;
      }
  in
  Printf.printf
    "exploit at %.0f MHz with outage-prone supply: %d checkpoints, %d cut \
     short, %d corrupt resumes\n(checkpoint failure rate F = %.1f%%)\n" f0
    o.M.jit_checkpoints o.M.jit_checkpoint_failures o.M.corruptions
    (100. *. M.checkpoint_failure_rate o)

(* A batteryless wireless sensor node on a Powercast-style RF harvester:
   it wakes when the capacitor fills, samples, aggregates, transmits a
   beacon, and dies until the next charge.  The example compares all four
   recovery schemes over one minute of harvesting and shows the charge /
   compute duty cycling that defines intermittent computing.

     dune exec examples/sensor_node.exe *)

module Compiler = Gecko.Compiler
module M = Gecko.Machine

let rf_field =
  (* 915 MHz RF field several meters from the transmitter, with fading. *)
  Gecko.Energy.Harvester.rf_ambient ~seed:17 ~mean_power:1.2e-3 ~flicker:0.7

let () =
  print_endline "Batteryless sensor node, one simulated minute of RF harvesting";
  print_endline "---------------------------------------------------------------";
  let prog = Gecko.Workbench.sense_app () in
  Printf.printf "%-22s %10s %9s %9s %11s %9s\n" "scheme" "beacons" "reboots"
    "rollbks" "ckpts(JIT)" "on-time";
  List.iter
    (fun scheme ->
      let p, meta = Compiler.Pipeline.compile scheme prog in
      let image = Gecko.Isa.Link.link p in
      let board =
        { (Gecko.Board.default ~harvester:rf_field ()) with
          Gecko.Board.capacitance = 100e-6 }
      in
      let o =
        M.run ~board ~image ~meta
          {
            M.default_options with
            limit = M.Sim_time 60.;
            restart_on_halt = true;
            start_charged = false;
            max_sim_time = 61.;
          }
      in
      Printf.printf "%-22s %10d %9d %9d %11d %8.1f%%\n"
        (Compiler.Scheme.to_string scheme)
        o.M.completions o.M.reboots o.M.rollbacks o.M.jit_checkpoints
        (100. *. (o.M.app_seconds +. 0.0) /. o.M.sim_time))
    Compiler.Scheme.all;
  print_endline
    "\nEvery scheme survives the outage train; they differ in how much of \
     the harvested\nenergy reaches useful work: NVP is the upper bound, \
     Ratchet pays full rollback\ninstrumentation, and GECKO sits in between \
     while staying immune to EMI attacks\non the voltage monitor."

(* A continuous glucose monitor — the paper's motivating wearable
   (Section III).  The device harvests ambient energy, periodically
   samples a glucose sensor, smooths the readings and raises an alarm
   over the radio when they cross a threshold.

   The example stages an EMI attack against the device and compares the
   stock JIT-checkpointing firmware (NVP) with the GECKO-compiled one:
   the attacker parks a 27 MHz transmitter nearby for a while, and the
   patient keeps (or loses) their monitoring.

     dune exec examples/glucose_monitor.exe *)

module Isa = Gecko.Isa
module B = Isa.Builder
module Compiler = Gecko.Compiler
module M = Gecko.Machine
open Isa

let threshold = 700

(* One monitoring round: sample 8 readings, moving-average them, store
   the trend and raise the alarm port if the average exceeds the
   threshold. *)
let cgm_app () =
  let b = B.program "cgm" in
  let trend = B.space b "trend" ~words:8 () in
  let alarms = B.space b "alarms" ~words:1 () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r0 0;
  (* round *)
  B.block b "round" ~loop_bound:8;
  B.li b Reg.r1 0;
  (* acc over 4 samples *)
  for _ = 1 to 4 do
    B.io_in b Reg.r2 0;
    B.bin b Instr.And Reg.r2 Reg.r2 (B.imm 1023);
    B.add b Reg.r1 Reg.r1 (B.reg Reg.r2)
  done;
  B.bin b Instr.Shr Reg.r1 Reg.r1 (B.imm 2);
  B.st b (B.idx trend Reg.r0) Reg.r1;
  (* Alarm when the smoothed reading crosses the threshold. *)
  B.bin b Instr.Slt Reg.r3 Reg.r1 (B.imm threshold);
  B.br b Instr.Nz Reg.r3 "next" "alarm";
  B.block b "alarm";
  B.io_out b 7 Reg.r1;
  B.ld b Reg.r4 (B.at alarms 0);
  B.add b Reg.r4 Reg.r4 (B.imm 1);
  B.st b (B.at alarms 0) Reg.r4;
  B.block b "next";
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.bin b Instr.Slt Reg.r3 Reg.r0 (B.imm 8);
  B.br b Instr.Nz Reg.r3 "round" "fin";
  B.block b "fin";
  B.halt b;
  B.finish b

let body_harvester =
  (* Blood-pressure/motion harvesting: weak and fluctuating. *)
  Gecko.Energy.Harvester.rf_ambient ~seed:5 ~mean_power:3.2e-3 ~flicker:0.6

let run scheme ~attacked =
  let p, meta = Compiler.Pipeline.compile scheme (cgm_app ()) in
  let image = Isa.Link.link p in
  let board =
    { (Gecko.Board.attack_rig ~device:Gecko.Devices.Catalog.msp430fr5994 ()) with
      Gecko.Board.harvester = body_harvester }
  in
  let schedule =
    if attacked then
      (* The attacker switches a transmitter on for the middle third. *)
      Gecko.Emi.Schedule.make
        [
          Gecko.Emi.Schedule.window ~t_start:1.0 ~t_end:2.0
            (Gecko.Emi.Attack.remote ~distance_m:0.5
               (Gecko.Emi.Signal.make ~freq_mhz:27. ~power_dbm:35.));
        ]
    else Gecko.Emi.Schedule.empty
  in
  M.run ~board ~image ~meta
    {
      M.default_options with
      schedule;
      limit = M.Sim_time 3.0;
      restart_on_halt = true;
      timeline_bucket = Some 1.0;
      max_sim_time = 4.0;
    }

let describe name (o : M.outcome) =
  let during_attack =
    match o.M.timeline with
    | Some tl when Array.length tl.M.completions_per_bucket > 1 ->
        tl.M.completions_per_bucket.(1)
    | Some _ | None -> 0
  in
  Printf.printf
    "  %-22s rounds total: %6d   during t=1..2s: %6d   detections: %d\n"
    name o.M.completions during_attack o.M.detections

let () =
  print_endline "Continuous glucose monitor under a parked EMI transmitter";
  print_endline "----------------------------------------------------------";
  print_endline "no attack:";
  describe "NVP (stock CTPL)" (run Compiler.Scheme.Nvp ~attacked:false);
  describe "GECKO" (run Compiler.Scheme.Gecko ~attacked:false);
  print_endline "attacker transmits at 27 MHz during t = 1..2 s:";
  let nvp = run Compiler.Scheme.Nvp ~attacked:true in
  let gecko = run Compiler.Scheme.Gecko ~attacked:true in
  describe "NVP (stock CTPL)" nvp;
  describe "GECKO" gecko;
  Printf.printf
    "\nDuring the attack the stock device stops monitoring (DoS) and may \
     resume from corrupt state;\nGECKO detects the interference (%d \
     detections), closes the voltage-monitor attack surface,\nswitches to \
     idempotent rollback and keeps monitoring — then re-enables JIT \
     checkpointing (%d re-enables).\n"
    gecko.M.detections gecko.M.reenables
